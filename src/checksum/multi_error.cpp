#include "checksum/multi_error.hpp"

#include <algorithm>
#include <cmath>

#include "common/env.hpp"
#include "common/plan_registry.hpp"
#include "common/seal.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::checksum {
namespace {

// Same integer-confidence slack as locate_single_error: the recovered node,
// mapped back to index space, may sit this far from an integer before the
// localization is declared unreliable.
constexpr double kIndexSlack = 0.25;

// Residual acceptance: a correct hypothesis reproduces every moment up to
// accumulated round-off. The absolute term allows a few etas of slack per
// moment (two syndrome generations plus the solves); the relative term
// handles exponent-scale corruptions, whose syndrome differences are so
// large that even a correct decode leaves an eps * |corruption| residue —
// the iterative repair loop then shrinks it (see repair_errors).
constexpr double kResidualEtaFactor = 8.0;
constexpr double kRelResidual = 1e-9;

// Pivot smaller than this fraction of the matrix scale means the system is
// (numerically) singular — expected when the hypothesized error count
// exceeds the true one, so the caller just tries the next count.
constexpr double kPivotRel = 1e-12;

// Solves the e x e complex system A z = b in place by Gaussian elimination
// with partial pivoting; the solution lands in b. Returns false when the
// system is numerically singular or contaminated.
bool solve_dense(int e, cplx A[][kMaxCorrectableErrors], cplx* b) {
  double scale = 0.0;
  for (int r = 0; r < e; ++r) {
    for (int c = 0; c < e; ++c) scale = std::max(scale, std::abs(A[r][c]));
  }
  if (!(scale > 0.0) || !std::isfinite(scale)) return false;
  for (int col = 0; col < e; ++col) {
    int piv = col;
    double best = std::abs(A[col][col]);
    for (int r = col + 1; r < e; ++r) {
      const double a = std::abs(A[r][col]);
      if (a > best) {
        best = a;
        piv = r;
      }
    }
    if (!(best > kPivotRel * scale) || !std::isfinite(best)) return false;
    if (piv != col) {
      for (int c = col; c < e; ++c) std::swap(A[piv][c], A[col][c]);
      std::swap(b[piv], b[col]);
    }
    for (int r = col + 1; r < e; ++r) {
      const cplx f = A[r][col] / A[col][col];
      A[r][col] = cplx{0.0, 0.0};
      for (int c = col + 1; c < e; ++c) A[r][c] -= f * A[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int r = e - 1; r >= 0; --r) {
    cplx acc = b[r];
    for (int c = r + 1; c < e; ++c) acc -= A[r][c] * b[c];
    b[r] = acc / A[r][r];
  }
  return true;
}

// Evaluates the monic locator z^e + lam[e-1] z^(e-1) + ... + lam[0].
cplx eval_locator(int e, const cplx* lam, cplx z) {
  cplx p{1.0, 0.0};
  for (int l = e - 1; l >= 0; --l) p = p * z + lam[l];
  return p;
}

// Durand-Kerner simultaneous root iteration for the monic locator. The
// roots of a valid hypothesis lie in [0, 1) on the real axis, so the
// standard (0.4 + 0.9i)^k starting spiral (magnitude ~1) brackets them.
bool durand_kerner(int e, const cplx* lam, cplx* roots) {
  const cplx seed{0.4, 0.9};
  cplx z{1.0, 0.0};
  for (int i = 0; i < e; ++i) {
    z *= seed;
    roots[i] = z;
  }
  for (int iter = 0; iter < 96; ++iter) {
    double step = 0.0;
    for (int i = 0; i < e; ++i) {
      cplx denom{1.0, 0.0};
      for (int j = 0; j < e; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      if (!(std::abs(denom) > 0.0) || !std::isfinite(std::abs(denom))) {
        return false;
      }
      const cplx delta = eval_locator(e, lam, roots[i]) / denom;
      roots[i] -= delta;
      step = std::max(step, std::abs(delta));
    }
    if (step < 1e-14) return true;
  }
  // No strict convergence: the roots may still be good enough for the
  // integer snap; let validation decide.
  return true;
}

// Roots of the monic locator for the given error count. Closed form for
// e <= 2 (the overwhelmingly common cases), Durand-Kerner beyond.
bool locator_roots(int e, const cplx* lam, cplx* roots) {
  if (e == 1) {
    roots[0] = -lam[0];
    return true;
  }
  if (e == 2) {
    // z^2 + lam1 z + lam0: stable quadratic — pick the sign that avoids
    // cancellation in the larger root, derive the other via the product.
    const cplx b = lam[1];
    const cplx c = lam[0];
    const cplx sq = std::sqrt(b * b - 4.0 * c);
    const cplx q1 = -0.5 * (b + sq);
    const cplx q2 = -0.5 * (b - sq);
    const cplx q = (std::abs(q1) >= std::abs(q2)) ? q1 : q2;
    if (std::abs(q) > 0.0) {
      roots[0] = q;
      roots[1] = c / q;
    } else {
      roots[0] = cplx{0.0, 0.0};
      roots[1] = cplx{0.0, 0.0};
    }
    return true;
  }
  return durand_kerner(e, lam, roots);
}

}  // namespace

int clamp_max_errors(int requested) noexcept {
  return std::clamp(requested, 1, kMaxCorrectableErrors);
}

SyndromeSet syndrome_sum(const cplx* w, const cplx* x, std::size_t n,
                         std::size_t stride, int moments,
                         const double* nodes2) {
  SyndromeSet out;
  out.moments = std::clamp(moments, 1, kMaxMoments);
  if (n == 0) return out;
  if (stride == 1 && nodes2 != nullptr) {
    simd::checksum_kernels().syndrome_dot(w, x, nodes2, n, out.moments,
                                          out.s.data());
    return out;
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    cplx q = (w == nullptr) ? x[j * stride] : cmul(w[j], x[j * stride]);
    const double u =
        (nodes2 != nullptr) ? nodes2[2 * j] : static_cast<double>(j) * inv_n;
    out.s[0] += q;
    for (int m = 1; m < out.moments; ++m) {
      q *= u;
      out.s[m] += q;
    }
  }
  return out;
}

MultiLocateResult locate_errors(const SyndromeSet& stored,
                                const SyndromeSet& current, const cplx* w,
                                std::size_t n, double eta, int max_errors) {
  MultiLocateResult out;
  const int nm = std::min(stored.moments, current.moments);
  const int t = std::min(clamp_max_errors(max_errors), nm / 2);
  if (nm < 2 || n == 0) return out;

  cplx d[kMaxMoments];
  double maxd = 0.0;
  bool any = false;
  bool finite = true;
  for (int m = 0; m < nm; ++m) {
    d[m] = current.s[m] - stored.s[m];
    const double a = std::abs(d[m]);
    finite = finite && std::isfinite(a);
    maxd = std::max(maxd, a);
    any = any || a > eta;
  }
  if (!any) return out;  // within round-off: no mismatch
  out.mismatch = true;
  if (!finite) return out;  // NaN/Inf contamination: not localizable

  const double nd = static_cast<double>(n);
  const double tol = std::max(kResidualEtaFactor * eta, kRelResidual * maxd);

  for (int e = 1; e <= t; ++e) {
    // Key equation: sum_l lam_l d_{r+l} = -d_{e+r} for r = 0..e-1. The
    // Hankel matrix is singular when the true error count is below e; the
    // pivot guard rejects that hypothesis and the loop moves on.
    cplx A[kMaxCorrectableErrors][kMaxCorrectableErrors];
    cplx lam[kMaxCorrectableErrors];
    for (int r = 0; r < e; ++r) {
      for (int l = 0; l < e; ++l) A[r][l] = d[r + l];
      lam[r] = -d[e + r];
    }
    if (!solve_dense(e, A, lam)) continue;

    cplx roots[kMaxCorrectableErrors];
    if (!locator_roots(e, lam, roots)) continue;

    // Snap roots to integer indices with the single-error confidence slack.
    std::size_t idx[kMaxCorrectableErrors];
    double u[kMaxCorrectableErrors];
    bool ok = true;
    for (int i = 0; i < e && ok; ++i) {
      const double xr = roots[i].real() * nd;
      const double rounded = std::round(xr);
      const double imag_slack = kIndexSlack * (1.0 + std::abs(rounded));
      if (std::abs(xr - rounded) > kIndexSlack ||
          std::abs(roots[i].imag()) * nd > imag_slack || rounded < 0.0 ||
          rounded >= nd) {
        ok = false;
        break;
      }
      idx[i] = static_cast<std::size_t>(rounded);
      u[i] = static_cast<double>(idx[i]) * (1.0 / nd);
      for (int j = 0; j < i; ++j) ok = ok && idx[j] != idx[i];
    }
    if (!ok) continue;

    // Error values from the leading e moments: V[m][i] = u_i^m, V E = d.
    cplx V[kMaxCorrectableErrors][kMaxCorrectableErrors];
    cplx E[kMaxCorrectableErrors];
    for (int i = 0; i < e; ++i) V[0][i] = cplx{1.0, 0.0};
    for (int m = 1; m < e; ++m) {
      for (int i = 0; i < e; ++i) V[m][i] = V[m - 1][i] * u[i];
    }
    for (int m = 0; m < e; ++m) E[m] = d[m];
    if (!solve_dense(e, V, E)) continue;

    // Accept only when the hypothesis explains every stored moment.
    bool pass = true;
    for (int m = 0; m < nm && pass; ++m) {
      cplx recon{0.0, 0.0};
      for (int i = 0; i < e; ++i) {
        recon += E[i] * std::pow(u[i], static_cast<double>(m));
      }
      pass = std::abs(d[m] - recon) <= tol;
    }
    if (!pass) continue;

    out.valid = true;
    out.count = e;
    for (int i = 0; i < e; ++i) {
      out.index[i] = idx[i];
      out.delta[i] = (w == nullptr) ? E[i] : E[i] / w[idx[i]];
    }
    return out;
  }
  return out;  // mismatch detected but not explainable by <= t errors
}

void apply_corrections(cplx* data, std::size_t stride,
                       const MultiLocateResult& loc) {
  if (!loc.valid) return;
  for (int i = 0; i < loc.count; ++i) {
    data[loc.index[i] * stride] -= loc.delta[i];
  }
}

MultiRepairResult repair_errors(const SyndromeSet& stored, cplx* data,
                                std::size_t stride, const cplx* w,
                                std::size_t n, double eta, int max_errors,
                                int max_iters, const double* nodes2) {
  MultiRepairResult out;
  for (int iter = 0; iter < max_iters; ++iter) {
    const SyndromeSet cur =
        syndrome_sum(w, data, n, stride, stored.moments, nodes2);
    const MultiLocateResult loc =
        locate_errors(stored, cur, w, n, eta, max_errors);
    if (!loc.mismatch) {
      out.corrected = out.mismatch;  // clean now (trivially true if never bad)
      return out;
    }
    out.mismatch = true;
    if (!loc.valid) return out;  // not explainable by <= t errors
    apply_corrections(data, stride, loc);
    out.errors = loc.count;
    ++out.iterations;
  }
  // Ran out of iterations: check whether the last correction landed.
  const SyndromeSet cur =
      syndrome_sum(w, data, n, stride, stored.moments, nodes2);
  out.corrected = !locate_errors(stored, cur, w, n, eta, max_errors).mismatch;
  return out;
}

namespace {

PlanRegistry<std::size_t, std::vector<double>>& nodes_registry() {
  static PlanRegistry<std::size_t, std::vector<double>> registry(
      plan_cache_capacity(), [](const std::vector<double>& v) {
        return fnv1a(v.data(), v.size() * sizeof(double));
      });
  return registry;
}

const bool nodes_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return nodes_registry().snapshot("syndrome-nodes"); },
         [] { return nodes_registry().scrub(); },
         [](std::size_t k) { nodes_registry().set_verify_interval(k); }}),
     true);

}  // namespace

std::shared_ptr<const std::vector<double>> shared_syndrome_nodes(
    std::size_t n) {
  return nodes_registry().get_or_build(n, [&] {
    std::vector<double> nodes(2 * n);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double u = static_cast<double>(j) * inv_n;
      nodes[2 * j] = u;
      nodes[2 * j + 1] = u;
    }
    return std::make_shared<const std::vector<double>>(std::move(nodes));
  });
}

}  // namespace ftfft::checksum
