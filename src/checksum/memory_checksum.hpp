// Single-error localization and correction from dual checksums
// (paper sections 3.2 and 4.1).
//
// With stored sums S = (sum w_j x_j, sum j w_j x_j) and the same sums
// recomputed over possibly corrupted data, a single corrupted element
// x'_j = x_j + delta yields
//   d1 = w_j * delta          and   d2 = j * w_j * delta,
// so j = Re(d2 / d1) and delta = d1 / w_j. Round-off can push the recovered
// index off its integer (the paper's "Uncorrected" column in Table 6); the
// locate result therefore reports a confidence flag instead of asserting.
#pragma once

#include <cstddef>

#include "checksum/dot.hpp"
#include "common/complex.hpp"

namespace ftfft::checksum {

/// Outcome of single-error localization.
struct LocateResult {
  bool mismatch = false;  ///< checksums differ beyond eta at all
  bool valid = false;     ///< index recovered with integer confidence
  std::size_t index = 0;  ///< corrupted element position (when valid)
  cplx delta{0.0, 0.0};   ///< value that was ADDED to the element
};

/// Compares stored vs current dual sums and attempts localization.
/// `w` are the generation weights (nullptr = all ones); `n` bounds the
/// recovered index; `eta` is the round-off tolerance on the plain sum.
[[nodiscard]] LocateResult locate_single_error(const DualSum& stored,
                                               const DualSum& current,
                                               const cplx* w, std::size_t n,
                                               double eta);

/// Applies the correction in place: data[index * stride] -= delta.
void apply_correction(cplx* data, std::size_t stride,
                      const LocateResult& loc);

/// Outcome of an iterative repair session.
struct RepairResult {
  bool mismatch = false;    ///< checksums disagreed at least once
  bool corrected = false;   ///< data now verifies against `stored`
  std::size_t index = 0;    ///< (last) corrected element
  int iterations = 0;       ///< locate/correct rounds performed
};

/// Locates and corrects a single corrupted element, iterating until the
/// recomputed checksums match `stored` within eta. Iteration matters: when
/// the corruption is huge (an exponent-bit flip), the first recovered delta
/// carries an eps * |corruption| rounding residue that itself exceeds eta;
/// each round shrinks the residue by ~eps until it vanishes below threshold.
/// Returns corrected == false when the mismatch is not localizable (more
/// than one error, or NaN/Inf contamination).
[[nodiscard]] RepairResult repair_single_error(const DualSum& stored,
                                               cplx* data, std::size_t stride,
                                               const cplx* w, std::size_t n,
                                               double eta, int max_iters = 4);

}  // namespace ftfft::checksum
