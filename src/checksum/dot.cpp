#include "checksum/dot.hpp"

#include "common/math_util.hpp"
#include "simd/dispatch.hpp"

// Stride-1 calls — the per-layer verification hot path of the online scheme —
// go through the dispatched SIMD kernels (simd/kernels_impl.hpp); the strided
// loops below are the general fallback and the readable statement of each
// primitive's semantics. Both sides split long reductions across independent
// accumulators, so summation order differs from a naive single chain (and
// between backends); the detection thresholds model exactly this kind of
// round-off (see dot.hpp and roundoff/model.hpp).

namespace ftfft::checksum {

cplx weighted_sum(const cplx* w, const cplx* x, std::size_t n,
                  std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().weighted_sum(w, x, n);
  cplx acc{0.0, 0.0};
  for (std::size_t j = 0; j < n; ++j) {
    acc += cmul(w[j], x[j * stride]);
  }
  return acc;
}

DualSum dual_weighted_sum(const cplx* w, const cplx* x, std::size_t n,
                          std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().dual_weighted_sum(w, x, n);
  DualSum out;
  if (w == nullptr) {
    for (std::size_t j = 0; j < n; ++j) {
      const cplx v = x[j * stride];
      out.plain += v;
      out.indexed += static_cast<double>(j) * v;
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const cplx p = cmul(w[j], x[j * stride]);
      out.plain += p;
      out.indexed += static_cast<double>(j) * p;
    }
  }
  return out;
}

double energy(const cplx* x, std::size_t n, std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().energy(x, n);
  // Two accumulators even on the strided path: one chain would serialize the
  // loop on floating-point add latency.
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    acc0 += norm2(x[j * stride]);
    acc1 += norm2(x[(j + 1) * stride]);
  }
  if (j < n) acc0 += norm2(x[j * stride]);
  return acc0 + acc1;
}

DualSumRobust dual_plain_sum_robust(const cplx* x, std::size_t n,
                                    std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().dual_plain_sum_robust(x, n);
  DualSumRobust out;
  std::size_t top_idx = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const cplx v = x[j * stride];
    out.sums.plain += v;
    out.sums.indexed += static_cast<double>(j) * v;
    const double e = norm2(v);
    if (e > out.max_norm2) {
      out.max_norm2 = e;
      top_idx = j;
    }
  }
  // Second (cache-hot) pass summing everything but the top contributor: a
  // huge outlier would absorb the rest of the sum in floating point, so
  // subtracting it afterwards cannot work — exclude it instead.
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    if (j != top_idx) acc0 += norm2(x[j * stride]);
    if (j + 1 != top_idx) acc1 += norm2(x[(j + 1) * stride]);
  }
  if (j < n && j != top_idx) acc0 += norm2(x[j * stride]);
  out.energy = acc0 + acc1;
  return out;
}

double robust_energy(const cplx* x, std::size_t n, std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().robust_energy(x, n);
  // Exclude the single largest contribution while summing (see
  // dual_plain_sum_robust for why subtract-after does not work): find the
  // top element first, then sum the rest.
  double top = -1.0;
  std::size_t top_idx = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double e = norm2(x[j * stride]);
    if (e > top) {
      top = e;
      top_idx = j;
    }
  }
  double acc0 = 0.0;
  double acc1 = 0.0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    if (j != top_idx) acc0 += norm2(x[j * stride]);
    if (j + 1 != top_idx) acc1 += norm2(x[(j + 1) * stride]);
  }
  if (j < n && j != top_idx) acc0 += norm2(x[j * stride]);
  return acc0 + acc1;
}

cplx omega3_weighted_sum(const cplx* x, std::size_t n, std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().omega3_weighted_sum(x, n);
  cplx b0{0.0, 0.0}, b1{0.0, 0.0}, b2{0.0, 0.0};
  std::size_t j = 0;
  for (; j + 3 <= n; j += 3) {
    b0 += x[j * stride];
    b1 += x[(j + 1) * stride];
    b2 += x[(j + 2) * stride];
  }
  if (j < n) b0 += x[j * stride];
  if (j + 1 < n) b1 += x[(j + 1) * stride];
  return b0 + cmul(omega3_pow(1), b1) + cmul(omega3_pow(2), b2);
}

DualSum copy_dual_sum(cplx* dst, const cplx* src, std::size_t n) {
  return simd::checksum_kernels().copy_dual_sum(dst, src, n);
}

SumEnergy weighted_sum_energy(const cplx* w, const cplx* x, std::size_t n,
                              std::size_t stride) {
  if (stride == 1) return simd::checksum_kernels().weighted_sum_energy(w, x, n);
  SumEnergy out;
  for (std::size_t j = 0; j < n; ++j) {
    const cplx v = x[j * stride];
    out.sum += cmul(w[j], v);
    out.energy += norm2(v);
  }
  return out;
}

DualSumEnergy dual_weighted_sum_energy(const cplx* w, const cplx* x,
                                       std::size_t n, std::size_t stride) {
  if (stride == 1) {
    return simd::checksum_kernels().dual_weighted_sum_energy(w, x, n);
  }
  DualSumEnergy out;
  if (w == nullptr) {
    for (std::size_t j = 0; j < n; ++j) {
      const cplx v = x[j * stride];
      out.sums.plain += v;
      out.sums.indexed += static_cast<double>(j) * v;
      out.energy += norm2(v);
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const cplx v = x[j * stride];
      const cplx p = cmul(w[j], v);
      out.sums.plain += p;
      out.sums.indexed += static_cast<double>(j) * p;
      out.energy += norm2(v);
    }
  }
  return out;
}

}  // namespace ftfft::checksum
