#include "checksum/weights.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "common/seal.hpp"

namespace ftfft::checksum {
namespace {

// Resync the omega_n^t recurrence against libm every this many steps to keep
// the accumulated drift below a few ulps regardless of n.
constexpr std::size_t kResyncInterval = 512;

std::atomic<std::uint64_t> ra_generation_count{0};

struct RaKey {
  std::size_t n;
  RaGenMethod method;
  bool operator==(const RaKey&) const = default;
};

struct RaKeyHash {
  std::size_t operator()(const RaKey& k) const noexcept {
    return k.n * 2 + static_cast<std::size_t>(k.method);
  }
};

void check_size(std::size_t n) {
  if (n == 0) throw std::invalid_argument("checksum: n must be >= 1");
  if (n % 3 == 0) {
    throw std::invalid_argument(
        "checksum: the omega_3 encoding degenerates when 3 divides n; "
        "choose a transform size not divisible by 3");
  }
}

}  // namespace

std::vector<cplx> comp_weights(std::size_t n) {
  std::vector<cplx> r(n);
  for (std::size_t j = 0; j < n; ++j) r[j] = omega3_pow(j);
  return r;
}

std::vector<cplx> input_checksum_vector(std::size_t n, RaGenMethod method) {
  check_size(n);
  ra_generation_count.fetch_add(1, std::memory_order_relaxed);
  const cplx num = cplx{1.0, 0.0} - omega3_pow(n);
  const cplx w3 = omega3();
  std::vector<cplx> ra(n);
  switch (method) {
    case RaGenMethod::kNaiveTrig: {
      for (std::size_t t = 0; t < n; ++t) {
        const cplx wt = omega(n, t);  // sin/cos every element
        ra[t] = num / (cplx{1.0, 0.0} - w3 * wt);
      }
      break;
    }
    case RaGenMethod::kClosedForm: {
      const cplx step = omega(n, 1);
      cplx wt{1.0, 0.0};
      for (std::size_t t = 0; t < n; ++t) {
        if (t % kResyncInterval == 0) wt = omega(n, t);
        ra[t] = num / (cplx{1.0, 0.0} - w3 * wt);
        wt = cmul(wt, step);
      }
      break;
    }
  }
  return ra;
}

std::vector<cplx> input_checksum_vector_dmr(std::size_t n, RaGenMethod method,
                                            int faulty_copy,
                                            std::size_t corrupt_index) {
  auto first = input_checksum_vector(n, method);
  if (faulty_copy == 1 && corrupt_index < n) first[corrupt_index] += 1.0;
  auto second = input_checksum_vector(n, method);
  if (faulty_copy == 2 && corrupt_index < n) second[corrupt_index] += 1.0;
  bool match = true;
  for (std::size_t t = 0; t < n; ++t) {
    if (first[t] != second[t]) {
      match = false;
      break;
    }
  }
  if (match) return first;
  // Disagreement: a fault hit one redundant execution. Vote with a third.
  const auto third = input_checksum_vector(n, method);
  for (std::size_t t = 0; t < n; ++t) {
    if (first[t] != second[t]) {
      first[t] = (second[t] == third[t]) ? second[t] : first[t];
    }
  }
  return first;
}

namespace {

std::uint64_t seal_cplx_vec(const std::vector<cplx>& v) {
  return fnv1a(v.data(), v.size() * sizeof(cplx));
}

PlanRegistry<RaKey, std::vector<cplx>, RaKeyHash>& ra_registry() {
  static PlanRegistry<RaKey, std::vector<cplx>, RaKeyHash> registry(
      plan_cache_capacity(), seal_cplx_vec);
  return registry;
}

// Enroll in plan_cache_stats() / scrub_plan_caches() before main. The
// lambdas are lazy on purpose: the registry (and its FTFFT_PLAN_CACHE_CAP /
// FTFFT_PLAN_VERIFY reads) is only materialized at first use or first stats
// call, never during static initialization.
const bool ra_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return ra_registry().snapshot("checksum-weights"); },
         [] { return ra_registry().scrub(); },
         [](std::size_t k) { ra_registry().set_verify_interval(k); }}),
     true);

}  // namespace

std::shared_ptr<const std::vector<cplx>> shared_input_checksum_vector(
    std::size_t n, RaGenMethod method) {
  return ra_registry().get_or_build(RaKey{n, method}, [&] {
    return std::make_shared<const std::vector<cplx>>(
        input_checksum_vector_dmr(n, method));
  });
}

namespace {

PlanRegistry<std::size_t, std::vector<cplx>>& comp_weights_registry() {
  static PlanRegistry<std::size_t, std::vector<cplx>> registry(
      plan_cache_capacity(), seal_cplx_vec);
  return registry;
}

const bool comp_weights_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return comp_weights_registry().snapshot("comp-weights"); },
         [] { return comp_weights_registry().scrub(); },
         [](std::size_t k) {
           comp_weights_registry().set_verify_interval(k);
         }}),
     true);

}  // namespace

std::shared_ptr<const std::vector<cplx>> shared_comp_weights(std::size_t n) {
  return comp_weights_registry().get_or_build(n, [&] {
    return std::make_shared<const std::vector<cplx>>(comp_weights(n));
  });
}

std::uint64_t ra_generations() noexcept {
  return ra_generation_count.load(std::memory_order_relaxed);
}

}  // namespace ftfft::checksum
