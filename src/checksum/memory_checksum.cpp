#include "checksum/memory_checksum.hpp"

#include <cmath>

namespace ftfft::checksum {
namespace {

// How far the recovered index may sit from an integer before we declare the
// localization unreliable. 0.25 splits the distance to the neighboring
// index evenly between round-off slack and mislocation guard.
constexpr double kIndexSlack = 0.25;

}  // namespace

LocateResult locate_single_error(const DualSum& stored, const DualSum& current,
                                 const cplx* w, std::size_t n, double eta) {
  LocateResult out;
  const cplx d1 = current.plain - stored.plain;
  const cplx d2 = current.indexed - stored.indexed;
  if (std::abs(d1) <= eta) return out;  // within round-off: no mismatch
  out.mismatch = true;
  const cplx ratio = d2 / d1;
  const double idx = ratio.real();
  const double rounded = std::round(idx);
  // The imaginary part of a clean single-error ratio is zero; allow it the
  // same slack as the real part, scaled to the index magnitude.
  const double imag_slack = kIndexSlack * (1.0 + std::abs(rounded));
  if (std::abs(idx - rounded) > kIndexSlack ||
      std::abs(ratio.imag()) > imag_slack || rounded < 0.0 ||
      rounded >= static_cast<double>(n)) {
    return out;  // mismatch detected but not localizable
  }
  out.valid = true;
  out.index = static_cast<std::size_t>(rounded);
  out.delta = (w == nullptr) ? d1 : d1 / w[out.index];
  return out;
}

void apply_correction(cplx* data, std::size_t stride,
                      const LocateResult& loc) {
  if (loc.valid) data[loc.index * stride] -= loc.delta;
}

RepairResult repair_single_error(const DualSum& stored, cplx* data,
                                 std::size_t stride, const cplx* w,
                                 std::size_t n, double eta, int max_iters) {
  RepairResult out;
  for (int iter = 0; iter < max_iters; ++iter) {
    const DualSum cur = dual_weighted_sum(w, data, n, stride);
    const LocateResult loc = locate_single_error(stored, cur, w, n, eta);
    if (!loc.mismatch) {
      out.corrected = out.mismatch;  // clean now (trivially true if never bad)
      return out;
    }
    out.mismatch = true;
    if (!loc.valid) return out;  // not localizable
    apply_correction(data, stride, loc);
    out.index = loc.index;
    ++out.iterations;
  }
  // Ran out of iterations: check whether the last correction landed.
  const DualSum cur = dual_weighted_sum(w, data, n, stride);
  out.corrected =
      !locate_single_error(stored, cur, w, n, eta).mismatch;
  return out;
}

}  // namespace ftfft::checksum
