// Multi-error localization and correction from higher-moment syndromes
// (Reed-Solomon/Prony-style generalization of memory_checksum.hpp; see
// Roche 2018 for the theory of error correction in fast transforms).
//
// The dual checksums of section 4.1 carry two moments of the weighted data
// and therefore pin down one corrupted element. Storing 2t moments
//   S_m = sum_j u_j^m * w_j * x_j,   m = 0..2t-1,   u_j = j / n,
// pins down up to t simultaneous corruptions: with errors delta_i at
// indices j_i, the syndrome differences are d_m = sum_i E_i u_{j_i}^m
// (E_i = w_{j_i} * delta_i), i.e. a t-term exponential sum whose nodes are
// the roots of a degree-t error-locator polynomial. The decoder solves the
// Hankel key equation for the locator, extracts its roots (closed form for
// t <= 2, Durand-Kerner beyond), snaps them to integer indices with the
// same confidence slack locate_single_error uses, recovers the error
// values from a small Vandermonde solve, and accepts only when the
// reconstruction reproduces every stored moment within tolerance.
//
// Nodes are normalized to [0, 1) rather than using raw indices j^m: the
// raw-moment Hankel/Vandermonde systems are catastrophically ill-conditioned
// at FFT sizes (j^7 at j ~ 2^20 overflows the significand), while normalized
// nodes keep every solve O(1)-conditioned and still separate adjacent
// indices at n = 2^20 well inside the 0.25 confidence slack.
//
// S_0 equals the plain dual-checksum sum over the same weights, so the
// round-off tolerance eta derived for the plain sum bounds every moment
// (|u_j| < 1 only shrinks the accumulated terms).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/complex.hpp"

namespace ftfft::checksum {

/// Upper bound on t: 2t moments are stored, and the decoder's dense solves
/// are sized for this. 4 covers realistic burst upsets; raising it is a
/// constant change plus threshold re-validation.
inline constexpr int kMaxCorrectableErrors = 4;
inline constexpr int kMaxMoments = 2 * kMaxCorrectableErrors;

/// Clamps a requested correction capacity into [1, kMaxCorrectableErrors].
[[nodiscard]] int clamp_max_errors(int requested) noexcept;

/// 2t weighted moment sums over one checksummed vector.
struct SyndromeSet {
  std::array<cplx, kMaxMoments> s{};  ///< s[m] = sum_j u_j^m w_j x_j
  int moments = 0;                    ///< 2t; 0 = not generated

  /// Folds one already-weighted contribution w_j * x_j of virtual index j
  /// into every moment (incremental generation, e.g. accumulating block
  /// residues as a virtual vector). inv_n must be 1.0 / n of the virtual
  /// vector so u = j * inv_n matches syndrome_sum's nodes.
  void accumulate(std::size_t j, cplx wx, double inv_n) noexcept {
    cplx p = wx;
    const double u = static_cast<double>(j) * inv_n;
    s[0] += p;
    for (int m = 1; m < moments; ++m) {
      p *= u;
      s[m] += p;
    }
  }

  SyndromeSet& operator+=(const SyndromeSet& o) noexcept {
    for (int m = 0; m < moments; ++m) s[m] += o.s[m];
    return *this;
  }
};

/// Computes the 2t moment sums over x (w == nullptr means all-ones).
/// `nodes2` is the plan-cached duplicated node table from
/// shared_syndrome_nodes(n) — when given and stride == 1 the reduction runs
/// through the active SIMD backend's syndrome_dot kernel; otherwise a scalar
/// loop generates u = j / n on the fly (identical values: both sides
/// multiply by the same precomputed 1/n).
[[nodiscard]] SyndromeSet syndrome_sum(const cplx* w, const cplx* x,
                                       std::size_t n, std::size_t stride,
                                       int moments,
                                       const double* nodes2 = nullptr);

/// Node table for the SIMD moment kernels: 2n doubles, entry pair
/// (2j, 2j+1) both holding u_j = j / n so a vector register load of the pair
/// multiplies the re/im slots of element j elementwise. Process-wide cached
/// ("syndrome-nodes" in plan_cache_stats()).
std::shared_ptr<const std::vector<double>> shared_syndrome_nodes(
    std::size_t n);

/// Outcome of multi-error localization.
struct MultiLocateResult {
  bool mismatch = false;  ///< some moment differs beyond eta
  bool valid = false;     ///< locations recovered with integer confidence
  int count = 0;          ///< number of errors located (<= t)
  std::array<std::size_t, kMaxCorrectableErrors> index{};
  std::array<cplx, kMaxCorrectableErrors> delta{};  ///< ADDED to elements
};

/// Compares stored vs current syndromes and attempts to locate up to
/// `max_errors` simultaneous corruptions. Tries error counts e = 1..t in
/// ascending order and accepts the first hypothesis whose reconstruction
/// explains every moment within tolerance, so a single error decodes
/// through the same path as the dual-checksum scheme.
[[nodiscard]] MultiLocateResult locate_errors(const SyndromeSet& stored,
                                              const SyndromeSet& current,
                                              const cplx* w, std::size_t n,
                                              double eta, int max_errors);

/// Applies every located correction in place: data[index_i * stride] -=
/// delta_i.
void apply_corrections(cplx* data, std::size_t stride,
                       const MultiLocateResult& loc);

/// Outcome of an iterative multi-error repair session.
struct MultiRepairResult {
  bool mismatch = false;   ///< syndromes disagreed at least once
  bool corrected = false;  ///< data now verifies against `stored`
  int errors = 0;          ///< errors corrected in the final decode
  int iterations = 0;      ///< locate/correct rounds performed
};

/// Locates and corrects up to `max_errors` corrupted elements, iterating
/// until the recomputed syndromes match `stored` within eta — the same
/// residue-shrink discipline as repair_single_error: a huge corruption's
/// first recovered delta carries an eps * |corruption| rounding residue that
/// itself exceeds eta, and each round shrinks it by ~eps. Returns
/// corrected == false when the mismatch is not explainable by <= max_errors
/// corruptions (graceful degradation: detected, uncorrected).
[[nodiscard]] MultiRepairResult repair_errors(const SyndromeSet& stored,
                                              cplx* data, std::size_t stride,
                                              const cplx* w, std::size_t n,
                                              double eta, int max_errors,
                                              int max_iters = 6,
                                              const double* nodes2 = nullptr);

}  // namespace ftfft::checksum
