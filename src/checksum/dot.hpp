// Checksum dot products: the primitives every verification step reduces to.
//
// CCG/CCV in the paper are weighted sums sum_j w_j x_j; the memory-fault
// machinery additionally needs the index-weighted companion
// sum_j j * w_j * x_j computed in the same pass (section 4.1 combines both
// so the dual sum reuses the product w_j * x_j, costing 4 extra real ops per
// element instead of a second full pass).
//
// Summation order: stride-1 calls dispatch to the active SIMD backend
// (src/simd), and every backend — including the scalar reference — splits
// the reduction across multiple independent accumulators to break the
// floating-point add dependency chain. Results therefore differ from a
// naive left-to-right sum (and between backends) by ordinary re-association
// round-off, O(eps * sum |terms|). The detection thresholds derived in
// roundoff/model.hpp already bound accumulation error of this shape with a
// safety margin, so the eta coefficients hold unchanged under any backend,
// including FMA-contracted ones.
#pragma once

#include <cstddef>

#include "common/complex.hpp"

namespace ftfft::checksum {

/// sum_j w[j] * x[j * stride], j in [0, n).
[[nodiscard]] cplx weighted_sum(const cplx* w, const cplx* x, std::size_t n,
                                std::size_t stride = 1);

/// Plain and index-weighted sums computed together.
struct DualSum {
  cplx plain{0.0, 0.0};    ///< sum_j w_j x_j
  cplx indexed{0.0, 0.0};  ///< sum_j j * w_j * x_j

  DualSum& operator+=(const DualSum& o) {
    plain += o.plain;
    indexed += o.indexed;
    return *this;
  }
};

/// Dual sum with explicit weights w (w == nullptr means all-ones weights,
/// i.e. the classic r1/r2 memory checksums of section 3.2).
[[nodiscard]] DualSum dual_weighted_sum(const cplx* w, const cplx* x,
                                        std::size_t n, std::size_t stride = 1);

/// Energy sum_j |x_j|^2 over a strided range; used to estimate the input
/// scale that feeds the detection thresholds.
[[nodiscard]] double energy(const cplx* x, std::size_t n,
                            std::size_t stride = 1);

/// Energy with the single largest |x_j|^2 contribution removed. Under the
/// single-fault model a corrupted element can inflate the plain energy by
/// many orders of magnitude, which would inflate the detection threshold
/// derived from it and mask the very error being hunted; dropping the top
/// contributor makes the scale estimate robust to exactly one outlier.
[[nodiscard]] double robust_energy(const cplx* x, std::size_t n,
                                   std::size_t stride = 1);

/// sum_j omega_3^j x_j computed with the 3-cycle trick: bucket the elements
/// by j mod 3 and apply the two nontrivial cube-root weights once at the
/// end. This is the paper's 2-complex-multiplication CCV (section 7.1.1).
[[nodiscard]] cplx omega3_weighted_sum(const cplx* x, std::size_t n,
                                       std::size_t stride = 1);

/// weighted_sum fused with an energy accumulation over the same pass, so
/// threshold estimation costs no extra sweep of the data.
struct SumEnergy {
  cplx sum{0.0, 0.0};
  double energy = 0.0;
};
[[nodiscard]] SumEnergy weighted_sum_energy(const cplx* w, const cplx* x,
                                            std::size_t n,
                                            std::size_t stride = 1);

/// dual_weighted_sum fused with energy (w == nullptr means all-ones).
struct DualSumEnergy {
  DualSum sums;
  double energy = 0.0;
};
[[nodiscard]] DualSumEnergy dual_weighted_sum_energy(const cplx* w,
                                                     const cplx* x,
                                                     std::size_t n,
                                                     std::size_t stride = 1);

/// All-ones dual sums fused with energy and the largest single |x_j|^2:
/// one pass yields everything a memory verification needs — the sums to
/// compare, and an outlier-robust scale (energy - max_norm2) for the
/// threshold even when the data contains the very corruption being checked.
struct DualSumRobust {
  DualSum sums;
  /// Energy excluding the single largest |x_j|^2 (already outlier-robust;
  /// summed in a second cache-hot pass because a huge outlier absorbs the
  /// rest of a naive sum in floating point).
  double energy = 0.0;
  double max_norm2 = 0.0;

  [[nodiscard]] double robust_energy() const { return energy; }
};
[[nodiscard]] DualSumRobust dual_plain_sum_robust(const cplx* x, std::size_t n,
                                                  std::size_t stride = 1);

/// dst = src (contiguous, non-overlapping) copied in one pass fused with the
/// all-ones dual checksum of the stream. The sums are bit-identical to
/// dual_weighted_sum(nullptr, src, n) on the same backend (the kernels share
/// the accumulator structure); the parallel transpose uses this so the
/// message checksum rides the pack/unpack copy instead of a second sweep.
DualSum copy_dual_sum(cplx* dst, const cplx* src, std::size_t n);

}  // namespace ftfft::checksum
