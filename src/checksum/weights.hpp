// Checksum weight vectors for ABFT FFT (paper sections 2.2 and 4.1).
//
// The computational checksum weights are r_j = omega_3^j with omega_3 a
// primitive cube root of unity (Wang & Jha's encoding). Verifying
//   sum_j r_j X_j  ==  sum_t (rA)_t x_t
// detects any single computational error in X = A x. (rA) is the "input
// checksum vector"; by geometric summation it has the closed form
//   (rA)_t = (1 - omega_3^n) / (1 - omega_3 * omega_n^t),
// valid whenever 3 does not divide n (for 3 | n the weight vector r is
// itself a Fourier mode of the transform and the encoding degenerates, so
// those sizes are rejected — every size FFTW's power-of-two plans produce is
// fine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/complex.hpp"

namespace ftfft::checksum {

/// How to evaluate the closed form for (rA).
enum class RaGenMethod {
  /// One sin/cos pair per element: the obvious implementation, and the
  /// reason the paper's naive offline scheme is slow (Fig. 7 first bar).
  kNaiveTrig,
  /// Incremental recurrence omega_n^(t+1) = omega_n^t * omega_n with
  /// periodic resync against libm, i.e. the paper's "2 complex
  /// multiplications" optimization (section 7.1.1).
  kClosedForm,
};

/// r_j = omega_3^j for j in [0, n). Exact constants, no trig.
std::vector<cplx> comp_weights(std::size_t n);

/// Process-wide cached comp_weights(n), LRU-bounded through the shared
/// PlanRegistry. The fused-checksum kernels (PR 6) consume the output
/// weights as a materialized vector — the separate-pass omega3_weighted_sum
/// never needed one — so plans share a single immutable copy per size.
std::shared_ptr<const std::vector<cplx>> shared_comp_weights(std::size_t n);

/// The input checksum vector rA for an n-point DFT. Throws
/// std::invalid_argument when 3 divides n (degenerate encoding, see above).
std::vector<cplx> input_checksum_vector(std::size_t n, RaGenMethod method);

/// DMR-protected generation (paper Algorithm 2 line 3): the vector is
/// produced twice and compared elementwise; on mismatch a third copy
/// majority-votes. `faulty_copy` lets tests and the fault injector corrupt
/// exactly one of the redundant executions (0 = none).
std::vector<cplx> input_checksum_vector_dmr(std::size_t n, RaGenMethod method,
                                            int faulty_copy = 0,
                                            std::size_t corrupt_index = 0);

/// Process-wide cached (rA) vector, LRU-bounded through the shared
/// PlanRegistry. The generation runs under DMR once per cache fill; the
/// returned copy is immutable and shared between every plan and transform
/// of the same (n, method). This is what turns rA generation from
/// O(lanes * n) into O(n) per batch of identical-size lanes.
std::shared_ptr<const std::vector<cplx>> shared_input_checksum_vector(
    std::size_t n, RaGenMethod method);

/// Number of raw (rA) generation passes performed process-wide (each DMR
/// generation counts its redundant executions individually). Test and bench
/// hook for verifying that batched lanes amortize generation.
[[nodiscard]] std::uint64_t ra_generations() noexcept;

}  // namespace ftfft::checksum
