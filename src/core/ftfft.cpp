#include "core/ftfft.hpp"

#include "abft/protection_plan.hpp"
#include "common/error.hpp"

namespace ftfft {

FtPlan::FtPlan(std::size_t n, PlanConfig config) : n_(n), config_(config) {
  detail::require(n >= 1, "FtPlan: size must be >= 1");
}

abft::Options make_abft_options(const PlanConfig& config) {
  abft::Options o = config.optimized
                        ? abft::Options::online_opt(
                              config.memory_fault_tolerance)
                        : abft::Options::online_naive(
                              config.memory_fault_tolerance);
  switch (config.protection) {
    case Protection::kNone:
      o.mode = abft::Mode::kNone;
      break;
    case Protection::kOffline:
      o.mode = abft::Mode::kOffline;
      break;
    case Protection::kOnline:
      o.mode = abft::Mode::kOnline;
      break;
  }
  o.eta_override = config.eta_override;
  o.max_retries = config.max_retries;
  o.injector = config.injector;
  return o;
}

engine::BatchReport transform_batch(std::span<const engine::Lane> lanes,
                                    std::size_t n, const PlanConfig& config) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  return engine::BatchEngine::shared().transform_batch(lanes, n, opts);
}

abft::Options FtPlan::abft_options() const {
  return make_abft_options(config_);
}

const abft::ProtectionPlan* FtPlan::protection_plan(bool inplace) {
  auto& slot = inplace ? plan_inplace_ : plan_;
  if (slot == nullptr) {
    slot = abft::resolve_protection_plan(n_, abft_options(), inplace);
  }
  return slot.get();
}

void FtPlan::forward(cplx* in, cplx* out) {
  stats_.reset();
  abft::protected_transform(in, out, n_, abft_options(), stats_,
                            protection_plan(false));
}

std::vector<cplx> FtPlan::forward(std::vector<cplx> input) {
  detail::require(input.size() == n_, "FtPlan::forward: size mismatch");
  std::vector<cplx> out(n_);
  forward(input.data(), out.data());
  return out;
}

void FtPlan::forward_inplace(cplx* data) {
  stats_.reset();
  abft::protected_transform_inplace(data, n_, abft_options(), stats_,
                                    protection_plan(true));
}

void FtPlan::backward(cplx* in, cplx* out) {
  // idft(x) = conj(dft(conj(x))) / n, with the inner dft protected.
  if (scratch_.size() < n_) scratch_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) scratch_[t] = std::conj(in[t]);
  stats_.reset();
  abft::protected_transform(scratch_.data(), out, n_, abft_options(), stats_,
                            protection_plan(false));
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t t = 0; t < n_; ++t) out[t] = std::conj(out[t]) * inv_n;
}

const char* FtPlan::version() { return "ftfft 1.0.0 (SC'17 reproduction)"; }

}  // namespace ftfft
