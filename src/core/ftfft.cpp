#include "core/ftfft.hpp"

#include "abft/protection_plan.hpp"
#include "common/error.hpp"
#include "fft/inplace_radix2.hpp"
#include "fft/plan.hpp"

namespace ftfft {

namespace {

// Materializes the unprotected-executor plans one transform of size n will
// touch: the mixed-radix decomposition tree and, for power-of-two sizes,
// the iterative in-place plan (Fft::execute_inplace dispatches to it).
void warm_fft_plans(std::size_t n) {
  if (n < 2) return;
  (void)fft::make_plan(n);
  if ((n & (n - 1)) == 0) (void)fft::InplaceRadix2Plan::get(n);
}

}  // namespace

FtPlan::FtPlan(std::size_t n, PlanConfig config) : n_(n), config_(config) {
  detail::require(n >= 1, "FtPlan: size must be >= 1");
}

abft::Options make_abft_options(const PlanConfig& config) {
  abft::Options o = config.optimized
                        ? abft::Options::online_opt(
                              config.memory_fault_tolerance)
                        : abft::Options::online_naive(
                              config.memory_fault_tolerance);
  switch (config.protection) {
    case Protection::kNone:
      o.mode = abft::Mode::kNone;
      break;
    case Protection::kOffline:
      o.mode = abft::Mode::kOffline;
      break;
    case Protection::kOnline:
      o.mode = abft::Mode::kOnline;
      break;
  }
  o.eta_override = config.eta_override;
  o.max_retries = config.max_retries;
  if (config.max_correctable_errors > 0) {
    o.max_correctable_errors = config.max_correctable_errors;
  }
  o.injector = config.injector;
  return o;
}

engine::BatchReport transform_batch(std::span<const engine::Lane> lanes,
                                    std::size_t n, const PlanConfig& config) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  // The engine's blocking wrapper rather than submit(...).get(): it keeps
  // the inline single-lane fast path.
  return engine::BatchEngine::shared().transform_batch(lanes, n, opts);
}

engine::BatchFuture submit_batch(std::span<const engine::Lane> lanes,
                                 std::size_t n, const PlanConfig& config,
                                 const engine::SubmitOptions& submit) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  opts.submit = submit;
  return engine::BatchEngine::shared().submit_batch(lanes, n, opts);
}

std::optional<engine::BatchFuture> try_submit_batch(
    std::span<const engine::Lane> lanes, std::size_t n,
    const PlanConfig& config, const engine::SubmitOptions& submit) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  opts.submit = submit;
  return engine::BatchEngine::shared().try_submit_batch(lanes, n, opts);
}

std::size_t warm_plans(std::span<const std::size_t> sizes,
                       const PlanConfig& config) {
  const abft::Options opts = make_abft_options(config);
  std::size_t resident = 0;
  for (const std::size_t n : sizes) {
    if (n < 1) continue;
    // Protection kNone resolves to no ProtectionPlan; the FFT plans below
    // are still the first-request cost worth prepaying.
    const abft::ProtectionPlan* prev = nullptr;
    for (const bool inplace : {false, true}) {
      try {
        const auto plan = abft::resolve_protection_plan(n, opts, inplace);
        if (plan == nullptr) continue;
        // kOffline resolves both variants to the same cache entry; count
        // distinct plans, not resolutions.
        if (plan.get() != prev) ++resident;
        prev = plan.get();
        switch (plan->scheme()) {
          case abft::Scheme::kOffline:
            warm_fft_plans(n);
            break;
          case abft::Scheme::kOnline:
            warm_fft_plans(plan->m());
            warm_fft_plans(plan->k());
            break;
          case abft::Scheme::kOnlineInplace:
            warm_fft_plans(plan->k());
            break;
        }
      } catch (const std::invalid_argument&) {
        // This (size, variant) combination is unsupported (e.g. square-free
        // n for the in-place k*r*k shape); a real submission of it would
        // fail per lane, so there is nothing to prepay.
      }
    }
    warm_fft_plans(n);
  }
  return resident;
}

std::size_t warm_real_plans(std::span<const std::size_t> sizes,
                            const PlanConfig& config) {
  const abft::Options opts = make_abft_options(config);
  std::size_t resident = 0;
  for (const std::size_t n : sizes) {
    try {
      if (opts.mode == abft::Mode::kNone) {
        // Building the RealFftPlan resolves the packed n/2-point in-place
        // plan with it; no protection state is needed.
        (void)fft::RealFftPlan::get(n);
        ++resident;
        continue;
      }
      (void)abft::RealProtectionPlan::get(n);
      ++resident;
      // The packed transform's protection plan and the sub-FFT
      // decompositions its executor touches, exactly like warm_plans.
      const auto cplan = abft::resolve_real_packed_plan(n, opts);
      if (cplan != nullptr) {
        switch (cplan->scheme()) {
          case abft::Scheme::kOffline:
            warm_fft_plans(cplan->n());
            break;
          case abft::Scheme::kOnline:
            warm_fft_plans(cplan->m());
            warm_fft_plans(cplan->k());
            break;
          case abft::Scheme::kOnlineInplace:
            warm_fft_plans(cplan->k());
            break;
        }
      }
    } catch (const std::invalid_argument&) {
      // Not a power of two >= 2: a real submission of this size would fail
      // per lane, so there is nothing to prepay.
    }
  }
  return resident;
}

engine::BatchReport transform_real_batch(
    std::span<const engine::RealLane> lanes, std::size_t n,
    engine::RealDirection dir, const PlanConfig& config) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  return engine::BatchEngine::shared().transform_real_batch(lanes, n, dir,
                                                            opts);
}

engine::BatchFuture submit_real_batch(std::span<const engine::RealLane> lanes,
                                      std::size_t n, engine::RealDirection dir,
                                      const PlanConfig& config,
                                      const engine::SubmitOptions& submit) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  opts.submit = submit;
  return engine::BatchEngine::shared().submit_real_batch(lanes, n, dir, opts);
}

std::optional<engine::BatchFuture> try_submit_real_batch(
    std::span<const engine::RealLane> lanes, std::size_t n,
    engine::RealDirection dir, const PlanConfig& config,
    const engine::SubmitOptions& submit) {
  engine::BatchOptions opts;
  opts.abft = make_abft_options(config);
  opts.submit = submit;
  return engine::BatchEngine::shared().try_submit_real_batch(lanes, n, dir,
                                                             opts);
}

engine::BatchFuture FtPlan::submit_batch(
    std::span<const engine::Lane> lanes,
    const engine::SubmitOptions& submit) const {
  return ftfft::submit_batch(lanes, n_, config_, submit);
}

abft::Options FtPlan::abft_options() const {
  return make_abft_options(config_);
}

const abft::ProtectionPlan* FtPlan::protection_plan(bool inplace) {
  auto& slot = inplace ? plan_inplace_ : plan_;
  if (slot == nullptr) {
    slot = abft::resolve_protection_plan(n_, abft_options(), inplace);
  }
  return slot.get();
}

void FtPlan::forward(cplx* in, cplx* out) {
  stats_.reset();
  abft::protected_transform(in, out, n_, abft_options(), stats_,
                            protection_plan(false));
}

std::vector<cplx> FtPlan::forward(std::vector<cplx> input) {
  detail::require(input.size() == n_, "FtPlan::forward: size mismatch");
  std::vector<cplx> out(n_);
  forward(input.data(), out.data());
  return out;
}

void FtPlan::forward_inplace(cplx* data) {
  stats_.reset();
  abft::protected_transform_inplace(data, n_, abft_options(), stats_,
                                    protection_plan(true));
}

void FtPlan::backward(cplx* in, cplx* out) {
  // idft(x) = conj(dft(conj(x))) / n, with the inner dft protected.
  if (scratch_.size() < n_) scratch_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) scratch_[t] = std::conj(in[t]);
  stats_.reset();
  abft::protected_transform(scratch_.data(), out, n_, abft_options(), stats_,
                            protection_plan(false));
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t t = 0; t < n_; ++t) out[t] = std::conj(out[t]) * inv_n;
}

const char* FtPlan::version() { return "ftfft 1.0.0 (SC'17 reproduction)"; }

}  // namespace ftfft
