#include "core/ftfft.hpp"

#include "common/error.hpp"

namespace ftfft {

FtPlan::FtPlan(std::size_t n, PlanConfig config) : n_(n), config_(config) {
  detail::require(n >= 1, "FtPlan: size must be >= 1");
}

abft::Options FtPlan::abft_options() const {
  abft::Options o = config_.optimized
                        ? abft::Options::online_opt(
                              config_.memory_fault_tolerance)
                        : abft::Options::online_naive(
                              config_.memory_fault_tolerance);
  switch (config_.protection) {
    case Protection::kNone:
      o.mode = abft::Mode::kNone;
      break;
    case Protection::kOffline:
      o.mode = abft::Mode::kOffline;
      break;
    case Protection::kOnline:
      o.mode = abft::Mode::kOnline;
      break;
  }
  o.eta_override = config_.eta_override;
  o.max_retries = config_.max_retries;
  o.injector = config_.injector;
  return o;
}

void FtPlan::forward(cplx* in, cplx* out) {
  stats_.reset();
  abft::protected_transform(in, out, n_, abft_options(), stats_);
}

std::vector<cplx> FtPlan::forward(std::vector<cplx> input) {
  detail::require(input.size() == n_, "FtPlan::forward: size mismatch");
  std::vector<cplx> out(n_);
  forward(input.data(), out.data());
  return out;
}

void FtPlan::forward_inplace(cplx* data) {
  stats_.reset();
  switch (config_.protection) {
    case Protection::kNone: {
      fft::Fft engine(n_);
      engine.execute_inplace(data);
      return;
    }
    case Protection::kOffline: {
      // Offline protection has no in-place recovery story (the restart
      // input is gone); stage through scratch so the checksummed transform
      // still sees an intact input copy.
      if (scratch_.size() < n_) scratch_.resize(n_);
      std::copy(data, data + n_, scratch_.begin());
      abft::protected_transform(scratch_.data(), data, n_, abft_options(),
                                stats_);
      return;
    }
    case Protection::kOnline:
      abft::inplace_online_transform(data, n_, abft_options(), stats_);
      return;
  }
}

void FtPlan::backward(cplx* in, cplx* out) {
  // idft(x) = conj(dft(conj(x))) / n, with the inner dft protected.
  if (scratch_.size() < n_) scratch_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) scratch_[t] = std::conj(in[t]);
  stats_.reset();
  abft::protected_transform(scratch_.data(), out, n_, abft_options(), stats_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t t = 0; t < n_; ++t) out[t] = std::conj(out[t]) * inv_n;
}

const char* FtPlan::version() { return "ftfft 1.0.0 (SC'17 reproduction)"; }

}  // namespace ftfft
