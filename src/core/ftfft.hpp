// FT-FFT public API.
//
// One include gives a downstream user the whole library:
//
//   #include "core/ftfft.hpp"
//
//   ftfft::FtPlan plan(1 << 20);           // online ABFT, memory FT, optimized
//   auto spectrum = plan.forward(signal);  // soft-error-protected transform
//   plan.last_stats();                     // what the fault tolerance did
//
// FtPlan wraps the sequential schemes (abft/); the distributed transform
// lives in parallel/parallel_fft.hpp and the raw unprotected engine in
// fft/fft.hpp. All of those headers are re-exported here.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "abft/inplace.hpp"     // IWYU pragma: export
#include "abft/options.hpp"     // IWYU pragma: export
#include "abft/protected_fft.hpp"  // IWYU pragma: export
#include "abft/real_protection.hpp"  // IWYU pragma: export
#include "common/complex.hpp"   // IWYU pragma: export
#include "common/error.hpp"     // IWYU pragma: export
#include "common/plan_registry.hpp"  // IWYU pragma: export (plan_cache_stats)
#include "common/rng.hpp"       // IWYU pragma: export
#include "engine/batch_engine.hpp"  // IWYU pragma: export
#include "fault/injector.hpp"   // IWYU pragma: export
#include "fft/fft.hpp"          // IWYU pragma: export
#include "fft/real_fft.hpp"     // IWYU pragma: export
#include "parallel/parallel_fft.hpp"  // IWYU pragma: export

namespace ftfft {

/// Protection level of a plan.
enum class Protection {
  kNone,     ///< plain FFT (fastest, no fault tolerance)
  kOffline,  ///< one checksum over the whole transform (Algorithm 1)
  kOnline,   ///< per-sub-FFT checksums, online correction (Algorithm 2)
};

/// Plan-wide configuration.
struct PlanConfig {
  Protection protection = Protection::kOnline;
  /// Also detect/locate/correct memory faults (paper section 3.2).
  bool memory_fault_tolerance = true;
  /// Apply the section-4 overhead optimizations (off = the paper's naive
  /// variants, useful for measurement only).
  bool optimized = true;
  /// Detection threshold override (0 = derive from the round-off model).
  double eta_override = 0.0;
  /// Re-execution budget per protection unit.
  int max_retries = 4;
  /// Simultaneous-error budget per checksummed block: 0 inherits the
  /// process default (`FTFFT_MAX_ERRORS`, normally 1 = dual-checksum
  /// behavior); 2..4 enables the 2t-moment syndrome decoder.
  int max_correctable_errors = 0;
  /// Optional fault injector for experiments.
  fault::Injector* injector = nullptr;
};

/// Translates the plan-level configuration into the ABFT option set used by
/// both FtPlan and the batch entry points. Exposed so batch callers can
/// tweak individual switches before submitting.
[[nodiscard]] abft::Options make_abft_options(const PlanConfig& config);

/// Runs the protected n-point transform on every lane concurrently on the
/// process-wide shared BatchEngine, blocking until the batch completes.
/// Lanes share `config`; schedule per-lane injectors through
/// engine::Lane::injector. See engine/batch_engine.hpp for the full
/// contract (per-lane stats, failure isolation).
engine::BatchReport transform_batch(std::span<const engine::Lane> lanes,
                                    std::size_t n,
                                    const PlanConfig& config = {});

/// Queues the batch on the process-wide shared BatchEngine and returns
/// immediately; overlap admission/I-O with in-flight transforms and
/// collect the report through the future. The lane descriptors are copied,
/// but the buffers they point to must stay alive until the future is
/// ready. Thread-safe: any number of serving threads may submit
/// concurrently.
/// `submit` carries the serving-grade scheduling knobs — priority class,
/// deadline, shedding eligibility and admission timeout (see
/// engine::SubmitOptions); the default is the engine's env-configured
/// class with no deadline.
engine::BatchFuture submit_batch(std::span<const engine::Lane> lanes,
                                 std::size_t n, const PlanConfig& config = {},
                                 const engine::SubmitOptions& submit = {});

/// Non-blocking admission on the shared engine: when the pending-lane cap
/// (FTFFT_ENGINE_QUEUE_CAP) is reached and shedding cannot make room,
/// returns an empty optional immediately instead of waiting — the serving
/// front door's fail-fast path. Misuse still throws std::invalid_argument.
std::optional<engine::BatchFuture> try_submit_batch(
    std::span<const engine::Lane> lanes, std::size_t n,
    const PlanConfig& config = {}, const engine::SubmitOptions& submit = {});

/// Pre-resolves every plan a serving layer with a known size distribution
/// will need — FFT decomposition plans (including the sub-FFT sizes the
/// protected schemes execute) and the ABFT ProtectionPlans, out-of-place
/// and in-place variants — so the first submission of each size is a pure
/// cache hit: zero rA-generation passes, zero plan builds. Variants a size
/// does not support (e.g. the in-place k*r*k shape for square-free n) are
/// skipped. Returns the number of distinct ProtectionPlans resident for
/// the requested sizes (already-cached plans count — they are resident).
std::size_t warm_plans(std::span<const std::size_t> sizes,
                       const PlanConfig& config = {});

/// Real-transform analogue of warm_plans: pre-resolves, per size, the
/// RealFftPlan (with its packed n/2-point in-place plan), the
/// RealProtectionPlan and the packed transform's complex ProtectionPlan
/// with its sub-FFT decompositions — so a warmed submit_real_batch does
/// zero plan builds and zero rA-generation passes. Sizes that are not a
/// power of two >= 2 are skipped. Returns the number of distinct
/// RealProtectionPlans (RealFftPlans under Protection::kNone) resident for
/// the requested sizes.
std::size_t warm_real_plans(std::span<const std::size_t> sizes,
                            const PlanConfig& config = {});

/// Runs the protected real n-point transform (r2c or c2r per `dir`) on
/// every lane concurrently on the process-wide shared BatchEngine,
/// blocking until the batch completes. See engine/batch_engine.hpp.
engine::BatchReport transform_real_batch(
    std::span<const engine::RealLane> lanes, std::size_t n,
    engine::RealDirection dir, const PlanConfig& config = {});

/// Queues the real batch on the process-wide shared BatchEngine and
/// returns immediately; same buffer-lifetime contract and scheduling
/// knobs as submit_batch.
engine::BatchFuture submit_real_batch(std::span<const engine::RealLane> lanes,
                                      std::size_t n, engine::RealDirection dir,
                                      const PlanConfig& config = {},
                                      const engine::SubmitOptions& submit = {});

/// Non-blocking admission for real batches (see try_submit_batch).
std::optional<engine::BatchFuture> try_submit_real_batch(
    std::span<const engine::RealLane> lanes, std::size_t n,
    engine::RealDirection dir, const PlanConfig& config = {},
    const engine::SubmitOptions& submit = {});

/// A reusable soft-error-protected transform of one size.
///
/// Thread-compatibility: a plan holds per-execution statistics, so share
/// one plan per thread (constructing extra plans is cheap — the heavy
/// decomposition tables are cached process-wide).
class FtPlan {
 public:
  explicit FtPlan(std::size_t n, PlanConfig config = {});

  /// Protected out-of-place forward DFT. `in` is non-const: detected input
  /// memory faults are repaired in the caller's array (the input is
  /// otherwise preserved).
  void forward(cplx* in, cplx* out);

  /// Convenience overload: copies the input, returns the spectrum.
  [[nodiscard]] std::vector<cplx> forward(std::vector<cplx> input);

  /// Protected in-place forward DFT (the k*r*k scheme of section 5 when
  /// protection is kOnline; plain/offline otherwise). Natural-order output.
  void forward_inplace(cplx* data);

  /// Protected inverse DFT (1/n normalized), implemented as the conjugate
  /// of a protected forward transform; the conjugation passes themselves
  /// are unprotected O(n) copies.
  void backward(cplx* in, cplx* out);

  /// Queues a batch of this plan's size and configuration on the shared
  /// BatchEngine and returns immediately (see ftfft::submit_batch). Unlike
  /// forward(), this does not touch the plan's per-execution statistics —
  /// per-lane stats arrive in the future's BatchReport — so one FtPlan may
  /// issue submissions from many threads. `submit` carries the scheduling
  /// class/deadline/shedding knobs.
  [[nodiscard]] engine::BatchFuture submit_batch(
      std::span<const engine::Lane> lanes,
      const engine::SubmitOptions& submit = {}) const;

  /// Statistics of the most recent execution on this plan.
  [[nodiscard]] const abft::Stats& last_stats() const { return stats_; }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const PlanConfig& config() const { return config_; }

  /// Library version string.
  static const char* version();

 private:
  [[nodiscard]] abft::Options abft_options() const;

  /// Resolves (once) and returns the shared ProtectionPlan for this plan's
  /// size and options; nullptr when protection is kNone. The plan is held
  /// across calls so repeated transforms skip even the cache lookup.
  const abft::ProtectionPlan* protection_plan(bool inplace);

  std::size_t n_;
  PlanConfig config_;
  abft::Stats stats_;
  std::vector<cplx> scratch_;
  std::shared_ptr<const abft::ProtectionPlan> plan_;          // out-of-place
  std::shared_ptr<const abft::ProtectionPlan> plan_inplace_;  // k*r*k
};

}  // namespace ftfft
