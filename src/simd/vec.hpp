// Vector abstraction over interleaved complex doubles.
//
// Each backend type packs `width` std::complex<double> values (stored
// re,im,re,im,...) into one register and exposes the small op set the
// kernel templates in kernels_impl.hpp need: loads/stores, add/sub, complex
// multiply, +/-i rotation, elementwise (real) FMA for energy and
// index-weighted sums, and the compare/blend pair the argmax trackers use.
//
// Backends:
//   ScalarVec - width 1, plain std::complex arithmetic. This is the
//               reference: its TU is compiled with -ffp-contract=off so the
//               schoolbook mul/add sequence is exactly what runs.
//   Avx2Vec   - width 2, AVX2 + FMA. Only defined in TUs compiled with
//               -mavx2 -mfma (CMake sets FTFFT_BUILD_AVX2 on that one TU).
//   NeonVec   - width 1, aarch64 NEON with fused multiply-add.
//
// Complex multiply uses FMA where the ISA has it, so backends agree with the
// scalar reference only up to round-off; the checksum thresholds already
// model that (see checksum/dot.hpp).
#pragma once

#include <cstddef>
#include <cstring>

#include "common/complex.hpp"

#if defined(FTFFT_BUILD_AVX2) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define FTFFT_VEC_HAVE_AVX2 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define FTFFT_VEC_HAVE_NEON 1
#endif

namespace ftfft::simd {

// ------------------------------------------------------------------ scalar

struct ScalarVec {
  static constexpr std::size_t width = 1;
  cplx v;

  static ScalarVec load(const cplx* p) noexcept { return {*p}; }
  /// Loads 2*width raw doubles (e.g. the duplicated syndrome node table).
  static ScalarVec load_raw(const double* p) noexcept {
    return {cplx{p[0], p[1]}};
  }
  /// Loads `width` elements p[0], p[stride], ...
  static ScalarVec gather(const cplx* p, std::size_t) noexcept { return {*p}; }
  void store(cplx* p) const noexcept { *p = v; }
  /// Dumps the 2*width underlying doubles.
  void store_raw(double* p) const noexcept {
    p[0] = v.real();
    p[1] = v.imag();
  }
  static ScalarVec broadcast(cplx c) noexcept { return {c}; }
  static ScalarVec zero() noexcept { return {cplx{0.0, 0.0}}; }

  ScalarVec operator+(ScalarVec o) const noexcept { return {v + o.v}; }
  ScalarVec operator-(ScalarVec o) const noexcept { return {v - o.v}; }

  /// Complex multiply, schoolbook 4-mul/2-add (matches ftfft::cmul).
  ScalarVec cmul(ScalarVec w) const noexcept { return {ftfft::cmul(v, w.v)}; }
  /// Complex multiply with contraction structurally ruled out: plain
  /// mul/add even on FMA backends, so every backend produces the exact
  /// schoolbook rounding. The real-transform post-pass uses this so its
  /// outputs are bitwise identical across backends (unlike cmul, whose FMA
  /// variants agree with scalar only up to round-off). Here cmul is already
  /// the reference: this TU pins -ffp-contract=off.
  ScalarVec cmul_nofma(ScalarVec w) const noexcept { return cmul(w); }
  ScalarVec conj_() const noexcept { return {std::conj(v)}; }
  ScalarVec mul_i() const noexcept { return {ftfft::mul_i(v)}; }
  ScalarVec mul_neg_i() const noexcept { return {ftfft::mul_neg_i(v)}; }

  /// Elementwise (NOT complex) this*b + acc over the underlying doubles.
  ScalarVec fmadd_elem(ScalarVec b, ScalarVec acc) const noexcept {
    return {cplx{v.real() * b.v.real() + acc.v.real(),
                 v.imag() * b.v.imag() + acc.v.imag()}};
  }

  /// Both slots multiplied by a real scalar (matches cplx::operator*=(double)
  /// rounding; a plain multiply, never contracted into an FMA).
  ScalarVec scale(double s) const noexcept {
    return {cplx{v.real() * s, v.imag() * s}};
  }

  /// Complex lanes in reverse order (width-1: identity). The Hermitian
  /// pair sweep of the real-transform post-pass walks one pointer forward
  /// and its mirror backward with this.
  ScalarVec reversed() const noexcept { return *this; }

  /// Sum of the complex lanes (lane order, deterministic).
  cplx hsum() const noexcept { return v; }
  /// Sum of all 2*width underlying doubles.
  double hsum_slots() const noexcept { return v.real() + v.imag(); }

  /// Real multiplier vectors for the index-weighted sums: lane l carries the
  /// value (base + l) in both its re and im slots.
  static ScalarVec first_index() noexcept { return {cplx{0.0, 0.0}}; }
  static ScalarVec index_step() noexcept { return {cplx{1.0, 1.0}}; }

  /// Per lane: both slots replaced by re^2 + im^2 of that lane.
  static ScalarVec norm2_dup(ScalarVec x) noexcept {
    const double n = norm2(x.v);
    return {cplx{n, n}};
  }
  /// All-ones mask per slot where a > b.
  static ScalarVec cmp_gt(ScalarVec a, ScalarVec b) noexcept {
    return {cplx{a.v.real() > b.v.real() ? 1.0 : 0.0,
                 a.v.imag() > b.v.imag() ? 1.0 : 0.0}};
  }
  /// mask-slot nonzero ? b : a.
  static ScalarVec blend(ScalarVec a, ScalarVec b, ScalarVec mask) noexcept {
    return {cplx{mask.v.real() != 0.0 ? b.v.real() : a.v.real(),
                 mask.v.imag() != 0.0 ? b.v.imag() : a.v.imag()}};
  }
};

// ------------------------------------------------------------------- AVX2

#if FTFFT_VEC_HAVE_AVX2

struct Avx2Vec {
  static constexpr std::size_t width = 2;
  __m256d v;

  static Avx2Vec load(const cplx* p) noexcept {
    return {_mm256_loadu_pd(reinterpret_cast<const double*>(p))};
  }
  static Avx2Vec load_raw(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  static Avx2Vec gather(const cplx* p, std::size_t stride) noexcept {
    const __m128d lo = _mm_loadu_pd(reinterpret_cast<const double*>(p));
    const __m128d hi =
        _mm_loadu_pd(reinterpret_cast<const double*>(p + stride));
    return {_mm256_set_m128d(hi, lo)};
  }
  void store(cplx* p) const noexcept {
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
  }
  void store_raw(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  static Avx2Vec broadcast(cplx c) noexcept {
    return {_mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag())};
  }
  static Avx2Vec zero() noexcept { return {_mm256_setzero_pd()}; }

  Avx2Vec operator+(Avx2Vec o) const noexcept {
    return {_mm256_add_pd(v, o.v)};
  }
  Avx2Vec operator-(Avx2Vec o) const noexcept {
    return {_mm256_sub_pd(v, o.v)};
  }

  Avx2Vec cmul(Avx2Vec w) const noexcept {
    const __m256d wr = _mm256_movedup_pd(w.v);       // [wr, wr, ...]
    const __m256d wi = _mm256_permute_pd(w.v, 0xF);  // [wi, wi, ...]
    const __m256d xs = _mm256_permute_pd(v, 0x5);    // [xi, xr, ...]
    // even slot: xr*wr - xi*wi, odd slot: xi*wr + xr*wi.
    return {_mm256_fmaddsub_pd(v, wr, _mm256_mul_pd(xs, wi))};
  }
  Avx2Vec cmul_nofma(Avx2Vec w) const noexcept {
    const __m256d wr = _mm256_movedup_pd(w.v);
    const __m256d wi = _mm256_permute_pd(w.v, 0xF);
    const __m256d xs = _mm256_permute_pd(v, 0x5);
    // Same slots as cmul, but addsub of two plain products instead of
    // fmaddsub: exactly the scalar schoolbook rounding, bit-identical to
    // ScalarVec::cmul_nofma.
    return {_mm256_addsub_pd(_mm256_mul_pd(v, wr), _mm256_mul_pd(xs, wi))};
  }
  Avx2Vec conj_() const noexcept {
    return {_mm256_xor_pd(v, _mm256_setr_pd(0.0, -0.0, 0.0, -0.0))};
  }
  Avx2Vec mul_i() const noexcept {
    const __m256d xs = _mm256_permute_pd(v, 0x5);  // [xi, xr, ...]
    return {_mm256_xor_pd(xs, _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0))};
  }
  Avx2Vec mul_neg_i() const noexcept {
    const __m256d xs = _mm256_permute_pd(v, 0x5);
    return {_mm256_xor_pd(xs, _mm256_setr_pd(0.0, -0.0, 0.0, -0.0))};
  }

  Avx2Vec fmadd_elem(Avx2Vec b, Avx2Vec acc) const noexcept {
    return {_mm256_fmadd_pd(v, b.v, acc.v)};
  }

  Avx2Vec scale(double s) const noexcept {
    return {_mm256_mul_pd(v, _mm256_set1_pd(s))};
  }

  Avx2Vec reversed() const noexcept {
    return {_mm256_permute2f128_pd(v, v, 1)};  // swap the two cplx lanes
  }

  cplx hsum() const noexcept {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    alignas(16) double out[2];
    _mm_store_pd(out, s);
    return {out[0], out[1]};
  }
  double hsum_slots() const noexcept {
    const cplx s = hsum();
    return s.real() + s.imag();
  }

  static Avx2Vec first_index() noexcept {
    return {_mm256_setr_pd(0.0, 0.0, 1.0, 1.0)};
  }
  static Avx2Vec index_step() noexcept { return {_mm256_set1_pd(2.0)}; }

  static Avx2Vec norm2_dup(Avx2Vec x) noexcept {
    const __m256d sq = _mm256_mul_pd(x.v, x.v);
    return {_mm256_hadd_pd(sq, sq)};  // [n0, n0, n1, n1]
  }
  static Avx2Vec cmp_gt(Avx2Vec a, Avx2Vec b) noexcept {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  static Avx2Vec blend(Avx2Vec a, Avx2Vec b, Avx2Vec mask) noexcept {
    return {_mm256_blendv_pd(a.v, b.v, mask.v)};
  }
};

#endif  // FTFFT_VEC_HAVE_AVX2

// ------------------------------------------------------------------- NEON

#if FTFFT_VEC_HAVE_NEON

struct NeonVec {
  static constexpr std::size_t width = 1;
  float64x2_t v;  // [re, im]

  static NeonVec load(const cplx* p) noexcept {
    return {vld1q_f64(reinterpret_cast<const double*>(p))};
  }
  static NeonVec load_raw(const double* p) noexcept { return {vld1q_f64(p)}; }
  static NeonVec gather(const cplx* p, std::size_t) noexcept {
    return load(p);
  }
  void store(cplx* p) const noexcept {
    vst1q_f64(reinterpret_cast<double*>(p), v);
  }
  void store_raw(double* p) const noexcept { vst1q_f64(p, v); }
  static NeonVec broadcast(cplx c) noexcept {
    const double raw[2] = {c.real(), c.imag()};
    return {vld1q_f64(raw)};
  }
  static NeonVec zero() noexcept { return {vdupq_n_f64(0.0)}; }

  NeonVec operator+(NeonVec o) const noexcept { return {vaddq_f64(v, o.v)}; }
  NeonVec operator-(NeonVec o) const noexcept { return {vsubq_f64(v, o.v)}; }

  NeonVec cmul(NeonVec w) const noexcept {
    const float64x2_t wr = vdupq_laneq_f64(w.v, 0);
    const float64x2_t wi = vdupq_laneq_f64(w.v, 1);
    const float64x2_t xs = vextq_f64(v, v, 1);  // [im, re]
    // [-xi*wi, +xr*wi] then fused += [xr*wr, xi*wr].
    const double sgn_raw[2] = {-1.0, 1.0};
    const float64x2_t t = vmulq_f64(vmulq_f64(xs, wi), vld1q_f64(sgn_raw));
    return {vfmaq_f64(t, v, wr)};
  }
  NeonVec cmul_nofma(NeonVec w) const noexcept {
    const float64x2_t wr = vdupq_laneq_f64(w.v, 0);
    const float64x2_t wi = vdupq_laneq_f64(w.v, 1);
    const float64x2_t xs = vextq_f64(v, v, 1);
    // Plain add instead of the fused accumulate of cmul: [-xi*wi + xr*wr,
    // xr*wi + xi*wr], value-identical to the scalar schoolbook sequence
    // (negation is exact and IEEE addition commutes).
    const double sgn_raw[2] = {-1.0, 1.0};
    const float64x2_t t = vmulq_f64(vmulq_f64(xs, wi), vld1q_f64(sgn_raw));
    return {vaddq_f64(t, vmulq_f64(v, wr))};
  }
  NeonVec conj_() const noexcept {
    const double sgn_raw[2] = {1.0, -1.0};
    return {vmulq_f64(v, vld1q_f64(sgn_raw))};
  }
  NeonVec mul_i() const noexcept {
    const float64x2_t xs = vextq_f64(v, v, 1);
    const double sgn_raw[2] = {-1.0, 1.0};
    return {vmulq_f64(xs, vld1q_f64(sgn_raw))};
  }
  NeonVec mul_neg_i() const noexcept {
    const float64x2_t xs = vextq_f64(v, v, 1);
    const double sgn_raw[2] = {1.0, -1.0};
    return {vmulq_f64(xs, vld1q_f64(sgn_raw))};
  }

  NeonVec fmadd_elem(NeonVec b, NeonVec acc) const noexcept {
    return {vfmaq_f64(acc.v, v, b.v)};
  }

  NeonVec scale(double s) const noexcept {
    return {vmulq_n_f64(v, s)};
  }

  NeonVec reversed() const noexcept { return *this; }

  cplx hsum() const noexcept {
    return {vgetq_lane_f64(v, 0), vgetq_lane_f64(v, 1)};
  }
  double hsum_slots() const noexcept { return vaddvq_f64(v); }

  static NeonVec first_index() noexcept { return zero(); }
  static NeonVec index_step() noexcept { return {vdupq_n_f64(1.0)}; }

  static NeonVec norm2_dup(NeonVec x) noexcept {
    const float64x2_t sq = vmulq_f64(x.v, x.v);
    return {vpaddq_f64(sq, sq)};  // [n, n]
  }
  static NeonVec cmp_gt(NeonVec a, NeonVec b) noexcept {
    return {vreinterpretq_f64_u64(vcgtq_f64(a.v, b.v))};
  }
  static NeonVec blend(NeonVec a, NeonVec b, NeonVec mask) noexcept {
    return {vbslq_f64(vreinterpretq_u64_f64(mask.v), b.v, a.v)};
  }
};

#endif  // FTFFT_VEC_HAVE_NEON

}  // namespace ftfft::simd
