// NEON backend (aarch64): one complex double per float64x2_t register.
//
// Width is 1, so there is no data-parallel fan-out over lanes; the win over
// the scalar reference comes from fused multiply-add in the complex multiply
// and from keeping butterflies entirely in vector registers. NEON is baseline
// on aarch64, so no extra compile flags or runtime probing are needed — the
// TU compiles to the real table exactly when targeting aarch64.
#include "simd/kernels.hpp"

#if defined(__aarch64__)

#include "simd/kernels_impl.hpp"
#include "simd/vec.hpp"

namespace ftfft::simd {
namespace {

using V = NeonVec;

void n_radix2_stage0(cplx* data, std::size_t n) {
  impl::k_radix2_stage0_w1<V>(data, n);
}

void n_radix2_stage0_from(cplx* dst, const cplx* src, std::size_t n) {
  impl::k_radix2_stage0_from_w1<V>(dst, src, n);
}

void n_radix4_first_stage(cplx* data, std::size_t n, bool inverse) {
  impl::k_radix4_first_stage_w1<V>(data, n, inverse);
}

void n_radix4_first_stage_from(cplx* dst, const cplx* src, std::size_t n,
                               bool inverse) {
  impl::k_radix4_first_stage_from_w1<V>(dst, src, n, inverse);
}

constexpr FftKernels kNeonFft = {
    n_radix2_stage0,
    n_radix2_stage0_from,
    n_radix4_first_stage,
    n_radix4_first_stage_from,
    impl::k_radix4_stage<V>,
    impl::k_radix16_stage<V>,
    impl::k_combine<V>,
    impl::k_combine_radix4_fused<V>,
    nullptr,  // dft4: width-1 backend, scalar codelets are already optimal
    nullptr,  // dft8
    nullptr,  // dft16
    impl::k_radix4_stage_cs<V>,
    impl::k_radix16_stage_cs<V>,
    impl::k_copy_weighted_sum_energy<V>,
    impl::k_r2c_finalize<V>,
    impl::k_r2c_finalize_cs<V>,
    impl::k_c2r_prepare<V>,
    impl::k_c2r_prepare_cs<V>,
    impl::k_r2c_last_stage4<V>,
    impl::k_r2c_last_stage16<V>,
};

constexpr ChecksumKernels kNeonChecksum = {
    impl::k_weighted_sum<V>,
    impl::k_dual_weighted_sum<V>,
    impl::k_energy<V>,
    impl::k_robust_energy<V>,
    impl::k_dual_plain_sum_robust<V>,
    impl::k_weighted_sum_energy<V>,
    impl::k_dual_weighted_sum_energy<V>,
    impl::k_omega3_weighted_sum<V>,
    impl::k_copy_dual_sum<V>,
    impl::k_syndrome_dot<V>,
};

}  // namespace

const ChecksumKernels* neon_checksum_kernels() { return &kNeonChecksum; }
const FftKernels* neon_fft_kernels() { return &kNeonFft; }

}  // namespace ftfft::simd

#else  // backend not compiled in

namespace ftfft::simd {

const ChecksumKernels* neon_checksum_kernels() { return nullptr; }
const FftKernels* neon_fft_kernels() { return nullptr; }

}  // namespace ftfft::simd

#endif
