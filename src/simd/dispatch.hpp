// Runtime SIMD backend selection.
//
// At first use the dispatcher probes the CPU (cpuid-backed
// __builtin_cpu_supports on x86; NEON is baseline on aarch64) and latches the
// best compiled-in backend. The FTFFT_SIMD environment variable overrides the
// choice ("scalar" | "avx2" | "neon"; anything else, including "auto", means
// detect) — an override naming an unavailable backend falls back to
// detection, so FTFFT_SIMD=scalar is always honored and FTFFT_SIMD=avx2 on a
// non-AVX2 host degrades gracefully instead of crashing.
//
// Kernel lookups are one atomic pointer load; the active table can be
// swapped at runtime via set_backend() (used by benches to time scalar vs
// vector in one process, and by tests to sweep every backend). Swapping
// while transforms are in flight is safe memory-wise but mixes backends
// within a transform — only do it between computations.
#pragma once

#include "simd/kernels.hpp"

namespace ftfft::simd {

enum class Backend { kScalar, kAvx2, kNeon };

/// Lowercase name, e.g. "avx2". Stable — printed by benches and tests.
const char* backend_name(Backend b);

/// True when the backend is compiled into this binary and the CPU supports
/// it. kScalar is always available.
bool backend_available(Backend b);

/// The backend runtime detection would pick (ignores FTFFT_SIMD).
Backend detected_backend();

/// The backend currently serving kernel lookups.
Backend active_backend();

/// Name of the active backend; convenience for bench/test banners.
const char* simd_backend_name();

/// Swaps the active kernel tables. Returns false (and changes nothing) when
/// the backend is unavailable. Not intended for use mid-transform.
bool set_backend(Backend b);

/// Active kernel tables (one atomic load).
const FftKernels& fft_kernels();
const ChecksumKernels& checksum_kernels();

namespace detail {
/// Parses an FTFFT_SIMD value. Returns false for unknown strings (callers
/// then auto-detect).
bool parse_backend(const char* value, Backend& out);
/// What the dispatcher would choose right now for the current environment:
/// FTFFT_SIMD if set, valid and available, else detected_backend().
Backend resolve_from_env();
}  // namespace detail

}  // namespace ftfft::simd
