// Per-backend kernel tables for the SIMD-dispatched hot paths.
//
// Three layers go through these tables (see ISSUE/ROADMAP: SIMD codelets):
//   * the in-place radix-4 butterfly stages (fft/inplace_radix2.cpp),
//   * the out-of-place executor's combine loop and the size-4/8/16 leaf
//     codelets (fft/executor.cpp, dft/codelets.cpp),
//   * the stride-1 checksum dot products (checksum/dot.cpp).
//
// Each backend TU (kernels_scalar.cpp, kernels_avx2.cpp, kernels_neon.cpp)
// fills one static table; the getters below return nullptr when the backend
// is not compiled into this binary. The runtime dispatcher (dispatch.cpp)
// picks one table per process; callers fetch it through
// simd::fft_kernels() / simd::checksum_kernels().
#pragma once

#include <cstddef>

#include "checksum/dot.hpp"
#include "common/complex.hpp"

namespace ftfft::simd {

/// Stride-1 checksum reductions. Semantics match the checksum::* functions
/// of the same name with stride == 1; see checksum/dot.hpp.
struct ChecksumKernels {
  cplx (*weighted_sum)(const cplx* w, const cplx* x, std::size_t n);
  checksum::DualSum (*dual_weighted_sum)(const cplx* w, const cplx* x,
                                         std::size_t n);
  double (*energy)(const cplx* x, std::size_t n);
  double (*robust_energy)(const cplx* x, std::size_t n);
  checksum::DualSumRobust (*dual_plain_sum_robust)(const cplx* x,
                                                   std::size_t n);
  checksum::SumEnergy (*weighted_sum_energy)(const cplx* w, const cplx* x,
                                             std::size_t n);
  checksum::DualSumEnergy (*dual_weighted_sum_energy)(const cplx* w,
                                                      const cplx* x,
                                                      std::size_t n);
  cplx (*omega3_weighted_sum)(const cplx* x, std::size_t n);
  /// dst = src copied in one pass, fused with the all-ones dual checksum of
  /// the stream. Keeps the exact accumulator structure of
  /// dual_weighted_sum(nullptr, ...), so the sums are bit-identical to the
  /// separate sweep on the same backend — the parallel six-step path uses
  /// this so the transpose message checksum rides the pack/unpack copy
  /// instead of re-reading the block (PR 6's staging-copy trick applied to
  /// communication).
  checksum::DualSum (*copy_dual_sum)(cplx* dst, const cplx* src,
                                     std::size_t n);
  /// out[m] = sum_j u_j^m * w_j * x_j for m in [0, moments), the 2t moment
  /// sums of the multi-error syndromes (checksum/multi_error.hpp). nodes2 is
  /// the duplicated node table from shared_syndrome_nodes(n); w == nullptr
  /// means all-ones. moments <= 8.
  void (*syndrome_dot)(const cplx* w, const cplx* x, const double* nodes2,
                       std::size_t n, int moments, cplx* out);
};

/// FFT butterfly/combine kernels.
struct FftKernels {
  /// Twiddle-free radix-2 pass over adjacent pairs (the odd-log2n opener of
  /// the fused in-place schedule). Identical forward and inverse.
  void (*radix2_stage0)(cplx* data, std::size_t n);
  /// Out-of-place radix2_stage0: dst = opener(src), dst/src disjoint, n even.
  /// Used by the COBRA permutation to fuse the opener into tile write-back.
  void (*radix2_stage0_from)(cplx* dst, const cplx* src, std::size_t n);
  /// First fused radix-4 stage (len == 4, unit twiddles) over contiguous
  /// quadruples.
  void (*radix4_first_stage)(cplx* data, std::size_t n, bool inverse);
  /// Out-of-place radix4_first_stage: dst = stage(src), dst/src disjoint,
  /// n a multiple of 4 (COBRA fused-opener write-back, even log2n).
  void (*radix4_first_stage_from)(cplx* dst, const cplx* src, std::size_t n,
                                  bool inverse);
  /// One fused radix-4 stage of block length `len` (>= 8) over data[0..n).
  /// w1/w2 are the per-butterfly twiddles packed contiguously in j
  /// (quarter = len/4 entries each, forward values; the kernel conjugates
  /// for the inverse). `scale` multiplies every output (real factor, fused
  /// 1/n normalization of the final inverse stage); 1.0 is a no-op.
  void (*radix4_stage)(cplx* data, std::size_t n, std::size_t len,
                       const cplx* w1, const cplx* w2, bool inverse,
                       double scale);
  /// One fused radix-16 stage — two consecutive radix-4 stages (four
  /// radix-2 levels) performed while the sixteen len/16-strided elements
  /// sit in registers — of block length `len` (>= 16 * width) over
  /// data[0..n). w1a/w2a are the inner stage's packed twiddles (len/16
  /// entries each, the stage of block length len/4), w1b/w2b the outer
  /// stage's (len/4 entries each): exactly the runs radix4_stage would
  /// load for the two stages separately, so the fused pass is bit-identical
  /// to them — each butterfly keeps the same cmul orientation and the same
  /// structural +/-i rotation, which is what FMA backends need for
  /// bit-equality (a pre-rotated twiddle would round differently under
  /// fmaddsub). The kernel conjugates for the inverse; `scale` as in
  /// radix4_stage.
  void (*radix16_stage)(cplx* data, std::size_t n, std::size_t len,
                        const cplx* w1a, const cplx* w2a, const cplx* w1b,
                        const cplx* w2b, bool inverse, double scale);
  /// Cooley-Tukey combine: for every k1 in [0,m) an r-point DFT across the
  /// column out[(k1 + m*t1) * os] with twiddles tw[(t1-1)*m + k1], written
  /// back to the same index set. r <= 64.
  void (*combine)(cplx* out, std::size_t os, std::size_t m, std::size_t r,
                  const cplx* tw);
  /// Fused combine of two consecutive radix-2 levels (forward only): the
  /// four q-point quarter blocks of out hold the sub-DFTs of the input
  /// subsequences j = 0,2,1,3 (mod 4); w1 = omega_{4q/2}^k (k < q) from the
  /// inner level, w2 = omega_{4q}^k from the outer level.
  void (*combine_radix4_fused)(cplx* out, std::size_t os, std::size_t q,
                               const cplx* w1, const cplx* w2);
  /// Strided-input, contiguous-output leaf codelets (os == 1). nullptr means
  /// "use the scalar codelet"; only backends with width > 1 provide them.
  void (*dft4)(const cplx* in, std::size_t is, cplx* out);
  void (*dft8)(const cplx* in, std::size_t is, cplx* out);
  void (*dft16)(const cplx* in, std::size_t is, cplx* out);
  // ---- Fused-checksum variants (forward-only; see InplaceRadix2Plan::
  // forward_fused). The butterfly math is identical to radix4_stage /
  // radix16_stage at scale == 1; the extra checksum reduction's summation
  // order is documented in kernels_impl.hpp and checksum/dot.hpp.
  /// radix4_stage (forward, scale 1) that also returns
  /// sum_j cw[j] * data'[j] over the stage's outputs (cw: n entries).
  cplx (*radix4_stage_cs)(cplx* data, std::size_t n, std::size_t len,
                          const cplx* w1, const cplx* w2, const cplx* cw);
  /// radix16_stage (forward, scale 1) with the same fused reduction.
  cplx (*radix16_stage_cs)(cplx* data, std::size_t n, std::size_t len,
                           const cplx* w1a, const cplx* w2a, const cplx* w1b,
                           const cplx* w2b, const cplx* cw);
  /// dst = src fused with the weighted input checksum + energy (w == nullptr
  /// degrades to a plain copy): the opener of forward_fused. Keeps the exact
  /// accumulator structure of weighted_sum_energy, so the fused input dot is
  /// bit-identical to the separate sweep on the same backend. (Permute-fused
  /// scalar openers with the dot on the scattered writes were tried first
  /// and removed: slower than copy + the engine's vectorized openers at
  /// every cache-resident size.)
  void (*copy_weighted_sum_energy)(cplx* dst, const cplx* src, const cplx* w,
                                   std::size_t n, cplx* sum, double* energy);
  // ---- Real-transform post-pass (PR 8). One streaming Hermitian sweep
  // converts between the nc-point complex transform of the packed real
  // signal and the nc+1 half-spectrum (see fft/real_fft.hpp for the
  // layout). All arithmetic is elementwise add/sub/conj/±i-rotation plus
  // cmul_nofma, so dst is bitwise identical across every backend — the
  // scalar TU (contraction pinned off) is the reference the others equal,
  // not just approximate.
  /// Unpack: dst[0..nc] = half-spectrum of the length-2*nc real signal
  /// whose packed nc-point transform is src[0..nc). wq holds omega(2*nc, k)
  /// for k = 0..nc/2. dst may alias src (dst must have nc+1 slots).
  void (*r2c_finalize)(cplx* dst, const cplx* src, std::size_t nc,
                       const cplx* wq);
  /// r2c_finalize that also returns sum_k cw[k] * dst[k] over the nc+1
  /// outputs, accumulated while they are still in registers (the PR 6
  /// fused-output-dot trick applied to the post-pass). cw: nc+1 entries.
  cplx (*r2c_finalize_cs)(cplx* dst, const cplx* src, std::size_t nc,
                          const cplx* wq, const cplx* cw);
  /// Pack: dst[0..nc) = nc-point spectrum whose inverse transform
  /// interleaves to the real signal with half-spectrum src[0..nc]
  /// (the exact inverse of r2c_finalize). `conjugate` writes conj(dst)
  /// instead — the protected path rides the conjugate-forward-conjugate
  /// inverse. dst/src must not overlap.
  void (*c2r_prepare)(cplx* dst, const cplx* src, std::size_t nc,
                      const cplx* wq, bool conjugate);
  /// c2r_prepare that also returns sum_k cw[k] * src[k] over the nc+1
  /// inputs, fused into the same sweep. cw: nc+1 entries.
  cplx (*c2r_prepare_cs)(cplx* dst, const cplx* src, std::size_t nc,
                         const cplx* wq, bool conjugate, const cplx* cw);
  /// Final radix-4 butterfly stage of the packed forward (block length ==
  /// nc, i.e. the whole array is one block) fused with the r2c Hermitian
  /// unpack: dst[0..nc) holds the pre-stage data on entry and the nc+1
  /// half-spectrum on exit (slot nc is written; dst needs nc+1 slots).
  /// Butterfly j and its mirror nc/4 - j emit the eight spectrum entries of
  /// four complete Hermitian pairs, so the unpack consumes the butterfly
  /// outputs while they are still in registers and the separate
  /// r2c_finalize sweep — a whole read+write pass over the array —
  /// disappears. w1/w2 are the stage's packed twiddles (nc/4 entries each,
  /// exactly what radix4_stage would load), wq as in r2c_finalize. nc >= 8.
  /// Butterfly op order matches radix4_stage, unpack op order matches
  /// r2c_finalize; only the pairing of loop iterations differs, so accuracy
  /// is that of the unfused pair of kernels.
  void (*r2c_last_stage4)(cplx* dst, std::size_t nc, const cplx* w1,
                          const cplx* w2, const cplx* wq);
  /// Same fusion for a schedule whose final pass is the fused radix-16
  /// stage (two radix-4 stages, len == nc): group j pairs with group
  /// nc/16 - j, covering sixteen Hermitian pairs per group pair. w1a/w2a
  /// inner, w1b/w2b outer twiddle packs as in radix16_stage. nc >= 32.
  void (*r2c_last_stage16)(cplx* dst, std::size_t nc, const cplx* w1a,
                           const cplx* w2a, const cplx* w1b, const cplx* w2b,
                           const cplx* wq);
};

/// Backend tables. A getter returns nullptr when that backend is not
/// compiled into the binary (wrong ISA, FTFFT_DISABLE_AVX2, ...).
const ChecksumKernels* scalar_checksum_kernels();
const FftKernels* scalar_fft_kernels();
const ChecksumKernels* avx2_checksum_kernels();
const FftKernels* avx2_fft_kernels();
const ChecksumKernels* neon_checksum_kernels();
const FftKernels* neon_fft_kernels();

/// Reference scalar combine over columns [k1_begin, k1_end): the loop the
/// executor ran before dispatch existed. Shared by the scalar table and by
/// the vector kernels' remainder/odd-radix fallbacks.
void scalar_combine_columns(cplx* out, std::size_t os, std::size_t m,
                            std::size_t r, const cplx* tw,
                            std::size_t k1_begin, std::size_t k1_end);

/// Reference scalar fused radix-2x2 combine (any os).
void scalar_combine_radix4_fused(cplx* out, std::size_t os, std::size_t q,
                                 const cplx* w1, const cplx* w2);

/// Reference scalar radix-2 pair pass over data[begin..end) (begin/end are
/// element indices, must be even).
void scalar_radix2_stage0_range(cplx* data, std::size_t begin,
                                std::size_t end);

/// Reference scalar first fused radix-4 stage over blocks [begin, end).
void scalar_radix4_first_stage_range(cplx* data, std::size_t begin,
                                     std::size_t end, bool inverse);

/// Out-of-place reference openers over [begin, end) (remainder fallbacks of
/// the vector backends' *_from kernels).
void scalar_radix2_stage0_from_range(cplx* dst, const cplx* src,
                                     std::size_t begin, std::size_t end);
void scalar_radix4_first_stage_from_range(cplx* dst, const cplx* src,
                                          std::size_t begin, std::size_t end,
                                          bool inverse);

/// Reference Hermitian pair sweep of r2c_finalize over k in [begin, end)
/// (1 <= begin, end <= nc/2; each k also writes the mirror nc-k). Lives in
/// the contraction-pinned scalar TU so the vector backends' remainder pairs
/// round exactly like the reference. When cw is non-null, the fused
/// checksum contribution of the pairs is accumulated into *cs.
void scalar_r2c_finalize_range(cplx* dst, const cplx* src, std::size_t nc,
                               const cplx* wq, std::size_t begin,
                               std::size_t end, const cplx* cw, cplx* cs);

/// Reference pair sweep of c2r_prepare over k in [begin, end); cw/cs as
/// above (the prepare checksum reads src, the nc+1 half-spectrum inputs).
void scalar_c2r_prepare_range(cplx* dst, const cplx* src, std::size_t nc,
                              const cplx* wq, bool conjugate,
                              std::size_t begin, std::size_t end,
                              const cplx* cw, cplx* cs);

}  // namespace ftfft::simd
