// Generic kernel bodies, parameterized on a vector type from vec.hpp.
//
// Each backend TU instantiates these with its vector type, so the math is
// written once and every backend performs the same operation *sequence*; only
// lane width and FMA contraction differ. Reductions use at least two
// independent accumulator registers (four scalar chains at width 1, eight at
// width 2) so the loop is not serialized on one floating-point add chain —
// this also changes summation order vs a naive single chain, which the
// detection thresholds absorb (see checksum/dot.hpp).
//
// Included only by the kernels_*.cpp backend TUs.
#pragma once

#include <cstddef>

#include "checksum/dot.hpp"
#include "common/complex.hpp"
#include "common/math_util.hpp"
#include "dft/codelet_constants.hpp"
#include "simd/kernels.hpp"

namespace ftfft::simd::impl {

// ============================================================== checksums

template <class V>
cplx k_weighted_sum(const cplx* w, const cplx* x, std::size_t n) {
  constexpr std::size_t W = V::width;
  V a0 = V::zero();
  V a1 = V::zero();
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    a0 = a0 + V::load(w + j).cmul(V::load(x + j));
    a1 = a1 + V::load(w + j + W).cmul(V::load(x + j + W));
  }
  for (; j + W <= n; j += W) {
    a0 = a0 + V::load(w + j).cmul(V::load(x + j));
  }
  cplx acc = (a0 + a1).hsum();
  for (; j < n; ++j) acc += cmul(w[j], x[j]);
  return acc;
}

template <class V>
checksum::DualSum k_dual_weighted_sum(const cplx* w, const cplx* x,
                                      std::size_t n) {
  constexpr std::size_t W = V::width;
  V p0 = V::zero(), p1 = V::zero();
  V i0 = V::zero(), i1 = V::zero();
  V j0 = V::first_index();
  V j1 = j0 + V::index_step();
  const V step2 = V::index_step() + V::index_step();
  std::size_t j = 0;
  if (w == nullptr) {
    for (; j + 2 * W <= n; j += 2 * W) {
      const V v0 = V::load(x + j);
      const V v1 = V::load(x + j + W);
      p0 = p0 + v0;
      p1 = p1 + v1;
      i0 = v0.fmadd_elem(j0, i0);
      i1 = v1.fmadd_elem(j1, i1);
      j0 = j0 + step2;
      j1 = j1 + step2;
    }
    for (; j + W <= n; j += W) {
      const V v0 = V::load(x + j);
      p0 = p0 + v0;
      i0 = v0.fmadd_elem(j0, i0);
      j0 = j0 + V::index_step();
    }
  } else {
    for (; j + 2 * W <= n; j += 2 * W) {
      const V q0 = V::load(w + j).cmul(V::load(x + j));
      const V q1 = V::load(w + j + W).cmul(V::load(x + j + W));
      p0 = p0 + q0;
      p1 = p1 + q1;
      i0 = q0.fmadd_elem(j0, i0);
      i1 = q1.fmadd_elem(j1, i1);
      j0 = j0 + step2;
      j1 = j1 + step2;
    }
    for (; j + W <= n; j += W) {
      const V q0 = V::load(w + j).cmul(V::load(x + j));
      p0 = p0 + q0;
      i0 = q0.fmadd_elem(j0, i0);
      j0 = j0 + V::index_step();
    }
  }
  checksum::DualSum out;
  out.plain = (p0 + p1).hsum();
  out.indexed = (i0 + i1).hsum();
  for (; j < n; ++j) {
    const cplx p = w == nullptr ? x[j] : cmul(w[j], x[j]);
    out.plain += p;
    out.indexed += static_cast<double>(j) * p;
  }
  return out;
}

/// Moment-sum reduction for the multi-error syndromes (see checksum/
/// multi_error.hpp): out[m] = sum_j u_j^m * w_j * x_j for m in [0, moments),
/// u_j read from the duplicated node table nodes2 (slots 2j and 2j+1 both
/// hold u_j, so one raw vector load scales the re/im slots of element j
/// elementwise). w == nullptr means all-ones weights. moments <= 8; one
/// accumulator per moment — the moment loop itself provides the
/// instruction-level parallelism a single reduction chain would lack.
template <class V>
void k_syndrome_dot(const cplx* w, const cplx* x, const double* nodes2,
                    std::size_t n, int moments, cplx* out) {
  constexpr std::size_t W = V::width;
  V acc[8];
  for (int m = 0; m < moments; ++m) acc[m] = V::zero();
  std::size_t j = 0;
  for (; j + W <= n; j += W) {
    V q =
        (w == nullptr) ? V::load(x + j) : V::load(w + j).cmul(V::load(x + j));
    acc[0] = acc[0] + q;
    const V u = V::load_raw(nodes2 + 2 * j);
    for (int m = 1; m < moments; ++m) {
      q = q.fmadd_elem(u, V::zero());
      acc[m] = acc[m] + q;
    }
  }
  cplx sums[8];
  for (int m = 0; m < moments; ++m) sums[m] = acc[m].hsum();
  for (; j < n; ++j) {
    cplx q = (w == nullptr) ? x[j] : ftfft::cmul(w[j], x[j]);
    const double u = nodes2[2 * j];
    sums[0] += q;
    for (int m = 1; m < moments; ++m) {
      q *= u;
      sums[m] += q;
    }
  }
  for (int m = 0; m < moments; ++m) out[m] = sums[m];
}

/// dst = src with the all-ones dual checksum accumulated on the same pass.
/// Mirrors k_dual_weighted_sum's w == nullptr branch exactly (same
/// accumulator registers, same lane order), with a store added per load, so
/// the returned sums are bit-identical to dual_weighted_sum(nullptr, src, n)
/// on the same backend. dst and src must not overlap.
template <class V>
checksum::DualSum k_copy_dual_sum(cplx* dst, const cplx* src, std::size_t n) {
  constexpr std::size_t W = V::width;
  V p0 = V::zero(), p1 = V::zero();
  V i0 = V::zero(), i1 = V::zero();
  V j0 = V::first_index();
  V j1 = j0 + V::index_step();
  const V step2 = V::index_step() + V::index_step();
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = V::load(src + j);
    const V v1 = V::load(src + j + W);
    v0.store(dst + j);
    v1.store(dst + j + W);
    p0 = p0 + v0;
    p1 = p1 + v1;
    i0 = v0.fmadd_elem(j0, i0);
    i1 = v1.fmadd_elem(j1, i1);
    j0 = j0 + step2;
    j1 = j1 + step2;
  }
  for (; j + W <= n; j += W) {
    const V v0 = V::load(src + j);
    v0.store(dst + j);
    p0 = p0 + v0;
    i0 = v0.fmadd_elem(j0, i0);
    j0 = j0 + V::index_step();
  }
  checksum::DualSum out;
  out.plain = (p0 + p1).hsum();
  out.indexed = (i0 + i1).hsum();
  for (; j < n; ++j) {
    const cplx v = src[j];
    dst[j] = v;
    out.plain += v;
    out.indexed += static_cast<double>(j) * v;
  }
  return out;
}

template <class V>
double k_energy(const cplx* x, std::size_t n) {
  constexpr std::size_t W = V::width;
  V a0 = V::zero();
  V a1 = V::zero();
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = V::load(x + j);
    const V v1 = V::load(x + j + W);
    a0 = v0.fmadd_elem(v0, a0);
    a1 = v1.fmadd_elem(v1, a1);
  }
  for (; j + W <= n; j += W) {
    const V v0 = V::load(x + j);
    a0 = v0.fmadd_elem(v0, a0);
  }
  double acc = (a0 + a1).hsum_slots();
  for (; j < n; ++j) acc += norm2(x[j]);
  return acc;
}

/// Finds max |x_j|^2 and its first index. Per lane-stream the compare is
/// strict, and ties across streams resolve to the smaller index, so the
/// result matches a left-to-right scalar scan.
template <class V>
void k_find_max_norm2(const cplx* x, std::size_t n, double& max_out,
                      std::size_t& idx_out) {
  constexpr std::size_t W = V::width;
  V maxv = V::broadcast(cplx{-1.0, -1.0});
  V idxv = V::zero();
  V jv = V::first_index();
  std::size_t j = 0;
  for (; j + W <= n; j += W) {
    const V nd = V::norm2_dup(V::load(x + j));
    const V m = V::cmp_gt(nd, maxv);
    maxv = V::blend(maxv, nd, m);
    idxv = V::blend(idxv, jv, m);
    jv = jv + V::index_step();
  }
  double best = -1.0;
  std::size_t bi = 0;
  if (j > 0) {
    double mraw[2 * W];
    double iraw[2 * W];
    maxv.store_raw(mraw);
    idxv.store_raw(iraw);
    for (std::size_t s = 0; s < W; ++s) {
      const double cand = mraw[2 * s];
      const auto cidx = static_cast<std::size_t>(iraw[2 * s]);
      if (cand > best || (cand == best && cidx < bi)) {
        best = cand;
        bi = cidx;
      }
    }
  }
  for (; j < n; ++j) {
    const double e = norm2(x[j]);
    if (e > best) {
      best = e;
      bi = j;
    }
  }
  max_out = best < 0.0 ? 0.0 : best;
  idx_out = bi;
}

/// Energy over [0, n) excluding element `skip` (summed, not subtracted
/// afterwards: a huge outlier would absorb the rest of the sum — see
/// checksum/dot.cpp).
template <class V>
double k_energy_excluding(const cplx* x, std::size_t n, std::size_t skip) {
  constexpr std::size_t W = V::width;
  const std::size_t a = skip / W * W;          // chunk holding `skip`
  const std::size_t b = a + W < n ? a + W : n;  // first element after it
  double acc = k_energy<V>(x, a);
  for (std::size_t j = a; j < b; ++j) {
    if (j != skip) acc += norm2(x[j]);
  }
  acc += k_energy<V>(x + b, n - b);
  return acc;
}

template <class V>
double k_robust_energy(const cplx* x, std::size_t n) {
  if (n == 0) return 0.0;
  double mx;
  std::size_t ti;
  k_find_max_norm2<V>(x, n, mx, ti);
  return k_energy_excluding<V>(x, n, ti);
}

template <class V>
checksum::DualSumRobust k_dual_plain_sum_robust(const cplx* x,
                                                std::size_t n) {
  checksum::DualSumRobust out;
  if (n == 0) return out;
  out.sums = k_dual_weighted_sum<V>(nullptr, x, n);
  std::size_t ti;
  k_find_max_norm2<V>(x, n, out.max_norm2, ti);
  out.energy = k_energy_excluding<V>(x, n, ti);
  return out;
}

template <class V>
checksum::SumEnergy k_weighted_sum_energy(const cplx* w, const cplx* x,
                                          std::size_t n) {
  constexpr std::size_t W = V::width;
  V s0 = V::zero(), s1 = V::zero();
  V e0 = V::zero(), e1 = V::zero();
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = V::load(x + j);
    const V v1 = V::load(x + j + W);
    s0 = s0 + V::load(w + j).cmul(v0);
    s1 = s1 + V::load(w + j + W).cmul(v1);
    e0 = v0.fmadd_elem(v0, e0);
    e1 = v1.fmadd_elem(v1, e1);
  }
  for (; j + W <= n; j += W) {
    const V v0 = V::load(x + j);
    s0 = s0 + V::load(w + j).cmul(v0);
    e0 = v0.fmadd_elem(v0, e0);
  }
  checksum::SumEnergy out;
  out.sum = (s0 + s1).hsum();
  out.energy = (e0 + e1).hsum_slots();
  for (; j < n; ++j) {
    out.sum += cmul(w[j], x[j]);
    out.energy += norm2(x[j]);
  }
  return out;
}

template <class V>
checksum::DualSumEnergy k_dual_weighted_sum_energy(const cplx* w,
                                                   const cplx* x,
                                                   std::size_t n) {
  constexpr std::size_t W = V::width;
  V p0 = V::zero(), p1 = V::zero();
  V i0 = V::zero(), i1 = V::zero();
  V e0 = V::zero(), e1 = V::zero();
  V j0 = V::first_index();
  V j1 = j0 + V::index_step();
  const V step2 = V::index_step() + V::index_step();
  std::size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = V::load(x + j);
    const V v1 = V::load(x + j + W);
    const V q0 = w == nullptr ? v0 : V::load(w + j).cmul(v0);
    const V q1 = w == nullptr ? v1 : V::load(w + j + W).cmul(v1);
    p0 = p0 + q0;
    p1 = p1 + q1;
    i0 = q0.fmadd_elem(j0, i0);
    i1 = q1.fmadd_elem(j1, i1);
    e0 = v0.fmadd_elem(v0, e0);
    e1 = v1.fmadd_elem(v1, e1);
    j0 = j0 + step2;
    j1 = j1 + step2;
  }
  for (; j + W <= n; j += W) {
    const V v0 = V::load(x + j);
    const V q0 = w == nullptr ? v0 : V::load(w + j).cmul(v0);
    p0 = p0 + q0;
    i0 = q0.fmadd_elem(j0, i0);
    e0 = v0.fmadd_elem(v0, e0);
    j0 = j0 + V::index_step();
  }
  checksum::DualSumEnergy out;
  out.sums.plain = (p0 + p1).hsum();
  out.sums.indexed = (i0 + i1).hsum();
  out.energy = (e0 + e1).hsum_slots();
  for (; j < n; ++j) {
    const cplx p = w == nullptr ? x[j] : cmul(w[j], x[j]);
    out.sums.plain += p;
    out.sums.indexed += static_cast<double>(j) * p;
    out.energy += norm2(x[j]);
  }
  return out;
}

template <class V>
cplx k_omega3_weighted_sum(const cplx* x, std::size_t n) {
  constexpr std::size_t W = V::width;
  // Three accumulator vectors per 3W-element chunk; because chunk bases are
  // multiples of 3W, the lane -> (j mod 3) bucket pattern is the same in
  // every chunk and is unwound once at the end.
  V a0 = V::zero(), a1 = V::zero(), a2 = V::zero();
  std::size_t j = 0;
  for (; j + 3 * W <= n; j += 3 * W) {
    a0 = a0 + V::load(x + j);
    a1 = a1 + V::load(x + j + W);
    a2 = a2 + V::load(x + j + 2 * W);
  }
  cplx b[3] = {cplx{0.0, 0.0}, cplx{0.0, 0.0}, cplx{0.0, 0.0}};
  double raw[3][2 * W];
  a0.store_raw(raw[0]);
  a1.store_raw(raw[1]);
  a2.store_raw(raw[2]);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t s = 0; s < W; ++s) {
      b[(t * W + s) % 3] += cplx{raw[t][2 * s], raw[t][2 * s + 1]};
    }
  }
  for (; j < n; ++j) b[j % 3] += x[j];
  return b[0] + cmul(omega3_pow(1), b[1]) + cmul(omega3_pow(2), b[2]);
}

// ============================================================ FFT stages

/// Width-1 shaped twiddle-free radix-2 pass; backends with wider registers
/// provide a shuffle-based version instead.
template <class V>
void k_radix2_stage0_w1(cplx* data, std::size_t n) {
  static_assert(V::width == 1);
  for (std::size_t base = 0; base + 1 < n; base += 2) {
    const V u = V::load(data + base);
    const V t = V::load(data + base + 1);
    (u + t).store(data + base);
    (u - t).store(data + base + 1);
  }
}

/// Width-1 shaped out-of-place opener (COBRA fused write-back).
template <class V>
void k_radix2_stage0_from_w1(cplx* dst, const cplx* src, std::size_t n) {
  static_assert(V::width == 1);
  for (std::size_t base = 0; base + 1 < n; base += 2) {
    const V u = V::load(src + base);
    const V t = V::load(src + base + 1);
    (u + t).store(dst + base);
    (u - t).store(dst + base + 1);
  }
}

/// Width-1 shaped first fused radix-4 stage (len == 4, unit twiddles).
template <class V>
void k_radix4_first_stage_w1(cplx* data, std::size_t n, bool inverse) {
  static_assert(V::width == 1);
  for (std::size_t base = 0; base + 3 < n; base += 4) {
    const V a = V::load(data + base);
    const V b = V::load(data + base + 1);
    const V c = V::load(data + base + 2);
    const V d = V::load(data + base + 3);
    const V a1 = a + b;
    const V b1 = a - b;
    const V c1 = c + d;
    const V d1 = c - d;
    const V t3 = inverse ? d1.mul_i() : d1.mul_neg_i();
    (a1 + c1).store(data + base);
    (b1 + t3).store(data + base + 1);
    (a1 - c1).store(data + base + 2);
    (b1 - t3).store(data + base + 3);
  }
}

/// Width-1 shaped out-of-place first fused radix-4 stage.
template <class V>
void k_radix4_first_stage_from_w1(cplx* dst, const cplx* src, std::size_t n,
                                  bool inverse) {
  static_assert(V::width == 1);
  for (std::size_t base = 0; base + 3 < n; base += 4) {
    const V a = V::load(src + base);
    const V b = V::load(src + base + 1);
    const V c = V::load(src + base + 2);
    const V d = V::load(src + base + 3);
    const V a1 = a + b;
    const V b1 = a - b;
    const V c1 = c + d;
    const V d1 = c - d;
    const V t3 = inverse ? d1.mul_i() : d1.mul_neg_i();
    (a1 + c1).store(dst + base);
    (b1 + t3).store(dst + base + 1);
    (a1 - c1).store(dst + base + 2);
    (b1 - t3).store(dst + base + 3);
  }
}

/// One fused radix-4 stage; quarter = len/4 must be a multiple of V::width
/// (true for len >= 8 whenever width <= 2: quarter is a power of two >= 2).
/// When Scaled, every output picks up the real factor `scale` — applied to
/// the already-rounded butterfly result, so it matches a separate
/// data[i] *= scale sweep bit-for-bit.
template <class V, bool Inverse, bool Scaled>
void k_radix4_stage_t(cplx* data, std::size_t n, std::size_t len,
                      const cplx* w1, const cplx* w2, double scale) {
  const std::size_t quarter = len >> 2;
  for (std::size_t base = 0; base < n; base += len) {
    cplx* p = data + base;
    for (std::size_t j = 0; j < quarter; j += V::width) {
      V vw1 = V::load(w1 + j);
      V vw2 = V::load(w2 + j);
      if constexpr (Inverse) {
        vw1 = vw1.conj_();
        vw2 = vw2.conj_();
      }
      const V a = V::load(p + j);
      const V b = V::load(p + j + quarter);
      const V c = V::load(p + j + 2 * quarter);
      const V d = V::load(p + j + 3 * quarter);
      // Level s on the two half-blocks.
      const V t0 = b.cmul(vw1);
      const V a1 = a + t0;
      const V b1 = a - t0;
      const V t1 = d.cmul(vw1);
      const V c1 = c + t1;
      const V d1 = c - t1;
      // Level s+1 across the half-blocks.
      const V t2 = c1.cmul(vw2);
      const V t3raw = d1.cmul(vw2);
      const V t3 = Inverse ? t3raw.mul_i() : t3raw.mul_neg_i();
      V y0 = a1 + t2;
      V y1 = b1 + t3;
      V y2 = a1 - t2;
      V y3 = b1 - t3;
      if constexpr (Scaled) {
        y0 = y0.scale(scale);
        y1 = y1.scale(scale);
        y2 = y2.scale(scale);
        y3 = y3.scale(scale);
      }
      y0.store(p + j);
      y1.store(p + j + quarter);
      y2.store(p + j + 2 * quarter);
      y3.store(p + j + 3 * quarter);
    }
  }
}

template <class V>
void k_radix4_stage(cplx* data, std::size_t n, std::size_t len,
                    const cplx* w1, const cplx* w2, bool inverse,
                    double scale) {
  if (scale == 1.0) {
    if (inverse) {
      k_radix4_stage_t<V, true, false>(data, n, len, w1, w2, scale);
    } else {
      k_radix4_stage_t<V, false, false>(data, n, len, w1, w2, scale);
    }
  } else {
    if (inverse) {
      k_radix4_stage_t<V, true, true>(data, n, len, w1, w2, scale);
    } else {
      k_radix4_stage_t<V, false, true>(data, n, len, w1, w2, scale);
    }
  }
}

/// The radix-4 butterfly of k_radix4_stage_t on four registers: exactly the
/// same operation sequence (cmul orientations and the structural +/-i
/// rotation on the second level), shared so the fused radix-16 stage is
/// bit-identical to two radix-4 stages run back to back.
template <class V, bool Inverse>
inline void radix4_butterfly(V& a, V& b, V& c, V& d, V vw1, V vw2) {
  const V t0 = b.cmul(vw1);
  const V a1 = a + t0;
  const V b1 = a - t0;
  const V t1 = d.cmul(vw1);
  const V c1 = c + t1;
  const V d1 = c - t1;
  const V t2 = c1.cmul(vw2);
  const V t3raw = d1.cmul(vw2);
  const V t3 = Inverse ? t3raw.mul_i() : t3raw.mul_neg_i();
  a = a1 + t2;
  b = b1 + t3;
  c = a1 - t2;
  d = b1 - t3;
}

/// One fused radix-16 stage: the radix-4 stage of block length len/4
/// followed by the radix-4 stage of block length len, both performed while
/// the sixteen e-strided elements (e = len/16, must be a multiple of
/// V::width — true for len >= 32 at width <= 2) sit in registers. The two
/// stages use their own packed twiddle runs unchanged, so fusing reorders
/// no arithmetic: one streaming pass, same bits.
template <class V, bool Inverse, bool Scaled>
void k_radix16_stage_t(cplx* data, std::size_t n, std::size_t len,
                       const cplx* w1a, const cplx* w2a, const cplx* w1b,
                       const cplx* w2b, double scale) {
  const std::size_t e = len >> 4;
  for (std::size_t base = 0; base < n; base += len) {
    cplx* p = data + base;
    for (std::size_t j = 0; j < e; j += V::width) {
      V vw1a = V::load(w1a + j);
      V vw2a = V::load(w2a + j);
      if constexpr (Inverse) {
        vw1a = vw1a.conj_();
        vw2a = vw2a.conj_();
      }
      V x[16];
      for (std::size_t k = 0; k < 16; ++k) {
        x[k] = V::load(p + j + k * e);
      }
      // Inner stage: four len/4 blocks at offsets 4*m*e, butterfly j in
      // each couples x[4m + 0..3].
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, Inverse>(x[4 * m], x[4 * m + 1], x[4 * m + 2],
                                     x[4 * m + 3], vw1a, vw2a);
      }
      // Outer stage: butterfly j' = j + m*e couples x[m], x[m+4], x[m+8],
      // x[m+12] with the outer run's twiddles at j'.
      for (std::size_t m = 0; m < 4; ++m) {
        V vw1b = V::load(w1b + j + m * e);
        V vw2b = V::load(w2b + j + m * e);
        if constexpr (Inverse) {
          vw1b = vw1b.conj_();
          vw2b = vw2b.conj_();
        }
        radix4_butterfly<V, Inverse>(x[m], x[m + 4], x[m + 8], x[m + 12],
                                     vw1b, vw2b);
      }
      for (std::size_t k = 0; k < 16; ++k) {
        if constexpr (Scaled) x[k] = x[k].scale(scale);
        x[k].store(p + j + k * e);
      }
    }
  }
}

template <class V>
void k_radix16_stage(cplx* data, std::size_t n, std::size_t len,
                     const cplx* w1a, const cplx* w2a, const cplx* w1b,
                     const cplx* w2b, bool inverse, double scale) {
  if (scale == 1.0) {
    if (inverse) {
      k_radix16_stage_t<V, true, false>(data, n, len, w1a, w2a, w1b, w2b,
                                        scale);
    } else {
      k_radix16_stage_t<V, false, false>(data, n, len, w1a, w2a, w1b, w2b,
                                         scale);
    }
  } else {
    if (inverse) {
      k_radix16_stage_t<V, true, true>(data, n, len, w1a, w2a, w1b, w2b,
                                       scale);
    } else {
      k_radix16_stage_t<V, false, true>(data, n, len, w1a, w2a, w1b, w2b,
                                        scale);
    }
  }
}

// ================================== fused-checksum stage variants (PR 6)
//
// TurboFFT-style fusion: the final butterfly stage of the in-place forward
// schedule accumulates the weighted output checksum sum_j cw[j] * y[j] in
// spare vector registers while the freshly computed outputs are still in
// flight, replacing the separate omega3 sweep of checksum/dot.cpp. The
// butterfly math is radix4_butterfly — the exact operation sequence of
// k_radix4_stage_t / k_radix16_stage_t — so the transform outputs stay
// bit-identical to the unfused kernels on every backend. The checksum
// reduction itself uses four independent accumulators fed in store order
// (one per output quarter / residue lane), which is a different summation
// order from the 3-bucket omega3_weighted_sum trick: the difference is
// ordinary re-association round-off, O(eps * sum |cw_j y_j|), absorbed by
// the detection thresholds exactly like the backend-to-backend variance
// documented in checksum/dot.hpp. The fused *input* dot instead rides the
// src -> dst copy (k_copy_weighted_sum_energy below) with the exact
// accumulator structure of k_weighted_sum_energy, so it is bit-identical to
// the separate input sweep on the same backend; like every vectorized dot,
// it differs across backends only by lane-count re-association.

/// One fused radix-4 stage (forward, unscaled) that also returns
/// sum_j cw[j] * data'[j] over the stage's freshly written outputs.
/// Preconditions match k_radix4_stage_t; cw must have n entries.
template <class V>
cplx k_radix4_stage_cs(cplx* data, std::size_t n, std::size_t len,
                       const cplx* w1, const cplx* w2, const cplx* cw) {
  const std::size_t quarter = len >> 2;
  V acc0 = V::zero(), acc1 = V::zero(), acc2 = V::zero(), acc3 = V::zero();
  for (std::size_t base = 0; base < n; base += len) {
    cplx* p = data + base;
    const cplx* cp = cw + base;
    for (std::size_t j = 0; j < quarter; j += V::width) {
      const V vw1 = V::load(w1 + j);
      const V vw2 = V::load(w2 + j);
      V a = V::load(p + j);
      V b = V::load(p + j + quarter);
      V c = V::load(p + j + 2 * quarter);
      V d = V::load(p + j + 3 * quarter);
      radix4_butterfly<V, false>(a, b, c, d, vw1, vw2);
      a.store(p + j);
      b.store(p + j + quarter);
      c.store(p + j + 2 * quarter);
      d.store(p + j + 3 * quarter);
      acc0 = acc0 + V::load(cp + j).cmul(a);
      acc1 = acc1 + V::load(cp + j + quarter).cmul(b);
      acc2 = acc2 + V::load(cp + j + 2 * quarter).cmul(c);
      acc3 = acc3 + V::load(cp + j + 3 * quarter).cmul(d);
    }
  }
  return ((acc0 + acc1) + (acc2 + acc3)).hsum();
}

/// Fused radix-16 stage (forward, unscaled) with the same in-register
/// checksum accumulation; bit-identical transform to k_radix16_stage_t.
template <class V>
cplx k_radix16_stage_cs(cplx* data, std::size_t n, std::size_t len,
                        const cplx* w1a, const cplx* w2a, const cplx* w1b,
                        const cplx* w2b, const cplx* cw) {
  const std::size_t e = len >> 4;
  V acc[4] = {V::zero(), V::zero(), V::zero(), V::zero()};
  for (std::size_t base = 0; base < n; base += len) {
    cplx* p = data + base;
    const cplx* cp = cw + base;
    for (std::size_t j = 0; j < e; j += V::width) {
      const V vw1a = V::load(w1a + j);
      const V vw2a = V::load(w2a + j);
      V x[16];
      for (std::size_t k = 0; k < 16; ++k) {
        x[k] = V::load(p + j + k * e);
      }
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, false>(x[4 * m], x[4 * m + 1], x[4 * m + 2],
                                   x[4 * m + 3], vw1a, vw2a);
      }
      for (std::size_t m = 0; m < 4; ++m) {
        const V vw1b = V::load(w1b + j + m * e);
        const V vw2b = V::load(w2b + j + m * e);
        radix4_butterfly<V, false>(x[m], x[m + 4], x[m + 8], x[m + 12], vw1b,
                                   vw2b);
      }
      for (std::size_t k = 0; k < 16; ++k) {
        x[k].store(p + j + k * e);
        acc[k % 4] = acc[k % 4] + V::load(cp + j + k * e).cmul(x[k]);
      }
    }
  }
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])).hsum();
}

/// dst = src copied in one pass, fused with the weighted input checksum and
/// energy over the same stream (the COBRA-path opener of forward_fused: the
/// tiled permutation needs the data in dst first, so the input dot rides on
/// the copy instead of a separate sweep). w == nullptr skips the reductions
/// and degrades to a plain copy. Accumulator layout matches
/// k_weighted_sum_energy, so at equal width the sum is bit-identical to it.
template <class V>
void k_copy_weighted_sum_energy(cplx* dst, const cplx* src, const cplx* w,
                                std::size_t n, cplx* sum, double* energy) {
  constexpr std::size_t W = V::width;
  std::size_t j = 0;
  if (w == nullptr) {
    for (; j + 2 * W <= n; j += 2 * W) {
      V::load(src + j).store(dst + j);
      V::load(src + j + W).store(dst + j + W);
    }
    for (; j < n; ++j) dst[j] = src[j];
    return;
  }
  V s0 = V::zero(), s1 = V::zero();
  V e0 = V::zero(), e1 = V::zero();
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = V::load(src + j);
    const V v1 = V::load(src + j + W);
    v0.store(dst + j);
    v1.store(dst + j + W);
    s0 = s0 + V::load(w + j).cmul(v0);
    s1 = s1 + V::load(w + j + W).cmul(v1);
    e0 = v0.fmadd_elem(v0, e0);
    e1 = v1.fmadd_elem(v1, e1);
  }
  for (; j + W <= n; j += W) {
    const V v0 = V::load(src + j);
    v0.store(dst + j);
    s0 = s0 + V::load(w + j).cmul(v0);
    e0 = v0.fmadd_elem(v0, e0);
  }
  cplx acc = (s0 + s1).hsum();
  double eacc = (e0 + e1).hsum_slots();
  for (; j < n; ++j) {
    dst[j] = src[j];
    acc += cmul(w[j], src[j]);
    eacc += norm2(src[j]);
  }
  *sum = acc;
  *energy = eacc;
}

// ================================= real-transform post-pass (see kernels.hpp)
//
// Conjugate-symmetry unpack/pack between the nc-point complex transform Z
// of a packed length-2*nc real signal and its nc+1 half-spectrum X. For
// k = 1..nc/2-1 with mirror j = nc-k and W = omega(2*nc, .):
//   A = (Z_k + conj(Z_j)) / 2        B = (Z_k - conj(Z_j)) / 2
//   X_k = A + (-i*B)*W^k             X_j = conj(A - (-i*B)*W^k)
// plus the exact edges X_0 = Re Z_0 + Im Z_0, X_nc = Re Z_0 - Im Z_0 and
// the self-pair X_{nc/2} = conj(Z_{nc/2}); c2r_prepare applies the inverse
// map (same A/B shape on X with U = i*(B*conj(W^k)), derived from
// W^{nc-k} = -conj(W^k)). The sweep walks k forward and j backward in the
// same iteration (reversed() mirror loads/stores), touching every cache
// line of both halves once. Every per-element operation is elementwise
// add/sub/conj/±i-rotation, an exact scale by 0.5, or cmul_nofma — no FMA
// anywhere — so dst is bitwise identical across all backends; remainder
// pairs run through the contraction-pinned scalar range helpers. Only the
// optional fused checksum reduction re-associates across lanes, which the
// detection thresholds absorb like every other cross-backend dot variance.

template <class V, bool Cs>
cplx k_r2c_finalize_t(cplx* dst, const cplx* src, std::size_t nc,
                      const cplx* wq, const cplx* cw) {
  constexpr std::size_t W = V::width;
  const std::size_t half = nc / 2;
  const cplx z0 = src[0];  // read before the aliased dst[0] store
  dst[0] = cplx{z0.real() + z0.imag(), 0.0};
  dst[nc] = cplx{z0.real() - z0.imag(), 0.0};
  cplx cs{0.0, 0.0};
  if constexpr (Cs) cs = cmul(cw[0], dst[0]) + cmul(cw[nc], dst[nc]);
  V a0 = V::zero(), a1 = V::zero();
  std::size_t k = 1;
  for (; k + W <= half; k += W) {
    const std::size_t jr = nc - k - (W - 1);  // mirror run, ascending base
    const V zk = V::load(src + k);
    const V zjc = V::load(src + jr).reversed().conj_();
    const V a = (zk + zjc).scale(0.5);
    const V b = (zk - zjc).scale(0.5);
    const V t = b.mul_neg_i().cmul_nofma(V::load(wq + k));
    const V xk = a + t;
    const V xjr = (a - t).conj_().reversed();
    xk.store(dst + k);
    xjr.store(dst + jr);
    if constexpr (Cs) {
      a0 = a0 + V::load(cw + k).cmul(xk);
      a1 = a1 + V::load(cw + jr).cmul(xjr);
    }
  }
  if constexpr (Cs) cs += (a0 + a1).hsum();
  if (k < half) {
    scalar_r2c_finalize_range(dst, src, nc, wq, k, half, Cs ? cw : nullptr,
                              Cs ? &cs : nullptr);
  }
  if (half != 0) {
    dst[half] = std::conj(src[half]);
    if constexpr (Cs) cs += cmul(cw[half], dst[half]);
  }
  return cs;
}

template <class V>
void k_r2c_finalize(cplx* dst, const cplx* src, std::size_t nc,
                    const cplx* wq) {
  k_r2c_finalize_t<V, false>(dst, src, nc, wq, nullptr);
}

template <class V>
cplx k_r2c_finalize_cs(cplx* dst, const cplx* src, std::size_t nc,
                       const cplx* wq, const cplx* cw) {
  return k_r2c_finalize_t<V, true>(dst, src, nc, wq, cw);
}

// ------------------------- fused last-stage + Hermitian unpack (see
// kernels.hpp). The final butterfly stage of the packed forward spans the
// whole array as one block, so its butterfly (or radix-16 group) at offset
// j and the one at mirror offset stride - j together emit exactly the
// spectrum entries of complete Hermitian pairs: running the two in lockstep
// lets the unpack consume the butterfly outputs in registers, deleting the
// separate finalize read+write sweep. Butterfly ops are radix4_butterfly /
// the scalar shape below (contraction per the enclosing TU, like every
// butterfly kernel); unpack ops follow k_r2c_finalize_t / the scalar range
// helper. Unlike the post-pass kernels above, no cross-backend bitwise
// claim is made — the butterflies already round per-backend — but for a
// fixed backend the result is deterministic, and the strided gather path
// runs the same kernel so compacted and strided r2c still agree bitwise.

/// Scalar radix-4 butterfly, the width-1 shape of radix4_butterfly
/// (forward): same cmul orientations, same structural -i rotation.
inline void radix4_butterfly_s(cplx& a, cplx& b, cplx& c, cplx& d, cplx w1,
                               cplx w2) {
  const cplx t0 = cmul(b, w1);
  const cplx a1 = a + t0;
  const cplx b1 = a - t0;
  const cplx t1 = cmul(d, w1);
  const cplx c1 = c + t1;
  const cplx d1 = c - t1;
  const cplx t2 = cmul(c1, w2);
  const cplx t3 = mul_neg_i(cmul(d1, w2));
  a = a1 + t2;
  b = b1 + t3;
  c = a1 - t2;
  d = b1 - t3;
}

/// Scalar Hermitian unpack of one pair: zk = Z_k, zj = Z_{nc-k}; writes
/// X_k and X_{nc-k}. Op sequence of scalar_r2c_finalize_range.
inline void r2c_unpack_pair_s(cplx* dst, std::size_t nc, const cplx* wq,
                              std::size_t k, cplx zk, cplx zj) {
  const cplx zjc = std::conj(zj);
  const cplx a{(zk.real() + zjc.real()) * 0.5,
               (zk.imag() + zjc.imag()) * 0.5};
  const cplx b{(zk.real() - zjc.real()) * 0.5,
               (zk.imag() - zjc.imag()) * 0.5};
  const cplx t = cmul(mul_neg_i(b), wq[k]);
  dst[k] = a + t;
  dst[nc - k] = std::conj(a - t);
}

/// Vector Hermitian unpack of W pairs: zk holds Z at k..k+W-1 (natural
/// order), zj_rev holds the mirrors Z_{nc-k-w} in lane w (i.e. a reversed
/// load of the mirror run). Writes X at k.. and, reversed, at the mirror
/// run nc-k-W+1... Op sequence of k_r2c_finalize_t's main loop.
template <class V>
inline void r2c_unpack_pair_v(cplx* dst, std::size_t nc, const cplx* wq,
                              std::size_t k, V zk, V zj_rev) {
  const V zjc = zj_rev.conj_();
  const V a = (zk + zjc).scale(0.5);
  const V b = (zk - zjc).scale(0.5);
  const V t = b.mul_neg_i().cmul_nofma(V::load(wq + k));
  (a + t).store(dst + k);
  (a - t).conj_().reversed().store(dst + nc - k - (V::width - 1));
}

template <class V>
void k_r2c_last_stage4(cplx* dst, std::size_t nc, const cplx* w1,
                       const cplx* w2, const cplx* wq) {
  constexpr std::size_t W = V::width;
  const std::size_t q = nc >> 2;  // butterfly count == quarter block
  // Butterfly 0 ({0, q, 2q, 3q}) is self-mirrored: it yields the exact
  // edges X_0/X_nc, the self-pair X_{nc/2} = conj(Z_{nc/2}), and the
  // Hermitian pair (q, 3q).
  {
    cplx z0 = dst[0], z1 = dst[q], z2 = dst[2 * q], z3 = dst[3 * q];
    radix4_butterfly_s(z0, z1, z2, z3, w1[0], w2[0]);
    dst[0] = cplx{z0.real() + z0.imag(), 0.0};
    dst[nc] = cplx{z0.real() - z0.imag(), 0.0};
    dst[2 * q] = std::conj(z2);
    r2c_unpack_pair_s(dst, nc, wq, q, z1, z3);
  }
  // Main sweep: ascending butterflies j..j+W-1 in lockstep with their
  // mirrors q-j-W+1..q-j. The eight outputs pair as (j, nc-j),
  // (q-j, 3q+j), (q+j, 3q-j), (2q-j, 2q+j) — lanes line up after one
  // reversal on the zj side, exactly the finalize sweep's mirror-run trick.
  std::size_t j = 1;
  for (; j + W <= q - j - W + 1; j += W) {
    const std::size_t jr = q - j - (W - 1);
    V a = V::load(dst + j), b = V::load(dst + j + q),
      c = V::load(dst + j + 2 * q), d = V::load(dst + j + 3 * q);
    radix4_butterfly<V, false>(a, b, c, d, V::load(w1 + j), V::load(w2 + j));
    V am = V::load(dst + jr), bm = V::load(dst + jr + q),
      cm = V::load(dst + jr + 2 * q), dm = V::load(dst + jr + 3 * q);
    radix4_butterfly<V, false>(am, bm, cm, dm, V::load(w1 + jr),
                               V::load(w2 + jr));
    r2c_unpack_pair_v<V>(dst, nc, wq, j, a, dm.reversed());
    r2c_unpack_pair_v<V>(dst, nc, wq, jr, am, d.reversed());
    r2c_unpack_pair_v<V>(dst, nc, wq, q + j, b, cm.reversed());
    r2c_unpack_pair_v<V>(dst, nc, wq, q + jr, bm, c.reversed());
  }
  // Scalar middle pairs left over once the runs would collide.
  for (; 2 * j < q; ++j) {
    const std::size_t jr = q - j;
    cplx a = dst[j], b = dst[j + q], c = dst[j + 2 * q],
         d = dst[j + 3 * q];
    radix4_butterfly_s(a, b, c, d, w1[j], w2[j]);
    cplx am = dst[jr], bm = dst[jr + q], cm = dst[jr + 2 * q],
         dm = dst[jr + 3 * q];
    radix4_butterfly_s(am, bm, cm, dm, w1[jr], w2[jr]);
    r2c_unpack_pair_s(dst, nc, wq, j, a, dm);
    r2c_unpack_pair_s(dst, nc, wq, jr, am, d);
    r2c_unpack_pair_s(dst, nc, wq, q + j, b, cm);
    r2c_unpack_pair_s(dst, nc, wq, q + jr, bm, c);
  }
  if (2 * j == q) {
    // Self-mirrored butterfly q/2: its four outputs form two pairs.
    cplx a = dst[j], b = dst[j + q], c = dst[j + 2 * q],
         d = dst[j + 3 * q];
    radix4_butterfly_s(a, b, c, d, w1[j], w2[j]);
    r2c_unpack_pair_s(dst, nc, wq, j, a, d);
    r2c_unpack_pair_s(dst, nc, wq, q + j, b, c);
  }
}

/// Scalar radix-16 group butterfly at offset j (element stride e): the
/// width-1 shape of k_radix16_stage_t's in-register two-stage pass.
inline void radix16_group_s(cplx (&x)[16], const cplx* w1a, const cplx* w2a,
                            const cplx* w1b, const cplx* w2b, std::size_t j,
                            std::size_t e) {
  for (std::size_t m = 0; m < 4; ++m) {
    radix4_butterfly_s(x[4 * m], x[4 * m + 1], x[4 * m + 2], x[4 * m + 3],
                       w1a[j], w2a[j]);
  }
  for (std::size_t m = 0; m < 4; ++m) {
    radix4_butterfly_s(x[m], x[m + 4], x[m + 8], x[m + 12], w1b[j + m * e],
                       w2b[j + m * e]);
  }
}

template <class V>
void k_r2c_last_stage16(cplx* dst, std::size_t nc, const cplx* w1a,
                        const cplx* w2a, const cplx* w1b, const cplx* w2b,
                        const cplx* wq) {
  constexpr std::size_t W = V::width;
  const std::size_t e = nc >> 4;  // group count == element stride
  // Group 0 ({k*e}) is self-mirrored: edges from Z_0, self-pair at
  // 8e == nc/2, and the pairs (k*e, (16-k)*e) for k = 1..7.
  {
    cplx x[16];
    for (std::size_t k = 0; k < 16; ++k) x[k] = dst[k * e];
    radix16_group_s(x, w1a, w2a, w1b, w2b, 0, e);
    dst[0] = cplx{x[0].real() + x[0].imag(), 0.0};
    dst[nc] = cplx{x[0].real() - x[0].imag(), 0.0};
    dst[8 * e] = std::conj(x[8]);
    for (std::size_t k = 1; k < 8; ++k) {
      r2c_unpack_pair_s(dst, nc, wq, k * e, x[k], x[16 - k]);
    }
  }
  // Main sweep: groups j..j+W-1 in lockstep with mirrors e-j-W+1..e-j;
  // output k of group j pairs with output 15-k of the mirror group.
  std::size_t j = 1;
  for (; j + W <= e - j - W + 1; j += W) {
    const std::size_t jr = e - j - (W - 1);
    V x[16], y[16];
    for (std::size_t k = 0; k < 16; ++k) x[k] = V::load(dst + j + k * e);
    {
      const V vw1a = V::load(w1a + j);
      const V vw2a = V::load(w2a + j);
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, false>(x[4 * m], x[4 * m + 1], x[4 * m + 2],
                                   x[4 * m + 3], vw1a, vw2a);
      }
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, false>(x[m], x[m + 4], x[m + 8], x[m + 12],
                                   V::load(w1b + j + m * e),
                                   V::load(w2b + j + m * e));
      }
    }
    for (std::size_t k = 0; k < 16; ++k) y[k] = V::load(dst + jr + k * e);
    {
      const V vw1a = V::load(w1a + jr);
      const V vw2a = V::load(w2a + jr);
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, false>(y[4 * m], y[4 * m + 1], y[4 * m + 2],
                                   y[4 * m + 3], vw1a, vw2a);
      }
      for (std::size_t m = 0; m < 4; ++m) {
        radix4_butterfly<V, false>(y[m], y[m + 4], y[m + 8], y[m + 12],
                                   V::load(w1b + jr + m * e),
                                   V::load(w2b + jr + m * e));
      }
    }
    for (std::size_t k = 0; k < 8; ++k) {
      r2c_unpack_pair_v<V>(dst, nc, wq, j + k * e, x[k], y[15 - k].reversed());
      r2c_unpack_pair_v<V>(dst, nc, wq, jr + k * e, y[k],
                           x[15 - k].reversed());
    }
  }
  // Scalar middle group pairs.
  for (; 2 * j < e; ++j) {
    const std::size_t jr = e - j;
    cplx x[16], y[16];
    for (std::size_t k = 0; k < 16; ++k) x[k] = dst[j + k * e];
    radix16_group_s(x, w1a, w2a, w1b, w2b, j, e);
    for (std::size_t k = 0; k < 16; ++k) y[k] = dst[jr + k * e];
    radix16_group_s(y, w1a, w2a, w1b, w2b, jr, e);
    for (std::size_t k = 0; k < 8; ++k) {
      r2c_unpack_pair_s(dst, nc, wq, j + k * e, x[k], y[15 - k]);
      r2c_unpack_pair_s(dst, nc, wq, jr + k * e, y[k], x[15 - k]);
    }
  }
  if (2 * j == e) {
    // Self-mirrored group e/2: output k pairs with output 15-k in-group.
    cplx x[16];
    for (std::size_t k = 0; k < 16; ++k) x[k] = dst[j + k * e];
    radix16_group_s(x, w1a, w2a, w1b, w2b, j, e);
    for (std::size_t k = 0; k < 8; ++k) {
      r2c_unpack_pair_s(dst, nc, wq, j + k * e, x[k], x[15 - k]);
    }
  }
}

template <class V, bool Cs>
cplx k_c2r_prepare_t(cplx* dst, const cplx* src, std::size_t nc,
                     const cplx* wq, bool conjugate, const cplx* cw) {
  constexpr std::size_t W = V::width;
  const std::size_t half = nc / 2;
  const cplx x0 = src[0];
  const cplx xn = src[nc];
  const cplx z0{(x0.real() + xn.real()) * 0.5,
                (x0.real() - xn.real()) * 0.5};
  dst[0] = conjugate ? std::conj(z0) : z0;
  cplx cs{0.0, 0.0};
  if constexpr (Cs) cs = cmul(cw[0], x0) + cmul(cw[nc], xn);
  V a0 = V::zero(), a1 = V::zero();
  std::size_t k = 1;
  for (; k + W <= half; k += W) {
    const std::size_t jr = nc - k - (W - 1);
    const V xk = V::load(src + k);
    const V xjlin = V::load(src + jr);
    const V xjc = xjlin.reversed().conj_();
    const V a = (xk + xjc).scale(0.5);
    const V b = (xk - xjc).scale(0.5);
    const V u = b.cmul_nofma(V::load(wq + k).conj_()).mul_i();
    V zk = a + u;
    V zj = (a - u).conj_();
    if (conjugate) {
      zk = zk.conj_();
      zj = zj.conj_();
    }
    zk.store(dst + k);
    zj.reversed().store(dst + jr);
    if constexpr (Cs) {
      a0 = a0 + V::load(cw + k).cmul(xk);
      a1 = a1 + V::load(cw + jr).cmul(xjlin);
    }
  }
  if constexpr (Cs) cs += (a0 + a1).hsum();
  if (k < half) {
    scalar_c2r_prepare_range(dst, src, nc, wq, conjugate, k, half,
                             Cs ? cw : nullptr, Cs ? &cs : nullptr);
  }
  if (half != 0) {
    const cplx xh = src[half];
    dst[half] = conjugate ? xh : std::conj(xh);
    if constexpr (Cs) cs += cmul(cw[half], xh);
  }
  return cs;
}

template <class V>
void k_c2r_prepare(cplx* dst, const cplx* src, std::size_t nc,
                   const cplx* wq, bool conjugate) {
  k_c2r_prepare_t<V, false>(dst, src, nc, wq, conjugate, nullptr);
}

template <class V>
cplx k_c2r_prepare_cs(cplx* dst, const cplx* src, std::size_t nc,
                      const cplx* wq, bool conjugate, const cplx* cw) {
  return k_c2r_prepare_t<V, true>(dst, src, nc, wq, conjugate, cw);
}

// ============================================== vertical DFTs for combine

// The codelet math from dft/codelets.cpp transliterated onto vectors: each
// call performs V::width independent r-point DFTs, one per lane.

template <class V>
inline void vdft2(V* x) {
  const V a = x[0];
  const V b = x[1];
  x[0] = a + b;
  x[1] = a - b;
}

template <class V>
inline void vdft4(V* x) {
  const V s02 = x[0] + x[2];
  const V d02 = x[0] - x[2];
  const V s13 = x[1] + x[3];
  const V d13 = x[1] - x[3];
  x[0] = s02 + s13;
  x[1] = d02 + d13.mul_neg_i();
  x[2] = s02 - s13;
  x[3] = d02 + d13.mul_i();
}

template <class V>
inline void vdft8(V* x) {
  V e[4] = {x[0], x[2], x[4], x[6]};
  V o[4] = {x[1], x[3], x[5], x[7]};
  vdft4(e);
  vdft4(o);
  using dft::kHalfSqrt2;
  const V t1 = o[1].cmul(V::broadcast({kHalfSqrt2, -kHalfSqrt2}));
  const V t2 = o[2].mul_neg_i();
  const V t3 = o[3].cmul(V::broadcast({-kHalfSqrt2, -kHalfSqrt2}));
  x[0] = e[0] + o[0];
  x[1] = e[1] + t1;
  x[2] = e[2] + t2;
  x[3] = e[3] + t3;
  x[4] = e[0] - o[0];
  x[5] = e[1] - t1;
  x[6] = e[2] - t2;
  x[7] = e[3] - t3;
}

template <class V>
inline void vdft16(V* x) {
  V e[8] = {x[0], x[2], x[4], x[6], x[8], x[10], x[12], x[14]};
  V o[8] = {x[1], x[3], x[5], x[7], x[9], x[11], x[13], x[15]};
  vdft8(e);
  vdft8(o);
  using dft::kCosPi8;
  using dft::kHalfSqrt2;
  using dft::kSinPi8;
  V t[8];
  t[0] = o[0];
  t[1] = o[1].cmul(V::broadcast({kCosPi8, -kSinPi8}));
  t[2] = o[2].cmul(V::broadcast({kHalfSqrt2, -kHalfSqrt2}));
  t[3] = o[3].cmul(V::broadcast({kSinPi8, -kCosPi8}));
  t[4] = o[4].mul_neg_i();
  t[5] = o[5].cmul(V::broadcast({-kSinPi8, -kCosPi8}));
  t[6] = o[6].cmul(V::broadcast({-kHalfSqrt2, -kHalfSqrt2}));
  t[7] = o[7].cmul(V::broadcast({-kCosPi8, -kSinPi8}));
  for (std::size_t k = 0; k < 8; ++k) {
    x[k] = e[k] + t[k];
    x[k + 8] = e[k] - t[k];
  }
}

template <class V, std::size_t R>
void k_combine_r(cplx* out, std::size_t m, const cplx* tw) {
  std::size_t k1 = 0;
  for (; k1 + V::width <= m; k1 += V::width) {
    V buf[R];
    buf[0] = V::load(out + k1);
    for (std::size_t t = 1; t < R; ++t) {
      buf[t] = V::load(out + k1 + m * t).cmul(V::load(tw + (t - 1) * m + k1));
    }
    if constexpr (R == 2) {
      vdft2(buf);
    } else if constexpr (R == 4) {
      vdft4(buf);
    } else if constexpr (R == 8) {
      vdft8(buf);
    } else {
      static_assert(R == 16);
      vdft16(buf);
    }
    for (std::size_t t = 0; t < R; ++t) buf[t].store(out + k1 + m * t);
  }
  if (k1 < m) scalar_combine_columns(out, 1, m, R, tw, k1, m);
}

template <class V>
void k_combine(cplx* out, std::size_t os, std::size_t m, std::size_t r,
               const cplx* tw) {
  if (os == 1) {
    switch (r) {
      case 2:
        return k_combine_r<V, 2>(out, m, tw);
      case 4:
        return k_combine_r<V, 4>(out, m, tw);
      case 8:
        return k_combine_r<V, 8>(out, m, tw);
      case 16:
        return k_combine_r<V, 16>(out, m, tw);
      default:
        break;
    }
  }
  scalar_combine_columns(out, os, m, r, tw, 0, m);
}

template <class V>
void k_combine_radix4_fused(cplx* out, std::size_t os, std::size_t q,
                            const cplx* w1, const cplx* w2) {
  if (os == 1 && q % V::width == 0 && q >= V::width) {
    // A fused combine is exactly one radix-4 stage whose block spans the
    // whole 4q-element range.
    k_radix4_stage_t<V, false, false>(out, 4 * q, 4 * q, w1, w2, 1.0);
    return;
  }
  scalar_combine_radix4_fused(out, os, q, w1, w2);
}

}  // namespace ftfft::simd::impl
