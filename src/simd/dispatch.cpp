#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ftfft::simd {
namespace {

struct BackendTables {
  Backend backend;
  const FftKernels* fft;
  const ChecksumKernels* checksum;
};

bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const BackendTables* table_for(Backend b) {
  static const BackendTables scalar{Backend::kScalar, scalar_fft_kernels(),
                                    scalar_checksum_kernels()};
  static const BackendTables avx2{Backend::kAvx2, avx2_fft_kernels(),
                                  avx2_checksum_kernels()};
  static const BackendTables neon{Backend::kNeon, neon_fft_kernels(),
                                  neon_checksum_kernels()};
  switch (b) {
    case Backend::kAvx2:
      return avx2.fft != nullptr ? &avx2 : nullptr;
    case Backend::kNeon:
      return neon.fft != nullptr ? &neon : nullptr;
    case Backend::kScalar:
      break;
  }
  return &scalar;
}

std::atomic<const BackendTables*>& current() {
  // Latched at first kernel lookup; set_backend() swaps it afterwards.
  static std::atomic<const BackendTables*> cur{
      table_for(detail::resolve_from_env())};
  return cur;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      break;
  }
  return "scalar";
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kAvx2:
      return avx2_fft_kernels() != nullptr && cpu_has_avx2_fma();
    case Backend::kNeon:
      return neon_fft_kernels() != nullptr;  // NEON is baseline on aarch64
    case Backend::kScalar:
      break;
  }
  return true;
}

Backend detected_backend() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend active_backend() {
  return current().load(std::memory_order_acquire)->backend;
}

const char* simd_backend_name() { return backend_name(active_backend()); }

bool set_backend(Backend b) {
  if (!backend_available(b)) return false;
  current().store(table_for(b), std::memory_order_release);
  return true;
}

const FftKernels& fft_kernels() {
  return *current().load(std::memory_order_acquire)->fft;
}

const ChecksumKernels& checksum_kernels() {
  return *current().load(std::memory_order_acquire)->checksum;
}

namespace detail {

bool parse_backend(const char* value, Backend& out) {
  if (value == nullptr) return false;
  if (std::strcmp(value, "scalar") == 0) {
    out = Backend::kScalar;
    return true;
  }
  if (std::strcmp(value, "avx2") == 0) {
    out = Backend::kAvx2;
    return true;
  }
  if (std::strcmp(value, "neon") == 0) {
    out = Backend::kNeon;
    return true;
  }
  return false;
}

Backend resolve_from_env() {
  const char* raw = std::getenv("FTFFT_SIMD");
  Backend req;
  if (raw != nullptr && *raw != '\0' && parse_backend(raw, req) &&
      backend_available(req)) {
    return req;
  }
  return detected_backend();
}

}  // namespace detail

}  // namespace ftfft::simd
