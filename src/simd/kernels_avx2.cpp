// AVX2 + FMA backend: 2 interleaved complex doubles per __m256d.
//
// This TU is the only one compiled with -mavx2 -mfma (CMake sets
// FTFFT_BUILD_AVX2 on it when the target arch is x86 and the backend is not
// disabled); everywhere else in the library stays at the baseline ISA so the
// binary still runs on machines without AVX2 — the dispatcher simply never
// hands out this table there.
#include "simd/kernels.hpp"

#if defined(FTFFT_BUILD_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "dft/codelet_constants.hpp"
#include "simd/kernels_impl.hpp"
#include "simd/vec.hpp"

namespace ftfft::simd {
namespace {

using V = Avx2Vec;

// --------------------------------------------------- shuffle-based stages

// Twiddle-free radix-2 pass: two pairs (4 cplx) per iteration. permute2f128
// regroups [u0,t0],[u1,t1] into [u0,u1],[t0,t1] so the butterfly is a plain
// vertical add/sub.
void a_radix2_stage0(cplx* data, std::size_t n) {
  std::size_t base = 0;
  for (; base + 4 <= n; base += 4) {
    double* p = reinterpret_cast<double*>(data + base);
    const __m256d v01 = _mm256_loadu_pd(p);
    const __m256d v23 = _mm256_loadu_pd(p + 4);
    const __m256d u = _mm256_permute2f128_pd(v01, v23, 0x20);  // [u0, u1]
    const __m256d t = _mm256_permute2f128_pd(v01, v23, 0x31);  // [t0, t1]
    const __m256d s = _mm256_add_pd(u, t);
    const __m256d d = _mm256_sub_pd(u, t);
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(s, d, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(s, d, 0x31));
  }
  scalar_radix2_stage0_range(data, base, n);
}

// Out-of-place variant of the radix-2 opener: reads src, writes dst (the
// COBRA tile write-back rows are disjoint from the tile buffer).
void a_radix2_stage0_from(cplx* dst, const cplx* src, std::size_t n) {
  std::size_t base = 0;
  for (; base + 4 <= n; base += 4) {
    const double* ps = reinterpret_cast<const double*>(src + base);
    double* pd = reinterpret_cast<double*>(dst + base);
    const __m256d v01 = _mm256_loadu_pd(ps);
    const __m256d v23 = _mm256_loadu_pd(ps + 4);
    const __m256d u = _mm256_permute2f128_pd(v01, v23, 0x20);  // [u0, u1]
    const __m256d t = _mm256_permute2f128_pd(v01, v23, 0x31);  // [t0, t1]
    const __m256d s = _mm256_add_pd(u, t);
    const __m256d d = _mm256_sub_pd(u, t);
    _mm256_storeu_pd(pd, _mm256_permute2f128_pd(s, d, 0x20));
    _mm256_storeu_pd(pd + 4, _mm256_permute2f128_pd(s, d, 0x31));
  }
  scalar_radix2_stage0_from_range(dst, src, base, n);
}

// First fused radix-4 stage (unit twiddles): two 4-element blocks (8 cplx)
// per iteration, transposed in and out with permute2f128.
void a_radix4_first_stage(cplx* data, std::size_t n, bool inverse) {
  std::size_t base = 0;
  for (; base + 8 <= n; base += 8) {
    double* p = reinterpret_cast<double*>(data + base);
    const __m256d v0 = _mm256_loadu_pd(p);       // [a0, b0]
    const __m256d v1 = _mm256_loadu_pd(p + 4);   // [c0, d0]
    const __m256d v2 = _mm256_loadu_pd(p + 8);   // [a1, b1]
    const __m256d v3 = _mm256_loadu_pd(p + 12);  // [c1, d1]
    const V a{_mm256_permute2f128_pd(v0, v2, 0x20)};  // [a0, a1]
    const V b{_mm256_permute2f128_pd(v0, v2, 0x31)};  // [b0, b1]
    const V c{_mm256_permute2f128_pd(v1, v3, 0x20)};  // [c0, c1]
    const V d{_mm256_permute2f128_pd(v1, v3, 0x31)};  // [d0, d1]
    const V a1 = a + b;
    const V b1 = a - b;
    const V c1 = c + d;
    const V d1 = c - d;
    const V t3 = inverse ? d1.mul_i() : d1.mul_neg_i();
    const V o0 = a1 + c1;
    const V o1 = b1 + t3;
    const V o2 = a1 - c1;
    const V o3 = b1 - t3;
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(o0.v, o1.v, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(o2.v, o3.v, 0x20));
    _mm256_storeu_pd(p + 8, _mm256_permute2f128_pd(o0.v, o1.v, 0x31));
    _mm256_storeu_pd(p + 12, _mm256_permute2f128_pd(o2.v, o3.v, 0x31));
  }
  scalar_radix4_first_stage_range(data, base, n, inverse);
}

// Out-of-place variant of the first fused radix-4 stage.
void a_radix4_first_stage_from(cplx* dst, const cplx* src, std::size_t n,
                               bool inverse) {
  std::size_t base = 0;
  for (; base + 8 <= n; base += 8) {
    const double* ps = reinterpret_cast<const double*>(src + base);
    double* pd = reinterpret_cast<double*>(dst + base);
    const __m256d v0 = _mm256_loadu_pd(ps);       // [a0, b0]
    const __m256d v1 = _mm256_loadu_pd(ps + 4);   // [c0, d0]
    const __m256d v2 = _mm256_loadu_pd(ps + 8);   // [a1, b1]
    const __m256d v3 = _mm256_loadu_pd(ps + 12);  // [c1, d1]
    const V a{_mm256_permute2f128_pd(v0, v2, 0x20)};  // [a0, a1]
    const V b{_mm256_permute2f128_pd(v0, v2, 0x31)};  // [b0, b1]
    const V c{_mm256_permute2f128_pd(v1, v3, 0x20)};  // [c0, c1]
    const V d{_mm256_permute2f128_pd(v1, v3, 0x31)};  // [d0, d1]
    const V a1 = a + b;
    const V b1 = a - b;
    const V c1 = c + d;
    const V d1 = c - d;
    const V t3 = inverse ? d1.mul_i() : d1.mul_neg_i();
    const V o0 = a1 + c1;
    const V o1 = b1 + t3;
    const V o2 = a1 - c1;
    const V o3 = b1 - t3;
    _mm256_storeu_pd(pd, _mm256_permute2f128_pd(o0.v, o1.v, 0x20));
    _mm256_storeu_pd(pd + 4, _mm256_permute2f128_pd(o2.v, o3.v, 0x20));
    _mm256_storeu_pd(pd + 8, _mm256_permute2f128_pd(o0.v, o1.v, 0x31));
    _mm256_storeu_pd(pd + 12, _mm256_permute2f128_pd(o2.v, o3.v, 0x31));
  }
  scalar_radix4_first_stage_from_range(dst, src, base, n, inverse);
}

// ------------------------------------------------------- leaf codelets

// Strided-input, contiguous-output DFT-N: lane 0 carries the even-indexed
// subsequence, lane 1 the odd one; a single vertical DFT of size N/2 then
// computes both sub-transforms at once, and the final radix-2 combine
// multiplies lane 1 by omega_N^k ([1, w] vectors) before splitting lanes.
template <std::size_t Half>
inline void leaf_dft(const cplx* in, std::size_t is, cplx* out,
                     const cplx* half_tw) {
  V v[Half];
  for (std::size_t t = 0; t < Half; ++t) {
    v[t] = V::gather(in + 2 * t * is, is);  // [even[t], odd[t]]
  }
  if constexpr (Half == 2) {
    impl::vdft2(v);
  } else if constexpr (Half == 4) {
    impl::vdft4(v);
  } else {
    static_assert(Half == 8);
    impl::vdft8(v);
  }
  for (std::size_t k = 0; k < Half; ++k) {
    const V wv{_mm256_setr_pd(1.0, 0.0, half_tw[k].real(),
                              half_tw[k].imag())};
    const V u = v[k].cmul(wv);  // [e_k, w*o_k]; lane 0 is exact (w == 1)
    const __m128d e = _mm256_castpd256_pd128(u.v);
    const __m128d t = _mm256_extractf128_pd(u.v, 1);
    _mm_storeu_pd(reinterpret_cast<double*>(out + k), _mm_add_pd(e, t));
    _mm_storeu_pd(reinterpret_cast<double*>(out + k + Half),
                  _mm_sub_pd(e, t));
  }
}

void a_dft4(const cplx* in, std::size_t is, cplx* out) {
  static const cplx w4[2] = {{1.0, 0.0}, {0.0, -1.0}};
  leaf_dft<2>(in, is, out, w4);
}

void a_dft8(const cplx* in, std::size_t is, cplx* out) {
  using dft::kHalfSqrt2;
  static const cplx w8[4] = {{1.0, 0.0},
                             {kHalfSqrt2, -kHalfSqrt2},
                             {0.0, -1.0},
                             {-kHalfSqrt2, -kHalfSqrt2}};
  leaf_dft<4>(in, is, out, w8);
}

void a_dft16(const cplx* in, std::size_t is, cplx* out) {
  using dft::kCosPi8;
  using dft::kHalfSqrt2;
  using dft::kSinPi8;
  static const cplx w16[8] = {{1.0, 0.0},
                              {kCosPi8, -kSinPi8},
                              {kHalfSqrt2, -kHalfSqrt2},
                              {kSinPi8, -kCosPi8},
                              {0.0, -1.0},
                              {-kSinPi8, -kCosPi8},
                              {-kHalfSqrt2, -kHalfSqrt2},
                              {-kCosPi8, -kSinPi8}};
  leaf_dft<8>(in, is, out, w16);
}

// -------------------------------------------------------------- tables

void a_radix4_stage(cplx* data, std::size_t n, std::size_t len,
                    const cplx* w1, const cplx* w2, bool inverse,
                    double scale) {
  impl::k_radix4_stage<V>(data, n, len, w1, w2, inverse, scale);
}

constexpr FftKernels kAvx2Fft = {
    a_radix2_stage0,
    a_radix2_stage0_from,
    a_radix4_first_stage,
    a_radix4_first_stage_from,
    a_radix4_stage,
    impl::k_radix16_stage<V>,
    impl::k_combine<V>,
    impl::k_combine_radix4_fused<V>,
    a_dft4,
    a_dft8,
    a_dft16,
    impl::k_radix4_stage_cs<V>,
    impl::k_radix16_stage_cs<V>,
    impl::k_copy_weighted_sum_energy<V>,
    impl::k_r2c_finalize<V>,
    impl::k_r2c_finalize_cs<V>,
    impl::k_c2r_prepare<V>,
    impl::k_c2r_prepare_cs<V>,
    impl::k_r2c_last_stage4<V>,
    impl::k_r2c_last_stage16<V>,
};

constexpr ChecksumKernels kAvx2Checksum = {
    impl::k_weighted_sum<V>,
    impl::k_dual_weighted_sum<V>,
    impl::k_energy<V>,
    impl::k_robust_energy<V>,
    impl::k_dual_plain_sum_robust<V>,
    impl::k_weighted_sum_energy<V>,
    impl::k_dual_weighted_sum_energy<V>,
    impl::k_omega3_weighted_sum<V>,
    impl::k_copy_dual_sum<V>,
    impl::k_syndrome_dot<V>,
};

}  // namespace

const ChecksumKernels* avx2_checksum_kernels() { return &kAvx2Checksum; }
const FftKernels* avx2_fft_kernels() { return &kAvx2Fft; }

}  // namespace ftfft::simd

#else  // backend not compiled in

namespace ftfft::simd {

const ChecksumKernels* avx2_checksum_kernels() { return nullptr; }
const FftKernels* avx2_fft_kernels() { return nullptr; }

}  // namespace ftfft::simd

#endif
