// Scalar backend: the reference implementations every vector backend is
// checked against. This TU is compiled with -ffp-contract=off (see
// CMakeLists.txt) so the schoolbook complex multiply stays a plain
// 4-mul/2-add sequence regardless of compiler contraction defaults — the
// cross-backend comparison tests rely on that baseline being stable.
#include <cassert>

#include "dft/codelets.hpp"
#include "simd/kernels.hpp"
#include "simd/kernels_impl.hpp"
#include "simd/vec.hpp"

namespace ftfft::simd {

// Shared scalar helpers (also the fallbacks inside the vector backends).

void scalar_combine_columns(cplx* out, std::size_t os, std::size_t m,
                            std::size_t r, const cplx* tw,
                            std::size_t k1_begin, std::size_t k1_end) {
  // Upper bound on the combine radix; kRadixPreference in plan.cpp tops out
  // at 16 and generic codelets at 32, both far below this.
  constexpr std::size_t kMaxRadix = 64;
  assert(r <= kMaxRadix);
  cplx buf[kMaxRadix];
  cplx res[kMaxRadix];
  for (std::size_t k1 = k1_begin; k1 < k1_end; ++k1) {
    buf[0] = out[k1 * os];
    for (std::size_t t1 = 1; t1 < r; ++t1) {
      buf[t1] = cmul(out[(k1 + m * t1) * os], tw[(t1 - 1) * m + k1]);
    }
    dft::codelet_dft(r, buf, 1, res, 1);
    for (std::size_t k2 = 0; k2 < r; ++k2) {
      out[(k1 + m * k2) * os] = res[k2];
    }
  }
}

void scalar_combine_radix4_fused(cplx* out, std::size_t os, std::size_t q,
                                 const cplx* w1, const cplx* w2) {
  for (std::size_t j = 0; j < q; ++j) {
    const cplx a = out[j * os];
    const cplx b = out[(j + q) * os];
    const cplx c = out[(j + 2 * q) * os];
    const cplx d = out[(j + 3 * q) * os];
    const cplx t0 = cmul(b, w1[j]);
    const cplx a1 = a + t0;
    const cplx b1 = a - t0;
    const cplx t1 = cmul(d, w1[j]);
    const cplx c1 = c + t1;
    const cplx d1 = c - t1;
    const cplx t2 = cmul(c1, w2[j]);
    const cplx t3 = mul_neg_i(cmul(d1, w2[j]));
    out[j * os] = a1 + t2;
    out[(j + 2 * q) * os] = a1 - t2;
    out[(j + q) * os] = b1 + t3;
    out[(j + 3 * q) * os] = b1 - t3;
  }
}

void scalar_radix2_stage0_range(cplx* data, std::size_t begin,
                                std::size_t end) {
  for (std::size_t base = begin; base + 1 < end; base += 2) {
    const cplx u = data[base];
    const cplx t = data[base + 1];
    data[base] = u + t;
    data[base + 1] = u - t;
  }
}

void scalar_radix4_first_stage_range(cplx* data, std::size_t begin,
                                     std::size_t end, bool inverse) {
  for (std::size_t base = begin; base + 3 < end; base += 4) {
    const cplx a = data[base];
    const cplx b = data[base + 1];
    const cplx c = data[base + 2];
    const cplx d = data[base + 3];
    const cplx a1 = a + b;
    const cplx b1 = a - b;
    const cplx c1 = c + d;
    const cplx d1 = c - d;
    const cplx t3 = inverse ? mul_i(d1) : mul_neg_i(d1);
    data[base] = a1 + c1;
    data[base + 1] = b1 + t3;
    data[base + 2] = a1 - c1;
    data[base + 3] = b1 - t3;
  }
}

void scalar_radix2_stage0_from_range(cplx* dst, const cplx* src,
                                     std::size_t begin, std::size_t end) {
  for (std::size_t base = begin; base + 1 < end; base += 2) {
    const cplx u = src[base];
    const cplx t = src[base + 1];
    dst[base] = u + t;
    dst[base + 1] = u - t;
  }
}

void scalar_radix4_first_stage_from_range(cplx* dst, const cplx* src,
                                          std::size_t begin, std::size_t end,
                                          bool inverse) {
  for (std::size_t base = begin; base + 3 < end; base += 4) {
    const cplx a = src[base];
    const cplx b = src[base + 1];
    const cplx c = src[base + 2];
    const cplx d = src[base + 3];
    const cplx a1 = a + b;
    const cplx b1 = a - b;
    const cplx c1 = c + d;
    const cplx d1 = c - d;
    const cplx t3 = inverse ? mul_i(d1) : mul_neg_i(d1);
    dst[base] = a1 + c1;
    dst[base + 1] = b1 + t3;
    dst[base + 2] = a1 - c1;
    dst[base + 3] = b1 - t3;
  }
}

void scalar_r2c_finalize_range(cplx* dst, const cplx* src, std::size_t nc,
                               const cplx* wq, std::size_t begin,
                               std::size_t end, const cplx* cw, cplx* cs) {
  // One Hermitian pair per k; the op sequence is exactly the width-1 shape
  // of impl::k_r2c_finalize_t (add, exact *0.5, -i rotation, schoolbook
  // cmul), and this TU pins contraction off, so vector backends calling in
  // for their remainder pairs land on the same bits.
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t j = nc - k;
    const cplx zk = src[k];
    const cplx zjc = std::conj(src[j]);
    const cplx a{(zk.real() + zjc.real()) * 0.5,
                 (zk.imag() + zjc.imag()) * 0.5};
    const cplx b{(zk.real() - zjc.real()) * 0.5,
                 (zk.imag() - zjc.imag()) * 0.5};
    const cplx t = cmul(mul_neg_i(b), wq[k]);
    const cplx xk = a + t;
    const cplx xj = std::conj(a - t);
    dst[k] = xk;
    dst[j] = xj;
    if (cw != nullptr) *cs += cmul(cw[k], xk) + cmul(cw[j], xj);
  }
}

void scalar_c2r_prepare_range(cplx* dst, const cplx* src, std::size_t nc,
                              const cplx* wq, bool conjugate,
                              std::size_t begin, std::size_t end,
                              const cplx* cw, cplx* cs) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t j = nc - k;
    const cplx xk = src[k];
    const cplx xjc = std::conj(src[j]);
    const cplx a{(xk.real() + xjc.real()) * 0.5,
                 (xk.imag() + xjc.imag()) * 0.5};
    const cplx b{(xk.real() - xjc.real()) * 0.5,
                 (xk.imag() - xjc.imag()) * 0.5};
    const cplx u = mul_i(cmul(b, std::conj(wq[k])));
    cplx zk = a + u;
    cplx zj = std::conj(a - u);
    if (conjugate) {
      zk = std::conj(zk);
      zj = std::conj(zj);
    }
    dst[k] = zk;
    dst[j] = zj;
    if (cw != nullptr) *cs += cmul(cw[k], src[k]) + cmul(cw[j], src[j]);
  }
}

namespace {

using V = ScalarVec;

void s_radix2_stage0(cplx* data, std::size_t n) {
  scalar_radix2_stage0_range(data, 0, n);
}

void s_radix2_stage0_from(cplx* dst, const cplx* src, std::size_t n) {
  scalar_radix2_stage0_from_range(dst, src, 0, n);
}

void s_radix4_first_stage(cplx* data, std::size_t n, bool inverse) {
  scalar_radix4_first_stage_range(data, 0, n, inverse);
}

void s_radix4_first_stage_from(cplx* dst, const cplx* src, std::size_t n,
                               bool inverse) {
  scalar_radix4_first_stage_from_range(dst, src, 0, n, inverse);
}

void s_combine(cplx* out, std::size_t os, std::size_t m, std::size_t r,
               const cplx* tw) {
  scalar_combine_columns(out, os, m, r, tw, 0, m);
}

constexpr FftKernels kScalarFft = {
    s_radix2_stage0,
    s_radix2_stage0_from,
    s_radix4_first_stage,
    s_radix4_first_stage_from,
    impl::k_radix4_stage<V>,
    impl::k_radix16_stage<V>,
    s_combine,
    scalar_combine_radix4_fused,
    nullptr,  // dft4: width-1 backend, scalar codelets are already optimal
    nullptr,  // dft8
    nullptr,  // dft16
    impl::k_radix4_stage_cs<V>,
    impl::k_radix16_stage_cs<V>,
    impl::k_copy_weighted_sum_energy<V>,
    impl::k_r2c_finalize<V>,
    impl::k_r2c_finalize_cs<V>,
    impl::k_c2r_prepare<V>,
    impl::k_c2r_prepare_cs<V>,
    impl::k_r2c_last_stage4<V>,
    impl::k_r2c_last_stage16<V>,
};

constexpr ChecksumKernels kScalarChecksum = {
    impl::k_weighted_sum<V>,
    impl::k_dual_weighted_sum<V>,
    impl::k_energy<V>,
    impl::k_robust_energy<V>,
    impl::k_dual_plain_sum_robust<V>,
    impl::k_weighted_sum_energy<V>,
    impl::k_dual_weighted_sum_energy<V>,
    impl::k_omega3_weighted_sum<V>,
    impl::k_copy_dual_sum<V>,
    impl::k_syndrome_dot<V>,
};

}  // namespace

const ChecksumKernels* scalar_checksum_kernels() { return &kScalarChecksum; }
const FftKernels* scalar_fft_kernels() { return &kScalarFft; }

}  // namespace ftfft::simd
