#include "parallel/parallel_plan.hpp"

#include <atomic>

#include "abft/options.hpp"
#include "checksum/weights.hpp"
#include "common/env.hpp"
#include "common/plan_registry.hpp"
#include "fft/fft.hpp"
#include "roundoff/model.hpp"

namespace ftfft::parallel {
namespace {

std::atomic<std::uint64_t> plan_builds{0};

struct PlanKey {
  std::size_t p;
  std::size_t n;
  bool protect;
  int max_errors;
  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept {
    return ((key.p * 1000003 + key.n) * 2 +
            static_cast<std::size_t>(key.protect)) *
               8 +
           static_cast<std::size_t>(key.max_errors);
  }
};

std::uint64_t seal_parallel_plan(const ParallelPlan& plan) {
  StateSpans spans;
  plan.collect_state(spans);
  return seal_spans(spans);
}

PlanRegistry<PlanKey, ParallelPlan, PlanKeyHash>& registry() {
  static PlanRegistry<PlanKey, ParallelPlan, PlanKeyHash> instance(
      plan_cache_capacity(), seal_parallel_plan);
  return instance;
}

// Enroll in plan_cache_stats() / scrub_plan_caches() before main. The
// lambdas are lazy on purpose: the registry (and its FTFFT_PLAN_CACHE_CAP /
// FTFFT_PLAN_VERIFY reads) is only materialized at first use or first stats
// call, never during static initialization.
const bool registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return registry().snapshot("parallel-plan"); },
         [] { return registry().scrub(); },
         [](std::size_t k) { registry().set_verify_interval(k); }}),
     true);

}  // namespace

ParallelPlan::ParallelPlan(std::size_t p, std::size_t n, bool protect,
                           int max_errors)
    : p_(p), n_(n), n_loc_(p == 0 ? 0 : n / p),
      bsz_(p == 0 ? 0 : n / p / p), protect_(protect),
      max_errors_(checksum::clamp_max_errors(max_errors)) {
  plan_builds.fetch_add(1, std::memory_order_relaxed);
  detail::require(p >= 2, "parallel plan: need at least 2 ranks");
  detail::require(p % 3 != 0,
                  "parallel plan: rank count divisible by 3 degenerates the "
                  "checksum encoding");
  detail::require(n % (p * p) == 0, "parallel plan: N must be divisible by p^2");

  if (protect) {
    cp_ = checksum::shared_input_checksum_vector(
        p_, checksum::RaGenMethod::kClosedForm);
    // Same cache entry abft::resolve_protection_plan yields for the
    // in-place entry point under online options (the kOnlineInplace key
    // normalizes the buffering fields away), so the execution-time lookup
    // is a guaranteed hit.
    abft::Options fft2_opts = abft::Options::online_opt(true);
    fft2_opts.max_correctable_errors = max_errors_;
    fft2_ = abft::ProtectionPlan::get(n_loc_, abft::Scheme::kOnlineInplace,
                                      fft2_opts);
    eta_fft1_coeff_ = roundoff::practical_eta_coeff(p_);
    eta_block_coeff_ =
        roundoff::practical_eta_memory_coeff(bsz_ == 0 ? 1 : bsz_);
    if (max_errors_ > 1 && bsz_ > 0) {
      sn_block_ = checksum::shared_syndrome_nodes(bsz_);
    }
  }

  // Touch every sub-FFT plan tree the run will execute, so rank threads /
  // engine workers never race through a cold plan build: FFT1's p-point
  // engine, FFT2's k- and r-point sub-engines (protected) or the whole
  // n_loc engine (unprotected).
  fft::Fft warm_p(p_);
  if (protect) {
    fft::Fft warm_k(fft2_->k());
    fft::Fft warm_r(fft2_->r());
  } else {
    fft::Fft warm_loc(n_loc_);
  }
}

std::shared_ptr<const ParallelPlan> ParallelPlan::get(std::size_t p,
                                                      std::size_t n,
                                                      bool protect,
                                                      int max_errors) {
  const int t = protect ? checksum::clamp_max_errors(max_errors) : 1;
  return registry().get_or_build(PlanKey{p, n, protect, t}, [&] {
    return std::make_shared<const ParallelPlan>(p, n, protect, t);
  });
}

std::uint64_t ParallelPlan::build_count() noexcept {
  return plan_builds.load(std::memory_order_relaxed);
}

std::size_t ParallelPlan::cache_size() { return registry().size(); }

void ParallelPlan::drop_cache() { registry().clear(); }

std::shared_ptr<const ParallelPlan> warm_plans(std::size_t p, std::size_t n,
                                               bool protect,
                                               int max_correctable_errors) {
  if (max_correctable_errors <= 0) {
    max_correctable_errors =
        static_cast<int>(env_long("FTFFT_MAX_ERRORS", 1));
  }
  return ParallelPlan::get(p, n, protect, max_correctable_errors);
}

}  // namespace ftfft::parallel
