#include "parallel/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace ftfft::parallel {

std::size_t RankCtx::nranks() const { return comm_->nranks_; }

const NetworkModel& RankCtx::net() const { return comm_->net_; }

void RankCtx::send(std::size_t to, int tag, std::vector<cplx> payload) {
  auto& box = *comm_->mailboxes_[to];
  {
    std::scoped_lock lock(box.mu);
    box.queues[{rank_, tag}].push_back(
        Message{std::move(payload), clock_.now()});
  }
  box.cv.notify_all();
}

Message RankCtx::recv(std::size_t from, int tag) {
  auto& box = *comm_->mailboxes_[rank_];
  std::unique_lock lock(box.mu);
  const auto key = std::make_pair(from, tag);
  box.cv.wait(lock, [&] {
    if (comm_->aborted_.load(std::memory_order_relaxed)) return true;
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  if (comm_->aborted_.load(std::memory_order_relaxed)) {
    auto it = box.queues.find(key);
    if (it == box.queues.end() || it->second.empty()) {
      throw std::runtime_error("SimComm: run aborted by a peer rank");
    }
  }
  auto& queue = box.queues[key];
  Message msg = std::move(queue.front());
  queue.erase(queue.begin());
  return msg;
}

void RankCtx::barrier() { comm_->barrier_wait(*this); }

SimComm::SimComm(std::size_t nranks, NetworkModel net, std::uint64_t seed)
    : nranks_(nranks), net_(net), seed_(seed) {
  if (nranks == 0) throw std::invalid_argument("SimComm: nranks must be >= 1");
  mailboxes_.reserve(nranks);
  injectors_.reserve(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    injectors_.push_back(std::make_unique<fault::Injector>());
  }
  reports_.resize(nranks);
}

void SimComm::barrier_wait(RankCtx& ctx) {
  std::unique_lock lock(barrier_mu_);
  const std::size_t gen = barrier_generation_;
  barrier_max_time_ = std::max(barrier_max_time_, ctx.clock().now());
  if (++barrier_arrived_ == nranks_) {
    // Last arrival: publish the max and wake everyone.
    barrier_arrived_ = 0;
    ++barrier_generation_;
    ctx.clock().advance_to(barrier_max_time_);
    const double released_max = barrier_max_time_;
    barrier_max_time_ = 0.0;
    // Stash the released max where waiters can read it via the generation
    // check below (they read released_max through the captured variable).
    last_released_max_ = released_max;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != gen ||
           aborted_.load(std::memory_order_relaxed);
  });
  if (barrier_generation_ == gen) {
    // Woken by an abort, not a completed barrier. Undo our arrival so any
    // future (never coming) generation count stays consistent, then unwind.
    --barrier_arrived_;
    throw std::runtime_error("SimComm: run aborted by a peer rank");
  }
  ctx.clock().advance_to(last_released_max_);
}

void SimComm::run(const std::function<void(RankCtx&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(nranks_);
  std::mutex err_mu;
  std::exception_ptr first_error;

  // Contexts live in a vector so threads can reference them stably.
  std::vector<std::unique_ptr<RankCtx>> ctxs;
  Rng seeder(seed_);
  for (std::size_t r = 0; r < nranks_; ++r) {
    auto ctx = std::unique_ptr<RankCtx>(
        new RankCtx(this, r, seeder.fork(r).next_u64()));
    ctx->injector_ = injectors_[r].get();
    ctxs.push_back(std::move(ctx));
  }

  for (std::size_t r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      RankCtx& ctx = *ctxs[r];
      try {
        body(ctx);
      } catch (...) {
        {
          std::scoped_lock lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Wake peers blocked in recv()/barrier() so the run unwinds
        // instead of deadlocking.
        aborted_.store(true, std::memory_order_relaxed);
        for (auto& box : mailboxes_) {
          std::scoped_lock box_lock(box->mu);
          box->cv.notify_all();
        }
        {
          std::scoped_lock blk(barrier_mu_);
          barrier_cv_.notify_all();
        }
      }
      reports_[r] = RankReport{ctx.clock().now(),
                               ctx.clock().compute_seconds(),
                               ctx.clock().comm_seconds()};
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

double SimComm::makespan() const {
  double worst = 0.0;
  for (const auto& r : reports_) worst = std::max(worst, r.end_time);
  return worst;
}

}  // namespace ftfft::parallel
