// Engine-sharded six-step FFT (submit_parallel / parallel_fft_sharded).
//
// Same algorithm, same arithmetic, different execution substrate than
// parallel_fft.cpp: the p simulated ranks become p work items per phase on
// a BatchEngine, and the three transposes become direct cache-blocked
// copies between shared arrays — rank r's "receive of block q" is a single
// pass that copies in[q] -> out[r], generates the sender's dual message
// checksum inside that copy (checksum::copy_dual_sum, the communication
// analogue of PR 6's staged-copy fusion) and verifies it on the receiver
// side. Phases chain through BatchFuture::then callbacks, so a submission
// never blocks a caller thread and consecutive huge transforms pipeline
// across the pool.
//
// Bit-compatibility contract (tested by ShardedMatchesReference*): with
// fused_checksums off, the output equals parallel_fft's bit for bit,
// because every operation that touches data — block copies, the FFT1
// gather order and engine, the DMR / plain twiddle, the k*r*k FFT2, the
// final scatter — is the same code or the same arithmetic. The only
// differences are checksum accumulation order (ascending source rank here
// vs resident-then-circle-schedule there), which changes checksum values
// by round-off but never the data, and modeled-time bookkeeping.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "abft/dmr.hpp"
#include "abft/inplace.hpp"
#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/multi_error.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/timer.hpp"
#include "engine/batch_engine.hpp"
#include "fft/fft.hpp"
#include "parallel/parallel_fft.hpp"
#include "parallel/parallel_plan.hpp"
#include "roundoff/model.hpp"

namespace ftfft::parallel {

namespace detail {

/// Completion + buffer state shared by the executor, the phase callbacks
/// and the ParallelFuture. Phases stream in -> buf1 -> buf2 -> out; see
/// the buffer-scheme note below for who owns what.
struct ShardedState {
  std::size_t p = 0, n = 0, n_loc = 0, bsz = 0;
  ParallelOptions opts;
  std::shared_ptr<const ParallelPlan> plan;
  engine::BatchEngine* eng = nullptr;

  // Buffer scheme. The phases stream in -> buf1 -> buf2 -> out, and every
  // element of a buffer is written before anything reads it, so the
  // intermediates live in raw *uninitialized* storage (std::complex
  // zero-fills even under a default-init allocator, and at 2^22 the two
  // value-initialization passes a vector resize would do are a measurable
  // slice of the whole transform). The final spectrum must come back as a
  // std::vector, so `out` points into one of the two vectors we own:
  //  - normally the input vector itself — after phase 1 nobody reads it,
  //    so the phase-3 scatter recycles it and get() moves it out with no
  //    allocation, no zero-fill and no copy;
  //  - when a modeled rank failure may trigger a whole-transform restart
  //    (fail_rank armed and max_rank_restarts > 0), the input must stay
  //    pristine for the re-run, so `out` is a separate zero-filled vector.
  // The raw stores come from a process-wide pool (scratch_take/scratch_put)
  // and go back to it when the state dies: for huge transforms the
  // dominant cost of a fresh 2*N-double block is not the allocation but
  // faulting its pages in, and glibc hands blocks this size straight back
  // to the OS on free — pooling keeps the pages warm across submissions.
  std::vector<cplx> in;  ///< owned input; faults injected at submission
  std::vector<cplx> a;   ///< restart mode only: separate output vector
  std::unique_ptr<double[]> s1_store, s2_store;  ///< uninitialized scratch
  std::size_t store_doubles = 0;  ///< pooled size of each raw store
  cplx* buf1 = nullptr;  ///< phase-1 output / phase-2 input
  cplx* buf2 = nullptr;  ///< phase-2 output / phase-3 input
  cplx* out = nullptr;   ///< final spectrum (in.data() or a.data())
  bool out_is_input = false;

  ~ShardedState();
  std::vector<fault::Injector> injectors;  ///< one per simulated rank

  // Per-rank accumulators; each slot written only by its rank's task.
  std::vector<abft::Stats> rank_stats;
  std::vector<TransposeStats> rank_comm;
  std::vector<double> rank_cpu;
  std::array<std::vector<double>, 3> phase_cpu;
  std::array<std::vector<double>, 3> phase_comm;
  std::array<double, 3> phase_wall{};

  /// One-shot latch for the modeled rank failure: a restart models failover
  /// onto a replacement node, so the fault does not refire.
  std::atomic<bool> fail_fired{false};
  int restarts_done = 0;

  std::chrono::steady_clock::time_point phase_start{};

  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::exception_ptr error;
  ParallelReport report;
};

}  // namespace detail

namespace {

/// Tiny process-wide pool of big uninitialized scratch blocks. take()
/// returns a pooled block whose capacity covers `doubles` (contents
/// unspecified) or a fresh allocation; put() retains at most kPoolCap
/// blocks and lets the rest free normally. Keeping the blocks alive keeps
/// their pages resident, so back-to-back sharded transforms skip the
/// fault-in pass that otherwise dominates buffer setup at 2^22+.
constexpr std::size_t kPoolCap = 4;

struct PooledBlock {
  std::size_t doubles = 0;
  std::unique_ptr<double[]> mem;
};

// Both statics are intentionally immortal (heap-allocated, never freed):
// the last reference to a ShardedState can be dropped by an engine worker
// inside future fulfillment — after the waiter's get() has already
// returned — so ~ShardedState's scratch_put can run while the main thread
// is in atexit teardown. A function-local static vector would be destroyed
// there and the late put would write into freed storage; a leaked one is
// reachable until process exit and always safe to push into.
std::mutex& pool_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<PooledBlock>& pool() {
  static std::vector<PooledBlock>* blocks = new std::vector<PooledBlock>;
  return *blocks;
}

std::unique_ptr<double[]> scratch_take(std::size_t doubles) {
  {
    std::lock_guard<std::mutex> lock(pool_mu());
    auto& blocks = pool();
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
      if (it->doubles == doubles) {  // exact match: no capacity bookkeeping
        auto mem = std::move(it->mem);
        blocks.erase(it);
        return mem;
      }
    }
  }
  return std::unique_ptr<double[]>(new double[doubles]);  // default-init
}

void scratch_put(std::size_t doubles, std::unique_ptr<double[]> mem) {
  if (mem == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_mu());
  auto& blocks = pool();
  if (blocks.size() < kPoolCap) {
    blocks.push_back({doubles, std::move(mem)});
  }
}

}  // namespace

namespace detail {

ShardedState::~ShardedState() {
  scratch_put(store_doubles, std::move(s1_store));
  scratch_put(store_doubles, std::move(s2_store));
}

}  // namespace detail

namespace {

using checksum::DualSum;
using detail::ShardedState;
using detail::plain_twiddle;
using detail::sigma_of;

/// Per-worker-thread scratch, grown on demand and reused across phases and
/// submissions (engine workers are persistent, so steady-state runs do no
/// scratch allocation at all). Callers fully overwrite what they read, so
/// the buffer carries no state between uses.
cplx* thread_scratch(std::size_t n) {
  static thread_local std::vector<cplx> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

void accumulate(abft::Stats& dst, const abft::Stats& s) {
  dst.comp_errors_detected += s.comp_errors_detected;
  dst.mem_errors_detected += s.mem_errors_detected;
  dst.mem_errors_corrected += s.mem_errors_corrected;
  dst.multi_errors_corrected += s.multi_errors_corrected;
  dst.sub_fft_retries += s.sub_fft_retries;
  dst.full_restarts += s.full_restarts;
  dst.dmr_mismatches += s.dmr_mismatches;
  dst.verifications += s.verifications;
  dst.eta_m = std::max(dst.eta_m, s.eta_m);
  dst.eta_k = std::max(dst.eta_k, s.eta_k);
  dst.eta_mem = std::max(dst.eta_mem, s.eta_mem);
}

// Same repair/throw semantics as the reference transpose receive path.
void verify_block(cplx* block, std::size_t len, const DualSum& stored,
                  double eta, int max_retries, TransposeStats& stats) {
  const auto rep = checksum::repair_single_error(stored, block, 1, nullptr,
                                                 len, eta, max_retries);
  if (!rep.mismatch) return;
  ++stats.comm_errors_detected;
  if (!rep.corrected) {
    throw UncorrectableError(
        "block transpose: received block failed verification beyond repair");
  }
  ++stats.comm_errors_corrected;
}

// Multi-error variant (plan max_errors > 1), mirroring the reference path.
void verify_block_multi(cplx* block, std::size_t len,
                        const checksum::SyndromeSet& stored, double eta,
                        int max_errors, const double* nodes,
                        TransposeStats& stats) {
  const auto rep = checksum::repair_errors(stored, block, 1, nullptr, len,
                                           eta, max_errors, /*max_iters=*/6,
                                           nodes);
  if (!rep.mismatch) return;
  ++stats.comm_errors_detected;
  if (!rep.corrected) {
    throw UncorrectableError(
        "block transpose: received block failed verification beyond repair");
  }
  ++stats.comm_errors_corrected;
  if (rep.errors >= 2) {
    stats.comm_multi_corrected += static_cast<std::size_t>(rep.errors);
  }
}

/// Receiver-side block threshold, from this rank's pre-transpose slice —
/// the same timing (and therefore the same value) as the reference path's
/// block_eta(). Only called when the transpose actually carries checksums,
/// so unprotected variants skip the energy sweep entirely.
double transpose_eta(const ShardedState& st, const cplx* slice) {
  if (st.opts.eta_override > 0.0) return st.opts.eta_override;
  const double sigma =
      sigma_of(checksum::robust_energy(slice, st.n_loc), st.n_loc);
  return roundoff::eta_from_coeff(st.plan->eta_block_coeff(), sigma);
}

/// One transposed block, pulled straight from the previous phase's shared
/// array: the copy IS the message. For a checksummed pull the sender dual
/// checksum is generated inside the copy pass, then the modeled link
/// corruption, the injected kCommBlock fault and the verification hit the
/// received data — the exact fault window of the reference receive path.
void pull_block(ShardedState& st, std::size_t r, std::size_t q,
                const cplx* src, cplx* dst, bool checksums, double eta,
                TransposeStats& tstats) {
  const std::size_t bsz = st.bsz;
  if (q == r) {  // resident block: no message
    std::memcpy(dst, src, bsz * sizeof(cplx));
    return;
  }
  const NetworkModel& net = st.opts.net;
  tstats.bytes_sent += (bsz + (checksums ? 2 : 0)) * sizeof(cplx);
  // The corruption clock ticks on this rank's receive count across the
  // whole transform (previous phases live in rank_comm, the current one in
  // tstats), matching the reference path's per-rank accumulated counter.
  const auto nth_message = [&] {
    return st.rank_comm[r].messages_received + tstats.messages_received;
  };
  if (!checksums) {
    std::memcpy(dst, src, bsz * sizeof(cplx));
    ++tstats.messages_received;
    if (net.corrupt_every != 0 && nth_message() % net.corrupt_every == 0) {
      corrupt_in_flight(dst);  // silent: nothing verifies this variant
    }
    return;
  }
  const int t_max = st.plan->max_errors();
  if (t_max > 1) {
    // Multi-error trailer: the "message" carries 2t syndrome moments,
    // generated over the copied block before the in-flight fault window —
    // the exact sender-side timing of the reference pack pass.
    std::memcpy(dst, src, bsz * sizeof(cplx));
    const auto stored = checksum::syndrome_sum(
        nullptr, dst, bsz, 1, 2 * t_max, st.plan->syndrome_nodes_block());
    ++tstats.messages_received;
    if (net.corrupt_every != 0 && nth_message() % net.corrupt_every == 0) {
      corrupt_in_flight(dst);
    }
    st.injectors[r].apply(fault::Phase::kCommBlock, q, dst, bsz);
    verify_block_multi(dst, bsz, stored, eta, t_max,
                       st.plan->syndrome_nodes_block(), tstats);
    return;
  }
  const DualSum stored = checksum::copy_dual_sum(dst, src, bsz);
  ++tstats.messages_received;
  if (net.corrupt_every != 0 && nth_message() % net.corrupt_every == 0) {
    corrupt_in_flight(dst);
  }
  st.injectors[r].apply(fault::Phase::kCommBlock, q, dst, bsz);
  verify_block(dst, bsz, stored, eta, st.opts.max_retries, tstats);
}

// Phase 1: transpose1 pull + CMCG + FFT1 (bsz p-point column FFTs).
void phase1(ShardedState& st, std::size_t r, TransposeStats& tstats,
            abft::Stats& stats) {
  const ParallelOptions& opts = st.opts;
  const ParallelPlan& plan = *st.plan;
  const std::size_t p = st.p, n_loc = st.n_loc, bsz = st.bsz;
  const bool protect = opts.protect;
  const bool checksums = protect && opts.memory_ft;
  const double eta =
      checksums ? transpose_eta(st, st.in.data() + r * n_loc) : 0.0;

  cplx* slice = st.buf1 + r * n_loc;
  std::vector<cplx> s1, s2;
  std::vector<double> e_col;
  if (protect) {
    s1.assign(bsz, cplx{0, 0});
    s2.assign(bsz, cplx{0, 0});
    e_col.assign(bsz, 0.0);
  }
  for (std::size_t q = 0; q < p; ++q) {
    const cplx* src = st.in.data() + q * n_loc + r * bsz;
    cplx* dst = slice + q * bsz;
    pull_block(st, r, q, src, dst, checksums, eta, tstats);
    if (protect) {
      // CMCG fused into reception, like the reference on_block hook (the
      // accumulation order is ascending q here — a round-off-level
      // difference in the checksum values, never in the data).
      const cplx w = plan.cp()[q];
      const double sd = static_cast<double>(q);
      for (std::size_t u = 0; u < bsz; ++u) {
        const cplx pterm = cmul(w, dst[u]);
        s1[u] += pterm;
        s2[u] += sd * pterm;
        e_col[u] += norm2(dst[u]);
      }
    }
  }

  // FFT1 over columns (stride bsz), gathered through an L1-resident tile of
  // rows so the p-strided column walk never leaves cache: copy tc columns'
  // worth of every row in, transform columns from the tile, copy back.
  fft::Fft fftp(p);
  const std::size_t tc =
      std::max<std::size_t>(4, std::size_t{1024} / (p == 0 ? 1 : p));
  std::vector<cplx> tile(p * tc), buf(p), res(p);
  for (std::size_t u0 = 0; u0 < bsz; u0 += tc) {
    const std::size_t cols = std::min(tc, bsz - u0);
    for (std::size_t t = 0; t < p; ++t) {
      std::memcpy(tile.data() + t * cols, slice + t * bsz + u0,
                  cols * sizeof(cplx));
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t u = u0 + c;
      for (std::size_t t = 0; t < p; ++t) buf[t] = tile[t * cols + c];
      if (!protect) {
        fftp.execute(buf.data(), res.data());
        for (std::size_t t = 0; t < p; ++t) tile[t * cols + c] = res[t];
        continue;
      }
      const double ceta =
          opts.eta_override > 0.0
              ? opts.eta_override
              : roundoff::eta_from_coeff(plan.eta_fft1_coeff(),
                                         sigma_of(e_col[u], p));
      stats.eta_m = std::max(stats.eta_m, ceta);
      const DualSum stored{s1[u], s2[u]};
      for (int attempt = 0;; ++attempt) {
        fftp.execute(buf.data(), res.data());
        st.injectors[r].apply(fault::Phase::kRankFft1Output, u, res.data(), p);
        const cplx rx = checksum::omega3_weighted_sum(res.data(), p);
        ++stats.verifications;
        if (std::abs(rx - s1[u]) <= ceta) break;
        if (attempt >= opts.max_retries) {
          throw UncorrectableError(
              "parallel ABFT: FFT1 column kept failing verification");
        }
        ++stats.sub_fft_retries;
        // Memory-vs-compute discrimination on the backed-up input.
        const auto rep = checksum::repair_single_error(
            stored, buf.data(), 1, plan.cp(), p, ceta, opts.max_retries);
        if (rep.mismatch) {
          ++stats.mem_errors_detected;
          if (!rep.corrected) {
            throw UncorrectableError(
                "parallel ABFT: FFT1 input memory error not localizable");
          }
          ++stats.mem_errors_corrected;
        } else {
          ++stats.comp_errors_detected;
        }
      }
      for (std::size_t t = 0; t < p; ++t) tile[t * cols + c] = res[t];
    }
    for (std::size_t t = 0; t < p; ++t) {
      std::memcpy(slice + t * bsz + u0, tile.data() + t * cols,
                  cols * sizeof(cplx));
    }
  }
}

// Phase 2: transpose2 pull + DMR twiddle + FFT2 (n_loc in-place k*r*k,
// through the plan-cached ProtectionPlan — zero rA generations per call).
void phase2(ShardedState& st, std::size_t r, TransposeStats& tstats,
            abft::Stats& stats) {
  const ParallelOptions& opts = st.opts;
  const ParallelPlan& plan = *st.plan;
  const std::size_t p = st.p, n = st.n, n_loc = st.n_loc, bsz = st.bsz;
  const bool protect = opts.protect;
  const bool checksums = protect && opts.memory_ft;
  const double eta =
      checksums ? transpose_eta(st, st.buf1 + r * n_loc) : 0.0;

  cplx* slice = st.buf2 + r * n_loc;
  cplx* tmp = thread_scratch(bsz);
  for (std::size_t q = 0; q < p; ++q) {
    const cplx* src = st.buf1 + q * n_loc + r * bsz;
    cplx* dst = slice + q * bsz;
    pull_block(st, r, q, src, dst, checksums, eta, tstats);
    const cplx scale =
        omega(n, static_cast<std::uint64_t>(q) * bsz % n *
                     static_cast<std::uint64_t>(r));
    if (protect) {
      std::memcpy(tmp, dst, bsz * sizeof(cplx));
      stats.dmr_mismatches += abft::dmr_twiddle_multiply(
          tmp, 1, dst, bsz, n, r, q, &st.injectors[r], scale);
    } else {
      plain_twiddle(dst, bsz, n, r, scale);
    }
  }

  if (protect) {
    abft::Options aopts = abft::Options::online_opt(opts.memory_ft);
    aopts.eta_override = opts.eta_override;
    aopts.max_retries = opts.max_retries;
    aopts.injector = &st.injectors[r];
    aopts.fused_checksums = opts.fused_checksums;
    abft::inplace_online_transform(slice, *plan.fft2_plan(), aopts, stats);
  } else {
    fft::Fft engine(n_loc);
    engine.execute_inplace(slice);
  }
}

// Phase 3: transpose3 pull + cache-blocked local adjust with per-block
// memory guards over the final output.
void phase3(ShardedState& st, std::size_t r, TransposeStats& tstats,
            abft::Stats& stats) {
  const ParallelOptions& opts = st.opts;
  const ParallelPlan& plan = *st.plan;
  const std::size_t p = st.p, n_loc = st.n_loc, bsz = st.bsz;
  const bool protect = opts.protect;
  const bool checksums = protect && opts.memory_ft;
  const double eta =
      checksums ? transpose_eta(st, st.buf2 + r * n_loc) : 0.0;

  cplx* loc = thread_scratch(n_loc);
  for (std::size_t q = 0; q < p; ++q) {
    const cplx* src = st.buf2 + q * n_loc + r * bsz;
    pull_block(st, r, q, src, loc + q * bsz, checksums, eta, tstats);
  }

  std::vector<DualSum> guards;
  if (checksums) {
    guards.resize(p);
    for (std::size_t q = 0; q < p; ++q) {
      guards[q] = checksum::dual_weighted_sum(nullptr, loc + q * bsz, bsz);
    }
  }

  // bsz x p scatter into natural order, u-chunked so the p-strided write
  // window (p * tu * 16 bytes) stays L1-resident instead of touching p
  // cache lines per element across the whole slice.
  cplx* out = st.out + r * n_loc;
  const std::size_t tu =
      std::max<std::size_t>(8, std::size_t{1024} / (p == 0 ? 1 : p));
  for (std::size_t u0 = 0; u0 < bsz; u0 += tu) {
    const std::size_t u1 = std::min(u0 + tu, bsz);
    for (std::size_t q = 0; q < p; ++q) {
      for (std::size_t u = u0; u < u1; ++u) {
        out[u * p + q] = loc[q * bsz + u];
      }
    }
  }
  st.injectors[r].apply(fault::Phase::kFinalOutput, 0, out, n_loc);

  if (checksums) {
    const double aeta =
        opts.eta_override > 0.0
            ? opts.eta_override
            : roundoff::eta_from_coeff(
                  plan.eta_block_coeff(),
                  sigma_of(checksum::robust_energy(out, n_loc), n_loc));
    for (std::size_t q = 0; q < p; ++q) {
      const auto rep = checksum::repair_single_error(
          guards[q], out + q, p, nullptr, bsz, aeta, opts.max_retries);
      ++stats.verifications;
      if (rep.mismatch) {
        ++stats.mem_errors_detected;
        if (!rep.corrected) {
          throw UncorrectableError(
              "parallel ABFT: final output memory error not localizable");
        }
        ++stats.mem_errors_corrected;
      }
    }
  }
}

void run_phase(ShardedState& st, int phase, std::size_t r) {
  const NetworkModel& net = st.opts.net;
  // Failure check before any work or accounting: a failed attempt leaves no
  // partial stats behind. exchange() makes the loss one-shot, so a restart
  // (modeling failover to a spare node) succeeds.
  if (r == net.fail_rank && net.fail_phase == phase + 1 &&
      !st.fail_fired.exchange(true)) {
    throw RankFailedError(
        "parallel fft: rank failed entering transpose phase " +
        std::to_string(phase + 1));
  }

  ThreadCpuTimer cpu;
  TransposeStats tstats;
  abft::Stats astats;
  switch (phase) {
    case 0: phase1(st, r, tstats, astats); break;
    case 1: phase2(st, r, tstats, astats); break;
    default: phase3(st, r, tstats, astats); break;
  }
  const double t = cpu.elapsed();

  st.rank_comm[r] += tstats;
  accumulate(st.rank_stats[r], astats);
  st.phase_cpu[phase][r] = t;
  st.rank_cpu[r] += t;

  // Modeled communication of this rank's p-1 exchanges (same alpha-beta
  // model as the reference path), plus the straggler penalty.
  const bool checksums = st.opts.protect && st.opts.memory_ft;
  const std::size_t payload = st.bsz + (checksums ? 2 : 0);
  double comm =
      static_cast<double>(st.p - 1) * net.cost(payload * sizeof(cplx));
  if (r == net.stall_rank) {
    comm += static_cast<double>(st.p - 1) * net.stall_seconds;
  }
  st.phase_comm[phase][r] = comm;
}

void fulfill(const std::shared_ptr<ShardedState>& st, std::exception_ptr err) {
  std::lock_guard<std::mutex> lock(st->mu);
  st->error = std::move(err);
  st->ready = true;
  st->cv.notify_all();
}

void reset_accumulators(ShardedState& st) {
  std::fill(st.rank_stats.begin(), st.rank_stats.end(), abft::Stats{});
  std::fill(st.rank_comm.begin(), st.rank_comm.end(), TransposeStats{});
  std::fill(st.rank_cpu.begin(), st.rank_cpu.end(), 0.0);
  for (int ph = 0; ph < 3; ++ph) {
    std::fill(st.phase_cpu[ph].begin(), st.phase_cpu[ph].end(), 0.0);
    std::fill(st.phase_comm[ph].begin(), st.phase_comm[ph].end(), 0.0);
  }
  st.phase_wall.fill(0.0);
}

void finalize(const std::shared_ptr<ShardedState>& st) {
  ParallelReport rep;
  rep.sharded = true;
  rep.rank_restarts = static_cast<std::size_t>(st->restarts_done);
  for (std::size_t r = 0; r < st->p; ++r) {
    accumulate(rep.stats, st->rank_stats[r]);
    rep.comm_stats += st->rank_comm[r];
    rep.bytes_per_rank =
        std::max(rep.bytes_per_rank, st->rank_comm[r].bytes_sent);
    double comm_total = 0.0;
    for (int ph = 0; ph < 3; ++ph) comm_total += st->phase_comm[ph][r];
    rep.max_compute = std::max(rep.max_compute, st->rank_cpu[r]);
    rep.max_comm = std::max(rep.max_comm, comm_total);
    rep.makespan = std::max(rep.makespan, st->rank_cpu[r] + comm_total);
  }
  for (int ph = 0; ph < 3; ++ph) {
    rep.phases[ph].wall_seconds = st->phase_wall[ph];
    for (std::size_t r = 0; r < st->p; ++r) {
      rep.phases[ph].max_cpu_seconds =
          std::max(rep.phases[ph].max_cpu_seconds, st->phase_cpu[ph][r]);
      rep.phases[ph].modeled_comm =
          std::max(rep.phases[ph].modeled_comm, st->phase_comm[ph][r]);
    }
  }
  st->report = rep;
  fulfill(st, nullptr);
}

void start_phase(const std::shared_ptr<ShardedState>& st, int phase);

// Runs on the worker that retires a phase; must not throw (BatchFuture
// contract), so everything is fenced and failures park an exception_ptr.
void on_phase_done(const std::shared_ptr<ShardedState>& st, int phase,
                   engine::BatchReport& rep) {
  try {
    st->phase_wall[phase] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      st->phase_start)
            .count();
    if (rep.failed_lanes != 0) {
      std::exception_ptr first;
      bool all_rank_failures = true;
      for (const auto& ep : rep.exceptions) {
        if (!ep) continue;
        if (!first) first = ep;
        try {
          std::rethrow_exception(ep);
        } catch (const RankFailedError&) {
        } catch (...) {
          all_rank_failures = false;
        }
      }
      if (all_rank_failures &&
          st->restarts_done < st->opts.max_rank_restarts) {
        // Modeled node loss with failover budget left: restart the whole
        // transform from the (still intact, still fault-injected) input.
        ++st->restarts_done;
        reset_accumulators(*st);
        start_phase(st, 0);
        return;
      }
      fulfill(st, first);
      return;
    }
    if (phase < 2) {
      start_phase(st, phase + 1);
      return;
    }
    finalize(st);
  } catch (...) {
    fulfill(st, std::current_exception());
  }
}

void start_phase(const std::shared_ptr<ShardedState>& st, int phase) {
  st->phase_start = std::chrono::steady_clock::now();
  // Rank phases run at high priority, non-cancellable and deadline-free:
  // a phase fan-out is continuation work for a transform that already
  // holds scratch and partial state, so it must be neither starved behind
  // newly arriving batches nor shed/expired mid-pipeline (a rank restart
  // resubmits through here and has to win queue position to make the
  // failover budget meaningful). Phases submitted from worker callbacks
  // additionally bypass the admission cap (see BatchEngine's pool-thread
  // rule), so a saturated queue cannot deadlock the chain.
  engine::SubmitOptions rank_submit;
  rank_submit.priority = engine::Priority::kHigh;
  rank_submit.deadline = std::chrono::nanoseconds{-1};
  rank_submit.cancellable = false;
  st->eng
      ->submit_tasks(st->p,
                     [st, phase](std::size_t r, abft::Stats&) {
                       run_phase(*st, phase, r);
                     },
                     rank_submit)
      .then([st, phase](engine::BatchReport& rep) {
        on_phase_done(st, phase, rep);
      });
}

}  // namespace

ParallelFuture submit_parallel(
    std::size_t p, std::vector<cplx> input, const ParallelOptions& opts,
    const std::function<void(std::size_t, fault::Injector&)>& arm,
    engine::BatchEngine* engine) {
  const std::size_t n = input.size();
  detail::require(p >= 2, "parallel_fft: need at least 2 ranks");
  detail::require(p % 3 != 0,
                  "parallel_fft: rank count divisible by 3 degenerates the "
                  "checksum encoding");
  detail::require(n % (p * p) == 0,
                  "parallel_fft: N must be divisible by p^2");

  auto st = std::make_shared<ShardedState>();
  st->p = p;
  st->n = n;
  st->n_loc = n / p;
  st->bsz = n / p / p;
  st->opts = opts;
  st->plan = ParallelPlan::get(p, n, opts.protect,
                               opts.max_correctable_errors);  // throws on bad n_loc
  st->eng = engine != nullptr ? engine : &engine::BatchEngine::shared();
  st->in = std::move(input);
  st->out_is_input = opts.net.fail_rank == NetworkModel::kNoRank ||
                     opts.max_rank_restarts == 0;
  st->store_doubles = 2 * n;
  st->s2_store = scratch_take(st->store_doubles);
  st->buf2 = reinterpret_cast<cplx*>(st->s2_store.get());
  if (st->out_is_input) {
    st->s1_store = scratch_take(st->store_doubles);
    st->buf1 = reinterpret_cast<cplx*>(st->s1_store.get());
    st->out = st->in.data();
  } else {
    st->a.resize(n);  // restart mode: keep `in` pristine for the re-run
    st->buf1 = st->a.data();
    st->out = st->a.data();
  }
  st->injectors.resize(p);
  if (arm) {
    for (std::size_t r = 0; r < p; ++r) arm(r, st->injectors[r]);
  }
  // Input faults land before anything is enqueued: phase-1 tasks of every
  // rank read every input slice, so the injection cannot ride inside them.
  for (std::size_t r = 0; r < p; ++r) {
    st->injectors[r].apply(fault::Phase::kRankLocalInput, 0,
                           st->in.data() + r * st->n_loc, st->n_loc);
  }
  st->rank_stats.resize(p);
  st->rank_comm.resize(p);
  st->rank_cpu.assign(p, 0.0);
  for (int ph = 0; ph < 3; ++ph) {
    st->phase_cpu[ph].assign(p, 0.0);
    st->phase_comm[ph].assign(p, 0.0);
  }
  start_phase(st, 0);
  return ParallelFuture(std::move(st));
}

std::vector<cplx> parallel_fft_sharded(
    std::size_t p, const std::vector<cplx>& input, const ParallelOptions& opts,
    ParallelReport* report,
    const std::function<void(std::size_t, fault::Injector&)>& arm) {
  ParallelFuture fut = submit_parallel(p, input, opts, arm, nullptr);
  return fut.get(report);
}

ParallelFuture::ParallelFuture(std::shared_ptr<detail::ShardedState> state)
    : state_(std::move(state)) {}

bool ParallelFuture::ready() const {
  detail::require(state_ != nullptr, "ParallelFuture: invalid future");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

void ParallelFuture::wait() const {
  detail::require(state_ != nullptr, "ParallelFuture: invalid future");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->ready; });
}

std::vector<cplx> ParallelFuture::get(ParallelReport* report) {
  wait();
  auto st = std::move(state_);  // one-shot
  if (st->error) std::rethrow_exception(st->error);
  if (report != nullptr) *report = st->report;
  return std::move(st->out_is_input ? st->in : st->a);
}

}  // namespace ftfft::parallel
