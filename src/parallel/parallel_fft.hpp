// Six-step distributed FFT with the paper's parallel online ABFT scheme.
//
// Plan (paper section 5): with N points on p ranks (n_loc = N/p per rank,
// bsz = N/p^2 per block),
//
//   transpose1 -> FFT1 (bsz p-point column FFTs per rank, each ABFT-protected
//   with a gathered-buffer backup) -> transpose2 -> TM (DMR, fused into
//   reception) -> FFT2 (one protected in-place n_loc-point FFT per rank,
//   k*r*k plan from abft/inplace.hpp) -> transpose3 -> local adjustment.
//
// Every transposed block carries dual checksums; with overlap enabled the
// checksum generation/verification and the twiddle ride under the
// communication (section 6.1 / Algorithm 3), which is how opt-FT-FFTW
// approaches the unprotected baseline in Fig. 8.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"
#include "common/env.hpp"
#include "parallel/comm.hpp"
#include "parallel/transpose.hpp"

namespace ftfft::engine {
class BatchEngine;
}  // namespace ftfft::engine

namespace ftfft::parallel {

/// Which of the paper's four Fig. 8 variants to run.
struct ParallelOptions {
  bool protect = true;    ///< ABFT + DMR + checksummed messages
  bool overlap = true;    ///< Algorithm 3 pipelined transposes
  bool memory_ft = true;  ///< message/memory checksums (protect only)
  double eta_override = 0.0;
  int max_retries = 4;
  NetworkModel net{};
  std::uint64_t seed = 0x5EED;

  // Appended after the positionally-initialized preset fields, so the four
  // Fig. 8 variants inherit these defaults.

  /// Fuse the FFT2 checksum dot products into its butterfly passes
  /// (abft::Options::fused_checksums, PR 6). Off by default — with it off
  /// the sharded path is bit-identical to the reference path; detection /
  /// correction outcomes are identical either way.
  bool fused_checksums = env_flag("FTFFT_FUSED_CHECKSUMS", false);

  /// Sharded path (submit_parallel) only: whole-transform restarts allowed
  /// when a modeled rank failure (NetworkModel::fail_rank) kills a phase —
  /// the node-loss recovery the thread-per-rank reference path cannot
  /// offer (it propagates RankFailedError).
  int max_rank_restarts = 0;

  /// Maximum simultaneously corrupted elements per transposed block the
  /// message checksums can correct (PR 9; abft::Options has the same knob
  /// for the sequential schemes). 1 = today's dual-checksum payload
  /// bit-for-bit; t > 1 ships 2t syndrome moments per block instead and
  /// decodes bursts through checksum::repair_errors. Clamped to
  /// [1, checksum::kMaxCorrectableErrors] at plan resolution. Default from
  /// FTFFT_MAX_ERRORS.
  int max_correctable_errors =
      static_cast<int>(env_long("FTFFT_MAX_ERRORS", 1));

  static ParallelOptions fftw() { return {false, false, false, 0, 4, {}, 0x5EED}; }
  static ParallelOptions ft_fftw() { return {true, false, true, 0, 4, {}, 0x5EED}; }
  static ParallelOptions opt_fftw() { return {false, true, false, 0, 4, {}, 0x5EED}; }
  static ParallelOptions opt_ft_fftw() { return {true, true, true, 0, 4, {}, 0x5EED}; }
};

/// Communication/compute split of one sharded six-step phase (transpose1 +
/// FFT1, transpose2 + twiddle + FFT2, transpose3 + adjust).
struct PhaseBreakdown {
  double wall_seconds = 0.0;     ///< host wall-clock time of the phase
  double max_cpu_seconds = 0.0;  ///< max per-rank thread-CPU seconds
  double modeled_comm = 0.0;     ///< max per-rank alpha-beta modeled comm
};

/// Aggregated outcome of one distributed transform.
struct ParallelReport {
  double makespan = 0.0;      ///< simulated seconds, max over ranks
  double max_compute = 0.0;   ///< max per-rank compute seconds
  double max_comm = 0.0;      ///< max per-rank modeled comm seconds
  std::size_t bytes_per_rank = 0;
  abft::Stats stats;          ///< summed over ranks
  TransposeStats comm_stats;  ///< summed over ranks

  // ---- engine-sharded path only (submit_parallel) ----
  bool sharded = false;           ///< produced by the sharded executor
  std::size_t rank_restarts = 0;  ///< whole-transform restarts absorbed
  /// Per-phase comm/compute split; all zero on the reference path, whose
  /// phases interleave per rank and cannot be separated after the fact.
  std::array<PhaseBreakdown, 3> phases{};
};

/// Runs the distributed forward DFT of `input` (size N = p * n_loc,
/// N divisible by p^2) on `p` simulated ranks and returns the transform in
/// natural order. `arm` (optional) schedules faults on each rank's injector
/// before the run. Requirements: p not divisible by 3 and, when protect is
/// set, n_loc acceptable to abft::inplace_shape (any power of two >= 4 is).
std::vector<cplx> parallel_fft(
    std::size_t p, const std::vector<cplx>& input, const ParallelOptions& opts,
    ParallelReport* report = nullptr,
    const std::function<void(std::size_t rank, fault::Injector&)>& arm = {});

// ---------------------------------------------------------------------------
// Engine-sharded execution (parallel/sharded_fft.cpp).
//
// The thread-per-rank path above spawns p threads, runs mailbox exchanges
// between them and copies every block through per-message payload buffers —
// faithful to MPI semantics, but for one huge transform on one host the
// synchronization and the extra copies are pure overhead. submit_parallel
// executes the same six-step algorithm as p *lanes on a BatchEngine*: each
// of the three communication phases is one submit_tasks fan-out whose rank
// tasks pull their blocks directly from the previous phase's shared output
// array (the "message" copy IS the transpose copy, with the dual message
// checksum fused into it via checksum::copy_dual_sum), and phases chain
// through completion callbacks, so one submission pipelines across the
// worker pool with no rank threads, no mailboxes and no barrier. All
// arithmetic that touches data is shared with or identical to the
// reference path, so with fused_checksums off the output is bit-identical
// to parallel_fft; protection semantics (per-block verification and repair,
// CMCG, DMR twiddle, k*r*k FFT2, final adjust guards) are unchanged.

namespace detail {
struct ShardedState;  // completion state shared by executor and future
}  // namespace detail

class ParallelFuture;

/// Queues the distributed forward DFT of `input` (size N = p * n_loc, same
/// geometry rules as parallel_fft) as three chained rank fan-outs on
/// `engine` (nullptr = the process-wide engine::BatchEngine::shared()) and
/// returns immediately. `input` is taken by value and owned by the
/// submission. `arm` schedules faults per simulated rank before anything
/// runs. Misuse (bad geometry) throws std::invalid_argument synchronously;
/// execution failures surface from ParallelFuture::get.
ParallelFuture submit_parallel(
    std::size_t p, std::vector<cplx> input, const ParallelOptions& opts,
    const std::function<void(std::size_t rank, fault::Injector&)>& arm = {},
    engine::BatchEngine* engine = nullptr);

/// Blocking convenience: submit_parallel(...).get(report).
std::vector<cplx> parallel_fft_sharded(
    std::size_t p, const std::vector<cplx>& input, const ParallelOptions& opts,
    ParallelReport* report = nullptr,
    const std::function<void(std::size_t rank, fault::Injector&)>& arm = {});

/// Completion handle for a sharded submission: wait for the transform,
/// then collect the spectrum and the ParallelReport. Movable and copyable
/// (all copies observe the same completion); get() hands the output out
/// once and invalidates the handle, like std::future.
class ParallelFuture {
 public:
  ParallelFuture() = default;  ///< invalid until assigned from submit_parallel

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the transform (or its failure) is available. Throws
  /// std::invalid_argument on an invalid future.
  [[nodiscard]] bool ready() const;

  /// Blocks until the transform completes.
  void wait() const;

  /// Blocks until completion, then moves the spectrum out (and copies the
  /// report, when asked). Rethrows the first rank failure — preserving the
  /// library's error taxonomy (UncorrectableError, RankFailedError) — and
  /// one-shot: the future becomes invalid afterwards.
  std::vector<cplx> get(ParallelReport* report = nullptr);

 private:
  friend ParallelFuture submit_parallel(
      std::size_t p, std::vector<cplx> input, const ParallelOptions& opts,
      const std::function<void(std::size_t rank, fault::Injector&)>& arm,
      engine::BatchEngine* engine);
  explicit ParallelFuture(std::shared_ptr<detail::ShardedState> state);

  std::shared_ptr<detail::ShardedState> state_;
};

}  // namespace ftfft::parallel
