// Six-step distributed FFT with the paper's parallel online ABFT scheme.
//
// Plan (paper section 5): with N points on p ranks (n_loc = N/p per rank,
// bsz = N/p^2 per block),
//
//   transpose1 -> FFT1 (bsz p-point column FFTs per rank, each ABFT-protected
//   with a gathered-buffer backup) -> transpose2 -> TM (DMR, fused into
//   reception) -> FFT2 (one protected in-place n_loc-point FFT per rank,
//   k*r*k plan from abft/inplace.hpp) -> transpose3 -> local adjustment.
//
// Every transposed block carries dual checksums; with overlap enabled the
// checksum generation/verification and the twiddle ride under the
// communication (section 6.1 / Algorithm 3), which is how opt-FT-FFTW
// approaches the unprotected baseline in Fig. 8.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"
#include "parallel/comm.hpp"
#include "parallel/transpose.hpp"

namespace ftfft::parallel {

/// Which of the paper's four Fig. 8 variants to run.
struct ParallelOptions {
  bool protect = true;    ///< ABFT + DMR + checksummed messages
  bool overlap = true;    ///< Algorithm 3 pipelined transposes
  bool memory_ft = true;  ///< message/memory checksums (protect only)
  double eta_override = 0.0;
  int max_retries = 4;
  NetworkModel net{};
  std::uint64_t seed = 0x5EED;

  static ParallelOptions fftw() { return {false, false, false, 0, 4, {}, 0x5EED}; }
  static ParallelOptions ft_fftw() { return {true, false, true, 0, 4, {}, 0x5EED}; }
  static ParallelOptions opt_fftw() { return {false, true, false, 0, 4, {}, 0x5EED}; }
  static ParallelOptions opt_ft_fftw() { return {true, true, true, 0, 4, {}, 0x5EED}; }
};

/// Aggregated outcome of one distributed transform.
struct ParallelReport {
  double makespan = 0.0;      ///< simulated seconds, max over ranks
  double max_compute = 0.0;   ///< max per-rank compute seconds
  double max_comm = 0.0;      ///< max per-rank modeled comm seconds
  std::size_t bytes_per_rank = 0;
  abft::Stats stats;          ///< summed over ranks
  TransposeStats comm_stats;  ///< summed over ranks
};

/// Runs the distributed forward DFT of `input` (size N = p * n_loc,
/// N divisible by p^2) on `p` simulated ranks and returns the transform in
/// natural order. `arm` (optional) schedules faults on each rank's injector
/// before the run. Requirements: p not divisible by 3 and, when protect is
/// set, n_loc acceptable to abft::inplace_shape (any power of two >= 4 is).
std::vector<cplx> parallel_fft(
    std::size_t p, const std::vector<cplx>& input, const ParallelOptions& opts,
    ParallelReport* report = nullptr,
    const std::function<void(std::size_t rank, fault::Injector&)>& arm = {});

}  // namespace ftfft::parallel
