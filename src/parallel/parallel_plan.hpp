// ParallelPlan: the immutable shared state of one (p, N) six-step
// distributed transform, resolved once and cached process-wide.
//
// Before this existed every simulated rank rebuilt the setup on every call:
// the p-point FFT1 input-checksum vector (rA) ran its DMR generation p
// times per transform, the FFT2 k*r*k protection state was re-derived per
// rank, and the mixed-radix sub-plans were resolved through the caches p
// times from p concurrent threads. A ParallelPlan hoists all of it: the
// checksum vector and the FFT2 ProtectionPlan are shared cache references,
// the sub-FFT plan trees (p, k, r / n_loc) are pre-touched at build, and
// the sigma-independent threshold coefficients are precomputed so the hot
// path only pays roundoff::eta_from_coeff. Both parallel executors — the
// thread-per-rank reference path (parallel_fft) and the engine-sharded path
// (submit_parallel) — resolve the same plan, once per call / submission.
//
// Plans live behind the shared LRU-bounded PlanRegistry and show up in
// ftfft::plan_cache_stats() as "parallel-plan".
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "abft/protection_plan.hpp"
#include "common/complex.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ftfft::parallel {

class ParallelPlan {
 public:
  /// Direct (uncached) build; throws std::invalid_argument for bad geometry
  /// (p < 2, 3 | p, p^2 does not divide n) and propagates
  /// abft::inplace_shape's rejection of unsupported n_loc when protected.
  /// Prefer get(). max_errors (clamped to
  /// [1, checksum::kMaxCorrectableErrors]) > 1 additionally caches the
  /// syndrome node table for the bsz-element transpose blocks and resolves
  /// the FFT2 protection plan with the same multi-error budget.
  ParallelPlan(std::size_t p, std::size_t n, bool protect, int max_errors = 1);

  /// Cached resolution keyed on (p, n, protect, clamped max_errors).
  /// Thread-safe.
  static std::shared_ptr<const ParallelPlan> get(std::size_t p, std::size_t n,
                                                 bool protect,
                                                 int max_errors = 1);

  [[nodiscard]] std::size_t p() const noexcept { return p_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t n_loc() const noexcept { return n_loc_; }
  [[nodiscard]] std::size_t bsz() const noexcept { return bsz_; }
  [[nodiscard]] bool protect() const noexcept { return protect_; }

  /// p-point FFT1 input checksum vector (rA, DMR-generated, shared with the
  /// "checksum-weights" cache). nullptr when unprotected.
  [[nodiscard]] const cplx* cp() const noexcept {
    return cp_ ? cp_->data() : nullptr;
  }

  /// Cached k*r*k ProtectionPlan for the n_loc-point FFT2 — the same cache
  /// entry abft::inplace_online_transform would resolve, handed to its
  /// plan-based overload so FFT2 is rA-generation-free per call. nullptr
  /// when unprotected.
  [[nodiscard]] const abft::ProtectionPlan* fft2_plan() const noexcept {
    return fft2_.get();
  }

  /// Sigma-independent threshold coefficients (see roundoff::eta_from_coeff):
  /// FFT1 per-column computational threshold over p points, and the
  /// memory-checksum threshold for one bsz-element transposed block.
  [[nodiscard]] double eta_fft1_coeff() const noexcept {
    return eta_fft1_coeff_;
  }
  [[nodiscard]] double eta_block_coeff() const noexcept {
    return eta_block_coeff_;
  }

  /// Clamped multi-error budget the plan was resolved with (1 = single).
  [[nodiscard]] int max_errors() const noexcept { return max_errors_; }
  /// Duplicated normalized node table for one bsz-element transpose block
  /// (checksum::shared_syndrome_nodes(bsz)); nullptr unless protected with
  /// max_errors() > 1.
  [[nodiscard]] const double* syndrome_nodes_block() const noexcept {
    return sn_block_ ? sn_block_->data() : nullptr;
  }

  /// Appends the rA vector, the block syndrome node table and
  /// (transitively) the FFT2 ProtectionPlan's cached payloads to `out`
  /// (plan-state sealing; see common/seal.hpp).
  void collect_state(StateSpans& out) const {
    if (cp_) out.add_vec(*cp_);
    if (sn_block_) out.add_vec(*sn_block_);
    if (fft2_) fft2_->collect_state(out);
  }

  // ---- cache introspection (tests, benches, monitoring) ----

  /// Plans constructed process-wide (cache misses + direct builds).
  [[nodiscard]] static std::uint64_t build_count() noexcept;
  [[nodiscard]] static std::size_t cache_size();
  static void drop_cache();

 private:
  std::size_t p_, n_, n_loc_, bsz_;
  bool protect_;
  int max_errors_ = 1;
  std::shared_ptr<const std::vector<cplx>> cp_;
  std::shared_ptr<const std::vector<double>> sn_block_;
  std::shared_ptr<const abft::ProtectionPlan> fft2_;
  double eta_fft1_coeff_ = 0.0;
  double eta_block_coeff_ = 0.0;
};

/// Pre-resolves everything a (p, n) distributed transform of the given
/// protection level touches — the ParallelPlan itself, the rA vector, the
/// FFT2 ProtectionPlan and the p / k / r / n_loc sub-FFT plan trees — so
/// the first submit_parallel / parallel_fft call afterwards performs zero
/// rA generations and no plan builds. Returns the plan handle (keeping it
/// alive pins the entry against LRU eviction).
/// max_correctable_errors: 0 = the FTFFT_MAX_ERRORS process default, i.e.
/// the budget a default-constructed ParallelOptions submit resolves.
std::shared_ptr<const ParallelPlan> warm_plans(std::size_t p, std::size_t n,
                                               bool protect = true,
                                               int max_correctable_errors = 0);

namespace detail {

using ftfft::detail::require;

// The shared six-step arithmetic helpers. Exactly one definition serves the
// thread-per-rank reference path and the engine-sharded path, so the two
// stay bit-identical by construction, not by parallel maintenance.

/// Unprotected twiddle: block[u] *= scale * omega_n^(u*step), recurrence
/// with periodic resync (single pass, no redundancy).
inline void plain_twiddle(cplx* block, std::size_t len, std::size_t n,
                          std::size_t step, cplx scale) {
  const cplx base = omega(n, step);
  cplx w = scale;
  for (std::size_t u = 0; u < len; ++u) {
    if (u % 64 == 0) {
      w = cmul(scale, omega(n, static_cast<std::uint64_t>(u) * step));
    }
    block[u] = cmul(block[u], w);
    w = cmul(w, base);
  }
}

/// RMS element scale from a total energy over n complex values.
inline double sigma_of(double energy, std::size_t n) {
  return std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
}

}  // namespace detail

}  // namespace ftfft::parallel
