// ParallelPlan: the immutable shared state of one (p, N) six-step
// distributed transform, resolved once and cached process-wide.
//
// Before this existed every simulated rank rebuilt the setup on every call:
// the p-point FFT1 input-checksum vector (rA) ran its DMR generation p
// times per transform, the FFT2 k*r*k protection state was re-derived per
// rank, and the mixed-radix sub-plans were resolved through the caches p
// times from p concurrent threads. A ParallelPlan hoists all of it: the
// checksum vector and the FFT2 ProtectionPlan are shared cache references,
// the sub-FFT plan trees (p, k, r / n_loc) are pre-touched at build, and
// the sigma-independent threshold coefficients are precomputed so the hot
// path only pays roundoff::eta_from_coeff. Both parallel executors — the
// thread-per-rank reference path (parallel_fft) and the engine-sharded path
// (submit_parallel) — resolve the same plan, once per call / submission.
//
// Plans live behind the shared LRU-bounded PlanRegistry and show up in
// ftfft::plan_cache_stats() as "parallel-plan".
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "abft/protection_plan.hpp"
#include "common/complex.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ftfft::parallel {

class ParallelPlan {
 public:
  /// Direct (uncached) build; throws std::invalid_argument for bad geometry
  /// (p < 2, 3 | p, p^2 does not divide n) and propagates
  /// abft::inplace_shape's rejection of unsupported n_loc when protected.
  /// Prefer get().
  ParallelPlan(std::size_t p, std::size_t n, bool protect);

  /// Cached resolution keyed on (p, n, protect). Thread-safe.
  static std::shared_ptr<const ParallelPlan> get(std::size_t p, std::size_t n,
                                                 bool protect);

  [[nodiscard]] std::size_t p() const noexcept { return p_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t n_loc() const noexcept { return n_loc_; }
  [[nodiscard]] std::size_t bsz() const noexcept { return bsz_; }
  [[nodiscard]] bool protect() const noexcept { return protect_; }

  /// p-point FFT1 input checksum vector (rA, DMR-generated, shared with the
  /// "checksum-weights" cache). nullptr when unprotected.
  [[nodiscard]] const cplx* cp() const noexcept {
    return cp_ ? cp_->data() : nullptr;
  }

  /// Cached k*r*k ProtectionPlan for the n_loc-point FFT2 — the same cache
  /// entry abft::inplace_online_transform would resolve, handed to its
  /// plan-based overload so FFT2 is rA-generation-free per call. nullptr
  /// when unprotected.
  [[nodiscard]] const abft::ProtectionPlan* fft2_plan() const noexcept {
    return fft2_.get();
  }

  /// Sigma-independent threshold coefficients (see roundoff::eta_from_coeff):
  /// FFT1 per-column computational threshold over p points, and the
  /// memory-checksum threshold for one bsz-element transposed block.
  [[nodiscard]] double eta_fft1_coeff() const noexcept {
    return eta_fft1_coeff_;
  }
  [[nodiscard]] double eta_block_coeff() const noexcept {
    return eta_block_coeff_;
  }

  // ---- cache introspection (tests, benches, monitoring) ----

  /// Plans constructed process-wide (cache misses + direct builds).
  [[nodiscard]] static std::uint64_t build_count() noexcept;
  [[nodiscard]] static std::size_t cache_size();
  static void drop_cache();

 private:
  std::size_t p_, n_, n_loc_, bsz_;
  bool protect_;
  std::shared_ptr<const std::vector<cplx>> cp_;
  std::shared_ptr<const abft::ProtectionPlan> fft2_;
  double eta_fft1_coeff_ = 0.0;
  double eta_block_coeff_ = 0.0;
};

/// Pre-resolves everything a (p, n) distributed transform of the given
/// protection level touches — the ParallelPlan itself, the rA vector, the
/// FFT2 ProtectionPlan and the p / k / r / n_loc sub-FFT plan trees — so
/// the first submit_parallel / parallel_fft call afterwards performs zero
/// rA generations and no plan builds. Returns the plan handle (keeping it
/// alive pins the entry against LRU eviction).
std::shared_ptr<const ParallelPlan> warm_plans(std::size_t p, std::size_t n,
                                               bool protect = true);

namespace detail {

using ftfft::detail::require;

// The shared six-step arithmetic helpers. Exactly one definition serves the
// thread-per-rank reference path and the engine-sharded path, so the two
// stay bit-identical by construction, not by parallel maintenance.

/// Unprotected twiddle: block[u] *= scale * omega_n^(u*step), recurrence
/// with periodic resync (single pass, no redundancy).
inline void plain_twiddle(cplx* block, std::size_t len, std::size_t n,
                          std::size_t step, cplx scale) {
  const cplx base = omega(n, step);
  cplx w = scale;
  for (std::size_t u = 0; u < len; ++u) {
    if (u % 64 == 0) {
      w = cmul(scale, omega(n, static_cast<std::uint64_t>(u) * step));
    }
    block[u] = cmul(block[u], w);
    w = cmul(w, base);
  }
}

/// RMS element scale from a total energy over n complex values.
inline double sigma_of(double energy, std::size_t n) {
  return std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
}

}  // namespace detail

}  // namespace ftfft::parallel
