// Thread-backed message-passing runtime: the library's stand-in for MPI.
//
// SimComm launches one thread per simulated rank, gives each a RankCtx with
// tagged point-to-point messaging (mailbox queues with condition variables),
// a max-synchronizing barrier, a deterministic per-rank RNG stream, a
// per-rank fault injector and a RankClock. Message envelopes carry the
// sender's simulated send time so receivers can order events in simulated
// time, not host time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/complex.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "parallel/network_model.hpp"

namespace ftfft::parallel {

/// One in-flight message.
struct Message {
  std::vector<cplx> payload;
  double send_time = 0.0;  ///< sender's simulated clock at send
};

class SimComm;

/// Per-rank handle passed to the rank body. Not thread-safe across ranks;
/// each rank uses only its own.
class RankCtx {
 public:
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t nranks() const;

  /// Enqueues a message to `to`. Returns immediately (nonblocking post, like
  /// MPI_Isend whose buffer is copied). Does not advance the clock — the
  /// caller accounts communication per its schedule (blocking vs overlap).
  void send(std::size_t to, int tag, std::vector<cplx> payload);

  /// Blocks (host-wise) until a message with `tag` from `from` arrives.
  /// Does not advance the clock.
  [[nodiscard]] Message recv(std::size_t from, int tag);

  /// Barrier across all ranks that also synchronizes simulated clocks to
  /// the global maximum (global communication implies waiting for the
  /// slowest rank).
  void barrier();

  [[nodiscard]] RankClock& clock() { return clock_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] fault::Injector& injector() { return *injector_; }
  [[nodiscard]] const NetworkModel& net() const;

 private:
  friend class SimComm;
  RankCtx(SimComm* comm, std::size_t rank, std::uint64_t seed)
      : comm_(comm), rank_(rank), rng_(seed) {}

  SimComm* comm_;
  std::size_t rank_;
  RankClock clock_;
  Rng rng_;
  fault::Injector* injector_ = nullptr;
};

/// Statistics of one finished run, per rank.
struct RankReport {
  double end_time = 0.0;       ///< simulated clock at rank exit
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
};

class SimComm {
 public:
  /// `seed` feeds the per-rank RNG streams (rank r gets fork(r)).
  explicit SimComm(std::size_t nranks, NetworkModel net = {},
                   std::uint64_t seed = 0x5EED);

  /// Injector for rank r; arm faults before run(). Valid for the lifetime
  /// of the SimComm.
  [[nodiscard]] fault::Injector& injector(std::size_t rank) {
    return *injectors_[rank];
  }

  /// Runs `body` on every rank (one host thread each) and joins. Exceptions
  /// thrown by rank bodies are captured; the first one is rethrown after
  /// all threads join.
  void run(const std::function<void(RankCtx&)>& body);

  /// Max simulated end time over ranks (valid after run()).
  [[nodiscard]] double makespan() const;

  [[nodiscard]] const std::vector<RankReport>& reports() const {
    return reports_;
  }
  [[nodiscard]] std::size_t nranks() const { return nranks_; }
  [[nodiscard]] const NetworkModel& net() const { return net_; }

 private:
  friend class RankCtx;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // Keyed by (from, tag); FIFO per key.
    std::map<std::pair<std::size_t, int>, std::vector<Message>> queues;
  };

  void barrier_wait(RankCtx& ctx);

  std::size_t nranks_;
  NetworkModel net_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<fault::Injector>> injectors_;
  std::vector<RankReport> reports_;

  // Two-phase max-synchronizing barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::size_t barrier_arrived_ = 0;
  std::size_t barrier_generation_ = 0;
  double barrier_max_time_ = 0.0;
  double last_released_max_ = 0.0;

  // Abort flag: set when any rank body throws, so peers blocked in recv()
  // or barrier() unwind instead of deadlocking.
  std::atomic<bool> aborted_{false};
};

}  // namespace ftfft::parallel
