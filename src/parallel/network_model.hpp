// Simulated-time accounting for the parallel runtime.
//
// The paper's parallel experiments ran on Tianhe-2 (MPI over TH Express-2).
// This reproduction executes ranks as host threads — typically on fewer
// physical cores than ranks — so wall-clock time cannot measure scaling.
// Instead each rank carries a RankClock: compute segments advance it by the
// thread's *CPU* time (CLOCK_THREAD_CPUTIME_ID, unaffected by time slicing),
// communication advances it by an alpha-beta network model, and
// synchronization advances it to the peer's clock. The simulated makespan
// (max final clock) reproduces the *shape* of the paper's Fig. 8 and
// Tables 2-3; absolute values depend on the host CPU and the model
// parameters, which default to TH Express-2-like numbers.
#pragma once

#include <cstddef>

#include "common/timer.hpp"

namespace ftfft::parallel {

/// Alpha-beta point-to-point cost model.
struct NetworkModel {
  double latency_s = 2e-6;     ///< per-message latency (alpha)
  double bytes_per_s = 6e9;    ///< link bandwidth (1/beta)

  /// Time to move one message of `bytes` payload.
  [[nodiscard]] double cost(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }
};

/// Per-rank simulated clock. Not thread-safe; each rank owns one.
class RankClock {
 public:
  /// Starts a measured compute segment.
  void begin_compute() { cpu_.reset(); }

  /// Ends the segment, adds the measured CPU seconds to the clock, and
  /// returns them (so callers can also account the same work elsewhere,
  /// e.g. when deciding overlap).
  double end_compute() {
    const double t = cpu_.elapsed();
    now_ += t;
    compute_ += t;
    return t;
  }

  /// Measures a compute segment without advancing the clock; used for work
  /// that will be folded into an overlap max() by the caller.
  double measure_compute(double* sink = nullptr) {
    const double t = cpu_.elapsed();
    if (sink != nullptr) *sink += t;
    return t;
  }

  /// Adds modeled communication time.
  void add_comm(double seconds) {
    now_ += seconds;
    comm_ += seconds;
  }

  /// Adds pre-measured compute time (overlap bookkeeping).
  void add_compute(double seconds) {
    now_ += seconds;
    compute_ += seconds;
  }

  /// Synchronizes with another event: the clock cannot be earlier than it.
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] double compute_seconds() const { return compute_; }
  [[nodiscard]] double comm_seconds() const { return comm_; }

 private:
  double now_ = 0.0;
  double compute_ = 0.0;
  double comm_ = 0.0;
  ThreadCpuTimer cpu_;
};

}  // namespace ftfft::parallel
