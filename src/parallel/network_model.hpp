// Simulated-time accounting for the parallel runtime.
//
// The paper's parallel experiments ran on Tianhe-2 (MPI over TH Express-2).
// This reproduction executes ranks as host threads — typically on fewer
// physical cores than ranks — so wall-clock time cannot measure scaling.
// Instead each rank carries a RankClock: compute segments advance it by the
// thread's *CPU* time (CLOCK_THREAD_CPUTIME_ID, unaffected by time slicing),
// communication advances it by an alpha-beta network model, and
// synchronization advances it to the peer's clock. The simulated makespan
// (max final clock) reproduces the *shape* of the paper's Fig. 8 and
// Tables 2-3; absolute values depend on the host CPU and the model
// parameters, which default to TH Express-2-like numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/complex.hpp"
#include "common/timer.hpp"

namespace ftfft::parallel {

/// Alpha-beta point-to-point cost model, plus the modeled link/rank fault
/// knobs the fault campaigns drive (all off by default — a default model is
/// a clean network).
struct NetworkModel {
  static constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

  double latency_s = 2e-6;     ///< per-message latency (alpha)
  double bytes_per_s = 6e9;    ///< link bandwidth (1/beta)

  // ---- fault-campaign knobs: link corruption and rank stall/failure, the
  // cluster-level fault classes of the paper's HPC setting (section 5), as
  // opposed to the bit-flip injectors that model in-node soft errors.

  /// Every corrupt_every-th block a rank receives arrives corrupted: the
  /// link flips one mantissa bit of the block's first element between the
  /// sender's checksum generation and the receiver's verification. Counted
  /// per receiving rank over the whole run, so campaigns are deterministic
  /// regardless of host thread scheduling. 0 = never.
  std::size_t corrupt_every = 0;

  /// Rank whose every outgoing message costs an extra stall_seconds of
  /// modeled time (a straggler node / congested NIC). kNoRank = none.
  std::size_t stall_rank = kNoRank;
  double stall_seconds = 0.0;

  /// Rank that fails outright (throws RankFailedError) when it reaches the
  /// numbered six-step communication phase (1..3 = the three transposes).
  /// The reference path propagates the failure; the sharded path treats it
  /// as a one-shot node loss and can restart the transform
  /// (ParallelOptions::max_rank_restarts). kNoRank = none.
  std::size_t fail_rank = kNoRank;
  int fail_phase = 1;

  /// Time to move one message of `bytes` payload.
  [[nodiscard]] double cost(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bytes_per_s;
  }
};

/// The modeled link corruption: flips mantissa bit 44 of the first
/// element's real part (~2^-8 relative error — far above every detection
/// threshold, well within single-error repair). Shared by the reference
/// and sharded receive paths so campaign outcomes are comparable.
inline void corrupt_in_flight(cplx* block) {
  double re = block[0].real();
  std::uint64_t bits;
  std::memcpy(&bits, &re, sizeof(bits));
  bits ^= std::uint64_t{1} << 44;
  std::memcpy(&re, &bits, sizeof(bits));
  block[0] = cplx{re, block[0].imag()};
}

/// Per-rank simulated clock. Not thread-safe; each rank owns one.
class RankClock {
 public:
  /// Starts a measured compute segment.
  void begin_compute() { cpu_.reset(); }

  /// Ends the segment, adds the measured CPU seconds to the clock, and
  /// returns them (so callers can also account the same work elsewhere,
  /// e.g. when deciding overlap).
  double end_compute() {
    const double t = cpu_.elapsed();
    now_ += t;
    compute_ += t;
    return t;
  }

  /// Measures a compute segment without advancing the clock; used for work
  /// that will be folded into an overlap max() by the caller.
  double measure_compute(double* sink = nullptr) {
    const double t = cpu_.elapsed();
    if (sink != nullptr) *sink += t;
    return t;
  }

  /// Adds modeled communication time.
  void add_comm(double seconds) {
    now_ += seconds;
    comm_ += seconds;
  }

  /// Adds pre-measured compute time (overlap bookkeeping).
  void add_compute(double seconds) {
    now_ += seconds;
    compute_ += seconds;
  }

  /// Synchronizes with another event: the clock cannot be earlier than it.
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] double compute_seconds() const { return compute_; }
  [[nodiscard]] double comm_seconds() const { return comm_; }

 private:
  double now_ = 0.0;
  double compute_ = 0.0;
  double comm_ = 0.0;
  ThreadCpuTimer cpu_;
};

}  // namespace ftfft::parallel
