// network_model.hpp is header-only; this translation unit exists so the
// target has a stable archive member even if the header inlines everything.
#include "parallel/network_model.hpp"
