#include "parallel/parallel_fft.hpp"

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "abft/dmr.hpp"
#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/weights.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "fft/fft.hpp"
#include "abft/inplace.hpp"
#include "parallel/parallel_plan.hpp"
#include "roundoff/model.hpp"

namespace ftfft::parallel {
namespace {

using checksum::DualSum;
using detail::plain_twiddle;
using detail::sigma_of;

constexpr int kTagT1 = 100;
constexpr int kTagT2 = 200;
constexpr int kTagT3 = 300;

struct RankOutcome {
  abft::Stats stats;
  TransposeStats comm;
};

// The whole per-rank computation, written as a class to keep the six steps
// readable.
class RankRun {
 public:
  RankRun(RankCtx& ctx, const std::vector<cplx>& input, std::vector<cplx>& out,
          const ParallelOptions& opts, const ParallelPlan& plan)
      : ctx_(ctx),
        input_(input),
        out_(out),
        opts_(opts),
        plan_(plan),
        p_(ctx.nranks()),
        r_(ctx.rank()),
        n_(input.size()),
        n_loc_(n_ / ctx.nranks()),
        bsz_(n_loc_ / ctx.nranks()) {}

  RankOutcome run() {
    local_.resize(n_loc_);
    std::memcpy(local_.data(), input_.data() + r_ * n_loc_,
                n_loc_ * sizeof(cplx));
    if (opts_.protect) {
      s1_.assign(bsz_, cplx{0, 0});
      s2_.assign(bsz_, cplx{0, 0});
      e_col_.assign(bsz_, 0.0);
    }
    ctx_.injector().apply(fault::Phase::kRankLocalInput, 0, local_.data(),
                          n_loc_);

    transpose1();
    fft1();
    transpose2_and_twiddle();
    fft2();
    transpose3();
    local_adjust();

    ctx_.barrier();
    std::memcpy(out_.data() + r_ * n_loc_, local_.data(),
                n_loc_ * sizeof(cplx));
    return RankOutcome{stats_, comm_};
  }

 private:
  // Step 1: deliver column data; fuse the FFT1 input-checksum generation
  // (CMCG) into block reception so overlap can hide it.
  void transpose1() {
    TransposeOptions t;
    t.checksums = opts_.protect && opts_.memory_ft;
    t.overlap = opts_.overlap;
    t.eta = block_eta();
    t.max_retries = opts_.max_retries;
    t.max_errors = plan_.max_errors();
    t.syndrome_nodes = plan_.syndrome_nodes_block();
    t.phase = 1;
    if (opts_.protect) {
      t.on_block = [this](std::size_t src, cplx* block, std::size_t len) {
        const cplx w = plan_.cp()[src];
        const double sd = static_cast<double>(src);
        for (std::size_t u = 0; u < len; ++u) {
          const cplx pterm = cmul(w, block[u]);
          s1_[u] += pterm;
          s2_[u] += sd * pterm;
          e_col_[u] += norm2(block[u]);
        }
      };
    }
    block_transpose(ctx_, local_.data(), bsz_, t, comm_, kTagT1);
  }

  // Step 2: bsz p-point FFTs over columns (stride bsz), each protected by
  // its own checksum with the gathered buffer as restart backup (Fig. 4).
  void fft1() {
    ctx_.clock().begin_compute();
    fft::Fft fftp(p_);
    std::vector<cplx> buf(p_), res(p_);
    for (std::size_t u = 0; u < bsz_; ++u) {
      for (std::size_t t = 0; t < p_; ++t) buf[t] = local_[t * bsz_ + u];
      if (!opts_.protect) {
        fftp.execute(buf.data(), res.data());
        for (std::size_t t = 0; t < p_; ++t) local_[t * bsz_ + u] = res[t];
        continue;
      }
      // eta_from_coeff(practical_eta_coeff(p), s) == practical_eta(p, s)
      // bit-for-bit (roundoff/model.hpp), so reading the coefficient off
      // the plan changes nothing but the per-column trig re-derivation.
      const double eta = opts_.eta_override > 0.0
                             ? opts_.eta_override
                             : roundoff::eta_from_coeff(
                                   plan_.eta_fft1_coeff(),
                                   sigma_of(e_col_[u], p_));
      stats_.eta_m = std::max(stats_.eta_m, eta);
      const DualSum stored{s1_[u], s2_[u]};
      for (int attempt = 0;; ++attempt) {
        fftp.execute(buf.data(), res.data());
        ctx_.injector().apply(fault::Phase::kRankFft1Output, u, res.data(),
                              p_);
        const cplx rx = checksum::omega3_weighted_sum(res.data(), p_);
        ++stats_.verifications;
        if (std::abs(rx - s1_[u]) <= eta) break;
        if (attempt >= opts_.max_retries) {
          throw UncorrectableError(
              "parallel ABFT: FFT1 column kept failing verification");
        }
        ++stats_.sub_fft_retries;
        // Memory-vs-compute discrimination on the backed-up input.
        const auto rep = checksum::repair_single_error(
            stored, buf.data(), 1, plan_.cp(), p_, eta, opts_.max_retries);
        if (rep.mismatch) {
          ++stats_.mem_errors_detected;
          if (!rep.corrected) {
            throw UncorrectableError(
                "parallel ABFT: FFT1 input memory error not localizable");
          }
          ++stats_.mem_errors_corrected;
        } else {
          ++stats_.comp_errors_detected;
        }
      }
      for (std::size_t t = 0; t < p_; ++t) local_[t * bsz_ + u] = res[t];
    }
    ctx_.clock().end_compute();
  }

  // Step 3: redistribute rows for FFT2 and apply the inter-layer twiddle
  // omega_N^(i * r) to every received block, DMR-protected and fused into
  // the reception pipeline.
  void transpose2_and_twiddle() {
    TransposeOptions t;
    t.checksums = opts_.protect && opts_.memory_ft;
    t.overlap = opts_.overlap;
    t.eta = block_eta();
    t.max_retries = opts_.max_retries;
    t.max_errors = plan_.max_errors();
    t.syndrome_nodes = plan_.syndrome_nodes_block();
    t.phase = 2;
    std::vector<cplx> tmp(bsz_);
    t.on_block = [this, &tmp](std::size_t src, cplx* block, std::size_t len) {
      const cplx scale =
          omega(n_, static_cast<std::uint64_t>(src) * bsz_ % n_ *
                        static_cast<std::uint64_t>(r_));
      if (opts_.protect) {
        std::memcpy(tmp.data(), block, len * sizeof(cplx));
        stats_.dmr_mismatches += abft::dmr_twiddle_multiply(
            tmp.data(), 1, block, len, n_, r_, src, &ctx_.injector(), scale);
      } else {
        plain_twiddle(block, len, n_, r_, scale);
      }
    };
    block_transpose(ctx_, local_.data(), bsz_, t, comm_, kTagT2);
  }

  // Step 4: one n_loc-point in-place FFT per rank, protected by the
  // three-layer k*r*k scheme.
  void fft2() {
    ctx_.clock().begin_compute();
    if (opts_.protect) {
      abft::Options aopts = abft::Options::online_opt(opts_.memory_ft);
      aopts.eta_override = opts_.eta_override;
      aopts.max_retries = opts_.max_retries;
      aopts.injector = &ctx_.injector();
      aopts.fused_checksums = opts_.fused_checksums;
      abft::inplace_online_transform(local_.data(), *plan_.fft2_plan(), aopts,
                                     stats_);
    } else {
      fft::Fft engine(n_loc_);
      engine.execute_inplace(local_.data());
    }
    ctx_.clock().end_compute();
  }

  // Step 5: deliver each rank its slice of the final spectrum.
  void transpose3() {
    TransposeOptions t;
    t.checksums = opts_.protect && opts_.memory_ft;
    t.overlap = opts_.overlap;
    t.eta = block_eta();
    t.max_retries = opts_.max_retries;
    t.max_errors = plan_.max_errors();
    t.syndrome_nodes = plan_.syndrome_nodes_block();
    t.phase = 3;
    block_transpose(ctx_, local_.data(), bsz_, t, comm_, kTagT3);
  }

  // Step 6: local bsz x p transpose into natural order. Per-block dual
  // checksums are generated before the permutation; a block's elements move
  // from stride 1 to stride p but keep their within-block index, so the
  // same checksums localize (and correct) a memory fault hitting the final
  // output after the adjustment.
  void local_adjust() {
    ctx_.clock().begin_compute();
    std::vector<DualSum> guards;
    const bool guard = opts_.protect && opts_.memory_ft;
    if (guard) {
      guards.resize(p_);
      for (std::size_t q = 0; q < p_; ++q) {
        guards[q] = checksum::dual_weighted_sum(
            nullptr, local_.data() + q * bsz_, bsz_);
      }
    }
    std::vector<cplx> adjusted(n_loc_);
    for (std::size_t q = 0; q < p_; ++q) {
      for (std::size_t u = 0; u < bsz_; ++u) {
        adjusted[u * p_ + q] = local_[q * bsz_ + u];
      }
    }
    local_.swap(adjusted);
    ctx_.injector().apply(fault::Phase::kFinalOutput, 0, local_.data(),
                          n_loc_);
    if (guard) {
      const double eta = block_eta();
      for (std::size_t q = 0; q < p_; ++q) {
        const auto rep = checksum::repair_single_error(
            guards[q], local_.data() + q, p_, nullptr, bsz_, eta,
            opts_.max_retries);
        ++stats_.verifications;
        if (rep.mismatch) {
          ++stats_.mem_errors_detected;
          if (!rep.corrected) {
            throw UncorrectableError(
                "parallel ABFT: final output memory error not localizable");
          }
          ++stats_.mem_errors_corrected;
        }
      }
    }
    ctx_.clock().end_compute();
  }

  // Threshold for one transposed block: the block holds intermediate values
  // whose scale grows along the pipeline; a plain-summation threshold on the
  // local data scale is sufficient for all three transposes.
  double block_eta() {
    if (opts_.eta_override > 0.0) return opts_.eta_override;
    const double sigma =
        sigma_of(checksum::robust_energy(local_.data(), n_loc_), n_loc_);
    // Plan-cached coefficient; identical to practical_eta_memory(bsz, sigma)
    // for protected runs (unprotected runs never read the threshold).
    return roundoff::eta_from_coeff(plan_.eta_block_coeff(), sigma);
  }

  RankCtx& ctx_;
  const std::vector<cplx>& input_;
  std::vector<cplx>& out_;
  const ParallelOptions& opts_;
  const ParallelPlan& plan_;
  std::size_t p_, r_, n_, n_loc_, bsz_;

  std::vector<cplx> local_;
  std::vector<cplx> s1_, s2_;     // per-column CMCG slots
  std::vector<double> e_col_;     // per-column energy
  abft::Stats stats_;
  TransposeStats comm_;
};

}  // namespace

std::vector<cplx> parallel_fft(
    std::size_t p, const std::vector<cplx>& input, const ParallelOptions& opts,
    ParallelReport* report,
    const std::function<void(std::size_t, fault::Injector&)>& arm) {
  const std::size_t n = input.size();
  detail::require(p >= 2, "parallel_fft: need at least 2 ranks");
  detail::require(p % 3 != 0,
                  "parallel_fft: rank count divisible by 3 degenerates the "
                  "checksum encoding");
  detail::require(n % (p * p) == 0,
                  "parallel_fft: N must be divisible by p^2");

  // One cached plan per call, shared read-only by every rank thread — the
  // rA vector, FFT2 protection state and sub-FFT plan trees stop being
  // rebuilt per rank per call.
  const auto plan =
      ParallelPlan::get(p, n, opts.protect, opts.max_correctable_errors);

  SimComm comm(p, opts.net, opts.seed);
  if (arm) {
    for (std::size_t r = 0; r < p; ++r) arm(r, comm.injector(r));
  }

  std::vector<cplx> out(n);
  std::mutex agg_mu;
  ParallelReport agg;
  comm.run([&](RankCtx& ctx) {
    RankRun run(ctx, input, out, opts, *plan);
    const RankOutcome outcome = run.run();
    std::scoped_lock lock(agg_mu);
    agg.stats.comp_errors_detected += outcome.stats.comp_errors_detected;
    agg.stats.mem_errors_detected += outcome.stats.mem_errors_detected;
    agg.stats.mem_errors_corrected += outcome.stats.mem_errors_corrected;
    agg.stats.multi_errors_corrected += outcome.stats.multi_errors_corrected;
    agg.stats.sub_fft_retries += outcome.stats.sub_fft_retries;
    agg.stats.full_restarts += outcome.stats.full_restarts;
    agg.stats.dmr_mismatches += outcome.stats.dmr_mismatches;
    agg.stats.verifications += outcome.stats.verifications;
    agg.stats.eta_m = std::max(agg.stats.eta_m, outcome.stats.eta_m);
    agg.stats.eta_k = std::max(agg.stats.eta_k, outcome.stats.eta_k);
    agg.stats.eta_mem = std::max(agg.stats.eta_mem, outcome.stats.eta_mem);
    agg.comm_stats += outcome.comm;
    agg.bytes_per_rank = std::max(agg.bytes_per_rank, outcome.comm.bytes_sent);
  });

  agg.makespan = comm.makespan();
  for (const auto& rr : comm.reports()) {
    agg.max_compute = std::max(agg.max_compute, rr.compute_seconds);
    agg.max_comm = std::max(agg.max_comm, rr.comm_seconds);
  }
  if (report != nullptr) *report = agg;
  return out;
}

}  // namespace ftfft::parallel
