// Distributed block transpose with checksummed messages and optional
// communication-computation overlap (paper sections 5-6, Algorithm 3).
//
// Data layout: each rank holds nranks blocks of block_len contiguous
// elements. The transpose exchanges block j of rank i with block i of rank
// j — the primitive behind all three "global comm" steps of the six-step
// parallel FFT.
//
// With checksums enabled, every block travels with its two dual checksums
// (2 extra complex values per block, the paper's ~2p/n communication
// overhead); the receiver verifies and can localize+correct one corrupted
// element per block. With overlap enabled, the per-step timing charges
// max(comm, pack+process) instead of their sum, modeling Algorithm 3's
// double-buffered pipeline.
#pragma once

#include <cstddef>
#include <functional>

#include "common/complex.hpp"
#include "parallel/comm.hpp"

namespace ftfft::parallel {

/// Per-transpose behavior.
struct TransposeOptions {
  bool checksums = true;  ///< append + verify per-block dual checksums
  bool overlap = false;   ///< Algorithm 3 pipelined timing
  double eta = 1e-9;      ///< verification threshold for one block
  int max_retries = 4;
  /// Per-block correction capacity (PR 9). 1 = the classic two-value dual
  /// checksum trailer, bit-for-bit. t > 1 ships 2t syndrome moments per
  /// block instead (payload overhead 2t complex values) and the receiver
  /// decodes up to t simultaneous corruptions via checksum::repair_errors.
  int max_errors = 1;
  /// Plan-cached duplicated node table for block_len
  /// (checksum::shared_syndrome_nodes / ParallelPlan::syndrome_nodes_block)
  /// enabling the SIMD syndrome kernels; nullptr falls back to the scalar
  /// on-the-fly nodes (identical values). Only read when max_errors > 1.
  const double* syndrome_nodes = nullptr;
  /// Six-step phase index (1..3 for the three transposes); the modeled
  /// fault knobs (NetworkModel::fail_rank/fail_phase) key off it. 0 = not
  /// part of a phased run, rank-failure knob never fires.
  int phase = 0;

  /// Optional processing applied to every received (and the resident)
  /// block after verification: the hook the parallel FFT uses to fuse
  /// twiddle multiplication and checksum generation into the reception
  /// pipeline, where overlap can hide it.
  std::function<void(std::size_t src_rank, cplx* block, std::size_t len)>
      on_block;
};

/// Outcome counters.
struct TransposeStats {
  std::size_t comm_errors_detected = 0;
  std::size_t comm_errors_corrected = 0;
  /// Corrections recovered by a multi-error decode fixing >= 2 elements of
  /// one block (counts elements, so a 2-burst adds 2). Subset-adjacent to
  /// comm_errors_corrected, which keeps counting blocks repaired.
  std::size_t comm_multi_corrected = 0;
  std::size_t bytes_sent = 0;
  /// Blocks received over the (simulated) link, resident block excluded.
  /// Also the counter the NetworkModel::corrupt_every campaign knob ticks
  /// against, so a rank's corruption pattern is a pure function of its
  /// message count — deterministic across host thread schedules.
  std::size_t messages_received = 0;

  TransposeStats& operator+=(const TransposeStats& o) {
    comm_errors_detected += o.comm_errors_detected;
    comm_errors_corrected += o.comm_errors_corrected;
    comm_multi_corrected += o.comm_multi_corrected;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    return *this;
  }
};

/// Executes the transpose on this rank. `local` holds nranks*block_len
/// elements; on return block q holds the data that was block `rank` on rank
/// q (verified, repaired and processed per the options). `tag_base`
/// separates concurrent transposes. Throws UncorrectableError when a block
/// fails verification beyond repair.
void block_transpose(RankCtx& ctx, cplx* local, std::size_t block_len,
                     const TransposeOptions& opts, TransposeStats& stats,
                     int tag_base);

}  // namespace ftfft::parallel
