#include "parallel/transpose.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/multi_error.hpp"
#include "common/error.hpp"

namespace ftfft::parallel {
namespace {

using checksum::DualSum;

// Verifies a received block against its trailing dual checksums and repairs
// a single corrupted element. Returns true if a corruption was repaired.
bool verify_block(cplx* block, std::size_t len, const DualSum& stored,
                  double eta, int max_retries, TransposeStats& stats) {
  const auto rep = checksum::repair_single_error(stored, block, 1, nullptr,
                                                 len, eta, max_retries);
  if (!rep.mismatch) return false;
  ++stats.comm_errors_detected;
  if (!rep.corrected) {
    throw UncorrectableError(
        "block transpose: received block failed verification beyond repair");
  }
  ++stats.comm_errors_corrected;
  return true;
}

// Multi-error variant (max_errors > 1): the trailer carries 2t syndrome
// moments and the decoder corrects up to t simultaneous corruptions.
bool verify_block_multi(cplx* block, std::size_t len,
                        const checksum::SyndromeSet& stored, double eta,
                        int max_errors, const double* nodes,
                        TransposeStats& stats) {
  const auto rep = checksum::repair_errors(stored, block, 1, nullptr, len,
                                           eta, max_errors, /*max_iters=*/6,
                                           nodes);
  if (!rep.mismatch) return false;
  ++stats.comm_errors_detected;
  if (!rep.corrected) {
    throw UncorrectableError(
        "block transpose: received block failed verification beyond repair");
  }
  ++stats.comm_errors_corrected;
  if (rep.errors >= 2) {
    stats.comm_multi_corrected += static_cast<std::size_t>(rep.errors);
  }
  return true;
}

}  // namespace

void block_transpose(RankCtx& ctx, cplx* local, std::size_t block_len,
                     const TransposeOptions& opts, TransposeStats& stats,
                     int tag_base) {
  const std::size_t p = ctx.nranks();
  const std::size_t r = ctx.rank();
  const NetworkModel& net = ctx.net();
  RankClock& clock = ctx.clock();
  // Trailer: 2 dual-checksum values (the paper's ~2p/n overhead), or 2t
  // syndrome moments under a multi-error budget (~2tp/n).
  const int t_max =
      opts.checksums ? checksum::clamp_max_errors(opts.max_errors) : 1;
  const std::size_t trailer = opts.checksums ? (t_max > 1 ? 2 * t_max : 2) : 0;
  const std::size_t payload_len = block_len + trailer;
  const double msg_cost = net.cost(payload_len * sizeof(cplx));

  // Modeled node loss: the configured rank dies as it enters the configured
  // communication phase, before any peer exchange of this transpose.
  if (r == net.fail_rank && opts.phase != 0 && opts.phase == net.fail_phase) {
    throw RankFailedError("parallel fft: rank failed entering transpose phase " +
                          std::to_string(opts.phase));
  }

  // Resident block: no communication, but the hook still applies.
  if (opts.on_block) {
    clock.begin_compute();
    opts.on_block(r, local + r * block_len, block_len);
    clock.end_compute();
  }

  // Round-robin tournament schedule (circle method): in every round each
  // rank exchanges with exactly one peer, and the block it sends is the one
  // it receives into — so no block is overwritten before it has been sent.
  // Even p: p-1 rounds, rank p-1 is the "fixed player". Odd p: p rounds,
  // one rank idles per round.
  const std::size_t circle = (p % 2 == 0) ? p - 1 : p;
  const std::size_t rounds = circle;
  for (std::size_t s = 0; s < rounds; ++s) {
    std::size_t peer;
    if (p % 2 == 0 && r == p - 1) {
      // Fixed player pairs with the circle rank j solving 2j = s (mod
      // circle); circle is odd so 2 is invertible: j = s*(circle+1)/2.
      peer = s * ((circle + 1) / 2) % circle;
    } else {
      const std::size_t self_paired = (2 * r) % circle;
      if (p % 2 == 0 && self_paired == s % circle) {
        peer = p - 1;  // we are the circle rank that meets the fixed player
      } else {
        peer = (s + circle - r % circle) % circle;
        if (peer == r) continue;  // odd p: idle this round
      }
    }

    // -- pack (measured): copy the outgoing block, generate its checksums.
    clock.begin_compute();
    std::vector<cplx> payload(payload_len);
    std::memcpy(payload.data(), local + peer * block_len,
                block_len * sizeof(cplx));
    if (opts.checksums) {
      if (t_max > 1) {
        const auto syn = checksum::syndrome_sum(nullptr, payload.data(),
                                                block_len, 1, 2 * t_max,
                                                opts.syndrome_nodes);
        for (int mo = 0; mo < 2 * t_max; ++mo) {
          payload[block_len + static_cast<std::size_t>(mo)] = syn.s[mo];
        }
      } else {
        const DualSum d =
            checksum::dual_weighted_sum(nullptr, payload.data(), block_len);
        payload[block_len] = d.plain;
        payload[block_len + 1] = d.indexed;
      }
    }
    const double t_pack = clock.end_compute();
    stats.bytes_sent += payload_len * sizeof(cplx);
    // Straggler model: every message out of the stalled rank departs late.
    if (r == net.stall_rank) clock.add_comm(net.stall_seconds);
    ctx.send(peer, tag_base + static_cast<int>(s), std::move(payload));

    // -- receive + verify + process (measured). The peer's message replaces
    // the block we just sent it (a true pairwise exchange).
    Message msg = ctx.recv(peer, tag_base + static_cast<int>(s));
    clock.begin_compute();
    cplx* dst = local + peer * block_len;
    std::memcpy(dst, msg.payload.data(), block_len * sizeof(cplx));
    ++stats.messages_received;
    // Modeled link corruption (NetworkModel::corrupt_every) lands here, like
    // the injector below: after sender checksum generation, before receiver
    // verification. Without checksums it silently poisons the output — the
    // unprotected variants exist to demonstrate exactly that.
    if (net.corrupt_every != 0 &&
        stats.messages_received % net.corrupt_every == 0) {
      corrupt_in_flight(dst);
    }
    if (opts.checksums) {
      // In-flight corruption hits the payload between sender checksum
      // generation and receiver verification.
      ctx.injector().apply(fault::Phase::kCommBlock, peer, dst, block_len);
      if (t_max > 1) {
        checksum::SyndromeSet stored;
        stored.moments = 2 * t_max;
        for (int mo = 0; mo < 2 * t_max; ++mo) {
          stored.s[mo] = msg.payload[block_len + static_cast<std::size_t>(mo)];
        }
        verify_block_multi(dst, block_len, stored, opts.eta, t_max,
                           opts.syndrome_nodes, stats);
      } else {
        const DualSum stored{msg.payload[block_len],
                             msg.payload[block_len + 1]};
        verify_block(dst, block_len, stored, opts.eta, opts.max_retries,
                     stats);
      }
    }
    if (opts.on_block) opts.on_block(peer, dst, block_len);
    const double t_proc = clock.end_compute();

    // -- simulated time. The sender's clock is a lower bound on when the
    // message could have left; the transfer itself costs msg_cost. Under
    // Algorithm 3 the transfer of this step rides under the pack/process
    // compute of neighboring steps, so only the excess is charged.
    clock.advance_to(msg.send_time);
    if (opts.overlap) {
      const double hidden = t_pack + t_proc;
      clock.add_comm(std::max(0.0, msg_cost - hidden));
    } else {
      clock.add_comm(msg_cost);
    }
  }
}

}  // namespace ftfft::parallel
