// Round-off error model and detection-threshold selection (paper section 8).
//
// Two threshold sources coexist:
//
//  * paper_eta_*: the literal formulas of section 8 built on the
//    Weinstein/Gentleman floating-point FFT noise model, reproduced for the
//    Table 4 experiment (estimated eta vs measured max round-off).
//  * practical_eta: the default the library actually verifies against. The
//    closed-form input checksum vector (rA) has entries as large as
//    O(0.83 n), so the dominant round-off in |rX - (rA)x| is the weighted
//    input product, of order eps * n^2 * sigma. A safety factor keeps the
//    false-positive rate effectively zero while staying orders of magnitude
//    below any threshold an offline whole-transform scheme could use — which
//    is exactly the detection-ability gap Tables 5 and 6 measure.
#pragma once

#include <cstddef>

namespace ftfft::roundoff {

/// Standard deviation of one rounding in double arithmetic,
/// sigma_eps = sqrt(0.21) * 2^-t with t = 52 mantissa bits (Gentleman &
/// Sande's empirical constant, as used by the paper).
[[nodiscard]] double sigma_eps() noexcept;

/// Std dev of the round-off noise on one output element of an n-point FFT
/// whose input components have std dev sigma0 (Weinstein's
/// noise-to-signal ratio 2 sigma_eps^2 log2 n).
[[nodiscard]] double fft_element_noise_sigma(std::size_t n,
                                             double sigma0) noexcept;

/// Paper's upper-bound estimate for the checksum-difference magnitude of one
/// protected n-point sub-FFT with input component sigma sigma0:
/// sigma_roe = n * sigma_e (section 8.1).
[[nodiscard]] double paper_checksum_noise_sigma(std::size_t n,
                                                double sigma0) noexcept;

/// Paper's threshold eta = 3 * sqrt(n) * sigma_roe for that sub-FFT layer.
[[nodiscard]] double paper_eta(std::size_t n, double sigma0) noexcept;

/// Standard normal CDF.
[[nodiscard]] double phi(double x) noexcept;

/// Expected throughput of a detector with threshold eta when the fault-free
/// checksum difference is N(0, sigma^2 * n): 1 / (3 - 2 Phi(eta / ...)),
/// section 8.1's formula.
[[nodiscard]] double throughput(double eta, std::size_t n,
                                double sigma) noexcept;

/// Practical default threshold for |rX - (rA)x| over an n-point sub-FFT
/// whose input components have std dev sigma0 (see file comment).
[[nodiscard]] double practical_eta(std::size_t n, double sigma0) noexcept;

/// Practical threshold for plain/index dual memory checksums over n elements
/// of component sigma sigma0 (summation-only noise, section 8.2).
[[nodiscard]] double practical_eta_memory(std::size_t n,
                                          double sigma0) noexcept;

/// Practical threshold for the real-transform post-pass verification over an
/// nc-point packed transform of component sigma sigma0: both sides of the
/// comparison are dots with unit-modulus weights (omega3 over the
/// half-spectrum vs the conjugate-symmetry pullback over the packed
/// transform — see abft/real_protection.hpp), so the residual has the
/// plain-summation shape of the memory checksums, not the O(n)-weight rA
/// shape. Re-derived for the packed representation per Elliott et al.'s
/// observation that thresholds must follow the data representation.
[[nodiscard]] double practical_eta_real(std::size_t nc,
                                        double sigma0) noexcept;

// The practical thresholds factor as max(floor, coeff(n) * sigma0); the
// sigma-independent coefficient is what an abft::ProtectionPlan precomputes
// per layer so the per-sub-FFT threshold derivation in the hot path is one
// multiply. eta_from_coeff(practical_eta_coeff(n), s) is bit-identical to
// practical_eta(n, s).

/// Coefficient of practical_eta: kSafety * eps * n^2.
[[nodiscard]] double practical_eta_coeff(std::size_t n) noexcept;

/// Coefficient of practical_eta_memory: kSafety * eps * n * sqrt(n).
[[nodiscard]] double practical_eta_memory_coeff(std::size_t n) noexcept;

/// Coefficient of practical_eta_real: kSafety * eps * nc * sqrt(nc), with a
/// factor 2 for the half-spectrum's nc+1 bins riding on top of the nc-point
/// pullback (the post-pass doubles element magnitudes at most).
[[nodiscard]] double practical_eta_real_coeff(std::size_t nc) noexcept;

/// Applies a precomputed threshold coefficient: max(floor, coeff * sigma0).
[[nodiscard]] double eta_from_coeff(double coeff, double sigma0) noexcept;

/// Per-layer thresholds for the two-layer online scheme over N = m*k.
struct OnlineEtas {
  double eta_m = 0.0;    ///< m-point layer CCV threshold
  double eta_k = 0.0;    ///< k-point layer CCV threshold
  double eta_mem = 0.0;  ///< intermediate memory-checksum threshold
};

/// Computes all three from the top-level split and input sigma. The k-layer
/// input is the (unnormalized) m-point FFT output, so its component sigma is
/// sqrt(m) * sigma0.
[[nodiscard]] OnlineEtas online_etas(std::size_t m, std::size_t k,
                                     double sigma0) noexcept;

}  // namespace ftfft::roundoff
