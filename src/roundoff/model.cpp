#include "roundoff/model.hpp"

#include <algorithm>
#include <cmath>

namespace ftfft::roundoff {
namespace {

// Safety factor on the practical thresholds. Detection misses scale only
// linearly with this, while false positives die off like exp(-c^2), so a
// generous constant buys reliability for pennies of fault coverage.
// Empirically the fault-free residual sits 5-25x below eps*n^2*sigma across
// sizes 2^6..2^16, so 128 leaves an ~order-of-magnitude margin.
constexpr double kSafety = 128.0;

// Absolute floor so an all-zero input still verifies cleanly.
constexpr double kEtaFloor = 1e-300;

double log2d(std::size_t n) noexcept {
  return n <= 1 ? 1.0 : std::log2(static_cast<double>(n));
}

}  // namespace

double sigma_eps() noexcept {
  // sqrt(0.21) * 2^-52.
  return 0.4582575694955840 * 0x1.0p-52;
}

double fft_element_noise_sigma(std::size_t n, double sigma0) noexcept {
  // sigma_E^2 / sigma_X^2 = 2 sigma_eps^2 log2 n, with sigma_X = sqrt(n) s0.
  const double nd = static_cast<double>(n);
  return std::sqrt(2.0 * nd * sigma0 * sigma0 * sigma_eps() * sigma_eps() *
                   log2d(n));
}

double paper_checksum_noise_sigma(std::size_t n, double sigma0) noexcept {
  return static_cast<double>(n) * fft_element_noise_sigma(n, sigma0);
}

double paper_eta(std::size_t n, double sigma0) noexcept {
  return 3.0 * std::sqrt(static_cast<double>(n)) *
         paper_checksum_noise_sigma(n, sigma0);
}

double phi(double x) noexcept {
  return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

double throughput(double eta, std::size_t n, double sigma) noexcept {
  const double denom = std::sqrt(static_cast<double>(n)) * sigma;
  if (denom <= 0.0) return 1.0;
  return 1.0 / (3.0 - 2.0 * phi(eta / denom));
}

double practical_eta_coeff(std::size_t n) noexcept {
  // The closed-form (rA) weights reach O(0.83 n), so the running partial
  // sums of (rA)x are O(n sigma) across ~n additions: the residual of the
  // checksum comparison grows like eps * n^2 * sigma. (This also matches
  // the paper's measured Max round-off, e.g. ~1e-8 for m = 2^13.)
  const double nd = static_cast<double>(n);
  const double eps = 0x1.0p-52;
  return kSafety * eps * nd * nd;
}

double practical_eta_memory_coeff(std::size_t n) noexcept {
  // Plain summation noise: ~eps * n * sigma per sum; the indexed sum is
  // checked through the same plain-difference gate, so size for the plain
  // one.
  const double nd = static_cast<double>(n);
  const double eps = 0x1.0p-52;
  return kSafety * eps * nd * std::sqrt(nd);
}

double practical_eta_real_coeff(std::size_t nc) noexcept {
  // Unit-modulus weights on both sides of the post-pass comparison: the
  // residual is plain-summation noise over ~nc terms whose magnitudes the
  // split/unsplit map at most doubles (|X_k| <= |A| + |T| <= 2 |Z|), plus
  // the per-element finalize rounding — all linear in nc * sigma with an
  // extra sqrt(nc) for the partial-sum growth, like the memory checksums.
  const double nd = static_cast<double>(nc);
  const double eps = 0x1.0p-52;
  return 2.0 * kSafety * eps * nd * std::sqrt(nd);
}

double eta_from_coeff(double coeff, double sigma0) noexcept {
  return std::max(kEtaFloor, coeff * sigma0);
}

double practical_eta(std::size_t n, double sigma0) noexcept {
  return eta_from_coeff(practical_eta_coeff(n), sigma0);
}

double practical_eta_memory(std::size_t n, double sigma0) noexcept {
  return eta_from_coeff(practical_eta_memory_coeff(n), sigma0);
}

double practical_eta_real(std::size_t nc, double sigma0) noexcept {
  return eta_from_coeff(practical_eta_real_coeff(nc), sigma0);
}

OnlineEtas online_etas(std::size_t m, std::size_t k, double sigma0) noexcept {
  OnlineEtas etas;
  etas.eta_m = practical_eta(m, sigma0);
  const double sigma_mid = std::sqrt(static_cast<double>(m)) * sigma0;
  etas.eta_k = practical_eta(k, sigma_mid);
  etas.eta_mem = practical_eta_memory(std::max(m, k), sigma_mid);
  return etas;
}

}  // namespace ftfft::roundoff
