// Streaming statistics accumulators for benchmarks and round-off studies.
#pragma once

#include <cstddef>
#include <vector>

namespace ftfft {

/// Welford mean/variance plus min/max, single pass, numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (divides by n). Returns 0 for n < 1.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers "what fraction exceeds t" queries; used for
/// the Table 6 relative-error distribution.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Fraction of samples strictly greater than threshold.
  [[nodiscard]] double fraction_above(double threshold) const noexcept;

  /// p in [0,1]; nearest-rank quantile of the sorted samples.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double max() const noexcept;

 private:
  std::vector<double> samples_;
};

}  // namespace ftfft
