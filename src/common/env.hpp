// Environment-variable knobs for the library and benchmark harnesses.
//
// FTFFT_PLAN_CACHE_CAP bounds every process-wide plan cache (decomposition
// trees, in-place plans, checksum weight vectors, ABFT ProtectionPlans) to
// that many entries each, evicted least-recently-used; 0 removes the bound.
//
// FTFFT_SIMD forces the SIMD kernel backend ("scalar" | "avx2" | "neon");
// unset or unavailable values fall back to runtime detection. Read at first
// kernel dispatch by src/simd/dispatch.cpp.
//
// FTFFT_INPLACE_BLOCK_LOG2 / FTFFT_COBRA_TILE_BITS / FTFFT_COBRA_MIN_LOG2
// override the in-place engine's memory-hierarchy tuning (cache-window size
// for stage blocking, COBRA bit-reversal tile width, and the size threshold
// below which the pair-swap permutation is kept). Read at plan construction
// by fft::default_inplace_tuning(); see fft/inplace_radix2.hpp for the
// defaults and their rationale.
//
// FTFFT_FUSED_CHECKSUMS ("1"/"on"/"true"/"yes" to enable) flips the default
// of abft::Options::fused_checksums: the protected transforms accumulate
// their checksum dots inside the butterfly kernels (TurboFFT-style) instead
// of separate sweeps. Off by default; the separate-pass path remains the
// reference. Read when an Options struct is constructed.
//
// FTFFT_ENGINE_THREADS sets the worker count of every engine::BatchEngine
// constructed with num_threads = 0 — including the process-wide shared()
// engine behind the single-shot wrappers — so tests, CI and co-tenant
// deployments can bound the pool without code changes; 0/unset falls back
// to std::thread::hardware_concurrency(). Read at engine construction.
//
// FTFFT_ENGINE_QUEUE_CAP bounds each BatchEngine's pending-lane count
// (lanes, not jobs, so a 1000-lane batch occupies 1000 slots; 0/unset =
// unbounded). When the cap is reached, try_submit_* fail fast, blocking
// submit_* wait up to SubmitOptions::admission_timeout then throw
// QueueFullError, and admission of a higher-priority job may shed queued
// cancellable lower-class lanes. Read at engine construction;
// BatchEngine::set_queue_cap overrides at runtime.
//
// FTFFT_ENGINE_DEFAULT_PRIORITY ("high" | "normal" | "low"; default
// "normal") names the scheduling class a submission with
// Priority::kDefault resolves to, and FTFFT_ENGINE_DEFAULT_DEADLINE_MS
// (default 0 = no deadline) the completion budget a submission with a zero
// deadline inherits — a deployment-wide latency contract without touching
// call sites. Both read at engine construction.
//
// The paper's experiments ran at N = 2^25..2^28 sequential and N = 2^31..2^34
// on 128..1024 cores of Tianhe-2. This reproduction defaults to sizes that a
// single-core container finishes in minutes; FTFFT_BENCH_SCALE shifts every
// benchmark's problem sizes by that many powers of two and FTFFT_BENCH_RUNS
// scales repetition counts, so the original scale can be approached on bigger
// machines without editing code.
#pragma once

#include <cstddef>
#include <string>

namespace ftfft {

/// Reads a non-negative integer env var; returns fallback when unset. A
/// malformed value — trailing garbage ("4x"), a negative number, or one out
/// of range — also returns the fallback and warns on stderr once per
/// variable instead of silently truncating.
std::size_t env_size(const char* name, std::size_t fallback);

/// Reads a (possibly negative) integer env var; same validation rules.
long env_long(const char* name, long fallback);

/// Reads a boolean env var ("1"/"on"/"true"/"yes" vs "0"/"off"/"false"/
/// "no"); unset or unrecognized values return the fallback (with the same
/// warn-once on unrecognized text).
bool env_flag(const char* name, bool fallback);

/// LRU capacity for each process-wide plan cache, from FTFFT_PLAN_CACHE_CAP
/// (default generous; 0 = unbounded). Read once at first use.
std::size_t plan_cache_capacity();

/// log2 shift applied to benchmark problem sizes (default 0).
long bench_scale_shift();

/// Multiplier (percent) applied to benchmark repetition counts (default 100).
std::size_t bench_runs_percent();

/// Scales a repetition count by FTFFT_BENCH_RUNS (keeps at least 1).
std::size_t scaled_runs(std::size_t base);

/// Applies the log2 shift to a problem size (keeps at least min_size).
std::size_t scaled_size(std::size_t base, std::size_t min_size = 16);

}  // namespace ftfft
