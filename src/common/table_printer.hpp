// Aligned ASCII tables for the benchmark harnesses: every bench binary
// regenerates one table or figure of the paper and prints it in the same
// row/column structure, so the output must stay readable in a terminal log.
#pragma once

#include <string>
#include <vector>

namespace ftfft {

/// Builds a fixed set of columns, collects rows, prints with alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders to a string with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Renders directly to stdout.
  void print() const;

  /// Formats a double with the given precision (fixed notation).
  static std::string fixed(double v, int precision = 2);

  /// Formats a double in scientific notation (for error magnitudes).
  static std::string sci(double v, int precision = 2);

  /// Formats a percentage with two decimals, e.g. "12.34%".
  static std::string percent(double fraction, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftfft
