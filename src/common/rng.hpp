// Deterministic random number generation for experiments and tests.
//
// Everything that injects faults or generates workloads must be reproducible
// from a single seed, so the library carries its own small PRNG
// (xoshiro256++) instead of depending on the unspecified std::mt19937
// streams. Distribution helpers cover exactly the inputs used in the paper:
// U(-1,1) and N(0,1) complex vectors (section 9.4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/complex.hpp"

namespace ftfft {

/// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the four state words from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0,1).
  double next_double() noexcept;

  /// Uniform double in [lo,hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps state trivially
  /// serializable and fork-consistent).
  double normal() noexcept;

  /// Uniform integer in [0,n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Forks an independent stream: hash-mixes the child index into the state.
  /// Used to give each simulated rank / each campaign run its own stream.
  [[nodiscard]] Rng fork(std::uint64_t child) const noexcept;

 private:
  std::uint64_t s_[4];
};

/// Kinds of random input the paper evaluates (section 9.4).
enum class InputDistribution {
  kUniform,  ///< re/im each U(-1, 1)
  kNormal,   ///< re/im each N(0, 1)
};

/// Fills a complex vector from the given distribution.
void fill_random(cplx* data, std::size_t n, InputDistribution dist, Rng& rng);

/// Convenience allocation + fill.
std::vector<cplx> random_vector(std::size_t n, InputDistribution dist,
                                std::uint64_t seed);

/// Population standard deviation of the real/imag components of the given
/// distribution; feeds the round-off model (sigma_0 in section 8).
double component_sigma(InputDistribution dist) noexcept;

}  // namespace ftfft
