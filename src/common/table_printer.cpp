#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ftfft {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ftfft
