#include "common/math_util.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ftfft {

cplx omega(std::size_t n, std::uint64_t k) noexcept {
  // Reduce k mod n first: keeps the argument to sin/cos small, which matters
  // for the accuracy of large twiddle tables.
  const double ang =
      -2.0 * std::numbers::pi * static_cast<double>(k % n) /
      static_cast<double>(n);
  return {std::cos(ang), std::sin(ang)};
}

cplx omega3() noexcept {
  // exp(-2 pi i / 3) = -1/2 - sqrt(3)/2 i, written with exact constants so
  // omega3_pow cycles without drift.
  constexpr double half_sqrt3 = 0.8660254037844386467637231707529362;
  return {-0.5, -half_sqrt3};
}

cplx omega3_pow(std::uint64_t k) noexcept {
  constexpr double half_sqrt3 = 0.8660254037844386467637231707529362;
  switch (k % 3) {
    case 0:
      return {1.0, 0.0};
    case 1:
      return {-0.5, -half_sqrt3};
    default:
      return {-0.5, half_sqrt3};
  }
}

std::pair<std::size_t, std::size_t> balanced_split(std::size_t n) {
  if (n < 4) throw std::invalid_argument("balanced_split: n must be >= 4");
  const auto root = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  // Search downward from sqrt(n) for the largest divisor k <= sqrt(n); the
  // cofactor m = n/k is then the smallest >= sqrt(n).
  for (std::size_t k = root; k >= 2; --k) {
    if (n % k == 0) return {n / k, k};
  }
  throw std::invalid_argument("balanced_split: n is prime, no split exists");
}

std::pair<std::size_t, std::size_t> square_split(std::size_t n) {
  if (n == 0) throw std::invalid_argument("square_split: n must be > 0");
  // Find the largest k with k*k dividing n; r = n / k^2.
  std::size_t k = 1;
  for (std::size_t c = 2; c * c <= n; ++c) {
    while (n % (c * c) == 0) {
      // Pull one factor c into k per c*c pulled out of n.
      k *= c;
      n /= c * c;
    }
  }
  return {k, n};
}

std::vector<std::size_t> factorize(std::size_t n) {
  std::vector<std::size_t> factors;
  for (std::size_t p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

}  // namespace ftfft
