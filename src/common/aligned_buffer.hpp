// Cache-line aligned, zero-initialized buffer for FFT working sets.
//
// FFT butterflies and checksum dot products stream long contiguous ranges;
// 64-byte alignment keeps complex<double> pairs on cache-line boundaries and
// lets the compiler emit aligned vector loads. The buffer is intentionally a
// thin RAII wrapper (no resize-with-copy) because every working set in the
// library is sized once per plan.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace ftfft {

/// Fixed-capacity aligned array. Move-only.
template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = round_up(n * sizeof(T));
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    for (std::size_t i = 0; i < n; ++i) new (data_ + i) T{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() noexcept {
    if (data_ != nullptr) {
      for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
      std::free(data_);
      data_ = nullptr;
    }
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ftfft
