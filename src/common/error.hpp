// Error taxonomy for the fault-tolerant FFT library.
//
// Ordinary misuse (bad sizes, null spans) throws std::invalid_argument.
// Fault-tolerance gives up only when the single-fault-per-unit model is
// violated (e.g. a verification keeps failing after max_retries); that is an
// UncorrectableError so callers can distinguish "your input is wrong" from
// "the machine is broken beyond the fault model".
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace ftfft {

/// Thrown when detection succeeded but correction is impossible within the
/// configured retry budget or the single-fault assumption.
class UncorrectableError : public std::runtime_error {
 public:
  explicit UncorrectableError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a plan is executed with mismatched geometry.
class PlanMismatchError : public std::invalid_argument {
 public:
  explicit PlanMismatchError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Carried by batch-report lanes that were skipped because the submission
/// was cancelled (engine::BatchTicket::cancel) before they started. Not a
/// machine fault and not caller misuse — its own branch of the taxonomy.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by engine admission control when a bounded work queue
/// (FTFFT_ENGINE_QUEUE_CAP) cannot accept a submission: immediately when the
/// admission timeout is zero, or after the optional admission timeout
/// elapsed without space freeing up. try_submit_* report the same condition
/// as an empty optional instead of throwing. Backpressure, not a machine
/// fault: the caller should retry later, shed load upstream, or submit at a
/// higher priority.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Carried by batch-report lanes whose submission deadline
/// (engine::SubmitOptions::deadline) passed before the lane started
/// executing. The engine never silently runs work late: once the deadline
/// expires, every not-yet-started lane of the job fails fast with this
/// error; lanes already executing run to completion.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by the parallel runtime when a simulated rank fails outright
/// (NetworkModel::fail_rank — a modeled node loss, not a data fault). The
/// engine-sharded path can absorb a bounded number of these by restarting
/// the transform from its input (ParallelOptions::max_rank_restarts); the
/// thread-per-rank reference path always propagates it.
class RankFailedError : public std::runtime_error {
 public:
  explicit RankFailedError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
inline void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}
}  // namespace detail

}  // namespace ftfft
