// Shared LRU-bounded cache for immutable, expensive-to-build plan objects.
//
// Four process-wide caches used to grow monotonically: the mixed-radix plan
// tree (fft::make_plan), the iterative in-place plan
// (fft::InplaceRadix2Plan::get), the checksum weight vectors, and the ABFT
// ProtectionPlan. A long-lived server transforming many distinct sizes would
// pin all of them forever. PlanRegistry gives every one of those caches the
// same contract: thread-safe get-or-build, least-recently-used eviction
// beyond a configurable capacity (FTFFT_PLAN_CACHE_CAP by default, see
// common/env.hpp), and hit/miss/eviction counters for tests and monitoring.
//
// Values are handed out as shared_ptr<const V>: eviction only drops the
// registry's reference, so a plan still executing somewhere stays alive
// until its last user releases it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ftfft {

/// One cache's counters at a point in time (see plan_cache_stats()).
struct PlanCacheStats {
  const char* name = "";      ///< stable identifier, e.g. "protection-plan"
  std::size_t size = 0;       ///< entries currently cached
  std::size_t capacity = 0;   ///< LRU bound (0 = unbounded)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Snapshot of every named process-wide plan cache, sorted by name. This is
/// the tuning feed for FTFFT_PLAN_CACHE_CAP: a cache with steady evictions
/// and a hit rate below its neighbors is thrashing its bound.
std::vector<PlanCacheStats> plan_cache_stats();

namespace detail {
/// Registers a cache's snapshot callback for plan_cache_stats(). Called
/// from pre-main initializers in the modules that own a cache, so the
/// callback must be lazy: it may construct the registry when invoked (and
/// thereby latch FTFFT_PLAN_CACHE_CAP), but registration itself must not —
/// applications set the env knob as late as the top of main(). There is no
/// unregister; registered caches are immortal function-local statics.
void register_plan_cache(std::function<PlanCacheStats()> snapshot);
}  // namespace detail

/// Thread-safe LRU map from Key to shared immutable Value.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class PlanRegistry {
 public:
  /// capacity 0 = unbounded (the pre-eviction behavior).
  explicit PlanRegistry(std::size_t capacity) : capacity_(capacity) {}

  /// Counters snapshot under `name` for plan_cache_stats().
  [[nodiscard]] PlanCacheStats snapshot(const char* name) const {
    std::scoped_lock lock(mu_);
    return {name, lru_.size(), capacity_, hits_, misses_, evictions_};
  }

  /// Returns the cached value for `key`, building it via `build()` on a
  /// miss. `build` must return std::shared_ptr<const Value> and runs
  /// *outside* the registry lock (plan construction can be slow); two
  /// threads missing the same key concurrently may both build, in which
  /// case the first insertion wins and the loser's copy is discarded —
  /// sound because plans are immutable.
  template <typename Builder>
  std::shared_ptr<const Value> get_or_build(const Key& key, Builder&& build) {
    {
      std::scoped_lock lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return it->second->second;
      }
      ++misses_;
    }
    std::shared_ptr<const Value> built = build();
    std::scoped_lock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(key, built);
    map_.emplace(key, lru_.begin());
    evict_locked();
    return built;
  }

  void set_capacity(std::size_t capacity) {
    std::scoped_lock lock(mu_);
    capacity_ = capacity;
    evict_locked();
  }

  [[nodiscard]] std::size_t capacity() const {
    std::scoped_lock lock(mu_);
    return capacity_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return lru_.size();
  }

  [[nodiscard]] std::uint64_t hits() const {
    std::scoped_lock lock(mu_);
    return hits_;
  }

  [[nodiscard]] std::uint64_t misses() const {
    std::scoped_lock lock(mu_);
    return misses_;
  }

  [[nodiscard]] std::uint64_t evictions() const {
    std::scoped_lock lock(mu_);
    return evictions_;
  }

  void clear() {
    std::scoped_lock lock(mu_);
    lru_.clear();
    map_.clear();
  }

 private:
  using Entry = std::pair<Key, std::shared_ptr<const Value>>;

  void evict_locked() {
    if (capacity_ == 0) return;
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ftfft
