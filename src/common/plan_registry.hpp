// Shared LRU-bounded cache for immutable, expensive-to-build plan objects.
//
// Process-wide caches (the mixed-radix plan tree, the iterative in-place
// plan, the checksum weight and syndrome node vectors, the ABFT protection
// plans) used to grow monotonically. A long-lived server transforming many
// distinct sizes would pin all of them forever. PlanRegistry gives every one
// of those caches the same contract: thread-safe get-or-build,
// least-recently-used eviction beyond a configurable capacity
// (FTFFT_PLAN_CACHE_CAP by default, see common/env.hpp), and
// hit/miss/eviction counters for tests and monitoring.
//
// Values are handed out as shared_ptr<const V>: eviction only drops the
// registry's reference, so a plan still executing somewhere stays alive
// until its last user releases it.
//
// Plan-state protection (see common/seal.hpp): a registry constructed with a
// sealer hashes every value at insertion and can re-verify the bytes later —
// on an acquire cadence (set_verify_interval, FTFFT_PLAN_VERIFY) and in an
// explicit scrub() sweep. A seal mismatch means the cached bytes changed
// after build (a hardware upset in long-lived plan memory); the entry is
// evicted and the next acquire rebuilds it instead of serving poison.
// Detected corruptions and verification sweeps are counted in
// PlanCacheStats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ftfft {

/// One cache's counters at a point in time (see plan_cache_stats()).
struct PlanCacheStats {
  const char* name = "";      ///< stable identifier, e.g. "protection-plan"
  std::size_t size = 0;       ///< entries currently cached
  std::size_t capacity = 0;   ///< LRU bound (0 = unbounded)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t verifications = 0;  ///< seal re-checks performed
  std::uint64_t corruptions = 0;    ///< seal mismatches (entries evicted)
};

/// Snapshot of every named process-wide plan cache, sorted by name. This is
/// the tuning feed for FTFFT_PLAN_CACHE_CAP: a cache with steady evictions
/// and a hit rate below its neighbors is thrashing its bound.
std::vector<PlanCacheStats> plan_cache_stats();

/// Re-verifies the integrity seal of every entry in every sealed plan cache,
/// evicting corrupted entries so the next acquire rebuilds them. Returns the
/// number of corrupted entries evicted. Safe to call from a background
/// scrubber thread; each cache is swept under its own lock.
std::size_t scrub_plan_caches();

/// Sets the verify-on-acquire interval of every registered cache: an entry's
/// seal is re-checked every `interval`-th acquire (1 = every acquire, 0 =
/// off). Overrides the FTFFT_PLAN_VERIFY default process-wide.
void set_plan_verify_interval(std::size_t interval);

namespace detail {
/// A cache's registration record for the process-wide sweeps above. Only
/// `snapshot` is required; caches without a sealer leave the others null.
struct PlanCacheHooks {
  std::function<PlanCacheStats()> snapshot;
  std::function<std::size_t()> scrub;
  std::function<void(std::size_t)> set_verify_interval;
};

/// Registers a cache for plan_cache_stats() / scrub_plan_caches(). Called
/// from pre-main initializers in the modules that own a cache, so the
/// callbacks must be lazy: they may construct the registry when invoked (and
/// thereby latch FTFFT_PLAN_CACHE_CAP), but registration itself must not —
/// applications set the env knobs as late as the top of main(). There is no
/// unregister; registered caches are immortal function-local statics.
void register_plan_cache(PlanCacheHooks hooks);
void register_plan_cache(std::function<PlanCacheStats()> snapshot);
}  // namespace detail

/// Thread-safe LRU map from Key to shared immutable Value.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class PlanRegistry {
 public:
  /// Hashes a value's immutable payload bytes at insertion time; re-run to
  /// verify. Must be pure (same value => same seal).
  using Sealer = std::function<std::uint64_t(const Value&)>;

  /// capacity 0 = unbounded (the pre-eviction behavior). `sealer` enables
  /// plan-state verification; `verify_interval` defaults from
  /// FTFFT_PLAN_VERIFY (common/env.hpp) and is ignored without a sealer.
  explicit PlanRegistry(std::size_t capacity, Sealer sealer = nullptr,
                        std::size_t verify_interval = SIZE_MAX);

  /// Counters snapshot under `name` for plan_cache_stats().
  [[nodiscard]] PlanCacheStats snapshot(const char* name) const {
    std::scoped_lock lock(mu_);
    return {name,    lru_.size(), capacity_,      hits_,
            misses_, evictions_,  verifications_, corruptions_};
  }

  /// Returns the cached value for `key`, building it via `build()` on a
  /// miss. `build` must return std::shared_ptr<const Value> and runs
  /// *outside* the registry lock (plan construction can be slow); two
  /// threads missing the same key concurrently may both build, in which
  /// case the first insertion wins and the loser's copy is discarded —
  /// sound because plans are immutable. With a sealer and a nonzero verify
  /// interval, a hit re-checks the entry's seal on the configured cadence;
  /// a mismatch evicts the corrupted entry and falls through to a rebuild,
  /// so the caller always receives verified-or-fresh state.
  template <typename Builder>
  std::shared_ptr<const Value> get_or_build(const Key& key, Builder&& build) {
    {
      std::scoped_lock lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        if (!verify_entry_locked(it)) {
          ++misses_;  // corrupted: evicted below as if never cached
        } else {
          lru_.splice(lru_.begin(), lru_, it->second);
          ++hits_;
          return it->second->value;
        }
      } else {
        ++misses_;
      }
    }
    std::shared_ptr<const Value> built = build();
    const std::uint64_t seal = sealer_ ? sealer_(*built) : 0;
    std::scoped_lock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    lru_.push_front(Entry{key, std::move(built), seal, 0});
    map_.emplace(key, lru_.begin());
    evict_locked();
    return lru_.front().value;
  }

  /// Re-verifies every entry's seal, evicting corrupted ones. Returns the
  /// number evicted. No-op (returns 0) without a sealer.
  std::size_t scrub() {
    if (!sealer_) return 0;
    std::scoped_lock lock(mu_);
    std::size_t evicted = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      ++verifications_;
      if (sealer_(*it->value) != it->seal) {
        map_.erase(it->key);
        it = lru_.erase(it);
        ++corruptions_;
        ++evicted;
      } else {
        it->acquires_since_verify = 0;
        ++it;
      }
    }
    return evicted;
  }

  /// Seal re-check cadence on acquire: every `interval`-th hit of an entry
  /// (1 = every acquire). 0 disables acquire-time verification (scrub()
  /// still works).
  void set_verify_interval(std::size_t interval) {
    std::scoped_lock lock(mu_);
    verify_interval_ = interval;
  }

  [[nodiscard]] std::size_t verify_interval() const {
    std::scoped_lock lock(mu_);
    return verify_interval_;
  }

  void set_capacity(std::size_t capacity) {
    std::scoped_lock lock(mu_);
    capacity_ = capacity;
    evict_locked();
  }

  [[nodiscard]] std::size_t capacity() const {
    std::scoped_lock lock(mu_);
    return capacity_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return lru_.size();
  }

  [[nodiscard]] std::uint64_t hits() const {
    std::scoped_lock lock(mu_);
    return hits_;
  }

  [[nodiscard]] std::uint64_t misses() const {
    std::scoped_lock lock(mu_);
    return misses_;
  }

  [[nodiscard]] std::uint64_t evictions() const {
    std::scoped_lock lock(mu_);
    return evictions_;
  }

  [[nodiscard]] std::uint64_t corruptions() const {
    std::scoped_lock lock(mu_);
    return corruptions_;
  }

  [[nodiscard]] std::uint64_t verifications() const {
    std::scoped_lock lock(mu_);
    return verifications_;
  }

  void clear() {
    std::scoped_lock lock(mu_);
    lru_.clear();
    map_.clear();
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::uint64_t seal = 0;
    std::size_t acquires_since_verify = 0;
  };
  using EntryIter = typename std::list<Entry>::iterator;

  /// Returns false (and evicts the entry) when its seal no longer matches.
  /// Called under mu_; hashing under the lock is acceptable because
  /// verification is off by default and campaigns use small plans.
  bool verify_entry_locked(
      typename std::unordered_map<Key, EntryIter, Hash>::iterator it) {
    if (!sealer_ || verify_interval_ == 0) return true;
    Entry& e = *it->second;
    if (++e.acquires_since_verify < verify_interval_) return true;
    e.acquires_since_verify = 0;
    ++verifications_;
    if (sealer_(*e.value) == e.seal) return true;
    ++corruptions_;
    lru_.erase(it->second);
    map_.erase(it);
    return false;
  }

  void evict_locked() {
    if (capacity_ == 0) return;
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mu_;
  std::size_t capacity_;
  Sealer sealer_;
  std::size_t verify_interval_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, EntryIter, Hash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t verifications_ = 0;
  std::uint64_t corruptions_ = 0;
};

namespace detail {
/// FTFFT_PLAN_VERIFY as latched at first registry construction (see
/// common/env.hpp); separated so the template constructor below stays
/// header-only without including env.hpp everywhere.
std::size_t default_plan_verify_interval();
}  // namespace detail

template <typename Key, typename Value, typename Hash>
PlanRegistry<Key, Value, Hash>::PlanRegistry(std::size_t capacity,
                                             Sealer sealer,
                                             std::size_t verify_interval)
    : capacity_(capacity),
      sealer_(std::move(sealer)),
      verify_interval_(verify_interval == SIZE_MAX
                           ? detail::default_plan_verify_interval()
                           : verify_interval) {}

}  // namespace ftfft
