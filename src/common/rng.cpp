#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ftfft {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // A zero state would be a fixed point; splitmix64 cannot produce all-zero
  // words from any seed, but keep the guard for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() noexcept {
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = next_double();
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::fork(std::uint64_t child) const noexcept {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ (child * 0xA24BAED4963EE407ULL);
  return Rng(splitmix64(mix));
}

void fill_random(cplx* data, std::size_t n, InputDistribution dist, Rng& rng) {
  switch (dist) {
    case InputDistribution::kUniform:
      for (std::size_t i = 0; i < n; ++i)
        data[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      break;
    case InputDistribution::kNormal:
      for (std::size_t i = 0; i < n; ++i) data[i] = {rng.normal(), rng.normal()};
      break;
  }
}

std::vector<cplx> random_vector(std::size_t n, InputDistribution dist,
                                std::uint64_t seed) {
  std::vector<cplx> v(n);
  Rng rng(seed);
  fill_random(v.data(), n, dist, rng);
  return v;
}

double component_sigma(InputDistribution dist) noexcept {
  switch (dist) {
    case InputDistribution::kUniform:
      // Var of U(-1,1) is (b-a)^2/12 = 1/3.
      return 0.5773502691896258;
    case InputDistribution::kNormal:
      return 1.0;
  }
  return 1.0;
}

}  // namespace ftfft
