// Integrity seals for long-lived immutable plan state.
//
// Cached plan objects (twiddle packs, checksum weight vectors, permutation
// tables) are written once at build time and then only read — so unlike the
// data-path checksums, which must tolerate legitimate round-off, a plan seal
// can demand exact byte equality. FNV-1a over the raw bytes is enough: it is
// deterministic, backend-independent, detects any single bit flip (and all
// realistic burst patterns), and hashes at memory speed, which is what a
// scrub sweep over megabytes of twiddles needs.
//
// Plans that reference shared sub-vectors include those bytes in their own
// seal (a "transitive" seal): a corrupted rA vector therefore invalidates
// every plan that holds it, and the rebuild re-acquires the sub-vector
// through its own verifying cache, which detects and rebuilds the vector
// itself. Composition is sound as long as verification is enabled on every
// registry (see PlanRegistry::set_verify_interval / scrub_plan_caches()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftfft {

inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// FNV-1a over `bytes` bytes starting at `data`, chained from `h`.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnv1aBasis) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

/// The byte spans that make up a plan's immutable state. Plans expose a
/// `collect_state(StateSpans&)` that appends every cached payload; the same
/// span list serves sealing, verification, and fault-campaign targeting
/// (Phase::kPlanState addresses spans by their position in this list).
struct StateSpans {
  struct Span {
    const void* data;
    std::size_t bytes;
  };
  std::vector<Span> spans;

  void add(const void* data, std::size_t bytes) {
    if (data != nullptr && bytes > 0) spans.push_back({data, bytes});
  }
  template <typename T>
  void add_vec(const std::vector<T>& v) {
    add(v.data(), v.size() * sizeof(T));
  }
};

/// Chained FNV-1a over every span in order. Span boundaries are not mixed
/// into the hash; the span list of an immutable plan is itself immutable, so
/// boundary ambiguity cannot produce a false match in practice.
inline std::uint64_t seal_spans(const StateSpans& s) noexcept {
  std::uint64_t h = kFnv1aBasis;
  for (const auto& sp : s.spans) h = fnv1a(sp.data, sp.bytes, h);
  return h;
}

}  // namespace ftfft
