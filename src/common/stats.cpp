#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ftfft {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::fraction_above(double threshold) const noexcept {
  if (samples_.empty()) return 0.0;
  std::size_t c = 0;
  for (double s : samples_)
    if (s > threshold) ++c;
  return static_cast<double>(c) / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

double SampleSet::max() const noexcept {
  double worst = 0.0;
  for (double s : samples_) worst = std::max(worst, s);
  return worst;
}

}  // namespace ftfft
