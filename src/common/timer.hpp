// Wall-clock and per-thread CPU timers.
//
// The parallel benchmarks run many simulated ranks as threads on however few
// physical cores the host has, so wall-clock time cannot attribute work to a
// rank. ThreadCpuTimer reads CLOCK_THREAD_CPUTIME_ID, which charges each
// rank exactly the cycles its thread consumed; the simulated-makespan model
// in src/parallel builds on it.
#pragma once

#include <cstdint>

namespace ftfft {

/// Monotonic wall-clock stopwatch, seconds.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restarts the stopwatch.
  void reset();

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed() const;

 private:
  std::int64_t start_ns_ = 0;
};

/// Per-thread CPU-time stopwatch, seconds. Only counts cycles consumed by
/// the calling thread, so concurrent threads on one core do not inflate each
/// other's measurements.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }

  void reset();
  [[nodiscard]] double elapsed() const;

 private:
  std::int64_t start_ns_ = 0;
};

}  // namespace ftfft
