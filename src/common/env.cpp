#include "common/env.hpp"

#include <cstdlib>

namespace ftfft {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::size_t>(v);
}

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return v;
}

std::size_t plan_cache_capacity() {
  // Generous default: a serving process juggling 64 distinct
  // (size, options) combinations per cache is already unusual, and each
  // entry is O(n) memory at most.
  static const std::size_t cap = env_size("FTFFT_PLAN_CACHE_CAP", 64);
  return cap;
}

long bench_scale_shift() { return env_long("FTFFT_BENCH_SCALE", 0); }

std::size_t bench_runs_percent() {
  return env_size("FTFFT_BENCH_RUNS", 100);
}

std::size_t scaled_runs(std::size_t base) {
  const std::size_t pct = bench_runs_percent();
  const std::size_t scaled = base * pct / 100;
  return scaled == 0 ? 1 : scaled;
}

std::size_t scaled_size(std::size_t base, std::size_t min_size) {
  const long shift = bench_scale_shift();
  std::size_t n = base;
  if (shift >= 0) {
    n = base << shift;
  } else {
    n = base >> (-shift);
  }
  return n < min_size ? min_size : n;
}

}  // namespace ftfft
