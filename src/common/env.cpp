#include "common/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

namespace ftfft {

namespace {

// A typo'd knob (FTFFT_COBRA_TILE_BITS=4x, an out-of-range value, ...) used
// to be silently truncated by strtoull and could misconfigure a kernel;
// now it falls back to the default and warns once per variable so the
// message doesn't flood per-plan readers.
void warn_bad_value(const char* name, const char* raw, const char* why) {
  static std::mutex mu;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mu);
  if (warned.insert(name).second) {
    std::fprintf(stderr,
                 "ftfft: ignoring %s=\"%s\" (%s); using the default\n", name,
                 raw, why);
  }
}

}  // namespace

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // strtoull accepts a leading '-' and wraps the value; reject it up front.
  const char* p = raw;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '-') {
    warn_bad_value(name, raw, "negative value for a non-negative knob");
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) {
    warn_bad_value(name, raw, "not a number");
    return fallback;
  }
  if (*end != '\0') {
    warn_bad_value(name, raw, "trailing garbage after the number");
    return fallback;
  }
  if (errno == ERANGE || v > static_cast<unsigned long long>(
                                 static_cast<std::size_t>(-1))) {
    warn_bad_value(name, raw, "value out of range");
    return fallback;
  }
  return static_cast<std::size_t>(v);
}

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw) {
    warn_bad_value(name, raw, "not a number");
    return fallback;
  }
  if (*end != '\0') {
    warn_bad_value(name, raw, "trailing garbage after the number");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_bad_value(name, raw, "value out of range");
    return fallback;
  }
  return v;
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  if (std::strcmp(raw, "1") == 0 || std::strcmp(raw, "on") == 0 ||
      std::strcmp(raw, "true") == 0 || std::strcmp(raw, "yes") == 0) {
    return true;
  }
  if (std::strcmp(raw, "0") == 0 || std::strcmp(raw, "off") == 0 ||
      std::strcmp(raw, "false") == 0 || std::strcmp(raw, "no") == 0) {
    return false;
  }
  warn_bad_value(name, raw, "not a boolean (1/0/on/off/true/false/yes/no)");
  return fallback;
}

std::size_t plan_cache_capacity() {
  // Generous default: a serving process juggling 64 distinct
  // (size, options) combinations per cache is already unusual, and each
  // entry is O(n) memory at most.
  static const std::size_t cap = env_size("FTFFT_PLAN_CACHE_CAP", 64);
  return cap;
}

long bench_scale_shift() { return env_long("FTFFT_BENCH_SCALE", 0); }

std::size_t bench_runs_percent() {
  return env_size("FTFFT_BENCH_RUNS", 100);
}

std::size_t scaled_runs(std::size_t base) {
  const std::size_t pct = bench_runs_percent();
  const std::size_t scaled = base * pct / 100;
  return scaled == 0 ? 1 : scaled;
}

std::size_t scaled_size(std::size_t base, std::size_t min_size) {
  const long shift = bench_scale_shift();
  std::size_t n = base;
  if (shift >= 0) {
    n = base << shift;
  } else {
    n = base >> (-shift);
  }
  return n < min_size ? min_size : n;
}

}  // namespace ftfft
