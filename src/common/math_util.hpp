// Small integer/complex math utilities shared by planner, checksums and the
// ABFT orchestrators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/complex.hpp"

namespace ftfft {

/// True iff n is a power of two (n >= 1).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// floor(log2(n)) for n >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::size_t n) noexcept {
  unsigned r = 0;
  while (n >>= 1) ++r;
  return r;
}

/// Smallest power of two >= n.
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// exp(-2*pi*i * k / n): the DFT root convention used throughout (forward
/// transform has negative exponent, matching FFTW and the paper).
[[nodiscard]] cplx omega(std::size_t n, std::uint64_t k) noexcept;

/// Primitive cube root of unity omega_3 = exp(-2*pi*i/3). The computational
/// checksum weight vector of Wang & Jha (and the paper) is r_j = omega_3^j.
[[nodiscard]] cplx omega3() noexcept;

/// omega_3^k for arbitrary k (period 3, exact values, no trig).
[[nodiscard]] cplx omega3_pow(std::uint64_t k) noexcept;

/// Splits n into (m, k) with n = m*k, the "highest level of decomposition"
/// used by the online ABFT scheme: both factors as close to sqrt(n) as
/// possible, preferring m >= k. For a power of two this is the usual
/// (2^ceil(b/2), 2^floor(b/2)). Throws std::invalid_argument if n < 4 or n
/// is prime (no nontrivial split exists).
[[nodiscard]] std::pair<std::size_t, std::size_t> balanced_split(
    std::size_t n);

/// Splits n into (k, r) with n = k*k*r and r minimal (r == 1 when n is an
/// even power of its factors). Used by the parallel in-place FFT-2 plan
/// (paper section 5: "N/p = r * k^2"). Only supports n whose square-free
/// part is small; for a power of two r is 1 or 2.
[[nodiscard]] std::pair<std::size_t, std::size_t> square_split(std::size_t n);

/// Prime factorization in ascending order (trial division; n is a transform
/// size, never astronomically large).
[[nodiscard]] std::vector<std::size_t> factorize(std::size_t n);

}  // namespace ftfft
