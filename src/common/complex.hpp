// Complex scalar type and small arithmetic kernels shared by every module.
//
// The whole library computes in double-precision IEEE-754 complex arithmetic;
// std::complex<double> is the canonical scalar. Helper kernels below exist so
// hot loops can avoid the (historically) conservative codegen of operator*
// for std::complex without giving up strict IEEE semantics.
#pragma once

#include <complex>
#include <cstddef>

namespace ftfft {

/// Canonical complex scalar used across the library.
using cplx = std::complex<double>;

/// Multiply two complex numbers with the plain 4-mul/2-add schoolbook
/// formula. Equivalent to operator* under -fno-fast-math but easier for the
/// optimizer to keep in registers inside manually unrolled codelets.
[[nodiscard]] inline cplx cmul(cplx a, cplx b) noexcept {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

/// a * conj(b).
[[nodiscard]] inline cplx cmul_conj(cplx a, cplx b) noexcept {
  return {a.real() * b.real() + a.imag() * b.imag(),
          a.imag() * b.real() - a.real() * b.imag()};
}

/// Multiply by the imaginary unit: i*a.
[[nodiscard]] inline cplx mul_i(cplx a) noexcept {
  return {-a.imag(), a.real()};
}

/// Multiply by -i.
[[nodiscard]] inline cplx mul_neg_i(cplx a) noexcept {
  return {a.imag(), -a.real()};
}

/// Squared magnitude |a|^2 without the sqrt of std::abs.
[[nodiscard]] inline double norm2(cplx a) noexcept {
  return a.real() * a.real() + a.imag() * a.imag();
}

/// Chebyshev-style max norm of the componentwise difference; used by tests
/// and by the fault-coverage experiments (paper Table 6 uses ||.||_inf).
[[nodiscard]] inline double inf_diff(const cplx* a, const cplx* b,
                                     std::size_t n) noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dr = a[i].real() - b[i].real();
    const double di = a[i].imag() - b[i].imag();
    const double m = dr * dr + di * di;
    if (m > worst) worst = m;
  }
  return worst == 0.0 ? 0.0 : std::sqrt(worst);
}

/// ||a||_inf over a complex vector.
[[nodiscard]] inline double inf_norm(const cplx* a, std::size_t n) noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = norm2(a[i]);
    if (m > worst) worst = m;
  }
  return worst == 0.0 ? 0.0 : std::sqrt(worst);
}

}  // namespace ftfft
