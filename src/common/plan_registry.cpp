#include "common/plan_registry.hpp"

#include <algorithm>
#include <cstring>

namespace ftfft {

namespace {

struct CacheList {
  std::mutex mu;
  std::vector<std::function<PlanCacheStats()>> snapshots;
};

// Meyers singleton so registration from any static initializer is safe
// regardless of translation-unit order.
CacheList& cache_list() {
  static CacheList instance;
  return instance;
}

}  // namespace

namespace detail {

void register_plan_cache(std::function<PlanCacheStats()> snapshot) {
  CacheList& list = cache_list();
  std::scoped_lock lock(list.mu);
  list.snapshots.push_back(std::move(snapshot));
}

}  // namespace detail

std::vector<PlanCacheStats> plan_cache_stats() {
  std::vector<std::function<PlanCacheStats()>> snapshots;
  {
    CacheList& list = cache_list();
    std::scoped_lock lock(list.mu);
    snapshots = list.snapshots;
  }
  std::vector<PlanCacheStats> stats;
  stats.reserve(snapshots.size());
  for (const auto& snap : snapshots) stats.push_back(snap());
  std::sort(stats.begin(), stats.end(),
            [](const PlanCacheStats& a, const PlanCacheStats& b) {
              return std::strcmp(a.name, b.name) < 0;
            });
  return stats;
}

}  // namespace ftfft
