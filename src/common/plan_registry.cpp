#include "common/plan_registry.hpp"

#include <algorithm>
#include <cstring>

#include "common/env.hpp"

namespace ftfft {

namespace {

struct CacheList {
  std::mutex mu;
  std::vector<detail::PlanCacheHooks> caches;
};

// Meyers singleton so registration from any static initializer is safe
// regardless of translation-unit order.
CacheList& cache_list() {
  static CacheList instance;
  return instance;
}

std::vector<detail::PlanCacheHooks> cache_hooks_copy() {
  CacheList& list = cache_list();
  std::scoped_lock lock(list.mu);
  return list.caches;
}

}  // namespace

namespace detail {

void register_plan_cache(PlanCacheHooks hooks) {
  CacheList& list = cache_list();
  std::scoped_lock lock(list.mu);
  list.caches.push_back(std::move(hooks));
}

void register_plan_cache(std::function<PlanCacheStats()> snapshot) {
  register_plan_cache(PlanCacheHooks{std::move(snapshot), nullptr, nullptr});
}

std::size_t default_plan_verify_interval() {
  // Latched once: re-hashing megabytes of twiddles on every acquire is a
  // measurable tax, so acquire-time verification is opt-in (scrub sweeps
  // and fault campaigns turn it on).
  static const std::size_t interval = env_size("FTFFT_PLAN_VERIFY", 0);
  return interval;
}

}  // namespace detail

std::vector<PlanCacheStats> plan_cache_stats() {
  std::vector<PlanCacheStats> stats;
  for (const auto& cache : cache_hooks_copy()) {
    if (cache.snapshot) stats.push_back(cache.snapshot());
  }
  std::sort(stats.begin(), stats.end(),
            [](const PlanCacheStats& a, const PlanCacheStats& b) {
              return std::strcmp(a.name, b.name) < 0;
            });
  return stats;
}

std::size_t scrub_plan_caches() {
  std::size_t evicted = 0;
  for (const auto& cache : cache_hooks_copy()) {
    if (cache.scrub) evicted += cache.scrub();
  }
  return evicted;
}

void set_plan_verify_interval(std::size_t interval) {
  for (const auto& cache : cache_hooks_copy()) {
    if (cache.set_verify_interval) cache.set_verify_interval(interval);
  }
}

}  // namespace ftfft
