#include "common/timer.hpp"

#include <ctime>

namespace ftfft {
namespace {

std::int64_t now_ns(clockid_t clock) {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

void WallTimer::reset() { start_ns_ = now_ns(CLOCK_MONOTONIC); }

double WallTimer::elapsed() const {
  return static_cast<double>(now_ns(CLOCK_MONOTONIC) - start_ns_) * 1e-9;
}

void ThreadCpuTimer::reset() { start_ns_ = now_ns(CLOCK_THREAD_CPUTIME_ID); }

double ThreadCpuTimer::elapsed() const {
  return static_cast<double>(now_ns(CLOCK_THREAD_CPUTIME_ID) - start_ns_) *
         1e-9;
}

}  // namespace ftfft
