#include "fault/injector.hpp"

#include "fault/bitflip.hpp"

namespace ftfft::fault {

std::size_t Injector::apply(Phase phase, std::size_t unit, cplx* data,
                            std::size_t len, std::size_t stride) {
  if (len == 0 || data == nullptr) return 0;
  std::size_t applied = 0;
  for (Entry& e : faults_) {
    if (!e.armed || e.spec.phase != phase || e.spec.unit != unit) continue;
    const std::size_t idx = e.spec.element < len ? e.spec.element : len - 1;
    cplx& victim = data[idx * stride];
    switch (e.spec.kind) {
      case Kind::kAddConstant:
        victim += e.spec.value;
        break;
      case Kind::kSetValue:
        victim = e.spec.value;
        break;
      case Kind::kFlipBit:
        if (e.spec.imag_part) {
          victim = {victim.real(), flip_bit(victim.imag(), e.spec.bit)};
        } else {
          victim = {flip_bit(victim.real(), e.spec.bit), victim.imag()};
        }
        break;
    }
    e.armed = false;
    ++applied;
  }
  fired_ += applied;
  return applied;
}

bool Injector::pending(Phase phase) const noexcept {
  for (const Entry& e : faults_)
    if (e.armed && e.spec.phase == phase) return true;
  return false;
}

std::size_t Injector::pending_count() const noexcept {
  std::size_t n = 0;
  for (const Entry& e : faults_)
    if (e.armed) ++n;
  return n;
}

void Injector::clear() {
  faults_.clear();
  fired_ = 0;
}

}  // namespace ftfft::fault
