// Bit-level manipulation of IEEE-754 doubles for memory-fault simulation.
#pragma once

#include <cstdint>

namespace ftfft::fault {

/// Returns `v` with bit `bit` (0 = mantissa LSB, 63 = sign) flipped.
[[nodiscard]] double flip_bit(double v, unsigned bit) noexcept;

/// True for bit positions whose flip typically produces a visible error in
/// unit-scale data: upper mantissa, exponent and sign (the paper's Table 6
/// flips "one higher bit" because low mantissa flips are masked by
/// round-off).
[[nodiscard]] bool is_high_bit(unsigned bit) noexcept;

/// Number of the first "high" bit; bits in [kFirstHighBit, 63] are high.
inline constexpr unsigned kFirstHighBit = 40;

}  // namespace ftfft::fault
