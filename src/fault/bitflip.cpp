#include "fault/bitflip.hpp"

#include <cstring>

namespace ftfft::fault {

double flip_bit(double v, unsigned bit) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits ^= (std::uint64_t{1} << (bit & 63u));
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

bool is_high_bit(unsigned bit) noexcept { return bit >= kFirstHighBit; }

}  // namespace ftfft::fault
