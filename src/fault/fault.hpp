// Fault taxonomy for soft-error injection.
//
// The paper's evaluation (section 9.2.2) simulates a computational fault by
// adding a constant to one element produced by the computation and a memory
// fault by overwriting/bit-flipping one stored element. Faults here are
// addressed by (phase, unit): the phase names a well-defined hook point in
// an ABFT orchestrator (e.g. "output of m-point sub-FFT"), the unit
// disambiguates which sub-FFT / rank / DMR copy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/complex.hpp"

namespace ftfft::fault {

/// Hook points the orchestrators expose. An injector entry fires when its
/// phase and unit match a hook invocation.
enum class Phase : std::uint8_t {
  kInputBeforeChecksum,   ///< input memory, before any checksum exists
  kInputAfterChecksum,    ///< input memory, after checksum generation (e1)
  kMFftOutput,            ///< output of one m-point sub-FFT (computational)
  kIntermediate,          ///< intermediate result between the two layers (e2)
  kTwiddleDmrCopy,        ///< one redundant execution of the twiddle multiply
  kMiddleDmrCopy,         ///< one redundant execution of an r-point middle FFT
  kKFftOutput,            ///< output of one k-point sub-FFT (computational)
  kFinalOutput,           ///< final output memory (e3)
  kWholeFftOutput,        ///< output of a monolithic FFT (offline scheme)
  kCommBlock,             ///< a block in flight during a parallel transpose
  kRankLocalInput,        ///< a rank's local data before its protected FFT
  kRankFft1Output,        ///< output of one p-point FFT in parallel FFT1
  kRankFft2Output,        ///< output inside parallel FFT2
  kRealPostPass,          ///< packed transform entering the real-transform
                          ///< split/unsplit post-pass (r2c finalize input /
                          ///< c2r prepare output)
  kPlanState,             ///< cached plan metadata (twiddles, permutation
                          ///< tables, checksum weights): unit = span index
                          ///< in the plan's collect_state list, element =
                          ///< cplx-sized offset within that span
};

/// What the fault does to the victim element.
enum class Kind : std::uint8_t {
  kAddConstant,  ///< element += value   (computational error model)
  kSetValue,     ///< element  = value   (memory error model)
  kFlipBit,      ///< flip one bit of the real or imag component
};

/// One scheduled fault. Fires at most once (transient-fault semantics: the
/// re-executed computation is clean, matching the paper's fault model).
struct FaultSpec {
  Phase phase = Phase::kInputAfterChecksum;
  std::size_t unit = 0;     ///< sub-FFT index / rank / DMR copy
  std::size_t element = 0;  ///< element offset within the hooked span
  Kind kind = Kind::kAddConstant;
  cplx value{0.0, 0.0};     ///< added or assigned, per kind
  unsigned bit = 62;        ///< bit index for kFlipBit (0 = LSB of mantissa)
  bool imag_part = false;   ///< kFlipBit: flip in the imaginary component

  /// Computational error: adds `magnitude` to one produced element.
  static FaultSpec computational(Phase phase, std::size_t unit,
                                 std::size_t element, cplx magnitude) {
    return FaultSpec{phase, unit, element, Kind::kAddConstant, magnitude, 0,
                     false};
  }

  /// Memory error: overwrites one stored element with `value`.
  static FaultSpec memory_set(Phase phase, std::size_t unit,
                              std::size_t element, cplx value) {
    return FaultSpec{phase, unit, element, Kind::kSetValue, value, 0, false};
  }

  /// Memory error: flips one bit of one component.
  static FaultSpec bit_flip(Phase phase, std::size_t unit, std::size_t element,
                            unsigned bit, bool imag_part) {
    return FaultSpec{phase,         unit, element, Kind::kFlipBit,
                     cplx{0.0, 0.0}, bit,  imag_part};
  }
};

}  // namespace ftfft::fault
