// Deterministic fault injector.
//
// Orchestrators expose hook points (`apply`) at every phase named in
// fault.hpp. An injector holds scheduled FaultSpecs; each fires exactly once
// when a hook with matching (phase, unit) runs, corrupting the hooked span.
// No global state: an injector instance travels through the ABFT config, so
// campaigns are reproducible and tests can run in parallel.
#pragma once

#include <cstddef>
#include <vector>

#include "common/complex.hpp"
#include "fault/fault.hpp"

namespace ftfft::fault {

class Injector {
 public:
  Injector() = default;

  /// Schedules a fault. Order is irrelevant; all matching armed faults fire
  /// at the first matching hook.
  void schedule(const FaultSpec& spec) { faults_.push_back({spec, true}); }

  /// Hook: corrupts `data` (a span of `len` elements with `stride`) with
  /// every armed fault matching (phase, unit). Element indices beyond `len`
  /// are clamped into range so randomly generated campaigns always land.
  /// Returns the number of faults applied.
  std::size_t apply(Phase phase, std::size_t unit, cplx* data, std::size_t len,
                    std::size_t stride = 1);

  /// Total faults applied so far (across all hooks).
  [[nodiscard]] std::size_t fired_count() const noexcept { return fired_; }

  /// Number of scheduled faults that have not fired yet.
  [[nodiscard]] std::size_t pending_count() const noexcept;

  /// True when at least one armed fault targets `phase`. Orchestrators use
  /// this to skip hook plumbing that only exists for injection (e.g. the
  /// Phase::kPlanState cache corruption) on fault-free runs.
  [[nodiscard]] bool pending(Phase phase) const noexcept;

  /// Removes all scheduled faults and resets counters.
  void clear();

 private:
  struct Entry {
    FaultSpec spec;
    bool armed = true;
  };
  std::vector<Entry> faults_;
  std::size_t fired_ = 0;
};

}  // namespace ftfft::fault
