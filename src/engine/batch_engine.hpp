// Queued, multi-threaded execution of protected transforms with
// serving-grade admission control.
//
// The paper's online ABFT scheme protects one transform at a time; a
// production deployment runs many independent transforms ("lanes") in
// flight at once, and a serving layer on top of it cannot afford to block
// a request thread for every batch. BatchEngine therefore separates
// submission from completion: submit_batch() validates a batch, resolves
// its shared ProtectionPlan(s), appends a heap-owned job to a per-class
// work queue and immediately returns a BatchFuture. A persistent pool
// of worker threads pulls lanes across all queued jobs — lanes of a job
// are claimed from its atomic cursor in contiguous chunks, and a worker
// that exhausts a job's cursor moves on to the next job while
// stragglers finish the previous one, so checksum setup, transform and
// verification of consecutive batches overlap (the CPU analogue of
// TurboFFT's pipelined batching). The blocking transform_batch() and
// transform_one() are thin wrappers that submit and wait; there is exactly
// one execution path.
//
// Scheduling is something you could put behind an RPC front door:
//
//  * Priority classes + EDF. Every submission carries SubmitOptions — a
//    priority class, an optional deadline and a cancellable marker.
//    Workers always claim from the highest-priority non-empty class;
//    within a class, jobs with deadlines run earliest-deadline-first
//    ahead of deadline-free jobs, which keep FIFO order among
//    themselves. Workers re-consult the scheduler between lane chunks,
//    so a high-priority arrival overtakes a half-drained low-priority
//    job at the next chunk boundary (no preemption of running lanes).
//  * Bounded-queue backpressure. FTFFT_ENGINE_QUEUE_CAP (or
//    set_queue_cap) bounds the pending-lane count — lanes, not jobs, so
//    a 1000-lane batch occupies 1000 slots. When full, try_submit_*
//    return an empty optional immediately, and the blocking submit_*
//    wait for space up to SubmitOptions::admission_timeout, then throw
//    QueueFullError.
//  * Deadline enforcement. A lane whose job deadline passes before it
//    starts fails fast with DeadlineExceededError — queued work is never
//    silently run late. Lanes already executing run to completion.
//  * Load shedding. When admission finds the queue full, it sheds
//    not-yet-started lanes of queued *cancellable* jobs of any class
//    strictly below the incoming submission's, via the same skip path as
//    BatchTicket::cancel (CancelledError per lane, counted as
//    shed_lanes), before rejecting or blocking.
//  * Observability. BatchReport carries the job's queue-wait and run
//    latency; scheduler_stats() aggregates per-class latency percentiles
//    and admission/shed/expiry counters engine-wide.
//
// Shared, immutable state (decomposition plans, twiddle tables, and the
// ABFT ProtectionPlan with its checksum vectors and threshold coefficients)
// is resolved once per job at submission time through the process-wide
// LRU-bounded plan caches — a warm cache makes submission O(lanes) pointer
// work — and handed to every lane by reference. Per-thread mutable state
// (staging copies of lane inputs) lives in a per-worker aligned arena that
// grows to its job high-water mark, is reused across lanes and jobs, and
// is trimmed back after consecutive jobs that stay far below that mark.
// Per-lane abft::Stats land in pre-sized slots, so workers never contend
// on shared counters.
//
// A lane that throws (UncorrectableError when the fault model is exceeded)
// is recorded in the report and does not disturb the other lanes.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"
#include "fault/injector.hpp"

namespace ftfft::engine {

namespace detail {
struct BatchShared;  // completion state shared by job, future and ticket
}  // namespace detail

/// One transform in a batch. All lanes in a batch share the same size and
/// protection options; in/out buffers must not overlap between lanes.
struct Lane {
  /// Input samples (n elements). May be modified by fault repair unless
  /// BatchOptions::preserve_inputs is set.
  cplx* in = nullptr;
  /// Output spectrum (n elements). nullptr = transform in place over `in`.
  /// `out == in` is allowed and staged through the worker arena.
  cplx* out = nullptr;
  /// Optional per-lane fault injector (overrides the batch-wide one);
  /// campaigns schedule different faults into different lanes with this.
  fault::Injector* injector = nullptr;
};

/// One real-input transform in a batch (see submit_real_batch). The same
/// descriptor serves both directions: r2c reads `re` and writes `spec`,
/// c2r reads `spec` and writes `re`. Real lanes never modify their source
/// buffer (the protected paths work out of scratch), so
/// BatchOptions::preserve_inputs is trivially satisfied and no arena
/// staging is needed.
struct RealLane {
  /// Time-domain signal, n doubles.
  double* re = nullptr;
  /// Half-spectrum, n/2 + 1 complex bins (FFTW r2c layout).
  cplx* spec = nullptr;
  /// Optional per-lane fault injector (overrides the batch-wide one).
  fault::Injector* injector = nullptr;
};

/// Direction of a real-lane batch.
enum class RealDirection {
  kForward,  ///< r2c: re -> spec (unnormalized half-spectrum)
  kInverse,  ///< c2r: spec -> re (1/n-normalized real inverse)
};

/// Priority class of a submission. Lower value = more urgent; workers
/// always drain the highest non-empty class first. kDefault resolves to
/// FTFFT_ENGINE_DEFAULT_PRIORITY ("high" | "normal" | "low"; normal when
/// unset), read at engine construction.
enum class Priority : int {
  kHigh = 0,    ///< latency-sensitive serving traffic
  kNormal = 1,  ///< the default class
  kLow = 2,     ///< batch/background work; first in line for shedding
  kDefault = 3  ///< resolve from the environment at submission
};

/// Number of real scheduling classes (kDefault is a resolution marker).
inline constexpr std::size_t kNumPriorities = 3;

/// Stable lowercase class name ("high" | "normal" | "low") for logs and
/// bench tables.
const char* priority_name(Priority p) noexcept;

/// Per-submission scheduling knobs, carried by BatchOptions::submit and by
/// the submit_tasks parameter.
struct SubmitOptions {
  /// Scheduling class; kDefault resolves from FTFFT_ENGINE_DEFAULT_PRIORITY.
  Priority priority = Priority::kDefault;
  /// Completion budget relative to submission. A lane that has not started
  /// when the deadline passes fails fast with DeadlineExceededError (lanes
  /// already executing finish). 0 inherits FTFFT_ENGINE_DEFAULT_DEADLINE_MS
  /// (unset/0 = no deadline); negative = explicitly no deadline. Within a
  /// class, deadlined jobs run earliest-deadline-first ahead of
  /// deadline-free ones.
  std::chrono::nanoseconds deadline{0};
  /// Marks this submission's not-yet-started lanes as sheddable: when the
  /// queue is full, admission of a strictly higher-priority job may skip
  /// them (CancelledError per lane, counted in BatchReport::shed_lanes)
  /// instead of rejecting the newcomer.
  bool cancellable = false;
  /// How long a blocking submit_* may wait for queue space when the
  /// pending-lane cap is reached before throwing QueueFullError: negative
  /// (default) = wait as long as it takes, 0 = fail immediately, positive
  /// = bounded wait. Ignored by try_submit_* (always immediate).
  std::chrono::nanoseconds admission_timeout{-1};
};

/// Batch-wide execution knobs beyond the per-lane ABFT options.
struct BatchOptions {
  /// Protection configuration applied to every lane.
  abft::Options abft{};
  /// Lanes claimed per scheduler grab; 0 = pick from batch size and thread
  /// count. Bigger chunks amortize the atomic, smaller ones balance better.
  std::size_t chunk = 0;
  /// Stage every lane input through the worker arena so the caller's input
  /// buffers are never written (fault repair then fixes the staged copy).
  bool preserve_inputs = false;
  /// Scheduling class, deadline, shedding eligibility, admission timeout.
  SubmitOptions submit{};
};

/// Nearest-rank percentiles over the most recent latency samples of one
/// class (bounded ring; seconds). count is the lifetime sample count.
struct LatencyPercentiles {
  std::size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Scheduler counters and latency distributions for one priority class.
struct PriorityClassStats {
  std::size_t jobs_submitted = 0;  ///< admitted (queued or run inline)
  std::size_t jobs_completed = 0;  ///< futures fulfilled
  std::size_t jobs_rejected = 0;   ///< try_submit refusals + QueueFullError
  std::size_t lanes_submitted = 0;
  std::size_t lanes_completed = 0;  ///< executed (success or lane failure)
  std::size_t lanes_cancelled = 0;  ///< skipped via BatchTicket::cancel
  std::size_t shed_lanes = 0;       ///< skipped by overload shedding
  std::size_t deadline_expired_lanes = 0;  ///< failed fast past deadline
  LatencyPercentiles queue_wait;  ///< submission -> first worker claim
  LatencyPercentiles run;         ///< first claim -> future fulfilled
};

/// Engine-wide scheduler snapshot (see BatchEngine::scheduler_stats).
struct SchedulerStats {
  std::array<PriorityClassStats, kNumPriorities> classes{};
  std::size_t queue_cap = 0;       ///< pending-lane bound; 0 = unbounded
  std::size_t pending_lanes = 0;   ///< lanes admitted but not yet retired

  [[nodiscard]] const PriorityClassStats& at(Priority p) const {
    return classes.at(static_cast<std::size_t>(p));
  }
};

/// What the fault tolerance did across a whole batch.
struct BatchReport {
  std::size_t lanes = 0;         ///< lanes submitted
  std::size_t failed_lanes = 0;  ///< lanes whose transform threw or was
                                 ///< cancelled/shed/expired
  std::size_t cancelled_lanes = 0;  ///< lanes skipped by BatchTicket::cancel
                                    ///< (also counted in failed_lanes)
  std::size_t shed_lanes = 0;  ///< lanes skipped by overload shedding
                               ///< (CancelledError; also in failed_lanes)
  std::size_t deadline_expired_lanes = 0;  ///< lanes failed fast past the
                                           ///< deadline (DeadlineExceededError;
                                           ///< also in failed_lanes)
  Priority priority = Priority::kNormal;  ///< resolved scheduling class
  double queue_wait_seconds = 0.0;  ///< submission -> first worker claim
  double run_seconds = 0.0;         ///< first claim -> completion
  abft::Stats totals;            ///< element-wise sum over per_lane
  std::vector<abft::Stats> per_lane;
  /// Empty string = lane succeeded; otherwise the exception message.
  std::vector<std::string> errors;
  /// The original exception per failed lane (null when the lane
  /// succeeded), so callers can preserve the library's error taxonomy
  /// (UncorrectableError vs std::invalid_argument vs CancelledError)
  /// instead of parsing messages.
  std::vector<std::exception_ptr> exceptions;

  [[nodiscard]] bool all_ok() const noexcept { return failed_lanes == 0; }
};

/// Cancellation handle for a submitted batch. Copyable and cheap; cancel()
/// marks the job so lanes that have not started yet are skipped (recorded
/// as CancelledError in the report) — lanes already executing run to
/// completion, and the BatchFuture still becomes ready with the partial
/// report. Cancelling a finished job is a harmless no-op.
class BatchTicket {
 public:
  BatchTicket() = default;

  [[nodiscard]] bool valid() const noexcept { return shared_ != nullptr; }
  void cancel() const noexcept;
  [[nodiscard]] bool cancelled() const noexcept;

 private:
  friend class BatchFuture;
  explicit BatchTicket(std::shared_ptr<detail::BatchShared> shared);

  std::shared_ptr<detail::BatchShared> shared_;
};

/// Completion handle for a submitted batch: wait/get the BatchReport or
/// the submission-level exception, or register a callback. Movable and
/// copyable (all copies observe the same completion); get() hands out the
/// report once and invalidates this handle, like std::future.
class BatchFuture {
 public:
  BatchFuture() = default;  ///< invalid until assigned from submit_batch

  [[nodiscard]] bool valid() const noexcept { return shared_ != nullptr; }

  /// True once the report (or exception) is available. Lock-free once the
  /// batch completed (one acquire load). Throws std::invalid_argument on an
  /// invalid future.
  [[nodiscard]] bool ready() const;

  /// Blocks until the batch completes. Returns without touching the lock
  /// when already ready.
  void wait() const;

  /// Blocks up to `timeout`; returns ready(). A zero or negative timeout is
  /// a pure poll — no lock, no wait — and an already-ready future returns
  /// true without locking regardless of the timeout.
  bool wait_for(std::chrono::nanoseconds timeout) const;

  /// Blocks until completion, then moves the report out (rethrows the
  /// submission-level exception instead if the job was aborted wholesale).
  /// One-shot: the future becomes invalid afterwards.
  BatchReport get();

  /// Registers `cb` to run once the batch completes, receiving the report
  /// (lane failures included — inspect report.failed_lanes). Runs on the
  /// worker thread that retires the job, or inline when already ready;
  /// callbacks registered before completion have finished by the time
  /// wait()/get() return, and registering after get() consumed the report
  /// throws. Callbacks must not throw, must not call methods on this
  /// future, and must not block on this engine's other futures (the worker
  /// running them is needed to make progress).
  void then(std::function<void(BatchReport&)> cb);

  /// Cancellation handle for this submission; outlives get().
  [[nodiscard]] BatchTicket ticket() const;

 private:
  friend class BatchEngine;
  explicit BatchFuture(std::shared_ptr<detail::BatchShared> shared);

  std::shared_ptr<detail::BatchShared> shared_;
};

/// Reusable multi-threaded engine for batches of protected transforms.
///
/// Workers are spawned lazily on the first submission and parked on a
/// condition variable while the queues are empty, so an engine is cheap to
/// construct. Submission is thread-safe: any number of threads may call
/// submit_batch / transform_batch concurrently; jobs are claimed highest
/// priority class first (EDF within a class, FIFO among deadline-free
/// jobs) and may complete out of order (a small job queued behind a large
/// one finishes as soon as its lanes are done). Destroying the engine
/// drains the queues: every admitted job runs to completion (or fails fast
/// past its deadline) and every future is fulfilled before the destructor
/// returns — no future is ever dropped.
class BatchEngine {
 public:
  /// num_threads = 0 honors FTFFT_ENGINE_THREADS, then falls back to
  /// std::thread::hardware_concurrency().
  explicit BatchEngine(std::size_t num_threads = 0);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept;

  /// Jobs submitted but not yet completed (queued or executing).
  [[nodiscard]] std::size_t pending_jobs() const noexcept;

  /// Pending-lane bound enforced at admission (0 = unbounded). Initialized
  /// from FTFFT_ENGINE_QUEUE_CAP at construction.
  [[nodiscard]] std::size_t queue_cap() const;

  /// Replaces the pending-lane bound at runtime (0 = unbounded). Raising
  /// the cap wakes submitters blocked on admission.
  void set_queue_cap(std::size_t cap);

  /// Snapshot of the per-class scheduler counters and latency percentiles.
  /// Cheap enough for a monitoring loop (copies the bounded sample rings
  /// under a stats lock that workers touch once per job).
  [[nodiscard]] SchedulerStats scheduler_stats() const;

  /// Zeroes the scheduler counters and latency rings (tests, epoch-based
  /// monitoring). Does not touch the queue or the cap.
  void reset_scheduler_stats();

  /// Total staging currently held across the per-worker arenas, in complex
  /// elements. Arenas grow to the largest lane staged through them and are
  /// trimmed back after consecutive jobs whose demand stayed far below
  /// that high-water mark; exposed for tests and memory monitoring. Only
  /// meaningful while no job is in flight.
  [[nodiscard]] std::size_t staging_capacity() const;

  /// Queues the protected n-point transform of every lane and returns
  /// once admitted — immediately while the pending-lane count is under the
  /// queue cap; otherwise after shedding/waiting per opts.submit (throws
  /// QueueFullError when the admission timeout elapses with the queue
  /// still full). The lane descriptors are copied; the in/out buffers they
  /// point to must stay alive until the future is ready. Lane failures are
  /// reported, not thrown; misuse (n == 0, null lane pointers) throws
  /// std::invalid_argument synchronously before anything is queued. A
  /// batch-wide injector (opts.abft.injector) mutates per-fault state on
  /// apply and is therefore rejected for multi-lane batches on a
  /// multi-thread engine — schedule per-lane injectors instead.
  BatchFuture submit_batch(std::span<const Lane> lanes, std::size_t n,
                           const BatchOptions& opts = {});

  /// Convenience: `count` lanes packed contiguously, lane L reading
  /// in + L*n and writing out + L*n (out == nullptr → in place).
  BatchFuture submit_batch(cplx* in, cplx* out, std::size_t n,
                           std::size_t count, const BatchOptions& opts = {});

  /// Non-blocking admission: like submit_batch, but when the pending-lane
  /// cap is reached (and shedding cannot make room) returns an empty
  /// optional immediately instead of waiting — the try-form of the
  /// QueueFullError the blocking submit would throw. Misuse still throws
  /// std::invalid_argument synchronously. SubmitOptions::admission_timeout
  /// is ignored (always immediate).
  std::optional<BatchFuture> try_submit_batch(std::span<const Lane> lanes,
                                              std::size_t n,
                                              const BatchOptions& opts = {});

  /// Queues the protected real n-point transform (r2c or c2r per `dir`) of
  /// every lane through the same worker pool, FIFO queue and completion
  /// machinery as complex batches: the RealProtectionPlan, the underlying
  /// RealFftPlan and the packed-transform ProtectionPlan are resolved once
  /// at submission and shared by every lane; per-lane injectors isolate
  /// fault campaigns lane by lane; a lane that throws (UncorrectableError)
  /// is recorded in the report without disturbing the others. The same
  /// misuse rules as submit_batch apply (null lane pointers throw
  /// synchronously; a batch-wide injector is rejected for multi-lane
  /// batches on a multi-thread engine).
  BatchFuture submit_real_batch(std::span<const RealLane> lanes,
                                std::size_t n, RealDirection dir,
                                const BatchOptions& opts = {});

  /// Convenience: `count` real lanes packed contiguously, lane L using
  /// re + L*n and spec + L*(n/2 + 1).
  BatchFuture submit_real_batch(double* re, cplx* spec, std::size_t n,
                                std::size_t count, RealDirection dir,
                                const BatchOptions& opts = {});

  /// Non-blocking admission for real batches (see try_submit_batch).
  std::optional<BatchFuture> try_submit_real_batch(
      std::span<const RealLane> lanes, std::size_t n, RealDirection dir,
      const BatchOptions& opts = {});

  /// Blocking convenience: submit_real_batch(...).get(), with the same
  /// single-lane inline fast path as transform_batch (real lanes never
  /// stage, so one lane always qualifies).
  BatchReport transform_real_batch(std::span<const RealLane> lanes,
                                   std::size_t n, RealDirection dir,
                                   const BatchOptions& opts = {});

  /// Queues `count` generic work items through the same worker pool, FIFO
  /// queue and completion machinery as transform batches: item i runs
  /// fn(i, stats_i) on a worker thread, where stats_i is the item's
  /// pre-sized BatchReport::per_lane slot. A throw from fn is recorded in
  /// the report (errors/exceptions slot i) and does not disturb other
  /// items; cancellation via the ticket skips unstarted items exactly like
  /// lanes. `fn` is shared by concurrent workers and must be safe to call
  /// from several threads with distinct indices. This is how the sharded
  /// parallel FFT runs its rank phases on the pool (parallel/sharded_fft):
  /// phase work items are plain callables, not transform lanes, so they
  /// must not re-enter this engine synchronously (a blocking wait inside
  /// fn on this engine's own futures can deadlock the pool). `submit`
  /// carries the scheduling class/deadline/shedding marker exactly like
  /// BatchOptions::submit does for transform batches.
  BatchFuture submit_tasks(std::size_t count,
                           std::function<void(std::size_t, abft::Stats&)> fn,
                           const SubmitOptions& submit = {},
                           std::size_t chunk = 0);

  /// Non-blocking admission for task fan-outs (see try_submit_batch).
  std::optional<BatchFuture> try_submit_tasks(
      std::size_t count, std::function<void(std::size_t, abft::Stats&)> fn,
      const SubmitOptions& submit = {}, std::size_t chunk = 0);

  /// Blocking convenience: submit_batch(...).get(), with one shortcut — a
  /// single lane that needs no staging (no preserve_inputs, out != in)
  /// runs inline on the calling thread through the same worker code path,
  /// so single-shot calls pay no queue dispatch and never wait behind
  /// batches queued by other threads.
  BatchReport transform_batch(std::span<const Lane> lanes, std::size_t n,
                              const BatchOptions& opts = {});

  /// Blocking convenience over the contiguous layout.
  BatchReport transform_batch(cplx* in, cplx* out, std::size_t n,
                              std::size_t count,
                              const BatchOptions& opts = {});

  /// Single-shot protected transform: a blocking batch of one (runs inline
  /// on the caller for out != in — see transform_batch).
  abft::Stats transform_one(cplx* in, cplx* out, std::size_t n,
                            const abft::Options& opts = {});

  /// Process-wide shared engine used by the single-shot convenience
  /// wrappers and ftfft::submit_batch. Worker count from
  /// FTFFT_ENGINE_THREADS (default: hardware_concurrency). Safe to submit
  /// to from multiple threads.
  static BatchEngine& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Scheduler snapshot of the process-wide shared engine — the serving
/// front door's monitoring hook (per-class queue-wait/run percentiles,
/// admission rejections, shed and expired lane counts).
[[nodiscard]] SchedulerStats scheduler_stats();

}  // namespace ftfft::engine
