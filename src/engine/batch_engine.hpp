// Batched multi-threaded execution of protected transforms.
//
// The paper's online ABFT scheme protects one transform at a time; a
// production deployment runs many independent transforms ("lanes") in
// flight at once. BatchEngine owns a small pool of worker threads and a
// chunked dynamic scheduler: lanes are claimed from a shared atomic cursor
// in contiguous chunks, so fast workers naturally steal the load of slow
// ones (a lane that needs fault-correction retries costs more than a clean
// lane and the imbalance is absorbed without static partitioning).
//
// Shared, immutable state (decomposition plans, twiddle tables, and the
// ABFT ProtectionPlan with its checksum vectors and threshold coefficients)
// is resolved once per batch through the process-wide LRU-bounded plan
// caches and handed to every lane by reference, so per-lane setup is O(1);
// per-thread mutable state (staging copies of lane inputs) lives in a
// per-worker aligned arena that grows to its batch high-water mark, is
// reused across lanes and batches, and is trimmed back after consecutive
// batches that stay far below that mark. Per-lane abft::Stats land in
// pre-sized slots, so workers never contend on shared counters.
//
// A lane that throws (UncorrectableError when the fault model is exceeded)
// is recorded in the report and does not disturb the other lanes.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"
#include "fault/injector.hpp"

namespace ftfft::engine {

/// One transform in a batch. All lanes in a batch share the same size and
/// protection options; in/out buffers must not overlap between lanes.
struct Lane {
  /// Input samples (n elements). May be modified by fault repair unless
  /// BatchOptions::preserve_inputs is set.
  cplx* in = nullptr;
  /// Output spectrum (n elements). nullptr = transform in place over `in`.
  /// `out == in` is allowed and staged through the worker arena.
  cplx* out = nullptr;
  /// Optional per-lane fault injector (overrides the batch-wide one);
  /// campaigns schedule different faults into different lanes with this.
  fault::Injector* injector = nullptr;
};

/// Batch-wide execution knobs beyond the per-lane ABFT options.
struct BatchOptions {
  /// Protection configuration applied to every lane.
  abft::Options abft{};
  /// Lanes claimed per scheduler grab; 0 = pick from batch size and thread
  /// count. Bigger chunks amortize the atomic, smaller ones balance better.
  std::size_t chunk = 0;
  /// Stage every lane input through the worker arena so the caller's input
  /// buffers are never written (fault repair then fixes the staged copy).
  bool preserve_inputs = false;
};

/// What the fault tolerance did across a whole batch.
struct BatchReport {
  std::size_t lanes = 0;         ///< lanes submitted
  std::size_t failed_lanes = 0;  ///< lanes whose transform threw
  abft::Stats totals;            ///< element-wise sum over per_lane
  std::vector<abft::Stats> per_lane;
  /// Empty string = lane succeeded; otherwise the exception message.
  std::vector<std::string> errors;
  /// The original exception per failed lane (null when the lane
  /// succeeded), so callers can preserve the library's error taxonomy
  /// (UncorrectableError vs std::invalid_argument) instead of parsing
  /// messages.
  std::vector<std::exception_ptr> exceptions;

  [[nodiscard]] bool all_ok() const noexcept { return failed_lanes == 0; }
};

/// Reusable multi-threaded engine for batches of protected transforms.
///
/// Workers are spawned lazily on the first batch with more than one lane
/// and parked on a condition variable between batches, so an engine is
/// cheap to construct and a batch of one runs inline on the caller's
/// thread (which is how the single-shot API delegates here without paying
/// for a dispatch). One engine instance must not be used from two threads
/// at once; plans and twiddles it touches are process-wide and shared.
class BatchEngine {
 public:
  /// num_threads = 0 picks std::thread::hardware_concurrency().
  explicit BatchEngine(std::size_t num_threads = 0);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept;

  /// Total staging currently held across the per-worker arenas, in complex
  /// elements. Arenas grow to the largest lane staged through them and are
  /// trimmed back after consecutive batches whose demand stayed far below
  /// that high-water mark; exposed for tests and memory monitoring. Only
  /// meaningful while no batch is in flight.
  [[nodiscard]] std::size_t staging_capacity() const;

  /// Runs the protected n-point transform on every lane concurrently.
  /// Lane failures are reported, not thrown; misuse (n == 0, null lane
  /// pointers) throws std::invalid_argument before any work starts. A
  /// batch-wide injector (opts.abft.injector) mutates per-fault state on
  /// apply and is therefore rejected for multi-lane batches on a
  /// multi-thread engine — schedule per-lane injectors instead.
  BatchReport transform_batch(std::span<const Lane> lanes, std::size_t n,
                              const BatchOptions& opts = {});

  /// Convenience: `count` lanes packed contiguously, lane L reading
  /// in + L*n and writing out + L*n (out == nullptr → in place).
  BatchReport transform_batch(cplx* in, cplx* out, std::size_t n,
                              std::size_t count,
                              const BatchOptions& opts = {});

  /// Single-shot protected transform: a batch of one, run inline.
  abft::Stats transform_one(cplx* in, cplx* out, std::size_t n,
                            const abft::Options& opts = {});

  /// Process-wide shared engine (hardware_concurrency workers) used by the
  /// single-shot convenience wrappers. Serialize access externally if you
  /// submit batches to it from multiple threads.
  static BatchEngine& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftfft::engine
