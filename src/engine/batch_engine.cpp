#include "engine/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <list>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "abft/protected_fft.hpp"
#include "abft/protection_plan.hpp"
#include "abft/real_protection.hpp"
#include "common/aligned_buffer.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "fft/real_fft.hpp"

namespace ftfft::engine {

namespace detail {

/// Completion state of one submission, shared between the queued job, the
/// BatchFuture and any BatchTicket copies. The report's per-lane slots are
/// pre-sized at submission and written lock-free by workers (disjoint
/// indices); `ready` is an atomic published with release semantics under
/// `mu`, so waiters blocked on `cv` see it through the mutex while
/// ready()/wait()/wait_for() fast paths see it with one acquire load — an
/// already-ready future costs no lock at all.
struct BatchShared {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> ready{false};
  bool report_taken = false;
  std::exception_ptr error;  // job aborted wholesale (never per-lane)
  BatchReport report;
  std::vector<std::function<void(BatchReport&)>> callbacks;
  std::atomic<bool> cancel{false};
};

}  // namespace detail

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kHigh:
      return "high";
    case Priority::kLow:
      return "low";
    default:
      return "normal";
  }
}

namespace {

void accumulate(abft::Stats& into, const abft::Stats& s) {
  into.comp_errors_detected += s.comp_errors_detected;
  into.mem_errors_detected += s.mem_errors_detected;
  into.mem_errors_corrected += s.mem_errors_corrected;
  into.sub_fft_retries += s.sub_fft_retries;
  into.full_restarts += s.full_restarts;
  into.dmr_mismatches += s.dmr_mismatches;
  into.verifications += s.verifications;
  // Thresholds are per-transform quantities; keep the widest one seen so
  // the batch report still answers "what eta was in force".
  into.eta_m = std::max(into.eta_m, s.eta_m);
  into.eta_k = std::max(into.eta_k, s.eta_k);
  into.eta_mem = std::max(into.eta_mem, s.eta_mem);
  into.eta_real = std::max(into.eta_real, s.eta_real);
}

// Expands the contiguous batch layout (lane L at in + L*n / out + L*n)
// into lane descriptors; out == nullptr means every lane is in place.
std::vector<Lane> pack_lanes(cplx* in, cplx* out, std::size_t n,
                             std::size_t count) {
  ftfft::detail::require(in != nullptr,
                         "BatchEngine: batch input must not be null");
  std::vector<Lane> lanes(count);
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i].in = in + i * n;
    lanes[i].out = out == nullptr ? nullptr : out + i * n;
  }
  return lanes;
}

std::size_t pick_chunk(std::size_t lanes, std::size_t threads,
                       std::size_t requested) {
  if (requested > 0) return requested;
  // ~4 grabs per worker: enough slack for load balancing without
  // hammering the shared cursor on small lanes.
  const std::size_t grabs = std::max<std::size_t>(threads * 4, 1);
  return std::max<std::size_t>(1, (lanes + grabs - 1) / grabs);
}

/// Fulfills the shared state: drains the registered callbacks (outside the
/// state lock, re-checking for ones registered mid-drain), then publishes
/// ready — so a caller that observes ready via wait()/get() knows every
/// callback registered before completion has finished. Callbacks are
/// documented non-throwing; a throw here would take down a worker thread,
/// so it is swallowed.
void fulfill(detail::BatchShared& state) {
  for (;;) {
    std::vector<std::function<void(BatchReport&)>> callbacks;
    {
      std::scoped_lock lock(state.mu);
      if (state.callbacks.empty()) {
        state.ready.store(true, std::memory_order_release);
        break;
      }
      callbacks.swap(state.callbacks);
    }
    for (auto& cb : callbacks) {
      try {
        cb(state.report);
      } catch (...) {
      }
    }
  }
  state.cv.notify_all();
}

double secs(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Nearest-rank percentiles over a copy of one latency ring. `lifetime`
/// and `max_v` are lifetime aggregates (the ring only holds the most
/// recent kLatencyRingCap samples).
LatencyPercentiles percentiles(std::vector<double> samples,
                               std::size_t lifetime, double max_v) {
  LatencyPercentiles out;
  out.count = lifetime;
  out.max = max_v;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank > 0) --rank;
    return samples[std::min(samples.size() - 1, rank)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  return out;
}

}  // namespace

// ------------------------------------------------------------- BatchTicket

BatchTicket::BatchTicket(std::shared_ptr<detail::BatchShared> shared)
    : shared_(std::move(shared)) {}

void BatchTicket::cancel() const noexcept {
  if (shared_) shared_->cancel.store(true, std::memory_order_relaxed);
}

bool BatchTicket::cancelled() const noexcept {
  return shared_ && shared_->cancel.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------- BatchFuture

BatchFuture::BatchFuture(std::shared_ptr<detail::BatchShared> shared)
    : shared_(std::move(shared)) {}

bool BatchFuture::ready() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  // Acquire pairs with the release store in fulfill(): once observed, the
  // report writes that preceded publication are visible too.
  return shared_->ready.load(std::memory_order_acquire);
}

void BatchFuture::wait() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  if (shared_->ready.load(std::memory_order_acquire)) return;
  std::unique_lock lock(shared_->mu);
  shared_->cv.wait(lock, [&] {
    return shared_->ready.load(std::memory_order_acquire);
  });
}

bool BatchFuture::wait_for(std::chrono::nanoseconds timeout) const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  if (shared_->ready.load(std::memory_order_acquire)) return true;
  // Zero/negative timeout is a pure poll: the acquire load above is the
  // whole story — no lock, no condition-variable machinery.
  if (timeout <= std::chrono::nanoseconds::zero()) return false;
  std::unique_lock lock(shared_->mu);
  return shared_->cv.wait_for(lock, timeout, [&] {
    return shared_->ready.load(std::memory_order_acquire);
  });
}

BatchReport BatchFuture::get() {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  BatchReport out;
  {
    std::unique_lock lock(shared_->mu);
    shared_->cv.wait(lock, [&] {
      return shared_->ready.load(std::memory_order_acquire);
    });
    ftfft::detail::require(!shared_->report_taken,
                    "BatchFuture::get: report already taken");
    if (shared_->error) {
      std::exception_ptr error = shared_->error;
      lock.unlock();
      shared_.reset();
      std::rethrow_exception(error);
    }
    shared_->report_taken = true;
    out = std::move(shared_->report);
  }
  shared_.reset();
  return out;
}

void BatchFuture::then(std::function<void(BatchReport&)> cb) {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  ftfft::detail::require(cb != nullptr, "BatchFuture::then: null callback");
  std::scoped_lock lock(shared_->mu);
  if (!shared_->ready.load(std::memory_order_acquire)) {
    shared_->callbacks.push_back(std::move(cb));
    return;
  }
  // Already completed: run inline on the caller. The lock stays held so a
  // concurrent get() on a copy of this future cannot move the report out
  // from under the callback (which is why callbacks must not re-enter this
  // future); a report already consumed by get() is caught misuse.
  ftfft::detail::require(!shared_->report_taken,
                         "BatchFuture::then: report already taken by get()");
  cb(shared_->report);
}

BatchTicket BatchFuture::ticket() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  return BatchTicket(shared_);
}

// -------------------------------------------------------------- BatchEngine

struct BatchEngine::Impl {
  using Clock = std::chrono::steady_clock;

  // Capacity/peak ratio beyond which an arena counts as oversized, and how
  // many consecutive oversized jobs it takes before the excess is
  // released. The patience keeps alternating big/small workloads from
  // reallocating every job.
  static constexpr std::size_t kTrimFactor = 4;
  static constexpr int kTrimPatience = 2;

  // Most recent latency samples kept per class for the percentile
  // snapshot; lifetime counts and maxima are tracked separately.
  static constexpr std::size_t kLatencyRingCap = 4096;

  // Sentinel for "no queued deadline" in next_deadline_ns_.
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  // Per-worker staging storage, reused across lanes and jobs.
  struct Arena {
    AlignedBuffer<cplx> staging;
    std::size_t batch_peak = 0;  // largest request in the current job
    int oversized_batches = 0;   // consecutive jobs far below capacity

    cplx* ensure(std::size_t n) {
      batch_peak = std::max(batch_peak, n);
      if (staging.size() < n) {
        staging = AlignedBuffer<cplx>(n);
        oversized_batches = 0;
      }
      return staging.data();
    }

    // High-water trim: a one-off huge job should not pin its staging
    // forever. After kTrimPatience consecutive jobs whose peak demand
    // stayed kTrimFactor below the arena's capacity, shrink to that peak.
    // Jobs that never touched this arena are not evidence of shrinking
    // demand (under-subscribed workloads rotate which workers win chunks);
    // they leave the counter untouched so participation gaps don't cause
    // free/realloc churn.
    void end_batch() {
      if (batch_peak == 0) return;
      if (!staging.empty() && batch_peak * kTrimFactor <= staging.size()) {
        if (++oversized_batches >= kTrimPatience) {
          staging = AlignedBuffer<cplx>(batch_peak);
          oversized_batches = 0;
        }
      } else {
        oversized_batches = 0;
      }
      batch_peak = 0;
    }
  };

  // One queued submission. Heap-owned and held in its class's queue list;
  // kept alive by shared_ptrs held by the queue, by every worker currently
  // draining it, and (through `state`) by the caller's
  // BatchFuture/BatchTicket. All non-atomic fields below the scheduling
  // block are written by the submitting thread before the job is published
  // under the queue mutex and never mutated afterwards; the queue/timing
  // block is guarded by mu_.
  struct Job {
    std::vector<Lane> lanes;
    std::size_t n = 0;
    BatchOptions opts;
    // Protection plans resolved once at submission and shared by every
    // lane (rA generation and threshold derivation drop from O(lanes * n)
    // to O(n) per batch); the shared_ptrs pin them however long the job
    // waits in the queue, even if the LRU cache evicts them. Resolution
    // failures are parked as exception_ptrs so they surface per lane,
    // preserving the report's failure isolation.
    std::shared_ptr<const abft::ProtectionPlan> plan;          // out-of-place
    std::shared_ptr<const abft::ProtectionPlan> plan_inplace;  // in-place
    std::exception_ptr plan_error;
    std::exception_ptr plan_inplace_error;
    std::shared_ptr<detail::BatchShared> state;
    // Real-lane job (submit_real_batch): when `real_lanes` is non-empty,
    // `lanes` stays empty and the items run through run_real_lane with the
    // plans below — same claiming, cancellation and failure isolation.
    std::vector<RealLane> real_lanes;
    RealDirection real_dir = RealDirection::kForward;
    std::shared_ptr<const fft::RealFftPlan> real_fft_plan;  // Mode::kNone
    std::shared_ptr<const abft::RealProtectionPlan> real_plan;
    std::shared_ptr<const abft::ProtectionPlan> real_cplan;  // packed n/2
    std::exception_ptr real_plan_error;
    // Generic task job (submit_tasks): when `task` is set, `lanes` stays
    // empty and `task_count` work items run through it instead of
    // run_lane — same cursor/chunk claiming, same cancellation, same
    // per-item failure isolation.
    std::function<void(std::size_t, abft::Stats&)> task;
    std::size_t task_count = 0;

    // Scheduling state, resolved once by apply_submit before publication.
    Priority priority = Priority::kNormal;
    bool cancellable = false;
    bool has_deadline = false;
    Clock::time_point submit_time{};
    Clock::time_point deadline{};
    std::chrono::nanoseconds admission_timeout{-1};

    // Queue membership and first-claim timing, guarded by mu_. `enqueued`
    // and `counted_pending` are written before the job becomes visible to
    // other threads (still under mu_) and are stable afterwards, so
    // work_on/finish may read them without the lock.
    bool enqueued = false;
    bool counted_pending = false;
    bool in_queue = false;
    std::list<std::shared_ptr<Job>>::iterator queue_pos{};
    bool started = false;
    Clock::time_point start_time{};

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> remaining{0};
    // Skip-path tallies: release increments in skip_item pair with the
    // acquire loads in finish().
    std::atomic<std::size_t> cancelled{0};
    std::atomic<std::size_t> shed_count{0};
    std::atomic<std::size_t> expired_count{0};
    // Set (under mu_) when admission picked this job as a shedding victim;
    // every not-yet-started item then fails via skip_item.
    std::atomic<bool> shed_flag{false};
    std::size_t chunk = 1;

    // Reads only pre-publication fields (task_count is non-zero exactly
    // for task jobs and never mutated), so it stays safe after finish()
    // has released the task closure.
    [[nodiscard]] std::size_t item_count() const noexcept {
      if (task_count > 0) return task_count;
      return real_lanes.empty() ? lanes.size() : real_lanes.size();
    }
  };

  // Lifetime scheduler counters + latency rings of one class, guarded by
  // stats_mu_. Lock order where both are needed: mu_ before stats_mu_
  // (in practice they are never nested — stats are recorded after mu_ is
  // released).
  struct ClassAccum {
    std::size_t jobs_submitted = 0;
    std::size_t jobs_completed = 0;
    std::size_t jobs_rejected = 0;
    std::size_t lanes_submitted = 0;
    std::size_t lanes_completed = 0;
    std::size_t lanes_cancelled = 0;
    std::size_t shed_lanes = 0;
    std::size_t deadline_expired_lanes = 0;
    std::vector<double> wait_ring, run_ring;
    std::size_t wait_next = 0, run_next = 0;
    std::size_t wait_count = 0, run_count = 0;
    double wait_max = 0.0, run_max = 0.0;
  };

  explicit Impl(std::size_t num_threads)
      : num_threads_(resolve_threads(num_threads)),
        arenas_(num_threads_),
        queue_cap_(env_size("FTFFT_ENGINE_QUEUE_CAP", 0)),
        default_priority_(resolve_default_priority()),
        default_deadline_(std::chrono::milliseconds(static_cast<std::int64_t>(
            env_size("FTFFT_ENGINE_DEFAULT_DEADLINE_MS", 0)))) {}

  static std::size_t resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    const std::size_t from_env = env_size("FTFFT_ENGINE_THREADS", 0);
    if (from_env != 0) return from_env;
    return std::max(1u, std::thread::hardware_concurrency());
  }

  // FTFFT_ENGINE_DEFAULT_PRIORITY names the class a SubmitOptions with
  // Priority::kDefault resolves to. Read per engine construction (tests
  // build throwaway engines after setenv), invalid values warn once per
  // engine and fall back to normal — same spirit as env_size's validation.
  static Priority resolve_default_priority() {
    const char* raw = std::getenv("FTFFT_ENGINE_DEFAULT_PRIORITY");
    if (raw == nullptr || raw[0] == '\0') return Priority::kNormal;
    const std::string v(raw);
    if (v == "high") return Priority::kHigh;
    if (v == "normal") return Priority::kNormal;
    if (v == "low") return Priority::kLow;
    std::fprintf(stderr,
                 "ftfft: ignoring invalid FTFFT_ENGINE_DEFAULT_PRIORITY=\"%s\""
                 " (expected high|normal|low); using normal\n",
                 raw);
    return Priority::kNormal;
  }

  // Drains the queues: workers keep pulling jobs after stop_ is set and
  // only exit once nothing is left to claim, and join() then waits for
  // in-flight lanes — so every admitted future is fulfilled before the
  // engine dies. Admission waiters are woken too and admit through (the
  // draining workers run what they enqueue).
  ~Impl() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void spawn_workers_locked() {
    if (!workers_.empty()) return;
    workers_.reserve(num_threads_);
    for (std::size_t w = 0; w < num_threads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  static std::size_t class_index(Priority p) noexcept {
    const int raw = static_cast<int>(p);
    if (raw < 0 || raw >= static_cast<int>(kNumPriorities)) {
      return static_cast<std::size_t>(Priority::kNormal);
    }
    return static_cast<std::size_t>(raw);
  }

  static std::int64_t to_ns(Clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
  }

  // Resolves the submission's scheduling knobs against the engine's env
  // defaults; runs on the submitting thread before the job is published.
  void apply_submit(Job& job, const SubmitOptions& submit) const {
    job.submit_time = Clock::now();
    Priority p = submit.priority == Priority::kDefault ? default_priority_
                                                       : submit.priority;
    job.priority = static_cast<Priority>(class_index(p));
    job.cancellable = submit.cancellable;
    job.admission_timeout = submit.admission_timeout;
    std::chrono::nanoseconds rel = submit.deadline;
    if (rel.count() == 0) rel = default_deadline_;  // 0 = inherit env default
    if (rel.count() > 0) {
      job.has_deadline = true;
      job.deadline = job.submit_time + rel;
    }
  }

  void worker_loop(std::size_t arena_index) {
    t_pool_thread = this;
    Arena& arena = arenas_[arena_index];
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || queued_jobs_ > 0; });
        if (queued_jobs_ == 0) return;  // stop_ set and queues drained
        job = pick_locked();
        if (job == nullptr) continue;
      }
      work_on(*job, arena, /*preemptible=*/true);
    }
  }

  void note_started_locked(Job& job, Clock::time_point now) {
    if (!job.started) {
      job.started = true;
      job.start_time = now;
    }
  }

  // Chooses the job workers should claim from next: an expired class front
  // anywhere beats live work (draining it is near-free skips and releases
  // its pending-lane slots immediately); otherwise the highest-priority
  // non-empty class front. Within a class the front is the EDF minimum —
  // deadlined jobs sit sorted ahead of the deadline-free FIFO tail — so if
  // a class front is not expired, nothing behind it in that class is.
  std::shared_ptr<Job> pick_locked() {
    const auto now = Clock::now();
    std::shared_ptr<Job> first;
    for (auto& q : queues_) {
      if (q.empty()) continue;
      const std::shared_ptr<Job>& front = q.front();
      if (front->has_deadline && now >= front->deadline) {
        note_started_locked(*front, now);
        return front;
      }
      if (first == nullptr) first = front;
    }
    if (first != nullptr) note_started_locked(*first, now);
    return first;
  }

  // True when a worker between chunks should return to the scheduler: new
  // work arrived (sched_version_ bumped by every enqueue) or a queued
  // deadline passed. Cancelled/shed/expired jobs are exempt — their
  // remaining items are near-free skips, and finishing the sweep is what
  // frees queue capacity and fulfills the future fastest.
  [[nodiscard]] bool should_reschedule(const Job& job,
                                       std::uint64_t seen) const {
    if (job.state->cancel.load(std::memory_order_relaxed) ||
        job.shed_flag.load(std::memory_order_relaxed)) {
      return false;
    }
    if (job.has_deadline && Clock::now() >= job.deadline) return false;
    if (sched_version_.load(std::memory_order_acquire) != seen) return true;
    const std::int64_t next =
        next_deadline_ns_.load(std::memory_order_relaxed);
    return next != kNoDeadline && to_ns(Clock::now()) >= next;
  }

  // Claims chunks of the job's items until its cursor is exhausted — or,
  // when preemptible, until the scheduler has something more urgent — then
  // retires an exhausted job from its class queue (so workers move on
  // while stragglers finish this one) and, if this worker ran the job's
  // final item, fulfills its future. preemptible=false on the inline
  // run_sync and shed-drain paths, which must complete in one call.
  void work_on(Job& job, Arena& arena, bool preemptible) {
    const std::size_t count = job.item_count();
    const std::uint64_t seen = sched_version_.load(std::memory_order_acquire);
    std::size_t done = 0;
    bool exhausted = false;
    for (;;) {
      const std::size_t begin =
          job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= count) {
        exhausted = true;
        break;
      }
      const std::size_t end = std::min(begin + job.chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        if (job.task) {
          run_task(job, i);
        } else if (!job.real_lanes.empty()) {
          run_real_lane(job, i);
        } else {
          run_lane(job, i, arena);
        }
      }
      done += end - begin;
      if (preemptible && should_reschedule(job, seen)) break;
    }
    if (exhausted && job.enqueued) retire_from_queue(job);
    // Trim bookkeeping happens before this worker's lanes are subtracted
    // from `remaining`, so a ready future implies no worker still touches
    // an arena on this job's behalf (staging_capacity() stays readable
    // from the caller once the engine is idle).
    arena.end_batch();
    if (done > 0 &&
        job.remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
      finish(job);
    }
  }

  // Removes an exhausted job from its class queue. Idempotent: several
  // workers can exhaust the cursor concurrently and each call this.
  void retire_from_queue(Job& job) {
    std::scoped_lock lock(mu_);
    if (!job.in_queue) return;
    queues_[class_index(job.priority)].erase(job.queue_pos);
    job.in_queue = false;
    --queued_jobs_;
    refresh_next_deadline_locked();
  }

  // Checks, in taxonomy order, whether this item must fail fast instead of
  // executing: ticket cancellation, overload shedding, deadline expiry.
  // Items already executing are never touched — this runs before the item
  // starts. `kind` is "lane" or "task" (the messages are part of the
  // report contract).
  bool skip_item(Job& job, std::size_t index, const char* kind) {
    BatchReport& report = job.state->report;
    if (job.state->cancel.load(std::memory_order_relaxed)) {
      report.errors[index] = std::string(kind) + " cancelled before execution";
      report.exceptions[index] = std::make_exception_ptr(CancelledError(
          std::string("BatchEngine: ") + kind + " cancelled before execution"));
      // Release pairs with the acquire load in finish(): the finishing
      // worker must observe every increment (and the error slots written
      // above) without leaning on the release sequence of `remaining`.
      job.cancelled.fetch_add(1, std::memory_order_release);
      return true;
    }
    if (job.shed_flag.load(std::memory_order_acquire)) {
      report.errors[index] =
          std::string(kind) + " shed under overload (queue full)";
      report.exceptions[index] = std::make_exception_ptr(
          CancelledError(std::string("BatchEngine: cancellable ") + kind +
                         " shed under overload (queue full)"));
      job.shed_count.fetch_add(1, std::memory_order_release);
      return true;
    }
    if (job.has_deadline && Clock::now() >= job.deadline) {
      report.errors[index] =
          std::string(kind) + " deadline exceeded before execution";
      report.exceptions[index] = std::make_exception_ptr(DeadlineExceededError(
          std::string("BatchEngine: ") + kind +
          " deadline exceeded before execution"));
      job.expired_count.fetch_add(1, std::memory_order_release);
      return true;
    }
    return false;
  }

  // One generic work item: the cancellation and failure-isolation contract
  // of run_lane, minus staging and plan state (the callable brings its own).
  void run_task(Job& job, std::size_t index) {
    if (skip_item(job, index, "task")) return;
    BatchReport& report = job.state->report;
    try {
      job.task(index, report.per_lane[index]);
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  void run_lane(Job& job, std::size_t index, Arena& arena) {
    if (skip_item(job, index, "lane")) return;
    BatchReport& report = job.state->report;
    const Lane& lane = job.lanes[index];
    const std::size_t n = job.n;
    abft::Options opts = job.opts.abft;
    if (lane.injector != nullptr) opts.injector = lane.injector;
    try {
      const bool inplace = lane.out == nullptr;
      if (inplace && job.plan_inplace_error) {
        std::rethrow_exception(job.plan_inplace_error);
      }
      if (!inplace && job.plan_error) std::rethrow_exception(job.plan_error);
      cplx* in = lane.in;
      if (job.opts.preserve_inputs || lane.out == lane.in) {
        cplx* staged = arena.ensure(n);
        std::copy(lane.in, lane.in + n, staged);
        in = staged;
      }
      abft::Stats& stats = report.per_lane[index];
      if (inplace) {
        abft::protected_transform_inplace(in, n, opts, stats,
                                          job.plan_inplace.get());
        if (in != lane.in) std::copy(in, in + n, lane.in);
      } else {
        abft::protected_transform(in, lane.out, n, opts, stats,
                                  job.plan.get());
      }
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  // One real lane: run_lane's cancellation and failure-isolation contract
  // without staging (real lanes never modify their source buffer — the
  // protected paths work out of internal scratch).
  void run_real_lane(Job& job, std::size_t index) {
    if (skip_item(job, index, "lane")) return;
    BatchReport& report = job.state->report;
    const RealLane& lane = job.real_lanes[index];
    abft::Options opts = job.opts.abft;
    if (lane.injector != nullptr) opts.injector = lane.injector;
    try {
      if (job.real_plan_error) std::rethrow_exception(job.real_plan_error);
      abft::Stats& stats = report.per_lane[index];
      if (opts.mode == abft::Mode::kNone) {
        if (job.real_dir == RealDirection::kForward) {
          job.real_fft_plan->r2c(lane.re, lane.spec);
        } else {
          job.real_fft_plan->c2r(lane.spec, lane.re);
        }
      } else if (job.real_dir == RealDirection::kForward) {
        abft::protected_r2c(lane.re, lane.spec, job.n, opts, stats,
                            job.real_plan.get(), job.real_cplan.get());
      } else {
        abft::protected_c2r(lane.spec, lane.re, job.n, opts, stats,
                            job.real_plan.get(), job.real_cplan.get());
      }
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  // Tallies the finished job's report, releases its pending-lane slots and
  // fulfills its future. Runs on the thread that completed the last item;
  // every other worker has already subtracted its contribution, so the
  // report slots are quiescent. The first-claim timing is read back under
  // mu_ because a worker may set it concurrently with a shed-drain finish.
  void finish(Job& job) {
    detail::BatchShared& state = *job.state;
    const auto fin = Clock::now();
    bool started = false;
    Clock::time_point start_time{};
    {
      std::scoped_lock lock(mu_);
      started = job.started;
      start_time = job.start_time;
      if (job.counted_pending) pending_lanes_ -= job.item_count();
    }
    if (job.counted_pending) cv_space_.notify_all();
    double wait_s = 0.0;
    double run_s = 0.0;
    try {
      BatchReport& report = state.report;
      // Acquire pairs with the release increments in skip_item.
      report.cancelled_lanes = job.cancelled.load(std::memory_order_acquire);
      report.shed_lanes = job.shed_count.load(std::memory_order_acquire);
      report.deadline_expired_lanes =
          job.expired_count.load(std::memory_order_acquire);
      report.priority = job.priority;
      wait_s = secs((started ? start_time : fin) - job.submit_time);
      run_s = started ? secs(fin - start_time) : 0.0;
      report.queue_wait_seconds = wait_s;
      report.run_seconds = run_s;
      for (std::size_t i = 0; i < report.lanes; ++i) {
        if (report.errors[i].empty()) {
          accumulate(report.totals, report.per_lane[i]);
        } else {
          ++report.failed_lanes;
        }
      }
    } catch (...) {
      state.error = std::current_exception();
    }
    record_completion(job, state.report, wait_s, run_s, started);
    inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    // Destroy the task closure before publishing completion: closures own
    // caller state (the sharded FFT's phase chain keeps its shared state
    // alive through this function), and a waiter may tear the world down
    // the instant the future reads ready — releasing the closure only when
    // the worker later drops its shared_ptr<Job> would run those
    // destructors concurrently with whatever follows the wait. All items
    // are retired once finish runs (remaining hit zero), so no other
    // worker can still touch the callable.
    job.task = nullptr;
    fulfill(state);
  }

  static void push_sample(std::vector<double>& ring, std::size_t& next,
                          std::size_t& lifetime, double& max_v, double v) {
    if (ring.size() < kLatencyRingCap) {
      ring.push_back(v);
    } else {
      ring[next] = v;
      next = (next + 1) % kLatencyRingCap;
    }
    ++lifetime;
    max_v = std::max(max_v, v);
  }

  void note_admitted(const Job& job) {
    std::scoped_lock lock(stats_mu_);
    ClassAccum& c = stats_[class_index(job.priority)];
    ++c.jobs_submitted;
    c.lanes_submitted += job.item_count();
  }

  void note_rejected(const Job& job) {
    std::scoped_lock lock(stats_mu_);
    ++stats_[class_index(job.priority)].jobs_rejected;
  }

  void record_completion(const Job& job, const BatchReport& report,
                         double wait_s, double run_s, bool started) {
    std::scoped_lock lock(stats_mu_);
    ClassAccum& c = stats_[class_index(job.priority)];
    ++c.jobs_completed;
    const std::size_t skipped = report.cancelled_lanes + report.shed_lanes +
                                report.deadline_expired_lanes;
    const std::size_t items = job.item_count();
    c.lanes_completed += items > skipped ? items - skipped : 0;
    c.lanes_cancelled += report.cancelled_lanes;
    c.shed_lanes += report.shed_lanes;
    c.deadline_expired_lanes += report.deadline_expired_lanes;
    push_sample(c.wait_ring, c.wait_next, c.wait_count, c.wait_max, wait_s);
    if (started) {
      push_sample(c.run_ring, c.run_next, c.run_count, c.run_max, run_s);
    }
  }

  struct MadeJob {
    std::shared_ptr<Job> job;  // null for an empty batch (already ready)
    std::shared_ptr<detail::BatchShared> state;
  };

  // Validation, report sizing, lane copy and plan resolution — everything a
  // submission needs short of choosing where it executes (queue or inline).
  MadeJob make_job(std::span<const Lane> lanes, std::size_t n,
                   const BatchOptions& opts) {
    ftfft::detail::require(n >= 1, "BatchEngine: size must be >= 1");
    for (const Lane& lane : lanes) {
      ftfft::detail::require(lane.in != nullptr,
                      "BatchEngine: lane input must not be null");
    }
    // Injector::apply mutates armed-fault state; a single injector shared
    // by concurrently executing lanes would race. Per-lane injectors are
    // the supported way to fault a batch.
    ftfft::detail::require(opts.abft.injector == nullptr || lanes.size() <= 1 ||
                        num_threads_ == 1,
                    "BatchEngine: a batch-wide injector is not thread-safe; "
                    "use per-lane Lane::injector instead");

    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = lanes.size();
    report.per_lane.resize(lanes.size());
    report.errors.resize(lanes.size());
    report.exceptions.resize(lanes.size());
    if (lanes.empty()) {
      // Nothing to run; ready before anyone looks.
      state->ready.store(true, std::memory_order_release);
      return {nullptr, std::move(state)};
    }

    auto job = std::make_shared<Job>();
    job->lanes.assign(lanes.begin(), lanes.end());
    job->n = n;
    job->opts = opts;
    job->state = state;
    job->remaining.store(lanes.size(), std::memory_order_relaxed);
    job->chunk = pick_chunk(lanes.size(), num_threads_, opts.chunk);
    apply_submit(*job, opts.submit);

    // Resolve the ProtectionPlan(s) at submission time: on a warm cache
    // (see ftfft::warm_plans) this is a lock + hash lookup, so submission
    // cost is independent of n. A resolution failure (unsupported size for
    // the options) is reported per lane, matching the old per-lane throw.
    bool need_oop = false;
    bool need_inplace = false;
    for (const Lane& lane : lanes) {
      (lane.out == nullptr ? need_inplace : need_oop) = true;
    }
    if (need_oop) {
      try {
        job->plan = abft::resolve_protection_plan(n, opts.abft, false);
      } catch (...) {
        job->plan_error = std::current_exception();
      }
    }
    if (need_inplace) {
      try {
        job->plan_inplace = abft::resolve_protection_plan(n, opts.abft, true);
      } catch (...) {
        job->plan_inplace_error = std::current_exception();
      }
    }

    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(job), std::move(state)};
  }

  // Real-lane analogue of make_job: validation, report sizing, lane copy
  // and one-time resolution of the three plans every lane shares. A
  // resolution failure (n not a power of two >= 2) is parked and surfaces
  // per lane, like complex plan failures.
  MadeJob make_real_job(std::span<const RealLane> lanes, std::size_t n,
                        RealDirection dir, const BatchOptions& opts) {
    ftfft::detail::require(n >= 1, "BatchEngine: size must be >= 1");
    for (const RealLane& lane : lanes) {
      ftfft::detail::require(lane.re != nullptr && lane.spec != nullptr,
                             "BatchEngine: real lane buffers must not be null");
    }
    ftfft::detail::require(
        opts.abft.injector == nullptr || lanes.size() <= 1 ||
            num_threads_ == 1,
        "BatchEngine: a batch-wide injector is not thread-safe; "
        "use per-lane RealLane::injector instead");

    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = lanes.size();
    report.per_lane.resize(lanes.size());
    report.errors.resize(lanes.size());
    report.exceptions.resize(lanes.size());
    if (lanes.empty()) {
      state->ready.store(true, std::memory_order_release);
      return {nullptr, std::move(state)};
    }

    auto job = std::make_shared<Job>();
    job->real_lanes.assign(lanes.begin(), lanes.end());
    job->real_dir = dir;
    job->n = n;
    job->opts = opts;
    job->state = state;
    job->remaining.store(lanes.size(), std::memory_order_relaxed);
    job->chunk = pick_chunk(lanes.size(), num_threads_, opts.chunk);
    apply_submit(*job, opts.submit);
    try {
      if (opts.abft.mode == abft::Mode::kNone) {
        job->real_fft_plan = fft::RealFftPlan::get(n);
      } else {
        job->real_plan = abft::RealProtectionPlan::get(n);
        job->real_cplan = abft::resolve_real_packed_plan(n, opts.abft);
      }
    } catch (...) {
      job->real_plan_error = std::current_exception();
    }

    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(job), std::move(state)};
  }

  // Task-job analogue of make_job.
  MadeJob make_task_job(std::size_t count,
                        std::function<void(std::size_t, abft::Stats&)> fn,
                        const SubmitOptions& submit, std::size_t chunk) {
    ftfft::detail::require(fn != nullptr,
                           "BatchEngine::submit_tasks: null callable");
    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = count;
    report.per_lane.resize(count);
    report.errors.resize(count);
    report.exceptions.resize(count);
    if (count == 0) {
      state->ready.store(true, std::memory_order_release);
      return {nullptr, std::move(state)};
    }
    auto job = std::make_shared<Job>();
    job->task = std::move(fn);
    job->task_count = count;
    job->state = state;
    job->remaining.store(count, std::memory_order_relaxed);
    job->chunk = pick_chunk(count, num_threads_, chunk);
    apply_submit(*job, submit);
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(job), std::move(state)};
  }

  // Inserts a made job into its class queue in EDF position: deadlined
  // jobs sorted ascending by deadline ahead of the deadline-free FIFO
  // tail. Bumps sched_version_ so workers between chunks re-consult the
  // scheduler, and refreshes the earliest-queued-deadline hint.
  void enqueue_locked(const std::shared_ptr<Job>& job) {
    spawn_workers_locked();
    auto& q = queues_[class_index(job->priority)];
    auto pos = q.end();
    if (job->has_deadline) {
      pos = q.begin();
      while (pos != q.end() && (*pos)->has_deadline &&
             (*pos)->deadline <= job->deadline) {
        ++pos;
      }
    }
    job->queue_pos = q.insert(pos, job);
    job->enqueued = true;
    job->in_queue = true;
    ++queued_jobs_;
    sched_version_.fetch_add(1, std::memory_order_release);
    refresh_next_deadline_locked();
  }

  // Earliest deadline among the class fronts (the EDF ordering makes each
  // front its class's minimum) — the cheap hint workers poll between
  // chunks so an expiring queued job gets drained promptly.
  void refresh_next_deadline_locked() {
    std::int64_t next = kNoDeadline;
    for (const auto& q : queues_) {
      if (!q.empty() && q.front()->has_deadline) {
        next = std::min(next, to_ns(q.front()->deadline));
      }
    }
    next_deadline_ns_.store(next, std::memory_order_relaxed);
  }

  // Picks (and flags) the queued job admission should shed to make room
  // for a submission of class `incoming`: cancellable jobs of a class
  // strictly below it, lowest class first, newest first within a class —
  // the least valuable queued work goes first, and equal-class work is
  // never shed. Returns null when nothing is sheddable.
  std::shared_ptr<Job> pop_shed_victim_locked(Priority incoming) {
    const int inc = static_cast<int>(class_index(incoming));
    for (int c = static_cast<int>(kNumPriorities) - 1; c > inc; --c) {
      auto& q = queues_[static_cast<std::size_t>(c)];
      for (auto it = q.rbegin(); it != q.rend(); ++it) {
        Job& cand = **it;
        if (!cand.cancellable) continue;
        if (cand.shed_flag.load(std::memory_order_relaxed)) continue;
        cand.shed_flag.store(true, std::memory_order_release);
        return *it;
      }
    }
    return nullptr;
  }

  // Runs the shed victim's remaining items on the shedding thread — every
  // claim lands in skip_item (shed_flag is set), so this is a fast
  // bookkeeping sweep that frees the victim's pending-lane slots and
  // fulfills its future without waiting for a worker. Items a worker
  // claimed before the flag was set still run to completion (only
  // not-yet-started lanes are shed).
  void drain_shed(Job& job) {
    Impl* prev = t_pool_thread;
    t_pool_thread = this;  // callbacks run here may re-submit; never block
    Arena scratch;         // untouched: skipped items never stage
    work_on(job, scratch, /*preemptible=*/false);
    t_pool_thread = prev;
  }

  // Admission control: accounts the job's items against the pending-lane
  // cap, shedding lower-class cancellable queued work to make room, and —
  // for blocking submits — waiting for space up to the admission timeout.
  // On success the job is queued in EDF position and workers are woken
  // (only as many as it has chunks — a stream of small jobs must not
  // thundering-herd the whole pool awake; workers re-check the queues
  // before parking, so no job is stranded by waking too few). Returns
  // false when a non-blocking admission finds no room; throws
  // QueueFullError when a blocking admission times out.
  bool admit(const std::shared_ptr<Job>& job, bool blocking) {
    const std::size_t need = job->item_count();
    const bool pool_thread = t_pool_thread == this;
    std::size_t wakes = 0;
    {
      std::unique_lock lock(mu_);
      const std::chrono::nanoseconds timeout = job->admission_timeout;
      Clock::time_point wait_deadline{};
      if (blocking && timeout.count() > 0) {
        wait_deadline = Clock::now() + timeout;
      }
      for (;;) {
        const std::size_t cap = queue_cap_;
        // A job bigger than the cap is admitted once the queue is
        // otherwise empty, so oversized submissions make progress instead
        // of waiting forever.
        if (cap == 0 || pending_lanes_ + need <= cap ||
            (need > cap && pending_lanes_ == 0)) {
          break;
        }
        // Never block a pool thread on its own engine's cap: a worker
        // submitting a continuation (sharded rank phases, then-callbacks)
        // must stay runnable or admission could deadlock the pool. A
        // stopping engine admits through too — its draining workers run
        // everything enqueued before join.
        if (pool_thread || stop_) break;
        if (std::shared_ptr<Job> victim =
                pop_shed_victim_locked(job->priority)) {
          lock.unlock();
          drain_shed(*victim);
          lock.lock();
          continue;
        }
        if (!blocking) {
          lock.unlock();
          note_rejected(*job);
          return false;
        }
        if (timeout.count() == 0 ||
            (timeout.count() > 0 && Clock::now() >= wait_deadline)) {
          const std::size_t pending = pending_lanes_;
          lock.unlock();
          note_rejected(*job);
          throw QueueFullError(
              "BatchEngine: pending-lane queue cap reached (cap " +
              std::to_string(cap) + ", pending " + std::to_string(pending) +
              ", requested " + std::to_string(need) + ")");
        }
        if (timeout.count() > 0) {
          cv_space_.wait_until(lock, wait_deadline);
        } else {
          cv_space_.wait(lock);
        }
      }
      pending_lanes_ += need;
      job->counted_pending = true;
      enqueue_locked(job);
      wakes = std::min(num_threads_, (need + job->chunk - 1) / job->chunk);
    }
    for (std::size_t i = 0; i < wakes; ++i) cv_work_.notify_one();
    note_admitted(*job);
    return true;
  }

  // Shared admission epilogue: a rejected job must give back its
  // inflight-jobs count (make_* charged it optimistically).
  bool queue_job(const std::shared_ptr<Job>& job, bool blocking) {
    try {
      if (!admit(job, blocking)) {
        inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
        return false;
      }
    } catch (...) {
      inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
      throw;
    }
    return true;
  }

  BatchFuture submit(std::span<const Lane> lanes, std::size_t n,
                     const BatchOptions& opts) {
    MadeJob made = make_job(lanes, n, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    queue_job(made.job, /*blocking=*/true);
    return BatchFuture(std::move(made.state));
  }

  std::optional<BatchFuture> try_submit(std::span<const Lane> lanes,
                                        std::size_t n,
                                        const BatchOptions& opts) {
    MadeJob made = make_job(lanes, n, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    if (!queue_job(made.job, /*blocking=*/false)) return std::nullopt;
    return BatchFuture(std::move(made.state));
  }

  BatchFuture submit_real(std::span<const RealLane> lanes, std::size_t n,
                          RealDirection dir, const BatchOptions& opts) {
    MadeJob made = make_real_job(lanes, n, dir, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    queue_job(made.job, /*blocking=*/true);
    return BatchFuture(std::move(made.state));
  }

  std::optional<BatchFuture> try_submit_real(std::span<const RealLane> lanes,
                                             std::size_t n, RealDirection dir,
                                             const BatchOptions& opts) {
    MadeJob made = make_real_job(lanes, n, dir, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    if (!queue_job(made.job, /*blocking=*/false)) return std::nullopt;
    return BatchFuture(std::move(made.state));
  }

  BatchFuture submit_tasks(std::size_t count,
                           std::function<void(std::size_t, abft::Stats&)> fn,
                           const SubmitOptions& submit, std::size_t chunk) {
    MadeJob made = make_task_job(count, std::move(fn), submit, chunk);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    queue_job(made.job, /*blocking=*/true);
    return BatchFuture(std::move(made.state));
  }

  std::optional<BatchFuture> try_submit_tasks(
      std::size_t count, std::function<void(std::size_t, abft::Stats&)> fn,
      const SubmitOptions& submit, std::size_t chunk) {
    MadeJob made = make_task_job(count, std::move(fn), submit, chunk);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    if (!queue_job(made.job, /*blocking=*/false)) return std::nullopt;
    return BatchFuture(std::move(made.state));
  }

  // Marks an inline job as claimed-at-submission so its report and class
  // stats carry a meaningful queue-wait (~0) and run time.
  void mark_inline_started(Job& job) {
    job.started = true;  // same thread runs and finishes it; no sharing
    job.start_time = Clock::now();
  }

  // Blocking real-batch entry point: a single lane always qualifies for
  // the inline fast path (real lanes never stage through the arena).
  BatchReport run_sync_real(std::span<const RealLane> lanes, std::size_t n,
                            RealDirection dir, const BatchOptions& opts) {
    if (lanes.size() != 1) return submit_real(lanes, n, dir, opts).get();
    MadeJob made = make_real_job(lanes, n, dir, opts);
    note_admitted(*made.job);
    mark_inline_started(*made.job);
    Arena scratch;  // never grows: real lanes are staging-free
    work_on(*made.job, scratch, /*preemptible=*/false);
    return BatchFuture(std::move(made.state)).get();
  }

  // Blocking entry point. A single lane that needs no staging (the
  // single-shot protected_fft / transform_one shape) bypasses the queue —
  // and the admission cap — entirely: the caller thread runs the job
  // itself through the exact worker path (work_on -> run_lane -> finish),
  // so single-shot latency pays no cross-thread dispatch and does not sit
  // behind queued batches. The scratch arena is provably untouched
  // (run_lane stages only under preserve_inputs or aliased in/out), which
  // is what makes the inline run safe next to concurrent submitters
  // without sharing worker arenas.
  BatchReport run_sync(std::span<const Lane> lanes, std::size_t n,
                       const BatchOptions& opts) {
    const bool inline_eligible =
        lanes.size() == 1 && !opts.preserve_inputs &&
        lanes[0].out != lanes[0].in;
    if (!inline_eligible) return submit(lanes, n, opts).get();
    MadeJob made = make_job(lanes, n, opts);
    note_admitted(*made.job);
    mark_inline_started(*made.job);
    Arena scratch;  // never grows: the lane qualifies as staging-free
    work_on(*made.job, scratch, /*preemptible=*/false);
    return BatchFuture(std::move(made.state)).get();
  }

  [[nodiscard]] std::size_t staging_capacity() const {
    std::size_t total = 0;
    for (const Arena& arena : arenas_) total += arena.staging.size();
    return total;
  }

  [[nodiscard]] SchedulerStats snapshot_stats() const {
    SchedulerStats out;
    {
      std::scoped_lock lock(mu_);
      out.queue_cap = queue_cap_;
      out.pending_lanes = pending_lanes_;
    }
    std::scoped_lock lock(stats_mu_);
    for (std::size_t c = 0; c < kNumPriorities; ++c) {
      const ClassAccum& a = stats_[c];
      PriorityClassStats& s = out.classes[c];
      s.jobs_submitted = a.jobs_submitted;
      s.jobs_completed = a.jobs_completed;
      s.jobs_rejected = a.jobs_rejected;
      s.lanes_submitted = a.lanes_submitted;
      s.lanes_completed = a.lanes_completed;
      s.lanes_cancelled = a.lanes_cancelled;
      s.shed_lanes = a.shed_lanes;
      s.deadline_expired_lanes = a.deadline_expired_lanes;
      s.queue_wait = percentiles(a.wait_ring, a.wait_count, a.wait_max);
      s.run = percentiles(a.run_ring, a.run_count, a.run_max);
    }
    return out;
  }

  void reset_stats() {
    std::scoped_lock lock(stats_mu_);
    stats_.fill(ClassAccum{});
  }

  // Set while a thread is executing engine work (worker loops and the
  // shed-drain sweep): submissions from such threads never block on the
  // admission cap — a parked continuation would deadlock the pool.
  static thread_local Impl* t_pool_thread;

  const std::size_t num_threads_;
  std::vector<Arena> arenas_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> inflight_jobs_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // workers: queued work available
  std::condition_variable cv_space_;  // submitters: pending lanes freed
  std::array<std::list<std::shared_ptr<Job>>, kNumPriorities> queues_;
  std::size_t queued_jobs_ = 0;   // jobs currently linked into queues_
  std::size_t pending_lanes_ = 0; // admitted, not yet finished
  std::size_t queue_cap_;         // 0 = unbounded
  bool stop_ = false;

  // Lock-free hints workers poll between chunks (see should_reschedule).
  std::atomic<std::uint64_t> sched_version_{0};
  std::atomic<std::int64_t> next_deadline_ns_{kNoDeadline};

  const Priority default_priority_;
  const std::chrono::nanoseconds default_deadline_;  // 0 = none

  mutable std::mutex stats_mu_;  // ordered after mu_; never nested inside it
  std::array<ClassAccum, kNumPriorities> stats_{};
};

thread_local BatchEngine::Impl* BatchEngine::Impl::t_pool_thread = nullptr;

BatchEngine::BatchEngine(std::size_t num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchEngine::~BatchEngine() = default;

std::size_t BatchEngine::num_threads() const noexcept {
  return impl_->num_threads_;
}

std::size_t BatchEngine::pending_jobs() const noexcept {
  return impl_->inflight_jobs_.load(std::memory_order_acquire);
}

std::size_t BatchEngine::queue_cap() const {
  std::scoped_lock lock(impl_->mu_);
  return impl_->queue_cap_;
}

void BatchEngine::set_queue_cap(std::size_t cap) {
  {
    std::scoped_lock lock(impl_->mu_);
    impl_->queue_cap_ = cap;
  }
  impl_->cv_space_.notify_all();
}

SchedulerStats BatchEngine::scheduler_stats() const {
  return impl_->snapshot_stats();
}

void BatchEngine::reset_scheduler_stats() { impl_->reset_stats(); }

std::size_t BatchEngine::staging_capacity() const {
  return impl_->staging_capacity();
}

BatchFuture BatchEngine::submit_batch(std::span<const Lane> lanes,
                                      std::size_t n,
                                      const BatchOptions& opts) {
  return impl_->submit(lanes, n, opts);
}

BatchFuture BatchEngine::submit_batch(cplx* in, cplx* out, std::size_t n,
                                      std::size_t count,
                                      const BatchOptions& opts) {
  return impl_->submit(pack_lanes(in, out, n, count), n, opts);
}

std::optional<BatchFuture> BatchEngine::try_submit_batch(
    std::span<const Lane> lanes, std::size_t n, const BatchOptions& opts) {
  return impl_->try_submit(lanes, n, opts);
}

namespace {

// Contiguous real layout: lane L at re + L*n and spec + L*(n/2 + 1).
std::vector<RealLane> pack_real_lanes(double* re, cplx* spec, std::size_t n,
                                      std::size_t count) {
  ftfft::detail::require(re != nullptr && spec != nullptr,
                         "BatchEngine: real batch buffers must not be null");
  std::vector<RealLane> lanes(count);
  const std::size_t spectrum = n / 2 + 1;
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i].re = re + i * n;
    lanes[i].spec = spec + i * spectrum;
  }
  return lanes;
}

}  // namespace

BatchFuture BatchEngine::submit_real_batch(std::span<const RealLane> lanes,
                                           std::size_t n, RealDirection dir,
                                           const BatchOptions& opts) {
  return impl_->submit_real(lanes, n, dir, opts);
}

BatchFuture BatchEngine::submit_real_batch(double* re, cplx* spec,
                                           std::size_t n, std::size_t count,
                                           RealDirection dir,
                                           const BatchOptions& opts) {
  return impl_->submit_real(pack_real_lanes(re, spec, n, count), n, dir,
                            opts);
}

std::optional<BatchFuture> BatchEngine::try_submit_real_batch(
    std::span<const RealLane> lanes, std::size_t n, RealDirection dir,
    const BatchOptions& opts) {
  return impl_->try_submit_real(lanes, n, dir, opts);
}

BatchReport BatchEngine::transform_real_batch(std::span<const RealLane> lanes,
                                              std::size_t n, RealDirection dir,
                                              const BatchOptions& opts) {
  return impl_->run_sync_real(lanes, n, dir, opts);
}

BatchFuture BatchEngine::submit_tasks(
    std::size_t count, std::function<void(std::size_t, abft::Stats&)> fn,
    const SubmitOptions& submit, std::size_t chunk) {
  return impl_->submit_tasks(count, std::move(fn), submit, chunk);
}

std::optional<BatchFuture> BatchEngine::try_submit_tasks(
    std::size_t count, std::function<void(std::size_t, abft::Stats&)> fn,
    const SubmitOptions& submit, std::size_t chunk) {
  return impl_->try_submit_tasks(count, std::move(fn), submit, chunk);
}

BatchReport BatchEngine::transform_batch(std::span<const Lane> lanes,
                                         std::size_t n,
                                         const BatchOptions& opts) {
  return impl_->run_sync(lanes, n, opts);
}

BatchReport BatchEngine::transform_batch(cplx* in, cplx* out, std::size_t n,
                                         std::size_t count,
                                         const BatchOptions& opts) {
  return impl_->run_sync(pack_lanes(in, out, n, count), n, opts);
}

abft::Stats BatchEngine::transform_one(cplx* in, cplx* out, std::size_t n,
                                       const abft::Options& opts) {
  Lane lane{in, out, nullptr};
  BatchOptions batch_opts;
  batch_opts.abft = opts;
  BatchReport report = impl_->run_sync({&lane, 1}, n, batch_opts);
  // Rethrow the lane's original exception so single-shot callers keep the
  // documented taxonomy (invalid_argument for misuse, UncorrectableError
  // for fault-model violations).
  if (report.failed_lanes > 0) std::rethrow_exception(report.exceptions[0]);
  return report.per_lane[0];
}

BatchEngine& BatchEngine::shared() {
  static BatchEngine instance;
  return instance;
}

SchedulerStats scheduler_stats() {
  return BatchEngine::shared().scheduler_stats();
}

}  // namespace ftfft::engine
