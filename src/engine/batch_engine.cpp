#include "engine/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "abft/protected_fft.hpp"
#include "abft/protection_plan.hpp"
#include "abft/real_protection.hpp"
#include "common/aligned_buffer.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "fft/real_fft.hpp"

namespace ftfft::engine {

namespace detail {

/// Completion state of one submission, shared between the queued job, the
/// BatchFuture and any BatchTicket copies. The report's per-lane slots are
/// pre-sized at submission and written lock-free by workers (disjoint
/// indices); `ready` is published under `mu`, which orders those writes
/// before any reader.
struct BatchShared {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  bool report_taken = false;
  std::exception_ptr error;  // job aborted wholesale (never per-lane)
  BatchReport report;
  std::vector<std::function<void(BatchReport&)>> callbacks;
  std::atomic<bool> cancel{false};
};

}  // namespace detail

namespace {

void accumulate(abft::Stats& into, const abft::Stats& s) {
  into.comp_errors_detected += s.comp_errors_detected;
  into.mem_errors_detected += s.mem_errors_detected;
  into.mem_errors_corrected += s.mem_errors_corrected;
  into.sub_fft_retries += s.sub_fft_retries;
  into.full_restarts += s.full_restarts;
  into.dmr_mismatches += s.dmr_mismatches;
  into.verifications += s.verifications;
  // Thresholds are per-transform quantities; keep the widest one seen so
  // the batch report still answers "what eta was in force".
  into.eta_m = std::max(into.eta_m, s.eta_m);
  into.eta_k = std::max(into.eta_k, s.eta_k);
  into.eta_mem = std::max(into.eta_mem, s.eta_mem);
  into.eta_real = std::max(into.eta_real, s.eta_real);
}

// Expands the contiguous batch layout (lane L at in + L*n / out + L*n)
// into lane descriptors; out == nullptr means every lane is in place.
std::vector<Lane> pack_lanes(cplx* in, cplx* out, std::size_t n,
                             std::size_t count) {
  ftfft::detail::require(in != nullptr,
                         "BatchEngine: batch input must not be null");
  std::vector<Lane> lanes(count);
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i].in = in + i * n;
    lanes[i].out = out == nullptr ? nullptr : out + i * n;
  }
  return lanes;
}

std::size_t pick_chunk(std::size_t lanes, std::size_t threads,
                       std::size_t requested) {
  if (requested > 0) return requested;
  // ~4 grabs per worker: enough slack for load balancing without
  // hammering the shared cursor on small lanes.
  const std::size_t grabs = std::max<std::size_t>(threads * 4, 1);
  return std::max<std::size_t>(1, (lanes + grabs - 1) / grabs);
}

/// Fulfills the shared state: drains the registered callbacks (outside the
/// state lock, re-checking for ones registered mid-drain), then publishes
/// ready — so a caller that observes ready via wait()/get() knows every
/// callback registered before completion has finished. Callbacks are
/// documented non-throwing; a throw here would take down a worker thread,
/// so it is swallowed.
void fulfill(detail::BatchShared& state) {
  for (;;) {
    std::vector<std::function<void(BatchReport&)>> callbacks;
    {
      std::scoped_lock lock(state.mu);
      if (state.callbacks.empty()) {
        state.ready = true;
        break;
      }
      callbacks.swap(state.callbacks);
    }
    for (auto& cb : callbacks) {
      try {
        cb(state.report);
      } catch (...) {
      }
    }
  }
  state.cv.notify_all();
}

}  // namespace

// ------------------------------------------------------------- BatchTicket

BatchTicket::BatchTicket(std::shared_ptr<detail::BatchShared> shared)
    : shared_(std::move(shared)) {}

void BatchTicket::cancel() const noexcept {
  if (shared_) shared_->cancel.store(true, std::memory_order_relaxed);
}

bool BatchTicket::cancelled() const noexcept {
  return shared_ && shared_->cancel.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------- BatchFuture

BatchFuture::BatchFuture(std::shared_ptr<detail::BatchShared> shared)
    : shared_(std::move(shared)) {}

bool BatchFuture::ready() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  std::scoped_lock lock(shared_->mu);
  return shared_->ready;
}

void BatchFuture::wait() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  std::unique_lock lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->ready; });
}

bool BatchFuture::wait_for(std::chrono::nanoseconds timeout) const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  std::unique_lock lock(shared_->mu);
  return shared_->cv.wait_for(lock, timeout, [&] { return shared_->ready; });
}

BatchReport BatchFuture::get() {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  BatchReport out;
  {
    std::unique_lock lock(shared_->mu);
    shared_->cv.wait(lock, [&] { return shared_->ready; });
    ftfft::detail::require(!shared_->report_taken,
                    "BatchFuture::get: report already taken");
    if (shared_->error) {
      std::exception_ptr error = shared_->error;
      lock.unlock();
      shared_.reset();
      std::rethrow_exception(error);
    }
    shared_->report_taken = true;
    out = std::move(shared_->report);
  }
  shared_.reset();
  return out;
}

void BatchFuture::then(std::function<void(BatchReport&)> cb) {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  ftfft::detail::require(cb != nullptr, "BatchFuture::then: null callback");
  std::scoped_lock lock(shared_->mu);
  if (!shared_->ready) {
    shared_->callbacks.push_back(std::move(cb));
    return;
  }
  // Already completed: run inline on the caller. The lock stays held so a
  // concurrent get() on a copy of this future cannot move the report out
  // from under the callback (which is why callbacks must not re-enter this
  // future); a report already consumed by get() is caught misuse.
  ftfft::detail::require(!shared_->report_taken,
                         "BatchFuture::then: report already taken by get()");
  cb(shared_->report);
}

BatchTicket BatchFuture::ticket() const {
  ftfft::detail::require(shared_ != nullptr, "BatchFuture: no associated batch");
  return BatchTicket(shared_);
}

// -------------------------------------------------------------- BatchEngine

struct BatchEngine::Impl {
  // Capacity/peak ratio beyond which an arena counts as oversized, and how
  // many consecutive oversized jobs it takes before the excess is
  // released. The patience keeps alternating big/small workloads from
  // reallocating every job.
  static constexpr std::size_t kTrimFactor = 4;
  static constexpr int kTrimPatience = 2;

  // Per-worker staging storage, reused across lanes and jobs.
  struct Arena {
    AlignedBuffer<cplx> staging;
    std::size_t batch_peak = 0;  // largest request in the current job
    int oversized_batches = 0;   // consecutive jobs far below capacity

    cplx* ensure(std::size_t n) {
      batch_peak = std::max(batch_peak, n);
      if (staging.size() < n) {
        staging = AlignedBuffer<cplx>(n);
        oversized_batches = 0;
      }
      return staging.data();
    }

    // High-water trim: a one-off huge job should not pin its staging
    // forever. After kTrimPatience consecutive jobs whose peak demand
    // stayed kTrimFactor below the arena's capacity, shrink to that peak.
    // Jobs that never touched this arena are not evidence of shrinking
    // demand (under-subscribed workloads rotate which workers win chunks);
    // they leave the counter untouched so participation gaps don't cause
    // free/realloc churn.
    void end_batch() {
      if (batch_peak == 0) return;
      if (!staging.empty() && batch_peak * kTrimFactor <= staging.size()) {
        if (++oversized_batches >= kTrimPatience) {
          staging = AlignedBuffer<cplx>(batch_peak);
          oversized_batches = 0;
        }
      } else {
        oversized_batches = 0;
      }
      batch_peak = 0;
    }
  };

  // One queued submission. Heap-owned and linked into the engine's
  // intrusive FIFO through `next`; kept alive by shared_ptrs held by the
  // queue, by every worker currently draining it, and (through `state`)
  // by the caller's BatchFuture/BatchTicket. All non-atomic fields are
  // written by the submitting thread before the job is published under the
  // queue mutex and never mutated afterwards.
  struct Job {
    std::vector<Lane> lanes;
    std::size_t n = 0;
    BatchOptions opts;
    // Protection plans resolved once at submission and shared by every
    // lane (rA generation and threshold derivation drop from O(lanes * n)
    // to O(n) per batch); the shared_ptrs pin them however long the job
    // waits in the queue, even if the LRU cache evicts them. Resolution
    // failures are parked as exception_ptrs so they surface per lane,
    // preserving the report's failure isolation.
    std::shared_ptr<const abft::ProtectionPlan> plan;          // out-of-place
    std::shared_ptr<const abft::ProtectionPlan> plan_inplace;  // in-place
    std::exception_ptr plan_error;
    std::exception_ptr plan_inplace_error;
    std::shared_ptr<detail::BatchShared> state;
    // Real-lane job (submit_real_batch): when `real_lanes` is non-empty,
    // `lanes` stays empty and the items run through run_real_lane with the
    // plans below — same claiming, cancellation and failure isolation.
    std::vector<RealLane> real_lanes;
    RealDirection real_dir = RealDirection::kForward;
    std::shared_ptr<const fft::RealFftPlan> real_fft_plan;  // Mode::kNone
    std::shared_ptr<const abft::RealProtectionPlan> real_plan;
    std::shared_ptr<const abft::ProtectionPlan> real_cplan;  // packed n/2
    std::exception_ptr real_plan_error;
    // Generic task job (submit_tasks): when `task` is set, `lanes` stays
    // empty and `task_count` work items run through it instead of
    // run_lane — same cursor/chunk claiming, same cancellation, same
    // per-item failure isolation.
    std::function<void(std::size_t, abft::Stats&)> task;
    std::size_t task_count = 0;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::size_t> cancelled{0};
    std::size_t chunk = 1;
    std::shared_ptr<Job> next;  // FIFO link, guarded by mu_

    [[nodiscard]] std::size_t item_count() const noexcept {
      if (task) return task_count;
      return real_lanes.empty() ? lanes.size() : real_lanes.size();
    }
  };

  explicit Impl(std::size_t num_threads)
      : num_threads_(resolve_threads(num_threads)), arenas_(num_threads_) {}

  static std::size_t resolve_threads(std::size_t requested) {
    if (requested != 0) return requested;
    const std::size_t from_env = env_size("FTFFT_ENGINE_THREADS", 0);
    if (from_env != 0) return from_env;
    return std::max(1u, std::thread::hardware_concurrency());
  }

  // Drains the queue: workers keep pulling jobs after stop_ is set and
  // only exit once nothing is left to claim, and join() then waits for
  // in-flight lanes — so every future is fulfilled before the engine dies.
  ~Impl() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void spawn_workers_locked() {
    if (!workers_.empty()) return;
    workers_.reserve(num_threads_);
    for (std::size_t w = 0; w < num_threads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  void worker_loop(std::size_t arena_index) {
    Arena& arena = arenas_[arena_index];
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || head_ != nullptr; });
        if (head_ == nullptr) return;  // stop_ set and queue drained
        job = head_;
      }
      work_on(*job, arena);
    }
  }

  // Claims chunks of the job's lanes until its cursor is exhausted, then
  // retires it from the queue front (so workers move on to the next job
  // while stragglers finish this one) and, if this worker ran the job's
  // final lane, fulfills its future.
  void work_on(Job& job, Arena& arena) {
    const std::size_t count = job.item_count();
    std::size_t done = 0;
    for (;;) {
      const std::size_t begin =
          job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + job.chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        if (job.task) {
          run_task(job, i);
        } else if (!job.real_lanes.empty()) {
          run_real_lane(job, i);
        } else {
          run_lane(job, i, arena);
        }
      }
      done += end - begin;
    }
    {
      std::scoped_lock lock(mu_);
      if (head_.get() == &job) {
        head_ = std::move(head_->next);
        if (head_ == nullptr) tail_ = nullptr;
      }
    }
    // Trim bookkeeping happens before this worker's lanes are subtracted
    // from `remaining`, so a ready future implies no worker still touches
    // an arena on this job's behalf (staging_capacity() stays readable
    // from the caller once the engine is idle).
    arena.end_batch();
    if (done > 0 &&
        job.remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
      finish(job);
    }
  }

  // One generic work item: the cancellation and failure-isolation contract
  // of run_lane, minus staging and plan state (the callable brings its own).
  void run_task(Job& job, std::size_t index) {
    BatchReport& report = job.state->report;
    if (job.state->cancel.load(std::memory_order_relaxed)) {
      report.errors[index] = "task cancelled before execution";
      report.exceptions[index] = std::make_exception_ptr(
          CancelledError("BatchEngine: task cancelled before execution"));
      job.cancelled.fetch_add(1, std::memory_order_release);
      return;
    }
    try {
      job.task(index, report.per_lane[index]);
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  void run_lane(Job& job, std::size_t index, Arena& arena) {
    BatchReport& report = job.state->report;
    if (job.state->cancel.load(std::memory_order_relaxed)) {
      report.errors[index] = "lane cancelled before execution";
      report.exceptions[index] = std::make_exception_ptr(
          CancelledError("BatchEngine: lane cancelled before execution"));
      // Release pairs with the acquire load in finish(): the finishing
      // worker must observe every increment (and the error slots written
      // above) without leaning on the release sequence of `remaining` —
      // the relaxed/relaxed pair this replaces left the count's visibility
      // an accident of the completion counter's ordering.
      job.cancelled.fetch_add(1, std::memory_order_release);
      return;
    }
    const Lane& lane = job.lanes[index];
    const std::size_t n = job.n;
    abft::Options opts = job.opts.abft;
    if (lane.injector != nullptr) opts.injector = lane.injector;
    try {
      const bool inplace = lane.out == nullptr;
      if (inplace && job.plan_inplace_error) {
        std::rethrow_exception(job.plan_inplace_error);
      }
      if (!inplace && job.plan_error) std::rethrow_exception(job.plan_error);
      cplx* in = lane.in;
      if (job.opts.preserve_inputs || lane.out == lane.in) {
        cplx* staged = arena.ensure(n);
        std::copy(lane.in, lane.in + n, staged);
        in = staged;
      }
      abft::Stats& stats = report.per_lane[index];
      if (inplace) {
        abft::protected_transform_inplace(in, n, opts, stats,
                                          job.plan_inplace.get());
        if (in != lane.in) std::copy(in, in + n, lane.in);
      } else {
        abft::protected_transform(in, lane.out, n, opts, stats,
                                  job.plan.get());
      }
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  // One real lane: run_lane's cancellation and failure-isolation contract
  // without staging (real lanes never modify their source buffer — the
  // protected paths work out of internal scratch).
  void run_real_lane(Job& job, std::size_t index) {
    BatchReport& report = job.state->report;
    if (job.state->cancel.load(std::memory_order_relaxed)) {
      report.errors[index] = "lane cancelled before execution";
      report.exceptions[index] = std::make_exception_ptr(
          CancelledError("BatchEngine: lane cancelled before execution"));
      job.cancelled.fetch_add(1, std::memory_order_release);
      return;
    }
    const RealLane& lane = job.real_lanes[index];
    abft::Options opts = job.opts.abft;
    if (lane.injector != nullptr) opts.injector = lane.injector;
    try {
      if (job.real_plan_error) std::rethrow_exception(job.real_plan_error);
      abft::Stats& stats = report.per_lane[index];
      if (opts.mode == abft::Mode::kNone) {
        if (job.real_dir == RealDirection::kForward) {
          job.real_fft_plan->r2c(lane.re, lane.spec);
        } else {
          job.real_fft_plan->c2r(lane.spec, lane.re);
        }
      } else if (job.real_dir == RealDirection::kForward) {
        abft::protected_r2c(lane.re, lane.spec, job.n, opts, stats,
                            job.real_plan.get(), job.real_cplan.get());
      } else {
        abft::protected_c2r(lane.spec, lane.re, job.n, opts, stats,
                            job.real_plan.get(), job.real_cplan.get());
      }
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    } catch (...) {
      report.errors[index] = "unknown exception";
      report.exceptions[index] = std::current_exception();
    }
  }

  // Tallies the finished job's report and fulfills its future. Runs on the
  // worker that completed the last lane; every other worker has already
  // subtracted its contribution, so the report slots are quiescent.
  void finish(Job& job) {
    detail::BatchShared& state = *job.state;
    try {
      BatchReport& report = state.report;
      // Acquire pairs with the release increments in run_lane's cancel path.
      report.cancelled_lanes = job.cancelled.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < report.lanes; ++i) {
        if (report.errors[i].empty()) {
          accumulate(report.totals, report.per_lane[i]);
        } else {
          ++report.failed_lanes;
        }
      }
    } catch (...) {
      state.error = std::current_exception();
    }
    inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    fulfill(state);
  }

  struct MadeJob {
    std::shared_ptr<Job> job;  // null for an empty batch (already ready)
    std::shared_ptr<detail::BatchShared> state;
  };

  // Validation, report sizing, lane copy and plan resolution — everything a
  // submission needs short of choosing where it executes (queue or inline).
  MadeJob make_job(std::span<const Lane> lanes, std::size_t n,
                   const BatchOptions& opts) {
    ftfft::detail::require(n >= 1, "BatchEngine: size must be >= 1");
    for (const Lane& lane : lanes) {
      ftfft::detail::require(lane.in != nullptr,
                      "BatchEngine: lane input must not be null");
    }
    // Injector::apply mutates armed-fault state; a single injector shared
    // by concurrently executing lanes would race. Per-lane injectors are
    // the supported way to fault a batch.
    ftfft::detail::require(opts.abft.injector == nullptr || lanes.size() <= 1 ||
                        num_threads_ == 1,
                    "BatchEngine: a batch-wide injector is not thread-safe; "
                    "use per-lane Lane::injector instead");

    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = lanes.size();
    report.per_lane.resize(lanes.size());
    report.errors.resize(lanes.size());
    report.exceptions.resize(lanes.size());
    if (lanes.empty()) {
      state->ready = true;  // nothing to run; ready before anyone looks
      return {nullptr, std::move(state)};
    }

    auto job = std::make_shared<Job>();
    job->lanes.assign(lanes.begin(), lanes.end());
    job->n = n;
    job->opts = opts;
    job->state = state;
    job->remaining.store(lanes.size(), std::memory_order_relaxed);
    job->chunk = pick_chunk(lanes.size(), num_threads_, opts.chunk);

    // Resolve the ProtectionPlan(s) at submission time: on a warm cache
    // (see ftfft::warm_plans) this is a lock + hash lookup, so submission
    // cost is independent of n. A resolution failure (unsupported size for
    // the options) is reported per lane, matching the old per-lane throw.
    bool need_oop = false;
    bool need_inplace = false;
    for (const Lane& lane : lanes) {
      (lane.out == nullptr ? need_inplace : need_oop) = true;
    }
    if (need_oop) {
      try {
        job->plan = abft::resolve_protection_plan(n, opts.abft, false);
      } catch (...) {
        job->plan_error = std::current_exception();
      }
    }
    if (need_inplace) {
      try {
        job->plan_inplace = abft::resolve_protection_plan(n, opts.abft, true);
      } catch (...) {
        job->plan_inplace_error = std::current_exception();
      }
    }

    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(job), std::move(state)};
  }

  // Real-lane analogue of make_job: validation, report sizing, lane copy
  // and one-time resolution of the three plans every lane shares. A
  // resolution failure (n not a power of two >= 2) is parked and surfaces
  // per lane, like complex plan failures.
  MadeJob make_real_job(std::span<const RealLane> lanes, std::size_t n,
                        RealDirection dir, const BatchOptions& opts) {
    ftfft::detail::require(n >= 1, "BatchEngine: size must be >= 1");
    for (const RealLane& lane : lanes) {
      ftfft::detail::require(lane.re != nullptr && lane.spec != nullptr,
                             "BatchEngine: real lane buffers must not be null");
    }
    ftfft::detail::require(
        opts.abft.injector == nullptr || lanes.size() <= 1 ||
            num_threads_ == 1,
        "BatchEngine: a batch-wide injector is not thread-safe; "
        "use per-lane RealLane::injector instead");

    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = lanes.size();
    report.per_lane.resize(lanes.size());
    report.errors.resize(lanes.size());
    report.exceptions.resize(lanes.size());
    if (lanes.empty()) {
      state->ready = true;
      return {nullptr, std::move(state)};
    }

    auto job = std::make_shared<Job>();
    job->real_lanes.assign(lanes.begin(), lanes.end());
    job->real_dir = dir;
    job->n = n;
    job->opts = opts;
    job->state = state;
    job->remaining.store(lanes.size(), std::memory_order_relaxed);
    job->chunk = pick_chunk(lanes.size(), num_threads_, opts.chunk);
    try {
      if (opts.abft.mode == abft::Mode::kNone) {
        job->real_fft_plan = fft::RealFftPlan::get(n);
      } else {
        job->real_plan = abft::RealProtectionPlan::get(n);
        job->real_cplan = abft::resolve_real_packed_plan(n, opts.abft);
      }
    } catch (...) {
      job->real_plan_error = std::current_exception();
    }

    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(job), std::move(state)};
  }

  // Appends a made job to the FIFO and wakes workers. Wake only as many as
  // the job has chunks to claim — a stream of small jobs must not
  // thundering-herd the whole pool awake. Workers already running re-check
  // the queue before parking, so no job is ever stranded by waking too few.
  void enqueue(std::shared_ptr<Job> job) {
    const std::size_t count = job->item_count();
    const std::size_t chunk = job->chunk;
    {
      std::scoped_lock lock(mu_);
      spawn_workers_locked();
      if (tail_ == nullptr) {
        head_ = job;
      } else {
        tail_->next = job;
      }
      tail_ = job.get();
    }
    const std::size_t wakes =
        std::min(num_threads_, (count + chunk - 1) / chunk);
    for (std::size_t i = 0; i < wakes; ++i) cv_work_.notify_one();
  }

  BatchFuture submit(std::span<const Lane> lanes, std::size_t n,
                     const BatchOptions& opts) {
    MadeJob made = make_job(lanes, n, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    enqueue(std::move(made.job));
    return BatchFuture(std::move(made.state));
  }

  BatchFuture submit_real(std::span<const RealLane> lanes, std::size_t n,
                          RealDirection dir, const BatchOptions& opts) {
    MadeJob made = make_real_job(lanes, n, dir, opts);
    if (made.job == nullptr) return BatchFuture(std::move(made.state));
    enqueue(std::move(made.job));
    return BatchFuture(std::move(made.state));
  }

  // Blocking real-batch entry point: a single lane always qualifies for
  // the inline fast path (real lanes never stage through the arena).
  BatchReport run_sync_real(std::span<const RealLane> lanes, std::size_t n,
                            RealDirection dir, const BatchOptions& opts) {
    if (lanes.size() != 1) return submit_real(lanes, n, dir, opts).get();
    MadeJob made = make_real_job(lanes, n, dir, opts);
    Arena scratch;  // never grows: real lanes are staging-free
    work_on(*made.job, scratch);
    return BatchFuture(std::move(made.state)).get();
  }

  BatchFuture submit_tasks(std::size_t count,
                           std::function<void(std::size_t, abft::Stats&)> fn,
                           std::size_t chunk) {
    ftfft::detail::require(fn != nullptr,
                           "BatchEngine::submit_tasks: null callable");
    auto state = std::make_shared<detail::BatchShared>();
    BatchReport& report = state->report;
    report.lanes = count;
    report.per_lane.resize(count);
    report.errors.resize(count);
    report.exceptions.resize(count);
    if (count == 0) {
      state->ready = true;
      return BatchFuture(std::move(state));
    }
    auto job = std::make_shared<Job>();
    job->task = std::move(fn);
    job->task_count = count;
    job->state = state;
    job->remaining.store(count, std::memory_order_relaxed);
    job->chunk = pick_chunk(count, num_threads_, chunk);
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    enqueue(std::move(job));
    return BatchFuture(std::move(state));
  }

  // Blocking entry point. A single lane that needs no staging (the
  // single-shot protected_fft / transform_one shape) bypasses the queue
  // entirely: the caller thread runs the job itself through the exact
  // worker path (work_on -> run_lane -> finish), so single-shot latency
  // pays no cross-thread dispatch and does not sit behind queued batches.
  // The scratch arena is provably untouched (run_lane stages only under
  // preserve_inputs or aliased in/out), which is what makes the inline run
  // safe next to concurrent submitters without sharing worker arenas.
  BatchReport run_sync(std::span<const Lane> lanes, std::size_t n,
                       const BatchOptions& opts) {
    const bool inline_eligible =
        lanes.size() == 1 && !opts.preserve_inputs &&
        lanes[0].out != lanes[0].in;
    if (!inline_eligible) return submit(lanes, n, opts).get();
    MadeJob made = make_job(lanes, n, opts);
    Arena scratch;  // never grows: the lane qualifies as staging-free
    work_on(*made.job, scratch);
    return BatchFuture(std::move(made.state)).get();
  }

  [[nodiscard]] std::size_t staging_capacity() const {
    std::size_t total = 0;
    for (const Arena& arena : arenas_) total += arena.staging.size();
    return total;
  }

  const std::size_t num_threads_;
  std::vector<Arena> arenas_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> inflight_jobs_{0};

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::shared_ptr<Job> head_;  // FIFO front; jobs pop when fully claimed
  Job* tail_ = nullptr;
  bool stop_ = false;
};

BatchEngine::BatchEngine(std::size_t num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchEngine::~BatchEngine() = default;

std::size_t BatchEngine::num_threads() const noexcept {
  return impl_->num_threads_;
}

std::size_t BatchEngine::pending_jobs() const noexcept {
  return impl_->inflight_jobs_.load(std::memory_order_acquire);
}

std::size_t BatchEngine::staging_capacity() const {
  return impl_->staging_capacity();
}

BatchFuture BatchEngine::submit_batch(std::span<const Lane> lanes,
                                      std::size_t n,
                                      const BatchOptions& opts) {
  return impl_->submit(lanes, n, opts);
}

BatchFuture BatchEngine::submit_batch(cplx* in, cplx* out, std::size_t n,
                                      std::size_t count,
                                      const BatchOptions& opts) {
  return impl_->submit(pack_lanes(in, out, n, count), n, opts);
}

namespace {

// Contiguous real layout: lane L at re + L*n and spec + L*(n/2 + 1).
std::vector<RealLane> pack_real_lanes(double* re, cplx* spec, std::size_t n,
                                      std::size_t count) {
  ftfft::detail::require(re != nullptr && spec != nullptr,
                         "BatchEngine: real batch buffers must not be null");
  std::vector<RealLane> lanes(count);
  const std::size_t spectrum = n / 2 + 1;
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i].re = re + i * n;
    lanes[i].spec = spec + i * spectrum;
  }
  return lanes;
}

}  // namespace

BatchFuture BatchEngine::submit_real_batch(std::span<const RealLane> lanes,
                                           std::size_t n, RealDirection dir,
                                           const BatchOptions& opts) {
  return impl_->submit_real(lanes, n, dir, opts);
}

BatchFuture BatchEngine::submit_real_batch(double* re, cplx* spec,
                                           std::size_t n, std::size_t count,
                                           RealDirection dir,
                                           const BatchOptions& opts) {
  return impl_->submit_real(pack_real_lanes(re, spec, n, count), n, dir,
                            opts);
}

BatchReport BatchEngine::transform_real_batch(std::span<const RealLane> lanes,
                                              std::size_t n, RealDirection dir,
                                              const BatchOptions& opts) {
  return impl_->run_sync_real(lanes, n, dir, opts);
}

BatchFuture BatchEngine::submit_tasks(
    std::size_t count, std::function<void(std::size_t, abft::Stats&)> fn,
    std::size_t chunk) {
  return impl_->submit_tasks(count, std::move(fn), chunk);
}

BatchReport BatchEngine::transform_batch(std::span<const Lane> lanes,
                                         std::size_t n,
                                         const BatchOptions& opts) {
  return impl_->run_sync(lanes, n, opts);
}

BatchReport BatchEngine::transform_batch(cplx* in, cplx* out, std::size_t n,
                                         std::size_t count,
                                         const BatchOptions& opts) {
  return impl_->run_sync(pack_lanes(in, out, n, count), n, opts);
}

abft::Stats BatchEngine::transform_one(cplx* in, cplx* out, std::size_t n,
                                       const abft::Options& opts) {
  Lane lane{in, out, nullptr};
  BatchOptions batch_opts;
  batch_opts.abft = opts;
  BatchReport report = impl_->run_sync({&lane, 1}, n, batch_opts);
  // Rethrow the lane's original exception so single-shot callers keep the
  // documented taxonomy (invalid_argument for misuse, UncorrectableError
  // for fault-model violations).
  if (report.failed_lanes > 0) std::rethrow_exception(report.exceptions[0]);
  return report.per_lane[0];
}

BatchEngine& BatchEngine::shared() {
  static BatchEngine instance;
  return instance;
}

}  // namespace ftfft::engine
