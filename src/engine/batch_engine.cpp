#include "engine/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "abft/protected_fft.hpp"
#include "abft/protection_plan.hpp"
#include "common/aligned_buffer.hpp"
#include "common/error.hpp"

namespace ftfft::engine {

namespace {

void accumulate(abft::Stats& into, const abft::Stats& s) {
  into.comp_errors_detected += s.comp_errors_detected;
  into.mem_errors_detected += s.mem_errors_detected;
  into.mem_errors_corrected += s.mem_errors_corrected;
  into.sub_fft_retries += s.sub_fft_retries;
  into.full_restarts += s.full_restarts;
  into.dmr_mismatches += s.dmr_mismatches;
  into.verifications += s.verifications;
  // Thresholds are per-transform quantities; keep the widest one seen so
  // the batch report still answers "what eta was in force".
  into.eta_m = std::max(into.eta_m, s.eta_m);
  into.eta_k = std::max(into.eta_k, s.eta_k);
  into.eta_mem = std::max(into.eta_mem, s.eta_mem);
}

std::size_t pick_chunk(std::size_t lanes, std::size_t threads,
                       std::size_t requested) {
  if (requested > 0) return requested;
  // ~4 grabs per worker: enough slack for load balancing without
  // hammering the shared cursor on small lanes.
  const std::size_t grabs = std::max<std::size_t>(threads * 4, 1);
  return std::max<std::size_t>(1, (lanes + grabs - 1) / grabs);
}

}  // namespace

struct BatchEngine::Impl {
  // Capacity/peak ratio beyond which an arena counts as oversized, and how
  // many consecutive oversized batches it takes before the excess is
  // released. The patience keeps alternating big/small workloads from
  // reallocating every batch.
  static constexpr std::size_t kTrimFactor = 4;
  static constexpr int kTrimPatience = 2;

  // Per-worker staging storage, reused across lanes and batches.
  struct Arena {
    AlignedBuffer<cplx> staging;
    std::size_t batch_peak = 0;  // largest request in the current batch
    int oversized_batches = 0;   // consecutive batches far below capacity

    cplx* ensure(std::size_t n) {
      batch_peak = std::max(batch_peak, n);
      if (staging.size() < n) {
        staging = AlignedBuffer<cplx>(n);
        oversized_batches = 0;
      }
      return staging.data();
    }

    // High-water trim: a one-off huge batch should not pin its staging
    // forever. After kTrimPatience consecutive batches whose peak demand
    // stayed kTrimFactor below the arena's capacity, shrink to that peak.
    // Batches that never touched this arena are not evidence of shrinking
    // demand (under-subscribed workloads rotate which workers win chunks);
    // they leave the counter untouched so participation gaps don't cause
    // free/realloc churn.
    void end_batch() {
      if (batch_peak == 0) return;
      if (!staging.empty() && batch_peak * kTrimFactor <= staging.size()) {
        if (++oversized_batches >= kTrimPatience) {
          staging = AlignedBuffer<cplx>(batch_peak);
          oversized_batches = 0;
        }
      } else {
        oversized_batches = 0;
      }
      batch_peak = 0;
    }
  };

  // One batch in flight; guarded by mu for publication, raced via atomics.
  struct Job {
    const Lane* lanes = nullptr;
    std::size_t count = 0;
    std::size_t n = 0;
    const BatchOptions* opts = nullptr;
    BatchReport* report = nullptr;
    // Protection plans resolved once per batch and shared by every lane
    // (rA generation and threshold derivation drop from O(lanes * n) to
    // O(n) per batch). Resolution failures are parked as exception_ptrs so
    // they surface per lane, preserving the report's failure isolation.
    const abft::ProtectionPlan* plan = nullptr;          // out-of-place lanes
    const abft::ProtectionPlan* plan_inplace = nullptr;  // in-place lanes
    std::exception_ptr plan_error;
    std::exception_ptr plan_inplace_error;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::size_t> workers_inside{0};
    std::size_t chunk = 1;
  };

  explicit Impl(std::size_t num_threads)
      : num_threads_(num_threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : num_threads),
        arenas_(num_threads_) {}

  ~Impl() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void spawn_workers() {
    if (!workers_.empty() || num_threads_ <= 1) return;
    workers_.reserve(num_threads_ - 1);
    // Worker w uses arenas_[w]; the caller thread (which participates in
    // every batch) uses the last arena slot.
    for (std::size_t w = 0; w + 1 < num_threads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  void worker_loop(std::size_t arena_index) {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock lock(mu_);
        cv_work_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
        // job_ can already be retired (batch finished before this worker
        // woke); the caller clears it under mu_, so a non-null read here
        // guarantees the Job outlives our drain (the caller additionally
        // waits for workers_inside to hit zero).
        if (job == nullptr) continue;
        job->workers_inside.fetch_add(1, std::memory_order_relaxed);
      }
      drain(*job, arenas_[arena_index]);
      {
        std::scoped_lock lock(mu_);
        job->workers_inside.fetch_sub(1, std::memory_order_acq_rel);
        cv_done_.notify_all();
      }
    }
  }

  // Claims chunks of lanes until the batch cursor is exhausted.
  void drain(Job& job, Arena& arena) {
    for (;;) {
      const std::size_t begin =
          job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.count) break;
      const std::size_t end = std::min(begin + job.chunk, job.count);
      for (std::size_t i = begin; i < end; ++i) {
        run_lane(job, i, arena);
      }
      const std::size_t done = end - begin;
      if (job.remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
        std::scoped_lock lock(mu_);
        cv_done_.notify_all();
      }
    }
  }

  void run_lane(Job& job, std::size_t index, Arena& arena) {
    const Lane& lane = job.lanes[index];
    const std::size_t n = job.n;
    BatchReport& report = *job.report;
    abft::Options opts = job.opts->abft;
    if (lane.injector != nullptr) opts.injector = lane.injector;
    try {
      const bool inplace = lane.out == nullptr;
      if (inplace && job.plan_inplace_error) {
        std::rethrow_exception(job.plan_inplace_error);
      }
      if (!inplace && job.plan_error) std::rethrow_exception(job.plan_error);
      cplx* in = lane.in;
      if (job.opts->preserve_inputs || lane.out == lane.in) {
        cplx* staged = arena.ensure(n);
        std::copy(lane.in, lane.in + n, staged);
        in = staged;
      }
      abft::Stats& stats = report.per_lane[index];
      if (inplace) {
        abft::protected_transform_inplace(in, n, opts, stats,
                                          job.plan_inplace);
        if (in != lane.in) std::copy(in, in + n, lane.in);
      } else {
        abft::protected_transform(in, lane.out, n, opts, stats, job.plan);
      }
    } catch (const std::exception& e) {
      report.errors[index] = e.what();
      report.exceptions[index] = std::current_exception();
    }
  }

  BatchReport run(std::span<const Lane> lanes, std::size_t n,
                  const BatchOptions& opts) {
    detail::require(n >= 1, "BatchEngine: size must be >= 1");
    for (const Lane& lane : lanes) {
      detail::require(lane.in != nullptr,
                      "BatchEngine: lane input must not be null");
    }
    // Injector::apply mutates armed-fault state; a single injector shared
    // by concurrently executing lanes would race. Per-lane injectors are
    // the supported way to fault a batch.
    detail::require(opts.abft.injector == nullptr || lanes.size() <= 1 ||
                        num_threads_ == 1,
                    "BatchEngine: a batch-wide injector is not thread-safe; "
                    "use per-lane Lane::injector instead");
    BatchReport report;
    report.lanes = lanes.size();
    report.per_lane.resize(lanes.size());
    report.errors.resize(lanes.size());
    report.exceptions.resize(lanes.size());
    if (lanes.empty()) return report;

    Job job;
    job.lanes = lanes.data();
    job.count = lanes.size();
    job.n = n;
    job.opts = &opts;
    job.report = &report;
    job.remaining.store(lanes.size(), std::memory_order_relaxed);
    job.chunk = pick_chunk(lanes.size(), num_threads_, opts.chunk);

    // Resolve the ProtectionPlan(s) once for the whole batch — this is the
    // batch-level checksum amortization: every lane shares the split, rA
    // vectors and threshold coefficients instead of rebuilding them. The
    // shared_ptrs pin the plans for the batch even if the LRU cache evicts
    // them mid-flight. A resolution failure (unsupported size for the
    // options) is reported per lane, matching the old per-lane throw.
    bool need_oop = false;
    bool need_inplace = false;
    for (const Lane& lane : lanes) {
      (lane.out == nullptr ? need_inplace : need_oop) = true;
    }
    std::shared_ptr<const abft::ProtectionPlan> plan_oop, plan_inplace;
    if (need_oop) {
      try {
        plan_oop = abft::resolve_protection_plan(n, opts.abft, false);
        job.plan = plan_oop.get();
      } catch (...) {
        job.plan_error = std::current_exception();
      }
    }
    if (need_inplace) {
      try {
        plan_inplace = abft::resolve_protection_plan(n, opts.abft, true);
        job.plan_inplace = plan_inplace.get();
      } catch (...) {
        job.plan_inplace_error = std::current_exception();
      }
    }

    const bool parallel = num_threads_ > 1 && lanes.size() > 1;
    if (parallel) {
      spawn_workers();
      {
        std::scoped_lock lock(mu_);
        job_ = &job;
        ++generation_;
      }
      cv_work_.notify_all();
    }
    // The caller thread always participates using the reserved last arena.
    drain(job, arenas_[num_threads_ - 1]);
    if (parallel) {
      std::unique_lock lock(mu_);
      cv_done_.wait(lock, [&] {
        return job.remaining.load(std::memory_order_acquire) == 0 &&
               job.workers_inside.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;
    }

    // Workers are quiescent past the cv_done_ wait, so the arenas are safe
    // to touch from the caller; give each a chance to release staging that
    // this batch left far below its high-water mark.
    for (Arena& arena : arenas_) arena.end_batch();

    for (std::size_t i = 0; i < report.lanes; ++i) {
      if (report.errors[i].empty()) {
        accumulate(report.totals, report.per_lane[i]);
      } else {
        ++report.failed_lanes;
      }
    }
    return report;
  }

  [[nodiscard]] std::size_t staging_capacity() const {
    std::size_t total = 0;
    for (const Arena& arena : arenas_) total += arena.staging.size();
    return total;
  }

  const std::size_t num_threads_;
  std::vector<Arena> arenas_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

BatchEngine::BatchEngine(std::size_t num_threads)
    : impl_(std::make_unique<Impl>(num_threads)) {}

BatchEngine::~BatchEngine() = default;

std::size_t BatchEngine::num_threads() const noexcept {
  return impl_->num_threads_;
}

std::size_t BatchEngine::staging_capacity() const {
  return impl_->staging_capacity();
}

BatchReport BatchEngine::transform_batch(std::span<const Lane> lanes,
                                         std::size_t n,
                                         const BatchOptions& opts) {
  return impl_->run(lanes, n, opts);
}

BatchReport BatchEngine::transform_batch(cplx* in, cplx* out, std::size_t n,
                                         std::size_t count,
                                         const BatchOptions& opts) {
  detail::require(in != nullptr, "BatchEngine: batch input must not be null");
  std::vector<Lane> lanes(count);
  for (std::size_t i = 0; i < count; ++i) {
    lanes[i].in = in + i * n;
    lanes[i].out = out == nullptr ? nullptr : out + i * n;
  }
  return impl_->run(lanes, n, opts);
}

abft::Stats BatchEngine::transform_one(cplx* in, cplx* out, std::size_t n,
                                       const abft::Options& opts) {
  Lane lane{in, out, nullptr};
  BatchOptions batch_opts;
  batch_opts.abft = opts;
  BatchReport report = impl_->run({&lane, 1}, n, batch_opts);
  // Rethrow the lane's original exception so single-shot callers keep the
  // documented taxonomy (invalid_argument for misuse, UncorrectableError
  // for fault-model violations).
  if (report.failed_lanes > 0) std::rethrow_exception(report.exceptions[0]);
  return report.per_lane[0];
}

BatchEngine& BatchEngine::shared() {
  static BatchEngine instance;
  return instance;
}

}  // namespace ftfft::engine
