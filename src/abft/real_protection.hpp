// ABFT protection for the real-input transforms (fft/real_fft.hpp).
//
// The packed nc = n/2 complex transform runs through the existing protected
// executors (offline / two-layer online, fused checksums and all), so the
// only new attack surface is the conjugate-symmetry post-pass that splits
// the packed spectrum Z into the half-spectrum X (r2c) or rebuilds Z from X
// (c2r). That pass is linear, so it is guarded the same way the paper
// guards every other linear stage: by a checksum identity that relates a
// dot over its input to a dot over its output.
//
// Writing W = omega(n, .), the split map is, for every k in [1, nc-1]
// (and, by periodicity of Z, for the DC/Nyquist edges too):
//
//   X_k = 1/2 (1 - i W^k) Z_k  +  1/2 (1 + i W^k) conj(Z_{nc-k})
//
// Dotting the omega3 output weights c_0..c_nc (the paper's
// 2-complex-multiplication CCV weights) against X and regrouping by Z_j
// yields the pullback identity
//
//   sum_k c_k X_k  =  sum_j a_j Z_j  +  sum_j g_j conj(Z_j)
//
// with sigma-independent vectors a, g precomputed per size (the k = nc/2
// self-pair needs no special case: its a-coefficient vanishes). A
// RealProtectionPlan stores a and conj(g) for r2c (reference from the clean
// packed spectrum, before the post-pass runs) and conj(a) and g for c2r
// (reference from the conjugated packed spectrum the prepare pass emits).
// Verification compares the pullback against the omega3 dot over the
// half-spectrum — fused into the post-pass sweep itself when
// Options::fused_checksums is on (the dot rides the same streaming loop, so
// unlike the sub-FFT engine swap there is nothing to profitability-gate) —
// under the representation-specific threshold practical_eta_real. A
// mismatch restarts the transform (the pass has no localization structure
// worth exploiting; it is O(n) of the work).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"
#include "common/seal.hpp"
#include "fft/real_fft.hpp"

namespace ftfft::abft {

class ProtectionPlan;

/// Immutable per-size state for one protected real transform: the shared
/// fft::RealFftPlan, the omega3 weights over the nc+1 half-spectrum bins,
/// the four pullback vectors and the post-pass threshold coefficient.
/// Cached process-wide under the "real-protection-plan" row of
/// plan_cache_stats().
class RealProtectionPlan {
 public:
  /// Direct (uncached) build; n must be a power of two >= 2. Prefer get().
  explicit RealProtectionPlan(std::size_t n);

  /// Shared, cached plan for the given size. Thread-safe.
  static std::shared_ptr<const RealProtectionPlan> get(std::size_t n);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t nc() const noexcept { return nc_; }

  [[nodiscard]] const fft::RealFftPlan& real_plan() const noexcept {
    return *rplan_;
  }
  [[nodiscard]] const std::shared_ptr<const fft::RealFftPlan>&
  shared_real_plan() const noexcept {
    return rplan_;
  }

  /// omega3 output weights over the nc+1 half-spectrum bins.
  [[nodiscard]] const cplx* weights_omega3() const noexcept {
    return w3_->data();
  }

  /// r2c reference = ws(a, Z) + conj(ws(conj(g), Z)) over the packed
  /// spectrum Z (nc entries each).
  [[nodiscard]] const cplx* pullback_fwd_a() const noexcept {
    return a_.data();
  }
  [[nodiscard]] const cplx* pullback_fwd_gc() const noexcept {
    return gc_.data();
  }

  /// c2r reference = conj(ws(conj(a), B)) + ws(g, B) over the conjugated
  /// packed spectrum B = conj(Z) that the prepare pass emits.
  [[nodiscard]] const cplx* pullback_inv_ac() const noexcept {
    return ac_.data();
  }
  [[nodiscard]] const cplx* pullback_inv_g() const noexcept {
    return g_.data();
  }

  /// roundoff::practical_eta_real_coeff(nc); eta_from_coeff(coeff, sigma)
  /// yields the per-call threshold.
  [[nodiscard]] double eta_coeff() const noexcept { return eta_coeff_; }

  /// Appends the pullback vectors, omega3 weights and (transitively) the
  /// underlying real plan's cached state to `out` (plan-state sealing; see
  /// common/seal.hpp).
  void collect_state(StateSpans& out) const {
    out.add_vec(a_);
    out.add_vec(gc_);
    out.add_vec(ac_);
    out.add_vec(g_);
    if (w3_) out.add_vec(*w3_);
    if (rplan_) rplan_->collect_state(out);
  }

  // ---- cache introspection (tests, benches, monitoring) ----
  [[nodiscard]] static std::uint64_t build_count() noexcept;
  [[nodiscard]] static std::size_t cache_size();
  [[nodiscard]] static std::size_t cache_capacity();
  static void set_cache_capacity(std::size_t capacity);
  static void drop_cache();

 private:
  std::size_t n_;
  std::size_t nc_;
  std::shared_ptr<const fft::RealFftPlan> rplan_;
  std::shared_ptr<const std::vector<cplx>> w3_;
  std::vector<cplx> a_, gc_, ac_, g_;
  double eta_coeff_ = 0.0;
};

/// Protected r2c: out[0..n/2] = half-spectrum of the n reals in[0..n) with
/// the protection selected in opts (Mode::kNone = plain fft::r2c). The
/// packed transform runs through protected_transform; the split post-pass
/// is verified against the pullback reference and restarted on mismatch
/// (UncorrectableError after Options::max_retries). `in` is only read, but
/// stays non-const to mirror protected_transform's repair contract.
///
/// `plan` / `cplan` are optional pre-resolved plans for n and for the
/// packed size n/2 with these opts — the batch engine passes both so lanes
/// skip every cache lookup; nullptr resolves through the process caches.
void protected_r2c(double* in, cplx* out, std::size_t n, const Options& opts,
                   Stats& stats, const RealProtectionPlan* plan = nullptr,
                   const ProtectionPlan* cplan = nullptr);

/// Protected c2r: out[0..n) = 1/n-normalized real inverse of the
/// half-spectrum in[0..n/2]. The prepare pass is verified first (omega3 dot
/// over the input vs the pullback over its output, imaginary parts of the
/// structurally real DC/Nyquist bins masked like the unprotected path
/// ignores them), then the packed inverse runs as a protected forward on
/// the conjugated spectrum (both passes work out of a scratch copy, so `in`
/// is only read — non-const for the same symmetry reason as protected_r2c).
void protected_c2r(cplx* in, double* out, std::size_t n, const Options& opts,
                   Stats& stats, const RealProtectionPlan* plan = nullptr,
                   const ProtectionPlan* cplan = nullptr);

/// Resolves the complex ProtectionPlan the protected real transforms of
/// size n use for their packed nc = n/2 transform under these options —
/// what the batch engine and warm_plans pre-resolve and pass as `cplan`
/// above. The online scheme needs nc >= 4; the two smaller packed sizes
/// fall back to the offline whole-transform scheme internally, and this
/// resolver applies the same mapping. nullptr for Mode::kNone and for
/// nc <= 1 (the one-point packed transform is a copy).
std::shared_ptr<const ProtectionPlan> resolve_real_packed_plan(
    std::size_t n, const Options& opts);

}  // namespace ftfft::abft
