#include "abft/inplace.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "abft/dmr.hpp"
#include "abft/protection_plan.hpp"
#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/multi_error.hpp"
#include "checksum/weights.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dft/codelets.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"
#include "roundoff/model.hpp"

namespace ftfft::abft {
namespace {

using checksum::DualSum;
using fault::Phase;

double sigma_of(double energy, std::size_t n) {
  return std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
}

// Adapter handing the fault injector to forward_fused's pre-final-stage
// hook. The hook fires on dst before the checksum-accumulating final stage,
// so an injected corruption propagates (linearly) into both the outputs and
// the fused omega3 sum — the CCV still sees rx != ccg exactly as the
// separate-pass path does when the injector hits the finished outputs.
struct InjectorHook {
  fault::Injector* inj;
  Phase phase;
  std::size_t unit;
  static void call(void* self, cplx* data, std::size_t n) {
    auto* h = static_cast<InjectorHook*>(self);
    h->inj->apply(h->phase, h->unit, data, n);
  }
};

class InplaceRun {
 public:
  InplaceRun(cplx* data, const ProtectionPlan& plan, const Options& opts,
             Stats& stats)
      : x_(data),
        plan_(plan),
        n_(plan.n()),
        k_(plan.k()),
        r_(plan.r()),
        blk_(plan.block()),  // block length; also stride and count of layer 1
        ck_(plan.weights_k()),
        opts_(opts),
        stats_(stats) {}

  void run() {
    setup();
    layer1();
    if (inj() != nullptr) inj()->apply(Phase::kIntermediate, 0, x_, n_);
    layers2and3();
    finalize();
  }

 private:
  double eta_comp(double energy) const {
    return opts_.eta_override > 0.0
               ? opts_.eta_override
               : roundoff::eta_from_coeff(plan_.eta_k().comp,
                                          sigma_of(energy, k_));
  }
  double eta_mem(double energy) const {
    return opts_.eta_override > 0.0
               ? opts_.eta_override
               : roundoff::eta_from_coeff(plan_.eta_k().mem,
                                          sigma_of(energy, k_));
  }

  void setup() {
    if (inj() != nullptr) inj()->apply(Phase::kInputBeforeChecksum, 0, x_, n_);
    if (opts_.memory_ft) {
      // CMCG: slot i covers the layer-1 sub-FFT over x[s*blk + i]. With a
      // multi-error budget (t > 1) the same pass also folds each weighted
      // element into the slot's 2t syndrome moments (PR 9 escalation).
      const int nm = plan_.syndrome_moments();
      s1_.assign(blk_, cplx{0, 0});
      s2_.assign(blk_, cplx{0, 0});
      e_in_.assign(blk_, 0.0);
      if (nm > 0) {
        checksum::SyndromeSet init;
        init.moments = nm;
        syn1_.assign(blk_, init);
      }
      const double inv_k = 1.0 / static_cast<double>(k_);
      const cplx* w = opts_.combined_checksums ? ck_ : nullptr;
      for (std::size_t s = 0; s < k_; ++s) {
        const cplx ws = (w != nullptr) ? w[s] : cplx{1.0, 0.0};
        const double sd = static_cast<double>(s);
        const cplx* row = x_ + s * blk_;
        for (std::size_t i = 0; i < blk_; ++i) {
          const cplx p = cmul(ws, row[i]);
          s1_[i] += p;
          s2_[i] += sd * p;
          e_in_[i] += norm2(row[i]);
          if (nm > 0) syn1_[i].accumulate(s, p, inv_k);
        }
      }
    }
    if (inj() != nullptr) inj()->apply(Phase::kInputAfterChecksum, 0, x_, n_);
  }

  // Layer 1: blk_ sub-FFTs of size k_ at stride blk_. The gathered buffer
  // is the Fig. 4 input backup: it stays untouched until the output has
  // verified, so a retry never needs the (about to be overwritten) array.
  void layer1() {
    fft::Fft fftk(k_);
    // Fused checksums (PR 6): the gathered buffer is contiguous, so the
    // in-place engine can run it and accumulate both checksum dots in the
    // butterfly passes instead of the standalone sweeps below — at the
    // sub-sizes where the engine swap profits on the gather-hot buffer
    // (fused_profitable; tests override with fused_ignore_profitability).
    const bool combined_ccg = opts_.memory_ft && opts_.combined_checksums;
    const fft::InplaceRadix2Plan* fused =
        opts_.fused_checksums &&
                (opts_.fused_ignore_profitability || fused_profitable(k_))
            ? plan_.fused_plan_k()
            : nullptr;
    std::vector<cplx> buf(k_), res(k_);
    if (opts_.memory_ft) {
      b1_.assign(k_, DualSum{});
      e_blk_.assign(k_, 0.0);
    }
    for (std::size_t i = 0; i < blk_; ++i) {
      double energy = 0.0;
      for (std::size_t s = 0; s < k_; ++s) {
        buf[s] = x_[s * blk_ + i];
        energy += norm2(buf[s]);
      }
      if (opts_.memory_ft && e_in_[i] > 0.0) energy = e_in_[i];

      cplx ccg{0.0, 0.0};
      bool have_ccg = false;
      if (combined_ccg) {
        ccg = s1_[i];
        have_ccg = true;
        if (!opts_.postpone_mcv) repair_input_slot(i, buf.data());
      } else {
        if (opts_.memory_ft && !opts_.postpone_mcv) {
          repair_input_slot(i, buf.data());
        }
        if (fused == nullptr) {
          ccg = checksum::weighted_sum(ck_, buf.data(), k_);
          have_ccg = true;
        }
        // else: ccg rides on the first fused pass below.
      }

      const double eta = eta_comp(energy);
      stats_.eta_m = std::max(stats_.eta_m, eta);
      for (int attempt = 0;; ++attempt) {
        cplx rx;
        if (fused != nullptr) {
          fft::InplaceRadix2Plan::FusedDots dots;
          InjectorHook hook{inj(), Phase::kMFftOutput, i};
          fused->forward_fused(buf.data(), res.data(),
                               have_ccg ? nullptr : ck_,
                               plan_.weights_omega3_k(), dots,
                               inj() != nullptr ? &InjectorHook::call
                                                : nullptr,
                               &hook);
          if (!have_ccg) {
            ccg = dots.in_sum;
            have_ccg = true;
          }
          rx = dots.out_sum;
        } else {
          fftk.execute(buf.data(), res.data());
          if (inj() != nullptr) {
            inj()->apply(Phase::kMFftOutput, i, res.data(), k_);
          }
          rx = checksum::omega3_weighted_sum(res.data(), k_);
        }
        ++stats_.verifications;
        if (std::abs(rx - ccg) <= eta) break;
        if (attempt >= opts_.max_retries) {
          throw UncorrectableError(
              "inplace ABFT: layer-1 sub-FFT kept failing verification");
        }
        ++stats_.sub_fft_retries;
        if (opts_.memory_ft) {
          if (repair_input_slot(i, buf.data())) {
            if (!opts_.combined_checksums) {
              if (fused != nullptr) {
                have_ccg = false;  // re-derived in flight from repaired buf
              } else {
                ccg = checksum::weighted_sum(ck_, buf.data(), k_);
              }
            }
            continue;
          }
        }
        ++stats_.comp_errors_detected;
      }

      // Scatter back; fold the output into the per-block checksums that
      // protect the window until layer 2 consumes the block.
      for (std::size_t s = 0; s < k_; ++s) {
        x_[s * blk_ + i] = res[s];
        if (opts_.memory_ft) {
          b1_[s].plain += res[s];
          b1_[s].indexed += static_cast<double>(i) * res[s];
          e_blk_[s] += norm2(res[s]);
        }
      }
    }
  }

  /// Verifies the layer-1 input slot against its CMCG checksums using the
  /// gathered buffer and repairs a localized corruption (in the buffer —
  /// the array positions are about to be overwritten by the scatter).
  bool repair_input_slot(std::size_t i, cplx* buf) {
    if (!opts_.memory_ft) return false;
    const cplx* w = opts_.combined_checksums ? ck_ : nullptr;
    const DualSum stored{s1_[i], s2_[i]};
    // Combined checksums carry the large (rA) weights: computational-scale
    // threshold. Classic ones use the summation-scale memory threshold.
    const double eta =
        opts_.combined_checksums ? eta_comp(e_in_[i]) : eta_mem(e_in_[i]);
    stats_.eta_mem = std::max(stats_.eta_mem, eta);
    bool mismatch, corrected;
    if (!syn1_.empty()) {
      // Multi-error budget (PR 9): decode the slot's 2t-moment syndromes
      // instead of the dual-only repair, so a burst cannot be "explained"
      // by one wrong-index write that merely balances the two dual values —
      // every hypothesis must reproduce all 2t moments.
      const auto mrep = checksum::repair_errors(
          syn1_[i], buf, 1, w, k_, eta, plan_.max_errors(),
          /*max_iters=*/6, plan_.syndrome_nodes_k());
      mismatch = mrep.mismatch;
      corrected = mrep.corrected;
      if (mrep.corrected && mrep.errors >= 2) {
        stats_.multi_errors_corrected += static_cast<std::size_t>(mrep.errors);
      }
    } else {
      const auto rep = checksum::repair_single_error(stored, buf, 1, w, k_,
                                                     eta, opts_.max_retries);
      mismatch = rep.mismatch;
      corrected = rep.corrected;
    }
    ++stats_.verifications;
    if (!mismatch) return false;
    ++stats_.mem_errors_detected;
    if (!corrected) {
      throw UncorrectableError(
          "inplace ABFT: layer-1 input memory error not localizable");
    }
    ++stats_.mem_errors_corrected;
    return true;
  }

  // Layers 2+3, block by block. Each block of blk_ = r*k contiguous
  // elements gets: MCV, TM1 (DMR), the r-point middle layer + TM2 (DMR,
  // skipped when r == 1), then r protected k-point sub-FFTs.
  void layers2and3() {
    fft::Fft fftk(k_);
    const fft::InplaceRadix2Plan* fused =
        opts_.fused_checksums &&
                (opts_.fused_ignore_profitability || fused_profitable(k_))
            ? plan_.fused_plan_k()
            : nullptr;
    std::vector<cplx> bb(blk_);   // staged block
    std::vector<cplx> seg(k_);    // layer-3 result staging
    std::vector<cplx> ra(r_), rb(r_), rc(r_);
    f1_.assign(k_ * r_, DualSum{});
    fccv_.assign(k_ * r_, cplx{0, 0});
    e_seg_.assign(k_ * r_, 0.0);
    if (opts_.memory_ft && plan_.syndrome_moments() > 0) {
      fsyn_.assign(k_ * r_, checksum::SyndromeSet{});
    }

    for (std::size_t b = 0; b < k_; ++b) {
      cplx* block = x_ + b * blk_;
      if (opts_.memory_ft) {
        const double eta = opts_.eta_override > 0.0
                               ? opts_.eta_override
                               : roundoff::eta_from_coeff(
                                     plan_.eta_block().mem,
                                     sigma_of(e_blk_[b], blk_));
        const auto rep = checksum::repair_single_error(
            b1_[b], block, 1, nullptr, blk_, eta, opts_.max_retries);
        ++stats_.verifications;
        if (rep.mismatch) {
          ++stats_.mem_errors_detected;
          if (!rep.corrected) {
            throw UncorrectableError(
                "inplace ABFT: block memory error not localizable");
          }
          ++stats_.mem_errors_corrected;
        }
      }

      // TM1: element offset i of block b gets omega_n^(i*b).
      stats_.dmr_mismatches +=
          dmr_twiddle_multiply(block, 1, bb.data(), blk_, n_, b, b, inj());

      if (r_ > 1) middle_layer(b, bb.data());

      // Layer 3: r contiguous k-point sub-FFTs within the staged block.
      for (std::size_t t = 0; t < r_; ++t) {
        cplx* src = bb.data() + t * k_;
        const std::size_t unit = b * r_ + t;
        cplx ccg{0.0, 0.0};
        double energy = 0.0;
        bool have_ccg = false;
        if (fused == nullptr) {
          const auto se = checksum::weighted_sum_energy(ck_, src, k_);
          ccg = se.sum;
          energy = se.energy;
          have_ccg = true;
        }
        // Fused: ccg and energy ride on the first fused pass, so the
        // threshold is resolved lazily inside the loop.
        double eta = -1.0;
        for (int attempt = 0;; ++attempt) {
          cplx rx;
          if (fused != nullptr) {
            fft::InplaceRadix2Plan::FusedDots dots;
            InjectorHook hook{inj(), Phase::kKFftOutput, unit};
            fused->forward_fused(src, seg.data(), have_ccg ? nullptr : ck_,
                                 plan_.weights_omega3_k(), dots,
                                 inj() != nullptr ? &InjectorHook::call
                                                  : nullptr,
                                 &hook);
            if (!have_ccg) {
              ccg = dots.in_sum;
              energy = dots.in_energy;
              have_ccg = true;
            }
            rx = dots.out_sum;
          } else {
            fftk.execute(src, seg.data());
            if (inj() != nullptr) {
              inj()->apply(Phase::kKFftOutput, unit, seg.data(), k_);
            }
            rx = checksum::omega3_weighted_sum(seg.data(), k_);
          }
          if (eta < 0.0) {
            eta = eta_comp(energy);
            stats_.eta_k = std::max(stats_.eta_k, eta);
          }
          ++stats_.verifications;
          if (std::abs(rx - ccg) <= eta) break;
          if (attempt >= opts_.max_retries) {
            throw UncorrectableError(
                "inplace ABFT: layer-3 sub-FFT kept failing verification");
          }
          ++stats_.comp_errors_detected;
          ++stats_.sub_fft_retries;
        }
        // Output MCG for the postponed final verification (dual sums allow
        // direct correction — an in-place plan has no backup to recompute
        // from once the block is overwritten). With a multi-error budget
        // the segment also gets 2t syndrome moments: the output region is
        // the longest-lived stored state of the in-place scheme and direct
        // correction is its ONLY recovery, so this is where a burst would
        // otherwise be fatal.
        f1_[unit] = checksum::dual_weighted_sum(nullptr, seg.data(), k_);
        if (!fsyn_.empty()) {
          fsyn_[unit] = checksum::syndrome_sum(nullptr, seg.data(), k_, 1,
                                               plan_.syndrome_moments(),
                                               plan_.syndrome_nodes_k());
        }
        fccv_[unit] = ccg;
        e_seg_[unit] = energy;
        std::memcpy(src, seg.data(), k_ * sizeof(cplx));
      }
      std::memcpy(block, bb.data(), blk_ * sizeof(cplx));
    }
  }

  // DMR-protected middle layer: k_ r-point sub-FFTs at stride k_ within the
  // block, fused with the TM2 twiddle omega_blk^(i*t). Everything is
  // computed twice and voted with a third evaluation on mismatch.
  void middle_layer(std::size_t b, cplx* bb) {
    std::vector<cplx> in(r_), out1(r_), out2(r_);
    for (std::size_t i = 0; i < k_; ++i) {
      for (std::size_t s = 0; s < r_; ++s) in[s] = bb[s * k_ + i];
      auto pass = [&](cplx* out) {
        dft::codelet_dft(r_, in.data(), 1, out, 1);
        for (std::size_t t = 0; t < r_; ++t) {
          out[t] = cmul(out[t], omega(blk_, static_cast<std::uint64_t>(i) * t));
        }
      };
      pass(out1.data());
      if (inj() != nullptr) {
        inj()->apply(Phase::kMiddleDmrCopy, b * k_ + i, out1.data(), r_);
      }
      pass(out2.data());
      for (std::size_t t = 0; t < r_; ++t) {
        if (out1[t] != out2[t]) {
          // Third evaluation + majority vote.
          std::vector<cplx> out3(r_);
          pass(out3.data());
          out1[t] = (out2[t] == out3[t]) ? out2[t] : out1[t];
          ++stats_.dmr_mismatches;
        }
      }
      for (std::size_t t = 0; t < r_; ++t) bb[t * k_ + i] = out1[t];
    }
  }

  // Final verification + digit-reversal permutation to natural order.
  void finalize() {
    if (inj() != nullptr) inj()->apply(Phase::kFinalOutput, 0, x_, n_);
    cplx presum{0, 0};
    if (opts_.memory_ft) {
      // Verify every layer-3 segment against its saved checksum; localize
      // and correct through the output duals.
      for (std::size_t b = 0; b < k_; ++b) {
        for (std::size_t t = 0; t < r_; ++t) {
          const std::size_t unit = b * r_ + t;
          cplx* seg = x_ + b * blk_ + t * k_;
          const cplx rx = checksum::omega3_weighted_sum(seg, k_);
          ++stats_.verifications;
          if (std::abs(rx - fccv_[unit]) <= eta_comp(e_seg_[unit])) continue;
          ++stats_.mem_errors_detected;
          bool corrected;
          if (!fsyn_.empty()) {
            // Multi-error budget (PR 9): the in-place output region has no
            // backup, so direct syndrome decode is the only recovery. Using
            // it for every count (not just as an escalation) also prevents a
            // burst from being mis-"corrected" by a one-element write that
            // balances the two duals but not the higher moments.
            const auto mrep = checksum::repair_errors(
                fsyn_[unit], seg, 1, nullptr, k_, eta_mem(e_seg_[unit]),
                plan_.max_errors(), /*max_iters=*/6,
                plan_.syndrome_nodes_k());
            corrected = mrep.corrected;
            if (mrep.corrected && mrep.errors >= 2) {
              stats_.multi_errors_corrected +=
                  static_cast<std::size_t>(mrep.errors);
            }
          } else {
            const auto rep = checksum::repair_single_error(
                f1_[unit], seg, 1, nullptr, k_, eta_mem(e_seg_[unit]),
                opts_.max_retries);
            corrected = rep.corrected;
          }
          if (!corrected) {
            throw UncorrectableError(
                "inplace ABFT: final output memory error not localizable");
          }
          ++stats_.mem_errors_corrected;
        }
      }
      // Permutation-invariant guard over the swap pass below.
      for (std::size_t t = 0; t < n_; ++t) presum += x_[t];
    }

    krk_digit_reverse_permute(x_, k_, r_);

    if (opts_.memory_ft) {
      cplx postsum{0, 0};
      for (std::size_t t = 0; t < n_; ++t) postsum += x_[t];
      ++stats_.verifications;
      const double eta = opts_.eta_override > 0.0
                             ? opts_.eta_override
                             : roundoff::eta_from_coeff(
                                   plan_.eta_whole().mem,
                                   sigma_of(checksum::energy(x_, n_), n_));
      if (std::abs(postsum - presum) > eta) {
        throw UncorrectableError(
            "inplace ABFT: memory fault during the final permutation "
            "(detect-only window)");
      }
    }
  }

  fault::Injector* inj() const { return opts_.injector; }

  cplx* x_;
  const ProtectionPlan& plan_;
  std::size_t n_, k_, r_, blk_;
  const cplx* ck_;                // outer checksum vector, owned by the plan
  const Options& opts_;
  Stats& stats_;

  std::vector<cplx> s1_, s2_;     // CMCG slots (layer-1 inputs)
  std::vector<checksum::SyndromeSet> syn1_;  // per-slot 2t moments (t > 1)
  std::vector<double> e_in_;
  std::vector<DualSum> b1_;       // per-block checksums (intermediate window)
  std::vector<double> e_blk_;
  std::vector<DualSum> f1_;       // per-segment output duals
  std::vector<checksum::SyndromeSet> fsyn_;  // per-segment moments (t > 1)
  std::vector<cplx> fccv_;        // per-segment computational checksums
  std::vector<double> e_seg_;
};

}  // namespace

InplaceShape inplace_shape(std::size_t n) {
  const auto [k, r] = square_split(n);
  if (k < 2) {
    throw std::invalid_argument(
        "inplace ABFT: n has no square factor, nothing to decompose");
  }
  if (k % 3 == 0) {
    throw std::invalid_argument(
        "inplace ABFT: outer sub-FFT size divisible by 3 degenerates the "
        "checksum encoding");
  }
  return {k, r};
}

void krk_digit_reverse_permute(cplx* data, std::size_t k, std::size_t r) {
  const std::size_t blk = r * k;
  for (std::size_t d2 = 0; d2 < k; ++d2) {
    for (std::size_t d1 = 0; d1 < r; ++d1) {
      for (std::size_t d0 = 0; d0 < k; ++d0) {
        const std::size_t p = d0 + d1 * k + d2 * blk;
        const std::size_t q = d2 + d1 * k + d0 * blk;
        if (p < q) std::swap(data[p], data[q]);
      }
    }
  }
}

void inplace_online_transform(cplx* data, const ProtectionPlan& plan,
                              const Options& opts, Stats& stats) {
  detail::require(plan.scheme() == Scheme::kOnlineInplace,
                  "inplace_online_transform: plan was built for another "
                  "scheme");
  InplaceRun run(data, plan, opts, stats);
  run.run();
}

void inplace_online_transform(cplx* data, std::size_t n, const Options& opts,
                              Stats& stats) {
  detail::require(n >= 4, "inplace_online_transform: n must be >= 4");
  const auto plan = ProtectionPlan::get(n, Scheme::kOnlineInplace, opts);
  inplace_online_transform(data, *plan, opts, stats);
}

}  // namespace ftfft::abft
