#include "abft/dmr.hpp"

#include <vector>

#include "common/math_util.hpp"

namespace ftfft::abft {
namespace {

// Recurrence resync cadence; matches the checksum generator's choice.
constexpr std::size_t kResyncInterval = 64;

// One twiddle-multiply pass: dst[i] = src[i*stride] * scale * omega_n^(i*step).
// The twiddle runs on the w *= base recurrence with periodic exact resync.
void twiddle_pass(const cplx* src, std::size_t stride, cplx* dst,
                  std::size_t len, std::size_t n, std::size_t step,
                  cplx scale) {
  const cplx base = omega(n, step);
  cplx w = scale;
  for (std::size_t i = 0; i < len; ++i) {
    if (i % kResyncInterval == 0) {
      w = cmul(scale, omega(n, static_cast<std::uint64_t>(i) * step));
    }
    dst[i] = cmul(src[i * stride], w);
    w = cmul(w, base);
  }
}

}  // namespace

std::size_t dmr_twiddle_multiply(const cplx* src, std::size_t stride,
                                 cplx* dst, std::size_t len, std::size_t n,
                                 std::size_t factor_step, std::size_t unit,
                                 fault::Injector* injector, cplx scale) {
  twiddle_pass(src, stride, dst, len, n, factor_step, scale);
  if (injector != nullptr) {
    injector->apply(fault::Phase::kTwiddleDmrCopy, unit, dst, len);
  }
  // Second redundant execution into a thread-local staging buffer.
  thread_local std::vector<cplx> second;
  if (second.size() < len) second.resize(len);
  twiddle_pass(src, stride, second.data(), len, n, factor_step, scale);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (dst[i] != second[i]) {
      // Third execution of just this element, exact table lookup; majority
      // vote between the three results.
      const cplx third = cmul(
          src[i * stride],
          cmul(scale, omega(n, static_cast<std::uint64_t>(i) * factor_step)));
      dst[i] = (second[i] == third) ? second[i]
               : (dst[i] == third)  ? dst[i]
                                    : third;
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace ftfft::abft
