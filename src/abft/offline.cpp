#include "abft/offline.hpp"

#include <cmath>
#include <vector>

#include "abft/protection_plan.hpp"
#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/multi_error.hpp"
#include "checksum/weights.hpp"
#include "common/error.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"
#include "roundoff/model.hpp"

namespace ftfft::abft {

using checksum::DualSum;
using fault::Phase;

namespace {

// Adapter handing the fault injector to forward_fused's pre-final-stage
// hook. The offline scheme fires all three of its output-phase injection
// points at the single hook; the corruption propagates linearly through the
// final stage into both the outputs and the fused omega3 sum, so detection
// matches the separate-pass path (which injects into the finished output).
struct OfflineHook {
  fault::Injector* inj;
  static void call(void* self, cplx* data, std::size_t n) {
    auto* h = static_cast<OfflineHook*>(self);
    h->inj->apply(Phase::kWholeFftOutput, 0, data, n);
    h->inj->apply(Phase::kIntermediate, 0, data, n);
    h->inj->apply(Phase::kFinalOutput, 0, data, n);
  }
};

}  // namespace

void offline_transform(cplx* in, cplx* out, const ProtectionPlan& plan,
                       const Options& opts, Stats& stats) {
  detail::require(plan.scheme() == Scheme::kOffline,
                  "offline_transform: plan was built for another scheme");
  const std::size_t n = plan.n();
  fault::Injector* inj = opts.injector;

  if (inj != nullptr) inj->apply(Phase::kInputBeforeChecksum, 0, in, n);

  // --- Checksum generation ---------------------------------------------
  // The (rA) vector and the threshold coefficients live in the shared
  // plan; only the input-dependent sums are computed per call.
  const cplx* ra = plan.weights_m();

  cplx ccg;          // (rA) x — the computational reference value
  DualSum mem_ref;   // stored memory checksums (memory_ft only)
  checksum::SyndromeSet syn_ref;  // 2t moments (memory_ft and t > 1 only)
  double energy;
  const cplx* mem_weights = nullptr;  // nullptr = classic all-ones r1/r2
  if (opts.memory_ft) {
    if (opts.combined_checksums) {
      // Section 4.1: r1' = rA, r2'_j = j (rA)_j; the plain component doubles
      // as the CCG product.
      const auto d = checksum::dual_weighted_sum_energy(ra, in, n);
      mem_ref = d.sums;
      ccg = d.sums.plain;
      energy = d.energy;
      mem_weights = ra;
    } else {
      // Classic r1 = ones, r2 = index, plus a separate CCG pass — the 14N
      // generation cost the combined scheme reduces to 10N.
      const auto d = checksum::dual_weighted_sum_energy(nullptr, in, n);
      mem_ref = d.sums;
      energy = d.energy;
      ccg = checksum::weighted_sum(ra, in, n);
    }
  } else {
    const auto s = checksum::weighted_sum_energy(ra, in, n);
    ccg = s.sum;
    energy = s.energy;
  }
  if (opts.memory_ft && plan.syndrome_moments() > 0) {
    // Multi-error escalation (PR 9): 2t moment sums over the same weighted
    // input the dual checksums cover. Generated only when the plan was
    // resolved with max_correctable_errors > 1, so the default path pays
    // nothing.
    syn_ref = checksum::syndrome_sum(mem_weights, in, n, 1,
                                     plan.syndrome_moments(),
                                     plan.syndrome_nodes_m());
  }

  const double sigma0 =
      std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
  const double eta =
      opts.eta_override > 0.0
          ? opts.eta_override
          : roundoff::eta_from_coeff(plan.eta_whole().comp, sigma0);
  const double eta_mem =
      opts.eta_override > 0.0
          ? opts.eta_override
          : roundoff::eta_from_coeff(plan.eta_whole().mem, sigma0);
  stats.eta_m = eta;
  stats.eta_mem = eta_mem;

  if (inj != nullptr) inj->apply(Phase::kInputAfterChecksum, 0, in, n);

  // --- Compute + verify loop --------------------------------------------
  // Fused checksums (PR 6): the output omega3 dot accumulates inside the
  // final butterfly stage instead of a standalone post-pass sweep. The
  // *input* dot stays a separate pass here (unlike the online layers):
  // kInputAfterChecksum fires between checksum generation and execution,
  // and fusing the input dot into the execute pass would move generation
  // after that injection point, silently blessing the corruption.
  const fft::InplaceRadix2Plan* fused =
      opts.fused_checksums ? plan.fused_plan_m() : nullptr;
  fft::Fft engine(n);
  for (int attempt = 0;; ++attempt) {
    cplx rx;
    if (fused != nullptr) {
      fft::InplaceRadix2Plan::FusedDots dots;
      OfflineHook hook{inj};
      fused->forward_fused(in, out, nullptr, plan.weights_omega3_m(), dots,
                           inj != nullptr ? &OfflineHook::call : nullptr,
                           &hook);
      rx = dots.out_sum;
    } else {
      engine.execute(in, out);
      if (inj != nullptr) {
        inj->apply(Phase::kWholeFftOutput, 0, out, n);
        inj->apply(Phase::kIntermediate, 0, out, n);
        inj->apply(Phase::kFinalOutput, 0, out, n);
      }
      rx = checksum::omega3_weighted_sum(out, n);
    }
    ++stats.verifications;
    if (std::abs(rx - ccg) <= eta) return;  // verified

    if (attempt >= opts.max_retries) {
      throw UncorrectableError(
          "offline ABFT: verification failed after max_retries; "
          "single-fault model violated or threshold too tight");
    }

    if (opts.memory_ft) {
      // Discriminate input memory corruption from a computational error:
      // recompute the stored input checksums, localize and iteratively
      // repair. Combined checksums carry the O(n)-magnitude (rA) weights,
      // so their comparison threshold is the computational eta.
      const double eta_disc = opts.combined_checksums ? eta : eta_mem;
      bool mismatch, corrected;
      if (syn_ref.moments > 0) {
        // Multi-error budget (PR 9): decode the 2t-moment syndromes instead
        // of the dual-only repair. This is not just an escalation — the dual
        // checksums carry exactly two values, so a two-error burst whose
        // residual ratio lands near an integer can be "explained" by one
        // wrong-index write that the dual repair accepts (and, with combined
        // checksums, the CCV then passes by construction). The syndrome
        // decoder checks every hypothesis against all 2t moments, so a
        // single-error fix of a multi-error burst is rejected and the burst
        // decodes at its true count.
        const auto mrep = checksum::repair_errors(
            syn_ref, in, 1, mem_weights, n, eta_disc, plan.max_errors(),
            /*max_iters=*/6, plan.syndrome_nodes_m());
        mismatch = mrep.mismatch;
        corrected = mrep.corrected;
        if (mrep.corrected && mrep.errors >= 2) {
          stats.multi_errors_corrected +=
              static_cast<std::size_t>(mrep.errors);
        }
      } else {
        const auto rep = checksum::repair_single_error(
            mem_ref, in, 1, mem_weights, n, eta_disc, opts.max_retries);
        mismatch = rep.mismatch;
        corrected = rep.corrected;
      }
      if (mismatch) {
        ++stats.mem_errors_detected;
        if (!corrected) {
          throw UncorrectableError(
              "offline ABFT: input memory error detected but could not be "
              "localized");
        }
        ++stats.mem_errors_corrected;
      } else {
        ++stats.comp_errors_detected;
      }
    } else {
      ++stats.comp_errors_detected;
    }
    // Offline recovery is always a full re-execution of the transform.
    ++stats.full_restarts;
  }
}

void offline_transform(cplx* in, cplx* out, std::size_t n,
                       const Options& opts, Stats& stats) {
  detail::require(n >= 1, "offline_transform: n must be >= 1");
  const auto plan = ProtectionPlan::get(n, Scheme::kOffline, opts);
  offline_transform(in, out, *plan, opts, stats);
}

}  // namespace ftfft::abft
