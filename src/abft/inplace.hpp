// Protected in-place FFT (paper section 5).
//
// Parallel FFTs work in place, so a detected error cannot be fixed by
// restarting from the (overwritten) input. The paper's answer is a
// three-layer plan n = k * r * k:
//
//   layer 1: r*k k-point sub-FFTs (stride r*k)   - ABFT per sub-FFT, with an
//            O(k) gathered input buffer acting as the Fig. 4 backup;
//   layer 2: k^2  r-point sub-FFTs + twiddles    - DMR-protected (r is tiny:
//            1 or 2 for powers of two; a restart here is impossible in
//            place, which is exactly Fig. 5's failure scenario);
//   layer 3: r*k k-point sub-FFTs (contiguous)   - ABFT per sub-FFT with
//            output dual checksums for the postponed final verification.
//
// The layer structure is palindromic (k, r, k) on purpose: the digit-reversal
// permutation that restores natural output order is then an involution, so
// it runs in place as plain swaps. When r == 1 the middle layer vanishes
// (Fig. 6 "omitted when r = 1").
#pragma once

#include <cstddef>

#include "abft/options.hpp"
#include "common/complex.hpp"

namespace ftfft::abft {

/// Shape of the in-place plan for size n.
struct InplaceShape {
  std::size_t k = 0;  ///< outer sub-FFT size (largest k with k^2 | n)
  std::size_t r = 0;  ///< middle layer size, n = k*r*k
};

/// Computes the k*r*k split for n. Throws when k == 1 (no square factor:
/// nothing to decompose in place) or when 3 divides k (degenerate encoding).
[[nodiscard]] InplaceShape inplace_shape(std::size_t n);

/// In-place digit-reversal permutation for the palindromic radix vector
/// (k, r, k): position d0 + d1*k + d2*r*k swaps with d2 + d1*k + d0*r*k.
/// Self-inverse, runs as plain swaps. Exposed for tests and the parallel
/// local-adjustment step.
void krk_digit_reverse_permute(cplx* data, std::size_t k, std::size_t r);

/// Protected in-place forward DFT of data[0..n). Uses O(sqrt(n) * r)
/// auxiliary buffers only. Honors opts.memory_ft, ra_method, postpone_mcv
/// (naive mode verifies every block before use; optimized mode postpones
/// into the computational checks), eta_override, max_retries and injector;
/// contiguous staging is inherent to the algorithm.
/// Output is in natural order. Throws UncorrectableError when verification
/// cannot be satisfied within the fault model.
void inplace_online_transform(cplx* data, std::size_t n, const Options& opts,
                              Stats& stats);

class ProtectionPlan;

/// Same transform against a pre-resolved plan (Scheme::kOnlineInplace).
void inplace_online_transform(cplx* data, const ProtectionPlan& plan,
                              const Options& opts, Stats& stats);

}  // namespace ftfft::abft
