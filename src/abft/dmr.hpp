// Duplicated-execution (DMR) twiddle multiplication with majority vote.
//
// The twiddle stage between the two ABFT layers cannot be checksummed (an
// error there corrupts the *input* of the second layer before its checksum
// exists), so the paper protects it with DMR: compute twice, compare, and on
// mismatch compute a third time and take the majority (section 3.1).
#pragma once

#include <cstddef>

#include "common/complex.hpp"
#include "fault/injector.hpp"

namespace ftfft::abft {

/// Computes dst[i] = src[i * stride] * scale * omega_N^(i * factor_step)
/// for i in [0, len) twice, votes on mismatch. The constant prefactor
/// `scale` lets distributed callers express omega_N^(base + i*step) twiddles
/// without a second table. src and dst must not overlap.
///
/// `unit` tags the injector hook (phase kTwiddleDmrCopy fires on the first
/// redundant copy). Returns the number of elementwise mismatches repaired by
/// the vote; 0 on a fault-free run.
std::size_t dmr_twiddle_multiply(const cplx* src, std::size_t stride,
                                 cplx* dst, std::size_t len, std::size_t n,
                                 std::size_t factor_step, std::size_t unit,
                                 fault::Injector* injector,
                                 cplx scale = cplx{1.0, 0.0});

}  // namespace ftfft::abft
