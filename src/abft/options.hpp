// Configuration and statistics for the fault-tolerant FFT schemes.
//
// The paper evaluates named scheme variants (Fig. 7's Offline, Opt-Offline,
// CFTO-Online, Online, Opt-Online); here each variant is a combination of
// orthogonal switches so the ablation benchmarks can toggle one optimization
// at a time. The named presets below reproduce the paper's configurations
// exactly.
#pragma once

#include <cstddef>

#include "checksum/weights.hpp"
#include "common/env.hpp"
#include "fault/injector.hpp"

namespace ftfft::abft {

/// Which ABFT structure protects the transform.
enum class Mode {
  kNone,     ///< plain FFT, no protection (the "FFTW" baseline)
  kOffline,  ///< Algorithm 1: one checksum over the whole transform
  kOnline,   ///< Algorithm 2: two-layer per-sub-FFT checksums
};

/// Tuning switches. Defaults correspond to the fully optimized scheme.
struct Options {
  Mode mode = Mode::kOnline;

  /// Protect against memory faults as well as computational faults
  /// (section 3.2 hierarchy; off = section 3.1 computational-only).
  bool memory_ft = false;

  /// Input-checksum-vector generation (section 7.1.1): naive trig vs the
  /// two-complex-multiplication recurrence.
  checksum::RaGenMethod ra_method = checksum::RaGenMethod::kClosedForm;

  /// Section 4.1: reuse the computational weights (rA) as the memory
  /// checksum r1' so input MCV and CCG become the same dot product.
  bool combined_checksums = true;

  /// Section 4.2: postpone input MCVs into the CCV after each sub-FFT, and
  /// compute the index-weighted localization sum only when a mismatch is
  /// detected.
  bool postpone_mcv = true;

  /// Section 4.3: accumulate the second-layer memory checksums incrementally
  /// while first-layer outputs are written, instead of a regeneration pass.
  bool incremental_mcg = true;

  /// Section 4.4: stage strided sub-FFT inputs through a contiguous buffer
  /// so checksum and transform read the data once from cache.
  bool contiguous_buffering = true;

  /// Batch size s of second-layer k-point FFTs processed together (0 = pick
  /// from cache size).
  std::size_t batch_columns = 0;

  /// Fuse the checksum dot products into the FFT passes (TurboFFT-style,
  /// PR 6): sub-FFTs with a power-of-two size >= 8 run through
  /// InplaceRadix2Plan::forward_fused, which accumulates the input rA dot
  /// on the src -> dst copy and — for transforms with a DRAM-streaming
  /// tail — the omega3 output checksum in the final butterfly stage's
  /// registers, instead of the separate checksum/dot.cpp sweeps.
  /// Detection/correction semantics are unchanged (the fault campaigns
  /// prove the outcomes identical); the fused sums differ from the
  /// separate-pass ones only by documented re-association round-off within
  /// the detection thresholds (the input dot and the cache-resident output
  /// sweep are bit-identical per backend). Ineligible shapes
  /// (non-power-of-two sub-sizes, unstaged strided inputs) and scheme
  /// sub-sizes where the engine swap measures slower on cache-hot staged
  /// data (n <= 256 and n == 2048, see abft::fused_profitable) silently
  /// keep the separate-pass reference, which also remains selectable by
  /// leaving this off. Default from FTFFT_FUSED_CHECKSUMS (off when
  /// unset).
  bool fused_checksums = env_flag("FTFFT_FUSED_CHECKSUMS", false);

  /// Testing/benching escape hatch: run fused execution even at sub-sizes
  /// abft::fused_profitable rejects, so fault campaigns and parity tests
  /// exercise the fused kernels at small sizes too. Never needed in
  /// production — the gate exists because those sizes measured slower,
  /// not because they are unsafe.
  bool fused_ignore_profitability = false;

  /// Maximum number of simultaneously corrupted elements the memory-fault
  /// repair will correct per protected region (PR 9). The default 1 (from
  /// FTFFT_MAX_ERRORS, clamped to [1, checksum::kMaxCorrectableErrors] at
  /// plan resolution) keeps today's dual-checksum single-error path
  /// bit-for-bit. t > 1 additionally maintains 2t weighted moment sums
  /// (syndromes) over each protected input region and, when the
  /// single-error locate fails its residual check, escalates to the
  /// Reed-Solomon-style decoder in checksum/multi_error.hpp before falling
  /// back to recompute. Derived intermediate checksums stay single-error —
  /// escalation guards the long-lived input/backup regions where spatial
  /// multi-bit bursts actually land.
  int max_correctable_errors = static_cast<int>(env_long("FTFFT_MAX_ERRORS", 1));

  /// Detection threshold override; 0 = derive from the round-off model and
  /// the measured input energy.
  double eta_override = 0.0;

  /// Re-executions of one protection unit before giving up (the paper's
  /// verify loop runs unbounded; a bound turns model violations into a
  /// reported error instead of a hang).
  int max_retries = 4;

  /// Optional fault injector; hooks fire at the phases in fault/fault.hpp.
  fault::Injector* injector = nullptr;

  /// Online memory-FT only: when the postponed final verification needs an
  /// intermediate backup, copy it into the caller's input array (the paper's
  /// zero-extra-memory choice, destroys the input) instead of an internal
  /// scratch allocation.
  bool backup_in_input = false;

  // ---- Named presets matching the paper's evaluated schemes ----

  /// Fig. 7 "Offline": Algorithm 1 with per-element trig generation.
  static Options offline_naive(bool memory) {
    Options o;
    o.mode = Mode::kOffline;
    o.memory_ft = memory;
    o.ra_method = checksum::RaGenMethod::kNaiveTrig;
    o.combined_checksums = false;
    o.postpone_mcv = false;
    o.incremental_mcg = false;
    o.contiguous_buffering = false;
    return o;
  }

  /// Fig. 7 "Opt-Offline".
  static Options offline_opt(bool memory) {
    Options o;
    o.mode = Mode::kOffline;
    o.memory_ft = memory;
    return o;
  }

  /// Fig. 7(a) "CFTO-Online" / 7(b) "Online": two-layer scheme without the
  /// section-4 memory-path optimizations (computational-path buffering per
  /// 7(b)'s description stays on only in the *_opt preset).
  static Options online_naive(bool memory) {
    Options o;
    o.mode = Mode::kOnline;
    o.memory_ft = memory;
    o.combined_checksums = false;
    o.postpone_mcv = false;
    o.incremental_mcg = false;
    o.contiguous_buffering = false;
    return o;
  }

  /// Fig. 7 "Opt-Online": all optimizations.
  static Options online_opt(bool memory) {
    Options o;
    o.mode = Mode::kOnline;
    o.memory_ft = memory;
    return o;
  }

  /// Plain FFT baseline.
  static Options none() {
    Options o;
    o.mode = Mode::kNone;
    return o;
  }
};

/// Execution statistics; every protected transform fills one of these so
/// callers (and the experiments) can see what the fault tolerance did.
struct Stats {
  std::size_t comp_errors_detected = 0;  ///< CCV mismatches blamed on compute
  std::size_t mem_errors_detected = 0;   ///< checksum-localized memory faults
  std::size_t mem_errors_corrected = 0;  ///< of those, corrected in place
  std::size_t multi_errors_corrected = 0;  ///< corrections decoded from the
                                           ///< t>1 syndrome escalation path
  std::size_t sub_fft_retries = 0;       ///< sub-FFT re-executions (online)
  std::size_t full_restarts = 0;         ///< whole-transform re-runs (offline)
  std::size_t dmr_mismatches = 0;        ///< twiddle/DMR votes taken
  std::size_t verifications = 0;         ///< checksum comparisons performed
  double eta_m = 0.0;                    ///< threshold used, first layer
  double eta_k = 0.0;                    ///< threshold used, second layer
  double eta_mem = 0.0;                  ///< threshold used, memory checksums
  double eta_real = 0.0;                 ///< threshold used, real post-pass

  void reset() { *this = Stats{}; }
};

}  // namespace ftfft::abft
