#include "abft/online.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "abft/dmr.hpp"
#include "abft/protection_plan.hpp"
#include "checksum/dot.hpp"
#include "checksum/memory_checksum.hpp"
#include "checksum/multi_error.hpp"
#include "checksum/weights.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"
#include "roundoff/model.hpp"

namespace ftfft::abft {
namespace {

using checksum::DualSum;
using fault::Phase;

double sigma_from_energy(double energy, std::size_t n) {
  return std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
}

/// Adapts the fault injector to forward_fused's pre-final-stage hook: the
/// injected corruption lands on the intermediate data and propagates
/// linearly through the final stage into the outputs AND the fused output
/// checksum consistently, so the verify against the independently derived
/// CCG still detects it — same contract as injecting after a separate-pass
/// execute, just inside the guarded window of the in-kernel checksum.
struct InjectorHook {
  fault::Injector* inj;
  Phase phase;
  std::size_t unit;
  static void call(void* self, cplx* data, std::size_t n) {
    auto* h = static_cast<InjectorHook*>(self);
    h->inj->apply(h->phase, h->unit, data, n);
  }
};

/// All state of one protected online transform run. The immutable
/// per-size setup (split, checksum vectors, threshold coefficients,
/// staging layout) comes from the shared ProtectionPlan; this class holds
/// only the per-call mutable state.
class OnlineRun {
 public:
  OnlineRun(cplx* in, cplx* out, const ProtectionPlan& plan,
            const Options& opts, Stats& stats)
      : x_(in),
        out_(out),
        plan_(plan),
        n_(plan.n()),
        m_(plan.m()),
        k_(plan.k()),
        cm_(plan.weights_m()),
        ck_(plan.weights_k()),
        opts_(opts),
        stats_(stats) {
    // Postponing the first-layer MCV into the CCV is only sound when the
    // memory checksum *is* the computational one (section 4.1 + 4.2).
    postpone1_ = opts_.postpone_mcv && opts_.combined_checksums;
  }

  void run() {
    setup();
    first_layer();
    between_layers();
    second_layer();
    finalize();
  }

 private:
  // ---------------------------------------------------------------- setup
  void setup() {
    if (inj() != nullptr) inj()->apply(Phase::kInputBeforeChecksum, 0, x_, n_);

    e_in_.assign(k_, 0.0);
    if (opts_.memory_ft) {
      // CMCG: one contiguous pass over the input builds the per-sub-FFT
      // dual checksums (slot i covers elements x[t*k + i]). With a
      // multi-error budget (t > 1) the same pass also folds each weighted
      // element into the slot's 2t syndrome moments — the only extra cost
      // the escalation path adds to a fault-free run.
      const int nm = plan_.syndrome_moments();
      s1_.assign(k_, cplx{0, 0});
      s2_.assign(k_, cplx{0, 0});
      if (nm > 0) {
        checksum::SyndromeSet init;
        init.moments = nm;
        syn1_.assign(k_, init);
      }
      const double inv_m = 1.0 / static_cast<double>(m_);
      for (std::size_t t = 0; t < m_; ++t) {
        const cplx w = opts_.combined_checksums ? cm_[t] : cplx{1.0, 0.0};
        const double td = static_cast<double>(t);
        const cplx* row = x_ + t * k_;
        for (std::size_t i = 0; i < k_; ++i) {
          const cplx p = cmul(w, row[i]);
          s1_[i] += p;
          s2_[i] += td * p;
          e_in_[i] += norm2(row[i]);
          if (nm > 0) syn1_[i].accumulate(t, p, inv_m);
        }
      }
    }
    if (inj() != nullptr) inj()->apply(Phase::kInputAfterChecksum, 0, x_, n_);
  }

  // ---------------------------------------------------------- first layer
  void first_layer() {
    fft::Fft fftm(m_);
    if (opts_.memory_ft && opts_.incremental_mcg) {
      o1_.assign(m_, cplx{0, 0});
      o2_.assign(m_, cplx{0, 0});
      e_mid_.assign(m_, 0.0);
    } else if (opts_.memory_ft) {
      r1_.assign(k_, DualSum{});
    }

    // Section 4.4 staging: gather a batch of sub-FFT inputs with a tiled
    // transpose — the input is read row-wise (contiguous runs of `batch`),
    // and the batch keeps only `batch` destination cache lines live — then
    // every checksum/FFT pass runs over contiguous buffers. The width was
    // resolved once at plan build (1 = unbuffered).
    const std::size_t batch = plan_.layer1_batch();
    std::vector<cplx> bufblock(opts_.contiguous_buffering ? batch * m_ : 0);

    for (std::size_t i0 = 0; i0 < k_; i0 += batch) {
      const std::size_t bw = std::min(batch, k_ - i0);
      if (opts_.contiguous_buffering) {
        for (std::size_t t = 0; t < m_; ++t) {
          const cplx* row = x_ + t * k_ + i0;
          for (std::size_t i = 0; i < bw; ++i) bufblock[i * m_ + t] = row[i];
        }
      }
      for (std::size_t il = 0; il < bw; ++il) {
        run_sub_fft(i0 + il,
                    opts_.contiguous_buffering ? bufblock.data() + il * m_
                                               : nullptr,
                    fftm);
      }
    }
  }

  // One protected m-point sub-FFT. `buf` is the staged contiguous input
  // (nullptr = unbuffered strided execution straight off x_).
  void run_sub_fft(std::size_t i, cplx* buf, fft::Fft& fftm) {
    cplx ccg{0.0, 0.0};  // reference value the CCV compares against
    const bool have_cmcg = opts_.memory_ft;
    // Fused-checksum execution (PR 6): staged contiguous inputs run through
    // the in-place engine's forward_fused, which accumulates the input rA
    // dot on its copy pass and the omega3 output checksum inside the
    // streaming passes. Unbuffered strided sub-FFTs (and non-pow2 m) keep
    // the separate-pass reference, as do the sub-sizes where the in-place
    // engine swap measures slower on hot staged inputs
    // (fused_profitable; tests override with fused_ignore_profitability).
    const bool combined_ccg = have_cmcg && opts_.combined_checksums;
    const fft::InplaceRadix2Plan* fused =
        opts_.fused_checksums && buf != nullptr &&
                (opts_.fused_ignore_profitability || fused_profitable(m_))
            ? plan_.fused_plan_m()
            : nullptr;

    if (have_cmcg && !postpone1_) {
      // Naive hierarchy (Fig. 2): verify the input slot before use.
      if (verify_and_repair_input(i) && buf != nullptr) regather(i, buf);
    }

    bool have_ccg = false;
    if (combined_ccg) {
      // Section 4.1: the stored combined checksum IS the CCG product.
      ccg = s1_[i];
      have_ccg = true;
    } else if (fused != nullptr) {
      // ccg (and, without CMCG, the energy estimate) ride on the first
      // fused pass below instead of a standalone sweep.
    } else if (buf != nullptr) {
      const auto se = checksum::weighted_sum_energy(cm_, buf, m_);
      ccg = se.sum;
      have_ccg = true;
      if (!have_cmcg) e_in_[i] = se.energy;
    } else {
      // Strided CCG straight off the input: the expensive second strided
      // read the buffering optimization removes.
      const auto se = checksum::weighted_sum_energy(cm_, x_ + i, m_, k_);
      ccg = se.sum;
      have_ccg = true;
      if (!have_cmcg) e_in_[i] = se.energy;
    }

    double eta = -1.0;  // resolved once the energy estimate is in hand
    cplx* yi = out_ + i * m_;
    for (int attempt = 0;; ++attempt) {
      cplx rx;
      if (fused != nullptr) {
        fft::InplaceRadix2Plan::FusedDots dots;
        InjectorHook hook{inj(), Phase::kMFftOutput, i};
        fused->forward_fused(buf, yi, have_ccg ? nullptr : cm_,
                             plan_.weights_omega3_m(), dots,
                             inj() != nullptr ? &InjectorHook::call : nullptr,
                             &hook);
        if (!have_ccg) {
          ccg = dots.in_sum;
          if (!have_cmcg) e_in_[i] = dots.in_energy;
          have_ccg = true;
        }
        rx = dots.out_sum;
      } else {
        if (buf != nullptr) {
          fftm.execute(buf, yi);
        } else {
          fftm.execute_strided(x_ + i, k_, yi, 1);
        }
        if (inj() != nullptr) inj()->apply(Phase::kMFftOutput, i, yi, m_);
        rx = checksum::omega3_weighted_sum(yi, m_);
      }
      if (eta < 0.0) {
        const double sigma_i = sigma_from_energy(e_in_[i], m_);
        eta = opts_.eta_override > 0.0
                  ? opts_.eta_override
                  : roundoff::eta_from_coeff(plan_.eta_m().comp, sigma_i);
        stats_.eta_m = std::max(stats_.eta_m, eta);
      }
      ++stats_.verifications;
      if (std::abs(rx - ccg) <= eta) break;
      if (attempt >= opts_.max_retries) {
        throw UncorrectableError(
            "online ABFT: m-point sub-FFT kept failing verification");
      }
      ++stats_.sub_fft_retries;
      if (opts_.memory_ft) {
        // Postponed discrimination: is the input slot itself corrupted?
        const bool repaired = verify_and_repair_input(i);
        if (repaired) {
          if (buf != nullptr) regather(i, buf);
          if (!opts_.combined_checksums) {
            // Classic checksums: the CCG product must be rebuilt from the
            // repaired input (the next fused pass re-derives it in flight).
            if (fused != nullptr) {
              have_ccg = false;
            } else {
              ccg = buf != nullptr
                        ? checksum::weighted_sum(cm_, buf, m_)
                        : checksum::weighted_sum(cm_, x_ + i, m_, k_);
            }
          }
          continue;
        }
      }
      ++stats_.comp_errors_detected;
    }

    if (opts_.memory_ft) {
      if (opts_.incremental_mcg) {
        // Section 4.3: fold this sub-FFT's output into the column checksums
        // of the second layer while it is still cache-hot. (Column energies
        // are collected later, during the column MCV pass, to keep this hot
        // loop lean.)
        const double id = static_cast<double>(i);
        for (std::size_t c = 0; c < m_; ++c) {
          o1_[c] += yi[c];
          o2_[c] += id * yi[c];
        }
      } else {
        // Naive hierarchy: row checksums over this sub-FFT's output; the
        // column checksums are regenerated in a separate pass later.
        r1_[i] = checksum::dual_weighted_sum(nullptr, yi, m_);
      }
    }
  }

  // Refreshes the staged copy of sub-FFT i's input (rare repair path).
  void regather(std::size_t i, cplx* buf) {
    for (std::size_t t = 0; t < m_; ++t) buf[t] = x_[t * k_ + i];
  }

  /// Recomputes the stored input checksums of sub-FFT slot i over the
  /// (strided) input and repairs a localized memory error (iterating until
  /// the residual clears the threshold). Returns true if a corruption was
  /// found and fixed.
  bool verify_and_repair_input(std::size_t i) {
    const cplx* weights = opts_.combined_checksums ? cm_ : nullptr;
    const double sigma_i = sigma_from_energy(e_in_[i], m_);
    const double eta_mem =
        opts_.eta_override > 0.0
            ? opts_.eta_override
            : roundoff::eta_from_coeff(opts_.combined_checksums
                                           ? plan_.eta_m().comp
                                           : plan_.eta_m().mem,
                                       sigma_i);
    stats_.eta_mem = std::max(stats_.eta_mem, eta_mem);
    bool mismatch, corrected;
    if (!syn1_.empty()) {
      // Multi-error budget (PR 9): decode the slot's 2t-moment syndromes
      // instead of the dual-only repair. The duals carry two values, so a
      // multi-error burst whose residual ratio lands near an integer can be
      // "explained" by one wrong-index write the dual repair accepts; the
      // syndrome decoder checks every hypothesis against all 2t moments and
      // decodes the burst at its true count.
      const auto mrep = checksum::repair_errors(
          syn1_[i], x_ + i, k_, weights, m_, eta_mem, plan_.max_errors(),
          /*max_iters=*/6, plan_.syndrome_nodes_m());
      mismatch = mrep.mismatch;
      corrected = mrep.corrected;
      if (mrep.corrected && mrep.errors >= 2) {
        stats_.multi_errors_corrected += static_cast<std::size_t>(mrep.errors);
      }
    } else {
      const auto rep = checksum::repair_single_error(
          checksum::DualSum{s1_[i], s2_[i]}, x_ + i, k_, weights, m_, eta_mem,
          opts_.max_retries);
      mismatch = rep.mismatch;
      corrected = rep.corrected;
    }
    ++stats_.verifications;
    if (!mismatch) return false;
    ++stats_.mem_errors_detected;
    if (!corrected) {
      throw UncorrectableError(
          "online ABFT: input memory error detected but not localizable");
    }
    ++stats_.mem_errors_corrected;
    return true;
  }

  // ------------------------------------------------------- between layers
  void between_layers() {
    if (inj() != nullptr) inj()->apply(Phase::kIntermediate, 0, out_, n_);
    if (!opts_.memory_ft) return;

    if (!opts_.incremental_mcg) {
      // Fig. 2 regeneration pass: verify every row checksum, then build the
      // column checksums the second layer verifies against. This touches
      // every element a second time — the cost section 4.3 eliminates.
      o1_.assign(m_, cplx{0, 0});
      o2_.assign(m_, cplx{0, 0});
      e_mid_.assign(m_, 0.0);
      for (std::size_t i = 0; i < k_; ++i) {
        cplx* yi = out_ + i * m_;
        // The row may hold the very corruption being hunted: use the
        // outlier-robust energy so eta is not inflated by it.
        const double sigma =
            sigma_from_energy(checksum::robust_energy(yi, m_), m_);
        const double eta_mem =
            opts_.eta_override > 0.0
                ? opts_.eta_override
                : roundoff::eta_from_coeff(plan_.eta_m().mem, sigma);
        const auto rep = checksum::repair_single_error(
            r1_[i], yi, 1, nullptr, m_, eta_mem, opts_.max_retries);
        ++stats_.verifications;
        if (rep.mismatch) {
          ++stats_.mem_errors_detected;
          if (!rep.corrected) {
            throw UncorrectableError(
                "online ABFT: intermediate memory error not localizable");
          }
          ++stats_.mem_errors_corrected;
        }
        const double id = static_cast<double>(i);
        for (std::size_t c = 0; c < m_; ++c) {
          o1_[c] += yi[c];
          o2_[c] += id * yi[c];
          e_mid_[c] += norm2(yi[c]);
        }
      }
    }

    if (opts_.postpone_mcv) {
      // Section 4.2: the per-column output verification is postponed to one
      // final pass; recovery then needs the pre-second-layer state. Park it
      // in the caller's input (paper's choice) or internal scratch.
      if (opts_.backup_in_input) {
        backup_ = x_;
      } else {
        backup_store_.resize(n_);
        backup_ = backup_store_.data();
      }
      std::memcpy(backup_, out_, n_ * sizeof(cplx));
    }
  }

  // ---------------------------------------------------------- second layer
  void second_layer() {
    fft::Fft fftk(k_);
    std::vector<cplx> tw(k_), res(k_);
    col_ccv_.assign(m_, cplx{0, 0});
    if (!opts_.memory_ft) e_mid_.assign(m_, 0.0);
    if (opts_.memory_ft && !opts_.postpone_mcv) f1_.assign(m_, DualSum{});

    // Stage `s` columns at a time (section 4.4 on the second layer, the
    // paper's "s k-FFTs"): the strided intermediate is loaded row-wise into
    // a column-major block, every per-column pass then runs contiguous, and
    // the verified results are written back row-wise in one batched pass.
    const std::size_t s = plan_.layer2_cols();
    std::vector<cplx> stage(opts_.contiguous_buffering ? s * k_ : 0);
    std::vector<cplx> ostage(opts_.contiguous_buffering ? s * k_ : 0);

    for (std::size_t c0 = 0; c0 < m_; c0 += s) {
      const std::size_t sc = std::min(s, m_ - c0);
      if (opts_.contiguous_buffering) {
        // Row-wise load into column-major staging.
        for (std::size_t i = 0; i < k_; ++i) {
          const cplx* row = out_ + i * m_ + c0;
          for (std::size_t c = 0; c < sc; ++c) stage[c * k_ + i] = row[c];
        }
        for (std::size_t c = 0; c < sc; ++c) {
          process_column(c0 + c, stage.data() + c * k_, 1, fftk, tw.data(),
                         ostage.data() + c * k_);
        }
        // Row-wise write-back of the verified results: out[j*m + c] gets
        // result element j of column c.
        for (std::size_t j = 0; j < k_; ++j) {
          cplx* row = out_ + j * m_ + c0;
          for (std::size_t c = 0; c < sc; ++c) row[c] = ostage[c * k_ + j];
        }
      } else {
        for (std::size_t c = 0; c < sc; ++c) {
          process_column(c0 + c, out_ + c0 + c, m_, fftk, tw.data(),
                         res.data());
          // Unstaged: scatter the result column directly.
          for (std::size_t j = 0; j < k_; ++j) {
            out_[(c0 + c) + m_ * j] = res[j];
          }
        }
      }
    }
  }

  // Processes column c: MCV, DMR twiddle, CCG, protected k-point FFT. The
  // verified result lands in `res` (contiguous); the caller writes it back.
  void process_column(std::size_t c, const cplx* col, std::size_t stride,
                      fft::Fft& fftk, cplx* tw, cplx* res) {
    double sigma_col = 0.0;
    if (opts_.memory_ft) {
      // Column MCV against the (incrementally or regenerated) checksums.
      // One fused pass yields the comparison sums and an outlier-robust
      // scale estimate (the column may contain the corruption under test).
      const auto cur = checksum::dual_plain_sum_robust(col, k_, stride);
      sigma_col = sigma_from_energy(cur.robust_energy(), k_);
      e_mid_[c] = cur.robust_energy();
      const double eta_mem =
          opts_.eta_override > 0.0
              ? opts_.eta_override
              : roundoff::eta_from_coeff(plan_.eta_k().mem, sigma_col);
      stats_.eta_mem = std::max(stats_.eta_mem, eta_mem);
      const DualSum stored{o1_[c], o2_[c]};
      ++stats_.verifications;
      if (std::abs(cur.sums.plain - stored.plain) > eta_mem) {
        // Mismatch: repair the authoritative intermediate iteratively, then
        // refresh the staged copy. Derived checksums (these column duals
        // are accumulated from sub-FFT outputs, not generated over stored
        // data) deliberately stay single-error: a multi-error burst in the
        // short-lived intermediate is already caught by the postponed final
        // MCV, whose recovery recomputes the column from the backup.
        ++stats_.mem_errors_detected;
        const auto rep = checksum::repair_single_error(
            stored, out_ + c, m_, nullptr, k_, eta_mem, opts_.max_retries);
        if (!rep.corrected) {
          throw UncorrectableError(
              "online ABFT: column memory error not localizable");
        }
        ++stats_.mem_errors_corrected;
        if (col != out_ + c) {
          cplx* staged = const_cast<cplx*>(col);
          for (std::size_t i = 0; i < k_; ++i) {
            staged[i * stride] = out_[i * m_ + c];
          }
        }
      }
    }

    // Twiddle (DMR) + CCG. tw[i] = col[i] * omega_n^(i*c).
    stats_.dmr_mismatches +=
        dmr_twiddle_multiply(col, stride, tw, k_, n_, c, c, inj());
    // tw is always contiguous, so the fused engine applies to both staged
    // and unstaged columns — at the sub-sizes where it profits on the
    // DMR-hot data (same gate as the rows, and as the recompute below).
    const fft::InplaceRadix2Plan* fused =
        opts_.fused_checksums &&
                (opts_.fused_ignore_profitability || fused_profitable(k_))
            ? plan_.fused_plan_k()
            : nullptr;
    cplx ccg{0.0, 0.0};
    bool have_ccg = false;
    if (fused == nullptr) {
      const auto se = checksum::weighted_sum_energy(ck_, tw, k_);
      ccg = se.sum;
      have_ccg = true;
      if (!opts_.memory_ft) sigma_col = sigma_from_energy(se.energy, k_);
    }
    double eta = -1.0;  // resolved once the energy estimate is in hand

    for (int attempt = 0;; ++attempt) {
      cplx rx;
      if (fused != nullptr) {
        fft::InplaceRadix2Plan::FusedDots dots;
        InjectorHook hook{inj(), Phase::kKFftOutput, c};
        fused->forward_fused(tw, res, have_ccg ? nullptr : ck_,
                             plan_.weights_omega3_k(), dots,
                             inj() != nullptr ? &InjectorHook::call : nullptr,
                             &hook);
        if (!have_ccg) {
          ccg = dots.in_sum;
          if (!opts_.memory_ft) {
            sigma_col = sigma_from_energy(dots.in_energy, k_);
          }
          have_ccg = true;
        }
        rx = dots.out_sum;
      } else {
        fftk.execute(tw, res);
        if (inj() != nullptr) inj()->apply(Phase::kKFftOutput, c, res, k_);
        rx = checksum::omega3_weighted_sum(res, k_);
      }
      if (eta < 0.0) {
        eta = opts_.eta_override > 0.0
                  ? opts_.eta_override
                  : roundoff::eta_from_coeff(plan_.eta_k().comp, sigma_col);
        stats_.eta_k = std::max(stats_.eta_k, eta);
      }
      ++stats_.verifications;
      if (std::abs(rx - ccg) <= eta) break;
      if (attempt >= opts_.max_retries) {
        throw UncorrectableError(
            "online ABFT: k-point sub-FFT kept failing verification");
      }
      ++stats_.comp_errors_detected;
      ++stats_.sub_fft_retries;
    }

    // Remember the column checksum for the postponed final verification;
    // the caller scatters `res` to the natural-order positions {c + m*j}.
    col_ccv_[c] = ccg;
    if (opts_.memory_ft && !opts_.postpone_mcv) {
      f1_[c] = checksum::dual_weighted_sum(nullptr, res, k_);
    }
  }

  // -------------------------------------------------------------- finalize
  void finalize() {
    if (inj() != nullptr) inj()->apply(Phase::kFinalOutput, 0, out_, n_);
    if (!opts_.memory_ft) return;

    // Final MCV: per-column omega_3-weighted sums of the output, computed
    // in one contiguous sweep with the bucket-by-(j mod 3) trick.
    std::vector<cplx> b0(m_, cplx{0, 0}), b1(m_, cplx{0, 0}),
        b2(m_, cplx{0, 0});
    for (std::size_t j = 0; j < k_; ++j) {
      const cplx* row = out_ + j * m_;
      std::vector<cplx>& bucket = (j % 3 == 0) ? b0 : (j % 3 == 1) ? b1 : b2;
      for (std::size_t c = 0; c < m_; ++c) bucket[c] += row[c];
    }
    const cplx w1 = omega3_pow(1);
    const cplx w2 = omega3_pow(2);
    fft::Fft fftk(k_);
    std::vector<cplx> tw(k_), res(k_), colbuf(k_);
    for (std::size_t c = 0; c < m_; ++c) {
      const cplx rx = b0[c] + cmul(w1, b1[c]) + cmul(w2, b2[c]);
      const double sigma = sigma_from_energy(e_mid_[c], k_);
      const double eta =
          opts_.eta_override > 0.0
              ? opts_.eta_override
              : roundoff::eta_from_coeff(plan_.eta_k().comp, sigma);
      ++stats_.verifications;
      if (std::abs(rx - col_ccv_[c]) <= eta) continue;
      ++stats_.mem_errors_detected;

      if (!opts_.postpone_mcv) {
        // Naive hierarchy: localize directly with the stored output duals.
        const auto rep = checksum::repair_single_error(
            f1_[c], out_ + c, m_, nullptr, k_,
            opts_.eta_override > 0.0
                ? opts_.eta_override
                : roundoff::eta_from_coeff(plan_.eta_k().mem, sigma),
            opts_.max_retries);
        if (!rep.corrected) {
          throw UncorrectableError(
              "online ABFT: final output memory error not localizable");
        }
        ++stats_.mem_errors_corrected;
        continue;
      }

      // Postponed hierarchy: recompute the column from the parked
      // intermediate backup (twiddle + k-FFT + verify + scatter). The
      // recomputation must run the same engine process_column used — in
      // fused mode that is the in-place plan — so a repaired column is
      // bit-identical to a never-corrupted run.
      for (std::size_t i = 0; i < k_; ++i) colbuf[i] = backup_[i * m_ + c];
      stats_.dmr_mismatches +=
          dmr_twiddle_multiply(colbuf.data(), 1, tw.data(), k_, n_, c, c,
                               nullptr);
      const fft::InplaceRadix2Plan* fused =
          opts_.fused_checksums &&
                  (opts_.fused_ignore_profitability || fused_profitable(k_))
              ? plan_.fused_plan_k()
              : nullptr;
      cplx ccg, rx2;
      if (fused != nullptr) {
        fft::InplaceRadix2Plan::FusedDots dots;
        fused->forward_fused(tw.data(), res.data(), ck_,
                             plan_.weights_omega3_k(), dots);
        ccg = dots.in_sum;
        rx2 = dots.out_sum;
      } else {
        ccg = checksum::weighted_sum(ck_, tw.data(), k_);
        fftk.execute(tw.data(), res.data());
        rx2 = checksum::omega3_weighted_sum(res.data(), k_);
      }
      if (std::abs(rx2 - ccg) > eta) {
        throw UncorrectableError(
            "online ABFT: column recomputation failed verification");
      }
      for (std::size_t j = 0; j < k_; ++j) out_[c + m_ * j] = res[j];
      ++stats_.mem_errors_corrected;
      ++stats_.sub_fft_retries;
    }
  }

  fault::Injector* inj() const { return opts_.injector; }

  cplx* x_;
  cplx* out_;
  const ProtectionPlan& plan_;
  std::size_t n_, m_, k_;
  const cplx* cm_;                   // input checksum vectors (sizes m, k),
  const cplx* ck_;                   //   owned by the shared plan
  const Options& opts_;
  Stats& stats_;
  bool postpone1_ = false;

  std::vector<cplx> s1_, s2_;        // CMCG slots per first-layer sub-FFT
  std::vector<checksum::SyndromeSet> syn1_;  // per-slot 2t moments (t > 1)
  std::vector<double> e_in_;         // per-sub-FFT input energy
  std::vector<DualSum> r1_;          // naive row checksums of Y_i
  std::vector<cplx> o1_, o2_;        // column checksums of the intermediate
  std::vector<double> e_mid_;        // per-column intermediate energy
  std::vector<cplx> col_ccv_;        // saved per-column CCG for final MCV
  std::vector<DualSum> f1_;          // naive output duals per column
  cplx* backup_ = nullptr;           // parked intermediate (postponed MCV)
  std::vector<cplx> backup_store_;   // internal backup when not in input
};

}  // namespace

void online_transform(cplx* in, cplx* out, const ProtectionPlan& plan,
                      const Options& opts, Stats& stats) {
  detail::require(plan.scheme() == Scheme::kOnline,
                  "online_transform: plan was built for another scheme");
  OnlineRun run(in, out, plan, opts, stats);
  run.run();
}

void online_transform(cplx* in, cplx* out, std::size_t n, const Options& opts,
                      Stats& stats) {
  detail::require(n >= 4, "online_transform: n must be >= 4 and composite");
  const auto plan = ProtectionPlan::get(n, Scheme::kOnline, opts);
  online_transform(in, out, *plan, opts, stats);
}

}  // namespace ftfft::abft
