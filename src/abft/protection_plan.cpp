#include "abft/protection_plan.hpp"

#include <algorithm>
#include <atomic>

#include "abft/inplace.hpp"
#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "roundoff/model.hpp"

namespace ftfft::abft {
namespace {

// Staging block target in complex elements (~512 KiB): the online scheme's
// section-4.4 buffering stages strided sub-FFT inputs / intermediate columns
// through blocks of this footprint.
constexpr std::size_t kStageElems = 32768;

std::atomic<std::uint64_t> plan_builds{0};

struct PlanKey {
  std::size_t n;
  Scheme scheme;
  checksum::RaGenMethod ra_method;
  bool contiguous_buffering;
  std::size_t batch_columns;
  int max_errors;
  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept {
    std::size_t h = key.n;
    h = h * 31 + static_cast<std::size_t>(key.scheme);
    h = h * 31 + static_cast<std::size_t>(key.ra_method);
    h = h * 31 + static_cast<std::size_t>(key.contiguous_buffering);
    h = h * 31 + key.batch_columns;
    h = h * 31 + static_cast<std::size_t>(key.max_errors);
    return h;
  }
};

std::uint64_t seal_protection_plan(const ProtectionPlan& plan) {
  StateSpans spans;
  plan.collect_state(spans);
  return seal_spans(spans);
}

PlanRegistry<PlanKey, ProtectionPlan, PlanKeyHash>& registry() {
  static PlanRegistry<PlanKey, ProtectionPlan, PlanKeyHash> instance(
      plan_cache_capacity(), seal_protection_plan);
  return instance;
}

// Enroll in plan_cache_stats() / scrub_plan_caches() before main. The
// lambdas are lazy on purpose: the registry (and its FTFFT_PLAN_CACHE_CAP /
// FTFFT_PLAN_VERIFY reads) is only materialized at first use or first stats
// call, never during static initialization.
const bool registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return registry().snapshot("protection-plan"); },
         [] { return registry().scrub(); },
         [](std::size_t k) { registry().set_verify_interval(k); }}),
     true);

EtaCoeffs eta_coeffs(std::size_t n) {
  return {roundoff::practical_eta_coeff(n),
          roundoff::practical_eta_memory_coeff(n)};
}

// Fused execution (forward_fused) needs the in-place schedule and wants a
// final stage of len >= 8 to fuse the output dot into; smaller or
// non-power-of-two sub-sizes keep the separate-pass path.
bool fused_eligible(std::size_t n) { return n >= 8 && is_pow2(n); }

}  // namespace

bool fused_profitable(std::size_t n) noexcept {
  // Inside the schemes every sub-FFT input was just staged (gathered rows,
  // DMR-multiplied columns), so the separate checksum sweep the fusion
  // would remove is a cache-resident re-read, not a DRAM pass — the fused
  // win has to come from "copy + in-place engine" beating the out-of-place
  // codelet executor by more than the copy costs on hot data. Measured
  // (AVX2 dev box, min-of-9 x high-rep, hot buffers): loses at n <= 256
  // (+2..+24%) and at n = 2048 (+9..+13%, the engine's L1-edge worst
  // case); break-even at 4096; wins everywhere else (-12..-36%, the
  // whole-array tail sizes from the streamed cs-stage on top). The
  // whole-transform offline scheme is NOT gated: its input comes in cold
  // and its interesting sizes live in the streaming tail regime where the
  // in-kernel output dot saves a real DRAM sweep.
  return n >= 512 && n != 2048;
}

ProtectionPlan::ProtectionPlan(std::size_t n, Scheme scheme,
                               const Options& opts)
    : n_(n),
      scheme_(scheme),
      max_errors_(checksum::clamp_max_errors(opts.max_correctable_errors)) {
  plan_builds.fetch_add(1, std::memory_order_relaxed);
  switch (scheme) {
    case Scheme::kOffline: {
      wm_ = checksum::shared_input_checksum_vector(n, opts.ra_method);
      eta_m_ = eta_coeffs(n);
      eta_whole_ = eta_m_;
      if (fused_eligible(n)) {
        fused_m_ = fft::InplaceRadix2Plan::get(n);
        w3m_ = checksum::shared_comp_weights(n);
      }
      if (max_errors_ > 1) sn_m_ = checksum::shared_syndrome_nodes(n);
      break;
    }
    case Scheme::kOnline: {
      const auto split = balanced_split(n);
      m_ = split.first;
      k_ = split.second;
      wm_ = checksum::shared_input_checksum_vector(m_, opts.ra_method);
      wk_ = checksum::shared_input_checksum_vector(k_, opts.ra_method);
      eta_m_ = eta_coeffs(m_);
      eta_k_ = eta_coeffs(k_);
      if (fused_eligible(m_)) {
        fused_m_ = fft::InplaceRadix2Plan::get(m_);
        w3m_ = checksum::shared_comp_weights(m_);
      }
      if (fused_eligible(k_)) {
        fused_k_ = fft::InplaceRadix2Plan::get(k_);
        w3k_ = checksum::shared_comp_weights(k_);
      }
      if (opts.contiguous_buffering) {
        layer1_batch_ = std::clamp<std::size_t>(
            kStageElems / m_, std::min<std::size_t>(4, k_), k_);
        layer2_cols_ = std::clamp<std::size_t>(
            opts.batch_columns != 0
                ? opts.batch_columns
                : kStageElems / std::max<std::size_t>(k_, 1),
            1, m_);
      }
      if (max_errors_ > 1) {
        sn_m_ = checksum::shared_syndrome_nodes(m_);
        sn_k_ = checksum::shared_syndrome_nodes(k_);
      }
      break;
    }
    case Scheme::kOnlineInplace: {
      const InplaceShape shape = inplace_shape(n);
      k_ = shape.k;
      r_ = shape.r;
      blk_ = r_ * k_;
      wk_ = checksum::shared_input_checksum_vector(k_, opts.ra_method);
      eta_k_ = eta_coeffs(k_);
      eta_block_ = eta_coeffs(blk_);
      eta_whole_ = eta_coeffs(n);
      if (fused_eligible(k_)) {
        fused_k_ = fft::InplaceRadix2Plan::get(k_);
        w3k_ = checksum::shared_comp_weights(k_);
      }
      if (max_errors_ > 1) {
        sn_m_ = checksum::shared_syndrome_nodes(blk_);
        sn_k_ = checksum::shared_syndrome_nodes(k_);
      }
      break;
    }
  }
}

std::shared_ptr<const ProtectionPlan> ProtectionPlan::get(std::size_t n,
                                                          Scheme scheme,
                                                          const Options& opts) {
  // The staging-layout fields only shape kOnline plans (and batch_columns
  // only buffered ones); normalize the irrelevant combinations out of the
  // key so option sweeps don't dilute the LRU with identical entries.
  const bool buffered = scheme == Scheme::kOnline && opts.contiguous_buffering;
  const PlanKey key{n,
                    scheme,
                    opts.ra_method,
                    buffered,
                    buffered ? opts.batch_columns : 0,
                    checksum::clamp_max_errors(opts.max_correctable_errors)};
  return registry().get_or_build(key, [&] {
    return std::make_shared<const ProtectionPlan>(n, scheme, opts);
  });
}

std::uint64_t ProtectionPlan::build_count() noexcept {
  return plan_builds.load(std::memory_order_relaxed);
}

std::size_t ProtectionPlan::cache_size() { return registry().size(); }

std::size_t ProtectionPlan::cache_capacity() {
  return registry().capacity();
}

void ProtectionPlan::set_cache_capacity(std::size_t capacity) {
  registry().set_capacity(capacity);
}

void ProtectionPlan::drop_cache() { registry().clear(); }

std::shared_ptr<const ProtectionPlan> resolve_protection_plan(
    std::size_t n, const Options& opts, bool inplace) {
  switch (opts.mode) {
    case Mode::kNone:
      return nullptr;
    case Mode::kOffline:
      return ProtectionPlan::get(n, Scheme::kOffline, opts);
    case Mode::kOnline:
      return ProtectionPlan::get(
          n, inplace ? Scheme::kOnlineInplace : Scheme::kOnline, opts);
  }
  return nullptr;  // unreachable; keeps GCC's -Wreturn-type quiet
}

namespace detail {

bool inject_plan_state(std::size_t n, const Options& opts, bool inplace) {
  if (opts.injector == nullptr ||
      !opts.injector->pending(fault::Phase::kPlanState)) {
    return false;
  }
  const auto plan = resolve_protection_plan(n, opts, inplace);
  if (!plan) return false;
  StateSpans s;
  plan->collect_state(s);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    // The spans are immutable by contract; the const_cast models a hardware
    // upset in long-lived plan memory, which is exactly what the registry
    // seals exist to catch. A span is viewed as cplx elements (16-byte
    // granules) so FaultSpec addressing works unchanged; spans smaller than
    // one granule (none today) are skipped.
    const std::size_t len = s.spans[i].bytes / sizeof(cplx);
    auto* data = static_cast<cplx*>(const_cast<void*>(s.spans[i].data));
    fired += opts.injector->apply(fault::Phase::kPlanState, i, data, len);
  }
  return fired > 0;
}

}  // namespace detail

}  // namespace ftfft::abft
