// Online ABFT FFT (paper Algorithm 2 + sections 3.2 and 4).
//
// The transform is computed through its top-level Cooley-Tukey split
// N = m*k: k m-point sub-FFTs (input stride k), a DMR-protected twiddle
// stage, and m k-point sub-FFTs (column stride m). Each sub-FFT carries its
// own checksum, so an error is detected within O(sqrt(N) log sqrt(N)) work
// of where it happened and repaired by re-executing only that sub-FFT —
// this is the paper's core contribution.
//
// With opts.memory_ft the section-3.2 hierarchy is layered on top: dual
// checksums over the input (slot per sub-FFT), incrementally generated dual
// checksums over the intermediate columns, and a postponed final
// verification of the output, with the section-4 optimizations
// (combined checksums, verification postponing, incremental generation,
// contiguous buffering) individually switchable for ablation.
#pragma once

#include <cstddef>

#include "abft/options.hpp"
#include "common/complex.hpp"

namespace ftfft::abft {

class ProtectionPlan;

/// Protected out-of-place forward DFT under Mode::kOnline semantics.
///
/// Requirements: n composite with a split n = m*k, m,k >= 2, and neither
/// factor divisible by 3 (always true for powers of two). `in` is non-const:
/// memory-fault corrections repair it, and when
/// opts.memory_ft && opts.postpone_mcv && opts.backup_in_input the
/// intermediate result is parked in it (the paper's zero-extra-memory
/// backup), destroying the original contents.
/// Throws UncorrectableError when the single-fault-per-unit model is
/// violated beyond repair.
void online_transform(cplx* in, cplx* out, std::size_t n, const Options& opts,
                      Stats& stats);

/// Same transform against a pre-resolved plan (Scheme::kOnline). This is
/// the batch hot path: the engine resolves the plan once and every lane
/// skips the per-call setup entirely.
void online_transform(cplx* in, cplx* out, const ProtectionPlan& plan,
                      const Options& opts, Stats& stats);

}  // namespace ftfft::abft
