// Offline ABFT FFT (paper Algorithm 1, plus the memory-FT extension).
//
// One checksum relation protects the whole N-point transform: generate the
// input checksum (rA)x before computing, run the FFT, compare against the
// omega_3-weighted output sum. Detection therefore happens only after the
// full transform, and a computational error costs a complete re-execution —
// the inefficiency the online scheme (online.hpp) removes.
#pragma once

#include <cstddef>

#include "abft/options.hpp"
#include "common/complex.hpp"

namespace ftfft::abft {

class ProtectionPlan;

/// Protected out-of-place forward DFT under Mode::kOffline semantics.
/// `in` is non-const because memory-fault correction repairs the caller's
/// array in place (and the fault injector corrupts it); fault-free runs
/// leave it unmodified. Throws UncorrectableError when verification keeps
/// failing beyond opts.max_retries (single-fault model violated).
void offline_transform(cplx* in, cplx* out, std::size_t n,
                       const Options& opts, Stats& stats);

/// Same transform against a pre-resolved plan (Scheme::kOffline).
void offline_transform(cplx* in, cplx* out, const ProtectionPlan& plan,
                       const Options& opts, Stats& stats);

}  // namespace ftfft::abft
