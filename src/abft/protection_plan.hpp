// ProtectionPlan: everything a protected transform of one size needs but
// does not mutate, built once and cached process-wide.
//
// Before this existed, every protected transform rebuilt its ABFT setup per
// call: the (rA) checksum-weight vectors for both layers, the balanced
// split, the round-off threshold coefficients, and the staging layout. For
// a single transform that is noise; for engine::BatchEngine running
// thousands of identical-size lanes it was O(lanes * n) of pure overhead.
// A ProtectionPlan is resolved once per (n, checksum-relevant options)
// combination — once per *batch* on the engine path — and shared by
// reference with every lane, so rA generation and threshold derivation are
// O(n) per batch (the batch-level analogue of TurboFFT's kernel fusion).
//
// Plans are immutable after construction and cached behind the shared
// LRU-bounded PlanRegistry (bounded by FTFFT_PLAN_CACHE_CAP); eviction only
// drops the cache reference, in-flight transforms keep theirs alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "abft/options.hpp"
#include "checksum/multi_error.hpp"
#include "checksum/weights.hpp"
#include "common/complex.hpp"
#include "common/error.hpp"
#include "common/seal.hpp"
#include "fft/inplace_radix2.hpp"

namespace ftfft::abft {

/// Which protected executor the plan feeds. The out-of-place online scheme
/// (n = m*k) and the in-place k*r*k scheme decompose n differently, so they
/// are distinct cache entries even under identical Options.
enum class Scheme {
  kOffline,        ///< Algorithm 1: one checksum over the whole transform
  kOnline,         ///< Algorithm 2: two-layer out-of-place split n = m*k
  kOnlineInplace,  ///< section 5: in-place k*r*k decomposition
};

/// Precomputed sigma-independent threshold coefficients for one layer size;
/// roundoff::eta_from_coeff(coeff, sigma) yields the per-unit threshold.
struct EtaCoeffs {
  double comp = 0.0;  ///< computational CCV threshold coefficient
  double mem = 0.0;   ///< memory-checksum threshold coefficient
};

class ProtectionPlan {
 public:
  /// Direct (uncached) build; throws the same std::invalid_argument the
  /// per-call setup used to throw for unsupported sizes. Prefer get().
  ProtectionPlan(std::size_t n, Scheme scheme, const Options& opts);

  /// Cached resolution keyed on (n, scheme, checksum-relevant Options
  /// fields: ra_method, contiguous_buffering, batch_columns). Thread-safe.
  static std::shared_ptr<const ProtectionPlan> get(std::size_t n,
                                                   Scheme scheme,
                                                   const Options& opts);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }

  /// kOnline: first-layer sub-FFT size m in n = m*k. Unused otherwise.
  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  /// kOnline: second-layer size k. kOnlineInplace: outer sub-FFT size k in
  /// n = k*r*k. kOffline: unused.
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  /// kOnlineInplace: middle-layer size r.
  [[nodiscard]] std::size_t r() const noexcept { return r_; }
  /// kOnlineInplace: block length r*k (stride and count of layer 1).
  [[nodiscard]] std::size_t block() const noexcept { return blk_; }

  /// First-layer (kOnline, size m) or whole-transform (kOffline, size n)
  /// input checksum vector. nullptr for kOnlineInplace.
  [[nodiscard]] const cplx* weights_m() const noexcept {
    return wm_ ? wm_->data() : nullptr;
  }
  /// Second-layer (kOnline) / outer (kOnlineInplace) checksum vector of
  /// size k. nullptr for kOffline.
  [[nodiscard]] const cplx* weights_k() const noexcept {
    return wk_ ? wk_->data() : nullptr;
  }

  // ---- Fused-checksum support (PR 6). Built unconditionally (the handles
  // are shared cache references, so the marginal cost is a few pointers);
  // whether a run uses them is Options::fused_checksums at execution time,
  // which deliberately stays out of the plan cache key.

  /// Shared in-place sub-plan for the first-layer size m (kOnline) /
  /// the whole transform (kOffline); nullptr when the size is not a
  /// power of two >= 8 (fused execution falls back to separate passes).
  [[nodiscard]] const fft::InplaceRadix2Plan* fused_plan_m() const noexcept {
    return fused_m_.get();
  }
  /// Same for the second-layer / outer size k.
  [[nodiscard]] const fft::InplaceRadix2Plan* fused_plan_k() const noexcept {
    return fused_k_.get();
  }

  /// Materialized omega3 output-weight vector (w[j] = omega_3^(j mod 3)) of
  /// the matching size, consumed by the fused final-stage checksum kernels;
  /// nullptr exactly when the matching fused plan is.
  [[nodiscard]] const cplx* weights_omega3_m() const noexcept {
    return w3m_ ? w3m_->data() : nullptr;
  }
  [[nodiscard]] const cplx* weights_omega3_k() const noexcept {
    return w3k_ ? w3k_->data() : nullptr;
  }

  /// Threshold coefficients: eta_m for the m-layer (kOnline) or the whole
  /// transform (kOffline); eta_k for the k-layer; eta_block / eta_whole for
  /// the in-place scheme's block window and final permutation guard.
  [[nodiscard]] const EtaCoeffs& eta_m() const noexcept { return eta_m_; }
  [[nodiscard]] const EtaCoeffs& eta_k() const noexcept { return eta_k_; }
  [[nodiscard]] const EtaCoeffs& eta_block() const noexcept {
    return eta_block_;
  }
  [[nodiscard]] const EtaCoeffs& eta_whole() const noexcept {
    return eta_whole_;
  }

  // ---- Multi-error escalation support (PR 9). Present only when the plan
  // was resolved with Options::max_correctable_errors > 1; the default
  // single-error configuration carries none of this state.

  /// Clamped Options::max_correctable_errors the plan was resolved with.
  [[nodiscard]] int max_errors() const noexcept { return max_errors_; }
  /// Syndrome moment count 2t maintained per protected region (0 when
  /// max_errors() == 1).
  [[nodiscard]] int syndrome_moments() const noexcept {
    return max_errors_ > 1 ? 2 * max_errors_ : 0;
  }
  /// Duplicated normalized node table (checksum::shared_syndrome_nodes) for
  /// the first-layer / whole-transform region size (kOffline: n; kOnline: m;
  /// kOnlineInplace: the r*k block). nullptr when max_errors() == 1.
  [[nodiscard]] const double* syndrome_nodes_m() const noexcept {
    return sn_m_ ? sn_m_->data() : nullptr;
  }
  /// Node table for the second-layer / outer region size k. nullptr for
  /// kOffline or when max_errors() == 1.
  [[nodiscard]] const double* syndrome_nodes_k() const noexcept {
    return sn_k_ ? sn_k_->data() : nullptr;
  }

  /// Appends every cached payload the plan references — checksum-weight and
  /// omega3 vectors, syndrome node tables, and (transitively) the fused
  /// in-place sub-plans — to `out`. This span set is what the
  /// protection-plan registry seals: the seal stays valid even after the
  /// referenced vectors' own caches evicted them, because the shared_ptr
  /// handles pin the exact bytes hashed at build time.
  void collect_state(StateSpans& out) const {
    if (wm_) out.add_vec(*wm_);
    if (wk_) out.add_vec(*wk_);
    if (w3m_) out.add_vec(*w3m_);
    if (w3k_) out.add_vec(*w3k_);
    if (sn_m_) out.add_vec(*sn_m_);
    if (sn_k_) out.add_vec(*sn_k_);
    if (fused_m_) fused_m_->collect_state(out);
    if (fused_k_) fused_k_->collect_state(out);
  }

  /// kOnline staging layout (section 4.4), resolved from the options once:
  /// sub-FFTs gathered per first-layer staging block and columns staged per
  /// second-layer pass. Both are 1 when contiguous_buffering is off.
  [[nodiscard]] std::size_t layer1_batch() const noexcept {
    return layer1_batch_;
  }
  [[nodiscard]] std::size_t layer2_cols() const noexcept {
    return layer2_cols_;
  }

  // ---- cache introspection (tests, benches, monitoring) ----

  /// Plans constructed process-wide (cache misses + direct builds).
  [[nodiscard]] static std::uint64_t build_count() noexcept;
  [[nodiscard]] static std::size_t cache_size();
  [[nodiscard]] static std::size_t cache_capacity();
  /// Rebounds the plan cache (tests); does not touch the env default.
  static void set_cache_capacity(std::size_t capacity);
  static void drop_cache();

 private:
  std::size_t n_;
  Scheme scheme_;
  std::size_t m_ = 0, k_ = 0, r_ = 0, blk_ = 0;
  std::shared_ptr<const std::vector<cplx>> wm_;
  std::shared_ptr<const std::vector<cplx>> wk_;
  std::shared_ptr<const fft::InplaceRadix2Plan> fused_m_;
  std::shared_ptr<const fft::InplaceRadix2Plan> fused_k_;
  std::shared_ptr<const std::vector<cplx>> w3m_;
  std::shared_ptr<const std::vector<cplx>> w3k_;
  int max_errors_ = 1;
  std::shared_ptr<const std::vector<double>> sn_m_;
  std::shared_ptr<const std::vector<double>> sn_k_;
  EtaCoeffs eta_m_, eta_k_, eta_block_, eta_whole_;
  std::size_t layer1_batch_ = 1;
  std::size_t layer2_cols_ = 1;
};

/// Measured profitability gate for fused execution of one scheme-level
/// sub-FFT. Scheme sub-inputs are staged cache-hot, so the sweep the
/// fusion removes is cheap and the decision reduces to whether
/// "copy + in-place engine" outruns the out-of-place executor on hot
/// data: false for n <= 256 and n == 2048 (see protection_plan.cpp for
/// the numbers). The online/in-place schemes fall back to the
/// separate-pass path when this is false (unless
/// Options::fused_ignore_profitability overrides for tests/benches); the
/// decision is a pure function of the sub-size, so every retry and
/// recomputation of the same unit picks the same engine. The offline
/// whole-transform scheme is deliberately not gated.
[[nodiscard]] bool fused_profitable(std::size_t n) noexcept;

/// Resolves the cached plan the given options need for the out-of-place
/// (inplace = false) or in-place entry point; nullptr for Mode::kNone
/// (plain FFT needs no protection state). Mode::kOffline maps to
/// Scheme::kOffline for both entry points (its in-place wrapper stages
/// through a copy and runs out of place).
std::shared_ptr<const ProtectionPlan> resolve_protection_plan(
    std::size_t n, const Options& opts, bool inplace);

namespace detail {
// Keep unqualified detail::require working in ftfft::abft files now that
// this namespace exists (same idiom as parallel/parallel_plan.hpp).
using ftfft::detail::require;

/// Phase::kPlanState injection hook (fault campaigns only): resolves the
/// plan the transform is about to use and fires every armed kPlanState
/// fault of opts.injector into its cached state spans — unit selects the
/// span (collect_state order), element the cplx-sized offset within it.
/// Returns true when at least one fault landed, in which case the caller
/// must drop any pre-resolved plan handle and re-resolve through the
/// verifying registry, which detects the seal mismatch, evicts and
/// rebuilds (set_plan_verify_interval(1) makes detection immediate).
bool inject_plan_state(std::size_t n, const Options& opts, bool inplace);
}  // namespace detail

}  // namespace ftfft::abft
