#include "abft/real_protection.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "abft/protected_fft.hpp"
#include "abft/protection_plan.hpp"
#include "checksum/dot.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "fault/injector.hpp"
#include "roundoff/model.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::abft {
namespace {

using fault::Phase;

std::atomic<std::uint64_t> g_build_count{0};

std::uint64_t seal_real_protection_plan(const RealProtectionPlan& plan) {
  StateSpans spans;
  plan.collect_state(spans);
  return seal_spans(spans);
}

PlanRegistry<std::size_t, RealProtectionPlan>& registry() {
  static PlanRegistry<std::size_t, RealProtectionPlan> instance(
      plan_cache_capacity(), seal_real_protection_plan);
  return instance;
}

const bool registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return registry().snapshot("real-protection-plan"); },
         [] { return registry().scrub(); },
         [](std::size_t k) { registry().set_verify_interval(k); }}),
     true);

double sigma_from_energy(double energy, std::size_t n) {
  return std::sqrt(energy / (2.0 * static_cast<double>(n)) + 1e-300);
}

/// Effective options for the packed nc-point transform: the two-layer
/// online scheme needs nc >= 4 (and composite), so the two tiny packed
/// sizes run under the offline whole-transform checksum instead — same
/// detection guarantee, and at nc <= 2 "whole transform" is one butterfly.
Options packed_options(std::size_t nc, const Options& opts) {
  Options o = opts;
  if (o.mode == Mode::kOnline && nc < 4) o.mode = Mode::kOffline;
  return o;
}

/// The packed transform is a no-op at nc == 1 (one-point FFT); everything
/// larger routes through the protected executors.
void packed_protected_forward(cplx* in, cplx* out, std::size_t nc,
                              const Options& opts, Stats& stats,
                              const ProtectionPlan* cplan) {
  if (nc > 1) {
    protected_transform(in, out, nc, packed_options(nc, opts), stats, cplan);
  } else {
    out[0] = in[0];
  }
}

void resolve_real_plan(std::size_t n, const RealProtectionPlan*& plan,
                       std::shared_ptr<const RealProtectionPlan>& owned) {
  if (plan == nullptr) {
    owned = RealProtectionPlan::get(n);
    plan = owned.get();
  } else {
    detail::require(plan->n() == n,
                    "protected real transform: RealProtectionPlan was "
                    "resolved for a different size");
  }
}

}  // namespace

RealProtectionPlan::RealProtectionPlan(std::size_t n) : n_(n), nc_(n / 2) {
  rplan_ = fft::RealFftPlan::get(n);  // validates n (power of two >= 2)
  w3_ = checksum::shared_comp_weights(nc_ + 1);
  const cplx* c = w3_->data();

  // Pullback of the omega3 output dot through the split map (see header):
  //   a_0 = c_0/2 (1-i) + c_nc/2 (1+i),   a_j = c_j/2 (1 - i W^j)
  //   g_0 = c_0/2 (1+i) + c_nc/2 (1-i),   g_j = c_{nc-j}/2 (1 + i W^{nc-j})
  a_.resize(nc_);
  g_.resize(nc_);
  a_[0] = cmul(c[0], cplx{0.5, -0.5}) + cmul(c[nc_], cplx{0.5, 0.5});
  g_[0] = cmul(c[0], cplx{0.5, 0.5}) + cmul(c[nc_], cplx{0.5, -0.5});
  for (std::size_t j = 1; j < nc_; ++j) {
    const cplx iw = mul_i(omega(n_, j));
    a_[j] = cmul(c[j], 0.5 * (cplx{1.0, 0.0} - iw));
    g_[nc_ - j] = cmul(c[j], 0.5 * (cplx{1.0, 0.0} + iw));
  }
  gc_.resize(nc_);
  ac_.resize(nc_);
  for (std::size_t j = 0; j < nc_; ++j) {
    gc_[j] = std::conj(g_[j]);
    ac_[j] = std::conj(a_[j]);
  }
  eta_coeff_ = roundoff::practical_eta_real_coeff(nc_);
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const RealProtectionPlan> RealProtectionPlan::get(
    std::size_t n) {
  return registry().get_or_build(
      n, [n] { return std::make_shared<const RealProtectionPlan>(n); });
}

std::uint64_t RealProtectionPlan::build_count() noexcept {
  return g_build_count.load(std::memory_order_relaxed);
}

std::size_t RealProtectionPlan::cache_size() { return registry().size(); }

std::size_t RealProtectionPlan::cache_capacity() {
  return registry().capacity();
}

void RealProtectionPlan::set_cache_capacity(std::size_t capacity) {
  registry().set_capacity(capacity);
}

void RealProtectionPlan::drop_cache() { registry().clear(); }

std::shared_ptr<const ProtectionPlan> resolve_real_packed_plan(
    std::size_t n, const Options& opts) {
  const std::size_t nc = n / 2;
  if (nc <= 1 || opts.mode == Mode::kNone) return nullptr;
  return resolve_protection_plan(nc, packed_options(nc, opts), false);
}

void protected_r2c(double* in, cplx* out, std::size_t n, const Options& opts,
                   Stats& stats, const RealProtectionPlan* plan,
                   const ProtectionPlan* cplan) {
  if (opts.mode == Mode::kNone) {
    if (plan != nullptr) {
      plan->real_plan().r2c(in, out);
    } else {
      fft::r2c(in, n, out);
    }
    return;
  }
  std::shared_ptr<const RealProtectionPlan> owned;
  resolve_real_plan(n, plan, owned);
  const fft::RealFftPlan& rp = plan->real_plan();
  const std::size_t nc = n / 2;

  // The packed input is the n reals reinterpreted — staged into scratch so
  // the inner transform's repair machinery never touches the caller's
  // signal, and so a post-pass restart can re-pack from pristine data.
  std::vector<cplx> zin(nc);
  cplx* zbuf = out;  // packed spectrum staged in out[0..nc)
  double eta = -1.0;
  for (int attempt = 0;; ++attempt) {
    std::memcpy(static_cast<void*>(zin.data()), in, n * sizeof(double));
    packed_protected_forward(zin.data(), zbuf, nc, opts, stats, cplan);

    // Pullback reference over the (still clean) packed spectrum; the same
    // sweep yields the energy the threshold scale comes from.
    const auto se =
        checksum::weighted_sum_energy(plan->pullback_fwd_a(), zbuf, nc);
    const cplx ref =
        se.sum +
        std::conj(checksum::weighted_sum(plan->pullback_fwd_gc(), zbuf, nc));
    if (eta < 0.0) {
      const double sigma = sigma_from_energy(se.energy, nc);
      eta = opts.eta_override > 0.0
                ? opts.eta_override
                : roundoff::eta_from_coeff(plan->eta_coeff(), sigma);
      stats.eta_real = std::max(stats.eta_real, eta);
    }
    // The hook models a fault while the finalize sweep reads the packed
    // spectrum: the corruption propagates linearly into the outputs AND,
    // in fused mode, into the in-kernel output dot consistently — so the
    // verify against the independently derived pullback still catches it,
    // identically in fused and separate modes.
    if (opts.injector != nullptr) {
      opts.injector->apply(Phase::kRealPostPass, 0, zbuf, nc);
    }
    cplx s;
    if (opts.fused_checksums) {
      s = simd::fft_kernels().r2c_finalize_cs(
          out, zbuf, nc, rp.quarter_twiddles(), plan->weights_omega3());
    } else {
      simd::fft_kernels().r2c_finalize(out, zbuf, nc, rp.quarter_twiddles());
      s = checksum::omega3_weighted_sum(out, nc + 1);
    }
    ++stats.verifications;
    if (std::abs(s - ref) <= eta) break;
    ++stats.comp_errors_detected;
    ++stats.full_restarts;
    if (attempt >= opts.max_retries) {
      throw UncorrectableError(
          "real ABFT: r2c post-pass checksum mismatch persisted across "
          "retries");
    }
  }
}

void protected_c2r(cplx* in, double* out, std::size_t n, const Options& opts,
                   Stats& stats, const RealProtectionPlan* plan,
                   const ProtectionPlan* cplan) {
  if (opts.mode == Mode::kNone) {
    if (plan != nullptr) {
      plan->real_plan().c2r(in, out);
    } else {
      fft::c2r(in, n, out);
    }
    return;
  }
  std::shared_ptr<const RealProtectionPlan> owned;
  resolve_real_plan(n, plan, owned);
  const fft::RealFftPlan& rp = plan->real_plan();
  const std::size_t nc = n / 2;
  const cplx* w3 = plan->weights_omega3();

  // Unsplit under guard: the omega3 dot over the caller's half-spectrum is
  // the trusted side; the pullback over the prepare output must match it.
  std::vector<cplx> buf(nc);  // conjugated packed spectrum conj(Z)
  double eta = -1.0;
  for (int attempt = 0;; ++attempt) {
    cplx s_in;
    if (opts.fused_checksums) {
      s_in = simd::fft_kernels().c2r_prepare_cs(
          buf.data(), in, nc, rp.quarter_twiddles(), /*conjugate=*/true, w3);
    } else {
      simd::fft_kernels().c2r_prepare(buf.data(), in, nc,
                                      rp.quarter_twiddles(),
                                      /*conjugate=*/true);
      s_in = checksum::omega3_weighted_sum(in, nc + 1);
    }
    // The DC/Nyquist bins of a real signal's spectrum are structurally
    // real and the unsplit pass ignores their imaginary parts; mask them
    // out of the trusted dot too so a caller-supplied nonzero imaginary
    // component is ignored, not misdiagnosed as a fault.
    s_in -= cmul(w3[0], cplx{0.0, in[0].imag()}) +
            cmul(w3[nc], cplx{0.0, in[nc].imag()});
    if (eta < 0.0) {
      // Threshold scale from the still-clean prepare output (the injector
      // hook has not fired yet), so a corruption under test can never
      // inflate its own detection threshold. First attempt only.
      const double sigma =
          sigma_from_energy(checksum::energy(buf.data(), nc), nc);
      eta = opts.eta_override > 0.0
                ? opts.eta_override
                : roundoff::eta_from_coeff(plan->eta_coeff(), sigma);
      stats.eta_real = std::max(stats.eta_real, eta);
    }
    if (opts.injector != nullptr) {
      opts.injector->apply(Phase::kRealPostPass, 0, buf.data(), nc);
    }
    const cplx ref =
        std::conj(
            checksum::weighted_sum(plan->pullback_inv_ac(), buf.data(), nc)) +
        checksum::weighted_sum(plan->pullback_inv_g(), buf.data(), nc);
    ++stats.verifications;
    if (std::abs(s_in - ref) <= eta) break;
    ++stats.comp_errors_detected;
    ++stats.full_restarts;
    if (attempt >= opts.max_retries) {
      throw UncorrectableError(
          "real ABFT: c2r post-pass checksum mismatch persisted across "
          "retries");
    }
  }

  // Packed inverse as a protected forward on the conjugated spectrum
  // (DFT(conj(x)) = conj(IDFT(x)) up to ordering), then one exact sweep:
  // conjugate back and apply the full 1/nc normalization (a power of two,
  // so the scale is round-off free).
  cplx* z = reinterpret_cast<cplx*>(out);
  packed_protected_forward(buf.data(), z, nc, opts, stats, cplan);
  const double inv = 1.0 / static_cast<double>(nc);
  for (std::size_t j = 0; j < nc; ++j) {
    z[j] = cplx{z[j].real() * inv, -z[j].imag() * inv};
  }
}

}  // namespace ftfft::abft
