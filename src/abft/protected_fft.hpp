// Umbrella entry point for protected sequential transforms.
//
// Dispatches on Options::mode to the plain, offline-protected or
// online-protected executor. This is what the public core API and the
// benchmarks call.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"

namespace ftfft::abft {

class ProtectionPlan;

/// Out-of-place forward DFT with the protection selected in `opts`.
/// See offline.hpp / online.hpp for the per-mode contracts. `in` may be
/// modified by fault correction (and by the backup_in_input option).
///
/// `plan` is an optional pre-resolved ProtectionPlan for (n, opts) — the
/// batch engine and FtPlan pass one so repeated transforms skip the cache
/// lookup entirely; nullptr resolves through the process-wide cache.
void protected_transform(cplx* in, cplx* out, std::size_t n,
                         const Options& opts, Stats& stats,
                         const ProtectionPlan* plan = nullptr);

/// In-place forward DFT with the protection selected in `opts`: the k*r*k
/// scheme (section 5) for kOnline, staging through an internal copy for
/// kOffline (whose restart needs an intact input), plain in-place FFT for
/// kNone. Natural-order output. Shared by FtPlan::forward_inplace and the
/// batch engine so the mode dispatch lives in exactly one place. For
/// kOffline, `plan` must be a Scheme::kOffline plan (see
/// resolve_protection_plan with inplace = true).
void protected_transform_inplace(cplx* data, std::size_t n,
                                 const Options& opts, Stats& stats,
                                 const ProtectionPlan* plan = nullptr);

/// Convenience overload: allocates the output, default stats sink.
std::vector<cplx> protected_fft(std::vector<cplx> input, const Options& opts);

}  // namespace ftfft::abft
