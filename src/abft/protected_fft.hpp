// Umbrella entry point for protected sequential transforms.
//
// Dispatches on Options::mode to the plain, offline-protected or
// online-protected executor. This is what the public core API and the
// benchmarks call.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/options.hpp"
#include "common/complex.hpp"

namespace ftfft::abft {

/// Out-of-place forward DFT with the protection selected in `opts`.
/// See offline.hpp / online.hpp for the per-mode contracts. `in` may be
/// modified by fault correction (and by the backup_in_input option).
void protected_transform(cplx* in, cplx* out, std::size_t n,
                         const Options& opts, Stats& stats);

/// In-place forward DFT with the protection selected in `opts`: the k*r*k
/// scheme (section 5) for kOnline, staging through an internal copy for
/// kOffline (whose restart needs an intact input), plain in-place FFT for
/// kNone. Natural-order output. Shared by FtPlan::forward_inplace and the
/// batch engine so the mode dispatch lives in exactly one place.
void protected_transform_inplace(cplx* data, std::size_t n,
                                 const Options& opts, Stats& stats);

/// Convenience overload: allocates the output, default stats sink.
std::vector<cplx> protected_fft(std::vector<cplx> input, const Options& opts);

}  // namespace ftfft::abft
