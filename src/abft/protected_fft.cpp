#include "abft/protected_fft.hpp"

#include "abft/inplace.hpp"
#include "abft/offline.hpp"
#include "abft/online.hpp"
#include "abft/protection_plan.hpp"
#include "common/error.hpp"
#include "engine/batch_engine.hpp"
#include "fft/fft.hpp"

namespace ftfft::abft {
namespace {

// A plan resolved for another size would make the run read plan.n()
// elements out of n-sized buffers; refuse before any work starts.
void require_plan_size(const ProtectionPlan* plan, std::size_t n) {
  detail::require(plan == nullptr || plan->n() == n,
                  "protected transform: ProtectionPlan was resolved for a "
                  "different size");
}

}  // namespace

void protected_transform(cplx* in, cplx* out, std::size_t n,
                         const Options& opts, Stats& stats,
                         const ProtectionPlan* plan) {
  require_plan_size(plan, n);
  if (opts.mode != Mode::kNone &&
      detail::inject_plan_state(n, opts, /*inplace=*/false)) {
    // A plan-state fault just landed in the cached metadata. Drop any
    // pre-resolved handle (it may point at the poisoned bytes) and let the
    // dispatch below re-resolve through the verifying registry, which
    // detects the seal mismatch, evicts the entry and rebuilds it.
    plan = nullptr;
  }
  switch (opts.mode) {
    case Mode::kNone: {
      fft::Fft engine(n);
      engine.execute(in, out);
      return;
    }
    case Mode::kOffline:
      if (plan != nullptr) {
        offline_transform(in, out, *plan, opts, stats);
      } else {
        offline_transform(in, out, n, opts, stats);
      }
      return;
    case Mode::kOnline:
      if (plan != nullptr) {
        online_transform(in, out, *plan, opts, stats);
      } else {
        online_transform(in, out, n, opts, stats);
      }
      return;
  }
}

void protected_transform_inplace(cplx* data, std::size_t n,
                                 const Options& opts, Stats& stats,
                                 const ProtectionPlan* plan) {
  require_plan_size(plan, n);
  if (opts.mode != Mode::kNone &&
      detail::inject_plan_state(n, opts, /*inplace=*/true)) {
    plan = nullptr;  // see protected_transform: re-resolve verified state
  }
  switch (opts.mode) {
    case Mode::kNone: {
      fft::Fft engine(n);
      engine.execute_inplace(data);
      return;
    }
    case Mode::kOffline: {
      // Offline protection has no in-place recovery story (the restart
      // input is gone); stage through a copy so the checksummed transform
      // still sees an intact input while writing over `data`.
      std::vector<cplx> copy(data, data + n);
      protected_transform(copy.data(), data, n, opts, stats, plan);
      return;
    }
    case Mode::kOnline:
      if (plan != nullptr) {
        inplace_online_transform(data, *plan, opts, stats);
      } else {
        inplace_online_transform(data, n, opts, stats);
      }
      return;
  }
}

std::vector<cplx> protected_fft(std::vector<cplx> input, const Options& opts) {
  // Single shot = a blocking batch of one on the shared engine. This shape
  // (out-of-place, no staging) takes the engine's inline fast path: it runs
  // on the calling thread through the same lane code the workers use, so
  // it neither pays queue dispatch nor waits behind queued batches.
  std::vector<cplx> out(input.size());
  engine::BatchEngine::shared().transform_one(input.data(), out.data(),
                                              input.size(), opts);
  return out;
}

}  // namespace ftfft::abft
