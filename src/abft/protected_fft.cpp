#include "abft/protected_fft.hpp"

#include "abft/inplace.hpp"
#include "abft/offline.hpp"
#include "abft/online.hpp"
#include "engine/batch_engine.hpp"
#include "fft/fft.hpp"

namespace ftfft::abft {

void protected_transform(cplx* in, cplx* out, std::size_t n,
                         const Options& opts, Stats& stats) {
  switch (opts.mode) {
    case Mode::kNone: {
      fft::Fft engine(n);
      engine.execute(in, out);
      return;
    }
    case Mode::kOffline:
      offline_transform(in, out, n, opts, stats);
      return;
    case Mode::kOnline:
      online_transform(in, out, n, opts, stats);
      return;
  }
}

void protected_transform_inplace(cplx* data, std::size_t n,
                                 const Options& opts, Stats& stats) {
  switch (opts.mode) {
    case Mode::kNone: {
      fft::Fft engine(n);
      engine.execute_inplace(data);
      return;
    }
    case Mode::kOffline: {
      // Offline protection has no in-place recovery story (the restart
      // input is gone); stage through a copy so the checksummed transform
      // still sees an intact input while writing over `data`.
      std::vector<cplx> copy(data, data + n);
      protected_transform(copy.data(), data, n, opts, stats);
      return;
    }
    case Mode::kOnline:
      inplace_online_transform(data, n, opts, stats);
      return;
  }
}

std::vector<cplx> protected_fft(std::vector<cplx> input, const Options& opts) {
  // Single shot = a batch of one; the shared engine runs it inline on the
  // calling thread, so this costs no dispatch over the raw transform.
  std::vector<cplx> out(input.size());
  engine::BatchEngine::shared().transform_one(input.data(), out.data(),
                                              input.size(), opts);
  return out;
}

}  // namespace ftfft::abft
