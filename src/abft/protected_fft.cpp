#include "abft/protected_fft.hpp"

#include "abft/offline.hpp"
#include "abft/online.hpp"
#include "fft/fft.hpp"

namespace ftfft::abft {

void protected_transform(cplx* in, cplx* out, std::size_t n,
                         const Options& opts, Stats& stats) {
  switch (opts.mode) {
    case Mode::kNone: {
      fft::Fft engine(n);
      engine.execute(in, out);
      return;
    }
    case Mode::kOffline:
      offline_transform(in, out, n, opts, stats);
      return;
    case Mode::kOnline:
      online_transform(in, out, n, opts, stats);
      return;
  }
}

std::vector<cplx> protected_fft(std::vector<cplx> input, const Options& opts) {
  std::vector<cplx> out(input.size());
  Stats stats;
  protected_transform(input.data(), out.data(), input.size(), opts, stats);
  return out;
}

}  // namespace ftfft::abft
