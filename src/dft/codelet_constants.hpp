// Exact-constant twiddles shared by the scalar codelets (dft/codelets.cpp)
// and the vectorized butterfly kernels (src/simd). sqrt(2)/2 and the pentagon
// constants are spelled to full double precision so repeated transforms do
// not drift, and so every backend multiplies by bit-identical constants.
#pragma once

namespace ftfft::dft {

inline constexpr double kHalfSqrt3 = 0.8660254037844386467637231707529362;
inline constexpr double kHalfSqrt2 = 0.7071067811865475244008443621048490;
inline constexpr double kCos2Pi5 = 0.3090169943749474241022934171828191;
inline constexpr double kCos4Pi5 = -0.8090169943749474241022934171828191;
inline constexpr double kSin2Pi5 = 0.9510565162951535721164393333793821;
inline constexpr double kSin4Pi5 = 0.5877852522924731291687059546390728;
// cos/sin(2 pi k/16) for k = 1..3.
inline constexpr double kCosPi8 = 0.9238795325112867561281831893967882;
inline constexpr double kSinPi8 = 0.3826834323650897717284599840303989;

}  // namespace ftfft::dft
