#include "dft/codelets.hpp"

#include <array>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/math_util.hpp"
#include "dft/codelet_constants.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::dft {
namespace {

void dft1(const cplx* in, std::size_t, cplx* out, std::size_t) {
  out[0] = in[0];
}

void dft2(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  const cplx a = in[0];
  const cplx b = in[is];
  out[0] = a + b;
  out[os] = a - b;
}

void dft3(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  const cplx x0 = in[0];
  const cplx x1 = in[is];
  const cplx x2 = in[2 * is];
  const cplx u = x1 + x2;
  const cplx v = x1 - x2;
  const cplx w = x0 - 0.5 * u;
  // z = -i * (sqrt(3)/2) * v
  const cplx z{kHalfSqrt3 * v.imag(), -kHalfSqrt3 * v.real()};
  out[0] = x0 + u;
  out[os] = w + z;
  out[2 * os] = w - z;
}

void dft4(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  const cplx x0 = in[0];
  const cplx x1 = in[is];
  const cplx x2 = in[2 * is];
  const cplx x3 = in[3 * is];
  const cplx s02 = x0 + x2;
  const cplx d02 = x0 - x2;
  const cplx s13 = x1 + x3;
  const cplx d13 = x1 - x3;
  out[0] = s02 + s13;
  out[os] = d02 + mul_neg_i(d13);
  out[2 * os] = s02 - s13;
  out[3 * os] = d02 + mul_i(d13);
}

void dft5(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  const cplx x0 = in[0];
  const cplx x1 = in[is];
  const cplx x2 = in[2 * is];
  const cplx x3 = in[3 * is];
  const cplx x4 = in[4 * is];
  const cplx t1 = x1 + x4;
  const cplx t2 = x2 + x3;
  const cplx t3 = x1 - x4;
  const cplx t4 = x2 - x3;
  out[0] = x0 + t1 + t2;
  const cplx a1 = x0 + kCos2Pi5 * t1 + kCos4Pi5 * t2;
  const cplx a2 = x0 + kCos4Pi5 * t1 + kCos2Pi5 * t2;
  const cplx b1 = kSin2Pi5 * t3 + kSin4Pi5 * t4;  // multiplied by -i below
  const cplx b2 = kSin4Pi5 * t3 - kSin2Pi5 * t4;
  out[os] = a1 + mul_neg_i(b1);
  out[2 * os] = a2 + mul_neg_i(b2);
  out[3 * os] = a2 + mul_i(b2);
  out[4 * os] = a1 + mul_i(b1);
}

void dft8(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  // Radix-2 DIT over two unrolled 4-point transforms.
  cplx e[4];
  cplx o[4];
  dft4(in, 2 * is, e, 1);
  dft4(in + is, 2 * is, o, 1);
  // Twiddles omega_8^k, k = 0..3: 1, (1-i)/sqrt(2), -i, (-1-i)/sqrt(2).
  const cplx t1 = cmul(o[1], {kHalfSqrt2, -kHalfSqrt2});
  const cplx t2 = mul_neg_i(o[2]);
  const cplx t3 = cmul(o[3], {-kHalfSqrt2, -kHalfSqrt2});
  out[0] = e[0] + o[0];
  out[os] = e[1] + t1;
  out[2 * os] = e[2] + t2;
  out[3 * os] = e[3] + t3;
  out[4 * os] = e[0] - o[0];
  out[5 * os] = e[1] - t1;
  out[6 * os] = e[2] - t2;
  out[7 * os] = e[3] - t3;
}

void dft16(const cplx* in, std::size_t is, cplx* out, std::size_t os) {
  cplx e[8];
  cplx o[8];
  dft8(in, 2 * is, e, 1);
  dft8(in + is, 2 * is, o, 1);
  // omega_16^k for k = 0..7.
  static const std::array<cplx, 8> w = {{
      {1.0, 0.0},
      {kCosPi8, -kSinPi8},
      {kHalfSqrt2, -kHalfSqrt2},
      {kSinPi8, -kCosPi8},
      {0.0, -1.0},
      {-kSinPi8, -kCosPi8},
      {-kHalfSqrt2, -kHalfSqrt2},
      {-kCosPi8, -kSinPi8},
  }};
  for (std::size_t k = 0; k < 8; ++k) {
    const cplx t = cmul(o[k], w[k]);
    out[k * os] = e[k] + t;
    out[(k + 8) * os] = e[k] - t;
  }
}

// Cached root tables for the generic kernel, keyed by n. The table for size
// n is built once; lookups are lock-guarded but the kernel itself runs
// lock-free on the snapshot pointer.
const std::vector<cplx>& root_table(std::size_t n) {
  static std::mutex mu;
  static std::unordered_map<std::size_t, std::vector<cplx>> tables;
  std::scoped_lock lock(mu);
  auto it = tables.find(n);
  if (it == tables.end()) {
    std::vector<cplx> t(n);
    for (std::size_t k = 0; k < n; ++k) t[k] = omega(n, k);
    it = tables.emplace(n, std::move(t)).first;
  }
  return it->second;
}

}  // namespace

bool has_unrolled_codelet(std::size_t n) noexcept {
  switch (n) {
    case 1:
    case 2:
    case 3:
    case 4:
    case 5:
    case 8:
    case 16:
      return true;
    default:
      return false;
  }
}

void generic_dft(std::size_t n, const cplx* in, std::size_t is, cplx* out,
                 std::size_t os) {
  const std::vector<cplx>& w = root_table(n);
  for (std::size_t j = 0; j < n; ++j) {
    cplx acc = in[0];
    std::size_t idx = 0;
    for (std::size_t t = 1; t < n; ++t) {
      idx += j;
      if (idx >= n) idx -= n;
      acc += cmul(in[t * is], w[idx]);
    }
    out[j * os] = acc;
  }
}

void codelet_dft(std::size_t n, const cplx* in, std::size_t is, cplx* out,
                 std::size_t os) {
  switch (n) {
    case 1:
      dft1(in, is, out, os);
      return;
    case 2:
      dft2(in, is, out, os);
      return;
    case 3:
      dft3(in, is, out, os);
      return;
    case 4:
      // Sizes 4/8/16 with contiguous output go to the dispatched vector
      // codelet when the active backend has one (scalar/NEON leave these
      // null and fall through to the unrolled scalar kernels).
      if (os == 1) {
        if (auto* k = simd::fft_kernels().dft4) {
          k(in, is, out);
          return;
        }
      }
      dft4(in, is, out, os);
      return;
    case 5:
      dft5(in, is, out, os);
      return;
    case 8:
      if (os == 1) {
        if (auto* k = simd::fft_kernels().dft8) {
          k(in, is, out);
          return;
        }
      }
      dft8(in, is, out, os);
      return;
    case 16:
      if (os == 1) {
        if (auto* k = simd::fft_kernels().dft16) {
          k(in, is, out);
          return;
        }
      }
      dft16(in, is, out, os);
      return;
    default:
      generic_dft(n, in, is, out, os);
      return;
  }
}

}  // namespace ftfft::dft
