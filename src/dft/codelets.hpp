// Hand-unrolled small DFT kernels ("codelets", in FFTW terminology).
//
// The recursive executor in src/fft bottoms out in these. Sizes 2,3,4,5,8,16
// are fully unrolled with exact constant twiddles; any other size falls back
// to a generic O(n^2) kernel with a cached root table, which the planner only
// selects for small leftover prime factors (larger primes go to Bluestein).
#pragma once

#include <cstddef>

#include "common/complex.hpp"

namespace ftfft::dft {

/// Largest size the fully unrolled codelets cover.
inline constexpr std::size_t kMaxUnrolledCodelet = 16;

/// True if `n` has a dedicated unrolled kernel.
[[nodiscard]] bool has_unrolled_codelet(std::size_t n) noexcept;

/// Computes an n-point DFT from `in` (stride `is`) into `out` (stride `os`).
/// in and out must not overlap. Dispatches to the unrolled kernel when one
/// exists, otherwise to the generic kernel.
void codelet_dft(std::size_t n, const cplx* in, std::size_t is, cplx* out,
                 std::size_t os);

/// Generic O(n^2) strided DFT used for small odd factors; exposed separately
/// for tests.
void generic_dft(std::size_t n, const cplx* in, std::size_t is, cplx* out,
                 std::size_t os);

}  // namespace ftfft::dft
