#include "dft/reference_dft.hpp"

#include <stdexcept>

#include "common/math_util.hpp"

namespace ftfft::dft {

void reference_dft(const cplx* in, cplx* out, std::size_t n) {
  if (n == 0) throw std::invalid_argument("reference_dft: empty input");
  for (std::size_t j = 0; j < n; ++j) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      acc += in[t] * omega(n, static_cast<std::uint64_t>(j) * t);
    }
    out[j] = acc;
  }
}

void reference_idft(const cplx* in, cplx* out, std::size_t n) {
  if (n == 0) throw std::invalid_argument("reference_idft: empty input");
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t t = 0; t < n; ++t) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      acc += in[j] * std::conj(omega(n, static_cast<std::uint64_t>(j) * t));
    }
    out[t] = acc * inv_n;
  }
}

std::vector<cplx> reference_dft(const std::vector<cplx>& in) {
  std::vector<cplx> out(in.size());
  reference_dft(in.data(), out.data(), in.size());
  return out;
}

std::vector<cplx> reference_idft(const std::vector<cplx>& in) {
  std::vector<cplx> out(in.size());
  reference_idft(in.data(), out.data(), in.size());
  return out;
}

cplx reference_dft_element(const cplx* in, std::size_t n, std::size_t j) {
  cplx acc{0.0, 0.0};
  for (std::size_t t = 0; t < n; ++t) {
    acc += in[t] * omega(n, static_cast<std::uint64_t>(j) * t);
  }
  return acc;
}

}  // namespace ftfft::dft
