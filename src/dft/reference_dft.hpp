// Reference O(N^2) discrete Fourier transform.
//
// This is the correctness oracle for every fast path in the library: tests
// compare the planner/executor, the in-place engine, the ABFT schemes and
// the distributed six-step FFT against it. It is deliberately the most
// literal possible transcription of equation (1) of the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "common/complex.hpp"

namespace ftfft::dft {

/// Forward DFT: X[j] = sum_n x[n] * exp(-2 pi i j n / N).
/// in and out must not alias; out is resized/overwritten by callers' choice
/// of the pointer overload.
void reference_dft(const cplx* in, cplx* out, std::size_t n);

/// Inverse DFT with 1/N normalization:
/// x[n] = (1/N) sum_j X[j] * exp(+2 pi i j n / N).
void reference_idft(const cplx* in, cplx* out, std::size_t n);

/// Convenience vector overloads.
std::vector<cplx> reference_dft(const std::vector<cplx>& in);
std::vector<cplx> reference_idft(const std::vector<cplx>& in);

/// One row of the DFT matrix times x: sum_n omega^(j*n) x[n]. Used by
/// checksum tests that need individual output elements.
[[nodiscard]] cplx reference_dft_element(const cplx* in, std::size_t n,
                                         std::size_t j);

}  // namespace ftfft::dft
