#include "fft/executor.hpp"

#include <cassert>

#include "dft/codelets.hpp"

namespace ftfft::fft {
namespace {

// Upper bound on the combine radix; kRadixPreference in plan.cpp tops out at
// 16 and generic codelets at 32, both far below this.
constexpr std::size_t kMaxRadix = 64;

void exec_bluestein(const PlanNode& node, const cplx* in, std::size_t is,
                    cplx* out, std::size_t os, cplx* scratch) {
  const std::size_t n = node.n;
  const std::size_t m = node.conv_n;
  cplx* a = scratch;          // chirp-premultiplied input, zero padded
  cplx* fa = scratch + m;     // its transform / convolution workspace
  for (std::size_t t = 0; t < n; ++t) a[t] = cmul(in[t * is], node.chirp[t]);
  for (std::size_t t = n; t < m; ++t) a[t] = cplx{0.0, 0.0};
  // Forward transform of a (pow2 plan: no scratch).
  execute_plan(*node.conv_plan, a, 1, fa, 1, nullptr);
  // Pointwise multiply with the precomputed chirp transform.
  for (std::size_t t = 0; t < m; ++t) fa[t] = cmul(fa[t], node.chirp_fft[t]);
  // Inverse transform via conjugation: ifft(y) = conj(fft(conj(y))) / m.
  for (std::size_t t = 0; t < m; ++t) fa[t] = std::conj(fa[t]);
  execute_plan(*node.conv_plan, fa, 1, a, 1, nullptr);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) {
    const cplx conv = std::conj(a[j]) * inv_m;
    out[j * os] = cmul(conv, node.chirp[j]);
  }
}

}  // namespace

void execute_plan(const PlanNode& node, const cplx* in, std::size_t is,
                  cplx* out, std::size_t os, cplx* scratch) {
  switch (node.kind) {
    case PlanNode::Kind::kCodelet:
      dft::codelet_dft(node.n, in, is, out, os);
      return;
    case PlanNode::Kind::kBluestein:
      exec_bluestein(node, in, is, out, os, scratch);
      return;
    case PlanNode::Kind::kCooleyTukey:
      break;
  }

  const std::size_t r = node.radix;
  const std::size_t m = node.n / r;
  // Sub-transform t1 reads x[t2*r + t1] (stride r*is) and writes its result
  // contiguously (in units of os) to out[m*t1 ...].
  for (std::size_t t1 = 0; t1 < r; ++t1) {
    execute_plan(*node.sub, in + t1 * is, r * is, out + t1 * m * os, os,
                 scratch);
  }
  // Combine: for every k1, an r-point DFT across the strided column
  // out[(k1 + m*t1) * os] with twiddles omega_n^(t1*k1), written back to the
  // same index set {k1 + m*k2}.
  assert(r <= kMaxRadix);
  cplx buf[kMaxRadix];
  cplx res[kMaxRadix];
  for (std::size_t k1 = 0; k1 < m; ++k1) {
    buf[0] = out[k1 * os];
    for (std::size_t t1 = 1; t1 < r; ++t1) {
      buf[t1] =
          cmul(out[(k1 + m * t1) * os], node.twiddles[(t1 - 1) * m + k1]);
    }
    dft::codelet_dft(r, buf, 1, res, 1);
    for (std::size_t k2 = 0; k2 < r; ++k2) {
      out[(k1 + m * k2) * os] = res[k2];
    }
  }
}

}  // namespace ftfft::fft
