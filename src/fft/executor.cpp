#include "fft/executor.hpp"

#include "dft/codelets.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::fft {
namespace {

void exec_bluestein(const PlanNode& node, const cplx* in, std::size_t is,
                    cplx* out, std::size_t os, cplx* scratch) {
  const std::size_t n = node.n;
  const std::size_t m = node.conv_n;
  cplx* a = scratch;          // chirp-premultiplied input, zero padded
  cplx* fa = scratch + m;     // its transform / convolution workspace
  for (std::size_t t = 0; t < n; ++t) a[t] = cmul(in[t * is], node.chirp[t]);
  for (std::size_t t = n; t < m; ++t) a[t] = cplx{0.0, 0.0};
  // Forward transform of a (pow2 plan: no scratch).
  execute_plan(*node.conv_plan, a, 1, fa, 1, nullptr);
  // Pointwise multiply with the precomputed chirp transform.
  for (std::size_t t = 0; t < m; ++t) fa[t] = cmul(fa[t], node.chirp_fft[t]);
  // Inverse transform via conjugation: ifft(y) = conj(fft(conj(y))) / m.
  for (std::size_t t = 0; t < m; ++t) fa[t] = std::conj(fa[t]);
  execute_plan(*node.conv_plan, fa, 1, a, 1, nullptr);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < n; ++j) {
    const cplx conv = std::conj(a[j]) * inv_m;
    out[j * os] = cmul(conv, node.chirp[j]);
  }
}

}  // namespace

void execute_plan(const PlanNode& node, const cplx* in, std::size_t is,
                  cplx* out, std::size_t os, cplx* scratch) {
  switch (node.kind) {
    case PlanNode::Kind::kCodelet:
      dft::codelet_dft(node.n, in, is, out, os);
      return;
    case PlanNode::Kind::kBluestein:
      exec_bluestein(node, in, is, out, os, scratch);
      return;
    case PlanNode::Kind::kCooleyTukey:
      break;
  }

  const std::size_t r = node.radix;
  const std::size_t m = node.n / r;

  // Two consecutive radix-2 levels fuse into one radix-4 pass, mirroring the
  // in-place kernel's fused schedule: run the four n/4-point grandchild
  // sub-transforms directly, then combine both levels while the quarter
  // elements are in registers. The quarter blocks are laid out in
  // bit-reversed subsequence order (j mod 4 = 0,2,1,3) — exactly what the
  // fused butterfly expects — and the two levels' twiddles are the plans'
  // own tables: w1 = omega_{n/2}^k (inner node), w2 = omega_n^k (this node).
  if (r == 2 && node.sub->kind == PlanNode::Kind::kCooleyTukey &&
      node.sub->radix == 2) {
    const PlanNode& grand = *node.sub->sub;
    const std::size_t q = node.n / 4;
    execute_plan(grand, in, 4 * is, out, os, scratch);
    execute_plan(grand, in + 2 * is, 4 * is, out + q * os, os, scratch);
    execute_plan(grand, in + is, 4 * is, out + 2 * q * os, os, scratch);
    execute_plan(grand, in + 3 * is, 4 * is, out + 3 * q * os, os, scratch);
    simd::fft_kernels().combine_radix4_fused(
        out, os, q, node.sub->twiddles.data(), node.twiddles.data());
    return;
  }

  // Sub-transform t1 reads x[t2*r + t1] (stride r*is) and writes its result
  // contiguously (in units of os) to out[m*t1 ...].
  for (std::size_t t1 = 0; t1 < r; ++t1) {
    execute_plan(*node.sub, in + t1 * is, r * is, out + t1 * m * os, os,
                 scratch);
  }
  // Combine: for every k1, an r-point DFT across the strided column
  // out[(k1 + m*t1) * os] with twiddles omega_n^(t1*k1), written back to the
  // same index set {k1 + m*k2}. Contiguous outputs (os == 1) and
  // power-of-two radices run vectorized in the active backend; everything
  // else falls back to the scalar column loop.
  simd::fft_kernels().combine(out, os, m, r, node.twiddles.data());
}

}  // namespace ftfft::fft
