// Cache-blocked (COBRA-style) bit-reversal permutation.
//
// The classic in-place bit-reversal walks a list of swap pairs (i, rev(i)):
// every swap touches two cache lines at effectively random addresses, so at
// n = 2^20 the permutation alone costs as much as several butterfly passes
// (~35% of the AVX2 forward, see ROADMAP/PR 5). Carter & Gatlin's COBRA
// algorithm removes the scatter: split the log2(n) index bits into a leading
// field A, a middle field M and a trailing field T with |A| == |T| == b, so
//
//   i      = (A << (m + b)) | (M << b) | T
//   rev(i) = (rev_b(T) << (m + b)) | (rev_m(M) << b) | rev_b(A)
//
// and the permutation maps the 2^b x 2^b tile of indices {(A, T)} at middle
// M onto the tile at middle rev_m(M). Tiles are moved through a small
// cache-resident buffer: tile rows are read and written as contiguous
// 2^b-element runs, and the only non-sequential accesses happen inside the
// buffer, so every cache line of the array is touched O(1) times.
//
// Because the leading and trailing fields have equal width, middles pair up
// as (M, rev_m(M)) and the permutation is an involution on tile pairs, which
// is what makes the in-place variant possible with one buffered tile pair.
// The middle field absorbs the leftover bits (it has odd width when log2(n)
// is odd and 2b < log2(n) leaves an odd remainder; b itself is clamped to
// log2(n)/2, so "non-square" splits degenerate gracefully — b == 0 recovers
// the plain pair-swap walk).
//
// The write-back runs are contiguous 2^b-element destination rows, which is
// exactly the shape the twiddle-free opener of the in-place FFT schedule
// consumes (adjacent pairs / quadruples): run() can therefore apply that
// first butterfly stage while each row is still in registers, fusing the
// opener into the permutation pass (see InplaceRadix2Plan::forward).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/complex.hpp"
#include "common/seal.hpp"

namespace ftfft::fft {

/// rev of the low `bits` bits of x (x must fit in `bits` bits).
[[nodiscard]] constexpr std::size_t reverse_bits(std::size_t x,
                                                 unsigned bits) noexcept {
  std::size_t rev = 0;
  for (unsigned i = 0; i < bits; ++i) {
    rev = (rev << 1) | (x & 1);
    x >>= 1;
  }
  return rev;
}

/// Immutable tile metadata for one (log2n, tile_bits) pair; shareable across
/// threads (the tile buffer is thread-local inside run()).
class CobraBitReversal {
 public:
  /// Butterfly stage optionally fused into the write-back of run().
  enum class Opener {
    kNone,         ///< pure permutation
    kRadix2Pairs,  ///< twiddle-free radix-2 over adjacent pairs (odd log2n)
    kRadix4First,  ///< first fused radix-4 stage, unit twiddles (even log2n)
  };

  /// tile_bits is clamped to log2n / 2. Openers other than kNone require an
  /// effective tile width >= 2 (runs of >= 4 elements).
  explicit CobraBitReversal(unsigned log2n, unsigned tile_bits);

  /// In-place bit-reversal permutation of data[0..2^log2n).
  void permute(cplx* data) const { run(data, Opener::kNone, false); }

  /// Permutation with the given opener stage applied to every output run
  /// during write-back. Bit-identical to permute() followed by the opener
  /// (runs are aligned 2^b-element blocks, so no butterfly group straddles
  /// a run and per-group arithmetic is unchanged). `inverse` only affects
  /// kRadix4First (the +/-i quarter rotation).
  void run(cplx* data, Opener opener, bool inverse) const;

  /// Out-of-place variant: dst[0..2^log2n) = permuted src (disjoint
  /// buffers), same opener fusion and bit-for-bit the same values as
  /// copying src into dst and calling run(). Out of place the involution
  /// constraint disappears — every tile streams src -> buffer -> dst
  /// independently — so a caller that would otherwise copy and permute
  /// saves one full read+write sweep of the array.
  void run_copy(cplx* dst, const cplx* src, Opener opener,
                bool inverse) const;

  /// Appends the cached permutation tables to `out` (plan-state sealing;
  /// see common/seal.hpp).
  void collect_state(StateSpans& out) const {
    out.add_vec(rev_tile_);
    out.add_vec(mid_pairs_);
  }

  [[nodiscard]] unsigned tile_bits() const noexcept { return b_; }
  [[nodiscard]] unsigned middle_bits() const noexcept { return mid_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return std::size_t{1} << log2n_;
  }

 private:
  unsigned log2n_;
  unsigned b_;    ///< leading == trailing field width; tile is 2^b x 2^b
  unsigned mid_;  ///< middle field width = log2n - 2b
  std::vector<std::uint32_t> rev_tile_;   ///< rev_b(x) for x in [0, 2^b)
  std::vector<std::uint32_t> mid_pairs_;  ///< flattened (m, rev_m(m)), m <= rev
};

}  // namespace ftfft::fft
