// User-facing FFT engine: plan + per-instance workspace.
//
// An `Fft` object owns the scratch its plan needs, so `execute` allocates
// nothing. One instance is not safe for concurrent calls (the scratch is
// shared state); create one per thread — plans themselves are shared through
// the process-wide cache, so extra instances are cheap.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/complex.hpp"
#include "fft/plan.hpp"

namespace ftfft::fft {

/// Transform direction. Inverse applies the 1/n normalization.
enum class Direction { kForward, kInverse };

/// Reusable n-point transform engine.
class Fft {
 public:
  explicit Fft(std::size_t n, Direction dir = Direction::kForward);

  /// Out-of-place, unit stride. in and out must not overlap and must hold n
  /// elements each.
  void execute(const cplx* in, cplx* out);

  /// Out-of-place with arbitrary strides.
  void execute_strided(const cplx* in, std::size_t is, cplx* out,
                       std::size_t os);

  /// In place. For power-of-two sizes this runs the iterative radix-2 engine
  /// with O(1) auxiliary space; other sizes stage through the instance
  /// scratch (documented deviation: true in-place mixed-radix is out of
  /// scope, and every size the paper's schemes protect in place is 2^b).
  void execute_inplace(cplx* data);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] Direction direction() const noexcept { return dir_; }
  [[nodiscard]] const PlanNode& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::string describe() const;

 private:
  std::size_t n_;
  Direction dir_;
  std::shared_ptr<const PlanNode> plan_;
  std::vector<cplx> scratch_;       // Bluestein workspace (often empty)
  std::vector<cplx> dir_scratch_;   // conjugation staging for inverse/in-place
};

/// One-shot convenience transforms (allocate internally).
std::vector<cplx> fft(const std::vector<cplx>& in);
std::vector<cplx> ifft(const std::vector<cplx>& in);

}  // namespace ftfft::fft
