// Real-input transforms via conjugate symmetry on the in-place stack.
//
// A length-n real signal (n a power of two >= 2) is reinterpreted as
// nc = n/2 interleaved complex values z_m = x_{2m} + i*x_{2m+1} — a pure
// type pun, no data movement — and transformed with the optimized nc-point
// InplaceRadix2Plan path (COBRA permute-fused opener, radix-16 tail). The
// Hermitian unpack is fused into the final butterfly pass (simd
// r2c_last_stage4/16) so the half-spectrum falls out of the last stage in
// one sweep: half the flops and half the memory traffic of the same-length
// complex transform, with no separate finalize sweep.
//
// Half-spectrum layout (FFTW r2c convention): nc + 1 complex bins
// X[0..n/2], where X[0] is the DC bin and X[n/2] the Nyquist bin (both have
// zero imaginary part for real input); the missing upper half is implied by
// X[n-k] = conj(X[k]). c2r consumes the same layout and returns the
// 1/n-normalized real inverse, so c2r(r2c(x)) == x up to round-off only —
// and bit-stably so: repeating the round trip reproduces identical bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/complex.hpp"
#include "common/seal.hpp"
#include "fft/inplace_radix2.hpp"

namespace ftfft::fft {

/// Precomputed state for one real-transform size: the shared nc-point
/// complex plan plus the quarter twiddle table omega(n, k), k in [0, nc/2],
/// that the split/unsplit post-pass consumes. Immutable after construction;
/// shareable across threads. Cached process-wide under the "real-plan" row
/// of plan_cache_stats() (LRU-bounded like every other plan cache).
class RealFftPlan {
 public:
  /// n must be a power of two >= 2.
  explicit RealFftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Number of half-spectrum bins = n/2 + 1.
  [[nodiscard]] std::size_t spectrum_size() const noexcept { return nc_ + 1; }

  /// out[0..n/2] = half-spectrum of in[0..n) (unnormalized forward).
  /// in and out must not overlap.
  void r2c(const double* in, cplx* out) const;

  /// r2c over the strided signal in[0], in[stride], ..., in[(n-1)*stride].
  /// stride == 1 is the contiguous fast path; other strides gather-pack
  /// first (the odd-stride fallback), then run the identical pipeline, so
  /// results are bitwise equal to r2c on a compacted copy.
  void r2c_strided(const double* in, std::size_t stride, cplx* out) const;

  /// out[0..n) = 1/n-normalized real inverse of the half-spectrum
  /// in[0..n/2]. in and out must not overlap. Only in[0..n/2] is read; the
  /// imaginary parts of in[0] and in[n/2] are ignored (they are
  /// structurally zero for any spectrum of a real signal).
  void c2r(const cplx* in, double* out) const;

  /// omega(n, k) for k in [0, n/4] — the post-pass twiddles.
  [[nodiscard]] const cplx* quarter_twiddles() const noexcept {
    return wq_.data();
  }
  /// The underlying nc-point complex plan.
  [[nodiscard]] const std::shared_ptr<const InplaceRadix2Plan>& complex_plan()
      const noexcept {
    return cplan_;
  }

  /// Appends the quarter twiddle table and (transitively) the underlying
  /// complex plan's cached state to `out` — the real-plan registry seal
  /// therefore also covers the nc-point InplaceRadix2Plan this plan holds,
  /// even when that plan is no longer resident in its own cache.
  void collect_state(StateSpans& out) const {
    out.add_vec(wq_);
    if (cplan_) cplan_->collect_state(out);
  }

  /// Shared, cached plan for the given size. Thread-safe.
  static std::shared_ptr<const RealFftPlan> get(std::size_t n);

  /// Total RealFftPlan constructions in this process (cache misses build;
  /// hits do not) — the warm-plans tests pin this.
  static std::uint64_t build_count();

 private:
  /// Dispatch the fused last-butterfly + Hermitian-unpack kernel matching
  /// the open-last descriptor (requires nc_ >= 8; out holds the nc packed
  /// values with the last stage still open, gets the nc+1 half-spectrum).
  void finalize_open_last(cplx* out,
                          const InplaceRadix2Plan::OpenLastStage& last) const;

  std::size_t n_;
  std::size_t nc_;
  std::shared_ptr<const InplaceRadix2Plan> cplan_;
  std::vector<cplx> wq_;
};

/// One-shot conveniences over the cached plan.
void r2c(const double* in, std::size_t n, cplx* out);
void c2r(const cplx* in, std::size_t n, double* out);

}  // namespace ftfft::fft
