#include "fft/inplace_radix2.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::fft {

namespace {
/// The cache window of the retained PR 4 schedule (2^15 elements = 512 KiB):
/// the reference path keeps it regardless of tuning so the baseline the
/// optimized path is measured against stays exactly what PR 4 shipped.
constexpr unsigned kReferenceBlockLog2 = 15;
}  // namespace

InplaceTuning default_inplace_tuning() {
  InplaceTuning t;
  const InplaceTuning defaults;
  auto clamped = [](std::size_t v, unsigned lo, unsigned hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return static_cast<unsigned>(v);
  };
  t.block_log2 = clamped(
      env_size("FTFFT_INPLACE_BLOCK_LOG2", defaults.block_log2), 4, 28);
  t.cobra_tile_bits = clamped(
      env_size("FTFFT_COBRA_TILE_BITS", defaults.cobra_tile_bits), 0, 10);
  t.cobra_min_log2 = clamped(
      env_size("FTFFT_COBRA_MIN_LOG2", defaults.cobra_min_log2), 4, 64);
  return t;
}

InplaceRadix2Plan::InplaceRadix2Plan(std::size_t n)
    : InplaceRadix2Plan(n, default_inplace_tuning()) {}

InplaceRadix2Plan::InplaceRadix2Plan(std::size_t n,
                                     const InplaceTuning& tuning)
    : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "InplaceRadix2Plan: size must be a power of two");
  }
  log2n_ = log2_floor(n);
  block_log2_ = tuning.block_log2;
  // Store only the swap pairs (i, rev(i)) with i < rev(i) so the permutation
  // pass touches each element once.
  bit_reverse_.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rev = reverse_bits(i, log2n_);
    if (i < rev) {
      bit_reverse_.push_back(i);
      bit_reverse_.push_back(rev);
    }
  }
  twiddle_half_.resize(n / 2 == 0 ? 1 : n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) twiddle_half_[k] = omega(n, k);
  // Pack the fused radix-4 schedule's per-stage twiddles contiguously in j
  // (see FusedStage). Values are copies out of twiddle_half_, so the scalar
  // backend computes bit-identical results to the historic strided reads.
  unsigned s = (log2n_ & 1u) ? 2 : 1;
  std::size_t total = 0;
  for (unsigned t = s; t + 1 <= log2n_; t += 2) {
    total += 2 * (std::size_t{1} << (t - 1));
  }
  stage_twiddles_.reserve(total);
  for (; s + 1 <= log2n_; s += 2) {
    const std::size_t quarter = std::size_t{1} << (s - 1);
    const std::size_t step1 = n_ >> s;
    const std::size_t step2 = n_ >> (s + 1);
    FusedStage st;
    st.len = std::size_t{1} << (s + 1);
    st.w1_off = stage_twiddles_.size();
    for (std::size_t j = 0; j < quarter; ++j) {
      stage_twiddles_.push_back(twiddle_half_[j * step1]);
    }
    st.w2_off = stage_twiddles_.size();
    for (std::size_t j = 0; j < quarter; ++j) {
      stage_twiddles_.push_back(twiddle_half_[j * step2]);
    }
    stages_.push_back(st);
  }
  // Split the schedule at the cache window: stages with len <= the window
  // run window-by-window in one streaming pass; the rest stream the whole
  // array once per pass and form the tail.
  const auto count_blocked = [this](unsigned block_log2) {
    const std::size_t window = n_ < (std::size_t{1} << block_log2)
                                   ? n_
                                   : (std::size_t{1} << block_log2);
    std::size_t count = 0;
    while (count < stages_.size() && stages_[count].len <= window) ++count;
    return count;
  };
  blocked_stage_count_ = count_blocked(block_log2_);
  ref_blocked_stage_count_ = count_blocked(kReferenceBlockLog2);
  // Regroup the tail: fuse consecutive radix-4 stage pairs into radix-16
  // passes (four radix-2 levels per stream over the array), leaving at most
  // one radix-4 stage when the tail count is odd. The fused pass runs both
  // stages' exact butterfly sequences on their unchanged twiddle packs, so
  // it is bit-identical to the reference while halving the streaming
  // passes. (Three-level radix-8 groups were rejected: they misalign with
  // the radix-4 pairing, and under FMA a pre-rotated twiddle cannot
  // reproduce the reference's (x*w)*(-i) rounding.)
  const std::size_t t4 = stages_.size() - blocked_stage_count_;
  if (t4 > 0) {
    std::size_t i = blocked_stage_count_;
    for (; i + 1 < stages_.size(); i += 2) {
      const FusedStage& a = stages_[i];
      const FusedStage& b = stages_[i + 1];
      assert(b.len == 4 * a.len);
      tail_.push_back(
          TailStage{16, b.len, a.w1_off, a.w2_off, b.w1_off, b.w2_off});
    }
    if (i < stages_.size()) {
      const FusedStage& st = stages_[i];
      tail_.push_back(TailStage{4, st.len, st.w1_off, st.w2_off, 0, 0});
    }
    assert(tail_.back().len == n_);
  }
  // COBRA permutation: only above the size threshold (the scattered
  // pair-swap walk is cache-resident and cheaper below it) and only with a
  // usable tile — the effective width after CobraBitReversal's own clamp
  // must be >= 2 so fused-opener groups never straddle a write-back run.
  if (log2n_ >= tuning.cobra_min_log2) {
    auto cobra =
        std::make_unique<CobraBitReversal>(log2n_, tuning.cobra_tile_bits);
    if (cobra->tile_bits() >= 2) cobra_ = std::move(cobra);
  }
}

void InplaceRadix2Plan::permute_pairswap(cplx* data) const {
  for (std::size_t p = 0; p + 1 < bit_reverse_.size(); p += 2) {
    std::swap(data[bit_reverse_[p]], data[bit_reverse_[p + 1]]);
  }
}

void InplaceRadix2Plan::permute_cobra(cplx* data) const {
  if (cobra_) {
    cobra_->permute(data);
  } else {
    permute_pairswap(data);
  }
}

void InplaceRadix2Plan::permute_cobra_fused_opener(cplx* data) const {
  if (!cobra_) {
    throw std::logic_error(
        "permute_cobra_fused_opener: plan is below the COBRA threshold");
  }
  cobra_->run(data,
              (log2n_ & 1u) ? CobraBitReversal::Opener::kRadix2Pairs
                            : CobraBitReversal::Opener::kRadix4First,
              /*inverse=*/false);
}

void InplaceRadix2Plan::run_radix2(cplx* data, bool inverse) const {
  permute_pairswap(data);
  // Stage s merges blocks of half = 2^(s-1). The twiddle for butterfly j of
  // stage s is omega_{2^s}^j = omega_n^(j * n / 2^s).
  for (unsigned s = 1; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len >> 1;
    const std::size_t step = n_ >> s;  // twiddle index stride
    for (std::size_t base = 0; base < n_; base += len) {
      std::size_t tw = 0;
      for (std::size_t j = 0; j < half; ++j, tw += step) {
        const cplx w = inverse ? std::conj(twiddle_half_[tw])
                               : twiddle_half_[tw];
        const cplx u = data[base + j];
        const cplx t = cmul(data[base + j + half], w);
        data[base + j] = u + t;
        data[base + j + half] = u - t;
      }
    }
  }
}

void InplaceRadix2Plan::run_radix4_reference(cplx* data, bool inverse) const {
  permute_pairswap(data);
  // Fused stages s and s+1: one pass performs the radix-2 butterflies of
  // both levels while the four quarter elements are in registers. Within a
  // block of len = 2^(s+1), butterfly j uses
  //   w1 = omega_{2^s}^j       (level-s twiddle)
  //   w2 = omega_{2^(s+1)}^j   (level-(s+1) twiddle)
  //   omega_{2^(s+1)}^(j+q) = w2 * (-i)  [forward; +i inverse]
  // both repacked contiguously per stage at construction. The butterfly
  // passes run through the dispatched SIMD backend; when log2(n) is odd one
  // level is burned first with the twiddle-free radix-2 pass so the
  // remaining level count pairs up into radix-4 stages.
  //
  // Cache blocking: a stage with len <= the window only ever couples
  // elements inside an aligned window, so all such stages run to completion
  // window by window while the window is cache-hot — one streaming pass
  // over the array instead of one per stage. Blocks are independent, so
  // this reorders no butterfly's arithmetic: results are bit-identical to
  // the unblocked schedule. Stages with len > the window (couplings wider
  // than it) still run as whole-array radix-4 passes here; the optimized
  // path fuses them pairwise into radix-16 passes instead.
  blocked_pass(data, inverse, /*skip_opener=*/false, /*scale=*/1.0,
               kReferenceBlockLog2, ref_blocked_stage_count_);
  const auto& kernels = simd::fft_kernels();
  for (std::size_t i = ref_blocked_stage_count_; i < stages_.size(); ++i) {
    const FusedStage& st = stages_[i];
    kernels.radix4_stage(data, n_, st.len, stage_twiddles_.data() + st.w1_off,
                         stage_twiddles_.data() + st.w2_off, inverse, 1.0);
  }
}

void InplaceRadix2Plan::blocked_pass(cplx* data, bool inverse,
                                     bool skip_opener, double scale,
                                     unsigned block_log2,
                                     std::size_t stage_count) const {
  const auto& kernels = simd::fft_kernels();
  const std::size_t block =
      n_ < (std::size_t{1} << block_log2) ? n_
                                          : (std::size_t{1} << block_log2);
  // When the opener was fused into the permutation: for odd log2n it was the
  // radix-2 pair pass, for even log2n it was stages_[0] (len == 4).
  //
  // Stages run one sweep per radix-4 stage while the window is cache-hot.
  // (Fusing in-window pairs through the radix-16 kernel was measured and
  // rejected: sixteen live vectors spill on AVX2's sixteen registers, which
  // a DRAM-bound tail pass hides but a cache-resident sweep pays in full —
  // the blocked pass got ~30-60% slower.)
  const std::size_t first = (skip_opener && !(log2n_ & 1u)) ? 1 : 0;
  for (std::size_t off = 0; off < n_; off += block) {
    if (!skip_opener && (log2n_ & 1u)) {
      kernels.radix2_stage0(data + off, block);
    }
    for (std::size_t i = first; i < stage_count; ++i) {
      const FusedStage& st = stages_[i];
      if (st.len == 4) {
        kernels.radix4_first_stage(data + off, block, inverse);
      } else {
        // The fused 1/n scaling (scale != 1.0 only when the tail is empty
        // and n >= 8) lands on the last blocked stage of each window.
        const double s = (scale != 1.0 && i + 1 == stage_count) ? scale : 1.0;
        kernels.radix4_stage(data + off, block, st.len,
                             stage_twiddles_.data() + st.w1_off,
                             stage_twiddles_.data() + st.w2_off, inverse, s);
      }
    }
  }
}

void InplaceRadix2Plan::tail_pass(cplx* data, bool inverse,
                                  double scale) const {
  const auto& kernels = simd::fft_kernels();
  for (std::size_t i = 0; i < tail_.size(); ++i) {
    const TailStage& st = tail_[i];
    const double s = (scale != 1.0 && i + 1 == tail_.size()) ? scale : 1.0;
    if (st.radix == 4) {
      kernels.radix4_stage(data, n_, st.len,
                           stage_twiddles_.data() + st.w1a_off,
                           stage_twiddles_.data() + st.w2a_off, inverse, s);
    } else {
      kernels.radix16_stage(data, n_, st.len,
                            stage_twiddles_.data() + st.w1a_off,
                            stage_twiddles_.data() + st.w2a_off,
                            stage_twiddles_.data() + st.w1b_off,
                            stage_twiddles_.data() + st.w2b_off, inverse, s);
    }
  }
}

void InplaceRadix2Plan::run_optimized(cplx* data, bool inverse) const {
  const double scale = inverse ? 1.0 / static_cast<double>(n_) : 1.0;
  // n >= 8 guarantees the final stage is a radix-4/radix-16 pass that can
  // absorb the 1/n factor; below that the separate sweep is free anyway.
  const bool fuse_scale = inverse && n_ >= 8;
  bool opener_fused = false;
  if (cobra_) {
    cobra_->run(data,
                (log2n_ & 1u) ? CobraBitReversal::Opener::kRadix2Pairs
                              : CobraBitReversal::Opener::kRadix4First,
                inverse);
    opener_fused = true;
  } else {
    permute_pairswap(data);
  }
  blocked_pass(data, inverse, opener_fused,
               fuse_scale && tail_.empty() ? scale : 1.0, block_log2_,
               blocked_stage_count_);
  tail_pass(data, inverse, fuse_scale ? scale : 1.0);
  if (inverse && !fuse_scale && scale != 1.0) {
    for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
  }
}

void InplaceRadix2Plan::forward(cplx* data) const {
  run_optimized(data, false);
}

void InplaceRadix2Plan::forward_copy(const cplx* src, cplx* dst) const {
  bool opener_fused = false;
  // The out-of-place gather only pays when src AND dst together stay
  // cache-resident (log2n + 1 <= block_log2): there it deletes a whole
  // read+write sweep. Once the pair spills the cache window the gather's
  // doubled working set thrashes L2 against the in-place walk's single
  // array, and memcpy (streaming, no reuse needed) + in-place COBRA wins —
  // measured crossover matches the window boundary exactly.
  if (cobra_ && log2n_ + 1 <= block_log2_) {
    cobra_->run_copy(dst, src,
                     (log2n_ & 1u) ? CobraBitReversal::Opener::kRadix2Pairs
                                   : CobraBitReversal::Opener::kRadix4First,
                     /*inverse=*/false);
    opener_fused = true;
  } else if (cobra_) {
    std::memcpy(static_cast<void*>(dst), src, n_ * sizeof(cplx));
    permute_cobra_fused_opener(dst);
    opener_fused = true;
  } else {
    // Below the COBRA threshold the array is cache-resident and the
    // vectorized pair-swap walk beats a scalar per-element gather, so the
    // copy stays separate — it is cheap at these sizes.
    std::memcpy(static_cast<void*>(dst), src, n_ * sizeof(cplx));
    permute_pairswap(dst);
  }
  blocked_pass(dst, /*inverse=*/false, opener_fused, /*scale=*/1.0,
               block_log2_, blocked_stage_count_);
  tail_pass(dst, /*inverse=*/false, /*scale=*/1.0);
}

InplaceRadix2Plan::OpenLastStage InplaceRadix2Plan::open_last_stages(
    cplx* data, bool opener_fused) const {
  assert(n_ >= 8);
  const auto& kernels = simd::fft_kernels();
  const cplx* tw = stage_twiddles_.data();
  if (tail_.empty()) {
    // Single-window schedule: the final stage is the last blocked one
    // (len == n, never the opener at n >= 8), so the windowed pass just
    // stops one stage short.
    blocked_pass(data, /*inverse=*/false, opener_fused, /*scale=*/1.0,
                 block_log2_, blocked_stage_count_ - 1);
    const FusedStage& st = stages_.back();
    return OpenLastStage{4, tw + st.w1_off, tw + st.w2_off, nullptr, nullptr};
  }
  blocked_pass(data, /*inverse=*/false, opener_fused, /*scale=*/1.0,
               block_log2_, blocked_stage_count_);
  for (std::size_t i = 0; i + 1 < tail_.size(); ++i) {
    const TailStage& st = tail_[i];
    if (st.radix == 4) {
      kernels.radix4_stage(data, n_, st.len, tw + st.w1a_off,
                           tw + st.w2a_off, /*inverse=*/false, 1.0);
    } else {
      kernels.radix16_stage(data, n_, st.len, tw + st.w1a_off,
                            tw + st.w2a_off, tw + st.w1b_off,
                            tw + st.w2b_off, /*inverse=*/false, 1.0);
    }
  }
  const TailStage& st = tail_.back();
  if (st.radix == 4) {
    return OpenLastStage{4, tw + st.w1a_off, tw + st.w2a_off, nullptr,
                         nullptr};
  }
  return OpenLastStage{16, tw + st.w1a_off, tw + st.w2a_off,
                       tw + st.w1b_off, tw + st.w2b_off};
}

InplaceRadix2Plan::OpenLastStage InplaceRadix2Plan::forward_open_last(
    cplx* data) const {
  bool opener_fused = false;
  if (cobra_) {
    cobra_->run(data,
                (log2n_ & 1u) ? CobraBitReversal::Opener::kRadix2Pairs
                              : CobraBitReversal::Opener::kRadix4First,
                /*inverse=*/false);
    opener_fused = true;
  } else {
    permute_pairswap(data);
  }
  return open_last_stages(data, opener_fused);
}

InplaceRadix2Plan::OpenLastStage InplaceRadix2Plan::forward_copy_open_last(
    const cplx* src, cplx* dst) const {
  bool opener_fused = false;
  // Same permutation choice as forward_copy (and the same crossover
  // rationale); only the stage schedule afterwards differs.
  if (cobra_ && log2n_ + 1 <= block_log2_) {
    cobra_->run_copy(dst, src,
                     (log2n_ & 1u) ? CobraBitReversal::Opener::kRadix2Pairs
                                   : CobraBitReversal::Opener::kRadix4First,
                     /*inverse=*/false);
    opener_fused = true;
  } else if (cobra_) {
    std::memcpy(static_cast<void*>(dst), src, n_ * sizeof(cplx));
    permute_cobra_fused_opener(dst);
    opener_fused = true;
  } else {
    std::memcpy(static_cast<void*>(dst), src, n_ * sizeof(cplx));
    permute_pairswap(dst);
  }
  return open_last_stages(dst, opener_fused);
}

void InplaceRadix2Plan::forward_fused(const cplx* src, cplx* dst,
                                      const cplx* w_in, const cplx* w_out,
                                      FusedDots& dots,
                                      void (*hook)(void*, cplx*, std::size_t),
                                      void* hook_ctx) const {
  const auto& kernels = simd::fft_kernels();
  if (n_ < 8) {
    // Degenerate sizes: permuted copy + plain scalar dots. No stage here has
    // enough butterflies to be worth fusing into (and the final stage can be
    // the width-sensitive len == 4 opener).
    if (w_in != nullptr) {
      cplx s{0.0, 0.0};
      double e = 0.0;
      for (std::size_t j = 0; j < n_; ++j) {
        s += cmul(w_in[j], src[j]);
        e += norm2(src[j]);
      }
      dots.in_sum = s;
      dots.in_energy = e;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      dst[i] = src[reverse_bits(i, log2n_)];
    }
    blocked_pass(dst, /*inverse=*/false, /*skip_opener=*/false, /*scale=*/1.0,
                 block_log2_, blocked_stage_count_);
    if (hook != nullptr) hook(hook_ctx, dst, n_);
    dots.out_sum = simd::checksum_kernels().omega3_weighted_sum(dst, n_);
    return;
  }
  // The input dot rides on the src -> dst copy: copy_weighted_sum_energy
  // streams both sequentially and keeps the exact accumulator structure of
  // the separate weighted_sum_energy sweep, so in_sum/in_energy are
  // bit-identical to the separate pass on every backend. (An earlier cut
  // fused the dot into scalar permute-with-opener kernels instead; their
  // scattered scalar stores cost more than the whole extra copy at every
  // cache-resident size, so the permutation now reuses the engine's own
  // vectorized openers.) Above the COBRA threshold the tiled walk also
  // absorbs the opener stage; below it permute_pairswap leaves the opener
  // to the blocked schedule.
  kernels.copy_weighted_sum_energy(dst, src, w_in, n_, &dots.in_sum,
                                   &dots.in_energy);
  bool opener_fused = false;
  if (cobra_) {
    permute_cobra_fused_opener(dst);
    opener_fused = true;
  } else {
    permute_pairswap(dst);
  }
  // Remaining stages follow run_optimized's forward schedule exactly, except
  // that the last stage (which touches every element once) runs through the
  // fused-checksum kernel and returns the weighted output sum. The optional
  // hook fires just before it — see the header contract.
  const cplx* tw = stage_twiddles_.data();
  if (!tail_.empty()) {
    blocked_pass(dst, /*inverse=*/false, /*skip_opener=*/opener_fused,
                 /*scale=*/1.0, block_log2_, blocked_stage_count_);
    for (std::size_t i = 0; i + 1 < tail_.size(); ++i) {
      const TailStage& st = tail_[i];
      if (st.radix == 4) {
        kernels.radix4_stage(dst, n_, st.len, tw + st.w1a_off,
                             tw + st.w2a_off, /*inverse=*/false, 1.0);
      } else {
        kernels.radix16_stage(dst, n_, st.len, tw + st.w1a_off,
                              tw + st.w2a_off, tw + st.w1b_off,
                              tw + st.w2b_off, /*inverse=*/false, 1.0);
      }
    }
    if (hook != nullptr) hook(hook_ctx, dst, n_);
    const TailStage& last = tail_.back();
    dots.out_sum =
        last.radix == 4
            ? kernels.radix4_stage_cs(dst, n_, last.len, tw + last.w1a_off,
                                      tw + last.w2a_off, w_out)
            : kernels.radix16_stage_cs(dst, n_, last.len, tw + last.w1a_off,
                                       tw + last.w2a_off, tw + last.w1b_off,
                                       tw + last.w2b_off, w_out);
  } else {
    // The whole transform fits one cache window (tail empty implies
    // n <= window), so data stays cache-resident across passes. Two
    // measured consequences shape this branch:
    //  * Below the COBRA threshold, pairing the radix-4 stages through the
    //    radix-16 kernel halves the passes and runs 6-19% faster at the
    //    L1-boundary sizes (128..2048) this branch serves — bit-identical
    //    to back-to-back radix-4 passes on the same twiddle packs. Above
    //    the threshold the plain radix-4 sweeps stay faster (the same
    //    result as the blocked_pass in-window fusion experiment).
    //  * The in-register cs-stage beats a separate output sweep only when
    //    the final stage streams from DRAM (the tail branch above). Here
    //    the outputs are still cache-hot, and the weight-free 3-bucket
    //    omega3 sweep costs less than the cs-stage's per-element weight
    //    loads + complex multiplies — so the last stage runs plain and the
    //    output dot is the same dispatched sweep the separate path uses
    //    (making out_sum bit-identical to it on every backend).
    if (opener_fused) {
      // COBRA absorbed the opener (odd log2n: the radix-2 pair pass; even:
      // stages_[0]).
    } else if (log2n_ & 1u) {
      kernels.radix2_stage0(dst, n_);
    } else {
      kernels.radix4_first_stage(dst, n_, /*inverse=*/false);
    }
    std::size_t i = (log2n_ & 1u) ? 0 : 1;
    if (cobra_ == nullptr) {
      for (; i + 1 < stages_.size(); i += 2) {
        const FusedStage& a = stages_[i];
        const FusedStage& b = stages_[i + 1];
        kernels.radix16_stage(dst, n_, b.len, tw + a.w1_off, tw + a.w2_off,
                              tw + b.w1_off, tw + b.w2_off, /*inverse=*/false,
                              1.0);
      }
    }
    for (; i < stages_.size(); ++i) {
      const FusedStage& st = stages_[i];
      kernels.radix4_stage(dst, n_, st.len, tw + st.w1_off, tw + st.w2_off,
                           /*inverse=*/false, 1.0);
    }
    if (hook != nullptr) hook(hook_ctx, dst, n_);
    dots.out_sum = simd::checksum_kernels().omega3_weighted_sum(dst, n_);
  }
}

void InplaceRadix2Plan::inverse(cplx* data) const {
  run_optimized(data, true);
}

void InplaceRadix2Plan::forward_radix2(cplx* data) const {
  run_radix2(data, false);
}

void InplaceRadix2Plan::forward_radix4_reference(cplx* data) const {
  run_radix4_reference(data, false);
}

void InplaceRadix2Plan::inverse_radix4_reference(cplx* data) const {
  run_radix4_reference(data, true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
}

void InplaceRadix2Plan::blocked_stages_pass(cplx* data,
                                            bool include_opener) const {
  blocked_pass(data, /*inverse=*/false, /*skip_opener=*/!include_opener,
               /*scale=*/1.0, block_log2_, blocked_stage_count_);
}

void InplaceRadix2Plan::tail_stages_pass(cplx* data) const {
  tail_pass(data, /*inverse=*/false, /*scale=*/1.0);
}

std::size_t InplaceRadix2Plan::tail_radix16_stages() const noexcept {
  std::size_t c = 0;
  for (const TailStage& st : tail_) c += st.radix == 16 ? 1 : 0;
  return c;
}

std::size_t InplaceRadix2Plan::tail_radix4_stages() const noexcept {
  return tail_.size() - tail_radix16_stages();
}

namespace {

std::uint64_t seal_inplace_plan(const InplaceRadix2Plan& plan) {
  StateSpans spans;
  plan.collect_state(spans);
  return seal_spans(spans);
}

PlanRegistry<std::size_t, InplaceRadix2Plan>& inplace_registry() {
  // LRU-bounded by FTFFT_PLAN_CACHE_CAP, like every other plan cache.
  static PlanRegistry<std::size_t, InplaceRadix2Plan> registry(
      plan_cache_capacity(), seal_inplace_plan);
  return registry;
}

// Enroll in plan_cache_stats() / scrub_plan_caches() before main. The
// lambdas are lazy on purpose: the registry (and its FTFFT_PLAN_CACHE_CAP /
// FTFFT_PLAN_VERIFY reads) is only materialized at first use or first stats
// call, never during static initialization.
const bool inplace_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return inplace_registry().snapshot("inplace-plan"); },
         [] { return inplace_registry().scrub(); },
         [](std::size_t k) { inplace_registry().set_verify_interval(k); }}),
     true);

}  // namespace

std::shared_ptr<const InplaceRadix2Plan> InplaceRadix2Plan::get(
    std::size_t n) {
  return inplace_registry().get_or_build(
      n, [n] { return std::make_shared<const InplaceRadix2Plan>(n); });
}

}  // namespace ftfft::fft
