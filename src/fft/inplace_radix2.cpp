#include "fft/inplace_radix2.hpp"

#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::fft {

InplaceRadix2Plan::InplaceRadix2Plan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "InplaceRadix2Plan: size must be a power of two");
  }
  log2n_ = log2_floor(n);
  // Store only the swap pairs (i, rev(i)) with i < rev(i) so the permutation
  // pass touches each element once.
  bit_reverse_.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      rev = (rev << 1) | (x & 1);
      x >>= 1;
    }
    if (i < rev) {
      bit_reverse_.push_back(i);
      bit_reverse_.push_back(rev);
    }
  }
  twiddle_half_.resize(n / 2 == 0 ? 1 : n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) twiddle_half_[k] = omega(n, k);
  // Pack the fused radix-4 schedule's per-stage twiddles contiguously in j
  // (see FusedStage). Values are copies out of twiddle_half_, so the scalar
  // backend computes bit-identical results to the historic strided reads.
  unsigned s = (log2n_ & 1u) ? 2 : 1;
  std::size_t total = 0;
  for (unsigned t = s; t + 1 <= log2n_; t += 2) {
    total += 2 * (std::size_t{1} << (t - 1));
  }
  stage_twiddles_.reserve(total);
  for (; s + 1 <= log2n_; s += 2) {
    const std::size_t quarter = std::size_t{1} << (s - 1);
    const std::size_t step1 = n_ >> s;
    const std::size_t step2 = n_ >> (s + 1);
    FusedStage st;
    st.len = std::size_t{1} << (s + 1);
    st.w1_off = stage_twiddles_.size();
    for (std::size_t j = 0; j < quarter; ++j) {
      stage_twiddles_.push_back(twiddle_half_[j * step1]);
    }
    st.w2_off = stage_twiddles_.size();
    for (std::size_t j = 0; j < quarter; ++j) {
      stage_twiddles_.push_back(twiddle_half_[j * step2]);
    }
    stages_.push_back(st);
  }
}

void InplaceRadix2Plan::permute(cplx* data) const {
  for (std::size_t p = 0; p + 1 < bit_reverse_.size(); p += 2) {
    std::swap(data[bit_reverse_[p]], data[bit_reverse_[p + 1]]);
  }
}

void InplaceRadix2Plan::run_radix2(cplx* data, bool inverse) const {
  permute(data);
  // Stage s merges blocks of half = 2^(s-1). The twiddle for butterfly j of
  // stage s is omega_{2^s}^j = omega_n^(j * n / 2^s).
  for (unsigned s = 1; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len >> 1;
    const std::size_t step = n_ >> s;  // twiddle index stride
    for (std::size_t base = 0; base < n_; base += len) {
      std::size_t tw = 0;
      for (std::size_t j = 0; j < half; ++j, tw += step) {
        const cplx w = inverse ? std::conj(twiddle_half_[tw])
                               : twiddle_half_[tw];
        const cplx u = data[base + j];
        const cplx t = cmul(data[base + j + half], w);
        data[base + j] = u + t;
        data[base + j + half] = u - t;
      }
    }
  }
}

void InplaceRadix2Plan::run_radix4(cplx* data, bool inverse) const {
  permute(data);
  // Fused stages s and s+1: one pass performs the radix-2 butterflies of
  // both levels while the four quarter elements are in registers. Within a
  // block of len = 2^(s+1), butterfly j uses
  //   w1 = omega_{2^s}^j       (level-s twiddle)
  //   w2 = omega_{2^(s+1)}^j   (level-(s+1) twiddle)
  //   omega_{2^(s+1)}^(j+q) = w2 * (-i)  [forward; +i inverse]
  // both repacked contiguously per stage at construction. The butterfly
  // passes run through the dispatched SIMD backend; when log2(n) is odd one
  // level is burned first with the twiddle-free radix-2 pass so the
  // remaining level count pairs up into radix-4 stages.
  //
  // Cache blocking: a stage with len <= kBlock only ever couples elements
  // inside an aligned kBlock-sized window, so all such stages run to
  // completion window by window while the window is cache-hot — one
  // streaming pass over the array instead of one per stage. Blocks are
  // independent, so this reorders no butterfly's arithmetic: results are
  // bit-identical to the unblocked schedule. Stages with len > kBlock
  // (couplings wider than the window) still run as whole-array passes.
  constexpr std::size_t kBlock = std::size_t{1} << 15;  // 512 KiB of cplx
  const auto& kernels = simd::fft_kernels();
  const std::size_t block = n_ < kBlock ? n_ : kBlock;
  std::size_t blocked_stages = 0;
  while (blocked_stages < stages_.size() &&
         stages_[blocked_stages].len <= block) {
    ++blocked_stages;
  }
  for (std::size_t off = 0; off < n_; off += block) {
    if (log2n_ & 1u) kernels.radix2_stage0(data + off, block);
    for (std::size_t i = 0; i < blocked_stages; ++i) {
      const FusedStage& st = stages_[i];
      if (st.len == 4) {
        kernels.radix4_first_stage(data + off, block, inverse);
      } else {
        kernels.radix4_stage(data + off, block, st.len,
                             stage_twiddles_.data() + st.w1_off,
                             stage_twiddles_.data() + st.w2_off, inverse);
      }
    }
  }
  for (std::size_t i = blocked_stages; i < stages_.size(); ++i) {
    const FusedStage& st = stages_[i];
    kernels.radix4_stage(data, n_, st.len, stage_twiddles_.data() + st.w1_off,
                         stage_twiddles_.data() + st.w2_off, inverse);
  }
}

void InplaceRadix2Plan::forward(cplx* data) const { run_radix4(data, false); }

void InplaceRadix2Plan::forward_radix2(cplx* data) const {
  run_radix2(data, false);
}

void InplaceRadix2Plan::inverse(cplx* data) const {
  run_radix4(data, true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
}

namespace {

PlanRegistry<std::size_t, InplaceRadix2Plan>& inplace_registry() {
  // LRU-bounded by FTFFT_PLAN_CACHE_CAP, like every other plan cache.
  static PlanRegistry<std::size_t, InplaceRadix2Plan> registry(
      plan_cache_capacity());
  return registry;
}

// Enroll in plan_cache_stats() before main. The lambda is lazy on purpose:
// the registry (and its FTFFT_PLAN_CACHE_CAP read) is only materialized at
// first use or first stats call, never during static initialization.
const bool inplace_registry_registered =
    (ftfft::detail::register_plan_cache(
         [] { return inplace_registry().snapshot("inplace-plan"); }),
     true);

}  // namespace

std::shared_ptr<const InplaceRadix2Plan> InplaceRadix2Plan::get(
    std::size_t n) {
  return inplace_registry().get_or_build(
      n, [n] { return std::make_shared<const InplaceRadix2Plan>(n); });
}

}  // namespace ftfft::fft
