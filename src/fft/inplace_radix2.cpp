#include "fft/inplace_radix2.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/math_util.hpp"

namespace ftfft::fft {

InplaceRadix2Plan::InplaceRadix2Plan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "InplaceRadix2Plan: size must be a power of two");
  }
  log2n_ = log2_floor(n);
  // Store only the swap pairs (i, rev(i)) with i < rev(i) so the permutation
  // pass touches each element once.
  bit_reverse_.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      rev = (rev << 1) | (x & 1);
      x >>= 1;
    }
    if (i < rev) {
      bit_reverse_.push_back(i);
      bit_reverse_.push_back(rev);
    }
  }
  twiddle_half_.resize(n / 2 == 0 ? 1 : n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) twiddle_half_[k] = omega(n, k);
}

void InplaceRadix2Plan::run(cplx* data, bool inverse) const {
  for (std::size_t p = 0; p + 1 < bit_reverse_.size(); p += 2) {
    std::swap(data[bit_reverse_[p]], data[bit_reverse_[p + 1]]);
  }
  // Stage s merges blocks of half = 2^(s-1). The twiddle for butterfly j of
  // stage s is omega_{2^s}^j = omega_n^(j * n / 2^s).
  for (unsigned s = 1; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len >> 1;
    const std::size_t step = n_ >> s;  // twiddle index stride
    for (std::size_t base = 0; base < n_; base += len) {
      std::size_t tw = 0;
      for (std::size_t j = 0; j < half; ++j, tw += step) {
        const cplx w = inverse ? std::conj(twiddle_half_[tw])
                               : twiddle_half_[tw];
        const cplx u = data[base + j];
        const cplx t = cmul(data[base + j + half], w);
        data[base + j] = u + t;
        data[base + j + half] = u - t;
      }
    }
  }
}

void InplaceRadix2Plan::forward(cplx* data) const { run(data, false); }

void InplaceRadix2Plan::inverse(cplx* data) const {
  run(data, true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
}

std::shared_ptr<const InplaceRadix2Plan> InplaceRadix2Plan::get(
    std::size_t n) {
  static std::mutex mu;
  static std::unordered_map<std::size_t,
                            std::shared_ptr<const InplaceRadix2Plan>>
      cache;
  std::scoped_lock lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_shared<InplaceRadix2Plan>(n)).first;
  }
  return it->second;
}

}  // namespace ftfft::fft
