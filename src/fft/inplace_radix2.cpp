#include "fft/inplace_radix2.hpp"

#include <stdexcept>
#include <utility>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"

namespace ftfft::fft {

InplaceRadix2Plan::InplaceRadix2Plan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument(
        "InplaceRadix2Plan: size must be a power of two");
  }
  log2n_ = log2_floor(n);
  // Store only the swap pairs (i, rev(i)) with i < rev(i) so the permutation
  // pass touches each element once.
  bit_reverse_.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    std::size_t x = i;
    for (unsigned b = 0; b < log2n_; ++b) {
      rev = (rev << 1) | (x & 1);
      x >>= 1;
    }
    if (i < rev) {
      bit_reverse_.push_back(i);
      bit_reverse_.push_back(rev);
    }
  }
  twiddle_half_.resize(n / 2 == 0 ? 1 : n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) twiddle_half_[k] = omega(n, k);
}

void InplaceRadix2Plan::permute(cplx* data) const {
  for (std::size_t p = 0; p + 1 < bit_reverse_.size(); p += 2) {
    std::swap(data[bit_reverse_[p]], data[bit_reverse_[p + 1]]);
  }
}

void InplaceRadix2Plan::run_radix2(cplx* data, bool inverse) const {
  permute(data);
  // Stage s merges blocks of half = 2^(s-1). The twiddle for butterfly j of
  // stage s is omega_{2^s}^j = omega_n^(j * n / 2^s).
  for (unsigned s = 1; s <= log2n_; ++s) {
    const std::size_t len = std::size_t{1} << s;
    const std::size_t half = len >> 1;
    const std::size_t step = n_ >> s;  // twiddle index stride
    for (std::size_t base = 0; base < n_; base += len) {
      std::size_t tw = 0;
      for (std::size_t j = 0; j < half; ++j, tw += step) {
        const cplx w = inverse ? std::conj(twiddle_half_[tw])
                               : twiddle_half_[tw];
        const cplx u = data[base + j];
        const cplx t = cmul(data[base + j + half], w);
        data[base + j] = u + t;
        data[base + j + half] = u - t;
      }
    }
  }
}

void InplaceRadix2Plan::run_radix4(cplx* data, bool inverse) const {
  permute(data);
  unsigned s = 1;
  // Odd log2(n): burn one level with the twiddle-free radix-2 stage so the
  // remaining level count is even and pairs up into radix-4 stages.
  if (log2n_ & 1u) {
    for (std::size_t base = 0; base < n_; base += 2) {
      const cplx u = data[base];
      const cplx t = data[base + 1];
      data[base] = u + t;
      data[base + 1] = u - t;
    }
    s = 2;
  }
  // Fused stages s and s+1: one pass performs the radix-2 butterflies of
  // both levels while the four quarter elements are in registers. Within a
  // block of len = 2^(s+1), butterfly j uses
  //   w1 = omega_{2^s}^j       (level-s twiddle, index stride n >> s)
  //   w2 = omega_{2^(s+1)}^j   (level-(s+1) twiddle, index stride n >> (s+1))
  //   omega_{2^(s+1)}^(j+q) = w2 * (-i)  [forward; +i inverse]
  for (; s + 1 <= log2n_; s += 2) {
    const std::size_t len = std::size_t{1} << (s + 1);
    const std::size_t quarter = len >> 2;
    const std::size_t step1 = n_ >> s;
    const std::size_t step2 = n_ >> (s + 1);
    for (std::size_t base = 0; base < n_; base += len) {
      std::size_t tw1 = 0;
      std::size_t tw2 = 0;
      for (std::size_t j = 0; j < quarter; ++j, tw1 += step1, tw2 += step2) {
        const cplx w1 = inverse ? std::conj(twiddle_half_[tw1])
                                : twiddle_half_[tw1];
        const cplx w2 = inverse ? std::conj(twiddle_half_[tw2])
                                : twiddle_half_[tw2];
        const cplx a = data[base + j];
        const cplx b = data[base + j + quarter];
        const cplx c = data[base + j + 2 * quarter];
        const cplx d = data[base + j + 3 * quarter];
        // Level s on the two half-blocks.
        const cplx t0 = cmul(b, w1);
        const cplx a1 = a + t0;
        const cplx b1 = a - t0;
        const cplx t1 = cmul(d, w1);
        const cplx c1 = c + t1;
        const cplx d1 = c - t1;
        // Level s+1 across the half-blocks.
        const cplx t2 = cmul(c1, w2);
        const cplx t3raw = cmul(d1, w2);
        const cplx t3 = inverse ? mul_i(t3raw) : mul_neg_i(t3raw);
        data[base + j] = a1 + t2;
        data[base + j + 2 * quarter] = a1 - t2;
        data[base + j + quarter] = b1 + t3;
        data[base + j + 3 * quarter] = b1 - t3;
      }
    }
  }
}

void InplaceRadix2Plan::forward(cplx* data) const { run_radix4(data, false); }

void InplaceRadix2Plan::forward_radix2(cplx* data) const {
  run_radix2(data, false);
}

void InplaceRadix2Plan::inverse(cplx* data) const {
  run_radix4(data, true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
}

namespace {

PlanRegistry<std::size_t, InplaceRadix2Plan>& inplace_registry() {
  // LRU-bounded by FTFFT_PLAN_CACHE_CAP, like every other plan cache.
  static PlanRegistry<std::size_t, InplaceRadix2Plan> registry(
      plan_cache_capacity());
  return registry;
}

// Enroll in plan_cache_stats() before main. The lambda is lazy on purpose:
// the registry (and its FTFFT_PLAN_CACHE_CAP read) is only materialized at
// first use or first stats call, never during static initialization.
const bool inplace_registry_registered =
    (ftfft::detail::register_plan_cache(
         [] { return inplace_registry().snapshot("inplace-plan"); }),
     true);

}  // namespace

std::shared_ptr<const InplaceRadix2Plan> InplaceRadix2Plan::get(
    std::size_t n) {
  return inplace_registry().get_or_build(
      n, [n] { return std::make_shared<const InplaceRadix2Plan>(n); });
}

}  // namespace ftfft::fft
