// FFT plan tree: the library's equivalent of an FFTW plan.
//
// A plan is an immutable decomposition of an n-point DFT:
//   * kCodelet      - hand-unrolled or generic O(n^2) kernel leaf,
//   * kCooleyTukey  - n = r*m: r sub-DFTs of size m (stride r), twiddle,
//                     m combine-DFTs of size r,
//   * kBluestein    - chirp-z reformulation for sizes with a large prime
//                     factor; internally a power-of-two convolution.
//
// Plans are shape-only (twiddle tables included, no workspace), so they are
// immutable after construction and safely shared across threads; per-call
// scratch lives in the Fft executor object (src/fft/fft.hpp).
//
// The online ABFT scheme (src/abft) performs the *top-level* m*k split
// itself — mirroring how the paper instruments FFTW's first decomposition
// level — and uses these plans for the sub-transforms.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/complex.hpp"
#include "common/seal.hpp"

namespace ftfft::fft {

/// One node of the decomposition tree. See file comment.
struct PlanNode {
  enum class Kind { kCodelet, kCooleyTukey, kBluestein };

  std::size_t n = 0;
  Kind kind = Kind::kCodelet;

  // --- kCooleyTukey ---
  std::size_t radix = 0;                 ///< r in n = r*m
  std::shared_ptr<const PlanNode> sub;   ///< plan for the m-point sub-DFTs
  /// Combine twiddles omega_n^(t1*k1) for t1 in [1,r), k1 in [0,m), laid out
  /// [(t1-1)*m + k1]. The t1 == 0 row is identically 1 and omitted.
  std::vector<cplx> twiddles;

  // --- kBluestein ---
  std::size_t conv_n = 0;                   ///< power-of-two convolution size
  std::vector<cplx> chirp;                  ///< c[t] = exp(-pi i t^2 / n)
  std::vector<cplx> chirp_fft;              ///< FFT_conv_n of padded conj chirp
  std::shared_ptr<const PlanNode> conv_plan;  ///< pow2 plan of size conv_n

  /// Scratch (complex elements) needed to execute this subtree. Nonzero only
  /// when a Bluestein node exists below; see executor.hpp for the layout
  /// contract.
  std::size_t scratch_need = 0;
};

/// Appends every twiddle/chirp table in the subtree rooted at `node` to
/// `out` (recursing through sub and conv_plan). This is the span set sealed
/// by the fft-plan registry: flipping any cached table bit changes the seal.
void collect_plan_state(const PlanNode& node, StateSpans& out);

/// Builds (or fetches from the process-wide cache) the plan for an n-point
/// DFT. Thread-safe. n must be >= 1.
std::shared_ptr<const PlanNode> make_plan(std::size_t n);

/// Human-readable plan tree, e.g. "ct(16) -> ct(16) -> codelet(8)".
std::string describe_plan(const PlanNode& node);

}  // namespace ftfft::fft
