#include "fft/real_fft.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "simd/dispatch.hpp"

namespace ftfft::fft {
namespace {

std::atomic<std::uint64_t> g_build_count{0};

std::uint64_t seal_real_plan(const RealFftPlan& plan) {
  StateSpans spans;
  plan.collect_state(spans);
  return seal_spans(spans);
}

PlanRegistry<std::size_t, RealFftPlan>& real_plan_registry() {
  static PlanRegistry<std::size_t, RealFftPlan> registry(
      plan_cache_capacity(), seal_real_plan);
  return registry;
}

const bool real_plan_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return real_plan_registry().snapshot("real-plan"); },
         [] { return real_plan_registry().scrub(); },
         [](std::size_t k) { real_plan_registry().set_verify_interval(k); }}),
     true);

}  // namespace

RealFftPlan::RealFftPlan(std::size_t n) : n_(n), nc_(n / 2) {
  if (n < 2 || !is_pow2(n)) {
    throw std::invalid_argument(
        "RealFftPlan: n must be a power of two >= 2");
  }
  cplan_ = InplaceRadix2Plan::get(nc_);
  wq_.resize(nc_ / 2 + 1);
  for (std::size_t k = 0; k < wq_.size(); ++k) wq_[k] = omega(n_, k);
  g_build_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RealFftPlan::build_count() {
  return g_build_count.load(std::memory_order_relaxed);
}

void RealFftPlan::r2c(const double* in, cplx* out) const {
  // Pack: the n reals ARE the nc interleaved complex values, so the packed
  // transform can gather straight out of the caller's array — forward_copy
  // fuses the pack copy into the bit-reversal, and the Hermitian unpack is
  // fused into the final butterfly pass (the half-spectrum falls out of the
  // last stage in one sweep instead of butterfly-sweep + unpack-sweep).
  cplx* z = out;
  if (nc_ >= 8) {
    const auto last =
        cplan_->forward_copy_open_last(reinterpret_cast<const cplx*>(in), z);
    finalize_open_last(out, last);
    return;
  }
  if (nc_ > 1) {
    cplan_->forward_copy(reinterpret_cast<const cplx*>(in), z);
  } else {
    std::memcpy(static_cast<void*>(out), in, n_ * sizeof(double));
  }
  simd::fft_kernels().r2c_finalize(out, z, nc_, wq_.data());
}

void RealFftPlan::r2c_strided(const double* in, std::size_t stride,
                              cplx* out) const {
  if (stride == 1) {
    r2c(in, out);
    return;
  }
  double* packed = reinterpret_cast<double*>(out);
  for (std::size_t j = 0; j < n_; ++j) packed[j] = in[j * stride];
  cplx* z = out;
  if (nc_ >= 8) {
    // Same fused last stage as the compact path, so strided output stays
    // bitwise identical to r2c on the gathered signal.
    finalize_open_last(out, cplan_->forward_open_last(z));
    return;
  }
  if (nc_ > 1) cplan_->forward(z);
  simd::fft_kernels().r2c_finalize(out, z, nc_, wq_.data());
}

void RealFftPlan::finalize_open_last(
    cplx* out, const InplaceRadix2Plan::OpenLastStage& last) const {
  const auto& kernels = simd::fft_kernels();
  if (last.radix == 4) {
    kernels.r2c_last_stage4(out, nc_, last.w1a, last.w2a, wq_.data());
  } else {
    kernels.r2c_last_stage16(out, nc_, last.w1a, last.w2a, last.w1b,
                             last.w2b, wq_.data());
  }
}

void RealFftPlan::c2r(const cplx* in, double* out) const {
  // Unsplit straight into the caller's buffer viewed as nc complex values,
  // then the 1/nc-normalized in-place inverse (scaling fused into its final
  // stage) — no scratch, no extra sweep. 1/nc is the whole normalization:
  // the packing is lossless, so the half-length inverse already yields the
  // 1/n-normalized real signal.
  cplx* z = reinterpret_cast<cplx*>(out);
  simd::fft_kernels().c2r_prepare(z, in, nc_, wq_.data(), false);
  if (nc_ > 1) cplan_->inverse(z);
}

std::shared_ptr<const RealFftPlan> RealFftPlan::get(std::size_t n) {
  return real_plan_registry().get_or_build(
      n, [n] { return std::make_shared<const RealFftPlan>(n); });
}

void r2c(const double* in, std::size_t n, cplx* out) {
  RealFftPlan::get(n)->r2c(in, out);
}

void c2r(const cplx* in, std::size_t n, double* out) {
  RealFftPlan::get(n)->c2r(in, out);
}

}  // namespace ftfft::fft
