#include "fft/bit_reversal.hpp"

#include <cassert>
#include <cstring>

#include "simd/dispatch.hpp"

namespace ftfft::fft {

CobraBitReversal::CobraBitReversal(unsigned log2n, unsigned tile_bits)
    : log2n_(log2n),
      b_(tile_bits < log2n / 2 ? tile_bits : log2n / 2),
      mid_(log2n - 2 * b_) {
  const std::size_t tile = std::size_t{1} << b_;
  rev_tile_.resize(tile);
  for (std::size_t x = 0; x < tile; ++x) {
    rev_tile_[x] = static_cast<std::uint32_t>(reverse_bits(x, b_));
  }
  const std::size_t mids = std::size_t{1} << mid_;
  mid_pairs_.reserve(mids);  // mids/2 pairs plus the self-paired middles
  for (std::size_t m = 0; m < mids; ++m) {
    const std::size_t mr = reverse_bits(m, mid_);
    if (m <= mr) {
      mid_pairs_.push_back(static_cast<std::uint32_t>(m));
      mid_pairs_.push_back(static_cast<std::uint32_t>(mr));
    }
  }
}

namespace {

/// Starts the loads of every row of tile `m` early: the 2^b rows live
/// row_stride apart (one page each at large n), so hardware prefetchers
/// never see them coming — issuing the row-start prefetches while the
/// previous tile is being gathered hides most of that latency.
inline void prefetch_tile(const cplx* data, std::size_t m, std::size_t B,
                          std::size_t row_stride) {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t a = 0; a < B; ++a) {
    __builtin_prefetch(data + a * row_stride + m * B, 0, 1);
  }
#else
  (void)data;
  (void)m;
  (void)B;
  (void)row_stride;
#endif
}

/// Gathers tile `m` into buf so that write-back rows come out sequential:
/// buf[t * B + rev_b(a)] = data[a * row_stride + m * B + t]. The reads are
/// contiguous B-element runs; the strided writes land in the cache-resident
/// buffer.
void load_tile(const cplx* data, cplx* buf, std::size_t m, std::size_t B,
               std::size_t row_stride, const std::uint32_t* rev_tile) {
  for (std::size_t a = 0; a < B; ++a) {
    const cplx* src = data + a * row_stride + m * B;
    cplx* col = buf + rev_tile[a];
    for (std::size_t t = 0; t < B; ++t) col[t * B] = src[t];
  }
}

/// Writes tile `m` from a buffered source tile: destination row t' of tile m
/// is buffer row rev_b(t'), optionally passing through the fused opener.
/// Derivation: dst (t', m, a') holds src (rev_b(a'), m_src, rev_b(t')),
/// which load_tile stored at buf[rev_b(t') * B + a'].
void store_tile(cplx* data, const cplx* buf, std::size_t m, std::size_t B,
                std::size_t row_stride, const std::uint32_t* rev_tile,
                const simd::FftKernels& kernels,
                CobraBitReversal::Opener opener, bool inverse) {
  using Opener = CobraBitReversal::Opener;
  for (std::size_t t = 0; t < B; ++t) {
    cplx* dst = data + t * row_stride + m * B;
    const cplx* row = buf + static_cast<std::size_t>(rev_tile[t]) * B;
    switch (opener) {
      case Opener::kNone:
        std::memcpy(dst, row, B * sizeof(cplx));
        break;
      case Opener::kRadix2Pairs:
        kernels.radix2_stage0_from(dst, row, B);
        break;
      case Opener::kRadix4First:
        kernels.radix4_first_stage_from(dst, row, B, inverse);
        break;
    }
  }
}

}  // namespace

void CobraBitReversal::run(cplx* data, Opener opener, bool inverse) const {
  assert(opener == Opener::kNone || b_ >= 2);
  const std::size_t B = std::size_t{1} << b_;
  const std::size_t row_stride = std::size_t{1} << (mid_ + b_);
  const auto& kernels = simd::fft_kernels();
  // One tile pair in flight; per-thread so shared plans stay reentrant.
  static thread_local std::vector<cplx> buffer;
  buffer.resize(2 * B * B);
  cplx* buf0 = buffer.data();
  cplx* buf1 = buffer.data() + B * B;
  for (std::size_t p = 0; p + 1 < mid_pairs_.size(); p += 2) {
    const std::size_t m = mid_pairs_[p];
    const std::size_t mr = mid_pairs_[p + 1];
    if (m != mr) prefetch_tile(data, mr, B, row_stride);
    load_tile(data, buf0, m, B, row_stride, rev_tile_.data());
    if (m == mr) {
      // Self-paired middle: the tile maps onto itself through the buffer.
      store_tile(data, buf0, m, B, row_stride, rev_tile_.data(), kernels,
                 opener, inverse);
      continue;
    }
    load_tile(data, buf1, mr, B, row_stride, rev_tile_.data());
    store_tile(data, buf1, m, B, row_stride, rev_tile_.data(), kernels,
               opener, inverse);
    store_tile(data, buf0, mr, B, row_stride, rev_tile_.data(), kernels,
               opener, inverse);
  }
}

void CobraBitReversal::run_copy(cplx* dst, const cplx* src, Opener opener,
                                bool inverse) const {
  assert(opener == Opener::kNone || b_ >= 2);
  const std::size_t B = std::size_t{1} << b_;
  const std::size_t row_stride = std::size_t{1} << (mid_ + b_);
  const auto& kernels = simd::fft_kernels();
  static thread_local std::vector<cplx> buffer;
  buffer.resize(B * B);
  cplx* buf = buffer.data();
  const std::size_t mids = std::size_t{1} << mid_;
  // dst tile d <- src tile rev_m(d); no pairing needed out of place. The
  // walk is ordered by DESTINATION middle so the write-back streams through
  // dst sequentially within each row region — the scattered side is the
  // loads, which the explicit prefetch of the next source tile covers.
  for (std::size_t d = 0; d < mids; ++d) {
    if (d + 1 < mids) {
      prefetch_tile(src, reverse_bits(d + 1, mid_), B, row_stride);
    }
    load_tile(src, buf, reverse_bits(d, mid_), B, row_stride,
              rev_tile_.data());
    store_tile(dst, buf, d, B, row_stride, rev_tile_.data(), kernels, opener,
               inverse);
  }
}

}  // namespace ftfft::fft
