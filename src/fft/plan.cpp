#include "fft/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/env.hpp"
#include "common/math_util.hpp"
#include "common/plan_registry.hpp"
#include "dft/codelets.hpp"
#include "fft/executor.hpp"

namespace ftfft::fft {
namespace {

// Factors the planner may use as the combine radix, best first. Larger
// radices mean fewer passes over the data.
constexpr std::size_t kRadixPreference[] = {16, 8, 5, 4, 3, 2};

// Sizes up to this bound that are not divisible by any preferred radix run
// as a generic O(n^2) codelet; beyond it Bluestein wins.
constexpr std::size_t kMaxGenericCodelet = 32;

std::shared_ptr<const PlanNode> build_plan(std::size_t n);

std::shared_ptr<const PlanNode> build_codelet(std::size_t n) {
  auto node = std::make_shared<PlanNode>();
  node->n = n;
  node->kind = PlanNode::Kind::kCodelet;
  return node;
}

std::shared_ptr<const PlanNode> build_cooley_tukey(std::size_t n,
                                                   std::size_t r) {
  auto node = std::make_shared<PlanNode>();
  node->n = n;
  node->kind = PlanNode::Kind::kCooleyTukey;
  node->radix = r;
  const std::size_t m = n / r;
  node->sub = build_plan(m);
  node->twiddles.resize((r - 1) * m);
  for (std::size_t t1 = 1; t1 < r; ++t1) {
    for (std::size_t k1 = 0; k1 < m; ++k1) {
      node->twiddles[(t1 - 1) * m + k1] =
          omega(n, static_cast<std::uint64_t>(t1) * k1);
    }
  }
  node->scratch_need = node->sub->scratch_need;
  return node;
}

std::shared_ptr<const PlanNode> build_bluestein(std::size_t n) {
  auto node = std::make_shared<PlanNode>();
  node->n = n;
  node->kind = PlanNode::Kind::kBluestein;
  node->conv_n = next_pow2(2 * n - 1);
  // chirp c[t] = exp(-pi i t^2 / n) = omega(2n, t^2 mod 2n).
  node->chirp.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint64_t sq =
        (static_cast<std::uint64_t>(t) * t) % (2 * n);
    node->chirp[t] = omega(2 * n, sq);
  }
  // b[t] = conj(c[|t|]) wrapped cyclically into the convolution buffer.
  std::vector<cplx> b(node->conv_n, cplx{0.0, 0.0});
  b[0] = std::conj(node->chirp[0]);
  for (std::size_t t = 1; t < n; ++t) {
    b[t] = std::conj(node->chirp[t]);
    b[node->conv_n - t] = std::conj(node->chirp[t]);
  }
  node->conv_plan = build_plan(node->conv_n);
  // conv_n is a power of two, so conv_plan needs no scratch of its own and
  // the Bluestein scratch layout in the executor (2 * conv_n) is exact.
  node->chirp_fft.resize(node->conv_n);
  std::vector<cplx> chirp_fft_scratch;  // pow2 plan: no scratch needed
  execute_plan(*node->conv_plan, b.data(), 1, node->chirp_fft.data(), 1,
               nullptr);
  node->scratch_need = 2 * node->conv_n;
  return node;
}

std::shared_ptr<const PlanNode> build_plan(std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_plan: n must be >= 1");
  if (dft::has_unrolled_codelet(n)) return build_codelet(n);
  for (std::size_t r : kRadixPreference) {
    if (n % r == 0 && n / r > 1) {
      // Guard: only split when the cofactor is still worth recursing on;
      // n == r was already handled by the codelet check above.
      return build_cooley_tukey(n, r);
    }
  }
  if (n <= kMaxGenericCodelet) return build_codelet(n);
  return build_bluestein(n);
}

}  // namespace

void collect_plan_state(const PlanNode& node, StateSpans& out) {
  out.add_vec(node.twiddles);
  out.add_vec(node.chirp);
  out.add_vec(node.chirp_fft);
  if (node.sub) collect_plan_state(*node.sub, out);
  if (node.conv_plan) collect_plan_state(*node.conv_plan, out);
}

namespace {

std::uint64_t seal_plan_node(const PlanNode& root) {
  StateSpans spans;
  collect_plan_state(root, spans);
  return seal_spans(spans);
}

PlanRegistry<std::size_t, PlanNode>& plan_registry() {
  static PlanRegistry<std::size_t, PlanNode> registry(plan_cache_capacity(),
                                                      seal_plan_node);
  return registry;
}

// Enroll in plan_cache_stats() / scrub_plan_caches() before main. The
// lambdas are lazy on purpose: the registry (and its FTFFT_PLAN_CACHE_CAP /
// FTFFT_PLAN_VERIFY reads) is only materialized at first use or first stats
// call, never during static initialization.
const bool plan_registry_registered =
    (ftfft::detail::register_plan_cache(ftfft::detail::PlanCacheHooks{
         [] { return plan_registry().snapshot("fft-plan"); },
         [] { return plan_registry().scrub(); },
         [](std::size_t k) { plan_registry().set_verify_interval(k); }}),
     true);

}  // namespace

std::shared_ptr<const PlanNode> make_plan(std::size_t n) {
  // LRU-bounded by FTFFT_PLAN_CACHE_CAP; the builder runs outside the
  // registry lock because plan construction may be slow for large n.
  // Eviction of a root node releases its whole subtree (sub-plans are not
  // cached individually).
  return plan_registry().get_or_build(n, [n] { return build_plan(n); });
}

std::string describe_plan(const PlanNode& node) {
  std::ostringstream out;
  const PlanNode* cur = &node;
  bool first = true;
  while (cur != nullptr) {
    if (!first) out << " -> ";
    first = false;
    switch (cur->kind) {
      case PlanNode::Kind::kCodelet:
        out << "codelet(" << cur->n << ")";
        cur = nullptr;
        break;
      case PlanNode::Kind::kCooleyTukey:
        out << "ct(n=" << cur->n << ",r=" << cur->radix << ")";
        cur = cur->sub.get();
        break;
      case PlanNode::Kind::kBluestein:
        out << "bluestein(n=" << cur->n << ",conv=" << cur->conv_n << ")";
        cur = cur->conv_plan.get();
        break;
    }
  }
  return out.str();
}

}  // namespace ftfft::fft
