// Strided recursive executor for FFT plan trees.
//
// Scratch contract: `scratch` must point at `plan.scratch_need` writable
// complex elements (nullptr allowed when scratch_need == 0). Only Bluestein
// nodes consume scratch — 2*conv_n elements from offset 0 — and a plan tree
// can never nest one Bluestein inside another (the convolution size is a
// power of two, which plans to pure Cooley-Tukey), so a single region sized
// by the tree maximum is sufficient and offsets never collide.
#pragma once

#include <cstddef>

#include "common/complex.hpp"
#include "fft/plan.hpp"

namespace ftfft::fft {

/// Executes a forward DFT along the plan. `in` (stride `is`) and `out`
/// (stride `os`) must not overlap. Not normalized.
void execute_plan(const PlanNode& plan, const cplx* in, std::size_t is,
                  cplx* out, std::size_t os, cplx* scratch);

}  // namespace ftfft::fft
