#include "fft/fft.hpp"

#include <stdexcept>

#include "common/math_util.hpp"
#include "fft/executor.hpp"
#include "fft/inplace_radix2.hpp"

namespace ftfft::fft {

Fft::Fft(std::size_t n, Direction dir)
    : n_(n), dir_(dir), plan_(make_plan(n)) {
  scratch_.resize(plan_->scratch_need);
  if (dir_ == Direction::kInverse || !is_pow2(n_)) dir_scratch_.resize(n_);
}

void Fft::execute(const cplx* in, cplx* out) {
  execute_strided(in, 1, out, 1);
}

void Fft::execute_strided(const cplx* in, std::size_t is, cplx* out,
                          std::size_t os) {
  if (dir_ == Direction::kForward) {
    execute_plan(*plan_, in, is, out, os, scratch_.data());
    return;
  }
  // Inverse via conjugation: idft(x) = conj(dft(conj(x))) / n.
  for (std::size_t t = 0; t < n_; ++t)
    dir_scratch_[t] = std::conj(in[t * is]);
  execute_plan(*plan_, dir_scratch_.data(), 1, out, os, scratch_.data());
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t t = 0; t < n_; ++t)
    out[t * os] = std::conj(out[t * os]) * inv_n;
}

void Fft::execute_inplace(cplx* data) {
  if (is_pow2(n_)) {
    const auto plan = InplaceRadix2Plan::get(n_);
    if (dir_ == Direction::kForward) {
      plan->forward(data);
    } else {
      plan->inverse(data);
    }
    return;
  }
  if (dir_scratch_.size() < n_) dir_scratch_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) dir_scratch_[t] = data[t];
  if (dir_ == Direction::kForward) {
    execute_plan(*plan_, dir_scratch_.data(), 1, data, 1, scratch_.data());
  } else {
    for (std::size_t t = 0; t < n_; ++t)
      dir_scratch_[t] = std::conj(dir_scratch_[t]);
    execute_plan(*plan_, dir_scratch_.data(), 1, data, 1, scratch_.data());
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t t = 0; t < n_; ++t) data[t] = std::conj(data[t]) * inv_n;
  }
}

std::string Fft::describe() const { return describe_plan(*plan_); }

std::vector<cplx> fft(const std::vector<cplx>& in) {
  std::vector<cplx> out(in.size());
  Fft engine(in.size(), Direction::kForward);
  engine.execute(in.data(), out.data());
  return out;
}

std::vector<cplx> ifft(const std::vector<cplx>& in) {
  std::vector<cplx> out(in.size());
  Fft engine(in.size(), Direction::kInverse);
  engine.execute(in.data(), out.data());
  return out;
}

}  // namespace ftfft::fft
