// Iterative in-place radix-2 FFT for power-of-two sizes.
//
// This is the "in-place, no auxiliary O(N) array" engine the parallel scheme
// of the paper relies on (section 5): bit-reversal permutation followed by
// log2(n) butterfly stages over the data itself. The ABFT in-place
// protection (src/abft/inplace.hpp) wraps this engine, which is exactly why
// it exists separately from the recursive out-of-place executor.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/complex.hpp"

namespace ftfft::fft {

/// Precomputed bit-reversal permutation + half twiddle table for one size.
/// Immutable after construction; shareable across threads.
class InplaceRadix2Plan {
 public:
  /// n must be a power of two >= 1.
  explicit InplaceRadix2Plan(std::size_t n);

  /// Forward DFT of data[0..n) in place, unit stride, not normalized.
  void forward(cplx* data) const;

  /// Inverse DFT (1/n normalized) in place.
  void inverse(cplx* data) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Shared, cached plan for the given size. Thread-safe.
  static std::shared_ptr<const InplaceRadix2Plan> get(std::size_t n);

 private:
  void run(cplx* data, bool inverse) const;

  std::size_t n_;
  unsigned log2n_;
  std::vector<std::size_t> bit_reverse_;  // only entries with i < rev(i)
  std::vector<cplx> twiddle_half_;        // omega_n^k, k in [0, n/2)
};

}  // namespace ftfft::fft
