// Iterative in-place FFT for power-of-two sizes.
//
// This is the "in-place, no auxiliary O(N) array" engine the parallel scheme
// of the paper relies on (section 5): bit-reversal permutation followed by
// butterfly stages over the data itself. The ABFT in-place protection
// (src/abft/inplace.hpp) wraps this engine, which is exactly why it exists
// separately from the recursive out-of-place executor.
//
// The default execution path fuses pairs of radix-2 stages into radix-4
// butterflies (half the passes over the data, same bit-reversed input
// ordering); when log2(n) is odd the first stage runs as a twiddle-free
// radix-2 sweep. The pure radix-2 schedule is kept accessible for
// measurement and cross-checking.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/complex.hpp"

namespace ftfft::fft {

/// Precomputed bit-reversal permutation + half twiddle table for one size.
/// Immutable after construction; shareable across threads.
class InplaceRadix2Plan {
 public:
  /// n must be a power of two >= 1.
  explicit InplaceRadix2Plan(std::size_t n);

  /// Forward DFT of data[0..n) in place, unit stride, not normalized.
  /// Runs the fused radix-4 schedule.
  void forward(cplx* data) const;

  /// Inverse DFT (1/n normalized) in place.
  void inverse(cplx* data) const;

  /// Forward DFT via the classic one-stage-per-level radix-2 schedule.
  /// Mathematically identical to forward() up to rounding; kept for the
  /// radix-2 vs radix-4 benchmarks and correctness cross-checks.
  void forward_radix2(cplx* data) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Shared, cached plan for the given size. Thread-safe.
  static std::shared_ptr<const InplaceRadix2Plan> get(std::size_t n);

 private:
  void run_radix2(cplx* data, bool inverse) const;
  void run_radix4(cplx* data, bool inverse) const;
  void permute(cplx* data) const;

  /// One fused (radix-4) stage of the default schedule. The twiddles for
  /// butterfly j of the stage — w1 = omega_{len/2}^j and w2 = omega_{len}^j
  /// — are repacked contiguously in j (offsets into stage_twiddles_) so the
  /// SIMD kernels load them with unit stride instead of gathering from
  /// twiddle_half_ at a per-stage stride.
  struct FusedStage {
    std::size_t len;     ///< block length 2^(s+1)
    std::size_t w1_off;  ///< quarter = len/4 entries
    std::size_t w2_off;  ///< quarter entries
  };

  std::size_t n_;
  unsigned log2n_;
  std::vector<std::size_t> bit_reverse_;  // only entries with i < rev(i)
  std::vector<cplx> twiddle_half_;        // omega_n^k, k in [0, n/2)
  std::vector<FusedStage> stages_;        // fused radix-4 schedule
  std::vector<cplx> stage_twiddles_;      // packed per-stage w1/w2 runs
};

}  // namespace ftfft::fft
