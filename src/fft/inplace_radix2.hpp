// Iterative in-place FFT for power-of-two sizes.
//
// This is the "in-place, no auxiliary O(N) array" engine the parallel scheme
// of the paper relies on (section 5): bit-reversal permutation followed by
// butterfly stages over the data itself. The ABFT in-place protection
// (src/abft/inplace.hpp) wraps this engine, which is exactly why it exists
// separately from the recursive out-of-place executor.
//
// Execution paths, slowest to fastest:
//   * forward_radix2(): one radix-2 pass per level, pair-swap permutation.
//     Kept for measurement and cross-checking.
//   * forward_radix4_reference() / inverse_radix4_reference(): the PR 4
//     schedule — pair-swap permutation, fused radix-4 stages (cache-blocked
//     for len <= the window), whole-array radix-4 passes for the tail, and a
//     separate 1/n sweep on the inverse. Retained as the bit-exact reference
//     for the optimized path.
//   * forward() / inverse(): the memory-optimized path. Above a size
//     threshold the pair-swap permutation is replaced by a COBRA
//     cache-blocked bit-reversal (fft/bit_reversal.hpp) with the twiddle-free
//     opener stage fused into the tile write-back; the whole-array tail
//     (stage len > cache window) fuses pairs of consecutive radix-4 stages
//     into radix-16 passes (four radix-2 levels per streaming pass — chosen
//     over three-level radix-8 groups because those misalign with the
//     radix-4 pairing and cannot reproduce its FMA rounding bit-for-bit,
//     while radix-16 reuses the packed stage twiddles unchanged); and the
//     inverse folds its 1/n scaling into the final stage's stores. All of it
//     is bit-identical to the *_radix4_reference() schedule: permutation and
//     tiling reorder no butterfly, the radix-16 pass performs the two
//     stages' exact operation sequences in registers, and the fused scaling
//     multiplies already-rounded butterfly results (verified by
//     tests/test_inplace_optimized.cpp on every backend).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/complex.hpp"
#include "fft/bit_reversal.hpp"

namespace ftfft::fft {

/// Memory-hierarchy tuning knobs of the in-place engine. Defaults come from
/// default_inplace_tuning() (env-overridable); tests and benches construct
/// plans with explicit values to force every code path at small sizes.
struct InplaceTuning {
  /// log2 of the cache window (in elements) for stage blocking: stages with
  /// len <= 2^block_log2 run window-by-window in one streaming pass. The
  /// default 2^16 elements = 1 MiB (half the dev box's 2 MiB L2) measured
  /// fastest and leaves a 4-level tail at 2^20 — exactly one radix-16 pass.
  /// The reference path always blocks at PR 4's 2^15 so the baseline stays
  /// faithful (blocking is bit-neutral, so outputs still match bit-for-bit).
  unsigned block_log2 = 16;
  /// COBRA tile field width b (tile = 2^b x 2^b elements, clamped to
  /// log2(n)/2). 2^(2b+1) elements of thread-local buffer are live per run;
  /// b = 4 keeps the two tiles L1-resident (8 KiB) and measured fastest
  /// from 2^12 through 2^20 on AVX2 (b = 5 within noise, b = 6 slower).
  unsigned cobra_tile_bits = 4;
  /// Sizes below 2^cobra_min_log2 keep the pair-swap permutation (the
  /// scattered walk is cache-resident and cheaper than tiling there).
  unsigned cobra_min_log2 = 12;
};

/// Default tuning: InplaceTuning's initializers, overridable via the
/// FTFFT_INPLACE_BLOCK_LOG2 / FTFFT_COBRA_TILE_BITS / FTFFT_COBRA_MIN_LOG2
/// environment variables (read once per call; plans latch values at
/// construction).
[[nodiscard]] InplaceTuning default_inplace_tuning();

/// Precomputed bit-reversal permutation + twiddle tables for one size.
/// Immutable after construction; shareable across threads.
class InplaceRadix2Plan {
 public:
  /// n must be a power of two >= 1. Uses default_inplace_tuning().
  explicit InplaceRadix2Plan(std::size_t n);
  InplaceRadix2Plan(std::size_t n, const InplaceTuning& tuning);

  /// Forward DFT of data[0..n) in place, unit stride, not normalized.
  void forward(cplx* data) const;

  /// Out-of-place forward DFT (dst = FFT(src), src untouched, dst/src
  /// disjoint), bit-identical to copying src into dst and calling
  /// forward(). Above the COBRA threshold the bit-reversal gathers straight
  /// from src (CobraBitReversal::run_copy), so against copy+forward this
  /// saves one full read+write sweep of the array — the reason the real
  /// r2c packing uses it instead of its original memcpy.
  void forward_copy(const cplx* src, cplx* dst) const;

  /// Descriptor of the final whole-array butterfly pass withheld by
  /// forward_open_last() / forward_copy_open_last(): one radix-4 pass
  /// (radix == 4; twiddle packs w1a/w2a, n/4 entries) or one fused
  /// radix-16 pass (radix == 16; inner packs w1a/w2a, outer w1b/w2b) of
  /// block length n. Applying it through the matching kernel completes the
  /// forward transform exactly as forward() would have.
  struct OpenLastStage {
    int radix;        ///< 4 or 16
    const cplx* w1a;
    const cplx* w2a;
    const cplx* w1b;  ///< radix-16 only, else nullptr
    const cplx* w2b;  ///< radix-16 only, else nullptr
  };

  /// forward() minus the final whole-array butterfly pass, in place;
  /// returns that pass's descriptor. The real r2c path completes the
  /// transform through the fused last-stage + Hermitian-unpack kernels
  /// (simd r2c_last_stage4/16), which deletes the separate unpack sweep —
  /// the reason the stage is handed back instead of executed. Requires
  /// n >= 8 (smaller schedules end in an opener that cannot be split off).
  OpenLastStage forward_open_last(cplx* data) const;

  /// forward_copy() minus the final pass; see forward_open_last().
  OpenLastStage forward_copy_open_last(const cplx* src, cplx* dst) const;

  /// Checksum dots accumulated by forward_fused().
  struct FusedDots {
    cplx in_sum{0.0, 0.0};    ///< sum_j w_in[j] * src[j] (w_in != nullptr)
    double in_energy = 0.0;   ///< sum_j |src[j]|^2 (w_in != nullptr)
    cplx out_sum{0.0, 0.0};   ///< sum_j w_out[j] * dst[j]
  };

  /// Out-of-place forward DFT (dst = FFT(src), src untouched, dst/src
  /// disjoint) with the ABFT checksum dots fused into the streaming passes
  /// (TurboFFT-style, see ROADMAP). The weighted input checksum + energy
  /// always ride on the src -> dst copy (w_in == nullptr skips them) with
  /// the exact accumulator structure of the separate sweep, so in_sum /
  /// in_energy are bit-identical to it per backend. The weighted output
  /// checksum is regime-dependent, picking whichever side of the trade
  /// measures faster:
  ///  * tail (DRAM-streaming) schedule: the final butterfly stage
  ///    accumulates it in spare registers (radix4/16_stage_cs), saving a
  ///    whole read sweep of dst; re-association vs the separate sweep is
  ///    documented in simd/kernels_impl.hpp.
  ///  * single-window (cache-resident) schedule: dst is still hot after the
  ///    last stage, where the weight-free 3-bucket omega3 sweep is cheaper
  ///    than in-loop weight loads — out_sum is then the same dispatched
  ///    sweep the separate path runs, hence bit-identical to it.
  /// dst is bit-identical to forward() run on a permuted copy of src in
  /// both regimes: the butterfly kernels are shared, and the single-window
  /// schedule's radix-16 stage pairing is a bit-exact re-schedule.
  ///
  /// `hook` (optional) is invoked on dst immediately *before* the final
  /// checksum-relevant pass (the cs-stage in the tail regime, the output
  /// sweep in the single-window regime): fault injection there propagates
  /// into both the outputs and the fused output checksum consistently,
  /// which is what keeps a post-transform verify against an independently
  /// derived checksum meaningful (the guarded window of an in-kernel
  /// checksum ends at the last store).
  void forward_fused(const cplx* src, cplx* dst, const cplx* w_in,
                     const cplx* w_out, FusedDots& dots,
                     void (*hook)(void*, cplx*, std::size_t) = nullptr,
                     void* hook_ctx = nullptr) const;

  /// Inverse DFT (1/n normalized) in place.
  void inverse(cplx* data) const;

  /// Forward DFT via the classic one-stage-per-level radix-2 schedule.
  /// Mathematically identical to forward() up to rounding; kept for the
  /// radix-2 vs radix-4 benchmarks and correctness cross-checks.
  void forward_radix2(cplx* data) const;

  /// The retained PR 4 schedule (pair-swap permute + radix-4 stages); the
  /// optimized forward()/inverse() must match these bit-for-bit.
  void forward_radix4_reference(cplx* data) const;
  void inverse_radix4_reference(cplx* data) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // ------------------------------------------------------------------
  // Isolated pipeline pieces, exposed for benches (permute-only and
  // per-stage-group timing rows in bench_micro_fft) and property tests.

  /// Pair-swap bit-reversal permutation (the reference walk).
  void permute_pairswap(cplx* data) const;
  /// COBRA cache-blocked permutation; falls back to the pair-swap walk when
  /// the plan is below the COBRA threshold (cobra_enabled() == false).
  void permute_cobra(cplx* data) const;
  /// COBRA permutation with the twiddle-free opener fused into tile
  /// write-back (forward direction). Requires cobra_enabled().
  void permute_cobra_fused_opener(cplx* data) const;
  /// The cache-blocked small-stage pass (one streaming pass over the array).
  void blocked_stages_pass(cplx* data, bool include_opener) const;
  /// The whole-array tail passes (radix-16 / radix-4 stages beyond the
  /// cache window). No-op when the whole transform fits one window.
  void tail_stages_pass(cplx* data) const;

  [[nodiscard]] bool cobra_enabled() const noexcept {
    return cobra_ != nullptr;
  }
  [[nodiscard]] unsigned cobra_tile_bits() const noexcept {
    return cobra_ ? cobra_->tile_bits() : 0;
  }
  /// Tail pass counts, for tests pinning the schedule shape.
  [[nodiscard]] std::size_t tail_radix16_stages() const noexcept;
  [[nodiscard]] std::size_t tail_radix4_stages() const noexcept;

  /// Shared, cached plan for the given size (default tuning). Thread-safe.
  static std::shared_ptr<const InplaceRadix2Plan> get(std::size_t n);

  /// Appends every cached immutable payload — permutation tables, twiddle
  /// packs, stage schedules, COBRA tile metadata — to `out`. The span list
  /// is the unit of plan-state sealing (common/seal.hpp) and of
  /// Phase::kPlanState fault addressing: a flipped bit in any span changes
  /// the registry seal and evicts the entry at the next verified acquire.
  void collect_state(StateSpans& out) const {
    out.add_vec(bit_reverse_);
    out.add_vec(twiddle_half_);
    out.add_vec(stages_);
    out.add_vec(stage_twiddles_);
    out.add_vec(tail_);
    if (cobra_) cobra_->collect_state(out);
  }

 private:
  void run_radix2(cplx* data, bool inverse) const;
  void run_radix4_reference(cplx* data, bool inverse) const;
  void run_optimized(cplx* data, bool inverse) const;
  OpenLastStage open_last_stages(cplx* data, bool opener_fused) const;
  void blocked_pass(cplx* data, bool inverse, bool skip_opener, double scale,
                    unsigned block_log2, std::size_t stage_count) const;
  void tail_pass(cplx* data, bool inverse, double scale) const;

  /// One fused (radix-4) stage of the reference schedule. The twiddles for
  /// butterfly j of the stage — w1 = omega_{len/2}^j and w2 = omega_{len}^j
  /// — are repacked contiguously in j (offsets into stage_twiddles_) so the
  /// SIMD kernels load them with unit stride instead of gathering from
  /// twiddle_half_ at a per-stage stride.
  struct FusedStage {
    std::size_t len;     ///< block length 2^(s+1)
    std::size_t w1_off;  ///< quarter = len/4 entries
    std::size_t w2_off;  ///< quarter entries
  };

  /// One whole-array pass of the optimized tail. A radix-16 pass is two
  /// consecutive radix-4 stages fused in registers; both kinds reference the
  /// shared stage_twiddles_ packs unchanged (a/b = inner/outer stage).
  struct TailStage {
    int radix;  ///< 4 or 16
    std::size_t len;
    std::size_t w1a_off;
    std::size_t w2a_off;
    std::size_t w1b_off;  ///< radix-16 only
    std::size_t w2b_off;  ///< radix-16 only
  };

  std::size_t n_;
  unsigned log2n_;
  unsigned block_log2_;
  std::vector<std::size_t> bit_reverse_;  // only entries with i < rev(i)
  std::vector<cplx> twiddle_half_;        // omega_n^k, k in [0, n/2)
  std::vector<FusedStage> stages_;        // fused radix-4 schedule
  std::vector<cplx> stage_twiddles_;      // packed per-stage w1/w2 runs
  std::size_t blocked_stage_count_;       // stages_ with len <= cache window
  std::size_t ref_blocked_stage_count_;   // same split at the PR 4 window
  std::vector<TailStage> tail_;           // optimized whole-array tail
  std::unique_ptr<CobraBitReversal> cobra_;  // null below the threshold
};

}  // namespace ftfft::fft
