// FFT-based FIR filtering with end-to-end soft-error protection.
//
// Convolution via the protected transform: forward FFT of the signal and
// the kernel, pointwise product, protected inverse FFT. Two fault drills
// run against the filter:
//
//  1. A single memory fault injected into the forward transform's input
//     after checksum generation — the paper's dual checksums locate and
//     repair the element.
//  2. A two-element burst in the same protected block. Two simultaneous
//     errors are outside the dual-checksum fault model, so the drill opts
//     into the multi-error budget (PlanConfig::max_correctable_errors = 2,
//     PR 9): the 2t-moment syndrome decoder locates both corrupted
//     elements, solves for the deltas, and the filtered output again
//     matches the fault-free run to round-off.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/ftfft.hpp"

namespace {

using namespace ftfft;

// Low-pass FIR kernel (windowed sinc), zero-padded to n.
std::vector<cplx> lowpass_kernel(std::size_t n, std::size_t taps,
                                 double cutoff) {
  std::vector<cplx> h(n, cplx{0.0, 0.0});
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < taps; ++t) {
    const double x = static_cast<double>(t) - mid;
    const double sinc =
        x == 0.0 ? 2.0 * cutoff
                 : std::sin(2.0 * std::numbers::pi * cutoff * x) /
                       (std::numbers::pi * x);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * t / (taps - 1));
    h[t] = {sinc * hamming, 0.0};
    sum += h[t].real();
  }
  for (std::size_t t = 0; t < taps; ++t) h[t] /= sum;
  return h;
}

struct FilterResult {
  std::vector<cplx> out;
  abft::Stats forward_stats;  // stats of the (fault-drilled) forward pass
};

FilterResult filter(FtPlan& plan, std::vector<cplx> signal,
                    const std::vector<cplx>& kernel_freq) {
  const std::size_t n = signal.size();
  auto freq = plan.forward(std::move(signal));
  FilterResult r;
  r.forward_stats = plan.last_stats();
  for (std::size_t j = 0; j < n; ++j) freq[j] *= kernel_freq[j];
  r.out.resize(n);
  plan.backward(freq.data(), r.out.data());
  return r;
}

double max_deviation(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double worst = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    worst = std::max(worst, std::abs(a[j] - b[j]));
  }
  return worst;
}

double band_energy(const std::vector<cplx>& spectrum, std::size_t lo,
                   std::size_t hi) {
  double e = 0.0;
  for (std::size_t j = lo; j < hi; ++j) e += norm2(spectrum[j]);
  return e;
}

}  // namespace

int main() {
  const std::size_t n = 1 << 14;

  // Signal: a wanted low tone plus out-of-band interference plus noise.
  std::vector<cplx> signal(n);
  Rng rng(7);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t);
    signal[t] = {std::sin(2.0 * std::numbers::pi * 100.0 * x / n) +
                     0.8 * std::sin(2.0 * std::numbers::pi * 6000.0 * x / n) +
                     0.05 * rng.normal(),
                 0.0};
  }

  FtPlan plan(n);
  const auto kernel_freq = plan.forward(lowpass_kernel(n, 129, 0.05));

  // Fault-free filtering.
  const auto clean = filter(plan, signal, kernel_freq).out;

  // Check the filter actually filtered: compare band energies.
  FtPlan analysis(n);
  const auto spec_before = analysis.forward(signal);
  const auto spec_after = analysis.forward(clean);
  std::printf("FFT low-pass filter, n = %zu, 129-tap windowed sinc\n", n);
  std::printf("  passband (bin 100) energy ratio after/before: %.2f\n",
              band_energy(spec_after, 90, 110) /
                  band_energy(spec_before, 90, 110));
  std::printf("  stopband (bin 6000) energy ratio after/before: %.2e\n",
              band_energy(spec_after, 5990, 6010) /
                  band_energy(spec_before, 5990, 6010));

  // Drill 1: a single memory fault during filtering, repaired by the dual
  // checksums at the default budget.
  fault::Injector single;
  single.schedule(fault::FaultSpec::memory_set(
      fault::Phase::kInputAfterChecksum, 0, 5000, {1000.0, -1000.0}));
  PlanConfig cfg;
  cfg.injector = &single;
  FtPlan faulty_plan(n, cfg);
  const double worst_single =
      max_deviation(filter(faulty_plan, signal, kernel_freq).out, clean);
  std::printf("drill 1: one 1000-magnitude memory fault (budget t = 1):\n");
  std::printf("  fired: %zu, max deviation from fault-free output: %.3e\n",
              single.fired_count(), worst_single);

  // Drill 2: a two-element burst in one protected block. The offline scheme
  // checksums the whole input as a single block, so any two indices collide;
  // max_correctable_errors = 2 arms the 2t-moment syndrome decoder.
  fault::Injector burst;
  burst.schedule(fault::FaultSpec::memory_set(
      fault::Phase::kInputAfterChecksum, 0, 3000, {750.0, -250.0}));
  burst.schedule(fault::FaultSpec::memory_set(
      fault::Phase::kInputAfterChecksum, 0, 11000, {-500.0, 900.0}));
  PlanConfig burst_cfg;
  burst_cfg.protection = Protection::kOffline;
  burst_cfg.max_correctable_errors = 2;
  burst_cfg.injector = &burst;
  FtPlan burst_plan(n, burst_cfg);
  const auto drilled = filter(burst_plan, signal, kernel_freq);
  const double worst_burst = max_deviation(drilled.out, clean);
  std::printf("drill 2: two simultaneous faults in one block (budget t = 2):\n");
  std::printf(
      "  fired: %zu, elements decoded by the syndrome path: %zu, "
      "max deviation from fault-free output: %.3e\n",
      burst.fired_count(), drilled.forward_stats.multi_errors_corrected,
      worst_burst);

  const bool ok = worst_single < 1e-6 && worst_burst < 1e-6 &&
                  single.fired_count() == 1 && burst.fired_count() == 2 &&
                  drilled.forward_stats.multi_errors_corrected == 2;
  return ok ? 0 : 1;
}
