// FFT-based FIR filtering with end-to-end soft-error protection.
//
// Convolution via the protected transform: forward FFT of the signal and
// the kernel, pointwise product, protected inverse FFT. A memory fault is
// injected into the forward transform's input after checksum generation;
// the dual checksums locate and repair the element, and the filtered output
// matches the fault-free run to round-off.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/ftfft.hpp"

namespace {

using namespace ftfft;

// Low-pass FIR kernel (windowed sinc), zero-padded to n.
std::vector<cplx> lowpass_kernel(std::size_t n, std::size_t taps,
                                 double cutoff) {
  std::vector<cplx> h(n, cplx{0.0, 0.0});
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < taps; ++t) {
    const double x = static_cast<double>(t) - mid;
    const double sinc =
        x == 0.0 ? 2.0 * cutoff
                 : std::sin(2.0 * std::numbers::pi * cutoff * x) /
                       (std::numbers::pi * x);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * t / (taps - 1));
    h[t] = {sinc * hamming, 0.0};
    sum += h[t].real();
  }
  for (std::size_t t = 0; t < taps; ++t) h[t] /= sum;
  return h;
}

std::vector<cplx> filter(FtPlan& plan, std::vector<cplx> signal,
                         const std::vector<cplx>& kernel_freq) {
  const std::size_t n = signal.size();
  auto freq = plan.forward(std::move(signal));
  for (std::size_t j = 0; j < n; ++j) freq[j] *= kernel_freq[j];
  std::vector<cplx> out(n);
  plan.backward(freq.data(), out.data());
  return out;
}

double band_energy(const std::vector<cplx>& spectrum, std::size_t lo,
                   std::size_t hi) {
  double e = 0.0;
  for (std::size_t j = lo; j < hi; ++j) e += norm2(spectrum[j]);
  return e;
}

}  // namespace

int main() {
  const std::size_t n = 1 << 14;

  // Signal: a wanted low tone plus out-of-band interference plus noise.
  std::vector<cplx> signal(n);
  Rng rng(7);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t);
    signal[t] = {std::sin(2.0 * std::numbers::pi * 100.0 * x / n) +
                     0.8 * std::sin(2.0 * std::numbers::pi * 6000.0 * x / n) +
                     0.05 * rng.normal(),
                 0.0};
  }

  FtPlan plan(n);
  const auto kernel_freq = plan.forward(lowpass_kernel(n, 129, 0.05));

  // Fault-free filtering.
  const auto clean = filter(plan, signal, kernel_freq);

  // Filtering with an injected memory fault in the forward transform.
  fault::Injector injector;
  injector.schedule(fault::FaultSpec::memory_set(
      fault::Phase::kInputAfterChecksum, 0, 5000, {1000.0, -1000.0}));
  PlanConfig cfg;
  cfg.injector = &injector;
  FtPlan faulty_plan(n, cfg);
  const auto protected_out = filter(faulty_plan, signal, kernel_freq);

  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    worst = std::max(worst, std::abs(protected_out[j] - clean[j]));
  }

  // Check the filter actually filtered: compare band energies.
  FtPlan analysis(n);
  const auto spec_before = analysis.forward(signal);
  const auto spec_after = analysis.forward(clean);
  std::printf("FFT low-pass filter, n = %zu, 129-tap windowed sinc\n", n);
  std::printf("  passband (bin 100) energy ratio after/before: %.2f\n",
              band_energy(spec_after, 90, 110) /
                  band_energy(spec_before, 90, 110));
  std::printf("  stopband (bin 6000) energy ratio after/before: %.2e\n",
              band_energy(spec_after, 5990, 6010) /
                  band_energy(spec_before, 5990, 6010));
  std::printf("injected a 1000-magnitude memory fault during filtering:\n");
  std::printf("  corrected: %zu, max deviation from fault-free output: %.3e\n",
              injector.fired_count(), worst);
  return worst < 1e-6 ? 0 : 1;
}
