// Async serving pipeline: submit -> overlap -> get.
//
// Build & run:   ./examples/async_pipeline
//
// A serving layer receives requests in waves. Instead of blocking on every
// batch, it warms the plan caches for its known size distribution, queues
// each wave on the shared engine as it arrives, overlaps its own work
// (here: preparing the next wave) with the in-flight transforms, and
// collects BatchReports through futures — with a completion callback
// feeding a running fault-tolerance tally.
#include <atomic>
#include <cstdio>
#include <vector>

#include "core/ftfft.hpp"

int main() {
  using namespace ftfft;

  const std::size_t sizes[] = {1024, 4096};
  const std::size_t waves = 4;
  const std::size_t lanes_per_wave = 8;
  PlanConfig config;  // online ABFT + memory fault tolerance

  // 1. Startup: pre-resolve FFT plans and ProtectionPlans for the size
  // distribution this service expects, so the first request of each size
  // pays no setup (zero rA-generation passes at submission time).
  const std::size_t resident = warm_plans(sizes, config);
  std::printf("warmed %zu protection plans for %zu sizes\n", resident,
              std::size(sizes));

  // 2. Admission loop: queue each wave and immediately move on to prepare
  // the next one while workers transform the previous waves.
  struct Wave {
    std::size_t n = 0;
    std::vector<std::vector<cplx>> in, out;
    std::vector<engine::Lane> lanes;
    engine::BatchFuture future;
  };
  std::atomic<std::size_t> verifications{0};
  std::vector<Wave> inflight(waves);
  for (std::size_t w = 0; w < waves; ++w) {
    Wave& wave = inflight[w];
    wave.n = sizes[w % std::size(sizes)];
    wave.in.resize(lanes_per_wave);
    wave.out.assign(lanes_per_wave, std::vector<cplx>(wave.n));
    wave.lanes.resize(lanes_per_wave);
    for (std::size_t l = 0; l < lanes_per_wave; ++l) {
      wave.in[l] = random_vector(wave.n, InputDistribution::kUniform,
                                 1000 + 10 * w + l);
      wave.lanes[l] = {wave.in[l].data(), wave.out[l].data(), nullptr};
    }
    wave.future = submit_batch(wave.lanes, wave.n, config);
    wave.future.then([&verifications](engine::BatchReport& report) {
      // Completion callback on the worker that retired the job: feed a
      // monitoring counter without blocking anyone.
      verifications.fetch_add(report.totals.verifications,
                              std::memory_order_relaxed);
    });
    std::printf("wave %zu submitted: %zu x %zu-point transforms "
                "(pending jobs: %zu)\n",
                w, lanes_per_wave, wave.n,
                engine::BatchEngine::shared().pending_jobs());
  }

  // 3. Collection: futures complete in finish order; get() blocks only on
  // work that is still outstanding.
  for (std::size_t w = 0; w < waves; ++w) {
    const engine::BatchReport report = inflight[w].future.get();
    std::printf("wave %zu done: %zu lanes, %zu failed, %zu corrections\n", w,
                report.lanes, report.failed_lanes,
                report.totals.mem_errors_corrected);
  }
  std::printf("checksum verifications across all waves: %zu\n",
              verifications.load());
  return 0;
}
