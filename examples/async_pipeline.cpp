// Async serving pipeline: submit -> overlap -> get.
//
// Build & run:   ./examples/async_pipeline
//
// A serving layer receives requests in waves. Instead of blocking on every
// batch, it warms the plan caches for its known size distribution, queues
// each wave on the shared engine as it arrives, overlaps its own work
// (here: preparing the next wave) with the in-flight transforms, and
// collects BatchReports through futures — with a completion callback
// feeding a running fault-tolerance tally.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/ftfft.hpp"

int main() {
  using namespace ftfft;

  const std::size_t sizes[] = {1024, 4096};
  const std::size_t waves = 4;
  const std::size_t lanes_per_wave = 8;
  PlanConfig config;  // online ABFT + memory fault tolerance

  // 1. Startup: pre-resolve FFT plans and ProtectionPlans for the size
  // distribution this service expects, so the first request of each size
  // pays no setup (zero rA-generation passes at submission time).
  const std::size_t resident = warm_plans(sizes, config);
  std::printf("warmed %zu protection plans for %zu sizes\n", resident,
              std::size(sizes));

  // 2. Admission loop: queue each wave and immediately move on to prepare
  // the next one while workers transform the previous waves.
  struct Wave {
    std::size_t n = 0;
    std::vector<std::vector<cplx>> in, out;
    std::vector<engine::Lane> lanes;
    engine::BatchFuture future;
  };
  std::atomic<std::size_t> verifications{0};
  std::vector<Wave> inflight(waves);
  for (std::size_t w = 0; w < waves; ++w) {
    Wave& wave = inflight[w];
    wave.n = sizes[w % std::size(sizes)];
    wave.in.resize(lanes_per_wave);
    wave.out.assign(lanes_per_wave, std::vector<cplx>(wave.n));
    wave.lanes.resize(lanes_per_wave);
    for (std::size_t l = 0; l < lanes_per_wave; ++l) {
      wave.in[l] = random_vector(wave.n, InputDistribution::kUniform,
                                 1000 + 10 * w + l);
      wave.lanes[l] = {wave.in[l].data(), wave.out[l].data(), nullptr};
    }
    wave.future = submit_batch(wave.lanes, wave.n, config);
    wave.future.then([&verifications](engine::BatchReport& report) {
      // Completion callback on the worker that retired the job: feed a
      // monitoring counter without blocking anyone.
      verifications.fetch_add(report.totals.verifications,
                              std::memory_order_relaxed);
    });
    std::printf("wave %zu submitted: %zu x %zu-point transforms "
                "(pending jobs: %zu)\n",
                w, lanes_per_wave, wave.n,
                engine::BatchEngine::shared().pending_jobs());
  }

  // 3. Collection: futures complete in finish order; get() blocks only on
  // work that is still outstanding.
  for (std::size_t w = 0; w < waves; ++w) {
    const engine::BatchReport report = inflight[w].future.get();
    std::printf("wave %zu done: %zu lanes, %zu failed, %zu corrections\n", w,
                report.lanes, report.failed_lanes,
                report.totals.mem_errors_corrected);
  }
  std::printf("checksum verifications across all waves: %zu\n",
              verifications.load());

  // 4. Overload: a private one-worker engine with a tiny pending-lane cap
  // shows the admission control a serving front door leans on — priority
  // classes, deadlines, backpressure and load shedding.
  engine::BatchEngine eng(1);
  eng.set_queue_cap(4);

  // A low-priority, cancellable background job fills the queue (chunk = 1
  // so the worker claims one item at a time and the rest stay sheddable).
  engine::SubmitOptions background;
  background.priority = engine::Priority::kLow;
  background.cancellable = true;
  auto bg = eng.submit_tasks(
      4,
      [](std::size_t, abft::Stats&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      background, /*chunk=*/1);

  // The queue is at capacity: same-class traffic is refused immediately
  // (the try-form of the QueueFullError a blocking submit would throw).
  auto refused = eng.try_submit_tasks(
      2, [](std::size_t, abft::Stats&) {}, background);
  std::printf("try_submit with the queue full: %s\n",
              refused.has_value() ? "admitted" : "rejected (queue full)");

  // A high-priority transform wave with a deadline sheds the cancellable
  // background lanes instead of queueing behind them.
  const std::size_t hot_n = 1024;
  std::vector<std::vector<cplx>> hot_in(2), hot_out(2,
                                                    std::vector<cplx>(hot_n));
  std::vector<engine::Lane> hot_lanes(2);
  for (std::size_t l = 0; l < 2; ++l) {
    hot_in[l] = random_vector(hot_n, InputDistribution::kUniform, 7000 + l);
    hot_lanes[l] = {hot_in[l].data(), hot_out[l].data(), nullptr};
  }
  engine::BatchOptions hot_opts;
  hot_opts.abft = make_abft_options(config);
  hot_opts.submit.priority = engine::Priority::kHigh;
  hot_opts.submit.deadline = std::chrono::milliseconds(250);
  const auto hot = eng.submit_batch(hot_lanes, hot_n, hot_opts).get();
  std::printf("urgent wave: %zu lanes, deadline %s\n", hot.lanes,
              hot.deadline_expired_lanes == 0 ? "met" : "missed");

  const auto bg_report = bg.get();
  std::printf("background job: %zu of %zu lanes shed under overload\n",
              bg_report.shed_lanes, bg_report.lanes);

  // 5. The per-class scheduler snapshot a monitoring loop would scrape.
  const auto sched = eng.scheduler_stats();
  for (const auto p : {engine::Priority::kHigh, engine::Priority::kNormal,
                       engine::Priority::kLow}) {
    const auto& c = sched.at(p);
    std::printf(
        "class %-6s  jobs %zu/%zu (rejected %zu)  shed lanes %zu  "
        "p99 queue wait %.1f us\n",
        engine::priority_name(p), c.jobs_completed, c.jobs_submitted,
        c.jobs_rejected, c.shed_lanes, c.queue_wait.p99 * 1e6);
  }
  return 0;
}
