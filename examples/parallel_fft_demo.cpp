// Distributed protected FFT, submitted asynchronously to the engine-sharded
// runtime (submit_parallel).
//
// One huge transform is sharded across the BatchEngine worker pool as three
// chained phase fan-outs; the caller gets a ParallelFuture back immediately
// and is free to do other work until get(). Faults strike computation,
// communication and memory on different simulated ranks and are corrected
// on the fly; the report breaks each phase into wall / compute / modeled
// communication time, and a final run shows a modeled rank *failure*
// absorbed by the restart budget.
#include <cstdio>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "parallel/parallel_fft.hpp"
#include "parallel/parallel_plan.hpp"

int main() {
  using namespace ftfft;
  const std::size_t p = 8;
  const std::size_t n = 1 << 16;
  auto x = random_vector(n, InputDistribution::kUniform, 31415);

  const auto arm = [](std::size_t rank, fault::Injector& inj) {
    if (rank == 1) {
      inj.schedule(fault::FaultSpec::computational(
          fault::Phase::kRankFft1Output, 7, 2, {100.0, -3.0}));
    }
    if (rank == 4) {
      inj.schedule(fault::FaultSpec::memory_set(fault::Phase::kCommBlock, 2,
                                                11, {77.0, 77.0}));
    }
    if (rank == 6) {
      inj.schedule(fault::FaultSpec::computational(fault::Phase::kKFftOutput,
                                                   3, 5, {0.0, 42.0}));
    }
  };

  std::printf("sharded distributed FFT: N = %zu on %zu simulated ranks\n\n",
              n, p);

  // Resolve the parallel plan (checksum weights, k*r*k FFT2 scheme, eta
  // model) once, ahead of the submission: the submit itself then does no
  // plan or weight-generation work.
  parallel::warm_plans(p, n, /*protect=*/true);

  // Submit asynchronously; the future completes when the third phase does.
  auto fut = parallel::submit_parallel(p, x,
                                       parallel::ParallelOptions::opt_ft_fftw(),
                                       arm);
  std::printf("submitted; transform runs on the shared engine pool...\n");
  parallel::ParallelReport report;
  const auto spectrum = fut.get(&report);

  const auto want = fft::fft(x);
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    worst = std::max(worst, std::abs(spectrum[j] - want[j]));
  }
  std::printf("done: max deviation vs sequential engine = %.1e\n", worst);
  std::printf("faults: comp=%zu detected, mem=%zu corrected, comm=%zu "
              "corrected\n\n",
              report.stats.comp_errors_detected,
              report.stats.mem_errors_corrected,
              report.comm_stats.comm_errors_corrected);

  std::printf("per-phase split (wall / max rank CPU / modeled comm):\n");
  static const char* const kPhase[] = {"transpose1 + FFT1",
                                       "transpose2 + twiddle + FFT2",
                                       "transpose3 + adjust"};
  for (int ph = 0; ph < 3; ++ph) {
    std::printf("  %-28s %8.3f ms %8.3f ms %8.3f ms\n", kPhase[ph],
                report.phases[ph].wall_seconds * 1e3,
                report.phases[ph].max_cpu_seconds * 1e3,
                report.phases[ph].modeled_comm * 1e3);
  }

  // A modeled node loss: rank 3 dies entering phase 2. With a restart
  // budget the executor re-runs the whole transform from the (pristine)
  // input, modeling failover to a spare node.
  parallel::ParallelOptions failing = parallel::ParallelOptions::opt_ft_fftw();
  failing.net.fail_rank = 3;
  failing.net.fail_phase = 2;
  failing.max_rank_restarts = 1;
  parallel::ParallelReport recovered;
  const auto y = parallel::parallel_fft_sharded(p, x, failing, &recovered);
  worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    worst = std::max(worst, std::abs(y[j] - want[j]));
  }
  std::printf("\nrank-failure drill: rank 3 died entering phase 2; "
              "restarts used = %zu, max deviation = %.1e\n",
              recovered.rank_restarts, worst);
  std::printf("\nall injected faults were corrected on the fly; the phase "
              "split shows where checksum and twiddle work rides under "
              "communication.\n");
  return 0;
}
