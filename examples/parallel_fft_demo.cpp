// Distributed protected FFT on the simulated message-passing runtime.
//
// Runs the six-step parallel transform on 8 simulated ranks with faults
// striking computation, communication and memory on different ranks, and
// shows the simulated-time report (compute vs communication, overlap
// benefit) plus the fault-tolerance statistics.
#include <cstdio>

#include "common/rng.hpp"
#include "dft/reference_dft.hpp"
#include "fft/fft.hpp"
#include "parallel/parallel_fft.hpp"

int main() {
  using namespace ftfft;
  const std::size_t p = 8;
  const std::size_t n = 1 << 16;
  auto x = random_vector(n, InputDistribution::kUniform, 31415);

  const auto arm = [](std::size_t rank, fault::Injector& inj) {
    if (rank == 1) {
      inj.schedule(fault::FaultSpec::computational(
          fault::Phase::kRankFft1Output, 7, 2, {100.0, -3.0}));
    }
    if (rank == 4) {
      inj.schedule(fault::FaultSpec::memory_set(fault::Phase::kCommBlock, 2,
                                                11, {77.0, 77.0}));
    }
    if (rank == 6) {
      inj.schedule(fault::FaultSpec::computational(fault::Phase::kKFftOutput,
                                                   3, 5, {0.0, 42.0}));
    }
  };

  std::printf("distributed FFT: N = %zu on %zu simulated ranks\n\n", n, p);
  std::printf("%-14s %12s %12s %12s  faults(det/corr)\n", "variant",
              "makespan", "compute", "comm");

  for (const auto& [name, opts] :
       {std::make_pair("FT-FFTW", parallel::ParallelOptions::ft_fftw()),
        std::make_pair("opt-FT-FFTW",
                       parallel::ParallelOptions::opt_ft_fftw())}) {
    parallel::ParallelReport report;
    const auto spectrum = parallel::parallel_fft(p, x, opts, &report, arm);
    // Verify against the sequential engine.
    const auto want = fft::fft(x);
    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      worst = std::max(worst, std::abs(spectrum[j] - want[j]));
    }
    std::printf("%-14s %9.3f ms %9.3f ms %9.3f ms  comp=%zu mem=%zu comm=%zu"
                "  (max dev vs sequential: %.1e)\n",
                name, report.makespan * 1e3, report.max_compute * 1e3,
                report.max_comm * 1e3, report.stats.comp_errors_detected,
                report.stats.mem_errors_corrected,
                report.comm_stats.comm_errors_corrected, worst);
  }
  std::printf("\nall injected faults were corrected on the fly; the overlap "
              "variant hides the checksum+twiddle work under "
              "communication.\n");
  return 0;
}
