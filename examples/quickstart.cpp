// Quickstart: the one-pager for FT-FFT.
//
// Build & run:   ./examples/quickstart
//
// Creates a protected plan, transforms a signal, shows what the fault
// tolerance machinery did, and demonstrates that an injected soft error is
// corrected transparently.
#include <cstdio>

#include "core/ftfft.hpp"

int main() {
  using namespace ftfft;

  // 1. A signal: 4096 samples of a two-tone waveform.
  const std::size_t n = 4096;
  std::vector<cplx> signal(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t);
    signal[t] = {std::cos(2.0 * 3.14159265358979 * 37.0 * x / n) +
                     0.5 * std::cos(2.0 * 3.14159265358979 * 411.0 * x / n),
                 0.0};
  }

  // 2. A protected plan: online ABFT with memory fault tolerance (default).
  FtPlan plan(n);
  auto spectrum = plan.forward(signal);

  std::printf("%s\n", FtPlan::version());
  std::printf("transformed %zu points, %zu checksum verifications, "
              "0 faults -> %zu corrections\n",
              n, plan.last_stats().verifications,
              plan.last_stats().mem_errors_corrected);

  // The two tones dominate the spectrum.
  std::size_t best = 1, second = 1;
  for (std::size_t j = 1; j < n / 2; ++j) {
    if (std::abs(spectrum[j]) > std::abs(spectrum[best])) {
      second = best;
      best = j;
    } else if (std::abs(spectrum[j]) > std::abs(spectrum[second]) &&
               j != best) {
      second = j;
    }
  }
  std::printf("dominant bins: %zu and %zu (expected 37 and 411)\n\n", best,
              second);

  // 3. Now the same transform with a soft error striking mid-computation:
  //    the plan detects it via the sub-FFT checksum, re-executes only that
  //    sub-FFT, and returns the correct spectrum.
  fault::Injector injector;
  injector.schedule(fault::FaultSpec::computational(
      fault::Phase::kMFftOutput, /*unit=*/3, /*element=*/17, {1e6, -1e6}));
  PlanConfig cfg;
  cfg.injector = &injector;
  FtPlan protected_plan(n, cfg);
  auto spectrum2 = protected_plan.forward(signal);

  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    worst = std::max(worst, std::abs(spectrum2[j] - spectrum[j]));
  }
  std::printf("injected a 1e6-magnitude computational fault:\n");
  std::printf("  detected: %zu, sub-FFT re-executions: %zu\n",
              protected_plan.last_stats().comp_errors_detected,
              protected_plan.last_stats().sub_fft_retries);
  std::printf("  max deviation from fault-free spectrum: %.3e\n", worst);
  return worst < 1e-6 ? 0 : 1;
}
