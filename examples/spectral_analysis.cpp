// Spectral analysis under soft errors: a long-running monitoring loop on
// REAL sensor data.
//
// A sensor produces frames of noisy multi-tone samples. Real signals get
// the real-input fast path: abft::protected_r2c packs each frame into an
// n/2-point complex transform (half the flops, half the traffic of the
// complex plan this example used to run) and returns the n/2+1-bin
// half-spectrum, ABFT-verified end to end — packed transform under the
// online scheme, conjugate-symmetry post-pass under the pullback checksum.
//
// Midway through, soft errors start striking (simulating a radiation-heavy
// environment), rotating through every layer the pipeline has: the packed
// sub-FFT outputs, input memory, and the Hermitian unpack pass itself. The
// analysis results stay identical while the stats record the repairs —
// the paper's pitch: keep long computations trustworthy without
// checkpoint/restart.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/ftfft.hpp"
#include "fault/bitflip.hpp"

namespace {

using namespace ftfft;

std::vector<double> make_frame(std::size_t n, double f1, double f2,
                               std::uint64_t seed) {
  std::vector<double> frame(n);
  Rng rng(seed);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t);
    frame[t] = std::sin(2.0 * std::numbers::pi * f1 * x / n) +
               0.6 * std::sin(2.0 * std::numbers::pi * f2 * x / n) +
               0.1 * rng.normal();
  }
  return frame;
}

// The half-spectrum already holds only the n/2+1 physical bins, so the
// scan covers all of it — no mirrored upper half to skip.
std::size_t dominant_bin(const std::vector<cplx>& half_spectrum) {
  std::size_t best = 1;
  for (std::size_t j = 1; j + 1 < half_spectrum.size(); ++j) {
    if (std::abs(half_spectrum[j]) > std::abs(half_spectrum[best])) best = j;
  }
  return best;
}

fault::FaultSpec hostile_fault(int frame, std::size_t n, Rng& rng) {
  switch (frame % 3) {
    case 0:  // computational: one packed sub-FFT output goes wrong
      return fault::FaultSpec::computational(fault::Phase::kMFftOutput,
                                             rng.below(64), rng.below(256),
                                             {50.0, 50.0});
    case 1:  // memory: a bit flips in the input after checksum generation
      return fault::FaultSpec::bit_flip(
          fault::Phase::kInputAfterChecksum, 0, rng.below(n / 2),
          55 + static_cast<unsigned>(rng.below(7)), false);
    default:  // post-pass: the Hermitian unpack itself gets struck
      return fault::FaultSpec::bit_flip(fault::Phase::kRealPostPass, 0,
                                        1 + rng.below(n / 2 - 1),
                                        fault::kFirstHighBit + 3, true);
  }
}

}  // namespace

int main() {
  const std::size_t n = 1 << 14;
  const int frames = 12;

  fault::Injector injector;
  abft::Options opts = abft::Options::online_opt(/*memory=*/true);
  opts.injector = &injector;

  std::printf(
      "frame | dominant bin | detected | corrected | retries | restarts\n"
      "------+--------------+----------+-----------+---------+---------\n");

  std::size_t total_detected = 0;
  Rng fault_rng(2026);
  std::vector<cplx> spectrum(n / 2 + 1);
  for (int frame = 0; frame < frames; ++frame) {
    // From frame 6 on, the environment turns hostile: one soft error per
    // frame, rotating through the pipeline's layers.
    if (frame >= 6) injector.schedule(hostile_fault(frame, n, fault_rng));

    auto x = make_frame(n, 1234.0, 3456.0, 100 + frame);
    abft::Stats stats;
    abft::protected_r2c(x.data(), spectrum.data(), n, opts, stats);

    const std::size_t detected =
        stats.comp_errors_detected + stats.mem_errors_detected;
    total_detected += detected;
    std::printf("%5d | %12zu | %8zu | %9zu | %7zu | %8zu\n", frame,
                dominant_bin(spectrum), detected, stats.mem_errors_corrected,
                stats.sub_fft_retries, stats.full_restarts);
  }

  std::printf("\n%zu soft errors detected and survived; every frame reported "
              "the same dominant bin from the half-spectrum.\n",
              total_detected);
  return 0;
}
