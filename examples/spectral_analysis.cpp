// Spectral analysis under soft errors: a long-running monitoring loop.
//
// A sensor produces frames of noisy multi-tone data; each frame is
// transformed with the protected plan and the dominant frequencies are
// tracked. Midway through, soft errors start striking (simulating a
// radiation-heavy environment); the demo shows the analysis results stay
// identical while the stats record the repairs — which is the paper's
// pitch: keep long computations trustworthy without checkpoint/restart.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/ftfft.hpp"

namespace {

using namespace ftfft;

std::vector<cplx> make_frame(std::size_t n, double f1, double f2,
                             std::uint64_t seed) {
  std::vector<cplx> frame(n);
  Rng rng(seed);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = static_cast<double>(t);
    const double v = std::sin(2.0 * std::numbers::pi * f1 * x / n) +
                     0.6 * std::sin(2.0 * std::numbers::pi * f2 * x / n) +
                     0.1 * rng.normal();
    frame[t] = {v, 0.0};
  }
  return frame;
}

std::size_t dominant_bin(const std::vector<cplx>& spectrum) {
  std::size_t best = 1;
  for (std::size_t j = 1; j < spectrum.size() / 2; ++j) {
    if (std::abs(spectrum[j]) > std::abs(spectrum[best])) best = j;
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t n = 1 << 14;
  const int frames = 12;

  fault::Injector injector;
  PlanConfig cfg;
  cfg.injector = &injector;
  FtPlan plan(n, cfg);

  std::printf("frame | dominant bin | faults detected | corrected | retries\n");
  std::printf("------+--------------+-----------------+-----------+--------\n");

  std::size_t total_detected = 0;
  Rng fault_rng(2026);
  for (int frame = 0; frame < frames; ++frame) {
    // From frame 6 on, the environment turns hostile: one random soft error
    // per frame, alternating computational and memory flavors.
    if (frame >= 6) {
      if (frame % 2 == 0) {
        injector.schedule(fault::FaultSpec::computational(
            fault::Phase::kMFftOutput, fault_rng.below(64),
            fault_rng.below(256), {50.0, 50.0}));
      } else {
        injector.schedule(fault::FaultSpec::bit_flip(
            fault::Phase::kInputAfterChecksum, 0, fault_rng.below(n),
            55 + static_cast<unsigned>(fault_rng.below(7)), false));
      }
    }

    auto x = make_frame(n, 1234.0, 3456.0, 100 + frame);
    auto spectrum = plan.forward(x);
    const auto& stats = plan.last_stats();
    const std::size_t detected =
        stats.comp_errors_detected + stats.mem_errors_detected;
    total_detected += detected;
    std::printf("%5d | %12zu | %15zu | %9zu | %6zu\n", frame,
                dominant_bin(spectrum), detected, stats.mem_errors_corrected,
                stats.sub_fft_retries);
  }

  std::printf("\n%zu soft errors detected and survived; every frame reported "
              "the same dominant bin.\n",
              total_detected);
  return 0;
}
