// Monte-Carlo fault-injection campaign: a miniature of the paper's
// Table 6 experiment, runnable in seconds.
//
// Random high-bit flips strike the input or output of a protected
// transform; the campaign reports detection, correction and residual-error
// statistics for the online scheme, and the damage an unprotected transform
// would have silently delivered.
//
// All protected runs execute as ONE batch on the multi-threaded
// BatchEngine: each run is a lane with its own fault injector, so the
// campaign doubles as a demonstration that faults in one lane never leak
// into another.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "core/ftfft.hpp"
#include "fault/bitflip.hpp"

int main(int argc, char** argv) {
  using namespace ftfft;
  const std::size_t n = 1 << 13;
  const int runs = argc > 1 ? std::max(0, std::atoi(argv[1])) : 150;
  const auto lanes = static_cast<std::size_t>(runs);

  auto input = random_vector(n, InputDistribution::kUniform, 99);
  FtPlan reference_plan(n, {Protection::kNone});
  std::vector<cplx> truth(n);
  {
    auto copy = input;
    reference_plan.forward(copy.data(), truth.data());
  }
  const double truth_norm = inf_norm(truth.data(), n);

  // Draw one random fault per run.
  struct Draw {
    bool in_input;
    std::size_t element;
    unsigned bit;
    bool imag;
  };
  std::vector<Draw> draws(lanes);
  Rng rng(2017);
  for (auto& d : draws) {
    d.in_input = rng.below(2) == 0;
    d.element = rng.below(n);
    d.bit = static_cast<unsigned>(fault::kFirstHighBit + rng.below(23));
    d.imag = rng.below(2) == 0;
  }

  // Unprotected damage for comparison (serial: it reuses one plan).
  SampleSet unprotected_damage;
  for (const Draw& d : draws) {
    auto x = input;
    std::vector<cplx> out(n);
    auto flip = [&](cplx& v) {
      v = d.imag ? cplx{v.real(), fault::flip_bit(v.imag(), d.bit)}
                 : cplx{fault::flip_bit(v.real(), d.bit), v.imag()};
    };
    if (d.in_input) flip(x[d.element]);
    reference_plan.forward(x.data(), out.data());
    if (!d.in_input) flip(out[d.element]);
    const double err = inf_diff(out.data(), truth.data(), n) / truth_norm;
    if (std::isfinite(err)) unprotected_damage.add(err);
  }

  // Protected runs: one batch, one injector per lane.
  std::vector<fault::Injector> injectors(lanes);
  std::vector<std::vector<cplx>> ins(lanes, input);
  std::vector<std::vector<cplx>> outs(lanes, std::vector<cplx>(n));
  std::vector<engine::Lane> batch(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const Draw& d = draws[l];
    injectors[l].schedule(fault::FaultSpec::bit_flip(
        d.in_input ? fault::Phase::kInputAfterChecksum
                   : fault::Phase::kFinalOutput,
        0, d.element, d.bit, d.imag));
    batch[l] = {ins[l].data(), outs[l].data(), &injectors[l]};
  }
  const engine::BatchReport report = transform_batch(batch, n);

  std::size_t corrected = 0, uncorrectable = 0, undetected_damage = 0;
  SampleSet residuals;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!report.errors[l].empty()) {
      ++uncorrectable;
      continue;
    }
    const double err =
        inf_diff(outs[l].data(), truth.data(), n) / truth_norm;
    if (!std::isfinite(err) || err > 1e-6) {
      ++undetected_damage;
    } else {
      residuals.add(err);
      if (report.per_lane[l].mem_errors_corrected > 0) ++corrected;
    }
  }

  std::printf("fault campaign: %d runs, N = %zu, random high-bit flips\n",
              runs, n);
  std::printf("batch engine: %zu lanes across %zu threads\n\n", report.lanes,
              engine::BatchEngine::shared().num_threads());
  std::printf("unprotected: median damage %.2e, max %.2e (silent!)\n",
              unprotected_damage.quantile(0.5), unprotected_damage.max());
  std::printf("protected (online ABFT):\n");
  std::printf("  corrected cleanly         : %zu\n", corrected);
  std::printf("  flagged uncorrectable     : %zu (reported, not silent)\n",
              uncorrectable);
  std::printf("  residual damage > 1e-6    : %zu\n", undetected_damage);
  std::printf("  max residual among clean  : %.2e\n", residuals.max());
  std::printf("  verifications (batch total): %zu\n",
              report.totals.verifications);
  return 0;
}
