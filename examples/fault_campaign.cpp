// Monte-Carlo fault-injection campaign: a miniature of the paper's
// Table 6 experiment, runnable in seconds.
//
// Random high-bit flips strike the input or output of a protected
// transform; the campaign reports detection, correction and residual-error
// statistics for the online scheme, and the damage an unprotected transform
// would have silently delivered.
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "core/ftfft.hpp"
#include "fault/bitflip.hpp"

int main(int argc, char** argv) {
  using namespace ftfft;
  const std::size_t n = 1 << 13;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 150;

  auto input = random_vector(n, InputDistribution::kUniform, 99);
  FtPlan reference_plan(n, {Protection::kNone});
  std::vector<cplx> truth(n);
  {
    auto copy = input;
    reference_plan.forward(copy.data(), truth.data());
  }
  const double truth_norm = inf_norm(truth.data(), n);

  std::size_t corrected = 0, uncorrectable = 0, undetected_damage = 0;
  SampleSet residuals;
  SampleSet unprotected_damage;
  Rng rng(2017);

  for (int run = 0; run < runs; ++run) {
    const bool in_input = rng.below(2) == 0;
    const std::size_t element = rng.below(n);
    const auto bit =
        static_cast<unsigned>(fault::kFirstHighBit + rng.below(23));
    const bool imag = rng.below(2) == 0;

    // Unprotected damage for comparison.
    {
      auto x = input;
      std::vector<cplx> out(n);
      if (in_input) {
        cplx& v = x[element];
        v = imag ? cplx{v.real(), fault::flip_bit(v.imag(), bit)}
                 : cplx{fault::flip_bit(v.real(), bit), v.imag()};
      }
      reference_plan.forward(x.data(), out.data());
      if (!in_input) {
        cplx& v = out[element];
        v = imag ? cplx{v.real(), fault::flip_bit(v.imag(), bit)}
                 : cplx{fault::flip_bit(v.real(), bit), v.imag()};
      }
      const double err = inf_diff(out.data(), truth.data(), n) / truth_norm;
      if (std::isfinite(err)) unprotected_damage.add(err);
    }

    // Protected run.
    fault::Injector injector;
    injector.schedule(fault::FaultSpec::bit_flip(
        in_input ? fault::Phase::kInputAfterChecksum
                 : fault::Phase::kFinalOutput,
        0, element, bit, imag));
    PlanConfig cfg;
    cfg.injector = &injector;
    FtPlan plan(n, cfg);
    auto x = input;
    std::vector<cplx> out(n);
    try {
      plan.forward(x.data(), out.data());
      const double err = inf_diff(out.data(), truth.data(), n) / truth_norm;
      if (!std::isfinite(err) || err > 1e-6) {
        ++undetected_damage;
      } else {
        residuals.add(err);
        if (plan.last_stats().mem_errors_corrected > 0) ++corrected;
      }
    } catch (const ftfft::UncorrectableError&) {
      ++uncorrectable;
    }
  }

  std::printf("fault campaign: %d runs, N = %zu, random high-bit flips\n\n",
              runs, n);
  std::printf("unprotected: median damage %.2e, max %.2e (silent!)\n",
              unprotected_damage.quantile(0.5), unprotected_damage.max());
  std::printf("protected (online ABFT):\n");
  std::printf("  corrected cleanly         : %zu\n", corrected);
  std::printf("  flagged uncorrectable     : %zu (reported, not silent)\n",
              uncorrectable);
  std::printf("  residual damage > 1e-6    : %zu\n", undetected_damage);
  std::printf("  max residual among clean  : %.2e\n", residuals.max());
  return 0;
}
