// Reproduces the section-7 analytic overhead model and compares it to
// measurement.
//
// The paper counts the extra real operations each scheme adds on top of the
// ~5 N log2 N of the FFT itself:
//
//   offline, computational FT            : 37 N     (7.1.1)
//   online,  computational FT            : 32 N     (7.1.2)
//   offline, computational + memory FT   : 41 N     (7.1.3)
//   online,  computational + memory FT   : 46 N     (7.1.4)
//
// The model's predicted overhead percentage is (extra ops) / (5 N log2 N);
// the measured percentage comes from wall time against the unprotected
// engine. Absolute agreement is not expected (memory traffic dominates some
// phases), but the ordering and rough band should match.
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;

double measured_overhead(std::size_t n, const abft::Options& opts, int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 5 + n);
  std::vector<cplx> out(n);
  abft::Stats s;
  abft::protected_transform(x.data(), out.data(), n, opts, s);  // warm
  const double t = bench::time_best(reps, [&] {
    abft::Stats stats;
    abft::protected_transform(x.data(), out.data(), n, opts, stats);
  });
  abft::Options plain = abft::Options::none();
  abft::protected_transform(x.data(), out.data(), n, plain, s);
  const double t0 = bench::time_best(reps, [&] {
    abft::Stats stats;
    abft::protected_transform(x.data(), out.data(), n, plain, stats);
  });
  return bench::overhead_pct(t, t0);
}

}  // namespace

int main() {
  bench::banner("Analytic overhead model vs measurement",
                "Section 7 (op counts), SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 21);
  const int reps = static_cast<int>(scaled_runs(2));
  const double fft_ops = 5.0 * static_cast<double>(n) * log2_floor(n);

  struct Row {
    const char* name;
    double extra_ops_per_n;
    abft::Options opts;
  };
  const Row rows[] = {
      {"Offline, comp FT (37N)", 37.0, abft::Options::offline_opt(false)},
      {"Online, comp FT (32N)", 32.0, abft::Options::online_opt(false)},
      {"Offline, comp+mem FT (41N)", 41.0, abft::Options::offline_opt(true)},
      {"Online, comp+mem FT (46N)", 46.0, abft::Options::online_opt(true)},
  };

  TablePrinter table(
      {"Scheme", "Model extra ops", "Model overhead", "Measured overhead"});
  for (const Row& row : rows) {
    const double model_pct =
        row.extra_ops_per_n * static_cast<double>(n) / fft_ops * 100.0;
    table.add_row({row.name,
                   TablePrinter::fixed(row.extra_ops_per_n, 0) + "N",
                   TablePrinter::fixed(model_pct, 1) + "%",
                   TablePrinter::fixed(measured_overhead(n, row.opts, reps),
                                       1) +
                       "%"});
  }
  table.print();
  std::printf(
      "\nshape check: measured tracks the model's ordering (online-comp "
      "cheapest of the FT schemes; memory FT adds a few N).\n");
  return 0;
}
