// Reproduces Table 3: weak-scaling execution time of opt-FT-FFTW when
// faults strike (0 / 2m / 2c / 2m+2c), fixed rank count, growing N.
//
// Expected shape (paper section 9.3.2): per-column times identical across
// fault loads; time grows ~linearly in N (N log N work on p ranks).
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_fft.hpp"

namespace {

using namespace ftfft;
using bench::size_label;
using parallel::ParallelOptions;
using parallel::ParallelReport;

enum class Load { kNone, kTwoMem, kTwoComp, kTwoMemTwoComp };

std::function<void(std::size_t, fault::Injector&)> make_arm(Load load) {
  return [load](std::size_t rank, fault::Injector& inj) {
    using fault::FaultSpec;
    using fault::Phase;
    const bool mem = load == Load::kTwoMem || load == Load::kTwoMemTwoComp;
    const bool comp = load == Load::kTwoComp || load == Load::kTwoMemTwoComp;
    if (mem && rank == 1) {
      inj.schedule(FaultSpec::memory_set(Phase::kCommBlock, 0, 5,
                                         {33.0, 2.0}));
    }
    if (mem && rank == 3) {
      inj.schedule(FaultSpec::memory_set(Phase::kFinalOutput, 0, 14,
                                         {-9.0, 12.0}));
    }
    if (comp && rank == 2) {
      inj.schedule(FaultSpec::computational(Phase::kRankFft1Output, 0, 2,
                                            {6.0, -6.0}));
    }
    if (comp && rank == 5) {
      inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 3, 1,
                                            {2.0, 9.0}));
    }
  };
}

}  // namespace

int main() {
  bench::banner("Parallel weak scaling with faults (opt-FT-FFTW)",
                "Table 3, SC'17 Liang et al.");
  const std::size_t p = 8;
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{1} << 17, std::size_t{1} << 18,
                           std::size_t{1} << 19, std::size_t{1} << 20}) {
    sizes.push_back(scaled_size(base));
  }
  std::printf("p = %zu, simulated makespan\n\n", p);

  TablePrinter table({"Load", size_label(sizes[0]), size_label(sizes[1]),
                      size_label(sizes[2]), size_label(sizes[3])});
  const std::pair<const char*, Load> rows[] = {
      {"opt-FT-FFTW (0)", Load::kNone},
      {"opt-FT-FFTW (2m)", Load::kTwoMem},
      {"opt-FT-FFTW (2c)", Load::kTwoComp},
      {"opt-FT-FFTW (2m+2c)", Load::kTwoMemTwoComp},
  };
  for (const auto& [name, load] : rows) {
    std::vector<std::string> row{name};
    for (std::size_t n : sizes) {
      auto x = random_vector(n, InputDistribution::kUniform, 9 + n);
      ParallelReport report;
      // Warm-up, then best of two measured fault-injected runs.
      (void)parallel::parallel_fft(p, x, ParallelOptions::opt_ft_fftw(),
                                   &report);
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        (void)parallel::parallel_fft(p, x, ParallelOptions::opt_ft_fftw(),
                                     &report, make_arm(load));
        best = std::min(best, report.makespan);
      }
      row.push_back(TablePrinter::fixed(best * 1e3, 3) + " ms");
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nshape check: fault loads do not separate the rows; time scales "
      "with N.\n");
  return 0;
}
