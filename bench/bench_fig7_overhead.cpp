// Reproduces Fig. 7: overhead of the ABFT-FFT schemes with no faults.
//
//  (a) computational FT only:  Offline / Opt-Offline / CFTO-Online /
//      Opt-Online  (paper: 2^25..2^28 on Tianhe-2; here 2^16..2^19 by
//      default, shiftable with FTFFT_BENCH_SCALE).
//  (b) computational + memory FT: Offline / Opt-Offline / Online /
//      Opt-Online.
//
// Expected shape (paper section 9.2.1): the naive offline scheme is the
// most expensive (per-element trig generation of rA); the optimized online
// scheme undercuts the optimized offline scheme in (a) and stays comparable
// in (b).
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace {

using namespace ftfft;
using bench::size_label;

double run_scheme(std::size_t n, const abft::Options& opts, int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 42 + n);
  std::vector<cplx> out(n);
  abft::Stats stats;
  // Warm plan caches so planning time is not billed to the scheme.
  abft::protected_transform(x.data(), out.data(), n, opts, stats);
  return bench::time_best(reps, [&] {
    abft::Stats s;
    abft::protected_transform(x.data(), out.data(), n, opts, s);
  });
}

// Times two option sets with their repetitions interleaved (A,B,A,B,...)
// and min-reduced per side. The Opt-Online vs Fused-Online comparison is
// within a couple percent at the largest sizes, which is smaller than the
// slow clock/cache drift between two back-to-back timing blocks — pairing
// the reps cancels that drift out of exactly the delta this figure is
// read for.
std::pair<double, double> run_scheme_pair(std::size_t n,
                                          const abft::Options& a,
                                          const abft::Options& b, int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 42 + n);
  std::vector<cplx> out(n);
  abft::Stats stats;
  abft::protected_transform(x.data(), out.data(), n, a, stats);
  abft::protected_transform(x.data(), out.data(), n, b, stats);
  double ta = 1e300, tb = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      abft::Stats s;
      WallTimer timer;
      abft::protected_transform(x.data(), out.data(), n, a, s);
      ta = std::min(ta, timer.elapsed());
    }
    {
      abft::Stats s;
      WallTimer timer;
      abft::protected_transform(x.data(), out.data(), n, b, s);
      tb = std::min(tb, timer.elapsed());
    }
  }
  return {ta, tb};
}

void run_panel(const char* title, bool memory_ft,
               const std::vector<std::size_t>& sizes, int reps) {
  std::printf("--- %s ---\n", title);
  // "Fused-Online" is Opt-Online plus the PR-6 kernel fusion: the checksum
  // dots accumulate inside the butterfly passes (TurboFFT-style) instead of
  // separate sweeps; the separate-pass column stays as the reference.
  TablePrinter table({"Problem Size", "Offline", "Opt-Offline",
                      memory_ft ? "Online" : "CFTO-Online", "Opt-Online",
                      "Fused-Online"});
  for (std::size_t n : sizes) {
    const double t0 = run_scheme(n, abft::Options::none(), reps);
    const double t_off_naive =
        run_scheme(n, abft::Options::offline_naive(memory_ft), reps);
    const double t_off_opt =
        run_scheme(n, abft::Options::offline_opt(memory_ft), reps);
    const double t_on_naive =
        run_scheme(n, abft::Options::online_naive(memory_ft), reps);
    abft::Options opt_online = abft::Options::online_opt(memory_ft);
    opt_online.fused_checksums = false;
    abft::Options fused_online = abft::Options::online_opt(memory_ft);
    fused_online.fused_checksums = true;
    const auto [t_on_opt, t_on_fused] =
        run_scheme_pair(n, opt_online, fused_online, reps);
    table.add_row(
        {size_label(n),
         TablePrinter::percent(bench::overhead_pct(t_off_naive, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_off_opt, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_on_naive, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_on_opt, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_on_fused, t0) / 100.0)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Sequential fault-tolerance overhead (no faults)",
                "Fig. 7(a)/(b), SC'17 Liang et al.");
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{1} << 19, std::size_t{1} << 20,
                           std::size_t{1} << 21, std::size_t{1} << 22}) {
    sizes.push_back(scaled_size(base));
  }
  const int reps = static_cast<int>(scaled_runs(2));
  run_panel("(a) computational FT", false, sizes, reps);
  run_panel("(b) computational + memory FT", true, sizes, reps);
  std::printf(
      "shape check: Offline (naive) highest everywhere. At memory-bound sizes "
      "(>= 2^21 here, 2^25+ in the paper) Opt-Online undercuts Opt-Offline in\n(a) and stays comparable in (b); at compute-bound sizes the explicit\ndecomposition is visible as structural overhead (see EXPERIMENTS.md).\nFused-Online undercuts Opt-Online wherever a sub-size passes the\nfused_profitable gate (>= 512, != 2048): the input dot rides the sub-FFT\nstaging copy and the output dot the final streaming stage. Sub-sizes the\ngate rejects run the identical separate-pass code in both columns, so\nthose rows read as 'even within noise' — e.g. 2^22 = 2048 x 2048 sits\nentirely at the gated L1-edge size. Expect Fused-Online at or below\nOpt-Online on every row, clearly below at 2^19/2^20.\n");
  return 0;
}
