// Reproduces Fig. 7: overhead of the ABFT-FFT schemes with no faults.
//
//  (a) computational FT only:  Offline / Opt-Offline / CFTO-Online /
//      Opt-Online  (paper: 2^25..2^28 on Tianhe-2; here 2^16..2^19 by
//      default, shiftable with FTFFT_BENCH_SCALE).
//  (b) computational + memory FT: Offline / Opt-Offline / Online /
//      Opt-Online.
//
// Expected shape (paper section 9.2.1): the naive offline scheme is the
// most expensive (per-element trig generation of rA); the optimized online
// scheme undercuts the optimized offline scheme in (a) and stays comparable
// in (b).
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace {

using namespace ftfft;
using bench::size_label;

double run_scheme(std::size_t n, const abft::Options& opts, int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 42 + n);
  std::vector<cplx> out(n);
  abft::Stats stats;
  // Warm plan caches so planning time is not billed to the scheme.
  abft::protected_transform(x.data(), out.data(), n, opts, stats);
  return bench::time_best(reps, [&] {
    abft::Stats s;
    abft::protected_transform(x.data(), out.data(), n, opts, s);
  });
}

void run_panel(const char* title, bool memory_ft,
               const std::vector<std::size_t>& sizes, int reps) {
  std::printf("--- %s ---\n", title);
  TablePrinter table({"Problem Size", "Offline", "Opt-Offline",
                      memory_ft ? "Online" : "CFTO-Online", "Opt-Online"});
  for (std::size_t n : sizes) {
    const double t0 = run_scheme(n, abft::Options::none(), reps);
    const double t_off_naive =
        run_scheme(n, abft::Options::offline_naive(memory_ft), reps);
    const double t_off_opt =
        run_scheme(n, abft::Options::offline_opt(memory_ft), reps);
    const double t_on_naive =
        run_scheme(n, abft::Options::online_naive(memory_ft), reps);
    const double t_on_opt =
        run_scheme(n, abft::Options::online_opt(memory_ft), reps);
    table.add_row(
        {size_label(n),
         TablePrinter::percent(bench::overhead_pct(t_off_naive, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_off_opt, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_on_naive, t0) / 100.0),
         TablePrinter::percent(bench::overhead_pct(t_on_opt, t0) / 100.0)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Sequential fault-tolerance overhead (no faults)",
                "Fig. 7(a)/(b), SC'17 Liang et al.");
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{1} << 19, std::size_t{1} << 20,
                           std::size_t{1} << 21, std::size_t{1} << 22}) {
    sizes.push_back(scaled_size(base));
  }
  const int reps = static_cast<int>(scaled_runs(2));
  run_panel("(a) computational FT", false, sizes, reps);
  run_panel("(b) computational + memory FT", true, sizes, reps);
  std::printf(
      "shape check: Offline (naive) highest everywhere. At memory-bound sizes "
      "(>= 2^21 here, 2^25+ in the paper) Opt-Online undercuts Opt-Offline in\n(a) and stays comparable in (b); at compute-bound sizes the explicit\ndecomposition is visible as structural overhead (see EXPERIMENTS.md).\n");
  return 0;
}
