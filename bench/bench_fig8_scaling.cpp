// Reproduces Fig. 8: parallel execution time (no faults) of FFTW /
// FT-FFTW / opt-FFTW / opt-FT-FFTW in (a) strong scaling and (b) weak
// scaling, on the simulated message-passing substrate.
//
// The reported numbers are *simulated makespans*: per-rank thread-CPU
// compute time + an alpha-beta network model, max over ranks (see
// src/parallel/network_model.hpp). Expected shape (paper section 9.3.1):
// FT-FFTW carries checksum overhead over FFTW; overlap (opt-*) claws most
// of it back, with opt-FT-FFTW close to — and opt-FFTW at or below — the
// unprotected baseline.
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "parallel/parallel_fft.hpp"
#include "parallel/parallel_plan.hpp"

namespace {

using namespace ftfft;
using bench::size_label;
using parallel::ParallelOptions;
using parallel::ParallelReport;

double run_variant(std::size_t p, const std::vector<cplx>& x,
                   ParallelOptions opts) {
  // One warm-up run (plan caches, twiddle tables, first-touch pages), then
  // the best of two measured runs.
  ParallelReport report;
  (void)parallel::parallel_fft(p, x, opts, &report);
  double best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    (void)parallel::parallel_fft(p, x, opts, &report);
    best = std::min(best, report.makespan);
  }
  return best;
}

void add_variant_rows(TablePrinter& table, const char* col_kind,
                      const std::vector<std::pair<std::string,
                                                  ParallelOptions>>& variants,
                      const std::vector<std::size_t>& axis,
                      const std::function<std::pair<std::size_t,
                                                    std::size_t>(std::size_t)>&
                          geometry) {
  (void)col_kind;
  for (const auto& [name, opts] : variants) {
    std::vector<std::string> row{name};
    for (std::size_t a : axis) {
      const auto [p, n] = geometry(a);
      auto x = random_vector(n, InputDistribution::kUniform, 11 + n + p);
      row.push_back(
          TablePrinter::fixed(run_variant(p, x, opts) * 1e3, 3) + " ms");
    }
    table.add_row(row);
  }
}

}  // namespace

int main() {
  bench::banner("Parallel FT-FFT scaling (no faults, simulated makespan)",
                "Fig. 8(a)/(b), SC'17 Liang et al.");

  const std::vector<std::pair<std::string, ParallelOptions>> variants = {
      {"FFTW", ParallelOptions::fftw()},
      {"FT-FFTW", ParallelOptions::ft_fftw()},
      {"opt-FFTW", ParallelOptions::opt_fftw()},
      {"opt-FT-FFTW", ParallelOptions::opt_ft_fftw()},
  };

  // (a) strong scaling: fixed N, growing rank count.
  {
    const std::size_t n = scaled_size(std::size_t{1} << 20);
    std::printf("--- (a) strong scaling: N = %s ---\n",
                size_label(n).c_str());
    std::vector<std::size_t> ps = {4, 8, 16, 32};
    TablePrinter table({"Variant", "p=4", "p=8", "p=16", "p=32"});
    add_variant_rows(table, "p", variants, ps, [&](std::size_t p) {
      return std::make_pair(p, n);
    });
    table.print();
    std::printf("\n");
  }

  // (b) weak scaling: fixed per-rank size, growing rank count.
  {
    const std::size_t per_rank = scaled_size(std::size_t{1} << 15);
    std::printf("--- (b) weak scaling: N/p = %s ---\n",
                size_label(per_rank).c_str());
    std::vector<std::size_t> ps = {4, 8, 16, 32};
    TablePrinter table({"Variant", "p=4", "p=8", "p=16", "p=32"});
    add_variant_rows(table, "N", variants, ps, [&](std::size_t p) {
      return std::make_pair(p, per_rank * p);
    });
    table.print();
    std::printf("\n");
  }

  // (c) execution substrate: the thread-per-rank reference path vs the
  // engine-sharded path (submit_parallel), same algorithm, same binary,
  // host wall-clock this time — the simulated makespan above deliberately
  // excludes the substrate overheads (thread spawns, mailbox handoffs,
  // per-message payload copies) that sharding exists to remove.
  {
    const std::size_t n = scaled_size(std::size_t{1} << 22);
    const std::size_t p = 16;
    const int reps = std::max(1, static_cast<int>(3 * bench_runs_percent() /
                                                  100));
    std::printf("--- (c) substrate: thread-per-rank vs engine-sharded, "
                "N = %s, p = %zu (host wall clock) ---\n",
                size_label(n).c_str(), p);
    engine::BatchEngine& eng = engine::BatchEngine::shared();
    parallel::warm_plans(p, n, /*protect=*/true);
    parallel::warm_plans(p, n, /*protect=*/false);
    TablePrinter table({"Variant", "reference", "sharded", "speedup"});
    for (const auto& [name, opts] : variants) {
      auto x = random_vector(n, InputDistribution::kUniform, 91 + p);
      // One warm-up pass per path, then best-of-reps.
      (void)parallel::parallel_fft(p, x, opts);
      const double t_ref = bench::time_best(
          reps, [&] { (void)parallel::parallel_fft(p, x, opts); });
      (void)parallel::submit_parallel(p, x, opts, {}, &eng).get();
      const double t_sh = bench::time_best(reps, [&] {
        (void)parallel::submit_parallel(p, x, opts, {}, &eng).get();
      });
      table.add_row({name, TablePrinter::fixed(t_ref * 1e3, 1) + " ms",
                     TablePrinter::fixed(t_sh * 1e3, 1) + " ms",
                     TablePrinter::fixed(t_ref / t_sh, 2) + "x"});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "shape check: FT-FFTW > FFTW (checksum overhead); opt-FT-FFTW close "
      "to FFTW; opt-FFTW <= FFTW; sharded >= 1.5x reference at 2^22.\n");
  return 0;
}
