// Reproduces Table 1: execution time of the sequential schemes when faults
// strike mid-run.
//
// Rows: FFTW(0), Opt-Offline(0), Opt-Offline(1m), Opt-Online(0),
// Opt-Online(1c), Opt-Online(1m+1c), Opt-Online(1m+2c).
//
// Expected shape (paper section 9.2.2): one memory fault roughly doubles
// the offline scheme's time (full re-execution) while the online scheme's
// time barely moves no matter how many single-unit faults are injected
// (each recovery re-runs only a Theta(sqrt(N))-point sub-FFT).
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;
using bench::size_label;

// Fault loads of the paper's rows.
enum class Load { kNone, kOneMem, kOneComp, kOneMemOneComp, kOneMemTwoComp };

void arm(fault::Injector& inj, Load load) {
  using fault::FaultSpec;
  using fault::Phase;
  switch (load) {
    case Load::kNone:
      return;
    case Load::kOneMem:
      inj.schedule(FaultSpec::memory_set(Phase::kInputAfterChecksum, 0, 1234,
                                         {25.0, -3.0}));
      return;
    case Load::kOneComp:
      inj.schedule(
          FaultSpec::computational(Phase::kMFftOutput, 2, 7, {4.0, 4.0}));
      return;
    case Load::kOneMemOneComp:
      arm(inj, Load::kOneMem);
      arm(inj, Load::kOneComp);
      return;
    case Load::kOneMemTwoComp:
      arm(inj, Load::kOneMemOneComp);
      inj.schedule(
          FaultSpec::computational(Phase::kKFftOutput, 5, 3, {-2.0, 6.0}));
      return;
  }
}

// For the offline scheme a "computational" fault is one whole-FFT output
// corruption.
void arm_offline(fault::Injector& inj, Load load) {
  using fault::FaultSpec;
  using fault::Phase;
  if (load == Load::kOneMem) {
    inj.schedule(FaultSpec::memory_set(Phase::kInputAfterChecksum, 0, 1234,
                                       {25.0, -3.0}));
  }
}

double run_case(std::size_t n, abft::Options opts, Load load, bool offline,
                int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 7 + n);
  std::vector<cplx> out(n);
  {  // warm plans
    abft::Stats s;
    auto copy = x;
    abft::protected_transform(copy.data(), out.data(), n, opts, s);
  }
  return bench::time_best(reps, [&] {
    fault::Injector inj;
    if (offline) {
      arm_offline(inj, load);
    } else {
      arm(inj, load);
    }
    abft::Options o = opts;
    o.injector = &inj;
    abft::Stats s;
    auto copy = x;  // faults repair/corrupt the input; keep runs independent
    abft::protected_transform(copy.data(), out.data(), n, o, s);
  });
}

}  // namespace

int main() {
  bench::banner("Sequential execution time with faults",
                "Table 1, SC'17 Liang et al.");
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{1} << 19, std::size_t{1} << 20,
                           std::size_t{1} << 21, std::size_t{1} << 22}) {
    sizes.push_back(scaled_size(base));
  }
  const int reps = static_cast<int>(scaled_runs(2));

  TablePrinter table({"Scheme", size_label(sizes[0]), size_label(sizes[1]),
                      size_label(sizes[2]), size_label(sizes[3])});
  auto add_row = [&](const char* name, abft::Options opts, Load load,
                     bool offline) {
    std::vector<std::string> row{name};
    for (std::size_t n : sizes) {
      row.push_back(
          TablePrinter::fixed(run_case(n, opts, load, offline, reps) * 1e3, 2) +
          " ms");
    }
    table.add_row(row);
  };

  add_row("FFTW (0)", abft::Options::none(), Load::kNone, false);
  add_row("Opt-Offline (0)", abft::Options::offline_opt(true), Load::kNone,
          true);
  add_row("Opt-Offline (1m)", abft::Options::offline_opt(true), Load::kOneMem,
          true);
  add_row("Opt-Online (0)", abft::Options::online_opt(true), Load::kNone,
          false);
  add_row("Opt-Online (1c)", abft::Options::online_opt(true), Load::kOneComp,
          false);
  add_row("Opt-Online (1m+1c)", abft::Options::online_opt(true),
          Load::kOneMemOneComp, false);
  add_row("Opt-Online (1m+2c)", abft::Options::online_opt(true),
          Load::kOneMemTwoComp, false);
  table.print();
  std::printf(
      "\nshape check: Opt-Offline(1m) ~ 2x Opt-Offline(0); Opt-Online rows "
      "stay flat as the fault count grows.\n");
  return 0;
}
