// Google-benchmark rows for the real-input transforms (PR 8): the headline
// comparison is BM_R2c vs BM_ComplexForwardBaseline at equal n — the
// conjugate-symmetry packing runs an n/2-point in-place complex transform
// plus an O(n) split pass, so r2c should come in well under the same-length
// complex forward (the PR claims >= 1.5x at 2^16..2^20). The protected rows
// price the ABFT overhead on top, and the c2r rows cover the inverse side.
#include <benchmark/benchmark.h>

#include <vector>

#include "abft/options.hpp"
#include "abft/real_protection.hpp"
#include "bench_backend.hpp"
#include "common/rng.hpp"
#include "fft/inplace_radix2.hpp"
#include "fft/real_fft.hpp"

namespace {

using namespace ftfft;
using ftfft::bench::use_backend;

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  const auto z = random_vector(n, InputDistribution::kUniform, seed);
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) x[j] = z[j].real();
  return x;
}

// The yardstick the headline ratio divides by: the optimized in-place
// complex forward of the SAME length n that a caller without r2c would run
// on the zero-padded-imaginary signal.
void BM_ComplexForwardBaseline(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 81);
  const auto plan = fft::InplaceRadix2Plan::get(n);
  for (auto _ : state) {
    plan->forward(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_ComplexForwardBaseline, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_ComplexForwardBaseline, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

void BM_R2c(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_signal(n, 82);
  std::vector<cplx> spec(n / 2 + 1);
  const auto plan = fft::RealFftPlan::get(n);
  for (auto _ : state) {
    plan->r2c(x.data(), spec.data());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_R2c, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_R2c, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

void BM_C2r(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_signal(n, 83);
  std::vector<cplx> spec(n / 2 + 1);
  std::vector<double> back(n);
  const auto plan = fft::RealFftPlan::get(n);
  plan->r2c(x.data(), spec.data());
  for (auto _ : state) {
    plan->c2r(spec.data(), back.data());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_C2r, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_C2r, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

void BM_ProtectedR2c(benchmark::State& state, bool fused) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_signal(n, 84);
  std::vector<cplx> spec(n / 2 + 1);
  abft::Options opts = abft::Options::online_opt(true);
  opts.fused_checksums = fused;
  const auto plan = abft::RealProtectionPlan::get(n);
  const auto cplan = abft::resolve_real_packed_plan(n, opts);
  abft::Stats stats;
  for (auto _ : state) {
    abft::protected_r2c(x.data(), spec.data(), n, opts, stats, plan.get(),
                        cplan.get());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_ProtectedR2c, separate, false)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_ProtectedR2c, fused, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

void BM_ProtectedC2r(benchmark::State& state, bool fused) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_signal(n, 85);
  std::vector<cplx> spec(n / 2 + 1);
  std::vector<double> back(n);
  abft::Options opts = abft::Options::online_opt(true);
  opts.fused_checksums = fused;
  const auto plan = abft::RealProtectionPlan::get(n);
  const auto cplan = abft::resolve_real_packed_plan(n, opts);
  plan->real_plan().r2c(x.data(), spec.data());
  abft::Stats stats;
  for (auto _ : state) {
    abft::protected_c2r(spec.data(), back.data(), n, opts, stats, plan.get(),
                        cplan.get());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_ProtectedC2r, separate, false)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_ProtectedC2r, fused, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
