// Google-benchmark microbenchmarks of the FFT substrate and the protected
// transforms: per-size throughput of the engines every harness builds on.
//
// The FFT kernels run through the SIMD dispatcher (src/simd): the *_scalar
// variants force the scalar reference backend, the *_dispatched variants run
// whatever runtime detection picks (the label column shows which), so the
// single-lane SIMD speedup is the ratio of the two rows at equal size.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "abft/options.hpp"
#include "abft/inplace.hpp"
#include "abft/protected_fft.hpp"
#include "bench_backend.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"

namespace {

using namespace ftfft;
using ftfft::bench::use_backend;

void BM_FftForward(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 1);
  std::vector<cplx> out(n);
  fft::Fft engine(n);
  for (auto _ : state) {
    engine.execute(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_FftForward, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);
BENCHMARK_CAPTURE(BM_FftForward, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

void BM_FftInplaceRadix2(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 2);
  const auto plan = fft::InplaceRadix2Plan::get(n);
  for (auto _ : state) {
    plan->forward(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_FftInplaceRadix2, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);
BENCHMARK_CAPTURE(BM_FftInplaceRadix2, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

// The retained PR 4 schedule (pair-swap permute + radix-4 stages): the
// optimized/reference row pair at equal size is the PR 5 speedup.
void BM_FftInplaceRadix2Reference(benchmark::State& state) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 2);
  const auto plan = fft::InplaceRadix2Plan::get(n);
  for (auto _ : state) {
    plan->forward_radix4_reference(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftInplaceRadix2Reference)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

// Permute-only rows: the scattered pair-swap walk vs the COBRA tiled walk
// vs COBRA with the opener stage fused into tile write-back. These isolate
// the former ~35%-of-forward bit-reversal cost as tracked numbers.
void BM_InplacePermute(benchmark::State& state, int mode, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = fft::InplaceRadix2Plan::get(n);
  if (mode > 0 && !plan->cobra_enabled()) {
    state.SkipWithError("COBRA disabled at this size (below threshold)");
    return;
  }
  auto x = random_vector(n, InputDistribution::kUniform, 6);
  for (auto _ : state) {
    switch (mode) {
      case 0:
        plan->permute_pairswap(x.data());
        break;
      case 1:
        plan->permute_cobra(x.data());
        break;
      default:
        plan->permute_cobra_fused_opener(x.data());
        break;
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_InplacePermute, pairswap, 0, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_InplacePermute, cobra, 1, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_InplacePermute, cobra_fused_opener, 2, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);

// Per-stage-group rows: the cache-blocked small-stage streaming pass vs the
// whole-array tail passes (radix-16/radix-4 beyond the window). Together
// with the permute rows these decompose the full forward() cost.
void BM_InplaceStageGroup(benchmark::State& state, int group,
                          bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = fft::InplaceRadix2Plan::get(n);
  auto x = random_vector(n, InputDistribution::kUniform, 7);
  if (group == 1) {
    if (plan->tail_radix16_stages() + plan->tail_radix4_stages() == 0) {
      state.SkipWithError("no tail at this size (fits the cache window)");
      return;
    }
    std::string label = simd::simd_backend_name();
    label += " r16x" + std::to_string(plan->tail_radix16_stages()) + " r4x" +
             std::to_string(plan->tail_radix4_stages());
    state.SetLabel(label);
  }
  for (auto _ : state) {
    if (group == 0) {
      plan->blocked_stages_pass(x.data(), /*include_opener=*/true);
    } else {
      plan->tail_stages_pass(x.data());
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_InplaceStageGroup, blocked, 0, true)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20);
BENCHMARK_CAPTURE(BM_InplaceStageGroup, tail, 1, true)
    ->RangeMultiplier(4)
    ->Range(1 << 18, 1 << 20);

void BM_FftBluestein(benchmark::State& state) {
  use_backend(state, true);
  // Large prime: exercises the chirp-z path.
  const std::size_t n = 4099;
  auto x = random_vector(n, InputDistribution::kUniform, 3);
  std::vector<cplx> out(n);
  fft::Fft engine(n);
  for (auto _ : state) {
    engine.execute(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein);

void protected_bench(benchmark::State& state, const abft::Options& opts) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 4);
  std::vector<cplx> out(n);
  abft::Stats stats;
  abft::protected_transform(x.data(), out.data(), n, opts, stats);  // warm
  for (auto _ : state) {
    abft::Stats s;
    abft::protected_transform(x.data(), out.data(), n, opts, s);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_OfflineComp(benchmark::State& state) {
  protected_bench(state, abft::Options::offline_opt(false));
}
void BM_OnlineComp(benchmark::State& state) {
  protected_bench(state, abft::Options::online_opt(false));
}
void BM_OnlineMem(benchmark::State& state) {
  protected_bench(state, abft::Options::online_opt(true));
}
// Fused-checksum rows (PR 6) next to their separate-pass references: the
// same scheme with the checksum dots accumulated inside the FFT passes
// (Options::fused_checksums) instead of standalone sweeps.
void BM_OnlineCompFused(benchmark::State& state) {
  abft::Options opts = abft::Options::online_opt(false);
  opts.fused_checksums = true;
  protected_bench(state, opts);
}
void BM_OnlineMemFused(benchmark::State& state) {
  abft::Options opts = abft::Options::online_opt(true);
  opts.fused_checksums = true;
  protected_bench(state, opts);
}
BENCHMARK(BM_OfflineComp)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineComp)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineCompFused)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineMem)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineMemFused)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_InplaceOnline(benchmark::State& state) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 5);
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = x;
    state.ResumeTiming();
    abft::Stats s;
    abft::inplace_online_transform(copy.data(), n,
                                   abft::Options::online_opt(true), s);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_InplaceOnline)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
