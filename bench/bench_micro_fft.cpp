// Google-benchmark microbenchmarks of the FFT substrate and the protected
// transforms: per-size throughput of the engines every harness builds on.
//
// The FFT kernels run through the SIMD dispatcher (src/simd): the *_scalar
// variants force the scalar reference backend, the *_dispatched variants run
// whatever runtime detection picks (the label column shows which), so the
// single-lane SIMD speedup is the ratio of the two rows at equal size.
#include <benchmark/benchmark.h>

#include <vector>

#include "abft/options.hpp"
#include "abft/inplace.hpp"
#include "abft/protected_fft.hpp"
#include "bench_backend.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"

namespace {

using namespace ftfft;
using ftfft::bench::use_backend;

void BM_FftForward(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 1);
  std::vector<cplx> out(n);
  fft::Fft engine(n);
  for (auto _ : state) {
    engine.execute(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_FftForward, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);
BENCHMARK_CAPTURE(BM_FftForward, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

void BM_FftInplaceRadix2(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 2);
  const auto plan = fft::InplaceRadix2Plan::get(n);
  for (auto _ : state) {
    plan->forward(x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_FftInplaceRadix2, scalar, false)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);
BENCHMARK_CAPTURE(BM_FftInplaceRadix2, dispatched, true)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20);

void BM_FftBluestein(benchmark::State& state) {
  use_backend(state, true);
  // Large prime: exercises the chirp-z path.
  const std::size_t n = 4099;
  auto x = random_vector(n, InputDistribution::kUniform, 3);
  std::vector<cplx> out(n);
  fft::Fft engine(n);
  for (auto _ : state) {
    engine.execute(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein);

void protected_bench(benchmark::State& state, const abft::Options& opts) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 4);
  std::vector<cplx> out(n);
  abft::Stats stats;
  abft::protected_transform(x.data(), out.data(), n, opts, stats);  // warm
  for (auto _ : state) {
    abft::Stats s;
    abft::protected_transform(x.data(), out.data(), n, opts, s);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_OfflineComp(benchmark::State& state) {
  protected_bench(state, abft::Options::offline_opt(false));
}
void BM_OnlineComp(benchmark::State& state) {
  protected_bench(state, abft::Options::online_opt(false));
}
void BM_OnlineMem(benchmark::State& state) {
  protected_bench(state, abft::Options::online_opt(true));
}
BENCHMARK(BM_OfflineComp)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineComp)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_OnlineMem)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_InplaceOnline(benchmark::State& state) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 5);
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = x;
    state.ResumeTiming();
    abft::Stats s;
    abft::inplace_online_transform(copy.data(), n,
                                   abft::Options::online_opt(true), s);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_InplaceOnline)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
