// Ablation of the section-4 sequential optimizations.
//
// Starting from the fully optimized online memory-FT scheme, each switch is
// turned off one at a time:
//
//   ra_method     = naive trig generation instead of the recurrence (7.1.1)
//   combined      = classic r1/r2 memory checksums instead of reusing rA (4.1)
//   postpone      = verify inputs before every sub-FFT instead of folding the
//                   check into the CCV (4.2)
//   incremental   = regenerate intermediate checksums in a separate pass
//                   instead of accumulating them (4.3)
//   buffering     = strided checksum/FFT reads instead of contiguous staging
//                   (4.4)
//
// Expected: every ablation costs time; naive-rA and no-buffering hurt most
// (trig calls and cache misses — the two effects Fig. 7 highlights).
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;

double run_opts(std::size_t n, const abft::Options& opts, int reps) {
  auto x = random_vector(n, InputDistribution::kUniform, 21 + n);
  std::vector<cplx> out(n);
  abft::Stats s;
  abft::protected_transform(x.data(), out.data(), n, opts, s);  // warm
  return bench::time_best(reps, [&] {
    abft::Stats stats;
    abft::protected_transform(x.data(), out.data(), n, opts, stats);
  });
}

}  // namespace

int main() {
  bench::banner("Ablation of the section-4 optimizations",
                "Sections 4.1-4.4, SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 21);
  const int reps = static_cast<int>(scaled_runs(2));
  std::printf("N = %s, online scheme with memory FT\n\n",
              bench::size_label(n).c_str());

  const abft::Options base = abft::Options::online_opt(true);
  const double t_base = run_opts(n, base, reps);

  TablePrinter table({"Configuration", "Time", "vs fully optimized"});
  table.add_row({"fully optimized", TablePrinter::fixed(t_base * 1e3, 2) + " ms",
                 "+0.0%"});

  auto ablate = [&](const char* name,
                    const std::function<void(abft::Options&)>& tweak) {
    abft::Options opts = base;
    tweak(opts);
    const double t = run_opts(n, opts, reps);
    table.add_row({name, TablePrinter::fixed(t * 1e3, 2) + " ms",
                   (t >= t_base ? "+" : "") +
                       TablePrinter::fixed(bench::overhead_pct(t, t_base), 1) +
                       "%"});
  };
  ablate("- closed-form rA (naive trig)", [](abft::Options& o) {
    o.ra_method = checksum::RaGenMethod::kNaiveTrig;
  });
  ablate("- combined checksums (4.1)",
         [](abft::Options& o) { o.combined_checksums = false; });
  ablate("- verification postponing (4.2)",
         [](abft::Options& o) { o.postpone_mcv = false; });
  ablate("- incremental generation (4.3)",
         [](abft::Options& o) { o.incremental_mcg = false; });
  ablate("- contiguous buffering (4.4)",
         [](abft::Options& o) { o.contiguous_buffering = false; });
  ablate("all optimizations off", [](abft::Options& o) {
    o.ra_method = checksum::RaGenMethod::kNaiveTrig;
    o.combined_checksums = false;
    o.postpone_mcv = false;
    o.incremental_mcg = false;
    o.contiguous_buffering = false;
  });
  table.print();
  std::printf("\nshape check: every row above the first costs time; the "
              "all-off row approaches the naive Online bar of Fig. 7(b).\n");
  return 0;
}
