// Shared plumbing for the paper-reproduction benchmark harnesses.
//
// Every binary in bench/ regenerates one table or figure of the SC'17 paper
// and prints it in the same row/column structure. Problem sizes default to
// laptop scale and honor FTFFT_BENCH_SCALE (log2 shift on sizes) and
// FTFFT_BENCH_RUNS (percentage on repetition counts) so bigger machines can
// approach the paper's original sizes without code edits.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table_printer.hpp"
#include "common/timer.hpp"

namespace ftfft::bench {

/// Runs `fn` `reps` times and returns the minimum wall time in seconds
/// (minimum, not mean: scheduling noise only ever adds time).
inline double time_best(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.elapsed());
  }
  return best;
}

/// Percentage overhead of `t` over baseline `t0`.
inline double overhead_pct(double t, double t0) {
  return t0 > 0.0 ? (t - t0) / t0 * 100.0 : 0.0;
}

/// Prints the standard bench banner.
inline void banner(const char* title, const char* paper_ref) {
  std::printf("=== %s ===\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale shift: %+ld (FTFFT_BENCH_SCALE), runs: %zu%% "
              "(FTFFT_BENCH_RUNS)\n\n",
              bench_scale_shift(), bench_runs_percent());
}

/// "2^k" label for power-of-two sizes, otherwise plain digits.
inline std::string size_label(std::size_t n) {
  if ((n & (n - 1)) == 0 && n > 0) {
    unsigned b = 0;
    std::size_t v = n;
    while (v >>= 1) ++b;
    return "2^" + std::to_string(b);
  }
  return std::to_string(n);
}

}  // namespace ftfft::bench
