// Google-benchmark microbenchmarks of the checksum primitives: these are
// the per-element costs behind the section-7 op-count model.
#include <benchmark/benchmark.h>

#include <vector>

#include "abft/dmr.hpp"
#include "checksum/dot.hpp"
#include "checksum/weights.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;

void BM_WeightedSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 1);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::weighted_sum(w.data(), x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WeightedSum)->RangeMultiplier(16)->Range(1 << 10, 1 << 18);

void BM_DualWeightedSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 2);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checksum::dual_weighted_sum(w.data(), x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DualWeightedSum)->RangeMultiplier(16)->Range(1 << 10, 1 << 18);

void BM_Omega3Sum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::omega3_weighted_sum(x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Omega3Sum)->RangeMultiplier(16)->Range(1 << 10, 1 << 18);

void BM_RaGenNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::input_checksum_vector(
        n, checksum::RaGenMethod::kNaiveTrig));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RaGenNaive)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

void BM_RaGenClosedForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::input_checksum_vector(
        n, checksum::RaGenMethod::kClosedForm));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RaGenClosedForm)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

void BM_DmrTwiddle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 4);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abft::dmr_twiddle_multiply(
        x.data(), 1, out.data(), n, n * 4, 3, 0, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DmrTwiddle)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
