// Google-benchmark microbenchmarks of the checksum primitives: these are
// the per-element costs behind the section-7 op-count model.
//
// The stride-1 dot products dispatch to the active SIMD backend; the
// *_scalar vs *_dispatched variants measure the reference chain against the
// vector kernels (label column = backend that actually ran).
#include <benchmark/benchmark.h>

#include <vector>

#include "abft/dmr.hpp"
#include "bench_backend.hpp"
#include "checksum/dot.hpp"
#include "checksum/multi_error.hpp"
#include "checksum/weights.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;
using ftfft::bench::use_backend;

void BM_WeightedSum(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 1);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::weighted_sum(w.data(), x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_WeightedSum, scalar, false)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_WeightedSum, dispatched, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);

void BM_DualWeightedSum(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 2);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checksum::dual_weighted_sum(w.data(), x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_DualWeightedSum, scalar, false)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_DualWeightedSum, dispatched, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);

void BM_DualPlainSumRobust(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kNormal, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::dual_plain_sum_robust(x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_DualPlainSumRobust, scalar, false)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_DualPlainSumRobust, dispatched, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);

// Syndrome generation for the multi-error budget (PR 9): 2t weighted
// moment sums per protected block. t = 1 is the opt-in floor (twice the
// dual-checksum moments), t = 4 the decoder's ceiling; the dispatched
// variant runs the SIMD syndrome_dot kernel over the plan-cached node
// table, the scalar variant generates u = j / n on the fly.
void BM_SyndromeSum(benchmark::State& state, int t, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 9);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  const auto nodes = checksum::shared_syndrome_nodes(n);
  const double* nodes2 = dispatched ? nodes->data() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checksum::syndrome_sum(w.data(), x.data(), n, 1, 2 * t, nodes2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_SyndromeSum, t1_scalar, 1, false)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_SyndromeSum, t1_dispatched, 1, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_SyndromeSum, t2_dispatched, 2, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_SyndromeSum, t4_dispatched, 4, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);

// Pure decode cost: locator solve + root extraction + Vandermonde solve +
// all-moment residual check, n-independent (the O(n) syndrome recompute is
// measured separately above). This is the price of one escalation attempt
// on the rare mismatch path.
void BM_SyndromeDecode(benchmark::State& state, int t) {
  const std::size_t n = 1 << 16;
  auto x = random_vector(n, InputDistribution::kUniform, 10);
  auto w = checksum::input_checksum_vector(n,
                                           checksum::RaGenMethod::kClosedForm);
  const auto nodes = checksum::shared_syndrome_nodes(n);
  const auto stored =
      checksum::syndrome_sum(w.data(), x.data(), n, 1, 2 * t, nodes->data());
  Rng rng(11);
  for (int e = 0; e < t; ++e) {
    x[rng.below(n)] += cplx{3.0 + e, -2.0};
  }
  const auto current =
      checksum::syndrome_sum(w.data(), x.data(), n, 1, 2 * t, nodes->data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checksum::locate_errors(stored, current, w.data(), n, 1e-9, t));
  }
}
BENCHMARK_CAPTURE(BM_SyndromeDecode, t1, 1);
BENCHMARK_CAPTURE(BM_SyndromeDecode, t2, 2);
BENCHMARK_CAPTURE(BM_SyndromeDecode, t4, 4);

void BM_Energy(benchmark::State& state, bool dispatched) {
  use_backend(state, dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::energy(x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Energy, scalar, false)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);
BENCHMARK_CAPTURE(BM_Energy, dispatched, true)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 18);

void BM_Omega3Sum(benchmark::State& state) {
  use_backend(state, true);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::omega3_weighted_sum(x.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Omega3Sum)->RangeMultiplier(16)->Range(1 << 10, 1 << 18);

void BM_RaGenNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::input_checksum_vector(
        n, checksum::RaGenMethod::kNaiveTrig));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RaGenNaive)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

void BM_RaGenClosedForm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checksum::input_checksum_vector(
        n, checksum::RaGenMethod::kClosedForm));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RaGenClosedForm)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

void BM_DmrTwiddle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_vector(n, InputDistribution::kUniform, 4);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abft::dmr_twiddle_multiply(
        x.data(), 1, out.data(), n, n * 4, 3, 0, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DmrTwiddle)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
