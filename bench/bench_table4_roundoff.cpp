// Reproduces Table 4: round-off error approximation quality.
//
// For many random inputs from U(-1,1) and N(0,1), measure the fault-free
// checksum residual |rX - (rA)x| of every m-point sub-FFT (layer 1) and
// every k-point sub-FFT (layer 2) of the online decomposition, and compare
// against (i) the paper's section-8 estimate (Est, the eta the paper would
// set) and (ii) the library's practical threshold. Throughput = fraction of
// verifications passing with the library threshold.
//
// Expected shape: Max < Est with headroom, throughput ~100%.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "checksum/dot.hpp"
#include "checksum/weights.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "roundoff/model.hpp"

namespace {

using namespace ftfft;

struct LayerResult {
  double max_resid = 0.0;
  double paper_est = 0.0;
  double practical = 0.0;
  std::size_t checks = 0;
  std::size_t flagged = 0;  // residual above the practical threshold
};

// Runs the two-layer decomposition of `runs` transforms of size n = m*k and
// collects residual statistics per layer.
void measure(std::size_t n, InputDistribution dist, std::size_t runs,
             LayerResult& layer1, LayerResult& layer2) {
  const auto [m, k] = balanced_split(n);
  const auto cm = checksum::input_checksum_vector(
      m, checksum::RaGenMethod::kClosedForm);
  const auto ck = checksum::input_checksum_vector(
      k, checksum::RaGenMethod::kClosedForm);
  fft::Fft fftm(m), fftk(k);
  const double sigma0 = component_sigma(dist);
  layer1.paper_est = roundoff::paper_eta(m, sigma0);
  layer2.paper_est =
      roundoff::paper_eta(k, std::sqrt(static_cast<double>(m)) * sigma0);

  std::vector<cplx> x(n), work(n), buf(std::max(m, k)), res(std::max(m, k));
  Rng rng(1000 + n);
  for (std::size_t run = 0; run < runs; ++run) {
    fill_random(x.data(), n, dist, rng);
    // Layer 1: k m-point sub-FFTs, stride k.
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t t = 0; t < m; ++t) buf[t] = x[t * k + i];
      const auto se = checksum::weighted_sum_energy(cm.data(), buf.data(), m);
      fftm.execute(buf.data(), work.data() + i * m);
      const cplx rx = checksum::omega3_weighted_sum(work.data() + i * m, m);
      const double resid = std::abs(rx - se.sum);
      const double eta = roundoff::practical_eta(
          m, std::sqrt(se.energy / (2.0 * static_cast<double>(m))));
      layer1.max_resid = std::max(layer1.max_resid, resid);
      layer1.practical = std::max(layer1.practical, eta);
      ++layer1.checks;
      if (resid > eta) ++layer1.flagged;
    }
    // Layer 2: m k-point sub-FFTs over twiddled columns.
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t i = 0; i < k; ++i) {
        buf[i] = cmul(work[i * m + c],
                      omega(n, static_cast<std::uint64_t>(i) * c));
      }
      const auto se = checksum::weighted_sum_energy(ck.data(), buf.data(), k);
      fftk.execute(buf.data(), res.data());
      const cplx rx = checksum::omega3_weighted_sum(res.data(), k);
      const double resid = std::abs(rx - se.sum);
      const double eta = roundoff::practical_eta(
          k, std::sqrt(se.energy / (2.0 * static_cast<double>(k))));
      layer2.max_resid = std::max(layer2.max_resid, resid);
      layer2.practical = std::max(layer2.practical, eta);
      ++layer2.checks;
      if (resid > eta) ++layer2.flagged;
    }
  }
}

}  // namespace

int main() {
  bench::banner("Round-off error approximation",
                "Table 4, SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 16);
  const std::size_t runs = scaled_runs(40);
  const auto [m, k] = balanced_split(n);
  std::printf("N = %s (m = %zu, k = %zu), %zu runs\n\n",
              bench::size_label(n).c_str(), m, k, runs);

  TablePrinter table({"Input", "Max 1", "Est 1 (paper)", "Eta 1 (lib)",
                      "Thput 1", "Max 2", "Est 2 (paper)", "Eta 2 (lib)",
                      "Thput 2"});
  for (InputDistribution dist :
       {InputDistribution::kUniform, InputDistribution::kNormal}) {
    LayerResult l1, l2;
    measure(n, dist, runs, l1, l2);
    const double thput1 =
        1.0 - static_cast<double>(l1.flagged) /
                  static_cast<double>(std::max<std::size_t>(l1.checks, 1));
    const double thput2 =
        1.0 - static_cast<double>(l2.flagged) /
                  static_cast<double>(std::max<std::size_t>(l2.checks, 1));
    table.add_row({dist == InputDistribution::kUniform ? "U(-1,1)" : "N(0,1)",
                   TablePrinter::sci(l1.max_resid),
                   TablePrinter::sci(l1.paper_est),
                   TablePrinter::sci(l1.practical),
                   TablePrinter::percent(thput1),
                   TablePrinter::sci(l2.max_resid),
                   TablePrinter::sci(l2.paper_est),
                   TablePrinter::sci(l2.practical),
                   TablePrinter::percent(thput2)});
  }
  table.print();
  std::printf(
      "\nshape check: Max < Eta (lib) with margin -> ~100%% throughput; the "
      "paper's Est sits in the same decade band.\n");
  return 0;
}
