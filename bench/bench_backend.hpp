// Shared helper for the Google-benchmark micro benches: pins the SIMD
// backend for one benchmark run (scalar reference vs the dispatched choice)
// and reports the backend that actually ran in the label column, so
// scalar-vs-dispatched rows are self-describing. "Dispatched" re-resolves
// the environment, so FTFFT_SIMD=... ./bench_micro_* forces those rows just
// like it forces the library default.
#pragma once

#include <benchmark/benchmark.h>

#include "simd/dispatch.hpp"

namespace ftfft::bench {

inline void use_backend(benchmark::State& state, bool dispatched) {
  simd::set_backend(dispatched ? simd::detail::resolve_from_env()
                               : simd::Backend::kScalar);
  state.SetLabel(simd::simd_backend_name());
}

}  // namespace ftfft::bench
