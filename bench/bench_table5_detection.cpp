// Reproduces Table 5: minimal magnitude of an injected error each scheme
// can detect, at three injection positions:
//
//   e1 - input, after checksum generation
//   e2 - intermediate result (input of the second sub-FFT layer)
//   e3 - final output
//
// The injected error adds 10^-d to one element; the bench sweeps d and
// reports the smallest detected magnitude. Expected shape (paper section
// 9.4.2): the online scheme detects errors several orders of magnitude
// smaller than the offline scheme, because its thresholds scale with the
// sqrt(N)-sized sub-FFTs instead of the whole transform.
#include <cmath>
#include <optional>
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace ftfft;

// Returns true if a fault of the given magnitude at the given position is
// detected (any detection/correction/restart recorded in the stats).
bool detected(std::size_t n, const abft::Options& base, fault::Phase phase,
              double magnitude) {
  auto x = random_vector(n, InputDistribution::kUniform, 77);
  std::vector<cplx> out(n);
  fault::Injector inj;
  inj.schedule(fault::FaultSpec::computational(phase, 0, n / 3,
                                               {magnitude, 0.0}));
  abft::Options opts = base;
  opts.injector = &inj;
  abft::Stats stats;
  try {
    abft::protected_transform(x.data(), out.data(), n, opts, stats);
  } catch (const UncorrectableError&) {
    return true;  // detected hard enough to give up: still detected
  }
  return stats.comp_errors_detected + stats.mem_errors_detected +
             stats.full_restarts >
         0;
}

// Smallest power-of-ten magnitude that is still detected (scan downward).
std::optional<double> min_detectable(std::size_t n, const abft::Options& base,
                                     fault::Phase phase) {
  std::optional<double> best;
  for (int d = 0; d <= 16; ++d) {
    const double magnitude = std::pow(10.0, -d);
    if (detected(n, base, phase, magnitude)) {
      best = magnitude;
    } else {
      break;  // thresholds are monotone: smaller will not be detected
    }
  }
  return best;
}

std::string fmt(const std::optional<double>& v) {
  return v.has_value() ? TablePrinter::sci(*v, 0) : std::string("none");
}

}  // namespace

int main() {
  bench::banner("Minimal detectable error magnitude",
                "Table 5, SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 18);
  std::printf("N = %s; error = +10^-d added to one element\n\n",
              bench::size_label(n).c_str());

  // The online scheme routes e2 through kIntermediate (column checksums),
  // e3 through kFinalOutput (postponed final verification). The offline
  // scheme sees every position through its single final comparison.
  struct Position {
    const char* name;
    fault::Phase phase;
  };
  const Position positions[] = {
      {"e1 (input)", fault::Phase::kInputAfterChecksum},
      {"e2 (intermediate)", fault::Phase::kIntermediate},
      {"e3 (final output)", fault::Phase::kFinalOutput},
  };

  TablePrinter table({"Scheme", "e1", "e2", "e3"});
  for (const auto& [name, opts] :
       {std::make_pair("Offline", abft::Options::offline_opt(true)),
        std::make_pair("Online", abft::Options::online_opt(true))}) {
    std::vector<std::string> row{name};
    for (const auto& pos : positions) {
      row.push_back(fmt(min_detectable(n, opts, pos.phase)));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nshape check: Online detects magnitudes orders of magnitude smaller "
      "than Offline at every position (paper: 1e-7/1e-6/1e-6 vs 1e-2).\n");
  return 0;
}
