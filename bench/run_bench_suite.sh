#!/usr/bin/env bash
# Runs the Google-benchmark micro benches with JSON output plus the
# self-timed batch-throughput bench, and consolidates everything into one
# BENCH_PR5.json — the start of a tracked perf trajectory (each PR appends a
# fresh snapshot under a new name instead of prose claims).
#
# Usage: bench/run_bench_suite.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR        cmake build tree holding the bench binaries (default:
#                    build)
#   OUT_JSON         consolidated output path (default: BUILD_DIR/BENCH_PR5.json)
# Environment:
#   BENCH_MIN_TIME   --benchmark_min_time per gbench binary, in seconds
#                    (default 0.05; CI smoke uses 0.01)
#   FTFFT_BENCH_RUNS / FTFFT_BENCH_SCALE are honored by the self-timed bench
#   as usual.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_JSON=${2:-${BUILD_DIR}/BENCH_PR5.json}
MIN_TIME=${BENCH_MIN_TIME:-0.05}

GBENCH_BINARIES=(bench_micro_fft bench_micro_checksum)
SELF_TIMED_BINARIES=(bench_batch_throughput)

if ! command -v python3 >/dev/null; then
  echo "run_bench_suite.sh: python3 is required to merge JSON" >&2
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "${workdir}"' EXIT

run_gbench() {
  # Google benchmark changed --benchmark_min_time from a bare double to a
  # suffixed duration ("0.05s") around v1.8; try the new syntax first and
  # fall back, so the suite runs against either library generation.
  local bin=$1 out=$2
  if ! "${BUILD_DIR}/${bin}" "--benchmark_min_time=${MIN_TIME}s" \
      --benchmark_format=json --benchmark_out="${out}" \
      --benchmark_out_format=json >/dev/null 2>&1; then
    "${BUILD_DIR}/${bin}" "--benchmark_min_time=${MIN_TIME}" \
      --benchmark_format=json --benchmark_out="${out}" \
      --benchmark_out_format=json >/dev/null
  fi
}

merge_args=()
for bin in "${GBENCH_BINARIES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "skipping ${bin} (not built — Google benchmark missing?)" >&2
    continue
  fi
  echo "running ${bin} (min_time=${MIN_TIME}s)..."
  run_gbench "${bin}" "${workdir}/${bin}.json"
  merge_args+=("${bin}=${workdir}/${bin}.json")
done

text_args=()
for bin in "${SELF_TIMED_BINARIES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "skipping ${bin} (not built)" >&2
    continue
  fi
  echo "running ${bin}..."
  "${BUILD_DIR}/${bin}" > "${workdir}/${bin}.txt"
  text_args+=("${bin}=${workdir}/${bin}.txt")
done

python3 - "${OUT_JSON}" "${#merge_args[@]}" "${merge_args[@]+"${merge_args[@]}"}" \
    "${text_args[@]+"${text_args[@]}"}" <<'PYEOF'
import json
import sys

out_path = sys.argv[1]
n_json = int(sys.argv[2])
pairs = sys.argv[3:]
json_pairs = pairs[:n_json]
text_pairs = pairs[n_json:]

merged = {"suite": "ftfft PR5 bench suite", "context": None,
          "benchmarks": [], "logs": {}}
for pair in json_pairs:
    name, path = pair.split("=", 1)
    with open(path) as f:
        doc = json.load(f)
    if merged["context"] is None:
        merged["context"] = doc.get("context", {})
    for row in doc.get("benchmarks", []):
        row["suite"] = name
        merged["benchmarks"].append(row)
for pair in text_pairs:
    name, path = pair.split("=", 1)
    with open(path) as f:
        merged["logs"][name] = f.read()

with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmark rows, "
      f"{len(merged['logs'])} self-timed logs")
PYEOF
