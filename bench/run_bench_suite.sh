#!/usr/bin/env bash
# Runs the Google-benchmark micro benches with JSON output plus the
# self-timed batch-throughput bench, and consolidates everything into one
# snapshot JSON — a tracked perf trajectory (each PR commits a fresh
# snapshot under a new name instead of prose claims). The snapshot name is
# a parameter, not a hardcoded constant: earlier revisions baked in
# BENCH_PR5.json, so every later PR silently overwrote the previous
# snapshot unless it remembered to pass the second positional argument.
#
# Usage: bench/run_bench_suite.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR        cmake build tree holding the bench binaries (default:
#                    build)
#   OUT_JSON         consolidated output path (default:
#                    BUILD_DIR/${BENCH_SNAPSHOT}.json)
# Environment:
#   BENCH_SNAPSHOT   snapshot stem used when OUT_JSON is not given and as
#                    the "suite" tag inside the JSON (default: BENCH_PR9)
#   BENCH_MIN_TIME   --benchmark_min_time per gbench binary, in seconds
#                    (default 0.05; CI smoke uses 0.01)
#   FTFFT_BENCH_RUNS / FTFFT_BENCH_SCALE are honored by the self-timed bench
#   as usual.
set -euo pipefail

BUILD_DIR=${1:-build}
SNAPSHOT=${BENCH_SNAPSHOT:-BENCH_PR9}
OUT_JSON=${2:-${BUILD_DIR}/${SNAPSHOT}.json}
MIN_TIME=${BENCH_MIN_TIME:-0.05}

GBENCH_BINARIES=(bench_micro_fft bench_micro_checksum bench_real_fft)
SELF_TIMED_BINARIES=(bench_batch_throughput bench_fig8_scaling)

if ! command -v python3 >/dev/null; then
  echo "run_bench_suite.sh: python3 is required to merge JSON" >&2
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "${workdir}"' EXIT

run_gbench() {
  # Google benchmark changed --benchmark_min_time from a bare double to a
  # suffixed duration ("0.05s") around v1.8; try the new syntax first and
  # fall back, so the suite runs against either library generation.
  local bin=$1 out=$2
  if ! "${BUILD_DIR}/${bin}" "--benchmark_min_time=${MIN_TIME}s" \
      --benchmark_format=json --benchmark_out="${out}" \
      --benchmark_out_format=json >/dev/null 2>&1; then
    "${BUILD_DIR}/${bin}" "--benchmark_min_time=${MIN_TIME}" \
      --benchmark_format=json --benchmark_out="${out}" \
      --benchmark_out_format=json >/dev/null
  fi
}

merge_args=()
for bin in "${GBENCH_BINARIES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "skipping ${bin} (not built — Google benchmark missing?)" >&2
    continue
  fi
  echo "running ${bin} (min_time=${MIN_TIME}s)..."
  run_gbench "${bin}" "${workdir}/${bin}.json"
  merge_args+=("${bin}=${workdir}/${bin}.json")
done

text_args=()
for bin in "${SELF_TIMED_BINARIES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "skipping ${bin} (not built)" >&2
    continue
  fi
  echo "running ${bin}..."
  "${BUILD_DIR}/${bin}" > "${workdir}/${bin}.txt"
  text_args+=("${bin}=${workdir}/${bin}.txt")
done

python3 - "${OUT_JSON}" "${SNAPSHOT}" "${#merge_args[@]}" \
    "${merge_args[@]+"${merge_args[@]}"}" \
    "${text_args[@]+"${text_args[@]}"}" <<'PYEOF'
import json
import sys

out_path = sys.argv[1]
snapshot = sys.argv[2]
n_json = int(sys.argv[3])
pairs = sys.argv[4:]
json_pairs = pairs[:n_json]
text_pairs = pairs[n_json:]

merged = {"suite": f"ftfft {snapshot} bench suite", "context": None,
          "benchmarks": [], "logs": {}}
for pair in json_pairs:
    name, path = pair.split("=", 1)
    with open(path) as f:
        doc = json.load(f)
    if merged["context"] is None:
        merged["context"] = doc.get("context", {})
    for row in doc.get("benchmarks", []):
        row["suite"] = name
        merged["benchmarks"].append(row)
for pair in text_pairs:
    name, path = pair.split("=", 1)
    with open(path) as f:
        merged["logs"][name] = f.read()

with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmark rows, "
      f"{len(merged['logs'])} self-timed logs")
PYEOF
