// Reproduces Table 6: distribution of output relative errors when one
// random high bit is flipped per run.
//
// For every run a random element of the input (after checksum generation)
// or of the final output is hit by a random high-bit flip, and the relative
// error ||x' - x||_inf / ||x||_inf of the produced spectrum against the
// fault-free one is recorded for three schemes: no correction, offline
// ABFT, online ABFT. "Uncorrected" counts runs whose repair failed
// (mislocalization / NaN contamination) — those count as infinite error, as
// in the paper.
//
// Expected shape (paper section 9.4.3): the online scheme leaves residuals
// orders of magnitude smaller than the offline scheme, and far fewer
// uncorrected runs than no correction at all.
#include <cmath>
#include <vector>

#include "abft/options.hpp"
#include "abft/protected_fft.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fault/bitflip.hpp"
#include "fft/fft.hpp"

namespace {

using namespace ftfft;

struct Outcome {
  SampleSet rel_errors;       // finite relative errors
  std::size_t uncorrected = 0;  // thrown / non-finite results
  std::size_t runs = 0;
};

struct FlipSpec {
  bool in_input = false;  // else: final output
  std::size_t element = 0;
  unsigned bit = 62;
  bool imag = false;
};

FlipSpec random_flip(Rng& rng, std::size_t n) {
  FlipSpec f;
  f.in_input = rng.below(2) == 0;
  f.element = rng.below(n);
  // High bits only: low-mantissa flips are masked by round-off (paper).
  f.bit = fault::kFirstHighBit +
          static_cast<unsigned>(
              rng.below(63 - fault::kFirstHighBit));  // 40..62, skip sign? no:
  // include the sign bit occasionally:
  if (rng.below(8) == 0) f.bit = 63;
  f.imag = rng.below(2) == 0;
  return f;
}

void record(Outcome& out, const std::vector<cplx>& truth,
            const std::vector<cplx>& got, double truth_norm) {
  ++out.runs;
  const double err =
      inf_diff(truth.data(), got.data(), truth.size()) / truth_norm;
  if (!std::isfinite(err)) {
    ++out.uncorrected;
    return;
  }
  out.rel_errors.add(err);
}

}  // namespace

int main() {
  bench::banner("Fault coverage under random high-bit flips",
                "Table 6, SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 16);
  const std::size_t runs = scaled_runs(200);
  std::printf("N = %s, %zu runs, 1 random high-bit flip per run\n\n",
              bench::size_label(n).c_str(), runs);

  auto x = random_vector(n, InputDistribution::kUniform, 123);
  const auto truth = fft::fft(x);
  const double truth_norm = inf_norm(truth.data(), n);

  Outcome none, offline, online;
  Rng rng(456);
  for (std::size_t run = 0; run < runs; ++run) {
    const FlipSpec flip = random_flip(rng, n);

    // --- no correction: flip applied around a plain FFT.
    {
      auto in = x;
      std::vector<cplx> out(n);
      if (flip.in_input) {
        in[flip.element] = {flip.imag ? in[flip.element].real()
                                      : fault::flip_bit(
                                            in[flip.element].real(), flip.bit),
                            flip.imag ? fault::flip_bit(
                                            in[flip.element].imag(), flip.bit)
                                      : in[flip.element].imag()};
      }
      fft::Fft engine(n);
      engine.execute(in.data(), out.data());
      if (!flip.in_input) {
        out[flip.element] = {
            flip.imag ? out[flip.element].real()
                      : fault::flip_bit(out[flip.element].real(), flip.bit),
            flip.imag ? fault::flip_bit(out[flip.element].imag(), flip.bit)
                      : out[flip.element].imag()};
      }
      record(none, truth, out, truth_norm);
    }

    // --- protected schemes.
    for (auto* outcome : {&offline, &online}) {
      const abft::Options base = outcome == &offline
                                     ? abft::Options::offline_opt(true)
                                     : abft::Options::online_opt(true);
      fault::Injector inj;
      inj.schedule(fault::FaultSpec::bit_flip(
          flip.in_input ? fault::Phase::kInputAfterChecksum
                        : fault::Phase::kFinalOutput,
          0, flip.element, flip.bit, flip.imag));
      abft::Options opts = base;
      opts.injector = &inj;
      auto in = x;
      std::vector<cplx> out(n);
      abft::Stats stats;
      ++outcome->runs;
      try {
        abft::protected_transform(in.data(), out.data(), n, opts, stats);
        const double err =
            inf_diff(truth.data(), out.data(), n) / truth_norm;
        if (!std::isfinite(err)) {
          ++outcome->uncorrected;
        } else {
          outcome->rel_errors.add(err);
        }
      } catch (const UncorrectableError&) {
        ++outcome->uncorrected;
      }
    }
  }

  TablePrinter table({"Scheme", "Uncorrected", ">1e-6", ">1e-8", ">1e-10",
                      ">1e-12"});
  auto add = [&](const char* name, const Outcome& o) {
    const double nruns = static_cast<double>(o.runs);
    auto above = [&](double t) {
      // Uncorrected runs count as infinite error at every threshold.
      const double frac =
          (o.rel_errors.fraction_above(t) *
               static_cast<double>(o.rel_errors.count()) +
           static_cast<double>(o.uncorrected)) /
          nruns;
      return TablePrinter::percent(frac, 1);
    };
    table.add_row({name,
                   TablePrinter::percent(
                       static_cast<double>(o.uncorrected) / nruns, 1),
                   above(1e-6), above(1e-8), above(1e-10), above(1e-12)});
  };
  add("No Correction", none);
  add("Offline", offline);
  add("Online", online);
  table.print();
  std::printf(
      "\nshape check: Online rows near 0%% until 1e-12; Offline grows "
      "through 1e-8..1e-12 (restart leaves full round-off of a second run); "
      "No Correction large everywhere.\n");
  return 0;
}
