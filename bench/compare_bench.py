#!/usr/bin/env python3
"""Diff two consolidated bench-suite snapshots (BENCH_*.json).

Matches benchmark rows by (suite, name), compares their median real time
(the gbench "median" aggregate when repetitions were used, the plain row
otherwise) and prints the per-benchmark delta. Exits nonzero when any
matched benchmark regressed by more than the threshold (default 10%), so
CI can surface a perf cliff — informationally: snapshots taken on
different machines or with smoke-level min_time are noisy, which is why
the threshold is a flag, not a constant.

Usage: bench/compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.10]
"""

import argparse
import json
import sys


def load_medians(path):
    """(suite, name) -> median real_time in ns, skipping non-time rows."""
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    aggregates = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        run_name = row.get("run_name", name)
        key = (row.get("suite", ""), run_name)
        t = row.get("real_time")
        if t is None:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                aggregates[key] = float(t)
        else:
            plain.setdefault(key, []).append(float(t))
    out = dict(aggregates)
    for key, times in plain.items():
        if key in out:
            continue  # a real median aggregate beats recomputing one
        times.sort()
        out[key] = times[len(times) // 2]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fractional regression that fails the run "
                         "(default 0.10 = +10%% time)")
    args = ap.parse_args()

    base = load_medians(args.baseline)
    cand = load_medians(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("compare_bench: no benchmarks in common "
              f"({len(base)} baseline rows, {len(cand)} candidate rows)")
        return 0

    regressions = []
    width = max(len(f"{s}:{n}") for s, n in common)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'candidate':>12}"
          f"  {'delta':>8}")
    for key in common:
        b, c = base[key], cand[key]
        delta = (c - b) / b if b > 0 else 0.0
        label = f"{key[0]}:{key[1]}"
        mark = ""
        if delta > args.threshold:
            regressions.append((label, delta))
            mark = "  <-- regression"
        print(f"{label.ljust(width)}  {b:>10.0f}ns  {c:>10.0f}ns"
              f"  {delta:>+7.1%}{mark}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\n{len(only_base)} benchmark(s) only in baseline "
              f"(e.g. {only_base[0][0]}:{only_base[0][1]})")
    if only_cand:
        print(f"{len(only_cand)} benchmark(s) only in candidate "
              f"(e.g. {only_cand[0][0]}:{only_cand[0][1]})")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for label, delta in regressions:
            print(f"  {label}: {delta:+.1%}")
        return 1
    print(f"\nno regression beyond {args.threshold:.0%} across "
          f"{len(common)} matched benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
