// Reproduces Table 2: strong-scaling execution time of opt-FT-FFTW when
// faults strike (0 / 2m / 2c / 2m+2c), fixed N, growing rank count.
//
// Expected shape (paper section 9.3.2): all rows essentially identical —
// each fault only re-runs one p-point or sqrt(n_loc)-point sub-FFT, so
// recovery cost vanishes in the simulated makespan.
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_fft.hpp"

namespace {

using namespace ftfft;
using bench::size_label;
using parallel::ParallelOptions;
using parallel::ParallelReport;

enum class Load { kNone, kTwoMem, kTwoComp, kTwoMemTwoComp };

// Injects the load spread over ranks, as in the paper ("faults are injected
// in each processor").
std::function<void(std::size_t, fault::Injector&)> make_arm(Load load) {
  return [load](std::size_t rank, fault::Injector& inj) {
    using fault::FaultSpec;
    using fault::Phase;
    const bool mem = load == Load::kTwoMem || load == Load::kTwoMemTwoComp;
    const bool comp = load == Load::kTwoComp || load == Load::kTwoMemTwoComp;
    if (mem && rank == 0) {
      inj.schedule(FaultSpec::memory_set(Phase::kCommBlock, 1, 3,
                                         {21.0, -4.0}));
    }
    if (mem && rank == 1) {
      inj.schedule(FaultSpec::memory_set(Phase::kFinalOutput, 0, 9,
                                         {-17.0, 8.0}));
    }
    if (comp && rank == 0) {
      inj.schedule(FaultSpec::computational(Phase::kRankFft1Output, 1, 1,
                                            {5.0, 5.0}));
    }
    if (comp && rank == 2 % 4) {
      inj.schedule(FaultSpec::computational(Phase::kKFftOutput, 2, 2,
                                            {-3.0, 7.0}));
    }
  };
}

double run_case(std::size_t p, std::size_t n, Load load) {
  auto x = random_vector(n, InputDistribution::kUniform, 3 + n + p);
  ParallelReport report;
  // Warm-up (no faults), then best of two measured fault-injected runs.
  (void)parallel::parallel_fft(p, x, ParallelOptions::opt_ft_fftw(), &report);
  double best = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    (void)parallel::parallel_fft(p, x, ParallelOptions::opt_ft_fftw(),
                                 &report, make_arm(load));
    best = std::min(best, report.makespan);
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("Parallel strong scaling with faults (opt-FT-FFTW)",
                "Table 2, SC'17 Liang et al.");
  const std::size_t n = scaled_size(std::size_t{1} << 20);
  std::printf("N = %s, simulated makespan\n\n", size_label(n).c_str());

  const std::vector<std::size_t> ps = {4, 8, 16, 32};
  TablePrinter table({"Load", "p=4", "p=8", "p=16", "p=32"});
  const std::pair<const char*, Load> rows[] = {
      {"opt-FT-FFTW (0)", Load::kNone},
      {"opt-FT-FFTW (2m)", Load::kTwoMem},
      {"opt-FT-FFTW (2c)", Load::kTwoComp},
      {"opt-FT-FFTW (2m+2c)", Load::kTwoMemTwoComp},
  };
  for (const auto& [name, load] : rows) {
    std::vector<std::string> row{name};
    for (std::size_t p : ps) {
      row.push_back(TablePrinter::fixed(run_case(p, n, load) * 1e3, 3) +
                    " ms");
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nshape check: the four rows coincide within noise — multi-fault "
      "recovery is effectively free online.\n");
  return 0;
}
