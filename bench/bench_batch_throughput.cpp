// Throughput of the batched protected-FFT engine.
//
// Not a paper figure: this measures the production-path question the paper
// leaves open — how fast can many independent online-protected transforms
// run at once? A batch of lanes is executed (a) as a serial loop on one
// thread and (b) on BatchEngine at several worker counts; the table reports
// transforms/second and the speedup over the serial loop. A second table
// splits a batch into ABFT setup vs transform time to show the
// ProtectionPlan amortization (setup once per batch instead of per lane),
// and a third compares the fused radix-4 in-place kernel against the
// classic radix-2 schedule on single transforms. A fourth table measures
// the async submission pipeline: the same work split into many jobs,
// submitted blocking one-by-one vs queued all at once through
// submit_batch futures (workers flow into the next job while stragglers
// finish the previous one). The run ends with the per-cache plan
// statistics snapshot (ftfft::plan_cache_stats) so FTFFT_PLAN_CACHE_CAP
// can be tuned from observed hit/miss/eviction rates.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "abft/protection_plan.hpp"
#include "bench_util.hpp"
#include "checksum/weights.hpp"
#include "common/rng.hpp"
#include "core/ftfft.hpp"
#include "fft/inplace_radix2.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace ftfft;

double batch_seconds(engine::BatchEngine& eng,
                     const std::vector<std::vector<cplx>>& inputs,
                     std::size_t n, int reps) {
  const std::size_t lanes = inputs.size();
  std::vector<std::vector<cplx>> ins(lanes);
  std::vector<std::vector<cplx>> outs(lanes, std::vector<cplx>(n));
  std::vector<engine::Lane> batch(lanes);
  engine::BatchOptions opts;
  opts.abft = abft::Options::online_opt(true);
  return bench::time_best(reps, [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      ins[l] = inputs[l];
      batch[l] = {ins[l].data(), outs[l].data(), nullptr};
    }
    (void)eng.transform_batch(batch, n, opts);
  });
}

double serial_seconds(const std::vector<std::vector<cplx>>& inputs,
                      std::size_t n, int reps) {
  const std::size_t lanes = inputs.size();
  std::vector<std::vector<cplx>> outs(lanes, std::vector<cplx>(n));
  const abft::Options opts = abft::Options::online_opt(true);
  return bench::time_best(reps, [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      auto x = inputs[l];
      abft::Stats stats;
      abft::protected_transform(x.data(), outs[l].data(), n, opts, stats);
    }
  });
}

}  // namespace

int main() {
  bench::banner("batch engine throughput",
                "production extension (no paper figure); TurboFFT-style "
                "batched fault-tolerant execution");

  const std::size_t n = scaled_size(4096);
  const std::size_t lanes = 64;
  const int reps = static_cast<int>(scaled_runs(5));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<std::vector<cplx>> inputs;
  inputs.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    inputs.push_back(
        random_vector(n, InputDistribution::kUniform, 1000 + l));
  }

  std::printf("batch: %zu lanes x %zu-point online-protected FFTs "
              "(hardware_concurrency = %u, SIMD backend: %s)\n\n",
              lanes, n, hw, simd::simd_backend_name());

  const double t_serial = serial_seconds(inputs, n, reps);
  TablePrinter table({"config", "time (ms)", "transforms/s", "speedup"});
  table.add_row({"serial loop (1 thread)",
                 TablePrinter::fixed(t_serial * 1e3, 2),
                 TablePrinter::fixed(static_cast<double>(lanes) / t_serial, 0),
                 "1.00"});

  std::vector<unsigned> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  for (unsigned t : thread_counts) {
    engine::BatchEngine eng(t);
    const double sec = batch_seconds(eng, inputs, n, reps);
    char label[64];
    std::snprintf(label, sizeof label, "BatchEngine (%u threads)", t);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", t_serial / sec);
    table.add_row({label, TablePrinter::fixed(sec * 1e3, 2),
                   TablePrinter::fixed(static_cast<double>(lanes) / sec, 0),
                   speedup});
  }
  table.print();

  // ------------------------------------------------- setup vs transform
  // The per-(n, options) ABFT setup — rA checksum vectors for both layers,
  // balanced split, threshold coefficients, staging layout — lives in a
  // cached ProtectionPlan. The batch engine resolves it once per batch, so
  // the old per-lane rebuild cost (lanes x build) collapses to one build.
  std::printf("\nsetup vs transform split (ProtectionPlan amortization)\n\n");
  const abft::Options popts = abft::Options::online_opt(true);
  const auto pplan = abft::ProtectionPlan::get(n, abft::Scheme::kOnline,
                                               popts);
  // What every lane used to rebuild per call: DMR-protected rA generation
  // for both layers (the weight cache is bypassed on purpose — this is the
  // pre-plan cost).
  const double t_build = bench::time_best(
      static_cast<int>(scaled_runs(20)), [&] {
        const auto cm =
            checksum::input_checksum_vector_dmr(pplan->m(), popts.ra_method);
        const auto ck =
            checksum::input_checksum_vector_dmr(pplan->k(), popts.ra_method);
        (void)cm;
        (void)ck;
      });
  engine::BatchEngine warm_eng(hw);
  const double t_batch = batch_seconds(warm_eng, inputs, n, reps);
  // Each row's share is measured against its own transform wall time: the
  // per-lane rebuild belonged to the serial-loop world (t_serial), the
  // once-per-batch build to the multi-threaded engine batch (t_batch).
  TablePrinter split(
      {"path", "setup (us/batch)", "transform (ms)", "setup share"});
  const double setup_percall = static_cast<double>(lanes) * t_build;
  char share_percall[32], share_batched[32];
  std::snprintf(share_percall, sizeof share_percall, "%.1f%%",
                100.0 * setup_percall / (setup_percall + t_serial));
  std::snprintf(share_batched, sizeof share_batched, "%.2f%%",
                100.0 * t_build / (t_build + t_batch));
  split.add_row({"per-call (serial loop, setup per lane)",
                 TablePrinter::fixed(setup_percall * 1e6, 1),
                 TablePrinter::fixed(t_serial * 1e3, 2), share_percall});
  split.add_row({"batched (one ProtectionPlan per batch)",
                 TablePrinter::fixed(t_build * 1e6, 1),
                 TablePrinter::fixed(t_batch * 1e3, 2), share_batched});
  split.print();

  // Counter proof of the amortization: a repeat batch of the same size must
  // perform zero rA generation passes.
  {
    const auto before = checksum::ra_generations();
    const double unused = batch_seconds(warm_eng, inputs, n, 1);
    (void)unused;
    std::printf("\nrA generation passes during a warm %zu-lane batch: %llu "
                "(setup fully amortized)\n",
                lanes,
                static_cast<unsigned long long>(checksum::ra_generations() -
                                                before));
  }

  // --------------------------------------------------- async pipelining
  // A serving layer rarely sees one giant batch; it sees a stream of small
  // jobs. Submitting them all and collecting futures keeps the worker pool
  // saturated across job boundaries, where the blocking path inserts a
  // full drain between consecutive jobs.
  {
    const std::size_t jobs = 8;
    const std::size_t lanes_per_job = lanes / jobs;
    engine::BatchEngine eng(hw);
    engine::BatchOptions opts;
    opts.abft = abft::Options::online_opt(true);
    std::vector<std::vector<cplx>> ins(lanes);
    std::vector<std::vector<cplx>> outs(lanes, std::vector<cplx>(n));
    std::vector<engine::Lane> all_lanes(lanes);
    auto reset_lanes = [&] {
      for (std::size_t l = 0; l < lanes; ++l) {
        ins[l] = inputs[l];
        all_lanes[l] = {ins[l].data(), outs[l].data(), nullptr};
      }
    };
    const double t_blocking = bench::time_best(reps, [&] {
      reset_lanes();
      for (std::size_t j = 0; j < jobs; ++j) {
        (void)eng.transform_batch(
            {all_lanes.data() + j * lanes_per_job, lanes_per_job}, n, opts);
      }
    });
    const double t_pipelined = bench::time_best(reps, [&] {
      reset_lanes();
      std::vector<engine::BatchFuture> futures;
      futures.reserve(jobs);
      for (std::size_t j = 0; j < jobs; ++j) {
        futures.push_back(eng.submit_batch(
            {all_lanes.data() + j * lanes_per_job, lanes_per_job}, n, opts));
      }
      for (auto& f : futures) (void)f.get();
    });
    std::printf("\nasync pipeline: %zu jobs x %zu lanes on %u threads\n\n",
                jobs, lanes_per_job, hw);
    TablePrinter pipe({"submission", "time (ms)", "transforms/s", "speedup"});
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", t_blocking / t_pipelined);
    pipe.add_row({"blocking loop (drain per job)",
                  TablePrinter::fixed(t_blocking * 1e3, 2),
                  TablePrinter::fixed(static_cast<double>(lanes) / t_blocking,
                                      0),
                  "1.00"});
    pipe.add_row({"queued futures (submit all, then get)",
                  TablePrinter::fixed(t_pipelined * 1e3, 2),
                  TablePrinter::fixed(static_cast<double>(lanes) / t_pipelined,
                                      0),
                  speedup});
    pipe.print();
  }

  // ----------------------------------------------- scheduler observability
  // The admission-control counters a serving deployment scrapes: replay
  // the job stream as mixed-priority traffic (every third job high, every
  // third low and sheddable, deadlines on the high class) and print the
  // per-class scheduler snapshot — the feed for FTFFT_ENGINE_QUEUE_CAP and
  // the priority/deadline defaults.
  {
    const std::size_t jobs = 24;
    const std::size_t lanes_per_job = 4;
    engine::BatchEngine eng(hw);
    engine::BatchOptions opts;
    opts.abft = abft::Options::online_opt(true);
    std::vector<std::vector<cplx>> ins(jobs * lanes_per_job);
    std::vector<std::vector<cplx>> outs(jobs * lanes_per_job,
                                        std::vector<cplx>(n));
    std::vector<engine::Lane> all_lanes(jobs * lanes_per_job);
    for (std::size_t l = 0; l < all_lanes.size(); ++l) {
      ins[l] = inputs[l % lanes];
      all_lanes[l] = {ins[l].data(), outs[l].data(), nullptr};
    }
    std::vector<engine::BatchFuture> futures;
    futures.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
      switch (j % 3) {
        case 0:
          opts.submit.priority = engine::Priority::kHigh;
          opts.submit.deadline = std::chrono::seconds(5);
          opts.submit.cancellable = false;
          break;
        case 1:
          opts.submit.priority = engine::Priority::kNormal;
          opts.submit.deadline = std::chrono::nanoseconds{-1};
          opts.submit.cancellable = false;
          break;
        default:
          opts.submit.priority = engine::Priority::kLow;
          opts.submit.deadline = std::chrono::nanoseconds{-1};
          opts.submit.cancellable = true;
          break;
      }
      futures.push_back(eng.submit_batch(
          {all_lanes.data() + j * lanes_per_job, lanes_per_job}, n, opts));
    }
    for (auto& f : futures) (void)f.get();
    const auto st = eng.scheduler_stats();
    std::printf("\nper-class scheduler statistics (%zu mixed-priority jobs, "
                "queue cap %s)\n\n",
                jobs,
                st.queue_cap == 0 ? "unbounded"
                                  : std::to_string(st.queue_cap).c_str());
    TablePrinter sched({"class", "jobs", "lanes", "shed", "expired",
                        "queue p50 (us)", "queue p99 (us)", "run p99 (ms)"});
    for (const auto p : {engine::Priority::kHigh, engine::Priority::kNormal,
                         engine::Priority::kLow}) {
      const auto& c = st.at(p);
      sched.add_row({engine::priority_name(p), std::to_string(c.jobs_completed),
                     std::to_string(c.lanes_completed),
                     std::to_string(c.shed_lanes),
                     std::to_string(c.deadline_expired_lanes),
                     TablePrinter::fixed(c.queue_wait.p50 * 1e6, 1),
                     TablePrinter::fixed(c.queue_wait.p99 * 1e6, 1),
                     TablePrinter::fixed(c.run.p99 * 1e3, 2)});
    }
    sched.print();
  }

  std::printf("\nradix-4 vs radix-2 in-place kernel (single transform)\n\n");
  TablePrinter kernel_table({"n", "radix-2 (us)", "radix-4 (us)", "speedup"});
  for (std::size_t kn : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    const auto plan = fft::InplaceRadix2Plan::get(kn);
    auto base = random_vector(kn, InputDistribution::kUniform, 7);
    std::vector<cplx> work(kn);
    const int kernel_reps = static_cast<int>(scaled_runs(40));
    const double t2 = bench::time_best(kernel_reps, [&] {
      std::copy(base.begin(), base.end(), work.begin());
      plan->forward_radix2(work.data());
    });
    const double t4 = bench::time_best(kernel_reps, [&] {
      std::copy(base.begin(), base.end(), work.begin());
      plan->forward(work.data());
    });
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", t2 / t4);
    kernel_table.add_row({bench::size_label(kn),
                          TablePrinter::fixed(t2 * 1e6, 1),
                          TablePrinter::fixed(t4 * 1e6, 1), speedup});
  }
  kernel_table.print();

  // ------------------------------------------------- plan cache traffic
  // The tuning feed for FTFFT_PLAN_CACHE_CAP: steady evictions with a low
  // hit rate mean the bound is thrashing for this traffic mix.
  std::printf("\nplan cache statistics (FTFFT_PLAN_CACHE_CAP = %zu)\n\n",
              plan_cache_capacity());
  TablePrinter caches(
      {"cache", "size", "capacity", "hits", "misses", "evictions"});
  for (const PlanCacheStats& s : plan_cache_stats()) {
    caches.add_row({s.name, std::to_string(s.size),
                    s.capacity == 0 ? "unbounded" : std::to_string(s.capacity),
                    std::to_string(s.hits), std::to_string(s.misses),
                    std::to_string(s.evictions)});
  }
  caches.print();
  return 0;
}
