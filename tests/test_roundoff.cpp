#include "roundoff/model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "checksum/dot.hpp"
#include "checksum/weights.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace ftfft {
namespace {

TEST(RoundoffModel, SigmaEpsMagnitude) {
  const double s = roundoff::sigma_eps();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1e-15);
  EXPECT_NEAR(s, 0.458257569 * 0x1.0p-52, 1e-20);
}

TEST(RoundoffModel, PhiKnownValues) {
  EXPECT_NEAR(roundoff::phi(0.0), 0.5, 1e-12);
  EXPECT_NEAR(roundoff::phi(1.959964), 0.975, 1e-4);
  EXPECT_NEAR(roundoff::phi(-1.959964), 0.025, 1e-4);
  EXPECT_NEAR(roundoff::phi(8.0), 1.0, 1e-12);
}

TEST(RoundoffModel, ThroughputLimits) {
  // eta = 0: every fault-free run is flagged half the time in the model's
  // symmetric-tail formulation -> 1/(3 - 2*0.5) = 0.5.
  EXPECT_NEAR(roundoff::throughput(0.0, 1024, 1.0), 0.5, 1e-12);
  // Huge eta: nothing is flagged.
  EXPECT_NEAR(roundoff::throughput(1e6, 1024, 1.0), 1.0, 1e-9);
  // The paper's 3-sigma choice: 1 / (3 - 2*Phi(3)) ~ 0.9973.
  const double sigma = 2.0;
  const double eta3 = 3.0 * std::sqrt(1024.0) * sigma;
  EXPECT_NEAR(roundoff::throughput(eta3, 1024, sigma), 0.9973, 1e-3);
}

TEST(RoundoffModel, ThroughputMonotoneInEta) {
  double prev = 0.0;
  for (double eta = 0.0; eta < 10.0; eta += 0.5) {
    const double t = roundoff::throughput(eta, 256, 0.1);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(RoundoffModel, EtasGrowWithSize) {
  double prev_paper = 0.0, prev_practical = 0.0;
  for (std::size_t n = 16; n <= 1 << 16; n *= 4) {
    const double p = roundoff::paper_eta(n, 1.0);
    const double q = roundoff::practical_eta(n, 1.0);
    EXPECT_GT(p, prev_paper);
    EXPECT_GT(q, prev_practical);
    prev_paper = p;
    prev_practical = q;
  }
}

TEST(RoundoffModel, OnlineEtasRelations) {
  const auto etas = roundoff::online_etas(1024, 512, 0.577);
  EXPECT_GT(etas.eta_m, 0.0);
  EXPECT_GT(etas.eta_k, 0.0);
  EXPECT_GT(etas.eta_mem, 0.0);
  // The k-layer input has sqrt(m)-amplified components, so with m >= k its
  // threshold dominates the m-layer one.
  EXPECT_GT(etas.eta_k, etas.eta_m);
}

// The property that makes the whole library usable: across many random
// transforms, the fault-free checksum residual stays below practical_eta,
// i.e. the detector has (essentially) no false positives.
class NoFalsePositives
    : public ::testing::TestWithParam<std::tuple<std::size_t, InputDistribution>> {};

TEST_P(NoFalsePositives, ResidualBelowPracticalEta) {
  const auto [n, dist] = GetParam();
  const auto ra = checksum::input_checksum_vector(
      n, checksum::RaGenMethod::kClosedForm);
  fft::Fft engine(n);
  std::vector<cplx> out(n);
  Rng rng(1234 + n);
  double worst_ratio = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<cplx> x(n);
    fill_random(x.data(), n, dist, rng);
    const auto se = checksum::weighted_sum_energy(ra.data(), x.data(), n);
    engine.execute(x.data(), out.data());
    const cplx rx = checksum::omega3_weighted_sum(out.data(), n);
    const double sigma =
        std::sqrt(se.energy / (2.0 * static_cast<double>(n)));
    const double eta = roundoff::practical_eta(n, sigma);
    worst_ratio = std::max(worst_ratio, std::abs(rx - se.sum) / eta);
  }
  EXPECT_LT(worst_ratio, 1.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDistributions, NoFalsePositives,
    ::testing::Combine(::testing::Values<std::size_t>(64, 256, 1024, 4096),
                       ::testing::Values(InputDistribution::kUniform,
                                         InputDistribution::kNormal)),
    [](const auto& pi) {
      return "n" + std::to_string(std::get<0>(pi.param)) +
             (std::get<1>(pi.param) == InputDistribution::kUniform ? "_uniform"
                                                                   : "_normal");
    });

}  // namespace
}  // namespace ftfft
