// Engine-sharded parallel FFT: async API, plan caching, fault campaigns
// over the modeled network (link corruption, stragglers, rank failure with
// restart recovery), and parity with the thread-per-rank reference path.
//
// Every campaign asserts exact deterministic counter values, so running
// this suite under FTFFT_SIMD=scalar / avx2 / neon (CI does) proves the
// detection/correction outcomes are identical across backends.
#include "parallel/parallel_fft.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "checksum/weights.hpp"
#include "common/plan_registry.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "fft/fft.hpp"
#include "parallel/parallel_plan.hpp"

namespace ftfft {
namespace {

using parallel::ParallelOptions;
using parallel::ParallelReport;

void expect_matches_sequential(const std::vector<cplx>& x,
                               const std::vector<cplx>& got) {
  const auto want = fft::fft(x);
  const double tol = 1e-9 * static_cast<double>(x.size());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    ASSERT_NEAR(got[j].real(), want[j].real(), tol) << "j=" << j;
    ASSERT_NEAR(got[j].imag(), want[j].imag(), tol) << "j=" << j;
  }
}

TEST(ShardedFuture, AsyncSubmitCompletesWithReport) {
  const std::size_t p = 4, n = 4096;
  const auto x = random_vector(n, InputDistribution::kUniform, 71);
  auto fut = parallel::submit_parallel(p, x, ParallelOptions::opt_ft_fftw());
  ASSERT_TRUE(fut.valid());
  fut.wait();
  EXPECT_TRUE(fut.ready());
  ParallelReport report;
  const auto got = fut.get(&report);
  EXPECT_FALSE(fut.valid()) << "get() is one-shot";
  expect_matches_sequential(x, got);
  EXPECT_TRUE(report.sharded);
  EXPECT_EQ(report.rank_restarts, 0u);
  EXPECT_EQ(report.stats.comp_errors_detected, 0u);
  EXPECT_EQ(report.comm_stats.comm_errors_detected, 0u);
  // Three phases ran and were timed; comm/compute split is per phase.
  for (int ph = 0; ph < 3; ++ph) {
    EXPECT_GT(report.phases[ph].wall_seconds, 0.0) << "phase " << ph;
    EXPECT_GT(report.phases[ph].modeled_comm, 0.0) << "phase " << ph;
  }
  const std::size_t bsz = n / (p * p);
  EXPECT_EQ(report.bytes_per_rank, 3 * (p - 1) * (bsz + 2) * sizeof(cplx));
  EXPECT_THROW(parallel::ParallelFuture{}.wait(), std::invalid_argument);
}

TEST(ShardedFuture, RejectsBadGeometrySynchronously) {
  const auto x = random_vector(96, InputDistribution::kUniform, 72);
  EXPECT_THROW(parallel::submit_parallel(3, x, ParallelOptions::fftw()),
               std::invalid_argument);
  EXPECT_THROW(parallel::submit_parallel(8, x, ParallelOptions::fftw()),
               std::invalid_argument);
}

TEST(ShardedCampaign, OutcomesMatchReferencePathCounters) {
  // The same armed campaign (FFT1 computational fault, in-flight block
  // corruption, final-output memory fault) must produce the same detection
  // and correction counts on both execution substrates, and both must
  // deliver the exact spectrum.
  const std::size_t p = 4, n = 4096;
  const auto x = random_vector(n, InputDistribution::kUniform, 73);
  const auto arm = [](std::size_t rank, fault::Injector& inj) {
    if (rank == 1) {
      inj.schedule(fault::FaultSpec::computational(
          fault::Phase::kRankFft1Output, 3, 2, {7.0, -2.0}));
    }
    if (rank == 0) {
      inj.schedule(fault::FaultSpec::computational(fault::Phase::kCommBlock, 2,
                                                   9, {11.0, 3.0}));
    }
    if (rank == 2) {
      inj.schedule(fault::FaultSpec::memory_set(fault::Phase::kFinalOutput, 0,
                                                100, {42.0, -42.0}));
    }
  };
  ParallelReport ref, sh;
  const auto want =
      parallel::parallel_fft(p, x, ParallelOptions::opt_ft_fftw(), &ref, arm);
  const auto got = parallel::parallel_fft_sharded(
      p, x, ParallelOptions::opt_ft_fftw(), &sh, arm);
  expect_matches_sequential(x, want);
  expect_matches_sequential(x, got);
  EXPECT_EQ(sh.stats.comp_errors_detected, ref.stats.comp_errors_detected);
  EXPECT_EQ(sh.stats.sub_fft_retries, ref.stats.sub_fft_retries);
  EXPECT_EQ(sh.stats.mem_errors_corrected, ref.stats.mem_errors_corrected);
  EXPECT_EQ(sh.comm_stats.comm_errors_detected,
            ref.comm_stats.comm_errors_detected);
  EXPECT_EQ(sh.comm_stats.comm_errors_corrected,
            ref.comm_stats.comm_errors_corrected);
  EXPECT_EQ(sh.comm_stats.messages_received, ref.comm_stats.messages_received);
}

TEST(ShardedCampaign, FusedAndSeparateChecksumsIdenticalOutcomes) {
  // FFT2-layer faults, executed with the separate-pass and the fused
  // checksum engines: bit-identical spectra and identical campaign
  // outcomes (the acceptance gate for fusing the parallel path).
  const std::size_t p = 4, n = 4096;
  const auto x = random_vector(n, InputDistribution::kNormal, 74);
  const auto arm = [](std::size_t rank, fault::Injector& inj) {
    if (rank == 2) {
      inj.schedule(fault::FaultSpec::computational(fault::Phase::kMFftOutput,
                                                   5, 1, {4.0, 4.0}));
    }
    if (rank == 3) {
      inj.schedule(fault::FaultSpec::computational(fault::Phase::kKFftOutput,
                                                   7, 2, {-3.0, 1.0}));
    }
  };
  ParallelOptions separate = ParallelOptions::opt_ft_fftw();
  separate.fused_checksums = false;
  ParallelOptions fused = separate;
  fused.fused_checksums = true;
  ParallelReport rs, rf;
  const auto ys = parallel::parallel_fft_sharded(p, x, separate, &rs, arm);
  const auto yf = parallel::parallel_fft_sharded(p, x, fused, &rf, arm);
  expect_matches_sequential(x, ys);
  EXPECT_EQ(std::memcmp(ys.data(), yf.data(), n * sizeof(cplx)), 0);
  EXPECT_EQ(rs.stats.comp_errors_detected, rf.stats.comp_errors_detected);
  EXPECT_EQ(rs.stats.mem_errors_corrected, rf.stats.mem_errors_corrected);
  EXPECT_EQ(rs.comm_stats.comm_errors_corrected,
            rf.comm_stats.comm_errors_corrected);
}

TEST(ShardedCampaign, RankFailureRecoversWithinRestartBudget) {
  const std::size_t p = 4, n = 4096;
  const auto x = random_vector(n, InputDistribution::kUniform, 75);

  // Without a failover budget the node loss propagates, taxonomy intact.
  ParallelOptions failing = ParallelOptions::opt_ft_fftw();
  failing.net.fail_rank = 1;
  failing.net.fail_phase = 2;
  EXPECT_THROW(parallel::parallel_fft_sharded(p, x, failing), RankFailedError);

  // With one restart allowed, the transform completes exactly and the
  // report shows the absorbed failover; counters equal a clean run's.
  ParallelOptions recovering = failing;
  recovering.max_rank_restarts = 1;
  ParallelReport report;
  const auto got = parallel::parallel_fft_sharded(p, x, recovering, &report);
  expect_matches_sequential(x, got);
  EXPECT_EQ(report.rank_restarts, 1u);
  EXPECT_EQ(report.stats.comp_errors_detected, 0u);
  EXPECT_EQ(report.comm_stats.comm_errors_detected, 0u);
  // Accumulators were reset on restart: bytes reflect one clean pass.
  const std::size_t bsz = n / (p * p);
  EXPECT_EQ(report.bytes_per_rank, 3 * (p - 1) * (bsz + 2) * sizeof(cplx));
}

TEST(ShardedCampaign, RankFailurePlusTransientFaultStillExact) {
  // A transient FFT1 fault on one rank and a node loss on another, with a
  // restart budget: the restarted run recomputes from the (corrected-once)
  // input and still delivers the exact spectrum.
  const std::size_t p = 4, n = 1024;
  const auto x = random_vector(n, InputDistribution::kNormal, 76);
  ParallelOptions opts = ParallelOptions::opt_ft_fftw();
  opts.net.fail_rank = 2;
  opts.net.fail_phase = 1;
  opts.max_rank_restarts = 1;
  ParallelReport report;
  const auto got = parallel::parallel_fft_sharded(
      p, x, opts, &report, [](std::size_t rank, fault::Injector& inj) {
        if (rank == 0) {
          inj.schedule(fault::FaultSpec::computational(
              fault::Phase::kRankFft1Output, 1, 1, {5.0, 5.0}));
        }
      });
  expect_matches_sequential(x, got);
  EXPECT_EQ(report.rank_restarts, 1u);
}

TEST(ShardedCampaign, StragglerRankRaisesModeledComm) {
  const std::size_t p = 4, n = 4096;
  const auto x = random_vector(n, InputDistribution::kUniform, 77);
  ParallelReport clean, stalled;
  parallel::parallel_fft_sharded(p, x, ParallelOptions::opt_ft_fftw(), &clean);
  ParallelOptions opts = ParallelOptions::opt_ft_fftw();
  opts.net.stall_rank = 1;
  opts.net.stall_seconds = 1e-3;
  const auto got = parallel::parallel_fft_sharded(p, x, opts, &stalled);
  expect_matches_sequential(x, got);
  // Three phases x (p-1) stalled messages each.
  EXPECT_GE(stalled.max_comm,
            clean.max_comm + 3.0 * static_cast<double>(p - 1) * 1e-3 * 0.999);
}

TEST(ShardedPlan, WarmedSubmitDoesNoPlanOrRaWork) {
  // Unique geometry so no other test has warmed this entry.
  const std::size_t p = 8, n = 8 * 2048;
  parallel::warm_plans(p, n, /*protect=*/true);
  const auto builds_before = parallel::ParallelPlan::build_count();
  const auto ra_before = checksum::ra_generations();
  auto x = random_vector(n, InputDistribution::kUniform, 78);
  auto fut = parallel::submit_parallel(p, std::move(x),
                                       ParallelOptions::opt_ft_fftw());
  (void)fut.get();
  EXPECT_EQ(parallel::ParallelPlan::build_count(), builds_before)
      << "submit after warm_plans must not build plans";
  EXPECT_EQ(checksum::ra_generations(), ra_before)
      << "submit after warm_plans must not regenerate checksum weights";
}

TEST(ShardedPlan, RegisteredInPlanCacheStats) {
  parallel::warm_plans(4, 1024, true);
  bool found = false;
  for (const auto& cache : plan_cache_stats()) {
    if (std::string_view(cache.name) == "parallel-plan") {
      found = true;
      EXPECT_GE(cache.size, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ftfft
