// Queue semantics of the async submission pipeline.
//
// BatchEngine's serving contract: submissions from any number of threads
// enter one FIFO work queue, workers pull lanes across all queued jobs,
// and every submission's BatchFuture is fulfilled exactly once — including
// when jobs are cancelled mid-queue or the engine is destroyed with work
// still in flight. Correctness bar is the same as the blocking engine:
// bit-identical spectra to a serial loop, per-lane failure isolation, and
// the library's error taxonomy preserved through the future.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "abft/protection_plan.hpp"
#include "checksum/weights.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/ftfft.hpp"

namespace ftfft {
namespace {

std::vector<std::vector<cplx>> lane_inputs(std::size_t lanes, std::size_t n,
                                           std::uint64_t seed) {
  std::vector<std::vector<cplx>> ins;
  ins.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    ins.push_back(random_vector(n, InputDistribution::kUniform, seed + l));
  }
  return ins;
}

std::vector<std::vector<cplx>> serial_reference(
    const std::vector<std::vector<cplx>>& inputs, std::size_t n,
    const abft::Options& opts) {
  std::vector<std::vector<cplx>> outs(inputs.size(), std::vector<cplx>(n));
  for (std::size_t l = 0; l < inputs.size(); ++l) {
    auto x = inputs[l];
    abft::Stats stats;
    abft::protected_transform(x.data(), outs[l].data(), n, opts, stats);
  }
  return outs;
}

bool bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

// A one-job workload owning its buffers, so futures can outlive scopes.
struct Workload {
  std::vector<std::vector<cplx>> ins;
  std::vector<std::vector<cplx>> outs;
  std::vector<engine::Lane> lanes;

  Workload(std::size_t count, std::size_t n, std::uint64_t seed)
      : ins(lane_inputs(count, n, seed)),
        outs(count, std::vector<cplx>(n)),
        lanes(count) {
    for (std::size_t l = 0; l < count; ++l) {
      lanes[l] = {ins[l].data(), outs[l].data(), nullptr};
    }
  }
};

// Runs first in this binary (registration order): reads the env knob at
// engine construction, before any other test spawns engine threads.
TEST(AsyncEngineEnv, EngineThreadsKnobBoundsDefaultPool) {
  ASSERT_EQ(setenv("FTFFT_ENGINE_THREADS", "3", 1), 0);
  {
    engine::BatchEngine eng(0);
    EXPECT_EQ(eng.num_threads(), 3u);
  }
  // An explicit count wins over the env knob.
  {
    engine::BatchEngine eng(2);
    EXPECT_EQ(eng.num_threads(), 2u);
  }
  ASSERT_EQ(unsetenv("FTFFT_ENGINE_THREADS"), 0);
  engine::BatchEngine eng(0);
  EXPECT_GE(eng.num_threads(), 1u);
}

TEST(AsyncEngine, SubmitGetMatchesSerialReference) {
  const std::size_t n = 512;
  const std::size_t count = 16;
  const abft::Options opts = abft::Options::online_opt(true);
  Workload w(count, n, 2100);
  const auto reference = serial_reference(w.ins, n, opts);

  engine::BatchEngine eng(4);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  engine::BatchFuture future = eng.submit_batch(w.lanes, n, bopts);
  ASSERT_TRUE(future.valid());
  EXPECT_TRUE(future.wait_for(std::chrono::minutes(1)));
  const auto report = future.get();
  EXPECT_FALSE(future.valid());  // one-shot, like std::future
  EXPECT_EQ(report.lanes, count);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.cancelled_lanes, 0u);
  for (std::size_t l = 0; l < count; ++l) {
    EXPECT_TRUE(bit_identical(w.outs[l], reference[l])) << "lane=" << l;
  }
  EXPECT_EQ(eng.pending_jobs(), 0u);
}

TEST(AsyncEngine, ConcurrentSubmittersProduceBitIdenticalSpectra) {
  const std::size_t n = 512;
  const std::size_t lanes_per_job = 6;
  const std::size_t jobs_per_thread = 3;
  const std::size_t submitters = 4;
  const abft::Options opts = abft::Options::online_opt(true);

  std::vector<std::vector<Workload>> work;
  for (std::size_t t = 0; t < submitters; ++t) {
    std::vector<Workload> per_thread;
    for (std::size_t j = 0; j < jobs_per_thread; ++j) {
      per_thread.emplace_back(lanes_per_job, n,
                              3000 + 100 * t + lanes_per_job * j);
    }
    work.push_back(std::move(per_thread));
  }

  engine::BatchEngine eng(3);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  std::vector<std::vector<engine::BatchFuture>> futures(submitters);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t j = 0; j < jobs_per_thread; ++j) {
        futures[t].push_back(eng.submit_batch(work[t][j].lanes, n, bopts));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < submitters; ++t) {
    for (std::size_t j = 0; j < jobs_per_thread; ++j) {
      const auto report = futures[t][j].get();
      EXPECT_TRUE(report.all_ok()) << "t=" << t << " j=" << j;
      const auto reference = serial_reference(work[t][j].ins, n, opts);
      for (std::size_t l = 0; l < lanes_per_job; ++l) {
        EXPECT_TRUE(bit_identical(work[t][j].outs[l], reference[l]))
            << "t=" << t << " j=" << j << " lane=" << l;
      }
    }
  }
  EXPECT_EQ(eng.pending_jobs(), 0u);
}

TEST(AsyncEngine, SmallJobQueuedBehindLargeOneCompletesOutOfOrder) {
  // Workers advance to the next queued job as soon as the front job's
  // lanes are all claimed, so a tiny job queued behind a heavyweight one
  // overtakes the stragglers — completion order is by finish, not FIFO.
  const std::size_t big_n = 1 << 17;
  const std::size_t small_n = 64;
  const abft::Options opts = abft::Options::online_opt(true);
  Workload big(4, big_n, 4100);
  Workload small(1, small_n, 4200);

  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](const char* tag) {
    return [&, tag](engine::BatchReport&) {
      std::scoped_lock lock(order_mu);
      order.emplace_back(tag);
    };
  };

  engine::BatchEngine eng(2);
  engine::BatchOptions big_opts;
  big_opts.abft = opts;
  big_opts.chunk = 1;  // final big lane is claimed alone: a wide window
  engine::BatchOptions small_opts;
  small_opts.abft = opts;
  auto fb = eng.submit_batch(big.lanes, big_n, big_opts);
  auto fs = eng.submit_batch(small.lanes, small_n, small_opts);
  fb.then(record("big"));
  fs.then(record("small"));

  const auto small_report = fs.get();
  const auto big_report = fb.get();
  EXPECT_TRUE(small_report.all_ok());
  EXPECT_TRUE(big_report.all_ok());
  const auto small_ref = serial_reference(small.ins, small_n, opts);
  EXPECT_TRUE(bit_identical(small.outs[0], small_ref[0]));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order.front(), "small");
}

TEST(AsyncEngine, LaneExceptionsPropagateThroughTheFuture) {
  // n = 10 splits as 5*2 out of place but has no k*r*k shape, so the
  // in-place lane fails at plan resolution while its neighbor succeeds.
  const std::size_t n = 10;
  auto good = random_vector(n, InputDistribution::kUniform, 5);
  auto bad = random_vector(n, InputDistribution::kUniform, 6);
  std::vector<cplx> out_good(n);
  std::vector<engine::Lane> lanes{{good.data(), out_good.data(), nullptr},
                                  {bad.data(), nullptr, nullptr}};
  engine::BatchOptions bopts;
  bopts.abft = abft::Options::online_opt(true);

  engine::BatchEngine eng(2);
  auto future = eng.submit_batch(lanes, n, bopts);
  const auto report = future.get();
  EXPECT_EQ(report.failed_lanes, 1u);
  EXPECT_TRUE(report.errors[0].empty());
  ASSERT_TRUE(report.exceptions[1]);
  EXPECT_THROW(std::rethrow_exception(report.exceptions[1]),
               std::invalid_argument);
  // The future was consumed by get(); further use is caught misuse.
  EXPECT_THROW((void)future.get(), std::invalid_argument);
  EXPECT_THROW(future.wait(), std::invalid_argument);
  EXPECT_THROW((void)engine::BatchFuture{}.ready(), std::invalid_argument);
}

TEST(AsyncEngine, GetOnCopyInvalidatesThenOnOtherCopies) {
  // All copies observe one completion; once any copy's get() consumed the
  // report, a late then() on another copy is caught misuse rather than a
  // silent moved-from report.
  const std::size_t n = 128;
  Workload w(2, n, 12000);
  engine::BatchEngine eng(2);
  engine::BatchOptions bopts;
  bopts.abft = abft::Options::online_opt(true);
  auto f1 = eng.submit_batch(w.lanes, n, bopts);
  auto f2 = f1;  // copy shares the completion state
  EXPECT_TRUE(f1.get().all_ok());
  EXPECT_THROW(f2.then([](engine::BatchReport&) {}), std::invalid_argument);
  EXPECT_THROW((void)f2.get(), std::invalid_argument);
}

TEST(AsyncEngine, SingleShotBypassesTheQueueUnderLoad) {
  // The blocking single-lane fast path runs on the calling thread, so a
  // single-shot transform completes while a heavyweight queued batch is
  // still in flight — single-shot latency is not head-of-line blocked.
  const abft::Options opts = abft::Options::online_opt(true);
  engine::BatchEngine eng(1);
  Workload blocker(4, 1 << 16, 13000);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  auto fb = eng.submit_batch(blocker.lanes, 1 << 16, bopts);

  const std::size_t n = 256;
  auto in = random_vector(n, InputDistribution::kUniform, 13100);
  const auto reference = serial_reference({in}, n, opts);
  std::vector<cplx> out(n);
  auto x = in;
  const abft::Stats stats = eng.transform_one(x.data(), out.data(), n, opts);
  EXPECT_GT(stats.verifications, 0u);
  EXPECT_TRUE(bit_identical(out, reference[0]));
  // The queued batch is still pending: the single shot did not wait on it.
  EXPECT_GE(eng.pending_jobs(), 1u);
  EXPECT_TRUE(fb.get().all_ok());
}

TEST(AsyncEngine, SubmissionMisuseThrowsSynchronously) {
  engine::BatchEngine eng(2);
  engine::Lane null_lane{nullptr, nullptr, nullptr};
  EXPECT_THROW((void)eng.submit_batch({&null_lane, 1}, 8),
               std::invalid_argument);
  cplx one{1.0, 0.0};
  engine::Lane lane{&one, nullptr, nullptr};
  EXPECT_THROW((void)eng.submit_batch({&lane, 1}, 0), std::invalid_argument);
}

TEST(AsyncEngine, EmptySubmissionIsImmediatelyReady) {
  engine::BatchEngine eng(2);
  auto future = eng.submit_batch(std::span<const engine::Lane>{}, 8);
  EXPECT_TRUE(future.ready());
  bool ran = false;
  future.then([&](engine::BatchReport& r) {
    ran = true;  // already ready: runs inline on this thread
    EXPECT_EQ(r.lanes, 0u);
  });
  EXPECT_TRUE(ran);
  const auto report = future.get();
  EXPECT_EQ(report.lanes, 0u);
  EXPECT_TRUE(report.all_ok());
}

TEST(AsyncEngine, CancelSkipsQueuedLanesWithCancelledTaxonomy) {
  const abft::Options opts = abft::Options::online_opt(true);
  // One worker: the heavyweight front job keeps it busy long enough that
  // the cancel lands before any lane of the queued job starts.
  engine::BatchEngine eng(1);
  Workload blocker(4, 1 << 16, 5100);
  Workload victim(8, 256, 5200);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  auto fb = eng.submit_batch(blocker.lanes, 1 << 16, bopts);
  auto fv = eng.submit_batch(victim.lanes, 256, bopts);
  engine::BatchTicket ticket = fv.ticket();
  EXPECT_FALSE(ticket.cancelled());
  ticket.cancel();
  EXPECT_TRUE(ticket.cancelled());

  const auto victim_report = fv.get();
  EXPECT_EQ(victim_report.lanes, 8u);
  EXPECT_EQ(victim_report.cancelled_lanes, 8u);
  EXPECT_EQ(victim_report.failed_lanes, 8u);
  EXPECT_FALSE(victim_report.all_ok());
  for (std::size_t l = 0; l < victim_report.lanes; ++l) {
    ASSERT_TRUE(victim_report.exceptions[l]) << "lane=" << l;
    EXPECT_THROW(std::rethrow_exception(victim_report.exceptions[l]),
                 CancelledError)
        << "lane=" << l;
  }
  const auto blocker_report = fb.get();
  EXPECT_TRUE(blocker_report.all_ok());  // cancel touched only its own job

  // Cancelling a finished job is a harmless no-op.
  Workload after(2, 128, 5300);
  auto fa = eng.submit_batch(after.lanes, 128, bopts);
  auto late_ticket = fa.ticket();
  const auto after_report = fa.get();
  late_ticket.cancel();
  EXPECT_TRUE(after_report.all_ok());
}

TEST(AsyncEngine, MidRunCancellationPublishesConsistentCancelCounts) {
  // Regression for the finisher's read of the per-job cancelled counter:
  // when a cancel lands while workers are mid-batch, some lanes complete
  // and some skip, and the worker that finishes the job must observe every
  // increment the skipping workers published (release increments paired
  // with the finisher's acquire load — it previously leaned on the
  // completion counter's ordering by accident). Run under TSan in CI.
  const std::size_t n = 1 << 12;
  const abft::Options opts = abft::Options::online_opt(true);
  engine::BatchEngine eng(4);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  for (int round = 0; round < 8; ++round) {
    Workload work(16, n, 7000 + 10 * round);
    auto fut = eng.submit_batch(work.lanes, n, bopts);
    auto ticket = fut.ticket();
    std::thread canceller([&] { ticket.cancel(); });
    const auto report = fut.get();
    canceller.join();
    EXPECT_TRUE(ticket.cancelled());
    // The finisher's tally must agree with the per-lane error slots even
    // when the cancel raced the last lanes of the batch.
    std::size_t cancelled = 0;
    for (std::size_t l = 0; l < report.lanes; ++l) {
      if (!report.exceptions[l]) {
        // Completed lane: bit-identical result, untouched by the cancel.
        EXPECT_TRUE(report.errors[l].empty()) << "lane=" << l;
        continue;
      }
      EXPECT_THROW(std::rethrow_exception(report.exceptions[l]),
                   CancelledError)
          << "round=" << round << " lane=" << l;
      ++cancelled;
    }
    EXPECT_EQ(report.cancelled_lanes, cancelled) << "round=" << round;
    EXPECT_EQ(report.failed_lanes, cancelled) << "round=" << round;
  }
}

TEST(AsyncEngine, DestructionDrainsInFlightJobs) {
  const std::size_t n = 1024;
  const abft::Options opts = abft::Options::online_opt(true);
  std::vector<Workload> work;
  for (std::size_t j = 0; j < 6; ++j) work.emplace_back(5, n, 6000 + 10 * j);

  std::vector<engine::BatchFuture> futures;
  {
    engine::BatchEngine eng(2);
    engine::BatchOptions bopts;
    bopts.abft = opts;
    for (auto& w : work) futures.push_back(eng.submit_batch(w.lanes, n, bopts));
    // Engine dies here with jobs queued and executing: the destructor must
    // drain the queue and fulfill every future, not crash or abandon them.
  }
  for (std::size_t j = 0; j < work.size(); ++j) {
    ASSERT_TRUE(futures[j].ready()) << "job=" << j;
    const auto report = futures[j].get();
    EXPECT_TRUE(report.all_ok()) << "job=" << j;
    const auto reference = serial_reference(work[j].ins, n, opts);
    for (std::size_t l = 0; l < reference.size(); ++l) {
      EXPECT_TRUE(bit_identical(work[j].outs[l], reference[l]))
          << "job=" << j << " lane=" << l;
    }
  }
}

TEST(AsyncEngine, ThenCallbackFiresOnWorkerAfterCompletion) {
  const std::size_t n = 2048;
  Workload w(6, n, 7000);
  engine::BatchEngine eng(2);
  engine::BatchOptions bopts;
  bopts.abft = abft::Options::online_opt(true);

  std::atomic<int> calls{0};
  std::atomic<std::size_t> seen_lanes{0};
  auto future = eng.submit_batch(w.lanes, n, bopts);
  future.then([&](engine::BatchReport& r) {
    seen_lanes.store(r.lanes, std::memory_order_relaxed);
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  future.then([&](engine::BatchReport&) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  future.wait();
  // The completion contract: ready is published only after every callback
  // registered before completion has run, so wait() returning means both
  // fired.
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(seen_lanes.load(), 6u);
  EXPECT_TRUE(future.get().all_ok());
}

TEST(AsyncEngine, CoreSubmitBatchAndFtPlanWrapper) {
  const std::size_t n = 256;
  PlanConfig config;
  const abft::Options opts = make_abft_options(config);
  Workload w1(5, n, 8000);
  Workload w2(5, n, 8100);
  const auto ref1 = serial_reference(w1.ins, n, opts);
  const auto ref2 = serial_reference(w2.ins, n, opts);

  auto f1 = submit_batch(w1.lanes, n, config);
  FtPlan plan(n, config);
  auto f2 = plan.submit_batch(w2.lanes);
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  EXPECT_TRUE(r1.all_ok());
  EXPECT_TRUE(r2.all_ok());
  for (std::size_t l = 0; l < 5; ++l) {
    EXPECT_TRUE(bit_identical(w1.outs[l], ref1[l])) << "lane=" << l;
    EXPECT_TRUE(bit_identical(w2.outs[l], ref2[l])) << "lane=" << l;
  }
}

TEST(AsyncEngine, BlockingTransformBatchIsTheAsyncPath) {
  const std::size_t n = 512;
  const abft::Options opts = abft::Options::online_opt(true);
  Workload via_submit(7, n, 9000);
  Workload via_block(7, n, 9000);  // same seed: identical inputs

  engine::BatchEngine eng(3);
  engine::BatchOptions bopts;
  bopts.abft = opts;
  const auto r_async = eng.submit_batch(via_submit.lanes, n, bopts).get();
  const auto r_block = eng.transform_batch(via_block.lanes, n, bopts);
  EXPECT_TRUE(r_async.all_ok());
  EXPECT_TRUE(r_block.all_ok());
  for (std::size_t l = 0; l < 7; ++l) {
    EXPECT_TRUE(bit_identical(via_submit.outs[l], via_block.outs[l]))
        << "lane=" << l;
  }
}

// ------------------------------------------------------------ warm plans

TEST(WarmPlans, FirstSubmissionAfterWarmupDoesZeroRaGeneration) {
  // A size this binary has not touched: 1408 = 2^7 * 11 (3 does not divide
  // it, so the encoding is valid; it is square-free times a power of two,
  // so the in-place variant is expected to be skipped or supported without
  // affecting the out-of-place count).
  const std::size_t n = 1408;
  PlanConfig config;

  const auto gens_before_warm = checksum::ra_generations();
  const std::size_t resident = warm_plans({&n, 1}, config);
  EXPECT_GE(resident, 1u);
  // The warm-up itself paid the rA generation for this size's layers.
  EXPECT_GT(checksum::ra_generations(), gens_before_warm);

  Workload w(4, n, 10000);
  const auto gens_before_submit = checksum::ra_generations();
  const auto builds_before_submit = abft::ProtectionPlan::build_count();
  auto future = submit_batch(w.lanes, n, config);
  const auto report = future.get();
  EXPECT_TRUE(report.all_ok());
  // The whole point: submission found every plan resident — zero rA
  // passes, zero ProtectionPlan builds.
  EXPECT_EQ(checksum::ra_generations(), gens_before_submit);
  EXPECT_EQ(abft::ProtectionPlan::build_count(), builds_before_submit);
}

TEST(WarmPlans, OfflineSchemeCountsItsSingleSharedPlanOnce) {
  // Offline protection maps both the out-of-place and in-place entry
  // points to one Scheme::kOffline cache entry; the resident count must
  // report the distinct plan, not the two resolutions.
  const std::size_t n = 2816;  // 2^8 * 11, unused elsewhere in this binary
  PlanConfig config;
  config.protection = Protection::kOffline;
  EXPECT_EQ(warm_plans({&n, 1}, config), 1u);
}

TEST(WarmPlans, SkipsUnsupportedVariantsInsteadOfThrowing)
{
  // 9 = 3*3: the checksum encoding degenerates for both the out-of-place
  // split (3 divides both layers) and the k*r*k outer size, so nothing
  // becomes resident — but warm-up must not throw.
  const std::size_t bad = 9;
  EXPECT_EQ(warm_plans({&bad, 1}), 0u);
  // n = 1 is a degenerate no-op size.
  const std::size_t one = 1;
  (void)warm_plans({&one, 1});
}

// ------------------------------------------------------ wait_for edge cases

TEST(AsyncEngine, WaitForZeroOrNegativeTimeoutIsAPoll) {
  engine::BatchEngine eng(1);
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  auto fut = eng.submit_tasks(1, [&](std::size_t, abft::Stats&) {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return open; });
  });

  // The job is parked on the latch: zero and negative timeouts answer
  // "not ready" immediately instead of blocking for any duration.
  EXPECT_FALSE(fut.wait_for(std::chrono::nanoseconds::zero()));
  EXPECT_FALSE(fut.wait_for(std::chrono::milliseconds(-5)));
  EXPECT_FALSE(fut.ready());
  // A short positive timeout genuinely waits, then reports not-ready.
  EXPECT_FALSE(fut.wait_for(std::chrono::milliseconds(1)));

  {
    std::scoped_lock lk(mu);
    open = true;
  }
  cv.notify_all();
  fut.wait();
  // Ready futures answer true for any timeout, including the poll forms
  // (single acquire load, no lock).
  EXPECT_TRUE(fut.wait_for(std::chrono::nanoseconds::zero()));
  EXPECT_TRUE(fut.wait_for(std::chrono::milliseconds(-1)));
  EXPECT_TRUE(fut.wait_for(std::chrono::minutes(1)));
  EXPECT_TRUE(fut.get().all_ok());
}

TEST(AsyncEngine, WaitForOnInvalidFutureThrowsInvalidArgument) {
  engine::BatchFuture fut;  // default-constructed: no associated batch
  EXPECT_FALSE(fut.valid());
  EXPECT_THROW((void)fut.wait_for(std::chrono::nanoseconds::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)fut.ready(), std::invalid_argument);
}

// ------------------------------------------------------- plan cache stats

TEST(PlanCacheStatsExport, ReportsAllFourCaches) {
  const auto stats = plan_cache_stats();
  ASSERT_GE(stats.size(), 4u);
  auto find = [&](const char* name) -> const PlanCacheStats* {
    for (const auto& s : stats) {
      if (std::string(s.name) == name) return &s;
    }
    return nullptr;
  };
  for (const char* name : {"checksum-weights", "fft-plan", "inplace-plan",
                           "protection-plan"}) {
    const PlanCacheStats* s = find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->capacity, plan_cache_capacity()) << name;
  }
}

TEST(PlanCacheStatsExport, CountersMoveWithTraffic) {
  auto find = [](const std::vector<PlanCacheStats>& stats, const char* name) {
    for (const auto& s : stats) {
      if (std::string(s.name) == name) return s;
    }
    return PlanCacheStats{};
  };
  const std::size_t n = 704;  // 2^6 * 11: unused elsewhere in this binary
  const auto before = find(plan_cache_stats(), "protection-plan");
  auto x = random_vector(n, InputDistribution::kUniform, 11000);
  (void)abft::protected_fft(x, abft::Options::online_opt(true));
  const auto mid = find(plan_cache_stats(), "protection-plan");
  EXPECT_GT(mid.misses, before.misses);
  EXPECT_GT(mid.size, 0u);
  (void)abft::protected_fft(x, abft::Options::online_opt(true));
  const auto after = find(plan_cache_stats(), "protection-plan");
  EXPECT_GT(after.hits, mid.hits);
}

}  // namespace
}  // namespace ftfft
