// Infrastructure pieces: aligned buffers, timers, env knobs, error helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "common/aligned_buffer.hpp"
#include "common/complex.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace ftfft {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<cplx> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (const cplx& v : buf) EXPECT_EQ(v, (cplx{0.0, 0.0}));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(16);
  a[3] = 42.0;
  double* raw = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), raw);
  EXPECT_DOUBLE_EQ(b[3], 42.0);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
  AlignedBuffer<double> c(1);
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<cplx> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
}

TEST(Timers, WallTimerAdvances) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.elapsed(), 0.0);
}

TEST(Timers, ThreadCpuTimerMeasuresWork) {
  ThreadCpuTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  const double cpu = t.elapsed();
  EXPECT_GT(cpu, 0.0);
  EXPECT_LT(cpu, 10.0);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("FTFFT_TEST_SIZE", "123", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 123u);
  ::setenv("FTFFT_TEST_SIZE", "garbage", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::unsetenv("FTFFT_TEST_SIZE");
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::setenv("FTFFT_TEST_LONG", "-3", 1);
  EXPECT_EQ(env_long("FTFFT_TEST_LONG", 0), -3);
  ::unsetenv("FTFFT_TEST_LONG");
}

TEST(Env, RejectsTrailingGarbage) {
  // "4x" used to strtoul-truncate to 4; a typo'd knob must fall back (and
  // warn once), never half-apply.
  ::setenv("FTFFT_TEST_SIZE", "4x", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::setenv("FTFFT_TEST_SIZE", "123abc", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::setenv("FTFFT_TEST_SIZE", "1 2", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::unsetenv("FTFFT_TEST_SIZE");
  ::setenv("FTFFT_TEST_LONG", "-3x", 1);
  EXPECT_EQ(env_long("FTFFT_TEST_LONG", 5), 5);
  ::unsetenv("FTFFT_TEST_LONG");
}

TEST(Env, RejectsOutOfRangeAndNegative) {
  // Way past both long and size_t on any supported platform.
  ::setenv("FTFFT_TEST_SIZE", "99999999999999999999999999", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  // A negative count is invalid for the unsigned reader (strtoul would
  // silently wrap it to a huge value).
  ::setenv("FTFFT_TEST_SIZE", "-4", 1);
  EXPECT_EQ(env_size("FTFFT_TEST_SIZE", 7), 7u);
  ::unsetenv("FTFFT_TEST_SIZE");
  ::setenv("FTFFT_TEST_LONG", "99999999999999999999999999", 1);
  EXPECT_EQ(env_long("FTFFT_TEST_LONG", -2), -2);
  ::setenv("FTFFT_TEST_LONG", "-99999999999999999999999999", 1);
  EXPECT_EQ(env_long("FTFFT_TEST_LONG", -2), -2);
  ::unsetenv("FTFFT_TEST_LONG");
}

TEST(Env, FlagParsesSpellingsAndFallsBack) {
  for (const char* on : {"1", "on", "true", "yes"}) {
    ::setenv("FTFFT_TEST_FLAG", on, 1);
    EXPECT_TRUE(env_flag("FTFFT_TEST_FLAG", false)) << on;
  }
  for (const char* off : {"0", "off", "false", "no"}) {
    ::setenv("FTFFT_TEST_FLAG", off, 1);
    EXPECT_FALSE(env_flag("FTFFT_TEST_FLAG", true)) << off;
  }
  ::setenv("FTFFT_TEST_FLAG", "maybe", 1);
  EXPECT_TRUE(env_flag("FTFFT_TEST_FLAG", true));
  EXPECT_FALSE(env_flag("FTFFT_TEST_FLAG", false));
  ::unsetenv("FTFFT_TEST_FLAG");
  EXPECT_TRUE(env_flag("FTFFT_TEST_FLAG", true));
  EXPECT_FALSE(env_flag("FTFFT_TEST_FLAG", false));
}

TEST(Env, ScaledSizeShifts) {
  ::setenv("FTFFT_BENCH_SCALE", "2", 1);
  EXPECT_EQ(scaled_size(1024), 4096u);
  ::setenv("FTFFT_BENCH_SCALE", "-2", 1);
  EXPECT_EQ(scaled_size(1024), 256u);
  EXPECT_EQ(scaled_size(16, 16), 16u);  // clamped at min
  ::unsetenv("FTFFT_BENCH_SCALE");
  EXPECT_EQ(scaled_size(1024), 1024u);
}

TEST(Env, ScaledRunsPercentage) {
  ::setenv("FTFFT_BENCH_RUNS", "50", 1);
  EXPECT_EQ(scaled_runs(10), 5u);
  EXPECT_EQ(scaled_runs(1), 1u);  // never drops to zero
  ::setenv("FTFFT_BENCH_RUNS", "300", 1);
  EXPECT_EQ(scaled_runs(10), 30u);
  ::unsetenv("FTFFT_BENCH_RUNS");
}

TEST(ErrorHelpers, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(detail::require(true, "fine"));
  try {
    detail::require(false, "broken invariant");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

TEST(ErrorHelpers, UncorrectableErrorIsRuntimeError) {
  const UncorrectableError err("boom");
  const std::runtime_error& base = err;
  EXPECT_STREQ(base.what(), "boom");
}

}  // namespace
}  // namespace ftfft
