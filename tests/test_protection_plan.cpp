// ProtectionPlan + PlanRegistry: the cached per-(n, options) ABFT setup and
// the shared LRU bound over every process-wide plan cache.
#include "abft/protection_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "abft/protected_fft.hpp"
#include "checksum/weights.hpp"
#include "common/plan_registry.hpp"
#include "common/rng.hpp"
#include "core/ftfft.hpp"

namespace ftfft {
namespace {

using abft::Options;
using abft::ProtectionPlan;
using abft::Scheme;
using abft::Stats;

// Pin the plan-cache capacity before main() runs, i.e. before any lazily
// latched read of FTFFT_PLAN_CACHE_CAP: EnvKnobSetsCacheCapacity asserts
// the knob reaches the registries, and the small bound keeps eviction
// exercised underneath every other test in this file.
[[maybe_unused]] const bool kEnvPinned = [] {
  ::setenv("FTFFT_PLAN_CACHE_CAP", "3", 1);
  return true;
}();

// --------------------------------------------------------- PlanRegistry

TEST(PlanRegistry, BoundedLruEviction) {
  PlanRegistry<int, int> reg(2);
  std::atomic<int> builds{0};
  auto build = [&](int v) {
    return [&builds, v] {
      ++builds;
      return std::make_shared<const int>(v);
    };
  };
  EXPECT_EQ(*reg.get_or_build(1, build(1)), 1);
  EXPECT_EQ(*reg.get_or_build(2, build(2)), 2);
  EXPECT_EQ(reg.size(), 2u);
  // Touch 1 so it is most recently used, then insert 3: 2 must go.
  EXPECT_EQ(*reg.get_or_build(1, build(-1)), 1);
  EXPECT_EQ(*reg.get_or_build(3, build(3)), 3);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_EQ(builds.load(), 3);
  // 1 survived (no rebuild); 2 was evicted and rebuilds.
  EXPECT_EQ(*reg.get_or_build(1, build(-1)), 1);
  EXPECT_EQ(builds.load(), 3);
  EXPECT_EQ(*reg.get_or_build(2, build(20)), 20);
  EXPECT_EQ(builds.load(), 4);
}

TEST(PlanRegistry, CapacityZeroIsUnbounded) {
  PlanRegistry<int, int> reg(0);
  for (int i = 0; i < 100; ++i) {
    reg.get_or_build(i, [i] { return std::make_shared<const int>(i); });
  }
  EXPECT_EQ(reg.size(), 100u);
  EXPECT_EQ(reg.evictions(), 0u);
}

TEST(PlanRegistry, ShrinkingCapacityEvictsDownToBound) {
  PlanRegistry<int, int> reg(8);
  for (int i = 0; i < 8; ++i) {
    reg.get_or_build(i, [i] { return std::make_shared<const int>(i); });
  }
  reg.set_capacity(3);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.evictions(), 5u);
  // The three most recently used keys (5, 6, 7) survive.
  std::atomic<int> rebuilds{0};
  for (int i = 5; i < 8; ++i) {
    reg.get_or_build(i, [&] {
      ++rebuilds;
      return std::make_shared<const int>(-1);
    });
  }
  EXPECT_EQ(rebuilds.load(), 0);
}

TEST(PlanRegistry, EvictedValueStaysAliveForHolders) {
  PlanRegistry<int, std::vector<int>> reg(1);
  auto held = reg.get_or_build(
      1, [] { return std::make_shared<const std::vector<int>>(64, 7); });
  reg.get_or_build(
      2, [] { return std::make_shared<const std::vector<int>>(64, 8); });
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ((*held)[0], 7);  // eviction dropped only the cache reference
}

TEST(PlanRegistry, ConcurrentGetOrBuildIsConsistent) {
  PlanRegistry<int, int> reg(16);
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const int key = i % kKeys;
        auto v = reg.get_or_build(
            key, [key] { return std::make_shared<const int>(key * 10); });
        if (*v != key * 10) ok = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_LE(reg.size(), static_cast<std::size_t>(kKeys));
}

// -------------------------------------------------------- ProtectionPlan

TEST(ProtectionPlan, CachedResolutionReturnsSameInstance) {
  const Options opts = Options::online_opt(true);
  const auto a = ProtectionPlan::get(1 << 10, Scheme::kOnline, opts);
  const auto b = ProtectionPlan::get(1 << 10, Scheme::kOnline, opts);
  EXPECT_EQ(a.get(), b.get());
  // Different scheme or checksum-relevant option = different plan.
  const auto c = ProtectionPlan::get(1 << 10, Scheme::kOnlineInplace, opts);
  EXPECT_NE(a.get(), c.get());
  Options naive = opts;
  naive.ra_method = checksum::RaGenMethod::kNaiveTrig;
  const auto d = ProtectionPlan::get(1 << 10, Scheme::kOnline, naive);
  EXPECT_NE(a.get(), d.get());
  // Fields irrelevant to the setup (injector, retries, eta override,
  // memory_ft) share the entry.
  Options tweaked = opts;
  tweaked.memory_ft = !opts.memory_ft;
  tweaked.max_retries = 9;
  tweaked.eta_override = 1e-3;
  const auto e = ProtectionPlan::get(1 << 10, Scheme::kOnline, tweaked);
  EXPECT_EQ(a.get(), e.get());
}

TEST(ProtectionPlan, SchemesExposeTheirDecomposition) {
  const Options opts = Options::online_opt(true);
  const std::size_t n = 1 << 12;
  const auto online = ProtectionPlan::get(n, Scheme::kOnline, opts);
  EXPECT_EQ(online->m() * online->k(), n);
  EXPECT_NE(online->weights_m(), nullptr);
  EXPECT_NE(online->weights_k(), nullptr);
  EXPECT_GE(online->layer1_batch(), 1u);
  EXPECT_GE(online->layer2_cols(), 1u);
  EXPECT_GT(online->eta_m().comp, 0.0);
  EXPECT_GT(online->eta_k().mem, 0.0);

  const auto inplace = ProtectionPlan::get(n, Scheme::kOnlineInplace, opts);
  EXPECT_EQ(inplace->k() * inplace->r() * inplace->k(), n);
  EXPECT_NE(inplace->weights_k(), nullptr);

  const auto offline = ProtectionPlan::get(n, Scheme::kOffline, opts);
  EXPECT_NE(offline->weights_m(), nullptr);
  EXPECT_GT(offline->eta_whole().comp, 0.0);
}

TEST(ProtectionPlan, UnbufferedOptionsDisableStaging) {
  const Options naive = Options::online_naive(false);
  const auto plan = ProtectionPlan::get(1 << 12, Scheme::kOnline, naive);
  EXPECT_EQ(plan->layer1_batch(), 1u);
  EXPECT_EQ(plan->layer2_cols(), 1u);
}

TEST(ProtectionPlan, InvalidSizesThrowLikeThePerCallSetup) {
  const Options opts = Options::online_opt(true);
  EXPECT_THROW(ProtectionPlan::get(7, Scheme::kOnline, opts),
               std::invalid_argument);
  EXPECT_THROW(ProtectionPlan::get(12, Scheme::kOffline, opts),
               std::invalid_argument);  // 3 | 12 degenerates the encoding
  EXPECT_THROW(ProtectionPlan::get(6, Scheme::kOnlineInplace, opts),
               std::invalid_argument);  // no square factor
}

TEST(ProtectionPlan, ConcurrentGetYieldsOneSharedPlan) {
  ProtectionPlan::drop_cache();
  const Options opts = Options::online_opt(true);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ProtectionPlan>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        seen[t] = ProtectionPlan::get(1 << 11, Scheme::kOnline, opts);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0].get(), seen[t].get());
}

TEST(ProtectionPlan, LruEvictionRebuildsEvictedPlans) {
  const std::size_t restore = ProtectionPlan::cache_capacity();
  ProtectionPlan::drop_cache();
  ProtectionPlan::set_cache_capacity(2);
  const Options opts = Options::online_opt(true);

  const auto p16 = ProtectionPlan::get(16, Scheme::kOnline, opts);
  ProtectionPlan::get(32, Scheme::kOnline, opts);
  EXPECT_EQ(ProtectionPlan::cache_size(), 2u);
  ProtectionPlan::get(64, Scheme::kOnline, opts);  // evicts 16
  EXPECT_EQ(ProtectionPlan::cache_size(), 2u);

  const auto builds_before = ProtectionPlan::build_count();
  const auto p16b = ProtectionPlan::get(16, Scheme::kOnline, opts);
  EXPECT_EQ(ProtectionPlan::build_count(), builds_before + 1);  // rebuilt
  EXPECT_NE(p16.get(), p16b.get());
  // The evicted instance is still fully usable by its holders.
  EXPECT_EQ(p16->m() * p16->k(), 16u);

  ProtectionPlan::set_cache_capacity(restore);
  ProtectionPlan::drop_cache();
}

TEST(ProtectionPlan, EnvKnobSetsCacheCapacity) {
  // FTFFT_PLAN_CACHE_CAP=3 was exported before main() (see kEnvPinned).
  EXPECT_EQ(ProtectionPlan::cache_capacity(), 3u);
  const Options opts = Options::online_opt(true);
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    ProtectionPlan::get(n, Scheme::kOnline, opts);
  }
  EXPECT_EQ(ProtectionPlan::cache_size(), 3u);
}

// ------------------------------------------- batch vs per-call identity

std::vector<Options> preset_matrix() {
  return {Options::online_opt(true),    Options::online_opt(false),
          Options::online_naive(true),  Options::online_naive(false),
          Options::offline_opt(true),   Options::offline_naive(false),
          Options::none()};
}

TEST(ProtectionPlanBatch, BatchOutputBitIdenticalToPerCallPath) {
  const std::size_t n = 1 << 9;
  const std::size_t lanes = 12;
  engine::BatchEngine eng(4);
  for (const Options& opts : preset_matrix()) {
    std::vector<std::vector<cplx>> inputs;
    for (std::size_t l = 0; l < lanes; ++l) {
      inputs.push_back(random_vector(n, InputDistribution::kUniform,
                                     900 + static_cast<unsigned>(l)));
    }
    // Per-call path: fresh Options each call, setup re-resolved per lane.
    std::vector<std::vector<cplx>> serial_out(lanes, std::vector<cplx>(n));
    for (std::size_t l = 0; l < lanes; ++l) {
      auto x = inputs[l];
      Stats stats;
      abft::protected_transform(x.data(), serial_out[l].data(), n, opts,
                                stats);
    }
    // Batched path: plan resolved once, shared by every lane.
    std::vector<std::vector<cplx>> batch_in = inputs;
    std::vector<std::vector<cplx>> batch_out(lanes, std::vector<cplx>(n));
    std::vector<engine::Lane> batch(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      batch[l] = {batch_in[l].data(), batch_out[l].data(), nullptr};
    }
    engine::BatchOptions bopts;
    bopts.abft = opts;
    const auto report = eng.transform_batch(batch, n, bopts);
    ASSERT_TRUE(report.all_ok());
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(std::memcmp(serial_out[l].data(), batch_out[l].data(),
                            n * sizeof(cplx)),
                0)
          << "lane " << l << " diverged (mode "
          << static_cast<int>(opts.mode) << ")";
    }
  }
}

TEST(ProtectionPlanBatch, InplaceBatchBitIdenticalToPerCallPath) {
  const std::size_t n = 1 << 8;
  const std::size_t lanes = 8;
  engine::BatchEngine eng(4);
  for (const Options& opts :
       {Options::online_opt(true), Options::online_naive(false),
        Options::offline_opt(true), Options::none()}) {
    std::vector<std::vector<cplx>> serial_data, batch_data;
    for (std::size_t l = 0; l < lanes; ++l) {
      serial_data.push_back(random_vector(
          n, InputDistribution::kNormal, 40 + static_cast<unsigned>(l)));
      batch_data.push_back(serial_data.back());
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      Stats stats;
      abft::protected_transform_inplace(serial_data[l].data(), n, opts,
                                        stats);
    }
    std::vector<engine::Lane> batch(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      batch[l] = {batch_data[l].data(), nullptr, nullptr};
    }
    engine::BatchOptions bopts;
    bopts.abft = opts;
    const auto report = eng.transform_batch(batch, n, bopts);
    ASSERT_TRUE(report.all_ok());
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(std::memcmp(serial_data[l].data(), batch_data[l].data(),
                            n * sizeof(cplx)),
                0)
          << "lane " << l;
    }
  }
}

TEST(ProtectionPlanBatch, RaGenerationAmortizedAcrossLanes) {
  // A fresh-size batch generates the checksum vectors once (under DMR: at
  // most three redundant passes per vector, two vectors), independent of
  // the lane count; a repeat batch generates none. The size is used by no
  // other test in this file so a bare full-suite run stays deterministic.
  const std::size_t n = 1 << 13;
  const std::size_t lanes = 48;
  engine::BatchEngine eng(4);
  engine::BatchOptions bopts;
  bopts.abft = Options::online_opt(true);

  std::vector<std::vector<cplx>> ins, outs(lanes, std::vector<cplx>(n));
  for (std::size_t l = 0; l < lanes; ++l) {
    ins.push_back(random_vector(n, InputDistribution::kUniform,
                                7 + static_cast<unsigned>(l)));
  }
  std::vector<engine::Lane> batch(lanes);

  const auto run_batch = [&] {
    for (std::size_t l = 0; l < lanes; ++l) {
      batch[l] = {ins[l].data(), outs[l].data(), nullptr};
    }
    const auto report = eng.transform_batch(batch, n, bopts);
    ASSERT_TRUE(report.all_ok());
  };

  const auto before = checksum::ra_generations();
  run_batch();
  const auto first = checksum::ra_generations() - before;
  EXPECT_GE(first, 2u);  // one DMR generation per layer vector, minimum
  EXPECT_LE(first, 6u);  // and never O(lanes)
  run_batch();
  EXPECT_EQ(checksum::ra_generations() - (before + first), 0u)
      << "repeat batch of the same size must reuse the cached setup";
}

TEST(ProtectionPlanBatch, ResolutionFailureIsIsolatedPerLane) {
  // n = 12 is divisible by 3: the checksum encoding degenerates and plan
  // resolution throws. The batch must report it per lane, not throw.
  const std::size_t n = 12;
  engine::BatchEngine eng(2);
  std::vector<cplx> in(n * 2, cplx{1.0, 0.0}), out(n * 2);
  engine::BatchOptions bopts;
  bopts.abft = Options::online_opt(true);
  const auto report = eng.transform_batch(in.data(), out.data(), n, 2, bopts);
  EXPECT_EQ(report.failed_lanes, 2u);
  for (const auto& err : report.errors) EXPECT_FALSE(err.empty());
  for (const auto& ex : report.exceptions) {
    ASSERT_NE(ex, nullptr);
    EXPECT_THROW(std::rethrow_exception(ex), std::invalid_argument);
  }
}

TEST(ProtectionPlanBatch, ArenaHighWaterTrimReleasesStaging) {
  engine::BatchEngine eng(1);
  engine::BatchOptions bopts;
  bopts.abft = Options::online_opt(true);
  bopts.preserve_inputs = true;  // forces every lane through the arena

  const std::size_t big = 1 << 14;
  auto big_in = random_vector(big, InputDistribution::kUniform, 3);
  std::vector<cplx> big_out(big);
  (void)eng.transform_batch(big_in.data(), big_out.data(), big, 1, bopts);
  EXPECT_GE(eng.staging_capacity(), big);

  const std::size_t small = 1 << 6;
  auto small_in = random_vector(small, InputDistribution::kUniform, 4);
  std::vector<cplx> small_out(small);
  for (int i = 0; i < 4; ++i) {
    (void)eng.transform_batch(small_in.data(), small_out.data(), small, 1,
                              bopts);
  }
  EXPECT_LE(eng.staging_capacity(), small)
      << "arena should trim to the recent high-water mark";

  // And it grows right back when demand returns.
  (void)eng.transform_batch(big_in.data(), big_out.data(), big, 1, bopts);
  EXPECT_GE(eng.staging_capacity(), big);
}

TEST(ProtectionPlanBatch, FtPlanReusesItsPlanAcrossCalls) {
  const std::size_t n = 1 << 9;
  FtPlan plan(n);
  auto x = random_vector(n, InputDistribution::kUniform, 11);
  (void)plan.forward(x);  // first call resolves and latches the plan
  const auto builds_before = ProtectionPlan::build_count();
  const auto gens_before = checksum::ra_generations();
  for (int i = 0; i < 10; ++i) (void)plan.forward(x);
  EXPECT_EQ(ProtectionPlan::build_count(), builds_before);
  EXPECT_EQ(checksum::ra_generations(), gens_before);
}

}  // namespace
}  // namespace ftfft
