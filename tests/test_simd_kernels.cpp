// SIMD backend coverage: every dispatched kernel must agree with the scalar
// reference on every compiled-in backend, across sizes 1..2^16, odd strides,
// the w == nullptr dual-sum path, the env/forcing dispatch machinery, and —
// most importantly — the fault-injection campaigns must detect and correct
// exactly the same faults no matter which backend runs the math.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "abft/inplace.hpp"
#include "abft/online.hpp"
#include "abft/options.hpp"
#include "checksum/dot.hpp"
#include "checksum/weights.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dft/codelets.hpp"
#include "dft/reference_dft.hpp"
#include "fault/bitflip.hpp"
#include "fault/injector.hpp"
#include "fft/executor.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"
#include "simd/dispatch.hpp"

namespace ftfft {
namespace {

using simd::Backend;

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::kScalar};
  if (simd::backend_available(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  if (simd::backend_available(Backend::kNeon)) out.push_back(Backend::kNeon);
  return out;
}

/// Restores the entry backend when a test scope ends.
struct BackendGuard {
  Backend prev = simd::active_backend();
  ~BackendGuard() { simd::set_backend(prev); }
};

// Naive single-chain references, independent of the library's kernels.
cplx naive_weighted_sum(const cplx* w, const cplx* x, std::size_t n,
                        std::size_t stride = 1) {
  cplx acc{0.0, 0.0};
  for (std::size_t j = 0; j < n; ++j) acc += cmul(w[j], x[j * stride]);
  return acc;
}

double naive_energy(const cplx* x, std::size_t n, std::size_t stride = 1) {
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j) acc += norm2(x[j * stride]);
  return acc;
}

constexpr std::size_t kSizes[] = {0,  1,  2,   3,   4,    5,    7,    8,
                                  15, 16, 31,  48,  64,   100,  127,  256,
                                  999, 1024, 4096, 65536};

// ------------------------------------------------------------- checksums

TEST(SimdChecksum, WeightedSumMatchesNaiveOnEveryBackend) {
  BackendGuard guard;
  for (std::size_t n : kSizes) {
    if (n == 0) continue;
    auto x = random_vector(n, InputDistribution::kUniform, 101);
    auto w = random_vector(n, InputDistribution::kNormal, 102);
    const cplx want = naive_weighted_sum(w.data(), x.data(), n);
    const double scale = std::abs(want) + std::sqrt(naive_energy(x.data(), n));
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      const cplx got = checksum::weighted_sum(w.data(), x.data(), n);
      EXPECT_LT(std::abs(got - want), 1e-11 * (1.0 + scale))
          << "n=" << n << " backend=" << simd::backend_name(b);
    }
  }
}

TEST(SimdChecksum, DualWeightedSumMatchesNaiveIncludingNullWeights) {
  BackendGuard guard;
  for (std::size_t n : kSizes) {
    auto x = random_vector(n == 0 ? 1 : n, InputDistribution::kNormal, 202);
    std::vector<cplx> w(n == 0 ? 1 : n);
    Rng rng(17);
    for (auto& c : w) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    for (const cplx* wp : {static_cast<const cplx*>(w.data()),
                           static_cast<const cplx*>(nullptr)}) {
      checksum::DualSum want;
      for (std::size_t j = 0; j < n; ++j) {
        const cplx p = wp == nullptr ? x[j] : cmul(wp[j], x[j]);
        want.plain += p;
        want.indexed += static_cast<double>(j) * p;
      }
      const double scale =
          std::abs(want.indexed) + static_cast<double>(n) + 1.0;
      for (Backend b : available_backends()) {
        ASSERT_TRUE(simd::set_backend(b));
        const auto got = checksum::dual_weighted_sum(wp, x.data(), n);
        EXPECT_LT(std::abs(got.plain - want.plain), 1e-11 * scale)
            << "n=" << n << " backend=" << simd::backend_name(b);
        EXPECT_LT(std::abs(got.indexed - want.indexed), 1e-11 * scale)
            << "n=" << n << " backend=" << simd::backend_name(b);
      }
    }
  }
}

TEST(SimdChecksum, EnergyAndRobustVariantsMatchNaive) {
  BackendGuard guard;
  for (std::size_t n : kSizes) {
    auto x = random_vector(n == 0 ? 1 : n, InputDistribution::kUniform, 303);
    // Plant one large outlier so the robust exclusion actually matters.
    if (n >= 8) x[n / 3] = cplx{1e6, -2e6};
    const double e_all = naive_energy(x.data(), n);
    double top = -1.0;
    std::size_t ti = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (norm2(x[j]) > top) {
        top = norm2(x[j]);
        ti = j;
      }
    }
    double e_rob = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != ti) e_rob += norm2(x[j]);
    }
    checksum::DualSum sums;
    for (std::size_t j = 0; j < n; ++j) {
      sums.plain += x[j];
      sums.indexed += static_cast<double>(j) * x[j];
    }
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      const char* name = simd::backend_name(b);
      EXPECT_LT(std::abs(checksum::energy(x.data(), n) - e_all),
                1e-11 * (1.0 + e_all))
          << "n=" << n << " backend=" << name;
      EXPECT_LT(std::abs(checksum::robust_energy(x.data(), n) - e_rob),
                1e-11 * (1.0 + e_rob))
          << "n=" << n << " backend=" << name;
      const auto r = checksum::dual_plain_sum_robust(x.data(), n);
      EXPECT_LT(std::abs(r.sums.plain - sums.plain),
                1e-11 * (1.0 + std::abs(sums.plain)))
          << "n=" << n << " backend=" << name;
      EXPECT_LT(std::abs(r.sums.indexed - sums.indexed),
                1e-11 * (1.0 + std::abs(sums.indexed)))
          << "n=" << n << " backend=" << name;
      EXPECT_DOUBLE_EQ(r.max_norm2, n == 0 ? 0.0 : top < 0.0 ? 0.0 : top)
          << "n=" << n << " backend=" << name;
      EXPECT_LT(std::abs(r.energy - e_rob), 1e-11 * (1.0 + e_rob))
          << "n=" << n << " backend=" << name;
    }
  }
}

TEST(SimdChecksum, FusedSumEnergyAndOmega3MatchNaive) {
  BackendGuard guard;
  for (std::size_t n : kSizes) {
    if (n == 0) continue;
    auto x = random_vector(n, InputDistribution::kNormal, 404);
    auto w = random_vector(n, InputDistribution::kUniform, 405);
    const cplx ws = naive_weighted_sum(w.data(), x.data(), n);
    const double e = naive_energy(x.data(), n);
    cplx o3{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) o3 += cmul(omega3_pow(j), x[j]);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      const char* name = simd::backend_name(b);
      const auto se = checksum::weighted_sum_energy(w.data(), x.data(), n);
      EXPECT_LT(std::abs(se.sum - ws), 1e-11 * (1.0 + std::abs(ws) + e))
          << "n=" << n << " backend=" << name;
      EXPECT_LT(std::abs(se.energy - e), 1e-11 * (1.0 + e))
          << "n=" << n << " backend=" << name;
      const auto de =
          checksum::dual_weighted_sum_energy(nullptr, x.data(), n);
      EXPECT_LT(std::abs(de.energy - e), 1e-11 * (1.0 + e))
          << "n=" << n << " backend=" << name;
      EXPECT_LT(std::abs(checksum::omega3_weighted_sum(x.data(), n) - o3),
                1e-10 * (1.0 + std::abs(o3) + std::sqrt(e) * std::sqrt(n)))
          << "n=" << n << " backend=" << name;
    }
  }
}

TEST(SimdChecksum, OddStridesTakeTheScalarPathOnEveryBackend) {
  BackendGuard guard;
  const std::size_t n = 257;
  for (std::size_t stride : {2ul, 3ul, 5ul}) {
    auto x = random_vector(n * stride, InputDistribution::kUniform, 505);
    auto w = checksum::input_checksum_vector(
        n, checksum::RaGenMethod::kClosedForm);
    const cplx want = naive_weighted_sum(w.data(), x.data(), n, stride);
    const double e = naive_energy(x.data(), n, stride);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      EXPECT_LT(std::abs(checksum::weighted_sum(w.data(), x.data(), n,
                                                stride) -
                         want),
                1e-11 * (1.0 + std::abs(want)))
          << "stride=" << stride;
      EXPECT_LT(std::abs(checksum::energy(x.data(), n, stride) - e),
                1e-11 * (1.0 + e))
          << "stride=" << stride;
      const auto r = checksum::dual_plain_sum_robust(x.data(), n, stride);
      double top = -1.0;
      std::size_t ti = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (norm2(x[j * stride]) > top) {
          top = norm2(x[j * stride]);
          ti = j;
        }
      }
      double e_rob = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != ti) e_rob += norm2(x[j * stride]);
      }
      EXPECT_LT(std::abs(r.energy - e_rob), 1e-11 * (1.0 + e_rob))
          << "stride=" << stride;
    }
  }
}

TEST(SimdChecksum, BackendResultsAreDeterministic) {
  BackendGuard guard;
  const std::size_t n = 4099;
  auto x = random_vector(n, InputDistribution::kNormal, 606);
  for (Backend b : available_backends()) {
    ASSERT_TRUE(simd::set_backend(b));
    const auto a = checksum::dual_weighted_sum(nullptr, x.data(), n);
    const auto c = checksum::dual_weighted_sum(nullptr, x.data(), n);
    EXPECT_EQ(std::memcmp(&a, &c, sizeof(a)), 0)
        << simd::backend_name(b) << " not bit-stable across calls";
  }
}

// ------------------------------------------------------------------ FFT

double fft_tolerance(std::size_t n, double scale) {
  return 1e-12 * (std::log2(static_cast<double>(n) + 2.0) + 1.0) *
         (scale + 1.0);
}

TEST(SimdFft, InplaceForwardAgreesAcrossBackendsUpTo64k) {
  BackendGuard guard;
  for (std::size_t n = 1; n <= (1u << 16); n *= 2) {
    auto x = random_vector(n, InputDistribution::kUniform, 707);
    const auto plan = fft::InplaceRadix2Plan::get(n);
    ASSERT_TRUE(simd::set_backend(Backend::kScalar));
    auto ref = x;
    plan->forward(ref.data());
    const double scale = inf_norm(ref.data(), n);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      auto y = x;
      plan->forward(y.data());
      EXPECT_LT(inf_diff(y.data(), ref.data(), n), fft_tolerance(n, scale))
          << "n=" << n << " backend=" << simd::backend_name(b);
      // Round trip through the same backend's inverse.
      plan->inverse(y.data());
      EXPECT_LT(inf_diff(y.data(), x.data(), n),
                fft_tolerance(n, inf_norm(x.data(), n)))
          << "n=" << n << " backend=" << simd::backend_name(b);
    }
  }
}

TEST(SimdFft, InplaceMatchesReferenceDftOnEveryBackend) {
  BackendGuard guard;
  for (std::size_t n : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul, 256ul, 1024ul}) {
    auto x = random_vector(n, InputDistribution::kNormal, 808);
    std::vector<cplx> want(n);
    dft::reference_dft(x.data(), want.data(), n);
    const auto plan = fft::InplaceRadix2Plan::get(n);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      auto y = x;
      plan->forward(y.data());
      EXPECT_LT(inf_diff(y.data(), want.data(), n),
                1e-9 * (1.0 + inf_norm(want.data(), n)))
          << "n=" << n << " backend=" << simd::backend_name(b);
    }
  }
}

TEST(SimdFft, OutOfPlaceExecutorAgreesAcrossBackends) {
  BackendGuard guard;
  // Covers vectorized combines (r = 2/4/8/16), scalar combines (r = 3/5),
  // leaf codelets, generic codelets, and Bluestein.
  for (std::size_t n : {4ul, 8ul, 16ul, 30ul, 48ul, 60ul, 100ul, 240ul,
                        1024ul, 4096ul, 4099ul, 65536ul}) {
    auto x = random_vector(n, InputDistribution::kUniform, 909);
    fft::Fft engine(n);
    ASSERT_TRUE(simd::set_backend(Backend::kScalar));
    std::vector<cplx> ref(n);
    engine.execute(x.data(), ref.data());
    const double scale = inf_norm(ref.data(), n);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      std::vector<cplx> out(n);
      engine.execute(x.data(), out.data());
      EXPECT_LT(inf_diff(out.data(), ref.data(), n), fft_tolerance(n, scale))
          << "n=" << n << " backend=" << simd::backend_name(b);
    }
  }
}

TEST(SimdFft, StridedCodeletsAgreeWithGenericOnEveryBackend) {
  BackendGuard guard;
  for (std::size_t n : {4ul, 8ul, 16ul}) {
    for (std::size_t is : {1ul, 3ul, 257ul}) {
      auto x = random_vector(n * is, InputDistribution::kNormal, 111);
      std::vector<cplx> want(n);
      dft::generic_dft(n, x.data(), is, want.data(), 1);
      for (Backend b : available_backends()) {
        ASSERT_TRUE(simd::set_backend(b));
        std::vector<cplx> got(n);
        dft::codelet_dft(n, x.data(), is, got.data(), 1);
        EXPECT_LT(inf_diff(got.data(), want.data(), n),
                  1e-11 * (1.0 + inf_norm(want.data(), n)))
            << "n=" << n << " is=" << is
            << " backend=" << simd::backend_name(b);
        // Strided output bypasses the vector leaf and must still match.
        std::vector<cplx> strided(2 * n);
        dft::codelet_dft(n, x.data(), is, strided.data(), 2);
        for (std::size_t k = 0; k < n; ++k) {
          EXPECT_LT(std::abs(strided[2 * k] - want[k]),
                    1e-11 * (1.0 + inf_norm(want.data(), n)));
        }
      }
    }
  }
}

// Hand-built radix-2 -> radix-2 plan chains: the planner prefers larger
// radices, so the fused radix-4 combine path is exercised explicitly here.
std::shared_ptr<const fft::PlanNode> build_radix2_chain(std::size_t n) {
  if (n <= 2) {
    auto leaf = std::make_shared<fft::PlanNode>();
    leaf->n = n;
    leaf->kind = fft::PlanNode::Kind::kCodelet;
    return leaf;
  }
  auto node = std::make_shared<fft::PlanNode>();
  node->n = n;
  node->kind = fft::PlanNode::Kind::kCooleyTukey;
  node->radix = 2;
  node->sub = build_radix2_chain(n / 2);
  const std::size_t m = n / 2;
  node->twiddles.resize(m);
  for (std::size_t k1 = 0; k1 < m; ++k1) node->twiddles[k1] = omega(n, k1);
  return node;
}

TEST(SimdFft, FusedRadix2x2CombineMatchesReferenceDft) {
  BackendGuard guard;
  for (std::size_t n : {4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
    auto x = random_vector(n, InputDistribution::kUniform, 222);
    std::vector<cplx> want(n);
    dft::reference_dft(x.data(), want.data(), n);
    const auto plan = build_radix2_chain(n);
    for (Backend b : available_backends()) {
      ASSERT_TRUE(simd::set_backend(b));
      std::vector<cplx> out(n);
      fft::execute_plan(*plan, x.data(), 1, out.data(), 1, nullptr);
      EXPECT_LT(inf_diff(out.data(), want.data(), n),
                1e-10 * (1.0 + inf_norm(want.data(), n)))
          << "n=" << n << " backend=" << simd::backend_name(b);
      // Strided output goes down the scalar fused path; same answer.
      std::vector<cplx> strided(3 * n);
      fft::execute_plan(*plan, x.data(), 1, strided.data(), 3, nullptr);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LT(std::abs(strided[3 * k] - want[k]),
                  1e-10 * (1.0 + inf_norm(want.data(), n)))
            << "n=" << n << " backend=" << simd::backend_name(b);
      }
    }
  }
}

// --------------------------------------------------------------- dispatch

TEST(SimdDispatch, ParseBackendRecognizesExactlyTheThreeNames) {
  Backend b = Backend::kScalar;
  EXPECT_TRUE(simd::detail::parse_backend("scalar", b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(simd::detail::parse_backend("avx2", b));
  EXPECT_EQ(b, Backend::kAvx2);
  EXPECT_TRUE(simd::detail::parse_backend("neon", b));
  EXPECT_EQ(b, Backend::kNeon);
  EXPECT_FALSE(simd::detail::parse_backend("auto", b));
  EXPECT_FALSE(simd::detail::parse_backend("AVX2", b));
  EXPECT_FALSE(simd::detail::parse_backend("", b));
  EXPECT_FALSE(simd::detail::parse_backend(nullptr, b));
}

TEST(SimdDispatch, EnvOverrideResolvesAndFallsBackGracefully) {
  BackendGuard guard;
  ASSERT_EQ(setenv("FTFFT_SIMD", "scalar", 1), 0);
  EXPECT_EQ(simd::detail::resolve_from_env(), Backend::kScalar);
  ASSERT_EQ(setenv("FTFFT_SIMD", "definitely-not-a-backend", 1), 0);
  EXPECT_EQ(simd::detail::resolve_from_env(), simd::detected_backend());
  // Requesting a backend that is not available must fall back to detection
  // instead of crashing. At least one of avx2/neon is absent everywhere.
  const char* missing =
      simd::backend_available(Backend::kAvx2) ? "neon" : "avx2";
  ASSERT_EQ(setenv("FTFFT_SIMD", missing, 1), 0);
  EXPECT_EQ(simd::detail::resolve_from_env(), simd::detected_backend());
  ASSERT_EQ(unsetenv("FTFFT_SIMD"), 0);
  EXPECT_EQ(simd::detail::resolve_from_env(), simd::detected_backend());
}

TEST(SimdDispatch, SetBackendForcesEveryAvailableBackend) {
  BackendGuard guard;
  for (Backend b : available_backends()) {
    EXPECT_TRUE(simd::set_backend(b));
    EXPECT_EQ(simd::active_backend(), b);
    EXPECT_STREQ(simd::simd_backend_name(), simd::backend_name(b));
  }
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (simd::backend_available(b)) continue;
    const Backend before = simd::active_backend();
    EXPECT_FALSE(simd::set_backend(b));
    EXPECT_EQ(simd::active_backend(), before);
  }
}

// ------------------------------------------------- fault campaigns (table 1)

struct CampaignOutcome {
  bool threw = false;
  bool correct = false;
  std::size_t detected = 0;   // comp + mem detections
  std::size_t corrected = 0;  // mem corrections
  std::size_t retries = 0;    // sub-FFT re-executions

  bool operator==(const CampaignOutcome&) const = default;
};

CampaignOutcome run_one_campaign(int seed, bool inplace) {
  constexpr std::size_t kN = 1024;
  Rng rng(91000 + seed);
  auto x = random_vector(kN, InputDistribution::kUniform, 92000 + seed);
  const auto want = fft::fft(x);
  const fault::Phase phases[] = {
      fault::Phase::kInputAfterChecksum, fault::Phase::kMFftOutput,
      fault::Phase::kIntermediate, fault::Phase::kKFftOutput,
      fault::Phase::kFinalOutput};
  const fault::Phase phase = phases[rng.below(5)];
  const bool unit_scoped = phase == fault::Phase::kMFftOutput ||
                           phase == fault::Phase::kKFftOutput;
  const std::size_t unit = unit_scoped ? rng.below(32) : 0;
  const std::size_t element = rng.below(unit_scoped ? 32 : kN);
  fault::Injector inj;
  inj.schedule(fault::FaultSpec::computational(
      phase, unit, element,
      {rng.uniform(0.5, 100.0), rng.uniform(-100.0, -0.5)}));
  abft::Options opts = abft::Options::online_opt(true);
  opts.injector = &inj;
  abft::Stats stats;
  CampaignOutcome out;
  try {
    if (inplace) {
      abft::inplace_online_transform(x.data(), kN, opts, stats);
      out.correct = inf_diff(x.data(), want.data(), kN) < 1e-8;
    } else {
      std::vector<cplx> y(kN);
      abft::online_transform(x.data(), y.data(), kN, opts, stats);
      out.correct = inf_diff(y.data(), want.data(), kN) < 1e-8;
    }
  } catch (const UncorrectableError&) {
    out.threw = true;
  }
  out.detected = stats.comp_errors_detected + stats.mem_errors_detected;
  out.corrected = stats.mem_errors_corrected;
  out.retries = stats.sub_fft_retries;
  return out;
}

TEST(SimdFaultCampaigns, DetectionAndCorrectionIdenticalOnEveryBackend) {
  BackendGuard guard;
  // Table-1 style campaign: random single computational faults across
  // phases. Every backend must produce the exact same per-seed outcome
  // (survived/threw, detected and corrected counters) as the scalar
  // reference — vectorization must not change what the scheme catches.
  constexpr int kSeeds = 20;
  std::vector<CampaignOutcome> ref;
  std::size_t total_detected = 0;
  ASSERT_TRUE(simd::set_backend(Backend::kScalar));
  for (int s = 0; s < kSeeds; ++s) {
    ref.push_back(run_one_campaign(s, (s % 2) == 0));
    EXPECT_TRUE(ref.back().threw || ref.back().correct) << "seed " << s;
    total_detected += ref.back().detected;
  }
  // The campaign injects real faults; a healthy run detects most of them.
  EXPECT_GE(total_detected, static_cast<std::size_t>(kSeeds) / 2);
  for (Backend b : available_backends()) {
    if (b == Backend::kScalar) continue;
    ASSERT_TRUE(simd::set_backend(b));
    for (int s = 0; s < kSeeds; ++s) {
      const CampaignOutcome got = run_one_campaign(s, (s % 2) == 0);
      EXPECT_EQ(got, ref[s])
          << "seed " << s << " backend=" << simd::backend_name(b)
          << " (threw=" << got.threw << " correct=" << got.correct
          << " detected=" << got.detected << " corrected=" << got.corrected
          << ")";
    }
  }
}

TEST(SimdFaultCampaigns, FaultFreeRunsStayCleanOnEveryBackend) {
  BackendGuard guard;
  constexpr std::size_t kN = 4096;
  auto x = random_vector(kN, InputDistribution::kNormal, 333);
  const auto want = fft::fft(x);
  for (Backend b : available_backends()) {
    ASSERT_TRUE(simd::set_backend(b));
    std::vector<cplx> y(kN);
    abft::Stats stats;
    abft::online_transform(x.data(), y.data(), kN,
                           abft::Options::online_opt(true), stats);
    EXPECT_LT(inf_diff(y.data(), want.data(), kN), 1e-8)
        << simd::backend_name(b);
    EXPECT_EQ(stats.comp_errors_detected, 0u) << simd::backend_name(b);
    EXPECT_EQ(stats.mem_errors_detected, 0u) << simd::backend_name(b);
  }
}

}  // namespace
}  // namespace ftfft
