#include "fft/plan.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"

namespace ftfft {
namespace {

using fft::make_plan;
using fft::PlanNode;

TEST(FftPlan, SmallSizesAreCodelets) {
  for (std::size_t n : {1, 2, 3, 4, 5, 8, 16}) {
    const auto plan = make_plan(n);
    EXPECT_EQ(plan->kind, PlanNode::Kind::kCodelet) << n;
    EXPECT_EQ(plan->n, n);
    EXPECT_EQ(plan->scratch_need, 0u);
  }
}

TEST(FftPlan, PowerOfTwoUsesCooleyTukeyChain) {
  const auto plan = make_plan(1 << 12);
  const PlanNode* cur = plan.get();
  std::size_t product = 1;
  while (cur->kind == PlanNode::Kind::kCooleyTukey) {
    EXPECT_EQ(cur->n % cur->radix, 0u);
    EXPECT_EQ(cur->twiddles.size(), (cur->radix - 1) * (cur->n / cur->radix));
    product *= cur->radix;
    cur = cur->sub.get();
  }
  EXPECT_EQ(cur->kind, PlanNode::Kind::kCodelet);
  EXPECT_EQ(product * cur->n, std::size_t{1} << 12);
  EXPECT_EQ(plan->scratch_need, 0u);
}

TEST(FftPlan, PrefersLargeRadix) {
  const auto plan = make_plan(1 << 16);
  ASSERT_EQ(plan->kind, PlanNode::Kind::kCooleyTukey);
  EXPECT_EQ(plan->radix, 16u);
}

TEST(FftPlan, MixedRadixFactorsCompletely) {
  for (std::size_t n : {12, 60, 100, 120, 360, 1000, 1440}) {
    const auto plan = make_plan(n);
    // Walk the chain and make sure no Bluestein node appears: all these
    // sizes factor over {2,3,5}.
    const PlanNode* cur = plan.get();
    while (cur->kind == PlanNode::Kind::kCooleyTukey) cur = cur->sub.get();
    EXPECT_EQ(cur->kind, PlanNode::Kind::kCodelet) << n;
    EXPECT_EQ(plan->scratch_need, 0u) << n;
  }
}

TEST(FftPlan, LargePrimeUsesBluestein) {
  const auto plan = make_plan(97);
  ASSERT_EQ(plan->kind, PlanNode::Kind::kBluestein);
  EXPECT_GE(plan->conv_n, 2 * 97 - 1);
  EXPECT_TRUE(is_pow2(plan->conv_n));
  EXPECT_EQ(plan->chirp.size(), 97u);
  EXPECT_EQ(plan->chirp_fft.size(), plan->conv_n);
  EXPECT_EQ(plan->scratch_need, 2 * plan->conv_n);
}

TEST(FftPlan, SmallPrimeStaysGenericCodelet) {
  for (std::size_t n : {7, 11, 13, 17, 19, 23, 29, 31}) {
    const auto plan = make_plan(n);
    EXPECT_EQ(plan->kind, PlanNode::Kind::kCodelet) << n;
  }
}

TEST(FftPlan, CompositeWithLargePrimeFactor) {
  // 2 * 37: split off the 2, Bluestein on the 37.
  const auto plan = make_plan(74);
  ASSERT_EQ(plan->kind, PlanNode::Kind::kCooleyTukey);
  EXPECT_EQ(plan->radix, 2u);
  ASSERT_NE(plan->sub, nullptr);
  EXPECT_EQ(plan->sub->kind, PlanNode::Kind::kBluestein);
  EXPECT_GT(plan->scratch_need, 0u);
}

TEST(FftPlan, CacheReturnsSameInstance) {
  const auto a = make_plan(4096);
  const auto b = make_plan(4096);
  EXPECT_EQ(a.get(), b.get());
}

TEST(FftPlan, DescribeMentionsStructure) {
  const std::string desc = fft::describe_plan(*make_plan(1 << 10));
  EXPECT_NE(desc.find("ct(n=1024"), std::string::npos) << desc;
  EXPECT_NE(desc.find("codelet("), std::string::npos) << desc;
  const std::string bdesc = fft::describe_plan(*make_plan(101));
  EXPECT_NE(bdesc.find("bluestein"), std::string::npos) << bdesc;
}

TEST(FftPlan, RejectsZero) {
  EXPECT_THROW(make_plan(0), std::invalid_argument);
}

}  // namespace
}  // namespace ftfft
