#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/complex.hpp"

namespace ftfft {
namespace {

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
  EXPECT_FALSE(is_pow2(1536));
}

TEST(MathUtil, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor(1025), 10u);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(MathUtil, OmegaUnitCircle) {
  for (std::size_t n : {2, 3, 8, 16, 100, 4096}) {
    for (std::uint64_t k = 0; k < 5; ++k) {
      const cplx w = omega(n, k);
      EXPECT_NEAR(std::abs(w), 1.0, 1e-15) << "n=" << n << " k=" << k;
    }
  }
}

TEST(MathUtil, OmegaKnownValues) {
  EXPECT_NEAR(omega(4, 1).real(), 0.0, 1e-15);
  EXPECT_NEAR(omega(4, 1).imag(), -1.0, 1e-15);
  EXPECT_NEAR(omega(2, 1).real(), -1.0, 1e-15);
  EXPECT_NEAR(omega(8, 1).real(), std::cos(std::numbers::pi / 4), 1e-15);
  EXPECT_NEAR(omega(8, 1).imag(), -std::sin(std::numbers::pi / 4), 1e-15);
}

TEST(MathUtil, OmegaPeriodicity) {
  // omega(n, k) must reduce k mod n exactly, even for huge k.
  const cplx base = omega(1024, 7);
  const cplx wrapped = omega(1024, 7 + 9ULL * 1024);
  EXPECT_NEAR(base.real(), wrapped.real(), 1e-15);
  EXPECT_NEAR(base.imag(), wrapped.imag(), 1e-15);
}

TEST(MathUtil, Omega3IsPrimitiveCubeRoot) {
  const cplx w = omega3();
  const cplx w3 = w * w * w;
  EXPECT_NEAR(w3.real(), 1.0, 1e-15);
  EXPECT_NEAR(w3.imag(), 0.0, 1e-15);
  EXPECT_GT(std::abs(w - cplx{1.0, 0.0}), 1.0);  // not the trivial root
}

TEST(MathUtil, Omega3PowCycles) {
  for (std::uint64_t k = 0; k < 12; ++k) {
    const cplx direct = omega3_pow(k);
    cplx iter{1.0, 0.0};
    for (std::uint64_t i = 0; i < k % 3; ++i) iter *= omega3();
    EXPECT_NEAR(direct.real(), iter.real(), 1e-14) << "k=" << k;
    EXPECT_NEAR(direct.imag(), iter.imag(), 1e-14) << "k=" << k;
  }
}

TEST(MathUtil, BalancedSplitPowersOfTwo) {
  EXPECT_EQ(balanced_split(16), (std::pair<std::size_t, std::size_t>{4, 4}));
  EXPECT_EQ(balanced_split(32), (std::pair<std::size_t, std::size_t>{8, 4}));
  EXPECT_EQ(balanced_split(1 << 20),
            (std::pair<std::size_t, std::size_t>{1 << 10, 1 << 10}));
  EXPECT_EQ(balanced_split(1 << 21),
            (std::pair<std::size_t, std::size_t>{1 << 11, 1 << 10}));
}

TEST(MathUtil, BalancedSplitGeneral) {
  for (std::size_t n : {12, 100, 360, 1000, 4096, 6144}) {
    const auto [m, k] = balanced_split(n);
    EXPECT_EQ(m * k, n);
    EXPECT_GE(m, k);
    EXPECT_GE(k, 2u);
  }
}

TEST(MathUtil, BalancedSplitRejectsPrimesAndTiny) {
  // void-cast: balanced_split is [[nodiscard]] and EXPECT_THROW discards.
  EXPECT_THROW(static_cast<void>(balanced_split(7)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(balanced_split(2)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(balanced_split(3)), std::invalid_argument);
}

TEST(MathUtil, SquareSplit) {
  // n = k*k*r with r square-free-ish minimal.
  {
    const auto [k, r] = square_split(64);
    EXPECT_EQ(k, 8u);
    EXPECT_EQ(r, 1u);
  }
  {
    const auto [k, r] = square_split(32);
    EXPECT_EQ(k, 4u);
    EXPECT_EQ(r, 2u);
  }
  {
    const auto [k, r] = square_split(144);
    EXPECT_EQ(k, 12u);
    EXPECT_EQ(r, 1u);
  }
  {
    const auto [k, r] = square_split(7);
    EXPECT_EQ(k, 1u);
    EXPECT_EQ(r, 7u);
  }
  for (std::size_t n : {8, 12, 60, 100, 1024, 2048, 4096}) {
    const auto [k, r] = square_split(n);
    EXPECT_EQ(k * k * r, n) << n;
  }
}

TEST(MathUtil, Factorize) {
  EXPECT_EQ(factorize(1), std::vector<std::size_t>{});
  EXPECT_EQ(factorize(2), std::vector<std::size_t>{2});
  EXPECT_EQ(factorize(12), (std::vector<std::size_t>{2, 2, 3}));
  EXPECT_EQ(factorize(97), std::vector<std::size_t>{97});
  EXPECT_EQ(factorize(360), (std::vector<std::size_t>{2, 2, 2, 3, 3, 5}));
}

}  // namespace
}  // namespace ftfft
