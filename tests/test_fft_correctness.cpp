#include <gtest/gtest.h>

#include <vector>

#include "common/complex.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dft/reference_dft.hpp"
#include "fft/fft.hpp"
#include "fft/inplace_radix2.hpp"

namespace ftfft {
namespace {

using fft::Direction;
using fft::Fft;

// Tolerance scaled to the transform: output magnitudes grow like sqrt(n) and
// the O(n^2) reference oracle itself accumulates ~n*eps error.
double tol_for(std::size_t n) { return 1e-11 * static_cast<double>(n); }

void expect_matches_reference(const std::vector<cplx>& x,
                              const std::vector<cplx>& got) {
  const auto want = dft::reference_dft(x);
  const double tol = tol_for(x.size());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < want.size(); ++j) {
    ASSERT_NEAR(got[j].real(), want[j].real(), tol)
        << "n=" << x.size() << " j=" << j;
    ASSERT_NEAR(got[j].imag(), want[j].imag(), tol)
        << "n=" << x.size() << " j=" << j;
  }
}

class FftSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSize, ForwardMatchesReference) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kUniform, 1000 + n);
  std::vector<cplx> out(n);
  Fft engine(n);
  engine.execute(x.data(), out.data());
  expect_matches_reference(x, out);
}

TEST_P(FftSize, InverseRoundTrips) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kNormal, 2000 + n);
  std::vector<cplx> freq(n), back(n);
  Fft fwd(n, Direction::kForward);
  Fft inv(n, Direction::kInverse);
  fwd.execute(x.data(), freq.data());
  inv.execute(freq.data(), back.data());
  const double tol = tol_for(n);
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_NEAR(back[t].real(), x[t].real(), tol) << "n=" << n;
    ASSERT_NEAR(back[t].imag(), x[t].imag(), tol) << "n=" << n;
  }
}

TEST_P(FftSize, InplaceMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kUniform, 3000 + n);
  std::vector<cplx> oop(n);
  Fft engine(n);
  engine.execute(x.data(), oop.data());
  std::vector<cplx> ip = x;
  engine.execute_inplace(ip.data());
  const double tol = tol_for(n);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_NEAR(ip[j].real(), oop[j].real(), tol) << "n=" << n << " j=" << j;
    ASSERT_NEAR(ip[j].imag(), oop[j].imag(), tol) << "n=" << n << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwo, FftSize,
    ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                      4096),
    [](const ::testing::TestParamInfo<std::size_t>& pi) { return "n" + std::to_string(pi.param); });

INSTANTIATE_TEST_SUITE_P(
    MixedRadix, FftSize,
    ::testing::Values(6, 12, 20, 60, 100, 120, 360, 1000, 1440, 2187, 3125),
    [](const ::testing::TestParamInfo<std::size_t>& pi) { return "n" + std::to_string(pi.param); });

INSTANTIATE_TEST_SUITE_P(
    PrimesAndAwkward, FftSize,
    ::testing::Values(7, 17, 31, 37, 97, 101, 251, 509, 74, 202, 1111),
    [](const ::testing::TestParamInfo<std::size_t>& pi) { return "n" + std::to_string(pi.param); });

TEST(Fft, StridedExecutionMatches) {
  const std::size_t n = 256, is = 2, os = 3;
  auto packed = random_vector(n, InputDistribution::kUniform, 42);
  std::vector<cplx> in(n * is);
  for (std::size_t t = 0; t < n; ++t) in[t * is] = packed[t];
  std::vector<cplx> out(n * os);
  Fft engine(n);
  engine.execute_strided(in.data(), is, out.data(), os);
  const auto want = dft::reference_dft(packed);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_NEAR(out[j * os].real(), want[j].real(), tol_for(n));
    ASSERT_NEAR(out[j * os].imag(), want[j].imag(), tol_for(n));
  }
}

TEST(Fft, ConvenienceWrappersRoundTrip) {
  auto x = random_vector(512, InputDistribution::kNormal, 50);
  const auto back = fft::ifft(fft::fft(x));
  for (std::size_t t = 0; t < x.size(); ++t) {
    ASSERT_NEAR(back[t].real(), x[t].real(), 1e-10);
    ASSERT_NEAR(back[t].imag(), x[t].imag(), 1e-10);
  }
}

TEST(InplaceRadix2, MatchesReferenceAcrossSizes) {
  for (std::size_t n = 1; n <= 4096; n *= 2) {
    auto x = random_vector(n, InputDistribution::kUniform, 60 + n);
    std::vector<cplx> data = x;
    fft::InplaceRadix2Plan::get(n)->forward(data.data());
    const auto want = dft::reference_dft(x);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(data[j].real(), want[j].real(), tol_for(n)) << "n=" << n;
      ASSERT_NEAR(data[j].imag(), want[j].imag(), tol_for(n)) << "n=" << n;
    }
  }
}

TEST(InplaceRadix2, InverseRoundTrips) {
  const std::size_t n = 1024;
  auto x = random_vector(n, InputDistribution::kNormal, 70);
  std::vector<cplx> data = x;
  const auto plan = fft::InplaceRadix2Plan::get(n);
  plan->forward(data.data());
  plan->inverse(data.data());
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_NEAR(data[t].real(), x[t].real(), 1e-11);
    ASSERT_NEAR(data[t].imag(), x[t].imag(), 1e-11);
  }
}

TEST(InplaceRadix2, RejectsNonPowerOfTwo) {
  EXPECT_THROW(fft::InplaceRadix2Plan bad(12), std::invalid_argument);
}

TEST(Fft, LargeTransformSpotCheck) {
  // 2^16 is too big for the O(n^2) oracle; verify via a single tone whose
  // transform is analytically known.
  const std::size_t n = 1 << 16;
  const std::size_t bin = 12345;
  std::vector<cplx> x(n);
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::conj(omega(n, static_cast<std::uint64_t>(bin) * t));
  std::vector<cplx> X(n);
  Fft engine(n);
  engine.execute(x.data(), X.data());
  EXPECT_NEAR(X[bin].real(), static_cast<double>(n), 1e-6);
  EXPECT_NEAR(X[bin].imag(), 0.0, 1e-6);
  double off_peak = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j != bin) off_peak = std::max(off_peak, std::abs(X[j]));
  }
  EXPECT_LT(off_peak, 1e-6);
}

}  // namespace
}  // namespace ftfft
