#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/complex.hpp"
#include "fault/bitflip.hpp"
#include "fault/injector.hpp"

namespace ftfft {
namespace {

using fault::FaultSpec;
using fault::Injector;
using fault::Kind;
using fault::Phase;

TEST(Bitflip, RoundTrips) {
  const double v = 1.234567;
  for (unsigned bit : {0u, 17u, 40u, 52u, 62u, 63u}) {
    const double flipped = fault::flip_bit(v, bit);
    EXPECT_NE(flipped, v) << bit;
    EXPECT_EQ(fault::flip_bit(flipped, bit), v) << bit;
  }
}

TEST(Bitflip, SignBit) {
  EXPECT_EQ(fault::flip_bit(2.5, 63), -2.5);
}

TEST(Bitflip, HighBitClassification) {
  EXPECT_FALSE(fault::is_high_bit(0));
  EXPECT_FALSE(fault::is_high_bit(39));
  EXPECT_TRUE(fault::is_high_bit(fault::kFirstHighBit));
  EXPECT_TRUE(fault::is_high_bit(63));
}

TEST(Injector, FiresOnceOnMatchingHook) {
  Injector inj;
  inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 3, 5, {1.0, 2.0}));
  std::vector<cplx> data(8, cplx{0, 0});
  // Wrong unit: nothing happens.
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 2, data.data(), data.size()), 0u);
  // Wrong phase: nothing happens.
  EXPECT_EQ(inj.apply(Phase::kKFftOutput, 3, data.data(), data.size()), 0u);
  // Match: fires.
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 3, data.data(), data.size()), 1u);
  EXPECT_EQ(data[5], (cplx{1.0, 2.0}));
  // One-shot: second matching hook is clean (transient fault).
  data[5] = {0, 0};
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 3, data.data(), data.size()), 0u);
  EXPECT_EQ(data[5], (cplx{0, 0}));
  EXPECT_EQ(inj.fired_count(), 1u);
  EXPECT_EQ(inj.pending_count(), 0u);
}

TEST(Injector, SetValueAndBitFlipKinds) {
  Injector inj;
  inj.schedule(FaultSpec::memory_set(Phase::kFinalOutput, 0, 1, {9.0, 9.0}));
  inj.schedule(FaultSpec::bit_flip(Phase::kInputAfterChecksum, 0, 2, 63, true));
  std::vector<cplx> data(4, cplx{1.0, 1.0});
  inj.apply(Phase::kFinalOutput, 0, data.data(), data.size());
  EXPECT_EQ(data[1], (cplx{9.0, 9.0}));
  inj.apply(Phase::kInputAfterChecksum, 0, data.data(), data.size());
  EXPECT_EQ(data[2], (cplx{1.0, -1.0}));  // sign bit of imag flipped
}

TEST(Injector, StrideAddressing) {
  Injector inj;
  inj.schedule(FaultSpec::computational(Phase::kKFftOutput, 0, 2, {1.0, 0.0}));
  std::vector<cplx> data(12, cplx{0, 0});
  inj.apply(Phase::kKFftOutput, 0, data.data(), 4, /*stride=*/3);
  EXPECT_EQ(data[6], (cplx{1.0, 0.0}));  // element 2 * stride 3
}

TEST(Injector, ElementClampedIntoRange) {
  Injector inj;
  inj.schedule(
      FaultSpec::computational(Phase::kMFftOutput, 0, 1000, {1.0, 0.0}));
  std::vector<cplx> data(4, cplx{0, 0});
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 0, data.data(), data.size()), 1u);
  EXPECT_EQ(data[3], (cplx{1.0, 0.0}));
}

TEST(Injector, MultipleFaultsSameHook) {
  Injector inj;
  inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 0, 0, {1.0, 0.0}));
  inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 0, 1, {2.0, 0.0}));
  std::vector<cplx> data(2, cplx{0, 0});
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 0, data.data(), data.size()), 2u);
  EXPECT_EQ(data[0], (cplx{1.0, 0.0}));
  EXPECT_EQ(data[1], (cplx{2.0, 0.0}));
}

TEST(Injector, ClearResets) {
  Injector inj;
  inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 0, 0, {1.0, 0.0}));
  std::vector<cplx> data(1, cplx{0, 0});
  inj.apply(Phase::kMFftOutput, 0, data.data(), 1);
  inj.clear();
  EXPECT_EQ(inj.fired_count(), 0u);
  EXPECT_EQ(inj.pending_count(), 0u);
}

TEST(Injector, NullAndEmptySpansAreSafe) {
  Injector inj;
  inj.schedule(FaultSpec::computational(Phase::kMFftOutput, 0, 0, {1.0, 0.0}));
  EXPECT_EQ(inj.apply(Phase::kMFftOutput, 0, nullptr, 0), 0u);
  EXPECT_EQ(inj.pending_count(), 1u);  // still armed
}

}  // namespace
}  // namespace ftfft
