// Serving-grade admission control of BatchEngine: priority classes with
// EDF within a class, bounded-queue backpressure (try_submit fail-fast,
// blocking admission timeouts, QueueFullError), deadline enforcement
// (DeadlineExceededError fail-fast for queued work), load shedding of
// cancellable lower-class lanes, per-class scheduler statistics, the env
// knobs that configure all of it, and the invariant that carries the rest:
// every admitted future is fulfilled exactly once with an outcome from the
// scheduler taxonomy — under saturation, under faults, under destruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/ftfft.hpp"
#include "simd/dispatch.hpp"

namespace ftfft {
namespace {

using engine::Priority;
using simd::Backend;

constexpr auto kNoop = [](std::size_t, abft::Stats&) {};

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::kScalar};
  if (simd::backend_available(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  if (simd::backend_available(Backend::kNeon)) out.push_back(Backend::kNeon);
  return out;
}

struct BackendGuard {
  Backend prev = simd::active_backend();
  ~BackendGuard() { simd::set_backend(prev); }
};

// A worker-occupying job that parks the pool until released. `entered`
// confirms a worker is inside the task, so later submissions are
// guaranteed to queue behind it instead of racing it to the workers.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  std::function<void(std::size_t, abft::Stats&)> task() {
    return [this](std::size_t, abft::Stats&) {
      entered.fetch_add(1);
      std::unique_lock lk(mu);
      cv.wait(lk, [&] { return open; });
    };
  }
  void wait_entered(int k) {
    while (entered.load() < k) std::this_thread::yield();
  }
  void release() {
    {
      std::scoped_lock lk(mu);
      open = true;
    }
    cv.notify_all();
  }
};

// Thread-safe execution-order recorder shared by a test's task jobs.
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> order;

  std::function<void(std::size_t, abft::Stats&)> tagged(std::string tag) {
    return [this, tag = std::move(tag)](std::size_t i, abft::Stats&) {
      std::scoped_lock lk(mu);
      order.push_back(tag + std::to_string(i));
    };
  }
  std::ptrdiff_t index_of(const std::string& tag) {
    std::scoped_lock lk(mu);
    auto it = std::find(order.begin(), order.end(), tag);
    return it == order.end() ? -1 : it - order.begin();
  }
};

bool lane_bit_identical(const std::vector<cplx>& a,
                        const std::vector<cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

// ----------------------------------------------------------- env knobs

TEST(EngineSchedEnv, QueueCapAndDefaultPriorityReadAtConstruction) {
  ASSERT_EQ(setenv("FTFFT_ENGINE_QUEUE_CAP", "7", 1), 0);
  ASSERT_EQ(setenv("FTFFT_ENGINE_DEFAULT_PRIORITY", "high", 1), 0);
  {
    engine::BatchEngine eng(1);
    EXPECT_EQ(eng.queue_cap(), 7u);
    // A Priority::kDefault submission resolves to the env-named class.
    auto r = eng.submit_tasks(1, kNoop).get();
    EXPECT_EQ(r.priority, Priority::kHigh);
    // set_queue_cap overrides the env value at runtime.
    eng.set_queue_cap(0);
    EXPECT_EQ(eng.queue_cap(), 0u);
  }
  ASSERT_EQ(setenv("FTFFT_ENGINE_DEFAULT_PRIORITY", "low", 1), 0);
  {
    engine::BatchEngine eng(1);
    auto r = eng.submit_tasks(1, kNoop).get();
    EXPECT_EQ(r.priority, Priority::kLow);
    // An explicit class always wins over the env default.
    engine::SubmitOptions hi;
    hi.priority = Priority::kHigh;
    EXPECT_EQ(eng.submit_tasks(1, kNoop, hi).get().priority, Priority::kHigh);
  }
  ASSERT_EQ(unsetenv("FTFFT_ENGINE_QUEUE_CAP"), 0);
  ASSERT_EQ(unsetenv("FTFFT_ENGINE_DEFAULT_PRIORITY"), 0);
  engine::BatchEngine eng(1);
  EXPECT_EQ(eng.queue_cap(), 0u);
  EXPECT_EQ(eng.submit_tasks(1, kNoop).get().priority, Priority::kNormal);
}

TEST(EngineSchedEnv, DefaultDeadlineKnobAppliesAndNegativeOptsOut) {
  ASSERT_EQ(setenv("FTFFT_ENGINE_DEFAULT_DEADLINE_MS", "5", 1), 0);
  engine::BatchEngine eng(1);
  ASSERT_EQ(unsetenv("FTFFT_ENGINE_DEFAULT_DEADLINE_MS"), 0);

  // The blocker must opt out of the inherited default deadline: if the
  // worker takes more than 5 ms to claim it (easy under a loaded test
  // host) the gate task would expire unexecuted and wait_entered would
  // spin forever.
  engine::SubmitOptions none;
  none.deadline = std::chrono::nanoseconds{-1};
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task(), none);
  gate.wait_entered(1);

  std::atomic<int> ran{0};
  auto count = [&](std::size_t, abft::Stats&) { ran.fetch_add(1); };
  // deadline == 0 inherits the 5 ms env budget; negative opts out of any
  // deadline even when the env default is set.
  auto inherits = eng.submit_tasks(2, count);
  auto opted_out = eng.submit_tasks(2, count, none);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  gate.release();

  auto expired = inherits.get();
  EXPECT_EQ(expired.deadline_expired_lanes, 2u);
  EXPECT_EQ(expired.failed_lanes, 2u);
  auto fine = opted_out.get();
  EXPECT_TRUE(fine.all_ok());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_TRUE(blocker.get().all_ok());
}

// ------------------------------------------------- priority ordering + EDF

TEST(EngineSched, HighPriorityOvertakesQueuedLowPriority) {
  engine::BatchEngine eng(1);
  Gate gate;
  OrderLog log;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  engine::SubmitOptions lo;
  lo.priority = Priority::kLow;
  engine::SubmitOptions hi;
  hi.priority = Priority::kHigh;
  // Low submitted first; the later high-class job must still run first.
  auto fl = eng.submit_tasks(2, log.tagged("low"), lo);
  auto fh = eng.submit_tasks(2, log.tagged("high"), hi);
  gate.release();

  EXPECT_TRUE(fl.get().all_ok());
  EXPECT_TRUE(fh.get().all_ok());
  EXPECT_TRUE(blocker.get().all_ok());
  EXPECT_LT(log.index_of("high1"), log.index_of("low0"));
}

TEST(EngineSched, EarliestDeadlineFirstWithinAClass) {
  engine::BatchEngine eng(1);
  Gate gate;
  OrderLog log;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  auto with_deadline = [](std::chrono::seconds d) {
    engine::SubmitOptions so;
    so.deadline = d;
    return so;
  };
  // Deadline-free FIFO job first, then deadlines out of order. EDF runs
  // 10s -> 30s -> 60s; the deadline-free job queues behind all of them.
  auto f_fifo = eng.submit_tasks(1, log.tagged("fifo"));
  auto f60 = eng.submit_tasks(1, log.tagged("d60_"),
                              with_deadline(std::chrono::seconds(60)));
  auto f10 = eng.submit_tasks(1, log.tagged("d10_"),
                              with_deadline(std::chrono::seconds(10)));
  auto f30 = eng.submit_tasks(1, log.tagged("d30_"),
                              with_deadline(std::chrono::seconds(30)));
  gate.release();

  for (auto* f : {&f_fifo, &f60, &f10, &f30}) EXPECT_TRUE(f->get().all_ok());
  EXPECT_TRUE(blocker.get().all_ok());
  EXPECT_LT(log.index_of("d10_0"), log.index_of("d30_0"));
  EXPECT_LT(log.index_of("d30_0"), log.index_of("d60_0"));
  EXPECT_LT(log.index_of("d60_0"), log.index_of("fifo0"));
}

TEST(EngineSched, HighArrivalOvertakesHalfDrainedLowJobAtChunkBoundary) {
  engine::BatchEngine eng(1);
  std::atomic<bool> high_submitted{false};
  OrderLog log;

  engine::SubmitOptions lo;
  lo.priority = Priority::kLow;
  // Item 0 holds the worker until the high job is queued, so the re-pick
  // at the next chunk boundary deterministically sees it.
  auto low_task = [&](std::size_t i, abft::Stats& s) {
    if (i == 0) {
      while (!high_submitted.load()) std::this_thread::yield();
    }
    log.tagged("low")(i, s);
  };
  auto fl = eng.submit_tasks(4, low_task, lo, /*chunk=*/1);
  engine::SubmitOptions hi;
  hi.priority = Priority::kHigh;
  auto fh = eng.submit_tasks(1, log.tagged("high"), hi, /*chunk=*/1);
  high_submitted.store(true);

  EXPECT_TRUE(fl.get().all_ok());
  EXPECT_TRUE(fh.get().all_ok());
  // The high lane runs before the low job's remaining items drain.
  EXPECT_LT(log.index_of("high0"), log.index_of("low1"));
}

TEST(EngineSched, HighClassQueueWaitBeatsLowInSchedulerStats) {
  engine::BatchEngine eng(1);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  auto slow = [](std::size_t, abft::Stats&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  engine::SubmitOptions lo;
  lo.priority = Priority::kLow;
  engine::SubmitOptions hi;
  hi.priority = Priority::kHigh;
  std::vector<engine::BatchFuture> futs;
  // Lows queued first, yet every high runs before any low — so every
  // low-class queue wait strictly exceeds every high-class one.
  for (int i = 0; i < 8; ++i) futs.push_back(eng.submit_tasks(1, slow, lo));
  for (int i = 0; i < 8; ++i) futs.push_back(eng.submit_tasks(1, slow, hi));
  gate.release();
  for (auto& f : futs) EXPECT_TRUE(f.get().all_ok());
  EXPECT_TRUE(blocker.get().all_ok());

  const auto st = eng.scheduler_stats();
  const auto& h = st.at(Priority::kHigh);
  const auto& l = st.at(Priority::kLow);
  EXPECT_EQ(h.jobs_completed, 8u);
  EXPECT_EQ(l.jobs_completed, 8u);
  EXPECT_EQ(h.queue_wait.count, 8u);
  EXPECT_EQ(l.queue_wait.count, 8u);
  EXPECT_LT(h.queue_wait.p50, l.queue_wait.p50);
  EXPECT_LT(h.queue_wait.p99, l.queue_wait.p99);
  EXPECT_GT(l.queue_wait.max, 0.0);
}

// ------------------------------------------------------------ backpressure

TEST(EngineSched, BackpressureRejectsAndThrowsWhenCapReached) {
  engine::BatchEngine eng(1);
  eng.set_queue_cap(2);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());  // running; 1 pending lane
  gate.wait_entered(1);
  auto queued = eng.submit_tasks(1, kNoop);  // pending 2 == cap

  // Non-blocking admission fails fast with an empty optional.
  EXPECT_FALSE(eng.try_submit_tasks(1, kNoop).has_value());
  // Blocking admission: zero timeout fails immediately, a bounded timeout
  // waits it out first; both surface QueueFullError.
  engine::SubmitOptions fail_fast;
  fail_fast.admission_timeout = std::chrono::nanoseconds::zero();
  EXPECT_THROW((void)eng.submit_tasks(1, kNoop, fail_fast),
               QueueFullError);
  engine::SubmitOptions brief;
  brief.admission_timeout = std::chrono::milliseconds(5);
  EXPECT_THROW((void)eng.submit_tasks(1, kNoop, brief), QueueFullError);

  auto st = eng.scheduler_stats();
  EXPECT_EQ(st.queue_cap, 2u);
  EXPECT_EQ(st.pending_lanes, 2u);
  EXPECT_EQ(st.at(Priority::kNormal).jobs_rejected, 3u);

  gate.release();
  EXPECT_TRUE(blocker.get().all_ok());
  EXPECT_TRUE(queued.get().all_ok());
  // Capacity freed: the same submission is admitted now.
  auto retry = eng.try_submit_tasks(1, kNoop);
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(retry->get().all_ok());
}

TEST(EngineSched, BlockedSubmitterAdmitsWhenSpaceFrees) {
  engine::BatchEngine eng(1);
  eng.set_queue_cap(1);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());  // occupies the cap
  gate.wait_entered(1);

  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    // Default admission_timeout (negative) waits as long as it takes.
    auto f = eng.submit_tasks(1, kNoop);
    admitted.store(true);
    EXPECT_TRUE(f.get().all_ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());  // still parked on admission
  gate.release();
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(blocker.get().all_ok());
}

TEST(EngineSched, TrySubmitBatchRejectsThenAdmitsTransformLanes) {
  const std::size_t n = 256;
  engine::BatchEngine eng(1);
  eng.set_queue_cap(1);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  auto in = random_vector(4 * n, InputDistribution::kUniform, 9100);
  std::vector<cplx> out(4 * n);
  std::vector<engine::Lane> lanes(4);
  for (std::size_t l = 0; l < 4; ++l) {
    lanes[l] = {in.data() + l * n, out.data() + l * n, nullptr};
  }
  engine::BatchOptions bopts;
  bopts.abft = abft::Options::online_opt(true);
  EXPECT_FALSE(eng.try_submit_batch(lanes, n, bopts).has_value());

  gate.release();
  EXPECT_TRUE(blocker.get().all_ok());
  eng.set_queue_cap(8);
  auto f = eng.try_submit_batch(lanes, n, bopts);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->get().all_ok());
}

TEST(EngineSched, OversizedJobIsAdmittedWhenQueueIsEmpty) {
  // A job larger than the cap must not block forever: it is admitted
  // alone once the queue is empty (otherwise no cap could ever fit it).
  engine::BatchEngine eng(2);
  eng.set_queue_cap(2);
  std::atomic<int> ran{0};
  auto f = eng.submit_tasks(6, [&](std::size_t, abft::Stats&) {
    ran.fetch_add(1);
  });
  EXPECT_TRUE(f.get().all_ok());
  EXPECT_EQ(ran.load(), 6);
}

// ---------------------------------------------------------------- deadlines

TEST(EngineSched, ExpiredQueuedJobFailsFastWithDeadlineTaxonomy) {
  engine::BatchEngine eng(1);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  std::atomic<int> ran{0};
  engine::SubmitOptions dl;
  dl.deadline = std::chrono::milliseconds(5);
  auto fd = eng.submit_tasks(3, [&](std::size_t, abft::Stats&) {
    ran.fetch_add(1);
  }, dl);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  gate.release();

  auto r = fd.get();
  EXPECT_EQ(r.lanes, 3u);
  EXPECT_EQ(r.deadline_expired_lanes, 3u);
  EXPECT_EQ(r.failed_lanes, 3u);
  EXPECT_EQ(r.shed_lanes, 0u);
  EXPECT_EQ(r.cancelled_lanes, 0u);
  EXPECT_EQ(ran.load(), 0);  // expired work never silently runs late
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(r.exceptions[i]) << i;
    EXPECT_THROW(std::rethrow_exception(r.exceptions[i]),
                 DeadlineExceededError);
    EXPECT_NE(r.errors[i].find("deadline exceeded"), std::string::npos);
  }
  EXPECT_TRUE(blocker.get().all_ok());
  const auto st = eng.scheduler_stats();
  EXPECT_EQ(st.at(Priority::kNormal).deadline_expired_lanes, 3u);
}

TEST(EngineSched, GenerousDeadlineIsMetAndReportsLatencies) {
  engine::BatchEngine eng(2);
  engine::SubmitOptions dl;
  dl.deadline = std::chrono::minutes(5);
  const std::size_t n = 256;
  auto in = random_vector(n, InputDistribution::kUniform, 9200);
  std::vector<cplx> out(n);
  std::vector<engine::Lane> lanes{{in.data(), out.data(), nullptr}};
  engine::BatchOptions bopts;
  bopts.abft = abft::Options::online_opt(true);
  bopts.submit = dl;
  auto r = eng.submit_batch(lanes, n, bopts).get();
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.deadline_expired_lanes, 0u);
  EXPECT_GE(r.queue_wait_seconds, 0.0);
  EXPECT_GT(r.run_seconds, 0.0);
}

// ------------------------------------------------------------ load shedding

TEST(EngineSched, AdmissionShedsCancellableLowerClassLanes) {
  engine::BatchEngine eng(1);
  eng.set_queue_cap(3);
  Gate gate;
  engine::SubmitOptions hi_run;
  hi_run.priority = Priority::kHigh;
  auto blocker = eng.submit_tasks(1, gate.task(), hi_run);  // running; 1 lane
  gate.wait_entered(1);

  std::atomic<int> victim_ran{0};
  engine::SubmitOptions low_shed;
  low_shed.priority = Priority::kLow;
  low_shed.cancellable = true;
  auto victim = eng.submit_tasks(2, [&](std::size_t, abft::Stats&) {
    victim_ran.fetch_add(1);
  }, low_shed);  // queued; pending 3 == cap

  // An equal-or-lower-class arrival may not shed the victim: rejected.
  EXPECT_FALSE(eng.try_submit_tasks(1, kNoop, low_shed).has_value());

  // A high-class arrival sheds the queued cancellable low job to make
  // room, synchronously, and is admitted.
  std::atomic<int> winner_ran{0};
  engine::SubmitOptions hi;
  hi.priority = Priority::kHigh;
  auto winner = eng.try_submit_tasks(2, [&](std::size_t, abft::Stats&) {
    winner_ran.fetch_add(1);
  }, hi);
  ASSERT_TRUE(winner.has_value());

  // The shed future is fulfilled immediately with the shed taxonomy.
  EXPECT_TRUE(victim.wait_for(std::chrono::minutes(1)));
  auto vr = victim.get();
  EXPECT_EQ(vr.shed_lanes, 2u);
  EXPECT_EQ(vr.failed_lanes, 2u);
  EXPECT_EQ(vr.deadline_expired_lanes, 0u);
  EXPECT_EQ(victim_ran.load(), 0);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(vr.exceptions[i]) << i;
    EXPECT_THROW(std::rethrow_exception(vr.exceptions[i]), CancelledError);
    EXPECT_NE(vr.errors[i].find("shed under overload"), std::string::npos);
  }

  gate.release();
  EXPECT_TRUE(winner->get().all_ok());
  EXPECT_EQ(winner_ran.load(), 2);
  EXPECT_TRUE(blocker.get().all_ok());

  const auto st = eng.scheduler_stats();
  EXPECT_EQ(st.at(Priority::kLow).shed_lanes, 2u);
  EXPECT_EQ(st.at(Priority::kLow).jobs_rejected, 1u);
}

TEST(EngineSched, NonCancellableLanesAreNeverShed) {
  engine::BatchEngine eng(1);
  eng.set_queue_cap(2);
  Gate gate;
  auto blocker = eng.submit_tasks(1, gate.task());
  gate.wait_entered(1);

  engine::SubmitOptions low_pinned;
  low_pinned.priority = Priority::kLow;  // lower class but NOT cancellable
  auto pinned = eng.submit_tasks(1, kNoop, low_pinned);

  engine::SubmitOptions hi;
  hi.priority = Priority::kHigh;
  EXPECT_FALSE(eng.try_submit_tasks(1, kNoop, hi).has_value());

  gate.release();
  EXPECT_TRUE(blocker.get().all_ok());
  auto pr = pinned.get();
  EXPECT_TRUE(pr.all_ok());
  EXPECT_EQ(pr.shed_lanes, 0u);
}

// -------------------------------------------------------------------- stats

TEST(EngineSched, SchedulerStatsCountersAndReset) {
  engine::BatchEngine eng(2);
  engine::SubmitOptions lo;
  lo.priority = Priority::kLow;
  EXPECT_TRUE(eng.submit_tasks(3, kNoop, lo).get().all_ok());
  EXPECT_TRUE(eng.submit_tasks(2, kNoop).get().all_ok());

  auto st = eng.scheduler_stats();
  EXPECT_EQ(st.at(Priority::kLow).jobs_submitted, 1u);
  EXPECT_EQ(st.at(Priority::kLow).jobs_completed, 1u);
  EXPECT_EQ(st.at(Priority::kLow).lanes_submitted, 3u);
  EXPECT_EQ(st.at(Priority::kLow).lanes_completed, 3u);
  EXPECT_EQ(st.at(Priority::kNormal).lanes_completed, 2u);
  EXPECT_EQ(st.at(Priority::kHigh).jobs_submitted, 0u);
  EXPECT_EQ(st.pending_lanes, 0u);

  eng.reset_scheduler_stats();
  st = eng.scheduler_stats();
  for (const auto& c : st.classes) {
    EXPECT_EQ(c.jobs_submitted, 0u);
    EXPECT_EQ(c.lanes_completed, 0u);
    EXPECT_EQ(c.queue_wait.count, 0u);
    EXPECT_EQ(c.run.count, 0u);
  }
}

TEST(EngineSched, SharedEngineSnapshotExportedViaFreeFunction) {
  const std::size_t n = 128;
  auto in = random_vector(n, InputDistribution::kUniform, 9300);
  std::vector<cplx> out(n);
  std::vector<engine::Lane> lanes{{in.data(), out.data(), nullptr}};
  const auto before = engine::scheduler_stats();
  EXPECT_TRUE(ftfft::submit_batch(lanes, n).get().all_ok());
  const auto after = engine::scheduler_stats();
  std::size_t before_jobs = 0, after_jobs = 0;
  for (const auto& c : before.classes) before_jobs += c.jobs_completed;
  for (const auto& c : after.classes) after_jobs += c.jobs_completed;
  EXPECT_GT(after_jobs, before_jobs);
}

// ----------------------------------------------------------- drain semantics

TEST(EngineSched, DestructionFulfillsQueuedAndExpiredFutures) {
  std::vector<engine::BatchFuture> futs;
  std::atomic<int> ran{0};
  {
    engine::BatchEngine eng(2);
    Gate gate;
    auto blocker = eng.submit_tasks(2, gate.task());  // occupy both workers
    gate.wait_entered(2);

    engine::SubmitOptions dl;
    dl.deadline = std::chrono::milliseconds(2);
    futs.push_back(eng.submit_tasks(3, kNoop, dl));
    futs.push_back(eng.submit_tasks(3, [&](std::size_t, abft::Stats&) {
      ran.fetch_add(1);
    }));
    futs.push_back(std::move(blocker));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.release();
    // Destructor drains: every admitted job completes or fails fast.
  }
  for (auto& f : futs) ASSERT_TRUE(f.ready());
  auto expired = futs[0].get();
  EXPECT_EQ(expired.deadline_expired_lanes, 3u);
  auto ok = futs[1].get();
  EXPECT_TRUE(ok.all_ok());
  EXPECT_EQ(ran.load(), 3);
  EXPECT_TRUE(futs[2].get().all_ok());
}

// ------------------------------------------- overload + faults, per backend

TEST(EngineSched, AbftOutcomesUnderSaturationMatchUnloadedRun) {
  const std::size_t n = 512;
  const std::size_t lanes_n = 6;
  const std::size_t hit_lanes[] = {1, 4};
  const abft::Options opts = abft::Options::online_opt(true);

  BackendGuard guard;
  for (Backend b : available_backends()) {
    ASSERT_TRUE(simd::set_backend(b));
    const auto inputs = [&] {
      std::vector<std::vector<cplx>> ins;
      for (std::size_t l = 0; l < lanes_n; ++l) {
        ins.push_back(random_vector(n, InputDistribution::kUniform, 9400 + l));
      }
      return ins;
    }();

    // One campaign = own copies of the inputs, fresh injectors on the hit
    // lanes, owned output buffers. Buffers must outlive the future.
    struct Campaign {
      std::vector<std::vector<cplx>> ins;
      std::vector<std::vector<cplx>> outs;
      std::vector<fault::Injector> injectors;
      std::vector<engine::Lane> lanes;
    };
    auto make_campaign = [&] {
      Campaign c;
      c.ins = inputs;
      c.outs.assign(lanes_n, std::vector<cplx>(n));
      c.injectors.resize(lanes_n);
      for (std::size_t hit : hit_lanes) {
        c.injectors[hit].schedule(fault::FaultSpec::bit_flip(
            fault::Phase::kFinalOutput, 0, 3 * hit + 1, 40, hit % 2 == 0));
      }
      c.lanes.resize(lanes_n);
      for (std::size_t l = 0; l < lanes_n; ++l) {
        c.lanes[l] = {c.ins[l].data(), c.outs[l].data(), &c.injectors[l]};
      }
      return c;
    };
    auto submit_campaign = [&](engine::BatchEngine& eng, Campaign& c) {
      engine::BatchOptions bopts;
      bopts.abft = opts;
      bopts.submit.priority = Priority::kHigh;
      return eng.submit_batch(c.lanes, n, bopts);
    };
    auto fired_counts = [&](const Campaign& c) {
      std::vector<std::size_t> fired;
      for (const auto& inj : c.injectors) fired.push_back(inj.fired_count());
      return fired;
    };

    // Unloaded reference: plenty of room, nothing competing.
    Campaign ref = make_campaign();
    engine::BatchReport ref_report;
    {
      engine::BatchEngine eng(2);
      ref_report = submit_campaign(eng, ref).get();
    }
    ASSERT_TRUE(ref_report.all_ok()) << "backend " << static_cast<int>(b);

    // Saturated engine: both workers parked, cap full of sheddable low
    // traffic; the high-priority faulted batch sheds its way in.
    Campaign loaded = make_campaign();
    engine::BatchReport report;
    engine::BatchReport filler_report;
    {
      engine::BatchEngine eng(2);
      eng.set_queue_cap(8);
      Gate gate;
      auto blocker = eng.submit_tasks(2, gate.task());
      gate.wait_entered(2);
      engine::SubmitOptions low_shed;
      low_shed.priority = Priority::kLow;
      low_shed.cancellable = true;
      auto filler = eng.submit_tasks(6, kNoop, low_shed);  // fills the cap
      // Admission (including the synchronous shed of the filler) happens
      // on this thread before the future returns; the workers stay parked
      // until the gate opens below.
      auto fut = submit_campaign(eng, loaded);
      gate.release();
      report = fut.get();
      filler_report = filler.get();
      (void)blocker.get();
    }

    // Shedding made room: the filler was shed, the faulted batch ran and
    // behaved exactly as when unloaded — same faults fired, same
    // corrections, bit-identical spectra on every accepted lane.
    EXPECT_EQ(filler_report.shed_lanes, 6u);
    EXPECT_TRUE(report.all_ok());
    EXPECT_EQ(fired_counts(loaded), fired_counts(ref));
    for (std::size_t l = 0; l < lanes_n; ++l) {
      EXPECT_EQ(report.per_lane[l].mem_errors_corrected,
                ref_report.per_lane[l].mem_errors_corrected)
          << "backend " << static_cast<int>(b) << " lane " << l;
      EXPECT_TRUE(lane_bit_identical(loaded.outs[l], ref.outs[l]))
          << "backend " << static_cast<int>(b) << " lane " << l;
    }
  }
}

// ------------------------------------------------------------------- stress

TEST(EngineSchedStress, SaturatedMixedWorkloadLosesNoFutures) {
  engine::BatchEngine eng(4);
  eng.set_queue_cap(8);
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 25;

  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> lanes_executed{0};
  std::mutex futs_mu;
  std::vector<engine::BatchFuture> futs;

  auto work = [&](std::size_t, abft::Stats&) {
    lanes_executed.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        engine::SubmitOptions so;
        so.priority = static_cast<Priority>((t + j) % 3);
        so.cancellable = (j % 2) == 0;
        if (j % 3 == 0) {
          // Tiny deadlines: some of these will expire while queued.
          so.deadline = std::chrono::microseconds(200 * (j % 5 + 1));
        }
        const std::size_t count = 1 + static_cast<std::size_t>(j % 3);
        std::optional<engine::BatchFuture> f;
        if (j % 4 == 0) {
          f = eng.try_submit_tasks(count, work, so);
          if (!f) {
            rejected.fetch_add(1);
            continue;
          }
        } else {
          so.admission_timeout = (j % 4 == 1)
                                     ? std::chrono::nanoseconds::zero()
                                     : std::chrono::nanoseconds{-1};
          try {
            f = eng.submit_tasks(count, work, so);
          } catch (const QueueFullError&) {
            rejected.fetch_add(1);
            continue;
          }
        }
        std::scoped_lock lk(futs_mu);
        futs.push_back(std::move(*f));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every admitted future is fulfilled, and only with outcomes from the
  // scheduler taxonomy; every non-failed lane executed exactly once.
  std::size_t ok_lanes = 0;
  std::size_t shed = 0, expired_lanes = 0;
  for (auto& f : futs) {
    ASSERT_TRUE(f.wait_for(std::chrono::minutes(2)));
    auto r = f.get();
    shed += r.shed_lanes;
    expired_lanes += r.deadline_expired_lanes;
    std::size_t failed_here = 0;
    for (std::size_t l = 0; l < r.lanes; ++l) {
      if (!r.exceptions[l]) {
        ++ok_lanes;
        continue;
      }
      ++failed_here;
      try {
        std::rethrow_exception(r.exceptions[l]);
      } catch (const DeadlineExceededError&) {
      } catch (const CancelledError&) {
      } catch (...) {
        ADD_FAILURE() << "unexpected outcome: " << r.errors[l];
      }
    }
    EXPECT_EQ(failed_here, r.failed_lanes);
  }
  EXPECT_EQ(ok_lanes, lanes_executed.load());
  EXPECT_EQ(eng.pending_jobs(), 0u);

  const auto st = eng.scheduler_stats();
  std::size_t completed = 0, stat_rejected = 0;
  for (const auto& c : st.classes) {
    completed += c.jobs_completed;
    stat_rejected += c.jobs_rejected;
  }
  EXPECT_EQ(completed, futs.size());
  EXPECT_EQ(stat_rejected, rejected.load());
  EXPECT_EQ(st.pending_lanes, 0u);
}

}  // namespace
}  // namespace ftfft
