// Property tests for the COBRA cache-blocked bit-reversal
// (src/fft/bit_reversal.hpp): the tiled permutation must equal the naive
// rev(i) mapping for every size and every leading/trailing field split —
// including the degenerate b == 0 walk, clamped splits where 2b > log2n, and
// odd log2n where the middle field has odd width — must be an involution,
// and the fused-opener write-back must be bit-identical to permute-then-open
// on every SIMD backend.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/complex.hpp"
#include "common/rng.hpp"
#include "fft/bit_reversal.hpp"
#include "fft/inplace_radix2.hpp"
#include "simd/dispatch.hpp"

namespace ftfft {
namespace {

using fft::CobraBitReversal;
using fft::reverse_bits;
using simd::Backend;

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::kScalar};
  if (simd::backend_available(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  if (simd::backend_available(Backend::kNeon)) out.push_back(Backend::kNeon);
  return out;
}

struct BackendGuard {
  Backend prev = simd::active_backend();
  ~BackendGuard() { simd::set_backend(prev); }
};

/// Vector whose element i encodes i, so a permutation is fully observable.
std::vector<cplx> iota_vector(std::size_t n) {
  std::vector<cplx> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<double>(i), -static_cast<double>(i)};
  }
  return v;
}

TEST(ReverseBits, MatchesBitByBitDefinition) {
  EXPECT_EQ(reverse_bits(0, 0), 0u);
  EXPECT_EQ(reverse_bits(1, 1), 1u);
  EXPECT_EQ(reverse_bits(1, 4), 8u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  for (unsigned bits = 0; bits <= 20; ++bits) {
    const std::size_t n = std::size_t{1} << bits;
    for (std::size_t x : {std::size_t{0}, std::size_t{1}, n / 3, n - 1}) {
      if (x >= n) continue;
      std::size_t want = 0;
      for (unsigned i = 0; i < bits; ++i) {
        if (x & (std::size_t{1} << i)) want |= std::size_t{1} << (bits - 1 - i);
      }
      EXPECT_EQ(reverse_bits(x, bits), want) << "x=" << x << " bits=" << bits;
      // rev is an involution on `bits`-wide integers.
      EXPECT_EQ(reverse_bits(reverse_bits(x, bits), bits), x);
    }
  }
}

TEST(CobraBitReversal, MatchesNaiveMappingForEverySplitUpTo4k) {
  // Full tile-width sweep at small sizes: every b from the pair-swap
  // degenerate (b == 0) through clamped requests far beyond log2n/2. Odd
  // log2n gives the middle field odd width; 2b < log2n leaves a non-empty
  // middle even at the largest allowed b ("non-square" splits).
  for (unsigned log2n = 0; log2n <= 12; ++log2n) {
    const std::size_t n = std::size_t{1} << log2n;
    const auto x = iota_vector(n);
    for (unsigned b = 0; b <= log2n / 2 + 2; ++b) {
      const CobraBitReversal cobra(log2n, b);
      EXPECT_LE(cobra.tile_bits(), log2n / 2);
      auto y = x;
      cobra.permute(y.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(y[i], x[reverse_bits(i, log2n)])
            << "log2n=" << log2n << " b=" << b << " i=" << i;
      }
    }
  }
}

TEST(CobraBitReversal, MatchesNaiveMappingAtLargeSizes) {
  // Spot checks at bench-relevant sizes, including both parities of log2n
  // and the full 2^20 acceptance size.
  struct Case {
    unsigned log2n;
    unsigned b;
  };
  for (const Case c : {Case{14, 5}, Case{15, 6}, Case{17, 4}, Case{19, 6},
                       Case{20, 5}, Case{20, 6}}) {
    const std::size_t n = std::size_t{1} << c.log2n;
    const auto x = iota_vector(n);
    auto y = x;
    const CobraBitReversal cobra(c.log2n, c.b);
    cobra.permute(y.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(y[i], x[reverse_bits(i, c.log2n)])
          << "log2n=" << c.log2n << " b=" << c.b << " i=" << i;
    }
  }
}

TEST(CobraBitReversal, IsSelfInverse) {
  for (unsigned log2n : {0u, 1u, 5u, 8u, 11u, 13u, 16u}) {
    const std::size_t n = std::size_t{1} << log2n;
    const auto x = random_vector(n, InputDistribution::kNormal, 4242);
    for (unsigned b : {0u, 2u, 3u, 6u}) {
      auto y = x;
      const CobraBitReversal cobra(log2n, b);
      cobra.permute(y.data());
      cobra.permute(y.data());
      ASSERT_EQ(std::memcmp(y.data(), x.data(), n * sizeof(cplx)), 0)
          << "log2n=" << log2n << " b=" << b;
    }
  }
}

TEST(CobraBitReversal, FusedOpenerBitIdenticalToPermuteThenOpenOnAllBackends) {
  BackendGuard guard;
  for (unsigned log2n : {4u, 5u, 9u, 12u, 13u}) {
    const std::size_t n = std::size_t{1} << log2n;
    const auto x = random_vector(n, InputDistribution::kUniform, 777);
    const auto opener = (log2n & 1u)
                            ? CobraBitReversal::Opener::kRadix2Pairs
                            : CobraBitReversal::Opener::kRadix4First;
    const CobraBitReversal cobra(log2n, 4);
    for (Backend bk : available_backends()) {
      ASSERT_TRUE(simd::set_backend(bk));
      for (bool inverse : {false, true}) {
        auto want = x;
        cobra.permute(want.data());
        const auto& k = simd::fft_kernels();
        if (opener == CobraBitReversal::Opener::kRadix2Pairs) {
          k.radix2_stage0(want.data(), n);
        } else {
          k.radix4_first_stage(want.data(), n, inverse);
        }
        auto got = x;
        cobra.run(got.data(), opener, inverse);
        ASSERT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(cplx)), 0)
            << "log2n=" << log2n << " backend=" << simd::backend_name(bk)
            << " inverse=" << inverse;
      }
    }
  }
}

TEST(CobraBitReversal, PlanSelectsCobraBySizeThreshold) {
  fft::InplaceTuning tuning;
  tuning.cobra_min_log2 = 10;
  tuning.cobra_tile_bits = 4;
  const fft::InplaceRadix2Plan small(1 << 9, tuning);
  EXPECT_FALSE(small.cobra_enabled());
  const fft::InplaceRadix2Plan big(1 << 10, tuning);
  EXPECT_TRUE(big.cobra_enabled());
  EXPECT_EQ(big.cobra_tile_bits(), 4u);
  // Below the threshold both permute entry points walk the same pair-swap
  // list; above it the COBRA walk must still be the same permutation.
  const auto x = iota_vector(1 << 10);
  auto a = x;
  auto b = x;
  big.permute_pairswap(a.data());
  big.permute_cobra(b.data());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)), 0);
}

}  // namespace
}  // namespace ftfft
