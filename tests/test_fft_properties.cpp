// Property-based tests on DFT invariants: these hold for any correct FFT
// implementation and catch subtle twiddle/ordering bugs that pointwise
// comparison at a few sizes might miss.
#include <gtest/gtest.h>

#include <vector>

#include "common/complex.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace ftfft {
namespace {

using fft::Direction;
using fft::Fft;

class FftProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::vector<cplx> transform(const std::vector<cplx>& x) {
    std::vector<cplx> out(x.size());
    Fft engine(x.size());
    engine.execute(x.data(), out.data());
    return out;
  }
};

TEST_P(FftProperty, Linearity) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kNormal, 10 + n);
  auto y = random_vector(n, InputDistribution::kNormal, 20 + n);
  const cplx a{1.5, -0.25};
  const cplx b{-2.0, 0.75};
  std::vector<cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  const auto X = transform(x);
  const auto Y = transform(y);
  const auto C = transform(combo);
  const double tol = 1e-10 * static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const cplx want = a * X[j] + b * Y[j];
    ASSERT_NEAR(C[j].real(), want.real(), tol) << "n=" << n;
    ASSERT_NEAR(C[j].imag(), want.imag(), tol) << "n=" << n;
  }
}

TEST_P(FftProperty, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kUniform, 30 + n);
  const auto X = transform(x);
  double ex = 0, eX = 0;
  for (const auto& v : x) ex += norm2(v);
  for (const auto& v : X) eX += norm2(v);
  ASSERT_NEAR(eX, ex * static_cast<double>(n), 1e-10 * eX + 1e-12);
}

TEST_P(FftProperty, TimeShiftBecomesPhaseRamp) {
  const std::size_t n = GetParam();
  // n == 1 is not a degenerate skip: the cyclic shift by n/3+1 = 1 is the
  // identity permutation mod 1 and the expected phase ramp omega(1, shift*j)
  // is identically 1, so the property below holds exactly.
  auto x = random_vector(n, InputDistribution::kUniform, 40 + n);
  const std::size_t shift = n / 3 + 1;
  std::vector<cplx> shifted(n);
  for (std::size_t t = 0; t < n; ++t) shifted[t] = x[(t + shift) % n];
  const auto X = transform(x);
  const auto S = transform(shifted);
  const double tol = 1e-9 * static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    // DFT(x[t+s])[j] = omega^(-s j) X[j] = conj(omega(n, s*j)) X[j].
    const cplx want = std::conj(omega(n, shift * j)) * X[j];
    ASSERT_NEAR(S[j].real(), want.real(), tol) << "n=" << n << " j=" << j;
    ASSERT_NEAR(S[j].imag(), want.imag(), tol) << "n=" << n << " j=" << j;
  }
}

TEST_P(FftProperty, CircularConvolutionTheorem) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kUniform, 50 + n);
  auto h = random_vector(n, InputDistribution::kUniform, 60 + n);
  // Direct circular convolution.
  std::vector<cplx> conv(n, cplx{0, 0});
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      conv[t] += x[u] * h[(t + n - u % n) % n];
    }
  }
  const auto X = transform(x);
  const auto H = transform(h);
  std::vector<cplx> prod(n);
  for (std::size_t j = 0; j < n; ++j) prod[j] = X[j] * H[j];
  std::vector<cplx> viafft(n);
  Fft inv(n, Direction::kInverse);
  inv.execute(prod.data(), viafft.data());
  const double tol = 1e-9 * static_cast<double>(n);
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_NEAR(viafft[t].real(), conv[t].real(), tol) << "n=" << n;
    ASSERT_NEAR(viafft[t].imag(), conv[t].imag(), tol) << "n=" << n;
  }
}

TEST_P(FftProperty, RealInputHasConjugateSymmetry) {
  const std::size_t n = GetParam();
  std::vector<cplx> x(n);
  Rng rng(70 + n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), 0.0};
  const auto X = transform(x);
  const double tol = 1e-10 * static_cast<double>(n);
  for (std::size_t j = 1; j < n; ++j) {
    const cplx mirror = std::conj(X[n - j]);
    ASSERT_NEAR(X[j].real(), mirror.real(), tol) << "n=" << n;
    ASSERT_NEAR(X[j].imag(), mirror.imag(), tol) << "n=" << n;
  }
  ASSERT_NEAR(X[0].imag(), 0.0, tol);
}

TEST_P(FftProperty, DcBinIsPlainSum) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, InputDistribution::kNormal, 80 + n);
  cplx sum{0, 0};
  for (const auto& v : x) sum += v;
  const auto X = transform(x);
  ASSERT_NEAR(X[0].real(), sum.real(), 1e-10 * static_cast<double>(n));
  ASSERT_NEAR(X[0].imag(), sum.imag(), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FftProperty,
    ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16, 31, 32, 60, 64, 97, 128, 100,
                      243, 256, 360, 512, 1000, 1024),
    [](const ::testing::TestParamInfo<std::size_t>& pi) { return "n" + std::to_string(pi.param); });

}  // namespace
}  // namespace ftfft
